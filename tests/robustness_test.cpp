// Robustness layer: the MapOutcome taxonomy, anytime graceful degradation,
// the resource governor, the deterministic fault-injection harness, and the
// Deadline/CancelToken edge cases around them.
//
// The load-bearing properties:
//  * every way a request can end maps to exactly one MapOutcome, never a
//    crash — injected faults included;
//  * degradation is deterministic: a deterministic work budget (not a wall
//    clock) cut mid-walk returns the same held mapping and the same sound
//    II interval on every rerun;
//  * all the robustness knobs default off, so the governed/fault-aware
//    build behaves bit-identically to the seed until a knob is turned.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mapper/cross_ii_store.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "support/fault.hpp"
#include "support/outcome.hpp"
#include "support/parallel.hpp"
#include "support/resource.hpp"
#include "workloads/suite.hpp"
#include "workloads/synthetic.hpp"

namespace monomap {
namespace {

/// Every fault-installing test disarms on exit so later tests (and later
/// suites in the same binary) run clean.
struct FaultGuard {
  FaultGuard() = default;
  ~FaultGuard() { fault::clear_faults(); }
};

void install_spec(const std::string& spec) {
  std::string error;
  const auto plan = fault::parse_fault_spec(spec, &error);
  ASSERT_TRUE(plan.has_value()) << spec << ": " << error;
  fault::install_faults(*plan);
}

DecoupledMapperOptions base_options() {
  DecoupledMapperOptions opt;
  opt.timeout_s = 120.0;
  return opt;
}

// ---------------------------------------------------------------------------
// Outcome taxonomy
// ---------------------------------------------------------------------------

TEST(Outcome, ExitCodesAreDistinctAndStable) {
  // Scripted callers (CI's fault sweep) key on these exact values.
  EXPECT_EQ(exit_code(MapOutcome::kFeasible), 0);
  EXPECT_EQ(exit_code(MapOutcome::kDegraded), 3);
  EXPECT_EQ(exit_code(MapOutcome::kRefuted), 4);
  EXPECT_EQ(exit_code(MapOutcome::kDeadline), 5);
  EXPECT_EQ(exit_code(MapOutcome::kMemory), 6);
  EXPECT_EQ(exit_code(MapOutcome::kFault), 7);
  EXPECT_EQ(exit_code(MapOutcome::kCancelled), 8);
}

TEST(Outcome, NamesCoverEveryValue) {
  for (int i = 0; i < kMapOutcomeCount; ++i) {
    EXPECT_STRNE(to_string(static_cast<MapOutcome>(i)), "?");
  }
}

TEST(Outcome, FormatCausesChainsInOrder) {
  EXPECT_EQ(format_causes({}), "");
  EXPECT_EQ(format_causes({{"time", "deadline"}, {"governor", "tripped"}}),
            "time: deadline; governor: tripped");
}

// ---------------------------------------------------------------------------
// Fault-spec grammar
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsesRulesAndSeed) {
  std::string error;
  const auto plan = fault::parse_fault_spec(
      "sat.solve=throw@5,pool.worker=stall@3,space.search=alloc@7:42",
      &error);
  ASSERT_TRUE(plan.has_value()) << error;
  ASSERT_EQ(plan->rules.size(), 3u);
  EXPECT_EQ(plan->rules[0].site, "sat.solve");
  EXPECT_EQ(plan->rules[0].kind, fault::FaultKind::kThrow);
  EXPECT_EQ(plan->rules[0].period, 5u);
  EXPECT_EQ(plan->rules[1].kind, fault::FaultKind::kStall);
  EXPECT_EQ(plan->rules[2].kind, fault::FaultKind::kAlloc);
  EXPECT_EQ(plan->seed, 42u);
}

TEST(FaultSpec, SeedDefaultsToZero) {
  const auto plan = fault::parse_fault_spec("sat.solve=throw@1");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seed, 0u);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  for (const char* bad :
       {"sat.solve=throw",        // missing @period
        "sat.solve@5",            // missing =kind
        "sat.solve=explode@5",    // unknown kind
        "sat.solve=throw@0",      // period must be >= 1
        "sat.solve=throw@x",      // period not a number
        "=throw@5",               // empty site
        "sat.solve=throw@5,",     // trailing empty rule
        "sat.solve=throw@5:",     // empty seed
        "sat.solve=throw@5:12x"   // malformed seed
       }) {
    std::string error;
    EXPECT_FALSE(fault::parse_fault_spec(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(FaultSpec, FiringPatternIsSeedDeterministic) {
  const FaultGuard guard;
  const auto fire_pattern = [](std::uint64_t seed) {
    fault::FaultPlan plan;
    plan.rules.push_back({"sat.solve", fault::FaultKind::kThrow, 4});
    plan.seed = seed;
    fault::install_faults(plan);
    std::vector<int> fired;
    for (int i = 0; i < 40; ++i) {
      try {
        fault::maybe_inject("sat.solve");
      } catch (const fault::FaultInjectedError&) {
        fired.push_back(i);
      }
      fault::maybe_inject("space.search");  // other sites never fire
    }
    return fired;
  };
  const std::vector<int> a = fire_pattern(7);
  const std::vector<int> b = fire_pattern(7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 10u);  // every 4th arrival, whatever the phase
}

// ---------------------------------------------------------------------------
// Deadline / CancelToken edges
// ---------------------------------------------------------------------------

TEST(Robustness, ZeroDurationDeadlineIsCleanDeadlineOutcome) {
  const Benchmark& b = benchmark_by_name("bitcount");
  const CgraArch arch = CgraArch::square(4);
  const DecoupledMapper mapper(base_options());
  const MapResult r = mapper.map(b.dfg, arch, Deadline(0.0));
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.outcome, MapOutcome::kDeadline);
  EXPECT_GE(r.ii_lo, 1);
  EXPECT_EQ(r.ii_hi, 0);
}

TEST(Robustness, CancelBeforeStartIsCancelledOutcome) {
  const Benchmark& b = benchmark_by_name("bitcount");
  const CgraArch arch = CgraArch::square(4);
  CancelToken token;
  token.cancel();
  const Deadline deadline(1000.0, &token);
  const DecoupledMapper mapper(base_options());
  const MapResult r = mapper.map(b.dfg, arch, deadline);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.outcome, MapOutcome::kCancelled);
}

TEST(Robustness, ParentChainCancelInterruptsFaultBackoff) {
  // A permanently-faulting solver with a huge retry budget spends its life
  // in backoff_sleep; a cancel arriving through a *parent* token must be
  // observed mid-sleep and end the request as kCancelled, promptly.
  const FaultGuard guard;
  install_spec("sat.solve=throw@1");
  CancelToken parent;
  CancelToken child(&parent);
  const Deadline deadline(1000.0, &child);
  DecoupledMapperOptions opt = base_options();
  opt.max_fault_retries = 1000000;
  const DecoupledMapper mapper(opt);
  const Benchmark& b = benchmark_by_name("bitcount");
  const CgraArch arch = CgraArch::square(4);
  std::thread canceller([&parent] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    parent.cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  const MapResult r = mapper.map(b.dfg, arch, deadline);
  canceller.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.outcome, MapOutcome::kCancelled);
  EXPECT_TRUE(r.faulted);  // the evidence survives classification
  EXPECT_LT(elapsed_s, 10.0);
}

// ---------------------------------------------------------------------------
// Anytime degradation
// ---------------------------------------------------------------------------

TEST(Anytime, FeasibleWalkIsUnchangedByAnytimeMode) {
  const Benchmark& b = benchmark_by_name("bitcount");
  const CgraArch arch = CgraArch::square(4);
  const DecoupledMapper plain(base_options());
  const MapResult reference = plain.map(b.dfg, arch);
  ASSERT_TRUE(reference.success);
  DecoupledMapperOptions opt = base_options();
  opt.anytime = true;
  const MapResult anytime = DecoupledMapper(opt).map(b.dfg, arch);
  ASSERT_TRUE(anytime.success);
  EXPECT_EQ(anytime.outcome, MapOutcome::kFeasible);
  EXPECT_EQ(anytime.ii, reference.ii);
  EXPECT_EQ(anytime.ii_hi, anytime.ii);
}

TEST(Anytime, ScheduleBudgetWithoutAnytimeIsDeadlineOutcome) {
  DecoupledMapperOptions opt = base_options();
  opt.max_schedules = 1;
  const Benchmark& b = benchmark_by_name("cfd");
  const CgraArch arch = CgraArch::square(4);
  const MapResult r = DecoupledMapper(opt).map(b.dfg, arch);
  if (r.success) GTEST_SKIP() << "cfd mapped on the first schedule";
  EXPECT_EQ(r.outcome, MapOutcome::kDeadline);
  EXPECT_TRUE(r.timed_out);
  ASSERT_FALSE(r.causes.empty());
  EXPECT_EQ(r.causes.front().site, "budget");
}

TEST(Anytime, DegradedModeIsDeterministic) {
  // The acceptance property: a deterministic budget cut mid-walk returns
  // the held feasible mapping marked degraded with a sound [lo, hi]
  // interval — bit-identical across reruns.
  DecoupledMapperOptions opt = base_options();
  opt.anytime = true;
  opt.max_schedules = 6;
  const DecoupledMapper mapper(opt);
  const Benchmark& b = benchmark_by_name("cfd");
  const CgraArch arch = CgraArch::square(4);
  const MapResult r1 = mapper.map(b.dfg, arch);
  const MapResult r2 = mapper.map(b.dfg, arch);
  ASSERT_TRUE(r1.success) << r1.failure_reason;
  ASSERT_EQ(r1.outcome, MapOutcome::kDegraded);
  EXPECT_TRUE(r1.degraded);
  // Sound interval: the held mapping bounds from above, the refuted prefix
  // from below, and the true minimum sits in between.
  EXPECT_EQ(r1.ii_hi, r1.ii);
  EXPECT_GE(r1.ii_lo, 1);
  EXPECT_LE(r1.ii_lo, r1.ii_hi);
  // Bit-identical rerun.
  EXPECT_EQ(r2.outcome, r1.outcome);
  EXPECT_EQ(r2.ii, r1.ii);
  EXPECT_EQ(r2.ii_lo, r1.ii_lo);
  EXPECT_EQ(r2.ii_hi, r1.ii_hi);
  EXPECT_EQ(r2.schedules_tried, r1.schedules_tried);
  ASSERT_EQ(r2.mapping.num_nodes(), r1.mapping.num_nodes());
  for (NodeId v = 0; v < r1.mapping.num_nodes(); ++v) {
    EXPECT_EQ(r2.mapping.time(v), r1.mapping.time(v)) << "node " << v;
    EXPECT_EQ(r2.mapping.pe(v), r1.mapping.pe(v)) << "node " << v;
  }
  // The degraded mapping still validates.
  EXPECT_TRUE(validate_mapping(b.dfg, arch, r1.mapping,
                               MrrgModel::kRegisterPersistence)
                  .empty());
}

TEST(Anytime, RefutationBelowMiiIsSoundAndRefutedOutcome) {
  const Benchmark& b = benchmark_by_name("fft");
  const CgraArch arch = CgraArch::square(4);
  const DecoupledMapper probe(base_options());
  const MapResult feasible = probe.map(b.dfg, arch);
  ASSERT_TRUE(feasible.success);
  if (feasible.mii.mii() < 2) GTEST_SKIP() << "mII too small to cap below";
  // Cap the search strictly below mII: the time phase refutes the whole
  // range without one SAT call — the strongest sound refutation there is.
  DecoupledMapperOptions opt = base_options();
  opt.time.max_ii = feasible.mii.mii() - 1;
  const MapResult r = DecoupledMapper(opt).map(b.dfg, arch);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.outcome, MapOutcome::kRefuted);
  EXPECT_TRUE(r.sound_refutation);
  EXPECT_EQ(r.ii_refuted_up_to, feasible.mii.mii() - 1);
  EXPECT_EQ(r.ii_lo, feasible.mii.mii());
  EXPECT_EQ(r.ii_hi, 0);
}

// ---------------------------------------------------------------------------
// Resource governor
// ---------------------------------------------------------------------------

TEST(Governor, ChargesRollBackAndTripLatches) {
  ResourceGovernor gov(1000);
  EXPECT_TRUE(gov.try_charge(600));
  EXPECT_FALSE(gov.try_charge(600));  // would exceed: nothing charged
  EXPECT_EQ(gov.used(), 600u);
  EXPECT_TRUE(gov.try_charge(400));
  EXPECT_TRUE(gov.soft_pressure());
  gov.uncharge(1000);
  EXPECT_EQ(gov.used(), 0u);
  EXPECT_EQ(gov.peak(), 1000u);
  gov.trip("first cause");
  gov.trip("second cause");
  EXPECT_TRUE(gov.tripped());
  EXPECT_STREQ(gov.trip_reason(), "first cause");  // first trip wins
  EXPECT_FALSE(gov.try_charge(1));  // tripped governor grants nothing
}

TEST(Governor, ZeroBudgetIsUnlimited) {
  ResourceGovernor gov(0);
  EXPECT_TRUE(gov.try_charge(std::size_t{1} << 40));
  EXPECT_FALSE(gov.soft_pressure());
  EXPECT_FALSE(gov.tripped());
}

TEST(Governor, ScopeNestsAndNullIsNoOpShadow) {
  EXPECT_EQ(GovernorScope::current(), nullptr);
  ResourceGovernor outer(0);
  {
    const GovernorScope a(&outer);
    EXPECT_EQ(GovernorScope::current(), &outer);
    {
      const GovernorScope b(nullptr);  // no-op shadow
      EXPECT_EQ(GovernorScope::current(), &outer);
      ResourceGovernor inner(0);
      const GovernorScope c(&inner);
      EXPECT_EQ(GovernorScope::current(), &inner);
    }
    EXPECT_EQ(GovernorScope::current(), &outer);
  }
  EXPECT_EQ(GovernorScope::current(), nullptr);
}

TEST(Governor, StarvedRequestEndsAsMemoryOutcome) {
  // A 64-byte budget denies the very first real reservation (SAT learnt
  // clause or searcher trail, whichever comes first): the request must end
  // as a classified kMemory outcome, never an abort.
  ResourceGovernor gov(64);
  const GovernorScope scope(&gov);
  const Benchmark& b = benchmark_by_name("bitcount");
  const CgraArch arch = CgraArch::square(4);
  const MapResult r = DecoupledMapper(base_options()).map(b.dfg, arch);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.outcome, MapOutcome::kMemory);
  EXPECT_TRUE(r.memory_out);
  EXPECT_TRUE(gov.tripped());
  ASSERT_FALSE(r.causes.empty());
}

TEST(Governor, GenerousBudgetMatchesUngoverned) {
  const Benchmark& b = benchmark_by_name("fft");
  const CgraArch arch = CgraArch::square(4);
  const MapResult plain = DecoupledMapper(base_options()).map(b.dfg, arch);
  DecoupledMapperOptions opt = base_options();
  opt.memory_budget_mb = 512;
  const MapResult governed = DecoupledMapper(opt).map(b.dfg, arch);
  ASSERT_EQ(governed.success, plain.success);
  EXPECT_EQ(governed.outcome, MapOutcome::kFeasible);
  EXPECT_EQ(governed.ii, plain.ii);
  EXPECT_EQ(governed.schedules_tried, plain.schedules_tried);
  EXPECT_GT(governed.mem_peak_bytes, 0u);  // telemetry actually flows
  EXPECT_EQ(plain.mem_peak_bytes, 0u);     // ...and only when asked for
}

TEST(Governor, CrossIiStoreShedsOldestFirst) {
  ResourceGovernor gov(400);
  CrossIiNogoodStore store;
  store.set_governor(&gov);
  // Distinct two-node partitions; each certificate costs ~150+ bytes so a
  // 400-byte budget holds only the latest couple.
  std::vector<int> labels(10, 0);
  int added = 0;
  for (NodeId v = 0; v + 1 < 10; ++v) {
    if (store.add(3, {v, static_cast<NodeId>(v + 1)}, labels)) ++added;
  }
  EXPECT_GT(added, 2);
  EXPECT_GT(store.evicted(), 0u);
  EXPECT_LT(store.size(), static_cast<std::size_t>(added));
  EXPECT_GT(gov.sheds(), 0);
  EXPECT_FALSE(gov.tripped());  // shedding kept the store within budget
  // A reader whose cursor predates the evictions drains only survivors.
  std::size_t cursor = 0;
  std::vector<SlotPartitionCert> out;
  store.drain(&cursor, &out);
  EXPECT_EQ(out.size(), store.size());
}

// ---------------------------------------------------------------------------
// Worker pool under faults
// ---------------------------------------------------------------------------

TEST(Pool, CollectReturnsTaskErrorAndPoolStaysUsable) {
  WorkStealingPool pool(2);
  pool.submit([] { throw std::runtime_error("task died"); });
  const std::exception_ptr error = pool.wait_idle_collect();
  ASSERT_NE(error, nullptr);
  EXPECT_THROW(std::rethrow_exception(error), std::runtime_error);
  // The pool survives: the queue drained, pending balanced, workers alive.
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_EQ(pool.wait_idle_collect(), nullptr);
  EXPECT_EQ(ran.load(), 8);
}

TEST(Pool, WaitIdleRethrowsCollectedError) {
  WorkStealingPool pool(1);
  pool.submit([] { throw std::runtime_error("task died"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // error was consumed; the pool is clean again
}

TEST(Pool, WorkerFaultRequeuesTaskInsteadOfDroppingIt) {
  const FaultGuard guard;
  install_spec("pool.worker=throw@3:1");
  WorkStealingPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 30; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  // Injected worker faults requeue the task they pre-empted — every task
  // still runs exactly once and no error surfaces.
  EXPECT_EQ(pool.wait_idle_collect(), nullptr);
  EXPECT_EQ(ran.load(), 30);
  EXPECT_GT(pool.fault_requeues(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end fault sweep: every injected class lands in its taxonomy bucket
// ---------------------------------------------------------------------------

TEST(FaultSweep, PermanentThrowAtEachSiteIsFaultOutcome) {
  const Benchmark& b = benchmark_by_name("bitcount");
  const CgraArch arch = CgraArch::square(4);
  for (const char* site : {"sat.solve", "space.search", "time.session"}) {
    const FaultGuard guard;
    install_spec(std::string(site) + "=throw@1");
    const MapResult r = DecoupledMapper(base_options()).map(b.dfg, arch);
    EXPECT_FALSE(r.success) << site;
    EXPECT_EQ(r.outcome, MapOutcome::kFault) << site;
    EXPECT_EQ(r.fault_retries, 3) << site;  // default retry budget spent
    ASSERT_FALSE(r.causes.empty()) << site;
    EXPECT_EQ(r.causes.front().site, site);
  }
}

TEST(FaultSweep, AllocFaultIsMemoryOutcome) {
  const FaultGuard guard;
  install_spec("sat.solve=alloc@1");
  const Benchmark& b = benchmark_by_name("bitcount");
  const CgraArch arch = CgraArch::square(4);
  const MapResult r = DecoupledMapper(base_options()).map(b.dfg, arch);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.outcome, MapOutcome::kMemory);
  EXPECT_TRUE(r.memory_out);
}

TEST(FaultSweep, StallFaultOnlySlowsTheRequest) {
  const FaultGuard guard;
  install_spec("sat.solve=stall@5:9");
  const Benchmark& b = benchmark_by_name("bitcount");
  const CgraArch arch = CgraArch::square(4);
  const MapResult r = DecoupledMapper(base_options()).map(b.dfg, arch);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.outcome, MapOutcome::kFeasible);
}

TEST(FaultSweep, TransientThrowIsRetriedToFeasible) {
  // Period 1000 with the default 3-retry budget: the first walk dies at
  // the 1000th SAT call of the process-wide counter at most once per map;
  // use a fresh period that fires once early, then never again within the
  // retry window — period large enough that retry 1 completes clean.
  const FaultGuard guard;
  fault::FaultPlan plan;
  plan.rules.push_back({"space.search", fault::FaultKind::kThrow, 50});
  plan.seed = 3;
  fault::install_faults(plan);
  const Benchmark& b = benchmark_by_name("bitcount");
  const CgraArch arch = CgraArch::square(4);
  const MapResult r = DecoupledMapper(base_options()).map(b.dfg, arch);
  // Either the walk never hit the firing phase (fine) or it did and the
  // retry recovered. A permanent failure would be a kFault — that is the
  // one verdict this plan must never produce.
  EXPECT_NE(r.outcome, MapOutcome::kFault);
  EXPECT_TRUE(r.success) << r.failure_reason;
}

TEST(FaultSweep, SpeculativeSurvivesPermanentFaults) {
  const FaultGuard guard;
  install_spec("sat.solve=throw@1");
  const Benchmark& b = benchmark_by_name("bitcount");
  const CgraArch arch = CgraArch::square(4);
  DecoupledMapperOptions opt = base_options();
  opt.timeout_s = 20.0;
  SpeculativeOptions spec;
  spec.num_threads = 2;
  const MapResult r =
      DecoupledMapper(opt).map_speculative(b.dfg, arch, spec);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.outcome, MapOutcome::kFault);
}

TEST(FaultSweep, BatchCompletesEveryCaseUnderWorkerFaults) {
  const FaultGuard guard;
  install_spec("pool.worker=throw@2:5");
  const CgraArch arch = CgraArch::square(4);
  std::vector<const Dfg*> dfgs;
  std::vector<Dfg> storage;
  storage.reserve(3);
  for (const char* name : {"bitcount", "fft", "nw"}) {
    storage.push_back(benchmark_by_name(name).dfg);
  }
  for (const Dfg& dfg : storage) dfgs.push_back(&dfg);
  BatchStats stats;
  const std::vector<MapResult> results =
      DecoupledMapper(base_options())
          .map_batch(dfgs, arch, Deadline(120.0), 2, &stats);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].success) << i << ": " << results[i].failure_reason;
    EXPECT_EQ(results[i].outcome, MapOutcome::kFeasible) << i;
  }
  EXPECT_EQ(stats.outcome_counts[static_cast<std::size_t>(
                MapOutcome::kFeasible)],
            3u);
}

TEST(Batch, SequentialPathFillsOutcomeCounters) {
  const CgraArch arch = CgraArch::square(4);
  std::vector<Dfg> storage;
  storage.push_back(benchmark_by_name("bitcount").dfg);
  storage.push_back(benchmark_by_name("fft").dfg);
  std::vector<const Dfg*> dfgs;
  for (const Dfg& dfg : storage) dfgs.push_back(&dfg);
  BatchStats stats;
  const std::vector<MapResult> results =
      DecoupledMapper(base_options())
          .map_batch(dfgs, arch, Deadline(120.0), 1, &stats);
  ASSERT_EQ(results.size(), 2u);
  std::uint64_t total = 0;
  for (const std::uint64_t c : stats.outcome_counts) total += c;
  EXPECT_EQ(total, 2u);
  EXPECT_EQ(stats.outcome_counts[static_cast<std::size_t>(
                MapOutcome::kFeasible)],
            2u);
}

}  // namespace
}  // namespace monomap
