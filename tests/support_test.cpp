// Tests for the support utilities: assertions, RNG, stopwatch/deadline,
// tables and CSV.
#include <algorithm>
#include <array>
#include <atomic>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "support/assert.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/pe_set.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace monomap {
namespace {

TEST(Assert, ThrowsWithLocationAndMessage) {
  try {
    MONOMAP_ASSERT_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("custom 42"), std::string::npos);
  }
}

TEST(Assert, PassesSilently) {
  EXPECT_NO_THROW(MONOMAP_ASSERT(2 + 2 == 4));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedDrawsStayInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_THROW(rng.next_below(0), AssertionError);
}

TEST(Rng, UniformityRoughCheck) {
  Rng rng(99);
  int buckets[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) {
    ++buckets[rng.next_below(4)];
  }
  for (const int b : buckets) {
    EXPECT_GT(b, 800);
    EXPECT_LT(b, 1200);
  }
}

TEST(Mix64, StableHash) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
}

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch w;
  const double a = w.elapsed_s();
  const double b = w.elapsed_s();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  w.restart();
  EXPECT_GE(w.elapsed_s(), 0.0);
}

TEST(Deadline, UnlimitedNeverExpires) {
  const Deadline d = Deadline::unlimited();
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_s(), 1e9);
}

TEST(Deadline, ZeroBudgetExpiresImmediately) {
  const Deadline d(0.0);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_s(), 0.0);
}

TEST(PeSet, SetTestResetAndCount) {
  PeSet s(100);
  EXPECT_EQ(s.capacity(), 100);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  s.set(0);
  s.set(63);
  s.set(64);  // crosses the word boundary
  s.set(99);
  EXPECT_EQ(s.count(), 4);
  EXPECT_TRUE(s.test(63));
  EXPECT_TRUE(s.test(64));
  EXPECT_FALSE(s.test(65));
  s.reset(63);
  EXPECT_FALSE(s.test(63));
  EXPECT_EQ(s.count(), 3);
  EXPECT_TRUE(s.any());
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(PeSet, FullRespectsCapacityTail) {
  // 70 is deliberately not a multiple of 64: the last word must be trimmed
  // or count() would see phantom high bits.
  const PeSet s = PeSet::full(70);
  EXPECT_EQ(s.count(), 70);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(69));
  const PeSet word = PeSet::full(64);
  EXPECT_EQ(word.count(), 64);
}

TEST(PeSet, IntersectionUnionDifference) {
  PeSet a(130);
  PeSet b(130);
  a.set(1);
  a.set(80);
  a.set(129);
  b.set(80);
  b.set(129);
  b.set(2);
  PeSet i = a;
  i &= b;
  EXPECT_EQ(i.count(), 2);
  EXPECT_TRUE(i.test(80));
  EXPECT_TRUE(i.test(129));
  PeSet u = a;
  u |= b;
  EXPECT_EQ(u.count(), 4);
  PeSet d = a;
  d.and_not(b);
  EXPECT_EQ(d.count(), 1);
  EXPECT_TRUE(d.test(1));
  EXPECT_TRUE(a.intersects(b));
  PeSet disjoint(130);
  disjoint.set(5);
  EXPECT_FALSE(a.intersects(disjoint));
}

TEST(PeSet, IterationOrderIsAscending) {
  PeSet s(400);  // a 20x20 grid: several words
  const int members[] = {0, 1, 63, 64, 65, 127, 128, 399};
  for (const int m : members) s.set(m);
  std::vector<int> seen;
  s.for_each([&](int i) { seen.push_back(i); });
  EXPECT_EQ(seen, std::vector<int>(std::begin(members), std::end(members)));
  EXPECT_EQ(s.find_first(), 0);
  EXPECT_EQ(s.find_next(1), 63);
  EXPECT_EQ(s.find_next(128), 399);
  EXPECT_EQ(s.find_next(399), -1);
  EXPECT_EQ(PeSet(64).find_first(), -1);
}

TEST(PeSet, EqualityAndWordAccess) {
  PeSet a(65);
  PeSet b(65);
  EXPECT_EQ(a, b);
  a.set(64);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.num_words(), 2);
  const PeSet::Word saved = a.word(1);
  a.set_word(1, 0);
  EXPECT_EQ(a, b);
  a.set_word(1, saved);
  EXPECT_TRUE(a.test(64));
}

TEST(PeSet, MultiWordCapacitiesKeepTailInvariant) {
  // Around and across word boundaries, and the 64x64-fabric size. fill()
  // must trim the last word's tail or count()/empty()/== see phantom bits.
  for (const int cap : {64, 65, 127, 128, 4096}) {
    PeSet s = PeSet::full(cap);
    EXPECT_EQ(s.count(), cap) << "capacity " << cap;
    EXPECT_TRUE(s.test(cap - 1));
    const int tail = cap % PeSet::kWordBits;
    if (tail != 0) {
      EXPECT_EQ(s.word(s.num_words() - 1),
                (PeSet::Word{1} << tail) - 1) << "capacity " << cap;
    }
    s.reset(cap - 1);
    EXPECT_EQ(s.count(), cap - 1);
    s.clear();
    EXPECT_TRUE(s.empty());
  }
}

TEST(PeSet, SetWordRejectsPhantomTailBits) {
  PeSet s(65);  // last word holds exactly one valid bit
  EXPECT_NO_THROW(s.set_word(1, PeSet::Word{1}));
  EXPECT_THROW(s.set_word(1, PeSet::Word{2}), AssertionError);
  EXPECT_THROW(s.set_word(1, ~PeSet::Word{0}), AssertionError);
  // restore_word round-trips values previously read via word()/words().
  const PeSet::Word saved = s.word(1);
  s.restore_word(1, 0);
  EXPECT_FALSE(s.test(64));
  s.restore_word(1, saved);
  EXPECT_TRUE(s.test(64));
  EXPECT_EQ(s.words().size(), 2u);
  EXPECT_EQ(s.words()[1], saved);
}

TEST(PeSet, FindFromAcrossWordBoundaries) {
  PeSet s(4096);
  for (const int m : {0, 63, 64, 255, 256, 4095}) s.set(m);
  EXPECT_EQ(s.find_from(-100), 0);  // starts below zero are clamped
  EXPECT_EQ(s.find_from(1), 63);
  EXPECT_EQ(s.find_from(63), 63);
  EXPECT_EQ(s.find_from(64), 64);
  EXPECT_EQ(s.find_from(65), 255);
  EXPECT_EQ(s.find_from(257), 4095);
  EXPECT_EQ(s.find_from(4095), 4095);
  EXPECT_EQ(s.find_from(4096), -1);  // at/beyond capacity
  EXPECT_EQ(s.find_next(4095), -1);
}

TEST(PeSet, TileOccupancyTracksBulkWordOps) {
  // The occupancy-bitmap contract the tiled searcher's trail relies on:
  // a clear bit t implies tile t is all-zero (over-approximation), bulk
  // word ops never tighten the map on their own, mark_tile_empty is the
  // caller-proven tightening, and restore_words re-occupies wholesale —
  // which is why backtracking needs no occupancy trail.
  PeSet s(4096);  // the 64x64-fabric size: 64 words = 8 tiles
  ASSERT_TRUE(s.tracks_tiles());
  ASSERT_EQ(s.num_tiles(), 8);
  EXPECT_EQ(s.tile_occupancy(), PeSet::Word{0});

  constexpr int kTileBits = PeSet::kTileWords * PeSet::kWordBits;
  s.set(3);                  // tile 0
  s.set(5 * kTileBits + 17);  // tile 5
  EXPECT_EQ(s.tile_occupancy(),
            (PeSet::Word{1} << 0) | (PeSet::Word{1} << 5));

  // reset() leaves occupancy alone: the stale-high map is still a valid
  // over-approximation and exact results never depend on it.
  s.reset(5 * kTileBits + 17);
  EXPECT_EQ(s.tile_occupancy(),
            (PeSet::Word{1} << 0) | (PeSet::Word{1} << 5));
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.find_from(4), -1);

  // Tile-granular wipe + snapshot restore, exactly as the tile trail
  // does it.
  s.set(7);  // a second bit in tile 0
  std::array<PeSet::Word, PeSet::kTileWords> snap;
  std::copy_n(s.words().data(), PeSet::kTileWords, snap.begin());
  s.zero_words(0, PeSet::kTileWords);
  // Occupancy still claims tile 0, but results stay exact...
  EXPECT_EQ((s.tile_occupancy() >> 0) & 1, PeSet::Word{1});
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.find_first(), -1);
  // ...until the caller-proven tightening drops the line from bulk scans
  // (tile 5's stale-high bit survives — tightening is per-tile).
  s.mark_tile_empty(0);
  EXPECT_EQ(s.tile_occupancy(), PeSet::Word{1} << 5);
  EXPECT_EQ(s.count(), 0);
  // Undo: restore_words re-marks the tile occupied.
  s.restore_words(0, PeSet::kTileWords, snap.data());
  EXPECT_EQ((s.tile_occupancy() >> 0) & 1, PeSet::Word{1});
  EXPECT_TRUE(s.test(3));
  EXPECT_TRUE(s.test(7));
  EXPECT_EQ(s.count(), 2);

  // Bulk intersect against a sparser set: bits only vanish, so the old
  // occupancy map deliberately stays put.
  PeSet m(4096);
  m.set(3);
  const PeSet::Word before = s.tile_occupancy();
  s.and_words(m, 0, PeSet::kTileWords);
  EXPECT_EQ(s.tile_occupancy(), before);
  EXPECT_EQ(s.count(), 1);
  EXPECT_TRUE(s.test(3));
  EXPECT_FALSE(s.test(7));

  // fill() occupies every tile; operator&= intersects the maps.
  PeSet f = PeSet::full(4096);
  EXPECT_EQ(f.tile_occupancy(), PeSet::Word{0xFF});
  f &= s;
  EXPECT_EQ(f.tile_occupancy(), s.tile_occupancy());
  EXPECT_EQ(f.count(), 1);

  // Invariant check: the exact mask is a subset of the tracked one.
  const PeSet::Word exact =
      simd::occupancy_mask(s.words().data(), s.words().size());
  EXPECT_EQ(exact & ~s.tile_occupancy(), PeSet::Word{0});
}

TEST(Simd, SetLevelClampsToSupport) {
  const simd::Level saved = simd::active_level();
  const simd::Level best = simd::best_supported_level();
  EXPECT_LE(static_cast<int>(saved), static_cast<int>(best));
  EXPECT_EQ(simd::set_level(simd::Level::kScalar), simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  // Requesting beyond the CPU's capability installs the best level instead.
  EXPECT_EQ(simd::set_level(simd::Level::kAvx512), best);
  EXPECT_EQ(simd::set_level(saved), saved);
}

TEST(PeSet, FusedKernelsMatchNaiveCompositionAtEveryLevel) {
  // Property test pinning the bit-identical contract: every fused kernel
  // (intersect_count, intersect_and_test, intersect_preview, is_subset_of,
  // intersects) agrees with the naive two-operation composition, and every
  // SIMD level the CPU supports agrees with every other, across capacities
  // spanning the 1-word fast path, odd tails, and the 64x64-fabric size.
  const simd::Level saved = simd::active_level();
  const int best = static_cast<int>(simd::best_supported_level());
  Rng rng(4242);
  for (const int cap : {64, 127, 257, 1024, 4096}) {
    for (int trial = 0; trial < 8; ++trial) {
      PeSet a(cap);
      PeSet b(cap);
      // Mixed densities, including near-empty intersections so the wipe
      // path gets exercised.
      const int density = 1 + static_cast<int>(rng.next_below(64));
      for (int i = 0; i < cap; ++i) {
        if (rng.next_below(64) < static_cast<std::uint64_t>(density)) {
          a.set(i);
        }
        if (rng.next_below(64) < 8u) b.set(i);
      }
      // Naive expectations via explicit bit loops.
      int expect_inter = 0;
      bool expect_subset = true;
      for (int i = 0; i < cap; ++i) {
        if (a.test(i) && b.test(i)) ++expect_inter;
        if (a.test(i) && !b.test(i)) expect_subset = false;
      }
      for (int lv = 0; lv <= best; ++lv) {
        simd::set_level(static_cast<simd::Level>(lv));
        EXPECT_EQ(a.intersect_count(b), expect_inter) << "level " << lv;
        EXPECT_EQ(a.is_subset_of(b), expect_subset) << "level " << lv;
        EXPECT_EQ(a.intersects(b), expect_inter > 0) << "level " << lv;
        EXPECT_EQ(a.count() - a.intersect_count(b) + b.count(),
                  [&] {  // |a ∪ b| via or_assign
                    PeSet u = a;
                    u |= b;
                    return u.count();
                  }());
        // Preview: dirty words are exactly those the intersection changes,
        // any == 0 iff the intersection is empty.
        PeSet inter = a;
        ASSERT_EQ(inter.intersect_and_test(b), expect_inter > 0)
            << "level " << lv;
        EXPECT_EQ(inter.count(), expect_inter) << "level " << lv;
        for (int base = 0; base < a.num_words(); base += 64) {
          const int n = std::min(64, a.num_words() - base);
          const simd::AndPreview pv = a.intersect_preview(b, base, n);
          PeSet::Word expect_dirty = 0;
          PeSet::Word expect_any = 0;
          for (int w = 0; w < n; ++w) {
            const PeSet::Word aw = a.word(base + w);
            const PeSet::Word iw = aw & b.word(base + w);
            if (iw != aw) expect_dirty |= PeSet::Word{1} << w;
            expect_any |= iw;
          }
          EXPECT_EQ(pv.dirty, expect_dirty) << "level " << lv;
          EXPECT_EQ(pv.any != 0, expect_any != 0) << "level " << lv;
        }
        // Difference against the bit-loop expectation.
        PeSet diff = a;
        diff.and_not(b);
        EXPECT_EQ(diff.count(), a.count() - expect_inter) << "level " << lv;
      }
    }
  }
  simd::set_level(saved);
}

TEST(Simd, OccupancyMaskMatchesNaiveAtEveryLevel) {
  // occupancy_mask is what (re)derives a PeSet's tile bitmap; like every
  // other kernel it must agree bit-for-bit across SIMD levels, including
  // partial final tiles. Also pins that the pinned hot_kernels() pointers
  // resolve to the same level's kernels as the free functions.
  const simd::Level saved = simd::active_level();
  const int best = static_cast<int>(simd::best_supported_level());
  Rng rng(777);
  for (const int n : {1, 7, 8, 9, 16, 63, 64, 512}) {
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<simd::Word> a(static_cast<std::size_t>(n), 0);
      for (simd::Word& w : a) {
        if (rng.next_below(4) == 0) w = rng.next_u64();
      }
      simd::Word expect = 0;
      for (int i = 0; i < n; ++i) {
        if (a[static_cast<std::size_t>(i)] != 0) {
          expect |= simd::Word{1} << (i / simd::kTileWords);
        }
      }
      for (int lv = 0; lv <= best; ++lv) {
        simd::set_level(static_cast<simd::Level>(lv));
        EXPECT_EQ(simd::occupancy_mask(a.data(), a.size()), expect)
            << "level " << lv << " n " << n;
        const simd::HotKernels hot = simd::hot_kernels();
        EXPECT_EQ(hot.count(a.data(), a.size()),
                  simd::count(a.data(), a.size()))
            << "level " << lv << " n " << n;
        EXPECT_EQ(hot.all_zero(a.data(), a.size()),
                  simd::all_zero(a.data(), a.size()))
            << "level " << lv << " n " << n;
        if (n <= 64) {
          const simd::AndPreview hp =
              hot.and_preview(a.data(), a.data(), a.size());
          const simd::AndPreview fp =
              simd::and_preview(a.data(), a.data(), a.size());
          EXPECT_EQ(hp.dirty, fp.dirty);
          EXPECT_EQ(hp.any, fp.any);
        }
      }
    }
  }
  simd::set_level(saved);
}

TEST(Deadline, CancelTokenForcesExpiry) {
  CancelToken token;
  const Deadline d(1e6, &token);
  EXPECT_FALSE(d.expired());
  token.cancel();
  EXPECT_TRUE(d.expired());
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(d.expired());
  // A deadline without a token is unaffected by cancellation elsewhere.
  const Deadline plain(1e6);
  token.cancel();
  EXPECT_FALSE(plain.expired());
}

TEST(Deadline, CancelTokenChainsToParent) {
  CancelToken parent;
  CancelToken child(&parent);
  const Deadline d(1e6, &child);
  EXPECT_FALSE(d.expired());
  // Firing the parent is observed through the child (the speculative
  // mapper cancels a whole race via the caller's token this way)...
  parent.cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(d.expired());
  EXPECT_TRUE(d.cancel_fired());
  EXPECT_DOUBLE_EQ(d.remaining_s(), 0.0);
  parent.reset();
  EXPECT_FALSE(child.cancelled());
  // ...while firing the child leaves the parent (and its other children)
  // untouched.
  child.cancel();
  EXPECT_FALSE(parent.cancelled());
  EXPECT_TRUE(child.cancelled());
}

TEST(WorkStealingPool, RunsEveryTaskIncludingNested) {
  WorkStealingPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&pool, &done] {
      // Tasks submitted from inside a worker must be awaited too.
      pool.submit([&done] { done.fetch_add(1); });
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64);
  // The pool is reusable after an idle barrier.
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 65);
}

TEST(WorkStealingPool, StealsWhenOneQueueIsLoaded) {
  // All tasks are submitted from the outside and dealt round-robin, but
  // each task body blocks until every worker has picked something up —
  // with more tasks than workers the laggards' tasks must be stolen.
  // (On a single-core machine the pool still has 4 workers; they
  // timeslice.)
  WorkStealingPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64);
  // steals() is telemetry, not a guarantee — just check it is readable
  // and sane (cannot exceed the task count).
  EXPECT_LE(pool.steals(), 64u);
}

TEST(WorkStealingPool, RethrowsFirstTaskExceptionFromWaitIdle) {
  WorkStealingPool pool(2);
  std::atomic<int> survivors{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 8; ++i) {
    pool.submit([&survivors] { survivors.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The failure did not take down the other tasks.
  EXPECT_EQ(survivors.load(), 8);
  // A later barrier with no new failure passes.
  pool.submit([&survivors] { survivors.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(survivors.load(), 9);
}

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kWarn);
}

TEST(AsciiTable, RendersAlignedCells) {
  AsciiTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_separator();
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_THROW(t.add_row({"only-one-cell"}), AssertionError);
}

TEST(FormatTime, PaperStyle) {
  EXPECT_EQ(format_time_s(0.004), "~0.01");   // the paper's "~0.01"
  EXPECT_EQ(format_time_s(0.42), "0.42");
  EXPECT_EQ(format_time_s(223.514), "223.51");
  EXPECT_EQ(format_time_s(-1.0), "TO");       // timeout marker
}

TEST(FormatFixed, Digits) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(10288.8949, 2), "10288.89");
}

TEST(Csv, QuotesOnlyWhenNeeded) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

}  // namespace
}  // namespace monomap
