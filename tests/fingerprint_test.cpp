// Canonical DFG fingerprinting: isomorphism invariance, perturbation
// sensitivity, and collision sanity over the benchmark suite.
#include "mapper/fingerprint.hpp"

#include <algorithm>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "arch/cgra.hpp"
#include "io/dfg_io.hpp"
#include "workloads/suite.hpp"

namespace monomap {
namespace {

/// Relabel `dfg` through `perm` (old id -> new id). Opcodes collapse to
/// the from_edges default, so compare against a same-route copy of the
/// original, never against a fingerprint of the opcode-carrying source.
Dfg permuted_copy(const Dfg& dfg, const std::vector<NodeId>& perm) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(dfg.num_edges()));
  for (EdgeId e = 0; e < dfg.num_edges(); ++e) {
    const Edge& edge = dfg.graph().edge(e);
    edges.push_back(Edge{perm[static_cast<std::size_t>(edge.src)],
                         perm[static_cast<std::size_t>(edge.dst)],
                         edge.attr});
  }
  return Dfg::from_edges("perm", dfg.num_nodes(), edges);
}

Dfg structural_copy(const Dfg& dfg) {
  std::vector<NodeId> identity(static_cast<std::size_t>(dfg.num_nodes()));
  for (std::size_t v = 0; v < identity.size(); ++v) {
    identity[v] = static_cast<NodeId>(v);
  }
  return permuted_copy(dfg, identity);
}

std::vector<NodeId> reversed_perm(int n) {
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    perm[static_cast<std::size_t>(v)] = static_cast<NodeId>(n - 1 - v);
  }
  return perm;
}

std::vector<NodeId> shuffled_perm(int n, unsigned seed) {
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  std::mt19937 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

TEST(FingerprintTest, IdenticalGraphsHashEqual) {
  for (const Benchmark& bench : benchmark_suite()) {
    const DfgFingerprint a = fingerprint_dfg(bench.dfg);
    const DfgFingerprint b = fingerprint_dfg(bench.dfg);
    EXPECT_EQ(a.iso_hi, b.iso_hi) << bench.name;
    EXPECT_EQ(a.iso_lo, b.iso_lo) << bench.name;
    EXPECT_EQ(a.exact, b.exact) << bench.name;
    EXPECT_EQ(a.canonical, b.canonical) << bench.name;
  }
}

TEST(FingerprintTest, IsomorphicRelabelingsHashEqual) {
  for (const Benchmark& bench : benchmark_suite()) {
    const Dfg base = structural_copy(bench.dfg);
    const DfgFingerprint fp = fingerprint_dfg(base);
    const int n = base.num_nodes();
    const std::vector<std::vector<NodeId>> perms = {
        reversed_perm(n), shuffled_perm(n, 1), shuffled_perm(n, 2),
        shuffled_perm(n, 3)};
    for (const auto& perm : perms) {
      const Dfg relabeled = permuted_copy(base, perm);
      const DfgFingerprint fp2 = fingerprint_dfg(relabeled);
      EXPECT_EQ(fp.iso_hi, fp2.iso_hi) << bench.name;
      EXPECT_EQ(fp.iso_lo, fp2.iso_lo) << bench.name;
      EXPECT_EQ(fp.canonical, fp2.canonical) << bench.name;
    }
  }
}

TEST(FingerprintTest, TextRoundTripPreservesFingerprint) {
  for (const Benchmark& bench : benchmark_suite()) {
    // dfg_to_text drops opcodes, so compare against the structural copy
    // (the graph that round-trips), not the opcode-carrying original.
    const Dfg base = structural_copy(bench.dfg);
    const Dfg reloaded = dfg_from_text(dfg_to_text(bench.dfg));
    const DfgFingerprint a = fingerprint_dfg(base);
    const DfgFingerprint b = fingerprint_dfg(reloaded);
    EXPECT_EQ(a.iso_hi, b.iso_hi) << bench.name;
    EXPECT_EQ(a.iso_lo, b.iso_lo) << bench.name;
  }
}

TEST(FingerprintTest, PerturbationChangesFingerprint) {
  for (const Benchmark& bench : benchmark_suite()) {
    const Dfg base = structural_copy(bench.dfg);
    const DfgFingerprint fp = fingerprint_dfg(base);

    // Drop the last edge.
    {
      std::vector<Edge> edges;
      for (EdgeId e = 0; e + 1 < base.num_edges(); ++e) {
        edges.push_back(base.graph().edge(e));
      }
      const Dfg fewer = Dfg::from_edges("fewer", base.num_nodes(), edges);
      const DfgFingerprint fp2 = fingerprint_dfg(fewer);
      EXPECT_FALSE(fp.iso_hi == fp2.iso_hi && fp.iso_lo == fp2.iso_lo)
          << bench.name;
    }
    // Bump one edge's loop-carried distance.
    {
      std::vector<Edge> edges;
      for (EdgeId e = 0; e < base.num_edges(); ++e) {
        edges.push_back(base.graph().edge(e));
      }
      edges.front().attr += 1;
      const Dfg shifted = Dfg::from_edges("shift", base.num_nodes(), edges);
      const DfgFingerprint fp2 = fingerprint_dfg(shifted);
      EXPECT_FALSE(fp.iso_hi == fp2.iso_hi && fp.iso_lo == fp2.iso_lo)
          << bench.name;
    }
    // Add an isolated node.
    {
      std::vector<Edge> edges;
      for (EdgeId e = 0; e < base.num_edges(); ++e) {
        edges.push_back(base.graph().edge(e));
      }
      const Dfg bigger = Dfg::from_edges("pad", base.num_nodes() + 1, edges);
      const DfgFingerprint fp2 = fingerprint_dfg(bigger);
      EXPECT_FALSE(fp.iso_hi == fp2.iso_hi && fp.iso_lo == fp2.iso_lo)
          << bench.name;
    }
  }
}

TEST(FingerprintTest, SuiteIsCollisionFree) {
  // The paper suite's graphs are pairwise non-isomorphic (as structural
  // graphs), so their 128-bit fingerprints must all differ.
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (const Benchmark& bench : benchmark_suite()) {
    const DfgFingerprint fp = fingerprint_dfg(structural_copy(bench.dfg));
    EXPECT_TRUE(seen.insert({fp.iso_hi, fp.iso_lo}).second)
        << bench.name << " collides with an earlier suite graph";
  }
  EXPECT_GE(seen.size(), 10u);
}

TEST(FingerprintTest, CanonicalPermutationIsValid) {
  for (const Benchmark& bench : benchmark_suite()) {
    const DfgFingerprint fp = fingerprint_dfg(bench.dfg);
    ASSERT_TRUE(fp.canonical) << bench.name;
    ASSERT_EQ(fp.canon.size(),
              static_cast<std::size_t>(bench.dfg.num_nodes()));
    std::vector<bool> hit(fp.canon.size(), false);
    for (const NodeId ci : fp.canon) {
      ASSERT_GE(ci, 0);
      ASSERT_LT(static_cast<std::size_t>(ci), fp.canon.size());
      EXPECT_FALSE(hit[static_cast<std::size_t>(ci)]);
      hit[static_cast<std::size_t>(ci)] = true;
    }
  }
}

TEST(FingerprintTest, ExhaustedBudgetStillIsomorphismInvariant) {
  // With the canonicalisation budget forced to (almost) nothing the
  // fingerprint falls back to the WL colour multiset — still isomorphism
  // invariant, just not collision-resistant against automorphic twins.
  for (const Benchmark& bench : benchmark_suite()) {
    const Dfg base = structural_copy(bench.dfg);
    const Dfg relabeled = permuted_copy(base, reversed_perm(base.num_nodes()));
    const DfgFingerprint a = fingerprint_dfg(base, 1);
    const DfgFingerprint b = fingerprint_dfg(relabeled, 1);
    EXPECT_EQ(a.canonical, b.canonical) << bench.name;
    EXPECT_EQ(a.iso_hi, b.iso_hi) << bench.name;
    EXPECT_EQ(a.iso_lo, b.iso_lo) << bench.name;
  }
}

TEST(FingerprintTest, ArchFingerprintSeparatesShapes) {
  std::set<std::uint64_t> seen;
  for (const int rows : {2, 4, 8}) {
    for (const int cols : {2, 4, 8}) {
      for (const Topology topo :
           {Topology::kMesh, Topology::kTorus, Topology::kDiagonal}) {
        const CgraArch arch(rows, cols, topo);
        EXPECT_TRUE(seen.insert(fingerprint_arch(arch)).second)
            << rows << 'x' << cols;
      }
    }
  }
  const CgraArch again(4, 4, Topology::kMesh);
  EXPECT_EQ(fingerprint_arch(again),
            fingerprint_arch(CgraArch(4, 4, Topology::kMesh)));
}

}  // namespace
}  // namespace monomap
