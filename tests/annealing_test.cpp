// Tests for the DRESC-style simulated-annealing baseline.
#include <gtest/gtest.h>

#include "mapper/annealing_mapper.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "workloads/running_example.hpp"
#include "workloads/suite.hpp"

namespace monomap {
namespace {

AnnealingOptions quick_options() {
  AnnealingOptions opt;
  opt.timeout_s = 60.0;
  return opt;
}

TEST(Annealing, RunningExampleMapsValidly) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  const AnnealResult r = AnnealingMapper(quick_options()).map(dfg, arch);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(mapping_is_valid(dfg, arch, r.mapping));
  EXPECT_GE(r.ii, r.mii.mii());
}

TEST(Annealing, DeterministicUnderFixedSeed) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  const AnnealResult a = AnnealingMapper(quick_options()).map(dfg, arch);
  const AnnealResult b = AnnealingMapper(quick_options()).map(dfg, arch);
  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  EXPECT_EQ(a.ii, b.ii);
  EXPECT_EQ(a.moves, b.moves);
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    EXPECT_EQ(a.mapping.pe(v), b.mapping.pe(v));
    EXPECT_EQ(a.mapping.time(v), b.mapping.time(v));
  }
}

class AnnealingSuite : public ::testing::TestWithParam<int> {};

TEST_P(AnnealingSuite, MapsValidlyOn4x4) {
  const Benchmark& b = benchmark_suite()[static_cast<std::size_t>(GetParam())];
  const CgraArch arch = CgraArch::square(4);
  const AnnealResult r = AnnealingMapper(quick_options()).map(b.dfg, arch);
  ASSERT_TRUE(r.success) << b.name << ": " << r.failure_reason;
  EXPECT_TRUE(mapping_is_valid(b.dfg, arch, r.mapping)) << b.name;
}

// The smaller/medium kernels; the widest ones can exceed the quick budget —
// which is itself the paper's point about heuristics (bench_heuristic
// measures it instead of asserting it).
INSTANTIATE_TEST_SUITE_P(
    Subset, AnnealingSuite, ::testing::Values(0, 2, 3, 6, 7, 13, 16),
    [](const ::testing::TestParamInfo<int>& info) {
      return benchmark_suite()[static_cast<std::size_t>(info.param)].name;
    });

TEST(Annealing, QualityNeverBeatsExactMapper) {
  // The exact decoupled mapper proves II optimality per instance (modulo
  // constraint gaps); annealing can only match or exceed its II.
  for (const char* name : {"bitcount", "susan", "gsm"}) {
    const Benchmark& b = benchmark_by_name(name);
    const CgraArch arch = CgraArch::square(3);
    DecoupledMapperOptions exact_opt;
    exact_opt.timeout_s = 60.0;
    const MapResult exact = DecoupledMapper(exact_opt).map(b.dfg, arch);
    const AnnealResult heur = AnnealingMapper(quick_options()).map(b.dfg, arch);
    ASSERT_TRUE(exact.success) << name;
    ASSERT_TRUE(heur.success) << name;
    EXPECT_LE(exact.ii, heur.ii) << name;
  }
}

TEST(Annealing, TimeoutReported) {
  const Benchmark& b = benchmark_by_name("hotspot3D");
  AnnealingOptions opt;
  opt.timeout_s = 1e-6;
  const AnnealResult r = AnnealingMapper(opt).map(b.dfg, CgraArch::square(5));
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.timed_out);
}

}  // namespace
}  // namespace monomap
