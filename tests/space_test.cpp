// Tests for the monomorphism space search (paper Sec. IV-C).
#include <gtest/gtest.h>

#include "space/monomorphism.hpp"
#include "timing/time_solver.hpp"
#include "workloads/running_example.hpp"
#include "workloads/suite.hpp"

namespace monomap {
namespace {

/// Check the returned placement is a genuine monomorphism.
void expect_monomorphism(const Dfg& dfg, const CgraArch& arch,
                         const std::vector<int>& labels, int ii,
                         const SpaceResult& result) {
  ASSERT_TRUE(result.found) << result.failure_reason;
  ASSERT_EQ(result.pe.size(), static_cast<std::size_t>(dfg.num_nodes()));
  // mono1: injective on (PE, slot).
  std::set<std::pair<PeId, int>> used;
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    EXPECT_TRUE(arch.has_pe(result.pe[static_cast<std::size_t>(v)]));
    EXPECT_TRUE(used.emplace(result.pe[static_cast<std::size_t>(v)],
                             labels[static_cast<std::size_t>(v)])
                    .second)
        << "vertex collision for node " << v;
  }
  // mono3: edges land on adjacent-or-same PEs.
  const Graph& g = dfg.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.src == edge.dst) continue;
    EXPECT_TRUE(arch.adjacent_or_same(
        result.pe[static_cast<std::size_t>(edge.src)],
        result.pe[static_cast<std::size_t>(edge.dst)]))
        << "edge " << edge.src << "->" << edge.dst;
  }
}

std::vector<int> labels_of(const TimeSolution& sol, const Dfg& dfg) {
  std::vector<int> labels;
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    labels.push_back(sol.label(v));
  }
  return labels;
}

TEST(Monomorphism, RunningExamplePlacesOn2x2) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  TimeSolver time_solver(dfg, arch);
  const auto sol = time_solver.next(Deadline::unlimited());
  ASSERT_TRUE(sol.has_value());
  const auto labels = labels_of(*sol, dfg);
  const SpaceResult result = find_monomorphism(dfg, arch, labels, sol->ii);
  expect_monomorphism(dfg, arch, labels, sol->ii, result);
}

TEST(Monomorphism, TrivialSingleNode) {
  const Dfg dfg = Dfg::from_edges("one", 1, {});
  const CgraArch arch = CgraArch::square(3);
  const SpaceResult r = find_monomorphism(dfg, arch, {0}, 1);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.backtracks, 0u);
}

TEST(Monomorphism, RejectsOverCapacityLabelLayer) {
  // 5 nodes all labelled 0 on a 2x2 grid: impossible.
  const Dfg dfg = Dfg::from_edges("five", 5, {});
  const CgraArch arch = CgraArch::square(2);
  const SpaceResult r = find_monomorphism(dfg, arch, {0, 0, 0, 0, 0}, 2);
  EXPECT_FALSE(r.found);
  EXPECT_NE(r.failure_reason.find("capacity"), std::string::npos);
}

TEST(Monomorphism, SameLabelCliqueNeedsMutualAdjacency) {
  // Triangle, all same label: needs 3 pairwise-adjacent distinct PEs; a
  // 2x2 mesh has no triangle -> fail; a diagonal (king) mesh does -> found.
  const Dfg dfg = Dfg::from_edges(
      "tri", 3, {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}});
  const std::vector<int> labels{0, 0, 0};
  const SpaceResult on_mesh =
      find_monomorphism(dfg, CgraArch::square(2), labels, 2);
  EXPECT_FALSE(on_mesh.found);
  const SpaceResult on_king = find_monomorphism(
      dfg, CgraArch(2, 2, Topology::kDiagonal), labels, 2);
  EXPECT_TRUE(on_king.found);
}

TEST(Monomorphism, SamePeAcrossSlotsIsAllowed) {
  // Chain a->b->c with labels 0,1,2: can fold onto very few PEs because a
  // PE may hold different nodes at different slots.
  const Dfg dfg = Dfg::from_edges("chain", 3, {{0, 1, 0}, {1, 2, 0}});
  const CgraArch arch(1, 1);  // single PE!
  const SpaceResult r = find_monomorphism(dfg, arch, {0, 1, 2}, 3);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.pe[0], 0);
  EXPECT_EQ(r.pe[1], 0);
  EXPECT_EQ(r.pe[2], 0);
}

TEST(Monomorphism, ConsecutiveOnlyModelRejectsLongSpans) {
  // Edge between labels 0 and 2 with II=4: fine under register persistence,
  // rejected under the consecutive-only MRRG.
  const Dfg dfg = Dfg::from_edges("pair", 2, {{0, 1, 0}});
  const CgraArch arch = CgraArch::square(2);
  SpaceOptions persist;
  const SpaceResult ok = find_monomorphism(dfg, arch, {0, 2}, 4, persist);
  EXPECT_TRUE(ok.found);
  SpaceOptions consec;
  consec.model = MrrgModel::kConsecutiveOnly;
  const SpaceResult bad = find_monomorphism(dfg, arch, {0, 2}, 4, consec);
  EXPECT_FALSE(bad.found);
  EXPECT_NE(bad.failure_reason.find("non-consecutive"), std::string::npos);
}

TEST(Monomorphism, OrderHeuristicsAllSucceedOnSuiteSchedules) {
  const Benchmark& b = benchmark_by_name("gsm");
  const CgraArch arch = CgraArch::square(4);
  TimeSolver time_solver(b.dfg, arch);
  // Not every yielded schedule is spatially feasible (which exact label
  // vector comes first depends on the time engine's model order); walk to
  // the first placeable one — the complete default search decides that
  // order-independently — then require every static order to place it too.
  std::optional<TimeSolution> sol;
  std::vector<int> labels;
  for (int round = 0; round < 8; ++round) {
    sol = time_solver.next(Deadline::unlimited());
    ASSERT_TRUE(sol.has_value());
    labels = labels_of(*sol, b.dfg);
    SpaceOptions complete;
    complete.max_backtracks = 0;
    if (find_monomorphism(b.dfg, arch, labels, sol->ii, complete).found) {
      break;
    }
    sol.reset();
  }
  ASSERT_TRUE(sol.has_value()) << "no placeable gsm schedule in 8 rounds";
  for (const SpaceOrder order :
       {SpaceOrder::kConnectivity, SpaceOrder::kDegree, SpaceOrder::kBfs}) {
    SpaceOptions opt;
    opt.order = order;
    opt.max_backtracks = 0;  // completeness, not budget luck
    const SpaceResult r = find_monomorphism(b.dfg, arch, labels, sol->ii, opt);
    expect_monomorphism(b.dfg, arch, labels, sol->ii, r);
  }
}

TEST(Monomorphism, SymmetryBreakingPreservesCompleteness) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  TimeSolver time_solver(dfg, arch);
  const auto sol = time_solver.next(Deadline::unlimited());
  ASSERT_TRUE(sol.has_value());
  const auto labels = labels_of(*sol, dfg);
  SpaceOptions with;
  with.symmetry_breaking = true;
  SpaceOptions without;
  without.symmetry_breaking = false;
  EXPECT_EQ(find_monomorphism(dfg, arch, labels, sol->ii, with).found,
            find_monomorphism(dfg, arch, labels, sol->ii, without).found);
}

TEST(Monomorphism, BacktrackBudgetReportsTimeout) {
  // An adversarial instance: a dense same-label structure that forces
  // backtracking, with a budget of 1.
  const Benchmark& b = benchmark_by_name("hotspot3D");
  const CgraArch arch = CgraArch::square(4);
  TimeSolver time_solver(b.dfg, arch);
  const auto sol = time_solver.next(Deadline::unlimited());
  ASSERT_TRUE(sol.has_value());
  const auto labels = labels_of(*sol, b.dfg);
  SpaceOptions opt;
  opt.max_backtracks = 0;  // unlimited: should find or exhaust
  const SpaceResult full = find_monomorphism(b.dfg, arch, labels, sol->ii, opt);
  EXPECT_FALSE(full.deadline_expired);
  // With a unit budget, either it finds a solution greedily or reports a
  // (budget) timeout.
  opt.max_backtracks = 1;
  const SpaceResult tiny = find_monomorphism(b.dfg, arch, labels, sol->ii, opt);
  if (!tiny.found) {
    EXPECT_TRUE(tiny.timed_out);
    EXPECT_FALSE(tiny.deadline_expired);
  }
}

TEST(Monomorphism, DeadlineExpiresCleanly) {
  const Benchmark& b = benchmark_by_name("cfd");
  const CgraArch arch = CgraArch::square(8);
  TimeSolver time_solver(b.dfg, arch);
  const auto sol = time_solver.next(Deadline::unlimited());
  ASSERT_TRUE(sol.has_value());
  const auto labels = labels_of(*sol, b.dfg);
  const Deadline expired(0.0);
  const SpaceResult r =
      find_monomorphism(b.dfg, arch, labels, sol->ii, SpaceOptions{}, expired);
  // Deadline checks are periodic (every 4096 expansions), so a search that
  // completes before the first check legitimately never reports expiry —
  // conflict-directed search refutes this instance that fast. What must
  // hold: any early stop under an expired deadline is attributed to the
  // deadline, never to the backtrack budget.
  if (!r.found) {
    EXPECT_EQ(r.timed_out, r.deadline_expired);
    EXPECT_FALSE(r.truncated);
  }
}

TEST(Monomorphism, DisconnectedComponentsPlaceIndependently) {
  // Two disjoint edges; all labels distinct.
  const Dfg dfg = Dfg::from_edges("two", 4, {{0, 1, 0}, {2, 3, 0}});
  const CgraArch arch = CgraArch::square(2);
  const SpaceResult r = find_monomorphism(dfg, arch, {0, 1, 2, 3}, 4);
  EXPECT_TRUE(r.found);
}

TEST(Monomorphism, LabelOutOfRangeAsserts) {
  const Dfg dfg = Dfg::from_edges("one", 1, {});
  const CgraArch arch = CgraArch::square(2);
  EXPECT_THROW(find_monomorphism(dfg, arch, {5}, 2), AssertionError);
}

}  // namespace
}  // namespace monomap
