// Tests for the restricted-interconnect extension (the paper's future-work
// architecture: no cross-slot register persistence; values must be consumed
// on equal or cyclically-consecutive kernel slots).
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "mapper/routing_transform.hpp"
#include "sim/simulator.hpp"
#include "timing/time_formulation.hpp"
#include "workloads/running_example.hpp"
#include "workloads/suite.hpp"

namespace monomap {
namespace {

DecoupledMapperOptions restricted_options() {
  DecoupledMapperOptions opt;
  opt.timeout_s = 60.0;
  opt.space.model = MrrgModel::kConsecutiveOnly;
  return opt;
}

TEST(Restricted, RunningExampleStillMaps) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  const MapResult r = DecoupledMapper(restricted_options()).map(dfg, arch);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(mapping_is_valid(dfg, arch, r.mapping,
                               MrrgModel::kConsecutiveOnly));
  // The restriction can only keep II equal or raise it.
  EXPECT_GE(r.ii, 4);
}

class RestrictedSuite : public ::testing::TestWithParam<int> {};

TEST_P(RestrictedSuite, MapsWithRoutingOn5x5) {
  const Benchmark& b = benchmark_suite()[static_cast<std::size_t>(GetParam())];
  const CgraArch arch = CgraArch::square(5);
  RoutedDfg routed{b.dfg, b.dfg.num_nodes(), {}};
  const MapResult r =
      map_with_routing(b.dfg, arch, restricted_options(), &routed);
  ASSERT_TRUE(r.success) << b.name << ": " << r.failure_reason;
  EXPECT_TRUE(mapping_is_valid(routed.dfg, arch, r.mapping,
                               MrrgModel::kConsecutiveOnly))
      << b.name;
  // Unrestricted mapping at the same budget: II can only be <= (the
  // persistence architecture strictly dominates — the paper's Sec. V
  // argument, and [24]'s observed II inflation).
  DecoupledMapperOptions free_opt;
  free_opt.timeout_s = 60.0;
  const MapResult free_run = DecoupledMapper(free_opt).map(b.dfg, arch);
  ASSERT_TRUE(free_run.success) << b.name;
  EXPECT_LE(free_run.ii, r.ii) << b.name;
}

// The benchmarks the restricted flow handles today (12 of 17): easy cases
// plus routing-heavy ones like aes (mapped at II 16 vs 14 unrestricted —
// the II inflation the paper attributes to routing-node approaches [24]).
// crc32/basicmath/sha2/lud/particlefilter combine mid-length recurrences
// with hub nodes and defeat the chain-embedding search; documented as a
// limitation in DESIGN.md.
INSTANTIATE_TEST_SUITE_P(
    Subset, RestrictedSuite,
    ::testing::Values(0, 1, 3, 6, 7, 8, 11, 13, 15, 16),
    [](const ::testing::TestParamInfo<int>& info) {
      return benchmark_suite()[static_cast<std::size_t>(info.param)].name;
    });

TEST(Routing, InsertsUnitSpanChains) {
  // Diamond with unbalanced arms: 0 -> 1 -> 2 -> 3 and 0 -> 3 directly;
  // the direct edge has ASAP gap 3 and must gain 2 route nodes.
  const Dfg dfg = Dfg::from_edges(
      "diamond", 4, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {0, 3, 0}});
  const RoutedDfg routed = insert_route_nodes(dfg);
  EXPECT_EQ(routed.original_nodes, 4);
  EXPECT_EQ(routed.num_route_nodes(), 2);
  EXPECT_EQ(routed.dfg.num_nodes(), 6);
  // All distance-0 edges of the routed DFG now have unit ASAP span.
  const auto asap =
      longest_path_from_sources(routed.dfg.graph(), edges_with_attr(0));
  const Graph& g = routed.dfg.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.edge(e).attr != 0) continue;
    EXPECT_EQ(asap[static_cast<std::size_t>(g.edge(e).dst)] -
                  asap[static_cast<std::size_t>(g.edge(e).src)],
              1);
  }
}

TEST(Routing, LeavesLoopCarriedEdgesAlone) {
  const Dfg dfg = Dfg::from_edges(
      "rec", 3, {{0, 1, 0}, {1, 2, 0}, {2, 0, 1}});
  const RoutedDfg routed = insert_route_nodes(dfg);
  EXPECT_EQ(routed.num_route_nodes(), 0);
  EXPECT_EQ(recurrence_mii(routed.dfg.graph()), 3);
}

TEST(Restricted, MappedExecutionStillMatchesInterpreter) {
  const Benchmark& b = benchmark_by_name("gsm");
  const CgraArch arch = CgraArch::square(4);
  const MapResult r = DecoupledMapper(restricted_options()).map(b.dfg, arch);
  ASSERT_TRUE(r.success) << r.failure_reason;
  SimOptions sopt;
  sopt.iterations = r.mapping.num_stages() + 4;
  const auto problems =
      verify_mapping_by_simulation(b.kernel, b.dfg, arch, r.mapping, sopt);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
}

TEST(Restricted, TimeFormulationForbidsLongSpans) {
  // Chain a->b with a's window at T=0 and b forced beyond T=1 by a second
  // path: with II=4 and consecutive_slots the slot-distance-2 assignment
  // must be excluded.
  const Dfg dfg = Dfg::from_edges(
      "span", 4, {{0, 1, 0}, {0, 2, 0}, {2, 3, 0}, {1, 3, 0}});
  const CgraArch arch = CgraArch::square(3);
  TimeConstraintOptions opt;
  opt.consecutive_slots = true;
  TimeFormulation f(dfg, arch, 4, 0, opt);
  ASSERT_TRUE(f.build());
  ASSERT_EQ(f.solve(Deadline::unlimited()), SatStatus::kSat);
  const TimeSolution sol = f.extract();
  const Graph& g = dfg.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const int d =
        (sol.label(g.edge(e).dst) - sol.label(g.edge(e).src) + 4) % 4;
    EXPECT_TRUE(d == 0 || d == 1 || d == 3) << "edge " << e;
  }
}

TEST(Restricted, ValidatorFlagsNonConsecutiveSpan) {
  const Dfg dfg = Dfg::from_edges("pair", 2, {{0, 1, 0}});
  const CgraArch arch = CgraArch::square(2);
  // Slots 0 and 2 with II=4: fine under persistence, invalid restricted.
  const Mapping m(4, {0, 2}, {0, 1});
  EXPECT_TRUE(mapping_is_valid(dfg, arch, m));
  EXPECT_FALSE(
      mapping_is_valid(dfg, arch, m, MrrgModel::kConsecutiveOnly));
}

}  // namespace
}  // namespace monomap
