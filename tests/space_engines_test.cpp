// Differential tests: the bitset space-search engine against the reference
// scan engine, plus the parallel portfolio mapper built on top of it.
//
// Both engines are complete searches over the same space, so on any
// instance they must agree on found/not-found (given unlimited budgets),
// and every found placement must be a genuine monomorphism. The sweep
// crosses random DFGs with random label vectors — schedule-feasible or not,
// the space search must handle them — over all three topologies and
// II in {1..4}.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "mapper/decoupled_mapper.hpp"
#include "space/monomorphism.hpp"
#include "support/rng.hpp"
#include "timing/time_solver.hpp"
#include "workloads/running_example.hpp"
#include "workloads/suite.hpp"
#include "workloads/synthetic.hpp"

namespace monomap {
namespace {

/// mono1 + mono3 validity of a found placement.
void expect_valid_placement(const Dfg& dfg, const CgraArch& arch,
                            const std::vector<int>& labels,
                            const SpaceResult& result) {
  ASSERT_EQ(result.pe.size(), static_cast<std::size_t>(dfg.num_nodes()));
  std::set<std::pair<PeId, int>> used;
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    ASSERT_TRUE(arch.has_pe(result.pe[static_cast<std::size_t>(v)]));
    EXPECT_TRUE(used.emplace(result.pe[static_cast<std::size_t>(v)],
                             labels[static_cast<std::size_t>(v)])
                    .second)
        << "vertex collision for node " << v;
  }
  const Graph& g = dfg.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.src == edge.dst) continue;
    EXPECT_TRUE(arch.adjacent_or_same(
        result.pe[static_cast<std::size_t>(edge.src)],
        result.pe[static_cast<std::size_t>(edge.dst)]))
        << "edge " << edge.src << "->" << edge.dst;
  }
}

SpaceOptions engine_options(SpaceEngine engine) {
  SpaceOptions opt;
  opt.engine = engine;
  opt.max_backtracks = 0;  // complete searches must agree exactly
  return opt;
}

TEST(SpaceEngines, DifferentialRandomSweep) {
  int instances = 0;
  int found_count = 0;
  for (const Topology topology :
       {Topology::kMesh, Topology::kTorus, Topology::kDiagonal}) {
    const CgraArch arch(3, 3, topology);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      SyntheticSpec spec;
      spec.num_nodes = 8 + static_cast<int>(seed) * 2;  // 10..20 nodes
      spec.seed = seed * 977;
      const Dfg dfg = random_dfg(spec);
      for (int ii = 1; ii <= 4; ++ii) {
        // Random labels: the space search must behave identically whether
        // or not a schedule would ever produce this label vector.
        Rng rng(seed * 131 + static_cast<std::uint64_t>(ii));
        std::vector<int> labels(static_cast<std::size_t>(dfg.num_nodes()));
        for (int& l : labels) {
          l = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(ii)));
        }
        const SpaceResult bitset = find_monomorphism(
            dfg, arch, labels, ii, engine_options(SpaceEngine::kBitset));
        const SpaceResult reference = find_monomorphism(
            dfg, arch, labels, ii, engine_options(SpaceEngine::kReference));
        ASSERT_EQ(bitset.found, reference.found)
            << "engines disagree: topology=" << topology_name(topology)
            << " seed=" << seed << " ii=" << ii;
        ++instances;
        if (bitset.found) {
          ++found_count;
          expect_valid_placement(dfg, arch, labels, bitset);
          expect_valid_placement(dfg, arch, labels, reference);
        }
      }
    }
  }
  // The sweep must exercise both outcomes to mean anything.
  EXPECT_GT(found_count, 0);
  EXPECT_LT(found_count, instances);
}

TEST(SpaceEngines, DifferentialOnScheduleRealisticInstances) {
  // Real schedules from the time solver, both engines, all variable orders.
  // hotspot3D is restricted to dynamic MRV: its first 4x4 schedule is
  // spatially infeasible and the *reference* engine needs >10 s to prove
  // exhaustion under the weak static orders.
  for (const char* name : {"gsm", "fft", "hotspot3D"}) {
    const bool hard = std::string(name) == "hotspot3D";
    const Benchmark& b = benchmark_by_name(name);
    const CgraArch arch = CgraArch::square(4);
    TimeSolver solver(b.dfg, arch);
    const auto sol = solver.next(Deadline(30.0));
    ASSERT_TRUE(sol.has_value()) << name;
    std::vector<int> labels;
    for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
      labels.push_back(sol->label(v));
    }
    for (const SpaceOrder order :
         {SpaceOrder::kDynamicMrv, SpaceOrder::kConnectivity,
          SpaceOrder::kDegree, SpaceOrder::kBfs}) {
      if (hard && order != SpaceOrder::kDynamicMrv) continue;
      SpaceOptions bitset_opt = engine_options(SpaceEngine::kBitset);
      bitset_opt.order = order;
      SpaceOptions ref_opt = engine_options(SpaceEngine::kReference);
      ref_opt.order = order;
      const SpaceResult bitset =
          find_monomorphism(b.dfg, arch, labels, sol->ii, bitset_opt);
      const SpaceResult reference =
          find_monomorphism(b.dfg, arch, labels, sol->ii, ref_opt);
      ASSERT_EQ(bitset.found, reference.found)
          << name << " order=" << to_string(order);
      if (bitset.found) {
        expect_valid_placement(b.dfg, arch, labels, bitset);
      }
    }
  }
}

/// Sub-DFG induced by `nodes` (ids are compacted in order), with the
/// matching label projection — the instance a conflict explanation claims
/// is unplaceable.
Dfg induced_subdfg(const Dfg& dfg, const std::vector<int>& labels,
                   const std::vector<NodeId>& nodes,
                   std::vector<int>& sub_labels) {
  std::vector<NodeId> to_sub(static_cast<std::size_t>(dfg.num_nodes()),
                             kInvalidNode);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    to_sub[static_cast<std::size_t>(nodes[i])] = static_cast<NodeId>(i);
  }
  std::vector<Edge> edges;
  const Graph& g = dfg.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    const NodeId s = to_sub[static_cast<std::size_t>(edge.src)];
    const NodeId d = to_sub[static_cast<std::size_t>(edge.dst)];
    if (s == kInvalidNode || d == kInvalidNode) continue;
    edges.push_back(Edge{s, d, edge.attr});
  }
  sub_labels.clear();
  for (const NodeId v : nodes) {
    sub_labels.push_back(labels[static_cast<std::size_t>(v)]);
  }
  return Dfg::from_edges("induced", static_cast<int>(nodes.size()), edges);
}

TEST(SpaceEngines, ConflictExplanationsAreSoundUnderTruncation) {
  // A recorded conflict explanation claims: the induced sub-DFG with these
  // labels admits NO placement — that is what add_space_nogood turns into
  // a schedule-pruning clause, so an unsound one would silently exclude
  // mappable schedules. Sweep random instances under a range of budgets
  // (tiny budgets exercise the early self-contained-refutation path, which
  // may emit explanations from a search that never saw the whole tree) and
  // cross-check every emitted explanation against an exhaustive kReference
  // run on the induced subproblem.
  int checked = 0;
  for (const Topology topology : {Topology::kMesh, Topology::kTorus}) {
    const CgraArch arch(3, 3, topology);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      SyntheticSpec spec;
      spec.num_nodes = 10 + static_cast<int>(seed) * 2;  // 12..22 nodes
      spec.seed = seed * 7919;
      const Dfg dfg = random_dfg(spec);
      for (int ii = 1; ii <= 3; ++ii) {
        Rng rng(seed * 53 + static_cast<std::uint64_t>(ii));
        std::vector<int> labels(static_cast<std::size_t>(dfg.num_nodes()));
        for (int& l : labels) {
          l = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(ii)));
        }
        for (const std::uint64_t budget : {25ull, 400ull, 0ull}) {
          SpaceOptions opt;  // bitset default: CBJ + distance-2 on
          opt.max_backtracks = budget;
          const SpaceResult r = find_monomorphism(dfg, arch, labels, ii, opt);
          if (r.found || r.conflict_nodes.empty()) continue;
          EXPECT_FALSE(r.timed_out)
              << "explanations must only come from complete refutations";
          std::vector<int> sub_labels;
          const Dfg sub =
              induced_subdfg(dfg, labels, r.conflict_nodes, sub_labels);
          SpaceOptions oracle;
          oracle.engine = SpaceEngine::kReference;
          oracle.max_backtracks = 0;
          const SpaceResult check =
              find_monomorphism(sub, arch, sub_labels, ii, oracle);
          EXPECT_FALSE(check.found)
              << "unsound conflict explanation: topology="
              << topology_name(topology) << " seed=" << seed << " ii=" << ii
              << " budget=" << budget << " |conflict|="
              << r.conflict_nodes.size() << "/" << dfg.num_nodes();
          ++checked;
        }
      }
    }
  }
  // The sweep must actually exercise the explanation path.
  EXPECT_GT(checked, 10);
}

TEST(SpaceEngines, TogglesPreserveCompleteness) {
  // Distance-2 filtering and backjumping are implied/complete — flipping
  // them never changes found/not-found on complete searches.
  const CgraArch arch(3, 3, Topology::kMesh);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SyntheticSpec spec;
    spec.num_nodes = 12 + static_cast<int>(seed) * 2;
    spec.seed = seed * 1231;
    const Dfg dfg = random_dfg(spec);
    for (int ii = 2; ii <= 3; ++ii) {
      Rng rng(seed * 17 + static_cast<std::uint64_t>(ii));
      std::vector<int> labels(static_cast<std::size_t>(dfg.num_nodes()));
      for (int& l : labels) {
        l = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(ii)));
      }
      SpaceOptions base = engine_options(SpaceEngine::kBitset);
      const SpaceResult full = find_monomorphism(dfg, arch, labels, ii, base);
      for (const bool d2 : {false, true}) {
        for (const bool d2mult : {false, true}) {
          for (const bool cbj : {false, true}) {
            SpaceOptions opt = base;
            opt.distance2_filter = d2;
            opt.distance2_multiplicity = d2mult;
            opt.backjumping = cbj;
            const SpaceResult r =
                find_monomorphism(dfg, arch, labels, ii, opt);
            EXPECT_EQ(r.found, full.found)
                << "d2=" << d2 << " d2mult=" << d2mult << " cbj=" << cbj
                << " seed=" << seed << " ii=" << ii;
          }
        }
      }
    }
  }
}

TEST(SpaceEngines, MultiplicityFilterBitesOnDenseDfgs) {
  // Dense random DFGs (many shared neighbours) must actually trigger the
  // multiplicity-aware distance-2 prunings, and toggling the filter must
  // never change found/not-found. 12x12: the filter only arms itself on
  // multi-word fabrics (> 64 PEs).
  const CgraArch arch(12, 12, Topology::kMesh);
  std::uint64_t total_prunings = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SyntheticSpec spec;
    spec.num_nodes = 14 + static_cast<int>(seed) * 2;
    spec.extra_edge_prob = 0.8;
    spec.max_degree = 6;
    spec.seed = seed * 3571;
    const Dfg dfg = random_dfg(spec);
    for (int ii = 2; ii <= 3; ++ii) {
      Rng rng(seed * 29 + static_cast<std::uint64_t>(ii));
      std::vector<int> labels(static_cast<std::size_t>(dfg.num_nodes()));
      for (int& l : labels) {
        l = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(ii)));
      }
      SpaceOptions with = engine_options(SpaceEngine::kBitset);
      SpaceOptions without = with;
      without.distance2_multiplicity = false;
      const SpaceResult on = find_monomorphism(dfg, arch, labels, ii, with);
      const SpaceResult off =
          find_monomorphism(dfg, arch, labels, ii, without);
      EXPECT_EQ(on.found, off.found) << "seed=" << seed << " ii=" << ii;
      EXPECT_EQ(off.multiplicity_prunings, 0u) << "toggle must disarm";
      total_prunings += on.multiplicity_prunings;
      if (on.found) expect_valid_placement(dfg, arch, labels, on);
    }
  }
  EXPECT_GT(total_prunings, 0u)
      << "the dense sweep never exercised the multiplicity filter";
}

TEST(SpaceEngines, DifferentialLargeGrid) {
  // Production-scale fabric: the bitset engine on 32x32 (16-word domains,
  // SIMD kernel regime) against the scan-based reference, with the
  // multiplicity filter both armed and disarmed.
  const CgraArch arch = CgraArch::square(32);
  for (const char* name : {"fft", "gsm"}) {
    const Benchmark& b = benchmark_by_name(name);
    TimeSolver solver(b.dfg, arch);
    const auto sol = solver.next(Deadline(30.0));
    ASSERT_TRUE(sol.has_value()) << name;
    std::vector<int> labels;
    for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
      labels.push_back(sol->label(v));
    }
    const SpaceResult reference = find_monomorphism(
        b.dfg, arch, labels, sol->ii, engine_options(SpaceEngine::kReference));
    for (const bool d2mult : {false, true}) {
      SpaceOptions opt = engine_options(SpaceEngine::kBitset);
      opt.distance2_multiplicity = d2mult;
      const SpaceResult bitset =
          find_monomorphism(b.dfg, arch, labels, sol->ii, opt);
      ASSERT_EQ(bitset.found, reference.found)
          << name << " d2mult=" << d2mult;
      EXPECT_EQ(bitset.words_per_domain, 16) << name;
      if (bitset.found) {
        expect_valid_placement(b.dfg, arch, labels, bitset);
      }
    }
    if (reference.found) {
      expect_valid_placement(b.dfg, arch, labels, reference);
    }
  }
}

TEST(SpaceEngines, SimdLevelsAreTraceIdentical) {
  // The acceptance contract of the kernel layer: every SIMD level the CPU
  // supports must produce the exact search trace of the scalar kernels —
  // same outcome, same nodes_expanded/backtracks/backjumps/max_depth, same
  // trail traffic — on multi-word instances (16x16 = 4 words crosses the
  // dispatch threshold, 32x32 = 16 words is the production regime).
  const simd::Level saved = simd::active_level();
  const int best = static_cast<int>(simd::best_supported_level());
  for (const int side : {16, 32}) {
    const CgraArch arch = CgraArch::square(side);
    for (const char* name : {"fft", "hotspot3D"}) {
      const Benchmark& b = benchmark_by_name(name);
      TimeSolver solver(b.dfg, arch);
      const auto sol = solver.next(Deadline(30.0));
      ASSERT_TRUE(sol.has_value()) << name;
      std::vector<int> labels;
      for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
        labels.push_back(sol->label(v));
      }
      simd::set_level(simd::Level::kScalar);
      const SpaceResult scalar = find_monomorphism(
          b.dfg, arch, labels, sol->ii, engine_options(SpaceEngine::kBitset));
      for (int lv = 1; lv <= best; ++lv) {
        simd::set_level(static_cast<simd::Level>(lv));
        const SpaceResult r = find_monomorphism(
            b.dfg, arch, labels, sol->ii,
            engine_options(SpaceEngine::kBitset));
        EXPECT_EQ(r.found, scalar.found) << name << " level " << lv;
        EXPECT_EQ(r.nodes_expanded, scalar.nodes_expanded)
            << name << " level " << lv;
        EXPECT_EQ(r.backtracks, scalar.backtracks) << name << " level " << lv;
        EXPECT_EQ(r.backjumps, scalar.backjumps) << name << " level " << lv;
        EXPECT_EQ(r.max_depth, scalar.max_depth) << name << " level " << lv;
        EXPECT_EQ(r.trail_words_saved, scalar.trail_words_saved)
            << name << " level " << lv;
        EXPECT_EQ(r.multiplicity_prunings, scalar.multiplicity_prunings)
            << name << " level " << lv;
        // The layout telemetry is level-independent too: which tiles are
        // skippable depends on occupancy, not on kernel width.
        EXPECT_EQ(r.tiles_skipped, scalar.tiles_skipped)
            << name << " level " << lv;
        EXPECT_EQ(r.domain_bytes_touched, scalar.domain_bytes_touched)
            << name << " level " << lv;
        EXPECT_EQ(r.pe, scalar.pe) << name << " level " << lv;
      }
      simd::set_level(saved);
    }
  }
  simd::set_level(saved);
}

TEST(SpaceEngines, TiledAndUntiledLayoutsAreTraceIdentical) {
  // Tile skipping changes which cache lines get touched, never the search:
  // with the occupancy maps disabled, every decision counter and the found
  // placement must be identical. Only the layout telemetry may differ —
  // trail_words_saved is tile- vs word-granular by design, and the tiled
  // layout can only touch fewer (never more) domain bytes.
  const auto compare = [](const Dfg& dfg, const CgraArch& arch,
                          const std::vector<int>& labels, int ii,
                          bool expect_skips, const char* tag) {
    const bool was_on = simd::set_tile_skipping(false);
    const SpaceResult untiled = find_monomorphism(
        dfg, arch, labels, ii, engine_options(SpaceEngine::kBitset));
    simd::set_tile_skipping(true);
    const SpaceResult tiled = find_monomorphism(
        dfg, arch, labels, ii, engine_options(SpaceEngine::kBitset));
    simd::set_tile_skipping(was_on);
    EXPECT_EQ(tiled.found, untiled.found) << tag;
    EXPECT_EQ(tiled.nodes_expanded, untiled.nodes_expanded) << tag;
    EXPECT_EQ(tiled.backtracks, untiled.backtracks) << tag;
    EXPECT_EQ(tiled.backjumps, untiled.backjumps) << tag;
    EXPECT_EQ(tiled.max_depth, untiled.max_depth) << tag;
    EXPECT_EQ(tiled.multiplicity_prunings, untiled.multiplicity_prunings)
        << tag;
    EXPECT_EQ(tiled.pe, untiled.pe) << tag;
    EXPECT_EQ(untiled.tiles_skipped, 0u) << tag;
    if (expect_skips) EXPECT_GT(tiled.tiles_skipped, 0u) << tag;
    EXPECT_LE(tiled.domain_bytes_touched, untiled.domain_bytes_touched)
        << tag;
  };
  {
    const Benchmark& b = benchmark_by_name("fft");
    const CgraArch arch = CgraArch::square(32);
    TimeSolver solver(b.dfg, arch);
    const auto sol = solver.next(Deadline(30.0));
    ASSERT_TRUE(sol.has_value());
    std::vector<int> labels;
    for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
      labels.push_back(sol->label(v));
    }
    compare(b.dfg, arch, labels, sol->ii, false, "fft@32x32");
  }
  {
    // The bench's acceptance regime: a full-mesh 32x32 patch placed on the
    // 64x64 fabric, where domains span 8 tiles and skipping must fire.
    PlaceableGridSpec ps;
    ps.rows = 32;
    ps.cols = 32;
    ps.ii = 5;
    ps.edge_keep = 1.0;
    ps.seed = 154;
    std::vector<int> labels;
    const Dfg dfg = placeable_grid_dfg(ps, &labels);
    compare(dfg, CgraArch::square(64), labels, ps.ii, true,
            "placeable-32x32-ii5@64x64");
  }
}

TEST(SpaceEngines, SparseMrvAgreesWithDynamicMrvOnSuite) {
  // kSparseMrv only reweights complete variable/value orderings, so on
  // complete searches it must agree with kDynamicMrv on feasibility for
  // every suite benchmark's first 8x8 schedule (sparse_order_auto pinned
  // off on the dynamic side so the engine cannot silently swap orders).
  const CgraArch arch = CgraArch::square(8);
  int found_count = 0;
  for (const Benchmark& b : benchmark_suite()) {
    TimeSolver solver(b.dfg, arch);
    const auto sol = solver.next(Deadline(30.0));
    ASSERT_TRUE(sol.has_value()) << b.name;
    std::vector<int> labels;
    for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
      labels.push_back(sol->label(v));
    }
    SpaceOptions dyn_opt = engine_options(SpaceEngine::kBitset);
    dyn_opt.order = SpaceOrder::kDynamicMrv;
    dyn_opt.sparse_order_auto = false;
    SpaceOptions sparse_opt = engine_options(SpaceEngine::kBitset);
    sparse_opt.order = SpaceOrder::kSparseMrv;
    const SpaceResult dyn_r =
        find_monomorphism(b.dfg, arch, labels, sol->ii, dyn_opt);
    const SpaceResult sparse_r =
        find_monomorphism(b.dfg, arch, labels, sol->ii, sparse_opt);
    EXPECT_EQ(sparse_r.found, dyn_r.found) << b.name;
    if (sparse_r.found) {
      ++found_count;
      expect_valid_placement(b.dfg, arch, labels, sparse_r);
    }
  }
  EXPECT_GT(found_count, 0);
}

TEST(SpaceEngines, PlaceableGridInstancesAreFeasible) {
  // Satisfiable-by-construction instances must actually be *found* at every
  // fabric scale the bench exercises — the identity placement is a witness
  // the generator guarantees, but the search has to discover its own.
  for (const int grid : {16, 32, 64}) {
    const CgraArch arch = CgraArch::square(grid);
    const PlaceableGridSpec spec = placeable_spec_for(arch, 2, 42);
    std::vector<int> labels;
    const Dfg dfg = placeable_grid_dfg(spec, &labels);
    const SpaceResult r = find_monomorphism(
        dfg, arch, labels, spec.ii, engine_options(SpaceEngine::kBitset));
    ASSERT_TRUE(r.found) << "grid " << grid;
    expect_valid_placement(dfg, arch, labels, r);
  }
  // The bench's 64x64 acceptance suite: full-mesh 32x32 patches at the IIs
  // and seeds BENCH_space.json records.
  const CgraArch arch64 = CgraArch::square(64);
  struct PatchCase {
    int ii;
    std::uint64_t seed;
  };
  for (const PatchCase pc :
       {PatchCase{4, 77}, PatchCase{5, 154}, PatchCase{6, 154}}) {
    PlaceableGridSpec ps;
    ps.rows = 32;
    ps.cols = 32;
    ps.ii = pc.ii;
    ps.edge_keep = 1.0;
    ps.seed = pc.seed;
    std::vector<int> labels;
    const Dfg dfg = placeable_grid_dfg(ps, &labels);
    const SpaceResult r = find_monomorphism(
        dfg, arch64, labels, ps.ii, engine_options(SpaceEngine::kBitset));
    ASSERT_TRUE(r.found) << "ii " << pc.ii << " seed " << pc.seed;
    expect_valid_placement(dfg, arch64, labels, r);
  }
  // Cross-check the generator against the reference engine on a patch
  // small enough for the scan-based search.
  PlaceableGridSpec small;
  small.rows = 12;
  small.cols = 12;
  small.ii = 2;
  small.seed = 7;
  std::vector<int> labels;
  const Dfg dfg = placeable_grid_dfg(small, &labels);
  const CgraArch arch16 = CgraArch::square(16);
  const SpaceResult ref = find_monomorphism(
      dfg, arch16, labels, small.ii, engine_options(SpaceEngine::kReference));
  ASSERT_TRUE(ref.found);
  expect_valid_placement(dfg, arch16, labels, ref);
}

TEST(SpaceEngines, AdaptiveBudgetCountersAreConsistent) {
  // The mapper's conflict-driven budget policy exposes its decisions; the
  // counters must add up against the per-search outcomes.
  const Benchmark& b = benchmark_by_name("hotspot3D");
  const CgraArch arch = CgraArch::square(4);
  DecoupledMapperOptions opt;
  opt.timeout_s = 120.0;
  const MapResult r = DecoupledMapper(opt).map(b.dfg, arch);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_LE(r.space_truncated + r.space_exhausted, r.schedules_tried);
  // Every budget action responds to exactly one failed search.
  EXPECT_LE(r.budget_extensions + r.budget_shrinks,
            r.space_truncated + r.space_exhausted);
  // hotspot3D's early IIs are the truncation mill: the policy must have
  // shrunk at least once.
  EXPECT_GT(r.budget_shrinks, 0);
}

TEST(SpaceEngines, BitsetPrunesAtLeastAsHard) {
  // Wipeout propagation explores no more nodes than the reference engine's
  // one-step lookahead on the same static order.
  const Benchmark& b = benchmark_by_name("hotspot3D");
  const CgraArch arch = CgraArch::square(4);
  TimeSolver solver(b.dfg, arch);
  const auto sol = solver.next(Deadline(30.0));
  ASSERT_TRUE(sol.has_value());
  std::vector<int> labels;
  for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
    labels.push_back(sol->label(v));
  }
  SpaceOptions bitset_opt = engine_options(SpaceEngine::kBitset);
  bitset_opt.order = SpaceOrder::kConnectivity;
  SpaceOptions ref_opt = engine_options(SpaceEngine::kReference);
  ref_opt.order = SpaceOrder::kConnectivity;
  const SpaceResult bitset =
      find_monomorphism(b.dfg, arch, labels, sol->ii, bitset_opt);
  const SpaceResult reference =
      find_monomorphism(b.dfg, arch, labels, sol->ii, ref_opt);
  ASSERT_EQ(bitset.found, reference.found);
  EXPECT_LE(bitset.nodes_expanded, reference.nodes_expanded);
}

TEST(SpaceEngines, BudgetAndDeadlineReporting) {
  const Benchmark& b = benchmark_by_name("hotspot3D");
  const CgraArch arch = CgraArch::square(4);
  TimeSolver solver(b.dfg, arch);
  const auto sol = solver.next(Deadline(30.0));
  ASSERT_TRUE(sol.has_value());
  std::vector<int> labels;
  for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
    labels.push_back(sol->label(v));
  }
  SpaceOptions opt;  // bitset default
  opt.max_backtracks = 1;
  const SpaceResult tiny = find_monomorphism(b.dfg, arch, labels, sol->ii, opt);
  if (!tiny.found) {
    EXPECT_TRUE(tiny.timed_out);
    EXPECT_FALSE(tiny.deadline_expired);
  }
  const Deadline expired(0.0);
  const SpaceResult dead = find_monomorphism(b.dfg, arch, labels, sol->ii,
                                             SpaceOptions{}, expired);
  if (!dead.found) {
    EXPECT_TRUE(dead.deadline_expired);
  }
}

TEST(SpaceEngines, EmptyDfgMapsTrivially) {
  const Dfg dfg = Dfg::from_edges("empty", 0, {});
  const CgraArch arch = CgraArch::square(2);
  for (const SpaceEngine engine :
       {SpaceEngine::kBitset, SpaceEngine::kReference}) {
    const SpaceResult r =
        find_monomorphism(dfg, arch, {}, 1, engine_options(engine));
    EXPECT_TRUE(r.found) << to_string(engine);
    EXPECT_TRUE(r.pe.empty());
  }
}

TEST(SpaceEngines, CancelTokenStopsTheSearch) {
  CancelToken token;
  token.cancel();
  const Deadline cancelled(1e9, &token);
  EXPECT_TRUE(cancelled.expired());
  token.reset();
  EXPECT_FALSE(cancelled.expired());
}

TEST(Portfolio, FindsValidMappingThreaded) {
  const Benchmark& b = benchmark_by_name("gsm");
  const CgraArch arch = CgraArch::square(4);
  DecoupledMapperOptions opt;
  opt.timeout_s = 60.0;
  PortfolioOptions popt;
  popt.num_threads = 4;
  const MapResult r = DecoupledMapper(opt).map_portfolio(b.dfg, arch, popt);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_GE(r.portfolio_config, 0);
  EXPECT_TRUE(mapping_is_valid(b.dfg, arch, r.mapping));
}

TEST(Portfolio, SequentialModeIsDeterministic) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  DecoupledMapperOptions opt;
  opt.timeout_s = 60.0;
  PortfolioOptions popt;
  popt.num_threads = 1;
  const DecoupledMapper mapper(opt);
  const MapResult a = mapper.map_portfolio(dfg, arch, popt);
  const MapResult b = mapper.map_portfolio(dfg, arch, popt);
  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  EXPECT_EQ(a.portfolio_config, b.portfolio_config);
  EXPECT_EQ(a.ii, b.ii);
  ASSERT_EQ(a.mapping.num_nodes(), b.mapping.num_nodes());
  for (NodeId v = 0; v < a.mapping.num_nodes(); ++v) {
    EXPECT_EQ(a.mapping.pe(v), b.mapping.pe(v));
    EXPECT_EQ(a.mapping.time(v), b.mapping.time(v));
  }
}

TEST(Portfolio, ExplicitConfigListIsHonoured) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  DecoupledMapperOptions opt;
  opt.timeout_s = 60.0;
  PortfolioOptions popt;
  popt.num_threads = 1;
  SpaceOptions only;
  only.order = SpaceOrder::kDegree;
  popt.configs.push_back(only);
  const MapResult r = DecoupledMapper(opt).map_portfolio(dfg, arch, popt);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.portfolio_config, 0);
}

TEST(Portfolio, BatchMappingMatchesIndividual) {
  std::vector<const Dfg*> dfgs;
  for (const char* name : {"gsm", "fft", "susan"}) {
    dfgs.push_back(&benchmark_by_name(name).dfg);
  }
  const CgraArch arch = CgraArch::square(4);
  DecoupledMapperOptions opt;
  opt.timeout_s = 60.0;
  const DecoupledMapper mapper(opt);
  const std::vector<MapResult> batch = mapper.map_batch(dfgs, arch, 3);
  ASSERT_EQ(batch.size(), dfgs.size());
  for (std::size_t i = 0; i < dfgs.size(); ++i) {
    const MapResult solo = mapper.map(*dfgs[i], arch);
    EXPECT_EQ(batch[i].success, solo.success);
    if (batch[i].success && solo.success) {
      EXPECT_EQ(batch[i].ii, solo.ii);
      EXPECT_TRUE(mapping_is_valid(*dfgs[i], arch, batch[i].mapping));
    }
  }
}

}  // namespace
}  // namespace monomap
