// Differential tests: the incremental time engine (persistent per-II
// TimeSession, assumption-based horizon activation, space-conflict nogood
// feedback) against the rebuild-per-instance reference engine.
//
// Both engines sweep the same (II, horizon-extension) instance lattice, so
// for any workload they must agree on the final II (the instances are
// decided exactly, not heuristically), and every yielded schedule must
// satisfy the time constraints. The mapper-level sweep additionally checks
// the full decoupled pipeline — including instances where the space phase
// fails and feeds nogoods back — and the restricted consecutive-slots mode.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "mapper/decoupled_mapper.hpp"
#include "timing/time_solver.hpp"
#include "workloads/running_example.hpp"
#include "workloads/suite.hpp"
#include "workloads/synthetic.hpp"

namespace monomap {
namespace {

/// The three time-constraint families, checked directly on a solution.
void expect_time_feasible(const Dfg& dfg, const CgraArch& arch,
                          const TimeSolution& sol) {
  const Graph& g = dfg.graph();
  const int ii = sol.ii;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.src == edge.dst) continue;
    EXPECT_GE(sol.time[static_cast<std::size_t>(edge.dst)] + edge.attr * ii,
              sol.time[static_cast<std::size_t>(edge.src)] + 1)
        << "edge " << edge.src << "->" << edge.dst;
  }
  std::vector<int> per_slot(static_cast<std::size_t>(ii), 0);
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    ++per_slot[static_cast<std::size_t>(sol.label(v))];
  }
  for (const int c : per_slot) {
    EXPECT_LE(c, arch.num_pes());
  }
}

TimeSolverOptions engine_options(TimeEngine engine) {
  TimeSolverOptions opt;
  opt.engine = engine;
  return opt;
}

TEST(TimeEngines, DifferentialFirstSolutionOnSuite) {
  const CgraArch arch = CgraArch::square(4);
  for (const char* name : {"gsm", "fft", "susan", "hotspot3D", "nw"}) {
    const Benchmark& b = benchmark_by_name(name);
    TimeSolver incremental(b.dfg, arch,
                           engine_options(TimeEngine::kIncremental));
    TimeSolver reference(b.dfg, arch,
                         engine_options(TimeEngine::kReference));
    const auto inc = incremental.next(Deadline(60.0));
    const auto ref = reference.next(Deadline(60.0));
    ASSERT_TRUE(inc.has_value()) << name;
    ASSERT_TRUE(ref.has_value()) << name;
    EXPECT_EQ(inc->ii, ref->ii) << name;
    expect_time_feasible(b.dfg, arch, *inc);
    expect_time_feasible(b.dfg, arch, *ref);
  }
}

TEST(TimeEngines, DifferentialOnSyntheticDfgs) {
  const CgraArch arch = CgraArch::square(3);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SyntheticSpec spec;
    spec.num_nodes = 8 + static_cast<int>(seed) * 3;  // 11..26 nodes
    spec.seed = seed * 7919;
    const Dfg dfg = random_dfg(spec);
    TimeSolver incremental(dfg, arch,
                           engine_options(TimeEngine::kIncremental));
    TimeSolver reference(dfg, arch,
                         engine_options(TimeEngine::kReference));
    const auto inc = incremental.next(Deadline(60.0));
    const auto ref = reference.next(Deadline(60.0));
    ASSERT_EQ(inc.has_value(), ref.has_value()) << "seed " << seed;
    if (!inc.has_value()) continue;
    EXPECT_EQ(inc->ii, ref->ii) << "seed " << seed;
    expect_time_feasible(dfg, arch, *inc);
    expect_time_feasible(dfg, arch, *ref);
  }
}

TEST(TimeEngines, EnumerationYieldsDistinctVectorsAtMatchingIis) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  TimeSolver incremental(dfg, arch,
                         engine_options(TimeEngine::kIncremental));
  TimeSolver reference(dfg, arch, engine_options(TimeEngine::kReference));
  std::vector<std::vector<int>> seen;
  for (int round = 0; round < 6; ++round) {
    const auto inc = incremental.next(Deadline::unlimited());
    const auto ref = reference.next(Deadline::unlimited());
    ASSERT_EQ(inc.has_value(), ref.has_value());
    if (!inc.has_value()) break;
    // The engines walk the same II lattice; within an II the solution
    // order may differ (different solver states), but the IIs must track.
    EXPECT_EQ(inc->ii, ref->ii);
    expect_time_feasible(dfg, arch, *inc);
    std::vector<int> labels;
    for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
      labels.push_back(inc->label(v));
    }
    for (const auto& prev : seen) {
      EXPECT_NE(prev, labels) << "incremental engine re-yielded a vector";
    }
    seen.push_back(std::move(labels));
  }
  EXPECT_GE(seen.size(), 2u);
}

TEST(TimeEngines, HorizonExtensionParity) {
  // Forces horizon extension: 5 nodes on one PE (see
  // TimeSolver.HorizonExtensionUnlocksTightCapacity).
  const Dfg dfg = Dfg::from_edges(
      "chain5", 5, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {0, 4, 0}});
  const CgraArch arch(1, 1);
  for (const TimeEngine engine :
       {TimeEngine::kIncremental, TimeEngine::kReference}) {
    TimeSolver solver(dfg, arch, engine_options(engine));
    const auto sol = solver.next(Deadline::unlimited());
    ASSERT_TRUE(sol.has_value()) << to_string(engine);
    EXPECT_EQ(sol->ii, 5) << to_string(engine);
    EXPECT_GE(sol->horizon, 5) << to_string(engine);
  }
}

TEST(TimeEngines, SkipToNextIiParity) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  for (const TimeEngine engine :
       {TimeEngine::kIncremental, TimeEngine::kReference}) {
    TimeSolver solver(dfg, arch, engine_options(engine));
    const auto first = solver.next(Deadline::unlimited());
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(solver.skip_to_next_ii());
    const auto second = solver.next(Deadline::unlimited());
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->ii, first->ii + 1) << to_string(engine);
  }
}

TEST(TimeEngines, MapperDifferentialOnSuite) {
  // Full decoupled pipeline at two grids. nw and hotspot3D are the
  // space-failure-heavy instances: their early schedules are spatially
  // infeasible, so this sweep exercises the nogood feedback path, the
  // blocking path and II escalation on both engines.
  //
  // The achieved II is NOT an engine invariant end-to-end: within an II
  // the mapper tries at most max_space_retries_per_ii schedules, so which
  // II survives depends on which label vectors each engine's models
  // happen to yield. What must hold (and is pinned here on a
  // deterministic sweep): both engines succeed, every mapping validates,
  // and the incremental engine's space-friendly seeding plus rotated
  // retry diversification never leaves it at a WORSE II than the
  // reference rebuild path (on hotspot3D it is strictly better).
  for (const char* name : {"gsm", "fft", "nw", "hotspot3D"}) {
    const Benchmark& b = benchmark_by_name(name);
    for (const int grid : {4, 5}) {
      const CgraArch arch = CgraArch::square(grid);
      std::optional<MapResult> results[2];
      for (const TimeEngine engine :
           {TimeEngine::kIncremental, TimeEngine::kReference}) {
        DecoupledMapperOptions opt;
        opt.timeout_s = 120.0;
        opt.time.engine = engine;
        const MapResult r = DecoupledMapper(opt).map(b.dfg, arch);
        ASSERT_TRUE(r.success)
            << name << " " << grid << "x" << grid << " "
            << to_string(engine) << ": " << r.failure_reason;
        EXPECT_TRUE(mapping_is_valid(b.dfg, arch, r.mapping));
        results[engine == TimeEngine::kReference] = r;
      }
      EXPECT_LE(results[0]->ii, results[1]->ii)
          << name << " " << grid << "x" << grid;
      EXPECT_GE(results[0]->ii, results[0]->mii.mii());
    }
  }
}

TEST(TimeEngines, MapperDifferentialRestrictedMode) {
  // The consecutive-slots (restricted interconnect) mode flows through the
  // session's dependency pairs and the space model together. gsm and the
  // running example are mappable in this mode; fft is not (both engines
  // must agree on that exhaustion too, up to a capped max II).
  struct Case {
    const char* name;
    const Dfg* dfg;
    bool mappable;
  };
  const Dfg running = running_example_dfg();
  const std::vector<Case> cases = {
      {"gsm", &benchmark_by_name("gsm").dfg, true},
      {"running_example", &running, true},
      {"fft", &benchmark_by_name("fft").dfg, false},
  };
  const CgraArch arch = CgraArch::square(4);
  for (const Case& c : cases) {
    std::optional<MapResult> results[2];
    for (const TimeEngine engine :
         {TimeEngine::kIncremental, TimeEngine::kReference}) {
      DecoupledMapperOptions opt;
      opt.timeout_s = 120.0;
      opt.time.engine = engine;
      opt.space.model = MrrgModel::kConsecutiveOnly;
      if (!c.mappable) opt.time.max_ii = 8;  // cap the exhaustion sweep
      const MapResult r = DecoupledMapper(opt).map(*c.dfg, arch);
      EXPECT_EQ(r.success, c.mappable)
          << c.name << " " << to_string(engine) << ": " << r.failure_reason;
      if (r.success) {
        EXPECT_TRUE(mapping_is_valid(*c.dfg, arch, r.mapping,
                                     MrrgModel::kConsecutiveOnly));
      } else {
        EXPECT_FALSE(r.timed_out) << c.name << " " << to_string(engine);
      }
      results[engine == TimeEngine::kReference] = r;
    }
    EXPECT_EQ(results[0]->success, results[1]->success) << c.name;
    if (results[0]->success && results[1]->success) {
      EXPECT_EQ(results[0]->ii, results[1]->ii) << c.name;
    }
  }
}

TEST(TimeEngines, SpaceConflictNogoodSkipsSchedules) {
  // nw on a 5x5 grid: several schedules at the early IIs are spatially
  // infeasible and the bitset engine's exhaustion proofs touch only a
  // node subset, so the mapper must record narrow nogoods — the stat the
  // acceptance criteria pins (MapResult::time_stats).
  const Benchmark& b = benchmark_by_name("nw");
  const CgraArch arch = CgraArch::square(5);
  DecoupledMapperOptions opt;
  opt.timeout_s = 120.0;
  const MapResult r = DecoupledMapper(opt).map(b.dfg, arch);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_GE(r.time_stats.nogoods_added, 1);
  EXPECT_GE(r.time_stats.narrow_nogoods, 1)
      << "every space failure produced only full-width explanations";
  // And the reuse counters prove the session actually persisted.
  EXPECT_GE(r.time_stats.sessions_created, 1);
  EXPECT_GE(r.time_stats.assumptions_used, r.time_stats.sat_calls);
}

TEST(TimeEngines, IncrementalIsDefault) {
  const TimeSolverOptions defaults;
  EXPECT_EQ(defaults.engine, TimeEngine::kIncremental);
}

}  // namespace
}  // namespace monomap
