// Tests for the graph substrate: structure, traversals, SCC, cycles,
// II-feasibility (Bellman-Ford) and DOT export.
#include <algorithm>
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/dot.hpp"
#include "graph/graph.hpp"

namespace monomap {
namespace {

Graph diamond() {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(Graph, BasicStructure) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId e = g.add_edge(a, b, 7);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge(e).src, a);
  EXPECT_EQ(g.edge(e).dst, b);
  EXPECT_EQ(g.edge(e).attr, 7);
  EXPECT_EQ(g.out_degree(a), 1);
  EXPECT_EQ(g.in_degree(b), 1);
  EXPECT_TRUE(g.are_adjacent(a, b));
  EXPECT_TRUE(g.are_adjacent(b, a));
}

TEST(Graph, SelfEdgeCountsOnceInUndirectedDegree) {
  Graph g(1);
  g.add_edge(0, 0, 1);
  EXPECT_EQ(g.undirected_degree(0), 1);
  EXPECT_TRUE(g.undirected_neighbors(0).empty());
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g(2);
  g.add_edge(0, 1, 3);
  g.add_edge(0, 1, 8);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.undirected_neighbors(0), std::vector<NodeId>{1});
}

TEST(Graph, InvalidAccessThrows) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 5), AssertionError);
  EXPECT_THROW(g.edge(0), AssertionError);
  EXPECT_THROW(g.out_edges(-1), AssertionError);
}

TEST(TopologicalSort, DiamondOrder) {
  const Graph g = diamond();
  const auto order = topological_sort(g);
  ASSERT_TRUE(order.has_value());
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) {
    pos[static_cast<std::size_t>((*order)[static_cast<std::size_t>(i)])] = i;
  }
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(TopologicalSort, DetectsCycle) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_FALSE(topological_sort(g).has_value());
}

TEST(TopologicalSort, EdgeFilterIgnoresBackEdges) {
  Graph g(2);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 0, 1);  // loop-carried
  EXPECT_FALSE(topological_sort(g).has_value());
  EXPECT_TRUE(topological_sort(g, edges_with_attr(0)).has_value());
}

TEST(Scc, TwoComponents) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);  // {0,1,2}
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  int count = 0;
  const auto comp = strongly_connected_components(g, &count);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_NE(comp[2], comp[3]);
  EXPECT_NE(comp[3], comp[4]);
}

TEST(Scc, SelfLoopIsItsOwnComponent) {
  Graph g(2);
  g.add_edge(0, 0);
  int count = 0;
  const auto comp = strongly_connected_components(g, &count);
  EXPECT_EQ(count, 2);
  EXPECT_NE(comp[0], comp[1]);
}

TEST(LongestPath, DiamondDepths) {
  const Graph g = diamond();
  const auto depth = longest_path_from_sources(g, all_edges());
  EXPECT_EQ(depth[0], 0);
  EXPECT_EQ(depth[1], 1);
  EXPECT_EQ(depth[2], 1);
  EXPECT_EQ(depth[3], 2);
}

TEST(ElementaryCycles, FindsAllSimpleCycles) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const auto cycles = elementary_cycles(g);
  EXPECT_EQ(cycles.size(), 2u);  // 0-1 and 0-1-2
}

TEST(ElementaryCycles, RespectsCap) {
  // Complete digraph on 5 nodes has many cycles; cap at 3.
  Graph g(5);
  for (NodeId a = 0; a < 5; ++a) {
    for (NodeId b = 0; b < 5; ++b) {
      if (a != b) g.add_edge(a, b);
    }
  }
  EXPECT_EQ(elementary_cycles(g, 3).size(), 3u);
}

TEST(IiFeasibility, MatchesCycleRatioAnalysis) {
  // Cycle of length 3 with distance 1: feasible iff ii >= 3.
  Graph g(3);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(2, 0, 1);
  EXPECT_FALSE(ii_feasible(g, 1));
  EXPECT_FALSE(ii_feasible(g, 2));
  EXPECT_TRUE(ii_feasible(g, 3));
  EXPECT_TRUE(ii_feasible(g, 10));
  EXPECT_EQ(recurrence_mii(g), 3);
}

TEST(IiFeasibility, MultipleCyclesTakeTheMax) {
  Graph g(5);
  // cycle A: 0->1->0 distance 1 (ratio 2)
  g.add_edge(0, 1, 0);
  g.add_edge(1, 0, 1);
  // cycle B: 2->3->4->2 distance 1 (ratio 3)
  g.add_edge(2, 3, 0);
  g.add_edge(3, 4, 0);
  g.add_edge(4, 2, 1);
  EXPECT_EQ(recurrence_mii(g), 3);
}

TEST(IiFeasibility, ZeroDistanceCycleThrows) {
  Graph g(2);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 0, 0);
  EXPECT_THROW(recurrence_mii(g), AssertionError);
}

TEST(IiFeasibility, CrossValidatedAgainstCycleEnumeration) {
  // Random-ish structured graph: RecII from Bellman-Ford must equal the max
  // ceil(len/dist) over all elementary cycles.
  Graph g(6);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(2, 3, 0);
  g.add_edge(3, 0, 2);
  g.add_edge(2, 4, 0);
  g.add_edge(4, 5, 0);
  g.add_edge(5, 2, 1);
  g.add_edge(1, 1, 1);
  const auto cycles = elementary_cycles(g);
  int expected = 1;
  for (const auto& cyc : cycles) {
    int dist = 0;
    // Sum distances along the cycle's edges.
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      const NodeId a = cyc[i];
      const NodeId b = cyc[(i + 1) % cyc.size()];
      int best = 1 << 20;
      for (const EdgeId e : g.out_edges(a)) {
        if (g.edge(e).dst == b) best = std::min(best, g.edge(e).attr);
      }
      dist += best;
    }
    ASSERT_GT(dist, 0);
    const int len = static_cast<int>(cyc.size());
    expected = std::max(expected, (len + dist - 1) / dist);
  }
  EXPECT_EQ(recurrence_mii(g), expected);
}

TEST(UndirectedComponents, CountsIslands) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(3, 4);
  int count = 0;
  const auto comp = undirected_components(g, &count);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(UndirectedBfs, VisitsComponentInBreadthOrder) {
  const Graph g = diamond();
  const auto order = undirected_bfs_order(g, 0);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[3], 3);
}

TEST(Dot, ContainsNodesAndLoopCarriedStyling) {
  Graph g(2);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 0, 1);
  const std::string dot = to_dot(g, "T");
  EXPECT_NE(dot.find("digraph T"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

}  // namespace
}  // namespace monomap
