// Property tests cross-validating the search components against brute
// force on small instances, and end-to-end invariants on random inputs.
#include <functional>
#include <gtest/gtest.h>

#include "mapper/coupled_mapper.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "space/monomorphism.hpp"
#include "support/rng.hpp"
#include "workloads/synthetic.hpp"

namespace monomap {
namespace {

/// Exhaustive check: does ANY injective, label-preserving, adjacency-
/// respecting placement of `dfg` into (arch, ii) exist?
bool brute_force_monomorphism(const Dfg& dfg, const CgraArch& arch,
                              const std::vector<int>& labels, int ii) {
  const int n = dfg.num_nodes();
  std::vector<PeId> pe(static_cast<std::size_t>(n), -1);
  std::vector<std::vector<bool>> used(
      static_cast<std::size_t>(arch.num_pes()),
      std::vector<bool>(static_cast<std::size_t>(ii), false));
  std::function<bool(NodeId)> place = [&](NodeId v) -> bool {
    if (v == n) return true;
    for (PeId p = 0; p < arch.num_pes(); ++p) {
      if (used[static_cast<std::size_t>(p)]
              [static_cast<std::size_t>(labels[static_cast<std::size_t>(v)])]) {
        continue;
      }
      bool ok = true;
      for (const NodeId u : dfg.graph().undirected_neighbors(v)) {
        if (u >= v || pe[static_cast<std::size_t>(u)] < 0) continue;
        const PeId q = pe[static_cast<std::size_t>(u)];
        if (!arch.adjacent_or_same(p, q)) {
          ok = false;
          break;
        }
        if (p == q && labels[static_cast<std::size_t>(u)] ==
                          labels[static_cast<std::size_t>(v)]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      pe[static_cast<std::size_t>(v)] = p;
      used[static_cast<std::size_t>(p)]
          [static_cast<std::size_t>(labels[static_cast<std::size_t>(v)])] = true;
      if (place(v + 1)) return true;
      pe[static_cast<std::size_t>(v)] = -1;
      used[static_cast<std::size_t>(p)]
          [static_cast<std::size_t>(labels[static_cast<std::size_t>(v)])] =
              false;
    }
    return false;
  };
  return place(0);
}

class MonoVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(MonoVsBruteForce, AgreesOnRandomSmallInstances) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  // Random small DFG + random labels (capacity-respecting by construction).
  const int n = 4 + static_cast<int>(rng.next_below(3));  // 4..6 nodes
  SyntheticSpec spec;
  spec.num_nodes = n;
  spec.seed = rng.next_u64();
  spec.num_recurrences = 1 + static_cast<int>(rng.next_below(2));
  const Dfg dfg = random_dfg(spec);
  const CgraArch arch = rng.next_bool(0.5) ? CgraArch::square(2)
                                           : CgraArch(1, 3);
  const int ii = 2 + static_cast<int>(rng.next_below(2));  // 2..3
  std::vector<int> labels;
  std::vector<int> layer_load(static_cast<std::size_t>(ii), 0);
  for (NodeId v = 0; v < n; ++v) {
    int l;
    do {
      l = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ii)));
    } while (layer_load[static_cast<std::size_t>(l)] >= arch.num_pes());
    ++layer_load[static_cast<std::size_t>(l)];
    labels.push_back(l);
  }
  const bool expected = brute_force_monomorphism(dfg, arch, labels, ii);
  // Exercise every ordering heuristic against the oracle.
  for (const SpaceOrder order :
       {SpaceOrder::kDynamicMrv, SpaceOrder::kConnectivity,
        SpaceOrder::kDegree, SpaceOrder::kBfs}) {
    SpaceOptions opt;
    opt.order = order;
    opt.max_backtracks = 0;  // complete search
    const SpaceResult r = find_monomorphism(dfg, arch, labels, ii, opt);
    EXPECT_EQ(r.found, expected)
        << "order " << to_string(order) << " seed " << GetParam();
    if (r.found) {
      // Verify the embedding really is a monomorphism.
      for (EdgeId e = 0; e < dfg.graph().num_edges(); ++e) {
        const Edge& edge = dfg.graph().edge(e);
        if (edge.src == edge.dst) continue;
        EXPECT_TRUE(arch.adjacent_or_same(
            r.pe[static_cast<std::size_t>(edge.src)],
            r.pe[static_cast<std::size_t>(edge.dst)]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonoVsBruteForce, ::testing::Range(0, 30));

class RandomPipeline : public ::testing::TestWithParam<int> {};

TEST_P(RandomPipeline, BothExactMappersValidateAndAgreeOnFeasibility) {
  SyntheticSpec spec;
  spec.num_nodes = 10 + GetParam() % 8;
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 101 + 3;
  spec.num_recurrences = 2;
  const Dfg dfg = random_dfg(spec);
  const CgraArch arch = CgraArch::square(3);
  DecoupledMapperOptions dopt;
  dopt.timeout_s = 30.0;
  const MapResult dec = DecoupledMapper(dopt).map(dfg, arch);
  CoupledMapperOptions copt;
  copt.timeout_s = 30.0;
  const CoupledMapResult cop = CoupledSatMapper(copt).map(dfg, arch);
  ASSERT_TRUE(dec.success) << dec.failure_reason;
  ASSERT_TRUE(cop.success) << cop.failure_reason;
  EXPECT_TRUE(mapping_is_valid(dfg, arch, dec.mapping));
  EXPECT_TRUE(mapping_is_valid(dfg, arch, cop.mapping));
  // Joint search is at least as strong on II; decoupling may cost a little.
  EXPECT_GE(dec.ii, cop.ii);
  EXPECT_GE(cop.ii, cop.mii.mii());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipeline, ::testing::Range(0, 12));

}  // namespace
}  // namespace monomap
