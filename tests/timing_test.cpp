// Tests for the time formulation and time solver (paper Sec. IV-B):
// constraint semantics, II sweep, horizon extension, solution enumeration.
#include <gtest/gtest.h>

#include "timing/time_formulation.hpp"
#include "timing/time_session.hpp"
#include "timing/time_solver.hpp"
#include "workloads/running_example.hpp"
#include "workloads/suite.hpp"

namespace monomap {
namespace {

/// Check the three constraint families directly on a solution.
void expect_solution_feasible(const Dfg& dfg, const CgraArch& arch,
                              const TimeSolution& sol,
                              bool check_connectivity = true) {
  const Graph& g = dfg.graph();
  const int ii = sol.ii;
  // Dependencies.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.src == edge.dst) continue;
    EXPECT_GE(sol.time[static_cast<std::size_t>(edge.dst)] + edge.attr * ii,
              sol.time[static_cast<std::size_t>(edge.src)] + 1)
        << "edge " << edge.src << "->" << edge.dst;
  }
  // Capacity.
  std::vector<int> per_slot(static_cast<std::size_t>(ii), 0);
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    ++per_slot[static_cast<std::size_t>(sol.label(v))];
  }
  for (const int c : per_slot) {
    EXPECT_LE(c, arch.num_pes());
  }
  // Connectivity (paper form).
  if (check_connectivity) {
    for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
      std::vector<int> nb_per_slot(static_cast<std::size_t>(ii), 0);
      for (const NodeId u : g.undirected_neighbors(v)) {
        ++nb_per_slot[static_cast<std::size_t>(sol.label(u))];
      }
      for (const int c : nb_per_slot) {
        EXPECT_LE(c, arch.connectivity_degree()) << "node " << v;
      }
    }
  }
}

TEST(TimeFormulation, RunningExampleSatAtMii) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  TimeFormulation f(dfg, arch, 4);
  ASSERT_TRUE(f.build());
  ASSERT_EQ(f.solve(Deadline::unlimited()), SatStatus::kSat);
  const TimeSolution sol = f.extract();
  EXPECT_EQ(sol.ii, 4);
  expect_solution_feasible(dfg, arch, sol);
}

TEST(TimeFormulation, RunningExampleUnsatBelowRecMii) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  // II=3 < RecII=4: the dependency constraints alone are unsatisfiable.
  TimeFormulation f(dfg, arch, 3);
  if (f.build()) {
    EXPECT_EQ(f.solve(Deadline::unlimited()), SatStatus::kUnsat);
  }
}

TEST(TimeFormulation, CapacityBindsOnTinyGrid) {
  // 6 independent nodes, 1x2 grid, II=2: capacity 2/slot * 2 slots = 4 < 6.
  const Dfg dfg = Dfg::from_edges("six", 6, {});
  const CgraArch arch(1, 2);
  TimeFormulation low(dfg, arch, 2, 2);
  if (low.build()) {
    EXPECT_EQ(low.solve(Deadline::unlimited()), SatStatus::kUnsat);
  }
  TimeFormulation high(dfg, arch, 3, 3);
  ASSERT_TRUE(high.build());
  EXPECT_EQ(high.solve(Deadline::unlimited()), SatStatus::kSat);
}

TEST(TimeFormulation, CapacityConstraintCanBeDisabled) {
  const Dfg dfg = Dfg::from_edges("six", 6, {});
  const CgraArch arch(1, 2);
  TimeConstraintOptions opt;
  opt.capacity = false;
  opt.connectivity = false;
  TimeFormulation f(dfg, arch, 2, 2, opt);
  ASSERT_TRUE(f.build());
  // Without capacity the instance is satisfiable (labels can collide).
  EXPECT_EQ(f.solve(Deadline::unlimited()), SatStatus::kSat);
}

TEST(TimeFormulation, ConnectivityBindsForStarGraph) {
  // Star: hub with 6 leaves, all independent (distance-1 back edge keeps
  // them schedulable at any slot). On a 2x2 grid D_M = 3.
  std::vector<Edge> edges;
  for (NodeId leaf = 1; leaf <= 6; ++leaf) {
    edges.push_back(Edge{0, leaf, 1});  // loop-carried: no ordering pressure
  }
  const Dfg dfg = Dfg::from_edges("star", 7, edges);
  const CgraArch arch = CgraArch::square(2);
  // II=2: 6 neighbours over 2 slots -> one slot holds >= 3 = D_M; with the
  // strict self term the hub's own slot allows only 2, so II=2 must fail.
  TimeConstraintOptions strict;
  strict.strict_connectivity = true;
  // Horizon 6 gives every node full mobility over the kernel slots.
  TimeFormulation f2(dfg, arch, 2, 6, strict);
  if (f2.build()) {
    EXPECT_EQ(f2.solve(Deadline::unlimited()), SatStatus::kUnsat);
  }
  TimeFormulation f3(dfg, arch, 3, 6, strict);
  ASSERT_TRUE(f3.build());
  EXPECT_EQ(f3.solve(Deadline::unlimited()), SatStatus::kSat);
}

TEST(TimeFormulation, PaperModeIsWeakerThanStrict) {
  // Same star graph: the paper's literal constraint (without the self term)
  // admits II=2 because 3 neighbours per slot == D_M is allowed.
  std::vector<Edge> edges;
  for (NodeId leaf = 1; leaf <= 6; ++leaf) {
    edges.push_back(Edge{0, leaf, 1});
  }
  const Dfg dfg = Dfg::from_edges("star", 7, edges);
  const CgraArch arch = CgraArch::square(2);
  TimeConstraintOptions paper;
  paper.strict_connectivity = false;
  TimeFormulation f(dfg, arch, 2, 6, paper);
  ASSERT_TRUE(f.build());
  EXPECT_EQ(f.solve(Deadline::unlimited()), SatStatus::kSat);
}

TEST(TimeFormulation, BlockLabelsForcesNewSolution) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  TimeFormulation f(dfg, arch, 4);
  ASSERT_TRUE(f.build());
  ASSERT_EQ(f.solve(Deadline::unlimited()), SatStatus::kSat);
  const TimeSolution first = f.extract();
  ASSERT_TRUE(f.block_labels(first));
  if (f.solve(Deadline::unlimited()) == SatStatus::kSat) {
    const TimeSolution second = f.extract();
    bool differs = false;
    for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
      if (first.label(v) != second.label(v)) {
        differs = true;
        break;
      }
    }
    EXPECT_TRUE(differs);
  }
}

TEST(TimeFormulation, StatsReportEncodingSize) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  TimeFormulation f(dfg, arch, 4);
  ASSERT_TRUE(f.build());
  const TimeFormulationStats stats = f.stats();
  EXPECT_GT(stats.num_vars, dfg.num_nodes());
  EXPECT_GT(stats.num_clauses, 0);
}

TEST(TimeFormulation, EncodingIsGridSizeIndependent) {
  // The core decoupling property: the formulation depends on the grid only
  // through |PEs| and D_M bounds, so 10x10 and 20x20 encodings coincide.
  const Dfg dfg = benchmark_by_name("fft").dfg;
  const CgraArch arch10 = CgraArch::square(10);
  const CgraArch arch20 = CgraArch::square(20);
  TimeFormulation f10(dfg, arch10, 7);
  TimeFormulation f20(dfg, arch20, 7);
  ASSERT_TRUE(f10.build());
  ASSERT_TRUE(f20.build());
  EXPECT_EQ(f10.stats().num_vars, f20.stats().num_vars);
  EXPECT_EQ(f10.stats().num_clauses, f20.stats().num_clauses);
}

TEST(TimeSession, MatchesFormulationAtBaseHorizon) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  TimeSession session(dfg, arch, 4);
  ASSERT_TRUE(session.ok());
  ASSERT_EQ(session.solve(Deadline::unlimited()), SatStatus::kSat);
  const TimeSolution sol = session.extract();
  EXPECT_EQ(sol.ii, 4);
  EXPECT_EQ(sol.horizon, session.horizon());
  expect_solution_feasible(dfg, arch, sol);
}

TEST(TimeSession, UnsatBelowRecMiiIsFinalOrAtHorizon) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  // II=3 < RecII=4: unsatisfiable at every horizon of this II.
  TimeSession session(dfg, arch, 3);
  for (int ext = 0; ext < 3 && session.ok(); ++ext) {
    EXPECT_EQ(session.solve(Deadline::unlimited()), SatStatus::kUnsat);
    session.extend_horizon();
  }
}

TEST(TimeSession, HorizonExtensionUnlocksCapacity) {
  // 5 nodes, 1x1 grid, II=5: the critical-path horizon (4) pins node 4 to
  // node 1's slot; one extension step frees it (same instance as the
  // TimeSolver.HorizonExtensionUnlocksTightCapacity sweep, but exercised
  // on one warm solver).
  const Dfg dfg = Dfg::from_edges(
      "chain5", 5, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {0, 4, 0}});
  const CgraArch arch(1, 1);
  TimeSession session(dfg, arch, 5);
  ASSERT_TRUE(session.ok());
  const SatStatus base = session.solve(Deadline::unlimited());
  if (base == SatStatus::kUnsat) {
    EXPECT_FALSE(session.unsat_is_final());
  }
  while (session.solve(Deadline::unlimited()) != SatStatus::kSat) {
    ASSERT_FALSE(session.unsat_is_final());
    ASSERT_TRUE(session.extend_horizon());
    ASSERT_LE(session.extension(), 8);
  }
  const TimeSolution sol = session.extract();
  std::vector<bool> slot_used(5, false);
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    EXPECT_FALSE(slot_used[static_cast<std::size_t>(sol.label(v))]);
    slot_used[static_cast<std::size_t>(sol.label(v))] = true;
  }
}

TEST(TimeSession, BlockLabelsPersistsAcrossExtensions) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  TimeSession session(dfg, arch, 4);
  ASSERT_EQ(session.solve(Deadline::unlimited()), SatStatus::kSat);
  const TimeSolution first = session.extract();
  ASSERT_TRUE(session.block_labels(first));
  ASSERT_TRUE(session.extend_horizon());
  // Any solution at the wider horizon must still avoid the blocked vector.
  if (session.solve(Deadline::unlimited()) == SatStatus::kSat) {
    const TimeSolution second = session.extract();
    bool differs = false;
    for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
      differs = differs || first.label(v) != second.label(v);
    }
    EXPECT_TRUE(differs);
  }
}

TEST(TimeSession, NogoodPrunesPlacementFamily) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  TimeSession session(dfg, arch, 4);
  ASSERT_EQ(session.solve(Deadline::unlimited()), SatStatus::kSat);
  const TimeSolution first = session.extract();
  // Pretend space refuted nodes {0, 1} at their current slots: every later
  // schedule must move at least one of them, not merely differ somewhere.
  ASSERT_TRUE(session.add_label_nogood(
      {{0, first.label(0)}, {1, first.label(1)}}));
  int rounds = 0;
  while (session.solve(Deadline::unlimited()) == SatStatus::kSat &&
         rounds < 32) {
    const TimeSolution sol = session.extract();
    EXPECT_FALSE(sol.label(0) == first.label(0) &&
                 sol.label(1) == first.label(1))
        << "nogood-pruned placement re-yielded";
    ASSERT_TRUE(session.block_labels(sol));
    ++rounds;
  }
}

TEST(TimeSolver, StartsAtMiiAndYields) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  TimeSolver solver(dfg, arch);
  EXPECT_EQ(solver.mii().mii(), 4);
  const auto sol = solver.next(Deadline::unlimited());
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->ii, 4);
  expect_solution_feasible(dfg, arch, *sol);
}

TEST(TimeSolver, EnumerationYieldsDistinctLabelVectors) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  TimeSolver solver(dfg, arch);
  std::vector<std::vector<int>> seen;
  for (int round = 0; round < 5; ++round) {
    const auto sol = solver.next(Deadline::unlimited());
    if (!sol.has_value()) break;
    std::vector<int> labels;
    for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
      labels.push_back(sol->label(v));
    }
    for (const auto& prev : seen) {
      EXPECT_NE(prev, labels);
    }
    seen.push_back(labels);
  }
  EXPECT_GE(seen.size(), 2u);
}

TEST(TimeSolver, SkipToNextIiRaisesIi) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  TimeSolver solver(dfg, arch);
  const auto first = solver.next(Deadline::unlimited());
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(solver.skip_to_next_ii());
  const auto second = solver.next(Deadline::unlimited());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->ii, first->ii + 1);
}

TEST(TimeSolver, HorizonExtensionUnlocksTightCapacity) {
  // A 4-node chain on a 1x1 grid: capacity 1/slot. At II=4 with horizon 4
  // (critical path) each node has a fixed slot — feasible. But 5 nodes with
  // one branch force an extension.
  const Dfg dfg = Dfg::from_edges(
      "chain5", 5, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {0, 4, 0}});
  const CgraArch arch(1, 1);
  TimeSolver solver(dfg, arch);
  const auto sol = solver.next(Deadline::unlimited());
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->ii, 5);  // ResII = 5 on one PE
  // Node 4 must move off node 1's slot: needs horizon > critical path.
  EXPECT_GE(sol->horizon, 5);
  expect_solution_feasible(dfg, arch, *sol, false);
}

TEST(TimeSolver, ReportsExhaustionOnImpossibleInstance) {
  // Zero-distance cycle would throw earlier; instead: impossible capacity
  // with max_ii capped below requirement.
  const Dfg dfg = Dfg::from_edges("six", 6, {});
  const CgraArch arch(1, 1);
  TimeSolverOptions opt;
  opt.max_ii = 3;  // needs II >= 6 on a single PE
  TimeSolver solver(dfg, arch, opt);
  const auto sol = solver.next(Deadline::unlimited());
  EXPECT_FALSE(sol.has_value());
  EXPECT_FALSE(solver.timed_out());
}

TEST(TimeSolver, DeadlineShortCircuits) {
  const Dfg dfg = benchmark_by_name("hotspot3D").dfg;
  const CgraArch arch = CgraArch::square(5);
  TimeSolver solver(dfg, arch);
  const auto sol = solver.next(Deadline(0.0));
  EXPECT_FALSE(sol.has_value());
  EXPECT_TRUE(solver.timed_out());
}

}  // namespace
}  // namespace monomap
