// Tests for the CDCL SAT solver and DIMACS I/O.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "support/rng.hpp"

namespace monomap {
namespace {

TEST(SatSolver, EmptyFormulaIsSat) {
  SatSolver s;
  EXPECT_EQ(s.solve(), SatStatus::kSat);
}

TEST(SatSolver, SingleUnitClause) {
  SatSolver s;
  const SatVar x = s.new_var();
  ASSERT_TRUE(s.add_unit(Lit::pos(x)));
  ASSERT_EQ(s.solve(), SatStatus::kSat);
  EXPECT_TRUE(s.model_value(x));
}

TEST(SatSolver, ContradictoryUnitsAreUnsat) {
  SatSolver s;
  const SatVar x = s.new_var();
  ASSERT_TRUE(s.add_unit(Lit::pos(x)));
  EXPECT_FALSE(s.add_unit(Lit::neg(x)));
  EXPECT_EQ(s.solve(), SatStatus::kUnsat);
}

TEST(SatSolver, SimpleImplicationChain) {
  SatSolver s;
  std::vector<SatVar> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 10; ++i) {
    ASSERT_TRUE(s.add_binary(Lit::neg(v[static_cast<std::size_t>(i)]),
                             Lit::pos(v[static_cast<std::size_t>(i + 1)])));
  }
  ASSERT_TRUE(s.add_unit(Lit::pos(v[0])));
  ASSERT_EQ(s.solve(), SatStatus::kSat);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(s.model_value(v[static_cast<std::size_t>(i)])) << i;
  }
}

TEST(SatSolver, XorChainSat) {
  // x1 xor x2 = 1, x2 xor x3 = 1, ..., satisfiable (alternating).
  SatSolver s;
  const int n = 20;
  std::vector<SatVar> v;
  for (int i = 0; i < n; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < n; ++i) {
    const Lit a = Lit::pos(v[static_cast<std::size_t>(i)]);
    const Lit b = Lit::pos(v[static_cast<std::size_t>(i + 1)]);
    ASSERT_TRUE(s.add_binary(a, b));
    ASSERT_TRUE(s.add_binary(~a, ~b));
  }
  ASSERT_EQ(s.solve(), SatStatus::kSat);
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_NE(s.model_value(v[static_cast<std::size_t>(i)]),
              s.model_value(v[static_cast<std::size_t>(i + 1)]));
  }
}

TEST(SatSolver, TautologyIgnored) {
  SatSolver s;
  const SatVar x = s.new_var();
  const SatVar y = s.new_var();
  ASSERT_TRUE(s.add_clause({Lit::pos(x), Lit::neg(x), Lit::pos(y)}));
  EXPECT_EQ(s.solve(), SatStatus::kSat);
}

TEST(SatSolver, DuplicateLiteralsCollapsed) {
  SatSolver s;
  const SatVar x = s.new_var();
  ASSERT_TRUE(s.add_clause({Lit::pos(x), Lit::pos(x), Lit::pos(x)}));
  ASSERT_EQ(s.solve(), SatStatus::kSat);
  EXPECT_TRUE(s.model_value(x));
}

/// Pigeonhole principle PHP(n+1, n): always UNSAT, classically hard-ish.
CnfFormula pigeonhole(int holes) {
  const int pigeons = holes + 1;
  CnfFormula f;
  auto var = [&](int p, int h) { return p * holes + h + 1; };
  f.num_vars = pigeons * holes;
  for (int p = 0; p < pigeons; ++p) {
    std::vector<int> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(var(p, h));
    f.clauses.push_back(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        f.clauses.push_back({-var(p1, h), -var(p2, h)});
      }
    }
  }
  return f;
}

TEST(SatSolver, PigeonholeUnsat) {
  for (int holes = 2; holes <= 6; ++holes) {
    SatSolver s;
    ASSERT_TRUE(load_into_solver(pigeonhole(holes), s)) << holes;
    EXPECT_EQ(s.solve(), SatStatus::kUnsat) << "PHP(" << holes + 1 << ","
                                            << holes << ")";
  }
}

TEST(SatSolver, PigeonholeExactFitSat) {
  // n pigeons in n holes is satisfiable.
  const int n = 5;
  CnfFormula f;
  auto var = [&](int p, int h) { return p * n + h + 1; };
  f.num_vars = n * n;
  for (int p = 0; p < n; ++p) {
    std::vector<int> clause;
    for (int h = 0; h < n; ++h) clause.push_back(var(p, h));
    f.clauses.push_back(clause);
  }
  for (int h = 0; h < n; ++h) {
    for (int p1 = 0; p1 < n; ++p1) {
      for (int p2 = p1 + 1; p2 < n; ++p2) {
        f.clauses.push_back({-var(p1, h), -var(p2, h)});
      }
    }
  }
  SatSolver s;
  ASSERT_TRUE(load_into_solver(f, s));
  EXPECT_EQ(s.solve(), SatStatus::kSat);
}

TEST(SatSolver, IncrementalBlockingClauseEnumeration) {
  // 3 free variables -> 8 models; enumerate all by blocking.
  SatSolver s;
  std::vector<SatVar> v{s.new_var(), s.new_var(), s.new_var()};
  int models = 0;
  while (s.solve() == SatStatus::kSat) {
    ++models;
    ASSERT_LE(models, 8);
    std::vector<Lit> block;
    for (const SatVar x : v) {
      block.push_back(Lit(x, s.model_value(x)));  // negate current model
    }
    if (!s.add_clause(block)) break;
  }
  EXPECT_EQ(models, 8);
}

TEST(SatSolver, AssumptionsHoldInModel) {
  SatSolver s;
  const SatVar x = s.new_var();
  const SatVar y = s.new_var();
  ASSERT_TRUE(s.add_binary(Lit::pos(x), Lit::pos(y)));
  ASSERT_EQ(s.solve_assuming({Lit::neg(x)}), SatStatus::kSat);
  EXPECT_FALSE(s.model_value(x));
  EXPECT_TRUE(s.model_value(y));
  // Opposite assumption, same solver.
  ASSERT_EQ(s.solve_assuming({Lit::pos(x), Lit::neg(y)}), SatStatus::kSat);
  EXPECT_TRUE(s.model_value(x));
  EXPECT_FALSE(s.model_value(y));
}

TEST(SatSolver, FailedAssumptionsNameTheCulprits) {
  // Implication chain x0 -> x1 -> ... -> x5; assuming x0 and ~x5 is
  // contradictory, and the refutation must rest on (a subset of) exactly
  // those two, not on the irrelevant free variable.
  SatSolver s;
  std::vector<SatVar> v;
  for (int i = 0; i < 6; ++i) v.push_back(s.new_var());
  const SatVar free_var = s.new_var();
  for (int i = 0; i + 1 < 6; ++i) {
    ASSERT_TRUE(s.add_binary(Lit::neg(v[static_cast<std::size_t>(i)]),
                             Lit::pos(v[static_cast<std::size_t>(i + 1)])));
  }
  const std::vector<Lit> assumptions{Lit::pos(free_var), Lit::pos(v[0]),
                                     Lit::neg(v[5])};
  ASSERT_EQ(s.solve_assuming(assumptions), SatStatus::kUnsat);
  const std::vector<Lit>& failed = s.failed_assumptions();
  ASSERT_FALSE(failed.empty());
  for (const Lit l : failed) {
    EXPECT_NE(l.var(), free_var) << "irrelevant assumption blamed";
    EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
              assumptions.end())
        << "failed literal is not an assumption";
  }
}

TEST(SatSolver, AssumptionUnsatDoesNotPoisonTheSolver) {
  // Guard literal g activates a pigeonhole contradiction; refuting under g
  // must leave the solver usable (and its learnt clauses warm) for the
  // next query — the incremental time session's usage pattern.
  SatSolver s;
  const int holes = 6;
  const SatVar g = s.new_var();
  CnfFormula php = pigeonhole(holes);
  for (int i = 0; i < php.num_vars; ++i) s.new_var();
  for (auto clause : php.clauses) {
    std::vector<Lit> lits;
    for (const int lit : clause) {
      const SatVar v = (lit > 0 ? lit : -lit);  // php vars start at g+1
      lits.push_back(Lit(v, lit < 0));
    }
    // Guard only the at-least-one rows; the at-most pairs are all-negative
    // and satisfiable on their own.
    if (clause[0] > 0) lits.push_back(Lit::neg(g));
    ASSERT_TRUE(s.add_clause(lits));
  }
  ASSERT_EQ(s.solve_assuming({Lit::pos(g)}), SatStatus::kUnsat);
  ASSERT_FALSE(s.failed_assumptions().empty());
  EXPECT_EQ(s.failed_assumptions().front().var(), g);
  const std::uint64_t learned = s.stats().learned_clauses;
  EXPECT_GT(learned, 0u);
  // The formula without the assumption is satisfiable, from the same
  // (still-warm) solver.
  EXPECT_EQ(s.solve(), SatStatus::kSat);
  EXPECT_FALSE(s.model_value(g));
}

TEST(SatSolver, OutrightUnsatReportsNoFailedAssumptions) {
  SatSolver s;
  const SatVar x = s.new_var();
  const SatVar y = s.new_var();
  const SatVar a = s.new_var();
  ASSERT_TRUE(s.add_unit(Lit::pos(x)));
  ASSERT_TRUE(s.add_binary(Lit::neg(x), Lit::pos(y)));
  // (~x | ~y) contradicts the two above at level 0.
  EXPECT_FALSE(s.add_binary(Lit::neg(x), Lit::neg(y)));
  EXPECT_EQ(s.solve_assuming({Lit::pos(a)}), SatStatus::kUnsat);
  EXPECT_TRUE(s.failed_assumptions().empty());
}

TEST(SatSolver, ContradictoryAssumptionPair) {
  SatSolver s;
  const SatVar x = s.new_var();
  ASSERT_EQ(s.solve_assuming({Lit::pos(x), Lit::neg(x)}),
            SatStatus::kUnsat);
  const std::vector<Lit>& failed = s.failed_assumptions();
  ASSERT_EQ(failed.size(), 2u);
  EXPECT_NE(failed[0], failed[1]);
  EXPECT_EQ(failed[0].var(), x);
  EXPECT_EQ(failed[1].var(), x);
  EXPECT_EQ(s.solve(), SatStatus::kSat);
}

TEST(SatSolver, LearntClausesSurviveAcrossCalls) {
  SatSolver s;
  ASSERT_TRUE(load_into_solver(pigeonhole(5), s));
  const SatVar a = s.new_var();
  // PHP(6,5) is UNSAT regardless of the assumption; the second call starts
  // from the first call's learnt clauses and refutes strictly faster.
  ASSERT_EQ(s.solve_assuming({Lit::pos(a)}), SatStatus::kUnsat);
  EXPECT_TRUE(s.failed_assumptions().empty());
  EXPECT_GT(s.num_learnts(), 0);
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  SatSolver s;
  ASSERT_TRUE(load_into_solver(pigeonhole(8), s));
  const SatStatus status = s.solve(Deadline::unlimited(), 10);
  EXPECT_EQ(status, SatStatus::kUnknown);
}

TEST(SatSolver, DeadlineReturnsUnknownOrSolves) {
  SatSolver s;
  ASSERT_TRUE(load_into_solver(pigeonhole(9), s));
  const SatStatus status = s.solve(Deadline(0.001));
  // Tiny budget: either it finished very fast or reports unknown.
  EXPECT_NE(status, SatStatus::kSat);
}

/// Check a model satisfies a formula.
bool satisfies(const CnfFormula& f, const SatSolver& s) {
  for (const auto& clause : f.clauses) {
    bool sat = false;
    for (const int lit : clause) {
      const SatVar v = (lit > 0 ? lit : -lit) - 1;
      if (s.model_value(v) == (lit > 0)) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

/// Random 3-SAT at clause/var ratio r; DPLL cross-check via brute force for
/// small n.
CnfFormula random_3sat(int num_vars, int num_clauses, Rng& rng) {
  CnfFormula f;
  f.num_vars = num_vars;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<int> clause;
    while (clause.size() < 3) {
      const int v = static_cast<int>(rng.next_below(
                        static_cast<std::uint64_t>(num_vars))) + 1;
      const int lit = rng.next_bool(0.5) ? v : -v;
      if (std::find(clause.begin(), clause.end(), lit) == clause.end() &&
          std::find(clause.begin(), clause.end(), -lit) == clause.end()) {
        clause.push_back(lit);
      }
    }
    f.clauses.push_back(clause);
  }
  return f;
}

bool brute_force_sat(const CnfFormula& f) {
  const int n = f.num_vars;
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    bool all = true;
    for (const auto& clause : f.clauses) {
      bool sat = false;
      for (const int lit : clause) {
        const int v = (lit > 0 ? lit : -lit) - 1;
        const bool val = ((mask >> v) & 1) != 0;
        if (val == (lit > 0)) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

class Random3SatVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(Random3SatVsBruteForce, AgreesWithExhaustiveCheck) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int num_vars = 10;
  // Sweep the phase-transition region where both outcomes occur.
  const int num_clauses = 30 + GetParam() % 25;
  const CnfFormula f = random_3sat(num_vars, num_clauses, rng);
  SatSolver s;
  const bool loaded = load_into_solver(f, s);
  const bool expected = brute_force_sat(f);
  if (!loaded) {
    EXPECT_FALSE(expected);
    return;
  }
  const SatStatus status = s.solve();
  ASSERT_NE(status, SatStatus::kUnknown);
  EXPECT_EQ(status == SatStatus::kSat, expected);
  if (status == SatStatus::kSat) {
    EXPECT_TRUE(satisfies(f, s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random3SatVsBruteForce,
                         ::testing::Range(0, 40));

TEST(SatSolver, StatsAccumulate) {
  SatSolver s;
  ASSERT_TRUE(load_into_solver(pigeonhole(5), s));
  ASSERT_EQ(s.solve(), SatStatus::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().decisions, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
}

TEST(Dimacs, RoundTrip) {
  const std::string text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
  const CnfFormula f = parse_dimacs(text);
  EXPECT_EQ(f.num_vars, 3);
  ASSERT_EQ(f.clauses.size(), 2u);
  EXPECT_EQ(f.clauses[0], (std::vector<int>{1, -2}));
  const CnfFormula g = parse_dimacs(to_dimacs(f));
  EXPECT_EQ(g.clauses, f.clauses);
  EXPECT_EQ(g.num_vars, f.num_vars);
}

TEST(Dimacs, HeaderlessInputInfersVarCount) {
  const CnfFormula f = parse_dimacs("1 2 0 -2 3 0");
  EXPECT_EQ(f.num_vars, 3);
  EXPECT_EQ(f.clauses.size(), 2u);
}

TEST(Dimacs, MissingTerminatorThrows) {
  EXPECT_THROW(parse_dimacs("1 2"), AssertionError);
}

}  // namespace
}  // namespace monomap
