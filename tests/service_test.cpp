// MappingService + KnowledgeStore: protocol robustness, memo soundness
// (identical and isomorphic repeats), warm-start differentials against the
// sequential mapper, admission control, fault containment, shutdown.
#include "service/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/dfg_io.hpp"
#include "mapper/fingerprint.hpp"
#include "mapper/knowledge_store.hpp"
#include "mapper/mapping.hpp"
#include "service/protocol.hpp"
#include "support/fault.hpp"
#include "support/json.hpp"
#include "workloads/suite.hpp"

namespace monomap {
namespace {

json::Value parse_response(const std::string& response) {
  const std::optional<json::Value> doc = json::parse(response);
  EXPECT_TRUE(doc.has_value() && doc->is_object()) << response;
  return doc.has_value() ? *doc : json::Value();
}

std::string map_request(const std::string& bench, bool memo, bool warm,
                        const std::string& extra = "") {
  return "{\"verb\":\"map\",\"id\":\"t\",\"bench\":\"" + bench +
         "\",\"grid\":4,\"deadline_s\":30,\"memo\":" +
         (memo ? "true" : "false") +
         ",\"warm\":" + (warm ? "true" : "false") + extra + "}";
}

// ---- protocol ------------------------------------------------------------

TEST(ServeProtocolTest, MalformedInputIsAnErrorNeverACrash) {
  const char* bad[] = {
      "",                                       // empty
      "not json",                               // unparsable
      "[1,2,3]",                                // not an object
      "{\"verb\":\"fly\",\"bench\":\"fft\"}",   // unknown verb
      "{\"verb\":\"map\"}",                     // neither bench nor dfg
      "{\"verb\":\"map\",\"bench\":\"fft\",\"dfg\":\"x\"}",  // both
      "{\"verb\":\"map\",\"bench\":\"fft\",\"grid\":0}",     // grid range
      "{\"verb\":\"map\",\"bench\":\"fft\",\"grid\":1.5}",   // non-integer
      "{\"verb\":\"map\",\"bench\":\"fft\",\"max_schedules\":-1}",
      "{\"verb\":\"map\",\"bench\":\"fft\",\"topology\":\"ring\"}",
      "{\"verb\":\"map\",\"bench\":\"fft\",\"deadline_s\":-2}",
      "{\"verb\":\"map\",\"bench\":\"fft\",\"warm\":\"yes\"}",
      "{\"verb\":\"map\",\"bench\":\"fft\",\"memo\":1}",
  };
  for (const char* line : bad) {
    const ParsedRequest parsed = parse_request(line);
    EXPECT_FALSE(parsed.ok) << line;
    EXPECT_FALSE(parsed.error.empty()) << line;
  }
}

TEST(ServeProtocolTest, DefaultsAndOverrides) {
  const ParsedRequest parsed = parse_request(
      "{\"verb\":\"map\",\"id\":7,\"bench\":\"fft\",\"grid\":5,"
      "\"topology\":\"torus\",\"deadline_s\":2.5,\"memo\":false,"
      "\"anytime\":true,\"max_schedules\":9,\"mapping\":true}");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const ServeRequest& req = parsed.request;
  EXPECT_EQ(req.id, "7");
  EXPECT_EQ(req.rows, 5);
  EXPECT_EQ(req.cols, 5);
  EXPECT_EQ(req.topology, Topology::kTorus);
  EXPECT_DOUBLE_EQ(req.deadline_s, 2.5);
  EXPECT_EQ(req.memo, 0);
  EXPECT_EQ(req.warm, -1);  // untouched tri-state
  EXPECT_TRUE(req.anytime);
  EXPECT_EQ(req.max_schedules, 9);
  EXPECT_TRUE(req.want_mapping);
}

TEST(ServiceTest, MalformedLineGetsErrorResponseAndServiceSurvives) {
  MappingService service;
  const json::Value err = parse_response(service.handle_line("garbage"));
  EXPECT_FALSE(err.bool_or("ok", true));
  const json::Value ok =
      parse_response(service.handle_line(map_request("fft", false, false)));
  EXPECT_TRUE(ok.bool_or("ok", false));
  EXPECT_EQ(service.stats().errors, 1u);
}

// ---- memo ----------------------------------------------------------------

TEST(ServiceTest, ExactRepeatIsMemoHitWithSameAnswer) {
  MappingService service;
  const json::Value cold =
      parse_response(service.handle_line(map_request("fft", true, false)));
  const json::Value hit =
      parse_response(service.handle_line(map_request("fft", true, false)));
  ASSERT_TRUE(cold.bool_or("ok", false));
  ASSERT_TRUE(hit.bool_or("ok", false));
  EXPECT_FALSE(cold.bool_or("memo_hit", true));
  EXPECT_TRUE(hit.bool_or("memo_hit", false));
  EXPECT_EQ(cold.number_or("ii", -1.0), hit.number_or("ii", -2.0));
  EXPECT_EQ(hit.number_or("schedules_tried", -1.0), 0.0);
  EXPECT_EQ(service.stats().store.memo_hits, 1u);
}

TEST(ServiceTest, IsomorphicRepeatIsMemoHitWithValidMapping) {
  // Same structural graph under two different node labelings: the second
  // request must hit the memo AND return a mapping valid for ITS labeling.
  const Dfg original = dfg_from_text(dfg_to_text(benchmark_by_name("fft").dfg));
  std::vector<Edge> edges;
  const int n = original.num_nodes();
  for (EdgeId e = 0; e < original.num_edges(); ++e) {
    const Edge& edge = original.graph().edge(e);
    edges.push_back(
        Edge{static_cast<NodeId>(n - 1 - edge.src),
             static_cast<NodeId>(n - 1 - edge.dst), edge.attr});
  }
  const Dfg relabeled = Dfg::from_edges("fft_rev", n, edges);

  MappingService service;
  auto dfg_request = [](const Dfg& dfg) {
    return "{\"verb\":\"map\",\"id\":\"t\",\"dfg\":\"" +
           json::escape(dfg_to_text(dfg)) +
           "\",\"grid\":4,\"deadline_s\":30,\"memo\":true,\"warm\":false,"
           "\"mapping\":true}";
  };
  const json::Value first =
      parse_response(service.handle_line(dfg_request(original)));
  const json::Value second =
      parse_response(service.handle_line(dfg_request(relabeled)));
  ASSERT_TRUE(first.bool_or("ok", false));
  ASSERT_TRUE(second.bool_or("ok", false));
  EXPECT_TRUE(second.bool_or("memo_hit", false));
  EXPECT_EQ(first.number_or("ii", -1.0), second.number_or("ii", -2.0));

  const std::string text = second.string_or("mapping", "");
  ASSERT_FALSE(text.empty());
  const Mapping mapping = mapping_from_text(text, relabeled.num_nodes());
  const CgraArch arch(4, 4, Topology::kMesh);
  EXPECT_TRUE(validate_mapping(relabeled, arch, mapping,
                               MrrgModel::kRegisterPersistence)
                  .empty());
}

TEST(ServiceTest, MemoOptOutNeverHits) {
  MappingService service;
  (void)service.handle_line(map_request("fft", true, false));
  const json::Value repeat =
      parse_response(service.handle_line(map_request("fft", false, false)));
  ASSERT_TRUE(repeat.bool_or("ok", false));
  EXPECT_FALSE(repeat.bool_or("memo_hit", true));
  EXPECT_GT(repeat.number_or("schedules_tried", 0.0), 0.0);
}

TEST(KnowledgeStoreTest, DifferentOptionsOrSaltNeverShareMemoSlots) {
  const Dfg dfg = benchmark_by_name("fft").dfg;
  const CgraArch arch(4, 4, Topology::kMesh);
  const DfgFingerprint fp = fingerprint_dfg(dfg);
  const std::uint64_t arch_fp = fingerprint_arch(arch);

  DecoupledMapperOptions options;
  const MapResult result = DecoupledMapper(options).map(dfg, arch);
  ASSERT_TRUE(result.success);

  KnowledgeStore store;
  store.store(dfg, fp, arch_fp, options, result);
  EXPECT_TRUE(store.lookup(dfg, arch, fp, arch_fp, options).has_value());
  // A different salt (the service's warm/cold split) misses.
  EXPECT_FALSE(
      store.lookup(dfg, arch, fp, arch_fp, options, 1).has_value());
  // A different answer-shaping option misses.
  DecoupledMapperOptions other = options;
  other.anytime = true;
  EXPECT_FALSE(store.lookup(dfg, arch, fp, arch_fp, other).has_value());
  // A different architecture misses.
  const CgraArch bigger(5, 5, Topology::kMesh);
  EXPECT_FALSE(store
                   .lookup(dfg, bigger, fp, fingerprint_arch(bigger), options)
                   .has_value());
  // Soundness gate: only completed feasible results are ever stored.
  MapResult degraded = result;
  degraded.degraded = true;
  degraded.outcome = MapOutcome::kDegraded;
  KnowledgeStore fresh;
  fresh.store(dfg, fp, arch_fp, options, degraded);
  EXPECT_FALSE(fresh.lookup(dfg, arch, fp, arch_fp, options).has_value());
}

// ---- warm starts ---------------------------------------------------------

TEST(ServiceTest, WarmWalkMatchesSequentialAnswerWithEmptyStore) {
  // map_warm seeded with nothing must agree with map() on ii/success —
  // the warm path is the same walk, only the starting knowledge differs.
  const Deadline deadline(30.0);
  for (const char* name : {"fft", "gsm", "nw", "susan"}) {
    const Dfg dfg = benchmark_by_name(name).dfg;
    const CgraArch arch(4, 4, Topology::kMesh);
    const DecoupledMapper mapper{DecoupledMapperOptions{}};
    const MapResult cold = mapper.map(dfg, arch);
    CrossIiNogoodStore scratch;
    const MapResult warm = mapper.map_warm(dfg, arch, deadline, &scratch, 0);
    EXPECT_EQ(cold.success, warm.success) << name;
    EXPECT_EQ(cold.ii, warm.ii) << name;
    if (warm.success) {
      EXPECT_TRUE(validate_mapping(dfg, arch, warm.mapping,
                                   MrrgModel::kRegisterPersistence)
                      .empty())
          << name;
    }
  }
}

TEST(ServiceTest, WarmSecondRequestSameAnswerNoMoreSchedules) {
  // nw on a 4x4 refutes low IIs by exhaustion before landing; the second
  // warm request inherits that knowledge: identical final II, and the
  // walk must not get hungrier (floor soundness differential).
  MappingService service;
  const json::Value donor =
      parse_response(service.handle_line(map_request("nw", false, true)));
  const json::Value warm =
      parse_response(service.handle_line(map_request("nw", false, true)));
  ASSERT_TRUE(donor.bool_or("ok", false));
  ASSERT_TRUE(warm.bool_or("ok", false));
  EXPECT_EQ(donor.number_or("ii", -1.0), warm.number_or("ii", -2.0));
  EXPECT_LE(warm.number_or("schedules_tried", 1e9),
            donor.number_or("schedules_tried", 0.0));
  // The warm request must actually have started warm.
  EXPECT_TRUE(warm.number_or("certs_seeded", 0.0) > 0.0 ||
              warm.number_or("floor", 0.0) > 0.0);
  EXPECT_GE(service.stats().warm_starts, 1u);

  // Differential: the sequential mapper agrees with both.
  const MapResult cold = DecoupledMapper{DecoupledMapperOptions{}}.map(
      benchmark_by_name("nw").dfg, CgraArch(4, 4, Topology::kMesh));
  ASSERT_TRUE(cold.success);
  EXPECT_EQ(static_cast<double>(cold.ii), warm.number_or("ii", -1.0));
}

// ---- admission control ---------------------------------------------------

TEST(ServiceTest, AdmissionBoundRejectsWithDeadlineOutcome) {
  MappingService::Options options;
  options.threads = 1;
  options.queue_limit = 1;
  MappingService service(options);

  std::atomic<int> rejected{0};
  std::atomic<int> served{0};
  std::thread occupant([&] {
    // cfd at 4x4 runs ~1s: long enough that the probes below overlap it.
    const json::Value r =
        parse_response(service.handle_line(map_request("cfd", false, false)));
    if (r.bool_or("ok", false)) served.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const json::Value probe =
      parse_response(service.handle_line(map_request("fft", false, false)));
  if (probe.bool_or("ok", false)) {
    served.fetch_add(1);
  } else {
    EXPECT_EQ(probe.string_or("outcome", ""), "deadline");
    EXPECT_EQ(probe.number_or("exit_code", 0.0), 5.0);
    rejected.fetch_add(1);
  }
  occupant.join();
  EXPECT_EQ(served.load() + rejected.load(), 2);
  EXPECT_EQ(service.stats().rejected,
            static_cast<std::uint64_t>(rejected.load()));
  // The service keeps serving after shedding load.
  const json::Value after =
      parse_response(service.handle_line(map_request("fft", false, false)));
  EXPECT_TRUE(after.bool_or("ok", false));
}

// ---- fault containment ---------------------------------------------------

TEST(ServiceTest, ServeRequestFaultSiteIsClassifiedAndContained) {
  const auto plan = fault::parse_fault_spec("serve.request=throw@2:1");
  ASSERT_TRUE(plan.has_value());
  fault::install_faults(*plan);
  MappingService service;
  int faults = 0;
  int feasible = 0;
  for (int i = 0; i < 4; ++i) {
    const json::Value r =
        parse_response(service.handle_line(map_request("fft", false, false)));
    const std::string outcome = r.string_or("outcome", "");
    if (outcome == "fault") {
      EXPECT_FALSE(r.bool_or("ok", true));
      EXPECT_EQ(r.number_or("exit_code", 0.0), 7.0);
      ++faults;
    } else if (outcome == "feasible") {
      ++feasible;
    }
  }
  fault::clear_faults();
  // period 2: half the requests fault, the server survives all of them.
  EXPECT_EQ(faults, 2);
  EXPECT_EQ(feasible, 2);
  EXPECT_EQ(service.stats().faults, 2u);
  const json::Value after =
      parse_response(service.handle_line(map_request("fft", false, false)));
  EXPECT_TRUE(after.bool_or("ok", false));
}

// ---- stats + shutdown ----------------------------------------------------

TEST(ServiceTest, StatsVerbReportsCountersAndLatency) {
  MappingService service;
  (void)service.handle_line(map_request("fft", true, false));
  (void)service.handle_line(map_request("fft", true, false));
  const json::Value stats = parse_response(
      service.handle_line("{\"verb\":\"stats\",\"id\":\"s\"}"));
  EXPECT_TRUE(stats.bool_or("ok", false));
  EXPECT_EQ(stats.number_or("requests", 0.0), 2.0);
  EXPECT_EQ(stats.number_or("memo_hits", 0.0), 1.0);
  EXPECT_EQ(stats.number_or("memo_stores", 0.0), 1.0);
  EXPECT_GT(stats.number_or("p50_ms", 0.0), 0.0);
  EXPECT_GE(stats.number_or("p99_ms", 0.0),
            stats.number_or("p50_ms", 0.0));
  EXPECT_GT(stats.number_or("mem_bytes", 0.0), 0.0);
}

TEST(ServiceTest, ShutdownVerbFlagsTheFrontEnd) {
  MappingService service;
  EXPECT_FALSE(service.shutdown_requested());
  const json::Value r = parse_response(
      service.handle_line("{\"verb\":\"shutdown\",\"id\":\"x\"}"));
  EXPECT_TRUE(r.bool_or("ok", false));
  EXPECT_TRUE(service.shutdown_requested());
}

}  // namespace
}  // namespace monomap
