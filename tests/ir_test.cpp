// Tests for the mini loop IR: opcodes, kernel construction/validation,
// DFG extraction, and the sequential interpreter.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "ir/dfg.hpp"
#include "ir/interpreter.hpp"
#include "ir/kernel.hpp"
#include "ir/opcode.hpp"

namespace monomap {
namespace {

TEST(Opcode, ArityTable) {
  EXPECT_EQ(opcode_arity(Opcode::kConst), 0);
  EXPECT_EQ(opcode_arity(Opcode::kIndex), 0);
  EXPECT_EQ(opcode_arity(Opcode::kPhi), 1);
  EXPECT_EQ(opcode_arity(Opcode::kLoad), 1);
  EXPECT_EQ(opcode_arity(Opcode::kStore), 2);
  EXPECT_EQ(opcode_arity(Opcode::kAdd), 2);
  EXPECT_EQ(opcode_arity(Opcode::kSelect), 3);
}

TEST(Opcode, PureEvaluation) {
  EXPECT_EQ(eval_pure(Opcode::kAdd, 3, 4, 0), 7);
  EXPECT_EQ(eval_pure(Opcode::kSub, 3, 4, 0), -1);
  EXPECT_EQ(eval_pure(Opcode::kMul, -3, 4, 0), -12);
  EXPECT_EQ(eval_pure(Opcode::kDiv, 12, 4, 0), 3);
  EXPECT_EQ(eval_pure(Opcode::kDiv, 12, 0, 0), 0);  // defined: x/0 = 0
  EXPECT_EQ(eval_pure(Opcode::kRem, 12, 0, 0), 0);
  EXPECT_EQ(eval_pure(Opcode::kAnd, 0b1100, 0b1010, 0), 0b1000);
  EXPECT_EQ(eval_pure(Opcode::kXor, 0b1100, 0b1010, 0), 0b0110);
  EXPECT_EQ(eval_pure(Opcode::kShl, 1, 4, 0), 16);
  EXPECT_EQ(eval_pure(Opcode::kShr, -1, 60, 0), 15);
  EXPECT_EQ(eval_pure(Opcode::kAshr, -16, 2, 0), -4);
  EXPECT_EQ(eval_pure(Opcode::kMin, 3, -5, 0), -5);
  EXPECT_EQ(eval_pure(Opcode::kMax, 3, -5, 0), 3);
  EXPECT_EQ(eval_pure(Opcode::kAbs, -9, 0, 0), 9);
  EXPECT_EQ(eval_pure(Opcode::kNeg, 9, 0, 0), -9);
  EXPECT_EQ(eval_pure(Opcode::kNot, 0, 0, 0), -1);
  EXPECT_EQ(eval_pure(Opcode::kCmpLt, 2, 3, 0), 1);
  EXPECT_EQ(eval_pure(Opcode::kCmpLe, 3, 3, 0), 1);
  EXPECT_EQ(eval_pure(Opcode::kCmpEq, 3, 3, 0), 1);
  EXPECT_EQ(eval_pure(Opcode::kCmpNe, 3, 3, 0), 0);
  EXPECT_EQ(eval_pure(Opcode::kSelect, 1, 10, 20), 10);
  EXPECT_EQ(eval_pure(Opcode::kSelect, 0, 10, 20), 20);
  EXPECT_EQ(eval_pure(Opcode::kPhi, 42, 0, 0), 42);
  EXPECT_THROW(eval_pure(Opcode::kLoad, 0, 0, 0), AssertionError);
}

TEST(Opcode, ShiftAmountsMasked) {
  EXPECT_EQ(eval_pure(Opcode::kShl, 1, 64, 0), 1);  // 64 & 63 == 0
  EXPECT_EQ(eval_pure(Opcode::kShl, 1, 65, 0), 2);
}

TEST(Kernel, BuilderProducesValidKernel) {
  LoopKernel k("t");
  const auto i = k.index();
  const auto a = k.load(0, ref(i));
  const auto b = k.binary_imm(Opcode::kMul, ref(a), 3);
  const auto c = k.binary(Opcode::kAdd, ref(a), ref(b));
  k.store(1, ref(i), ref(c));
  EXPECT_NO_THROW(k.validate());
  EXPECT_EQ(k.size(), 5);
}

TEST(Kernel, ZeroDistanceCycleRejected) {
  LoopKernel k("cyc");
  const auto a = k.phi(carried(1, 0));  // distance 0 forward ref
  k.unary(Opcode::kAbs, ref(a));
  EXPECT_THROW(k.validate(), AssertionError);
}

TEST(Kernel, CarriedCycleAccepted) {
  LoopKernel k("ok");
  const auto a = k.phi(carried(1));
  k.binary_imm(Opcode::kAdd, ref(a), 1);
  EXPECT_NO_THROW(k.validate());
}

TEST(Kernel, NegativeDistanceRejected) {
  LoopKernel k("neg");
  const auto c = k.constant(1);
  Instruction bad;
  bad.op = Opcode::kAbs;
  bad.operands = {OperandRef{c, -1}};
  k.append(std::move(bad));
  EXPECT_THROW(k.validate(), AssertionError);
}

TEST(Kernel, ArityMismatchRejected) {
  LoopKernel k("ar");
  Instruction bad;
  bad.op = Opcode::kAdd;  // needs 2 operands, give none
  k.append(std::move(bad));
  EXPECT_THROW(k.validate(), AssertionError);
}

TEST(Kernel, SetOperandPatchesCycles) {
  LoopKernel k("patch");
  const auto p = k.phi(carried(0));
  const auto n = k.binary_imm(Opcode::kAdd, ref(p), 1);
  k.set_operand(p, 0, carried(n));
  k.validate();
  EXPECT_EQ(k.instr(p).operands[0].producer, n);
  EXPECT_THROW(k.set_operand(p, 3, ref(n)), AssertionError);
}

TEST(Dfg, ExtractionCreatesEdgePerDependence) {
  LoopKernel k("x");
  const auto i = k.index();
  const auto a = k.load(0, ref(i));
  const auto b = k.binary(Opcode::kAdd, ref(a), carried(a, 2));
  k.store(1, ref(i), ref(b));
  const Dfg dfg = Dfg::from_kernel(k);
  EXPECT_EQ(dfg.num_nodes(), 4);
  // Edges: i->a, a->b (d0), a->b (d2), i->store, b->store.
  EXPECT_EQ(dfg.num_edges(), 5);
  EXPECT_EQ(dfg.opcode(static_cast<NodeId>(b)), Opcode::kAdd);
  EXPECT_TRUE(dfg.is_connected());
}

TEST(Dfg, DuplicateOperandsCollapse) {
  LoopKernel k("dup");
  const auto c = k.constant(5);
  k.binary(Opcode::kMul, ref(c), ref(c));  // c*c: one edge, not two
  const Dfg dfg = Dfg::from_kernel(k);
  EXPECT_EQ(dfg.num_edges(), 1);
}

TEST(Dfg, MaxDegreeComputed) {
  const Dfg dfg = Dfg::from_edges("star", 5,
                                  {{0, 1, 0}, {0, 2, 0}, {0, 3, 0}, {0, 4, 0}});
  EXPECT_EQ(dfg.max_undirected_degree(), 4);
}

TEST(Interpreter, AccumulatorSemantics) {
  LoopKernel k("acc");
  const auto p = k.phi(carried(1));
  const auto n = k.binary_imm(Opcode::kAdd, ref(p), 1);
  k.set_operand(p, 0, carried(n));
  k.set_init(n, 100);
  const ExecutionTrace t = interpret(k, 4);
  // iter0: phi reads init(n)=100 -> n=101; iter1: 102; ...
  EXPECT_EQ(t.values[0][static_cast<std::size_t>(n)], 101);
  EXPECT_EQ(t.values[3][static_cast<std::size_t>(n)], 104);
}

TEST(Interpreter, IndexAndImmediates) {
  LoopKernel k("idx");
  const auto i = k.index();
  const auto d = k.binary_imm(Opcode::kMul, ref(i), 10);
  const ExecutionTrace t = interpret(k, 3);
  EXPECT_EQ(t.values[0][static_cast<std::size_t>(d)], 0);
  EXPECT_EQ(t.values[2][static_cast<std::size_t>(d)], 20);
}

TEST(Interpreter, MemoryRoundTrip) {
  LoopKernel k("mem");
  const auto i = k.index();
  const auto v = k.binary_imm(Opcode::kMul, ref(i), 7);
  k.store(3, ref(i), ref(v));
  const ExecutionTrace t = interpret(k, 5);
  for (int iter = 0; iter < 5; ++iter) {
    EXPECT_EQ(t.memory.read(3, iter), iter * 7);
  }
}

TEST(Interpreter, UnwrittenMemoryIsDeterministic) {
  DataMemory m1(42);
  DataMemory m2(42);
  EXPECT_EQ(m1.read(0, 123), m2.read(0, 123));
  DataMemory m3(43);  // different salt -> (very likely) different content
  bool any_diff = false;
  for (int a = 0; a < 32 && !any_diff; ++a) {
    any_diff = m1.read(0, a) != m3.read(0, a);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Interpreter, DistanceTwoCarriedDependency) {
  LoopKernel k("fib");
  // fib-like: f = f[-1] + f[-2]
  const auto f = k.binary(Opcode::kAdd, carried(0, 1), carried(0, 2), "f");
  k.set_operand(f, 0, carried(f, 1));
  k.set_operand(f, 1, carried(f, 2));
  k.set_init(f, 1);
  const ExecutionTrace t = interpret(k, 6);
  // iter0: 1+1=2, iter1: 2+1=3, iter2: 3+2=5, iter3: 5+3=8 ...
  EXPECT_EQ(t.values[0][0], 2);
  EXPECT_EQ(t.values[1][0], 3);
  EXPECT_EQ(t.values[2][0], 5);
  EXPECT_EQ(t.values[3][0], 8);
  EXPECT_EQ(t.values[5][0], 21);
}

TEST(Interpreter, SelectAndCompareChain) {
  LoopKernel k("sel");
  const auto i = k.index();
  const auto c = k.binary_imm(Opcode::kCmpLt, ref(i), 2);
  const auto a = k.constant(100);
  const auto b = k.constant(200);
  const auto s = k.select(ref(c), ref(a), ref(b));
  const ExecutionTrace t = interpret(k, 4);
  EXPECT_EQ(t.values[0][static_cast<std::size_t>(s)], 100);
  EXPECT_EQ(t.values[1][static_cast<std::size_t>(s)], 100);
  EXPECT_EQ(t.values[2][static_cast<std::size_t>(s)], 200);
  EXPECT_EQ(t.values[3][static_cast<std::size_t>(s)], 200);
}

}  // namespace
}  // namespace monomap
