// Speculative cross-II race (map_speculative) and the cross-II
// slot-partition certificate store.
//
// The load-bearing property is determinism: the race may only buy wall
// clock, never change the answer — the committed II must equal what the
// sequential map() walk finds, because a feasible II commits only after
// every strictly smaller II has been refuted. The tests here pin that
// agreement across the suite and random DFGs, check the certificate
// machinery's soundness against both time engines, and stress the
// cancellation plumbing (run these under ThreadSanitizer via
// -DMONOMAP_TSAN=ON to check the pool and store synchronisation).
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "mapper/cross_ii_store.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "workloads/suite.hpp"
#include "workloads/synthetic.hpp"

namespace monomap {
namespace {

DecoupledMapperOptions fast_options() {
  DecoupledMapperOptions opt;
  opt.timeout_s = 120.0;
  return opt;
}

SpeculativeOptions race_options() {
  SpeculativeOptions spec;
  spec.num_threads = 4;  // clamped to the machine's cores internally
  spec.lookahead = 2;
  return spec;
}

SpeculativeOptions warm_options() {
  SpeculativeOptions spec = race_options();
  spec.share_nogoods = true;
  return spec;
}

/// Determinism on the suite: the default (cold) race and sequential agree
/// on feasibility and on the exact final II. Grid 5 is load-bearing: it
/// is where a certificate-warmed walk historically settled one II above
/// sequential on hotspot3D (which is why share_nogoods defaults to off).
TEST(SpeculativeMapper, MatchesSequentialOnSuiteGrids) {
  const DecoupledMapper mapper(fast_options());
  for (const char* name : {"bitcount", "fft", "nw", "hotspot3D", "cfd"}) {
    const Benchmark& b = benchmark_by_name(name);
    for (const int side : {4, 5, 8}) {
      const CgraArch arch = CgraArch::square(side);
      const MapResult seq = mapper.map(b.dfg, arch);
      const MapResult spec = mapper.map_speculative(b.dfg, arch,
                                                    race_options());
      ASSERT_EQ(seq.success, spec.success)
          << name << " " << side << "x" << side << ": "
          << spec.failure_reason;
      if (seq.success) {
        EXPECT_EQ(seq.ii, spec.ii) << name << " " << side << "x" << side;
        EXPECT_TRUE(mapping_is_valid(b.dfg, arch, spec.mapping))
            << name << " " << side << "x" << side;
      }
    }
  }
}

/// Determinism across 10 random DFGs: same final II as sequential map().
TEST(SpeculativeMapper, MatchesSequentialOnRandomDfgs) {
  const DecoupledMapper mapper(fast_options());
  const CgraArch arch = CgraArch::square(4);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SyntheticSpec dfg_spec;
    dfg_spec.num_nodes = 18;
    dfg_spec.seed = seed;
    const Dfg dfg = random_dfg(dfg_spec);
    const MapResult seq = mapper.map(dfg, arch);
    const MapResult spec = mapper.map_speculative(dfg, arch, race_options());
    ASSERT_EQ(seq.success, spec.success) << "seed " << seed;
    if (seq.success) {
      EXPECT_EQ(seq.ii, spec.ii) << "seed " << seed;
      EXPECT_TRUE(mapping_is_valid(dfg, arch, spec.mapping)) << seed;
    }
  }
}

/// Lookahead 0 degenerates to a pinned-II replay of the sequential walk
/// and must still agree.
TEST(SpeculativeMapper, ZeroLookaheadStillMatches) {
  const DecoupledMapper mapper(fast_options());
  const Benchmark& b = benchmark_by_name("hotspot3D");
  const CgraArch arch = CgraArch::square(4);
  SpeculativeOptions spec = race_options();
  spec.lookahead = 0;
  const MapResult seq = mapper.map(b.dfg, arch);
  const MapResult r = mapper.map_speculative(b.dfg, arch, spec);
  ASSERT_EQ(seq.success, r.success) << r.failure_reason;
  EXPECT_EQ(seq.ii, r.ii);
}

/// map_at_ii is the exact per-II policy of map(): pinned below the
/// sequential answer it refutes, at the answer it succeeds.
TEST(SpeculativeMapper, MapAtIiMirrorsSequentialDecisions) {
  const DecoupledMapper mapper(fast_options());
  const Benchmark& b = benchmark_by_name("hotspot3D");
  const CgraArch arch = CgraArch::square(4);
  const MapResult seq = mapper.map(b.dfg, arch);
  ASSERT_TRUE(seq.success) << seq.failure_reason;
  ASSERT_GT(seq.ii, seq.mii.mii())
      << "hotspot3D/4x4 is expected to escalate past mII; if this ever "
         "changes pick another escalation-heavy case for this test";
  for (int ii = seq.mii.mii(); ii < seq.ii; ++ii) {
    const MapResult r = mapper.map_at_ii(b.dfg, arch, ii, Deadline(120.0));
    EXPECT_FALSE(r.success) << "II " << ii;
    EXPECT_FALSE(r.timed_out) << "II " << ii << ": must be a refutation, "
                              << r.failure_reason;
  }
  const MapResult r =
      mapper.map_at_ii(b.dfg, arch, seq.ii, Deadline(120.0));
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.ii, seq.ii);
  EXPECT_TRUE(mapping_is_valid(b.dfg, arch, r.mapping));
}

/// Soundness of cross-II certificate lifting, checked against BOTH time
/// engines: certificates harvested from refuted lower IIs are injected
/// into an attempt at the feasible II, which must still find a valid
/// mapping at the same II — the lifted clauses prune relabelings of dead
/// placements, never a placeable schedule.
TEST(SpeculativeMapper, CrossIiCertificatesAreSoundOnBothEngines) {
  DecoupledMapperOptions opt = fast_options();
  const DecoupledMapper mapper(opt);
  const Benchmark& b = benchmark_by_name("hotspot3D");
  const CgraArch arch = CgraArch::square(8);
  const MapResult seq = mapper.map(b.dfg, arch);
  ASSERT_TRUE(seq.success) << seq.failure_reason;
  ASSERT_GT(seq.ii, seq.mii.mii())
      << "needs a case whose lower IIs are refuted so the store fills up";

  CrossIiNogoodStore store;
  for (int ii = seq.mii.mii(); ii < seq.ii; ++ii) {
    const MapResult r =
        mapper.map_at_ii(b.dfg, arch, ii, Deadline(120.0), &store);
    EXPECT_FALSE(r.success) << "II " << ii;
    EXPECT_FALSE(r.timed_out) << "II " << ii;
  }
  ASSERT_GT(store.size(), 0u)
      << "the refuted IIs produced no certificates — the lifting channel "
         "is not being exercised";

  for (const TimeEngine engine :
       {TimeEngine::kIncremental, TimeEngine::kReference}) {
    DecoupledMapperOptions eopt = fast_options();
    eopt.time.engine = engine;
    const MapResult r = DecoupledMapper(eopt).map_at_ii(
        b.dfg, arch, seq.ii, Deadline(120.0), &store);
    ASSERT_TRUE(r.success)
        << to_string(engine) << ": " << r.failure_reason;
    EXPECT_EQ(r.ii, seq.ii) << to_string(engine);
    EXPECT_GT(r.nogoods_lifted_cross_ii, 0) << to_string(engine);
    EXPECT_TRUE(mapping_is_valid(b.dfg, arch, r.mapping))
        << to_string(engine);
  }
}

/// The warm (share_nogoods) flavour gives up bit-exact agreement with
/// sequential — certificate arrival can move the retry policy's give-up
/// points — but never soundness: it must always produce a mapping that
/// validates, at an II no better than feasibility allows.
TEST(SpeculativeMapper, WarmStartStaysSoundAndValid) {
  const DecoupledMapper mapper(fast_options());
  for (const char* name : {"hotspot3D", "cfd"}) {
    const Benchmark& b = benchmark_by_name(name);
    for (const int side : {5, 8}) {
      const CgraArch arch = CgraArch::square(side);
      const MapResult r =
          mapper.map_speculative(b.dfg, arch, warm_options());
      ASSERT_TRUE(r.success) << name << " " << side << ": "
                             << r.failure_reason;
      EXPECT_GE(r.ii, r.mii.mii()) << name << " " << side;
      EXPECT_TRUE(mapping_is_valid(b.dfg, arch, r.mapping))
          << name << " " << side;
    }
  }
}

/// Unit semantics of the certificate store: canonicalisation, dedup,
/// rotation instantiation and the permutation prefilter.
TEST(CrossIiStore, CanonicalisesAndDeduplicates) {
  CrossIiNogoodStore store;
  // Labels 0,1,0,1 over nodes 0..3: blocks {0,2} and {1,3}.
  EXPECT_TRUE(store.add(2, {3, 0, 2, 1}, {0, 1, 0, 1}));
  // Same partition from a different II and node order: still a duplicate
  // (block_slots are not part of the identity, the partition is).
  EXPECT_FALSE(store.add(4, {0, 1, 2, 3}, {5, 7, 5, 7}));
  EXPECT_EQ(store.size(), 1u);
  // A genuinely different partition is kept.
  EXPECT_TRUE(store.add(2, {0, 1, 2, 3}, {0, 0, 1, 1}));
  EXPECT_EQ(store.size(), 2u);
}

TEST(CrossIiStore, RotationInstantiationCoversTargetIi) {
  CrossIiNogoodStore store;
  ASSERT_TRUE(store.add(2, {0, 1, 2}, {0, 1, 0}));
  std::size_t cursor = 0;
  std::vector<SlotPartitionCert> certs;
  store.drain(&cursor, &certs);
  ASSERT_EQ(certs.size(), 1u);
  const auto rotations = instantiate_rotations(certs[0], 3);
  // One clause per target slot rotation.
  ASSERT_EQ(rotations.size(), 3u);
  for (const auto& clause : rotations) {
    ASSERT_EQ(clause.size(), 3u);
    // Nodes 0 and 2 shared a slot at the source II; every instantiation
    // keeps them equal and node 1 offset by the source block distance.
    int slot02 = -1;
    for (const auto& [v, slot] : clause) {
      EXPECT_GE(slot, 0);
      EXPECT_LT(slot, 3);
      if (v == 0 || v == 2) {
        if (slot02 < 0) slot02 = slot;
        EXPECT_EQ(slot, slot02);
      }
    }
  }
  // Drain cursor advances: nothing new on a second drain.
  std::vector<SlotPartitionCert> again;
  store.drain(&cursor, &again);
  EXPECT_TRUE(again.empty());
}

TEST(CrossIiStore, PrefilterMatchesCoarserPartitionsOnly) {
  CrossIiNogoodStore store;
  ASSERT_TRUE(store.add(2, {0, 1, 2, 3}, {0, 0, 1, 1}));
  std::size_t cursor = 0;
  std::vector<SlotPartitionCert> certs;
  store.drain(&cursor, &certs);
  ASSERT_EQ(certs.size(), 1u);
  // Same partition under arbitrary relabeling: hit.
  EXPECT_TRUE(cert_hits_labels(certs[0], {4, 4, 2, 2}));
  // Coarser (all merged): still a hit — merging blocks only tightens.
  EXPECT_TRUE(cert_hits_labels(certs[0], {3, 3, 3, 3}));
  // A block split apart: no hit.
  EXPECT_FALSE(cert_hits_labels(certs[0], {0, 1, 1, 1}));
}

/// Cancellation stress: cancel the race from another thread at varying
/// points in its life. Every run must come back promptly, and a cut-short
/// run must report cancelled (not a bare wall-clock timeout). Runs warm
/// so TSan additionally exercises the certificate store alongside the
/// token chain and the pool teardown.
TEST(SpeculativeMapper, CancellationStress) {
  const DecoupledMapper mapper(fast_options());
  const Benchmark& b = benchmark_by_name("cfd");
  const CgraArch arch = CgraArch::square(8);
  for (const int delay_ms : {0, 1, 3, 10, 30, 100}) {
    CancelToken cancel;
    const Deadline deadline(600.0, &cancel);
    std::thread axe([&cancel, delay_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      cancel.cancel();
    });
    const MapResult r =
        mapper.map_speculative(b.dfg, arch, deadline, warm_options());
    axe.join();
    if (r.success) {
      // The race beat the axe; the mapping must still be a real one.
      EXPECT_TRUE(mapping_is_valid(b.dfg, arch, r.mapping)) << delay_ms;
    } else {
      EXPECT_TRUE(r.timed_out) << delay_ms << ": " << r.failure_reason;
      EXPECT_TRUE(r.cancelled) << delay_ms << ": " << r.failure_reason;
    }
  }
}

/// An expired wall clock without a fired token is a timeout, NOT a cancel
/// — the two telemetry bits must stay distinguishable.
TEST(SpeculativeMapper, ExpiredDeadlineIsNotReportedAsCancelled) {
  const DecoupledMapper mapper(fast_options());
  const Benchmark& b = benchmark_by_name("fft");
  const CgraArch arch = CgraArch::square(4);
  const MapResult r =
      mapper.map_speculative(b.dfg, arch, Deadline(0.0), race_options());
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.cancelled);
}

}  // namespace
}  // namespace monomap
