// End-to-end tests for the decoupled mapper (the paper's contribution) and
// the coupled SAT baseline.
#include <gtest/gtest.h>

#include "mapper/coupled_mapper.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "workloads/running_example.hpp"
#include "workloads/suite.hpp"
#include "workloads/synthetic.hpp"

namespace monomap {
namespace {

DecoupledMapperOptions fast_options() {
  DecoupledMapperOptions opt;
  opt.timeout_s = 60.0;
  return opt;
}

TEST(DecoupledMapper, RunningExampleMapsAtMiiOn2x2) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  const MapResult r = DecoupledMapper(fast_options()).map(dfg, arch);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.mii.mii(), 4);
  EXPECT_EQ(r.ii, 4) << "paper maps the running example at II = 4";
  EXPECT_TRUE(mapping_is_valid(dfg, arch, r.mapping));
}

TEST(DecoupledMapper, RunningExampleOnLargerGridsKeepsIi) {
  const Dfg dfg = running_example_dfg();
  for (const int n : {3, 4, 5}) {
    const CgraArch arch = CgraArch::square(n);
    const MapResult r = DecoupledMapper(fast_options()).map(dfg, arch);
    ASSERT_TRUE(r.success) << n << ": " << r.failure_reason;
    EXPECT_EQ(r.ii, 4) << n;  // RecII = 4 dominates on every grid
    EXPECT_TRUE(mapping_is_valid(dfg, arch, r.mapping));
  }
}

TEST(CoupledMapper, RunningExampleMatchesDecoupledQuality) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  CoupledMapperOptions opt;
  opt.timeout_s = 120.0;
  const CoupledMapResult r = CoupledSatMapper(opt).map(dfg, arch);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.ii, 4);
  EXPECT_TRUE(mapping_is_valid(dfg, arch, r.mapping));
}

/// Full suite on a 4x4 CGRA: every benchmark must map and validate.
class SuiteMapping : public ::testing::TestWithParam<int> {};

TEST_P(SuiteMapping, MapsAndValidatesOn4x4) {
  const Benchmark& b = benchmark_suite()[static_cast<std::size_t>(GetParam())];
  const CgraArch arch = CgraArch::square(4);
  const MapResult r = DecoupledMapper(fast_options()).map(b.dfg, arch);
  ASSERT_TRUE(r.success) << b.name << ": " << r.failure_reason;
  EXPECT_GE(r.ii, r.mii.mii()) << b.name;
  EXPECT_TRUE(mapping_is_valid(b.dfg, arch, r.mapping)) << b.name;
}

TEST_P(SuiteMapping, MapsAndValidatesOn5x5) {
  const Benchmark& b = benchmark_suite()[static_cast<std::size_t>(GetParam())];
  const CgraArch arch = CgraArch::square(5);
  const MapResult r = DecoupledMapper(fast_options()).map(b.dfg, arch);
  ASSERT_TRUE(r.success) << b.name << ": " << r.failure_reason;
  EXPECT_TRUE(mapping_is_valid(b.dfg, arch, r.mapping)) << b.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteMapping, ::testing::Range(0, 17),
    [](const ::testing::TestParamInfo<int>& info) {
      return benchmark_suite()[static_cast<std::size_t>(info.param)].name;
    });

TEST(DecoupledMapper, AchievesMiiWhenUncongested) {
  // bitcount is tiny: II should equal mII everywhere.
  const Benchmark& b = benchmark_by_name("bitcount");
  for (const int n : {2, 4, 8}) {
    const CgraArch arch = CgraArch::square(n);
    const MapResult r = DecoupledMapper(fast_options()).map(b.dfg, arch);
    ASSERT_TRUE(r.success) << n;
    EXPECT_EQ(r.ii, r.mii.mii()) << n;
  }
}

TEST(DecoupledMapper, TimePhaseIsGridSizeInsensitive) {
  // The decoupling claim: formulation size depends on the DFG, not on the
  // grid. Verify the encoding stats are identical across grids of equal
  // D_M (5x5 vs 20x20) at equal mII.
  const Benchmark& b = benchmark_by_name("fft");
  const MapResult r5 =
      DecoupledMapper(fast_options()).map(b.dfg, CgraArch::square(5));
  const MapResult r20 =
      DecoupledMapper(fast_options()).map(b.dfg, CgraArch::square(20));
  ASSERT_TRUE(r5.success);
  ASSERT_TRUE(r20.success);
  EXPECT_EQ(r5.time_stats.last_formulation.num_vars,
            r20.time_stats.last_formulation.num_vars);
  EXPECT_EQ(r5.ii, r20.ii);
}

TEST(DecoupledMapper, ImpossibleBudgetReportsTimeout) {
  const Benchmark& b = benchmark_by_name("hotspot3D");
  DecoupledMapperOptions opt;
  opt.timeout_s = 1e-6;  // expire immediately
  const MapResult r = DecoupledMapper(opt).map(b.dfg, CgraArch::square(5));
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.timed_out);
}

TEST(DecoupledMapper, SingleNodeDfgOnSinglePe) {
  const Dfg dfg = Dfg::from_edges("one", 1, {});
  const CgraArch arch(1, 1);
  const MapResult r = DecoupledMapper(fast_options()).map(dfg, arch);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.ii, 1);
}

TEST(DecoupledMapper, SelfLoopAccumulator) {
  // A one-node accumulator with a distance-1 self-edge.
  const Dfg dfg = Dfg::from_edges("acc", 1, {{0, 0, 1}});
  const CgraArch arch = CgraArch::square(2);
  const MapResult r = DecoupledMapper(fast_options()).map(dfg, arch);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.ii, 1);
  EXPECT_TRUE(mapping_is_valid(dfg, arch, r.mapping));
}

TEST(DecoupledMapper, ChainTooLongForCapacityRaisesIi) {
  // 5 independent nodes on a 1x2 CGRA: ResII = ceil(5/2) = 3.
  const Dfg dfg = Dfg::from_edges(
      "par5", 5, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 4, 0}});
  const CgraArch arch(1, 2);
  const MapResult r = DecoupledMapper(fast_options()).map(dfg, arch);
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.ii, 3);
  EXPECT_TRUE(mapping_is_valid(dfg, arch, r.mapping));
}

TEST(CoupledVsDecoupled, SameIiOnSmallCases) {
  // On small grids both exact mappers should find the same II (the paper
  // reports identical II in 57 of 68 cases; differences only appear when a
  // tool times out).
  for (const char* name : {"bitcount", "susan", "sha1", "fft"}) {
    const Benchmark& b = benchmark_by_name(name);
    const CgraArch arch = CgraArch::square(3);
    const MapResult dec = DecoupledMapper(fast_options()).map(b.dfg, arch);
    CoupledMapperOptions copt;
    copt.timeout_s = 120.0;
    const CoupledMapResult cop = CoupledSatMapper(copt).map(b.dfg, arch);
    ASSERT_TRUE(dec.success) << name;
    ASSERT_TRUE(cop.success) << name;
    // The decoupled mapper adds connectivity constraints that can only
    // raise II, never lower it below the joint optimum.
    EXPECT_GE(dec.ii, cop.ii) << name;
    EXPECT_TRUE(mapping_is_valid(b.dfg, arch, cop.mapping)) << name;
  }
}

TEST(DecoupledMapper, RandomDfgsAlwaysValidate) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    SyntheticSpec spec;
    spec.num_nodes = 18;
    spec.seed = seed;
    const Dfg dfg = random_dfg(spec);
    const CgraArch arch = CgraArch::square(4);
    const MapResult r = DecoupledMapper(fast_options()).map(dfg, arch);
    ASSERT_TRUE(r.success) << "seed " << seed << ": " << r.failure_reason;
    EXPECT_TRUE(mapping_is_valid(dfg, arch, r.mapping)) << seed;
  }
}

TEST(DecoupledMapper, MapBatchHonoursSharedDeadline) {
  std::vector<const Dfg*> dfgs;
  for (const char* name : {"gsm", "fft", "hotspot3D"}) {
    dfgs.push_back(&benchmark_by_name(name).dfg);
  }
  const CgraArch arch = CgraArch::square(4);
  const DecoupledMapper mapper(fast_options());
  // An already-expired shared deadline must cut every item short — no item
  // may fall back to its own private options_.timeout_s budget.
  BatchStats stats;
  const std::vector<MapResult> results =
      mapper.map_batch(dfgs, arch, Deadline(0.0), 2, &stats);
  ASSERT_EQ(results.size(), dfgs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_FALSE(results[i].success) << i;
    EXPECT_TRUE(results[i].timed_out) << i;
    // The wall clock ran out; nobody fired a cancel token.
    EXPECT_FALSE(results[i].cancelled) << i;
  }
}

TEST(DecoupledMapper, MapBatchObservesCancelToken) {
  std::vector<const Dfg*> dfgs;
  for (const char* name : {"gsm", "fft"}) {
    dfgs.push_back(&benchmark_by_name(name).dfg);
  }
  const CgraArch arch = CgraArch::square(4);
  CancelToken cancel;
  cancel.cancel();
  const Deadline deadline(1e9, &cancel);
  const std::vector<MapResult> results =
      DecoupledMapper(fast_options()).map_batch(dfgs, arch, deadline, 1);
  for (const MapResult& r : results) {
    EXPECT_FALSE(r.success);
    EXPECT_TRUE(r.timed_out);
    // Cut short by the token, not the wall clock: reported distinctly.
    EXPECT_TRUE(r.cancelled);
  }
}

TEST(DecoupledMapper, MapBatchPooledPathReportsCancelDistinctly) {
  std::vector<const Dfg*> dfgs;
  for (const char* name : {"gsm", "fft", "hotspot3D"}) {
    dfgs.push_back(&benchmark_by_name(name).dfg);
  }
  const CgraArch arch = CgraArch::square(4);
  CancelToken cancel;
  cancel.cancel();
  const Deadline deadline(1e9, &cancel);
  BatchStats stats;
  const std::vector<MapResult> results = DecoupledMapper(fast_options())
      .map_batch(dfgs, arch, deadline, 2, &stats);
  ASSERT_EQ(results.size(), dfgs.size());
  for (const MapResult& r : results) {
    EXPECT_FALSE(r.success);
    EXPECT_TRUE(r.timed_out);
    EXPECT_TRUE(r.cancelled);
  }
}

TEST(Mapping, ValidatorCatchesBadTiming) {
  const Dfg dfg = Dfg::from_edges("pair", 2, {{0, 1, 0}});
  const CgraArch arch = CgraArch::square(2);
  // Both at time 0 violates the dependency.
  const Mapping bad(2, {0, 0}, {0, 1});
  EXPECT_FALSE(validate_mapping(dfg, arch, bad).empty());
  const Mapping good(2, {0, 1}, {0, 1});
  EXPECT_TRUE(validate_mapping(dfg, arch, good).empty());
}

TEST(Mapping, ValidatorCatchesNonAdjacentPlacement) {
  const Dfg dfg = Dfg::from_edges("pair", 2, {{0, 1, 0}});
  const CgraArch arch = CgraArch::square(3);
  // PE0 (corner) and PE8 (opposite corner) are not adjacent.
  const Mapping bad(2, {0, 1}, {0, 8});
  EXPECT_FALSE(validate_mapping(dfg, arch, bad).empty());
}

TEST(Mapping, ValidatorCatchesSlotCollision) {
  const Dfg dfg = Dfg::from_edges("pair", 2, {});
  const CgraArch arch = CgraArch::square(2);
  // Same PE, same slot (times 1 and 3 with II=2 are both slot 1).
  const Mapping bad(2, {1, 3}, {0, 0});
  EXPECT_FALSE(validate_mapping(dfg, arch, bad).empty());
  const Mapping good(2, {1, 2}, {0, 0});
  EXPECT_TRUE(validate_mapping(dfg, arch, good).empty());
}

}  // namespace
}  // namespace monomap
