// Tests for ASAP/ALAP, MobS, KMS and mII — pinned against the paper's
// running example (Table I, Table II, Sec. IV-B mII computation).
#include <gtest/gtest.h>

#include "sched/asap_alap.hpp"
#include "sched/kms.hpp"
#include "sched/mii.hpp"
#include "sched/mobility.hpp"
#include "workloads/running_example.hpp"
#include "workloads/suite.hpp"

namespace monomap {
namespace {

// Expected windows reconstructed from the paper's Table I (they reproduce
// its ASAP/ALAP/MobS rows cell-for-cell).
struct Window {
  NodeId node;
  int asap;
  int alap;
};
constexpr Window kTable1[] = {
    {0, 0, 2}, {1, 0, 3}, {2, 0, 2},  {3, 0, 1},  {4, 0, 0},
    {5, 1, 1}, {6, 2, 2}, {7, 3, 4},  {8, 3, 3},  {9, 4, 4},
    {10, 5, 5}, {11, 1, 3}, {12, 2, 4}, {13, 3, 5},
};

TEST(AsapAlap, RunningExampleMatchesPaperTable1) {
  const Dfg dfg = running_example_dfg();
  EXPECT_EQ(critical_path_length(dfg), 6);  // the paper's MobS length
  const auto ranges = compute_asap_alap(dfg);
  for (const Window& w : kTable1) {
    EXPECT_EQ(ranges[static_cast<std::size_t>(w.node)].asap, w.asap)
        << "ASAP of node " << w.node;
    EXPECT_EQ(ranges[static_cast<std::size_t>(w.node)].alap, w.alap)
        << "ALAP of node " << w.node;
  }
}

TEST(AsapAlap, HorizonExtensionWidensWindows) {
  const Dfg dfg = running_example_dfg();
  const auto base = compute_asap_alap(dfg);
  const auto extended = compute_asap_alap(dfg, 8);
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    EXPECT_EQ(extended[static_cast<std::size_t>(v)].asap,
              base[static_cast<std::size_t>(v)].asap);
    EXPECT_EQ(extended[static_cast<std::size_t>(v)].alap,
              base[static_cast<std::size_t>(v)].alap + 2);
  }
}

TEST(AsapAlap, RejectsHorizonBelowCriticalPath) {
  const Dfg dfg = running_example_dfg();
  EXPECT_THROW(compute_asap_alap(dfg, 5), AssertionError);
}

TEST(Mobility, RowsMatchPaperTable1MobsColumn) {
  const Dfg dfg = running_example_dfg();
  const MobilitySchedule mobs(dfg);
  ASSERT_EQ(mobs.length(), 6);
  const std::vector<std::vector<NodeId>> expected = {
      {0, 1, 2, 3, 4},       {0, 1, 2, 3, 5, 11}, {0, 1, 2, 6, 11, 12},
      {1, 7, 8, 11, 12, 13}, {7, 9, 12, 13},      {10, 13},
  };
  for (int t = 0; t < 6; ++t) {
    EXPECT_EQ(mobs.nodes_at(t), expected[static_cast<std::size_t>(t)])
        << "MobS row " << t;
  }
  EXPECT_FALSE(mobs.to_table().empty());
}

TEST(Kms, RunningExampleFoldingAtIi4) {
  const Dfg dfg = running_example_dfg();
  const MobilitySchedule mobs(dfg);
  const Kms kms(mobs, 4);
  // ceil(6/4) = 2 interleaved iterations (paper Sec. IV-B).
  EXPECT_EQ(kms.interleaved_iterations(), 2);
  // Slot 0 holds T=0 entries (fold 0) and T=4 entries (fold 1).
  const auto& row0 = kms.row(0);
  std::vector<std::pair<NodeId, int>> got;
  for (const KmsEntry& e : row0) {
    got.emplace_back(e.node, e.fold);
    EXPECT_EQ(e.absolute_time % 4, 0);
    EXPECT_EQ(e.absolute_time / 4, e.fold);
  }
  const std::vector<std::pair<NodeId, int>> expected0 = {
      {0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0},  // T = 0
      {7, 1}, {9, 1}, {12, 1}, {13, 1},        // T = 4
  };
  // Order within a row is by node then fold of insertion; compare as sets.
  EXPECT_EQ(got.size(), expected0.size());
  for (const auto& e : expected0) {
    EXPECT_NE(std::find(got.begin(), got.end(), e), got.end())
        << "missing " << e.first << "_" << e.second;
  }
  EXPECT_FALSE(kms.to_table().empty());
}

TEST(Kms, CandidateTimesSpanTheWindow) {
  const Dfg dfg = running_example_dfg();
  const MobilitySchedule mobs(dfg);
  const Kms kms(mobs, 4);
  EXPECT_EQ(kms.candidate_times(4), std::vector<int>{0});
  EXPECT_EQ(kms.candidate_times(13), (std::vector<int>{3, 4, 5}));
}

TEST(Mii, RunningExampleOn2x2) {
  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  const MiiBreakdown mii = compute_mii(dfg, arch);
  EXPECT_EQ(mii.res_ii, 4);  // ceil(14/4)
  EXPECT_EQ(mii.rec_ii, 4);  // cycle 4->5->6->7, distance 1
  EXPECT_EQ(mii.mii(), 4);
}

TEST(Mii, ResIiScalesWithGrid) {
  const Dfg dfg = running_example_dfg();
  EXPECT_EQ(resource_mii(dfg, CgraArch::square(2)), 4);
  EXPECT_EQ(resource_mii(dfg, CgraArch::square(4)), 1);
  EXPECT_EQ(resource_mii(dfg, CgraArch(1, 2)), 7);
  EXPECT_EQ(resource_mii(dfg, CgraArch(1, 1)), 14);
}

TEST(Mii, AcyclicDfgHasRecurrenceOne) {
  const Dfg dfg = Dfg::from_edges("chain", 3, {{0, 1, 0}, {1, 2, 0}});
  EXPECT_EQ(recurrence_mii_of(dfg), 1);
}

TEST(Mii, SelfLoopDistanceTwoIsHalved) {
  // acc = f(acc from 2 iterations ago): cycle length 1, distance 2 -> II 1.
  const Dfg dfg = Dfg::from_edges("acc2", 1, {{0, 0, 2}});
  EXPECT_EQ(recurrence_mii_of(dfg), 1);
}

TEST(Mii, LongCycleShortDistance) {
  // 6-node cycle with total distance 2 -> RecII = ceil(6/2) = 3.
  const Dfg dfg = Dfg::from_edges(
      "c62", 6,
      {{0, 1, 0}, {1, 2, 0}, {2, 3, 1}, {3, 4, 0}, {4, 5, 0}, {5, 0, 1}});
  EXPECT_EQ(recurrence_mii_of(dfg), 3);
}

TEST(Mobility, SuiteWindowsAreConsistent) {
  for (const Benchmark& b : benchmark_suite()) {
    const MobilitySchedule mobs(b.dfg);
    for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
      const ScheduleRange& r = mobs.range(v);
      EXPECT_LE(r.asap, r.alap) << b.name << " node " << v;
      EXPECT_GE(r.asap, 0) << b.name;
      EXPECT_LT(r.alap, mobs.length()) << b.name;
    }
    // Every distance-0 edge respects ASAP ordering.
    const Graph& g = b.dfg.graph();
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (g.edge(e).attr != 0) continue;
      EXPECT_LT(mobs.range(g.edge(e).src).asap, mobs.range(g.edge(e).dst).asap + 1)
          << b.name;
    }
  }
}

}  // namespace
}  // namespace monomap
