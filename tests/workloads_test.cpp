// Pins the workload suite to the paper's Table III: node counts, recurrence
// bounds, and mII = max(ResII, RecII) for all 68 (benchmark, grid) cells.
#include <gtest/gtest.h>

#include <cstdlib>

#include "graph/algorithms.hpp"
#include "ir/interpreter.hpp"
#include "sched/mii.hpp"
#include "workloads/running_example.hpp"
#include "workloads/suite.hpp"
#include "workloads/synthetic.hpp"

namespace monomap {
namespace {

TEST(Suite, HasSeventeenBenchmarks) {
  EXPECT_EQ(benchmark_suite().size(), 17u);
}

class SuiteShape : public ::testing::TestWithParam<int> {};

TEST_P(SuiteShape, NodeCountMatchesPaper) {
  const Benchmark& b = benchmark_suite()[static_cast<std::size_t>(GetParam())];
  EXPECT_EQ(b.dfg.num_nodes(), b.paper_nodes) << b.name;
}

TEST_P(SuiteShape, RecurrenceMatchesPaper) {
  const Benchmark& b = benchmark_suite()[static_cast<std::size_t>(GetParam())];
  EXPECT_EQ(recurrence_mii_of(b.dfg), b.paper_rec_ii) << b.name;
}

TEST_P(SuiteShape, DfgIsConnected) {
  const Benchmark& b = benchmark_suite()[static_cast<std::size_t>(GetParam())];
  EXPECT_TRUE(b.dfg.is_connected()) << b.name;
}

TEST_P(SuiteShape, KernelValidatesAndInterprets) {
  const Benchmark& b = benchmark_suite()[static_cast<std::size_t>(GetParam())];
  ASSERT_NO_THROW(b.kernel.validate()) << b.name;
  const ExecutionTrace trace = interpret(b.kernel, 8);
  EXPECT_EQ(trace.values.size(), 8u);
  // Something observable must happen: at least one store per kernel.
  EXPECT_FALSE(trace.memory.written_cells().empty()) << b.name;
}

TEST_P(SuiteShape, MiiMatchesPaperOnAllGrids) {
  const Benchmark& b = benchmark_suite()[static_cast<std::size_t>(GetParam())];
  for (std::size_t g = 0; g < kPaperGridSizes.size(); ++g) {
    const CgraArch arch = CgraArch::square(kPaperGridSizes[g]);
    const MiiBreakdown mii = compute_mii(b.dfg, arch);
    // sha2 on 2x2: the paper prints 6, inconsistent with its own RecII; we
    // assert the self-consistent value (max(7, 7) = 7).
    int expected = b.paper_mii[g];
    if (b.name == "sha2" && g == 0) expected = 7;
    EXPECT_EQ(mii.mii(), expected)
        << b.name << " on " << kPaperGridSizes[g] << "x" << kPaperGridSizes[g];
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteShape, ::testing::Range(0, 17),
    [](const ::testing::TestParamInfo<int>& info) {
      return benchmark_suite()[static_cast<std::size_t>(info.param)].name;
    });

TEST(Suite, LookupByName) {
  EXPECT_EQ(benchmark_by_name("aes").paper_nodes, 23);
  EXPECT_EQ(benchmark_by_name("hotspot3D").paper_nodes, 57);
  EXPECT_THROW(benchmark_by_name("nope"), AssertionError);
}

TEST(Suite, DeterministicConstruction) {
  // Two lookups return the same object (cached suite).
  EXPECT_EQ(&benchmark_by_name("fft"), &benchmark_by_name("fft"));
}

TEST(RunningExample, MatchesPaperShape) {
  const Dfg dfg = running_example_dfg();
  EXPECT_EQ(dfg.num_nodes(), 14);
  EXPECT_EQ(dfg.num_edges(), 15);
  EXPECT_TRUE(dfg.is_connected());
  EXPECT_EQ(recurrence_mii_of(dfg), 4);
  const CgraArch arch = CgraArch::square(2);
  const MiiBreakdown mii = compute_mii(dfg, arch);
  EXPECT_EQ(mii.res_ii, 4);
  EXPECT_EQ(mii.rec_ii, 4);
  EXPECT_EQ(mii.mii(), 4);
}

TEST(Synthetic, RandomDfgIsConnectedAndBounded) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SyntheticSpec spec;
    spec.num_nodes = 25;
    spec.seed = seed;
    const Dfg dfg = random_dfg(spec);
    EXPECT_EQ(dfg.num_nodes(), 25);
    EXPECT_TRUE(dfg.is_connected()) << seed;
    EXPECT_LE(dfg.max_undirected_degree(), spec.max_degree + 2) << seed;
  }
}

TEST(Synthetic, LayeredDfgShape) {
  const Dfg dfg = layered_dfg(5, 4, 7);
  EXPECT_EQ(dfg.num_nodes(), 20);
  EXPECT_GE(recurrence_mii_of(dfg), 1);
}

TEST(Synthetic, PlaceableGridShapeAndIdentityWitness) {
  // The generator's contract: diagonal-wave labels, and every edge joins
  // grid-adjacent cells, so placing node (r, c) on PE (r, c) is a
  // monomorphism witness for ANY ii — that identity check here is what
  // entitles the space tests to assert found == true.
  for (const int ii : {2, 4, 6}) {
    PlaceableGridSpec spec;
    spec.rows = 7;
    spec.cols = 9;
    spec.ii = ii;
    spec.edge_keep = 0.6;
    spec.seed = 11;
    std::vector<int> labels;
    const Dfg dfg = placeable_grid_dfg(spec, &labels);
    ASSERT_EQ(dfg.num_nodes(), 63);
    ASSERT_EQ(labels.size(), 63u);
    EXPECT_TRUE(dfg.is_connected()) << "ii " << ii;
    for (int r = 0; r < spec.rows; ++r) {
      for (int c = 0; c < spec.cols; ++c) {
        EXPECT_EQ(labels[static_cast<std::size_t>(r * spec.cols + c)],
                  (r + c) % ii);
      }
    }
    const Graph& g = dfg.graph();
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& edge = g.edge(e);
      const int dr = edge.src / spec.cols - edge.dst / spec.cols;
      const int dc = edge.src % spec.cols - edge.dst % spec.cols;
      EXPECT_EQ(std::abs(dr) + std::abs(dc), 1)
          << "edge " << edge.src << "->" << edge.dst << " not grid-adjacent";
    }
  }
}

TEST(Synthetic, PlaceableSpecScalesWithFabricAndBallCapacity) {
  // spec_for sizes the patch to ~3/5 the linear extent and never returns
  // an II whose densest same-label 2-hop cluster overflows the interior
  // distance-2 ball (on a plain mesh the requested II already fits).
  for (const int grid : {16, 32, 64}) {
    const CgraArch arch = CgraArch::square(grid);
    const PlaceableGridSpec spec =
        placeable_spec_for(arch, 2, static_cast<std::uint64_t>(grid));
    EXPECT_EQ(spec.rows, grid * 3 / 5);
    EXPECT_EQ(spec.cols, grid * 3 / 5);
    EXPECT_EQ(spec.ii, 2) << grid;
    EXPECT_LE(spec.rows, arch.rows());
  }
  // Higher requested IIs pass through unchanged on the mesh.
  EXPECT_EQ(placeable_spec_for(CgraArch::square(16), 5, 1).ii, 5);
}

}  // namespace
}  // namespace monomap
