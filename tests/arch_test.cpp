// Tests for the CGRA architecture model and the MRRG (paper Fig. 1/Fig. 3).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "arch/cgra.hpp"
#include "arch/mrrg.hpp"

namespace monomap {
namespace {

TEST(Cgra, TwoByTwoDegreeIsThree) {
  // Paper Sec. IV-B3: D_M = 3 in a 2x2 architecture.
  const CgraArch arch = CgraArch::square(2);
  EXPECT_EQ(arch.num_pes(), 4);
  EXPECT_EQ(arch.connectivity_degree(), 3);
  for (PeId pe = 0; pe < 4; ++pe) {
    EXPECT_EQ(arch.neighbors(pe).size(), 2u);
    EXPECT_EQ(arch.closed_neighbors(pe).size(), 3u);
  }
}

TEST(Cgra, ThreeByThreeAndLargerDegreeIsFive) {
  // Paper Sec. IV-B3: D_M = 5 in 3x3 and larger architectures.
  for (const int n : {3, 5, 10, 20}) {
    const CgraArch arch = CgraArch::square(n);
    EXPECT_EQ(arch.connectivity_degree(), 5) << n;
  }
}

TEST(Cgra, MeshAdjacency) {
  const CgraArch arch = CgraArch::square(3);
  const PeId center = arch.pe_at(1, 1);
  EXPECT_EQ(arch.neighbors(center).size(), 4u);
  EXPECT_TRUE(arch.adjacent(center, arch.pe_at(0, 1)));
  EXPECT_TRUE(arch.adjacent(center, arch.pe_at(2, 1)));
  EXPECT_TRUE(arch.adjacent(center, arch.pe_at(1, 0)));
  EXPECT_TRUE(arch.adjacent(center, arch.pe_at(1, 2)));
  EXPECT_FALSE(arch.adjacent(center, arch.pe_at(0, 0)));
  EXPECT_FALSE(arch.adjacent(center, center));
  EXPECT_TRUE(arch.adjacent_or_same(center, center));
}

TEST(Cgra, CornerAndEdgeDegrees) {
  const CgraArch arch = CgraArch::square(3);
  EXPECT_EQ(arch.neighbors(arch.pe_at(0, 0)).size(), 2u);  // corner
  EXPECT_EQ(arch.neighbors(arch.pe_at(0, 1)).size(), 3u);  // edge
}

TEST(Cgra, TorusWrapsAround) {
  const CgraArch arch(3, 3, Topology::kTorus);
  EXPECT_TRUE(arch.adjacent(arch.pe_at(0, 0), arch.pe_at(0, 2)));
  EXPECT_TRUE(arch.adjacent(arch.pe_at(0, 0), arch.pe_at(2, 0)));
  // Every PE of a 3x3 torus has 4 neighbours.
  for (PeId pe = 0; pe < 9; ++pe) {
    EXPECT_EQ(arch.neighbors(pe).size(), 4u);
  }
}

TEST(Cgra, DiagonalHasEightNeighbors) {
  const CgraArch arch(3, 3, Topology::kDiagonal);
  EXPECT_EQ(arch.neighbors(arch.pe_at(1, 1)).size(), 8u);
  EXPECT_EQ(arch.connectivity_degree(), 9);
}

TEST(Cgra, RectangularGrids) {
  const CgraArch arch(2, 4);
  EXPECT_EQ(arch.num_pes(), 8);
  EXPECT_EQ(arch.row_of(5), 1);
  EXPECT_EQ(arch.col_of(5), 1);
  EXPECT_EQ(arch.pe_at(1, 1), 5);
}

TEST(Cgra, OneByOneHasNoNeighbors) {
  const CgraArch arch(1, 1);
  EXPECT_TRUE(arch.neighbors(0).empty());
  EXPECT_EQ(arch.connectivity_degree(), 1);
}

TEST(Cgra, NeighborMasksMatchAdjacencyLists) {
  // The bitset masks are the space-search view of the same adjacency; they
  // must agree with the list representation on every topology, including a
  // >64-PE grid where masks span multiple words.
  for (const Topology t :
       {Topology::kMesh, Topology::kTorus, Topology::kDiagonal}) {
    for (const int side : {2, 3, 9}) {  // 9x9 = 81 PEs > one word
      const CgraArch arch(side, side, t);
      for (PeId pe = 0; pe < arch.num_pes(); ++pe) {
        const PeSet& open = arch.neighbor_mask(pe);
        const PeSet& closed = arch.closed_neighbor_mask(pe);
        EXPECT_EQ(open.capacity(), arch.num_pes());
        EXPECT_EQ(static_cast<std::size_t>(open.count()),
                  arch.neighbors(pe).size());
        EXPECT_EQ(static_cast<std::size_t>(closed.count()),
                  arch.closed_neighbors(pe).size());
        for (const PeId q : arch.neighbors(pe)) {
          EXPECT_TRUE(open.test(q)) << topology_name(t) << " " << pe;
        }
        EXPECT_FALSE(open.test(pe));
        EXPECT_TRUE(closed.test(pe));
        for (PeId q = 0; q < arch.num_pes(); ++q) {
          EXPECT_EQ(arch.adjacent(pe, q), open.test(q));
          EXPECT_EQ(arch.adjacent_or_same(pe, q), closed.test(q));
        }
      }
    }
  }
}

TEST(Cgra, Distance2MaskMeshHandComputed) {
  // 4x4 mesh, corner PE 0: N[0] = {0,1,4}; the <=2-hop ball is the union
  // of closed neighbourhoods over N[0] = {0,1,2,4,5,8}.
  const CgraArch arch = CgraArch::square(4);
  const PeSet& corner = arch.distance2_mask(0);
  const std::vector<PeId> expected_corner = {0, 1, 2, 4, 5, 8};
  EXPECT_EQ(corner.count(), static_cast<int>(expected_corner.size()));
  for (const PeId p : expected_corner) {
    EXPECT_TRUE(corner.test(p)) << p;
  }
  // 5x5 mesh, center PE 12: the radius-2 von Neumann diamond, 13 PEs.
  const CgraArch five = CgraArch::square(5);
  const PeId center = five.pe_at(2, 2);
  const PeSet& ball = five.distance2_mask(center);
  EXPECT_EQ(ball.count(), 13);
  for (PeId p = 0; p < five.num_pes(); ++p) {
    const int dist = std::abs(five.row_of(p) - 2) + std::abs(five.col_of(p) - 2);
    EXPECT_EQ(ball.test(p), dist <= 2) << p;
  }
}

TEST(Cgra, Distance2MaskTorusHandComputed) {
  // 4x4 torus, PE 0: N[0] = {0,1,3,4,12}; union of closed neighbourhoods
  // = {0,1,2,3,4,5,7,8,12,13,15} (11 PEs: the wrap links pull in both
  // ends of row 0 / column 0 and their neighbours).
  const CgraArch arch(4, 4, Topology::kTorus);
  const PeSet& ball = arch.distance2_mask(0);
  const std::vector<PeId> expected = {0, 1, 2, 3, 4, 5, 7, 8, 12, 13, 15};
  EXPECT_EQ(ball.count(), static_cast<int>(expected.size()));
  for (const PeId p : expected) {
    EXPECT_TRUE(ball.test(p)) << p;
  }
  EXPECT_FALSE(ball.test(arch.pe_at(1, 2)));   // PE 6: distance 3
  EXPECT_FALSE(ball.test(arch.pe_at(2, 2)));   // PE 10: distance 4
  // On a 3x3 torus every PE is within two hops of every other.
  const CgraArch tiny(3, 3, Topology::kTorus);
  for (PeId p = 0; p < tiny.num_pes(); ++p) {
    EXPECT_EQ(tiny.distance2_mask(p).count(), tiny.num_pes()) << p;
  }
}

TEST(Cgra, Distance2MaskContainsClosedNeighborhood) {
  for (const Topology t :
       {Topology::kMesh, Topology::kTorus, Topology::kDiagonal}) {
    const CgraArch arch(3, 4, t);
    for (PeId p = 0; p < arch.num_pes(); ++p) {
      EXPECT_TRUE(arch.closed_neighbor_mask(p).is_subset_of(
          arch.distance2_mask(p)))
          << topology_name(t) << " " << p;
      EXPECT_TRUE(arch.distance2_mask(p).test(p));
    }
  }
}

TEST(Cgra, CommonTargetMaskMeshHandComputed) {
  // 4x4 mesh, interior PE (1,1) = 5: N[5] = {1,4,5,6,9}.
  //  * k=1 reproduces the distance-2 ball exactly.
  //  * k=2 keeps 5 itself, the 4 direct neighbours (share {q, 5}) and the
  //    4 diagonal distance-2 PEs (share two "corner" PEs), but drops the
  //    straight-line distance-2 targets (midpoint only: |N[5] ∩ N[7]| =
  //    |{6}| = 1).
  //  * k=3 pins q == 5 (only N[5] shares three members with itself).
  const CgraArch arch = CgraArch::square(4);
  const PeId p = arch.pe_at(1, 1);
  EXPECT_EQ(arch.common_target_mask(p, 1), arch.distance2_mask(p));
  const PeSet k2 = arch.common_target_mask(p, 2);
  const std::vector<PeId> expected_k2 = {
      p,
      arch.pe_at(0, 1), arch.pe_at(1, 0), arch.pe_at(1, 2), arch.pe_at(2, 1),
      arch.pe_at(0, 0), arch.pe_at(0, 2), arch.pe_at(2, 0), arch.pe_at(2, 2)};
  EXPECT_EQ(k2.count(), static_cast<int>(expected_k2.size()));
  for (const PeId q : expected_k2) {
    EXPECT_TRUE(k2.test(q)) << q;
  }
  EXPECT_FALSE(k2.test(arch.pe_at(1, 3)));  // straight-line distance 2
  EXPECT_FALSE(k2.test(arch.pe_at(3, 1)));
  const PeSet k3 = arch.common_target_mask(p, 3);
  EXPECT_EQ(k3.count(), 1);
  EXPECT_TRUE(k3.test(p));
}

TEST(Cgra, CommonTargetMaskMatchesBruteForce) {
  // Defining property on every pair, all topologies: q is in the mask iff
  // the closed neighbourhoods share at least min_common members.
  for (const Topology t :
       {Topology::kMesh, Topology::kTorus, Topology::kDiagonal}) {
    const CgraArch arch(4, 5, t);
    for (PeId p = 0; p < arch.num_pes(); ++p) {
      for (int k = 1; k <= 4; ++k) {
        const PeSet mask = arch.common_target_mask(p, k);
        EXPECT_TRUE(mask.is_subset_of(arch.distance2_mask(p)));
        for (PeId q = 0; q < arch.num_pes(); ++q) {
          const int common = arch.closed_neighbor_mask(p).intersect_count(
              arch.closed_neighbor_mask(q));
          EXPECT_EQ(mask.test(q), common >= k)
              << topology_name(t) << " p=" << p << " q=" << q << " k=" << k;
        }
      }
    }
  }
}

TEST(Cgra, MinClosedDegreeMaskThresholds) {
  // 3x3 mesh closed-neighbourhood sizes: corners 3, edges 4, center 5.
  const CgraArch arch = CgraArch::square(3);
  EXPECT_EQ(arch.min_closed_degree_mask(0).count(), 9);  // need 0: all PEs
  EXPECT_EQ(arch.min_closed_degree_mask(3).count(), 9);
  EXPECT_EQ(arch.min_closed_degree_mask(4).count(), 5);  // edges + center
  EXPECT_EQ(arch.min_closed_degree_mask(5).count(), 1);
  EXPECT_TRUE(arch.min_closed_degree_mask(5).test(arch.pe_at(1, 1)));
  // Beyond the connectivity degree the mask is empty (clamped index).
  EXPECT_EQ(arch.min_closed_degree_mask(6).count(), 0);
  EXPECT_EQ(arch.min_closed_degree_mask(100).count(), 0);
  for (PeId p = 0; p < arch.num_pes(); ++p) {
    const int size = static_cast<int>(arch.closed_neighbors(p).size());
    for (int need = 0; need <= 6; ++need) {
      EXPECT_EQ(arch.min_closed_degree_mask(need).test(p), size >= need)
          << "p=" << p << " need=" << need;
    }
  }
}

TEST(Cgra, InvalidSizeThrows) {
  EXPECT_THROW(CgraArch(0, 3), AssertionError);
}

TEST(Mrrg, Fig3Shape) {
  // Fig. 3: MRRG of a 2x2 CGRA at II=4 — 16 vertices, label = time step.
  const CgraArch arch = CgraArch::square(2);
  const Mrrg mrrg(arch, 4);
  EXPECT_EQ(mrrg.num_vertices(), 16);
  for (MrrgVertexId v = 0; v < mrrg.num_vertices(); ++v) {
    EXPECT_EQ(mrrg.label(v), mrrg.slot_of(v));
    EXPECT_EQ(mrrg.vertex(mrrg.pe_of(v), mrrg.slot_of(v)), v);
  }
}

TEST(Mrrg, RegisterPersistenceAdjacency) {
  const CgraArch arch = CgraArch::square(2);
  const Mrrg mrrg(arch, 4);
  const MrrgVertexId a = mrrg.vertex(0, 0);
  // Same PE, different slot: adjacent (value persists in own RF).
  EXPECT_TRUE(mrrg.adjacent(a, mrrg.vertex(0, 2)));
  // Neighbour PE, any slot: adjacent.
  EXPECT_TRUE(mrrg.adjacent(a, mrrg.vertex(1, 0)));
  EXPECT_TRUE(mrrg.adjacent(a, mrrg.vertex(1, 3)));
  // PE3 is diagonal from PE0 in a 2x2 mesh: never adjacent.
  EXPECT_FALSE(mrrg.adjacent(a, mrrg.vertex(3, 0)));
  EXPECT_FALSE(mrrg.adjacent(a, mrrg.vertex(3, 2)));
  // No self adjacency.
  EXPECT_FALSE(mrrg.adjacent(a, a));
}

TEST(Mrrg, ConsecutiveOnlyRestrictsTimeDistance) {
  const CgraArch arch = CgraArch::square(2);
  const Mrrg mrrg(arch, 4, MrrgModel::kConsecutiveOnly);
  const MrrgVertexId a = mrrg.vertex(0, 0);
  EXPECT_TRUE(mrrg.adjacent(a, mrrg.vertex(1, 0)));   // same slot
  EXPECT_TRUE(mrrg.adjacent(a, mrrg.vertex(0, 1)));   // next slot
  EXPECT_TRUE(mrrg.adjacent(a, mrrg.vertex(0, 3)));   // cyclic previous
  EXPECT_FALSE(mrrg.adjacent(a, mrrg.vertex(0, 2)));  // two steps away
}

TEST(Mrrg, NeighborEnumerationMatchesAdjacency) {
  const CgraArch arch = CgraArch::square(3);
  for (const MrrgModel model :
       {MrrgModel::kRegisterPersistence, MrrgModel::kConsecutiveOnly}) {
    const Mrrg mrrg(arch, 3, model);
    for (MrrgVertexId v = 0; v < mrrg.num_vertices(); ++v) {
      const auto neigh = mrrg.neighbors(v);
      int count = 0;
      for (MrrgVertexId w = 0; w < mrrg.num_vertices(); ++w) {
        if (mrrg.adjacent(v, w)) {
          ++count;
          EXPECT_NE(std::find(neigh.begin(), neigh.end(), w), neigh.end());
        }
      }
      EXPECT_EQ(count, static_cast<int>(neigh.size()));
    }
  }
}

TEST(Mrrg, EdgeCountGrowsWithIi) {
  const CgraArch arch = CgraArch::square(2);
  const Mrrg m1(arch, 1);
  const Mrrg m2(arch, 2);
  const Mrrg m4(arch, 4);
  EXPECT_LT(m1.count_edges(), m2.count_edges());
  EXPECT_LT(m2.count_edges(), m4.count_edges());
  // II=1, 2x2 persistence model: only the 4 mesh edges.
  EXPECT_EQ(m1.count_edges(), 4);
}

TEST(Mrrg, InvalidConstructionThrows) {
  const CgraArch arch = CgraArch::square(2);
  EXPECT_THROW(Mrrg(arch, 0), AssertionError);
  const Mrrg mrrg(arch, 2);
  EXPECT_THROW(mrrg.vertex(0, 2), AssertionError);
  EXPECT_THROW(mrrg.vertex(9, 0), AssertionError);
}

TEST(Cgra, DescriptionMentionsShape) {
  const CgraArch arch = CgraArch::square(5);
  const std::string desc = arch.description();
  EXPECT_NE(desc.find("5x5"), std::string::npos);
  EXPECT_NE(desc.find("25"), std::string::npos);
}

}  // namespace
}  // namespace monomap
