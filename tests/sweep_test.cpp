// Cross-cutting sweep: for every benchmark and several grids, the first
// schedule the time solver yields must satisfy all three constraint
// families of Sec. IV-B, and the resulting end-to-end mapping must respect
// the monomorphism properties — checked here independently of the
// mapper-internal validation.
#include <gtest/gtest.h>

#include "mapper/decoupled_mapper.hpp"
#include "timing/time_solver.hpp"
#include "workloads/suite.hpp"

namespace monomap {
namespace {

struct Case {
  int bench;
  int grid;
};

class ConstraintSweep : public ::testing::TestWithParam<Case> {};

TEST_P(ConstraintSweep, FirstScheduleSatisfiesAllConstraintFamilies) {
  const Benchmark& b =
      benchmark_suite()[static_cast<std::size_t>(GetParam().bench)];
  const CgraArch arch = CgraArch::square(GetParam().grid);
  TimeSolver solver(b.dfg, arch);
  const auto sol = solver.next(Deadline(30.0));
  if (!sol.has_value()) {
    GTEST_SKIP() << "no schedule within budget";
  }
  const Graph& g = b.dfg.graph();
  const int ii = sol->ii;
  ASSERT_GE(ii, solver.mii().mii());

  // 1. Modulo-scheduling constraints.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.src == edge.dst) continue;
    EXPECT_GE(sol->time[static_cast<std::size_t>(edge.dst)] + edge.attr * ii,
              sol->time[static_cast<std::size_t>(edge.src)] + 1)
        << b.name << " edge " << edge.src << "->" << edge.dst;
  }
  // 2. Capacity constraints.
  std::vector<int> load(static_cast<std::size_t>(ii), 0);
  for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
    ++load[static_cast<std::size_t>(sol->label(v))];
  }
  for (const int c : load) {
    EXPECT_LE(c, arch.num_pes()) << b.name;
  }
  // 3. Connectivity constraints (strict form, the default).
  for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
    std::vector<int> per_slot(static_cast<std::size_t>(ii), 0);
    for (const NodeId u : g.undirected_neighbors(v)) {
      ++per_slot[static_cast<std::size_t>(sol->label(u))];
    }
    ++per_slot[static_cast<std::size_t>(sol->label(v))];  // self term
    for (const int c : per_slot) {
      EXPECT_LE(c, arch.connectivity_degree()) << b.name << " node " << v;
    }
  }
}

TEST_P(ConstraintSweep, EndToEndMappingRespectsMonoProperties) {
  const Benchmark& b =
      benchmark_suite()[static_cast<std::size_t>(GetParam().bench)];
  const CgraArch arch = CgraArch::square(GetParam().grid);
  DecoupledMapperOptions opt;
  opt.timeout_s = 30.0;
  const MapResult r = DecoupledMapper(opt).map(b.dfg, arch);
  if (!r.success) {
    GTEST_SKIP() << r.failure_reason;
  }
  // mono1: injectivity.
  std::set<std::pair<PeId, int>> seen;
  for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
    EXPECT_TRUE(seen.emplace(r.mapping.pe(v), r.mapping.slot(v)).second);
  }
  // mono2: labels equal T mod II by construction; check range.
  for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
    EXPECT_GE(r.mapping.slot(v), 0);
    EXPECT_LT(r.mapping.slot(v), r.ii);
  }
  // mono3: adjacency.
  const Graph& g = b.dfg.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.src == edge.dst) continue;
    EXPECT_TRUE(arch.adjacent_or_same(r.mapping.pe(edge.src),
                                      r.mapping.pe(edge.dst)))
        << b.name;
  }
}

std::vector<Case> sweep_cases() {
  std::vector<Case> cases;
  for (int bench = 0; bench < 17; ++bench) {
    for (const int grid : {3, 6}) {
      cases.push_back(Case{bench, grid});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    SuiteByGrid, ConstraintSweep, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      return benchmark_suite()[static_cast<std::size_t>(info.param.bench)]
                 .name +
             "_" + std::to_string(info.param.grid) + "x" +
             std::to_string(info.param.grid);
    });

}  // namespace
}  // namespace monomap
