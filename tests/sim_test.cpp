// Integration tests: mapped kernels must compute exactly what the
// sequential interpreter computes, for every benchmark in the suite.
// Also covers modulo expansion, configuration generation and register
// pressure, which the simulator builds upon.
#include <gtest/gtest.h>

#include "mapper/config_gen.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "mapper/modulo_expansion.hpp"
#include "mapper/reg_pressure.hpp"
#include "sim/simulator.hpp"
#include "workloads/suite.hpp"

namespace monomap {
namespace {

MapResult map_on(const Dfg& dfg, const CgraArch& arch) {
  DecoupledMapperOptions opt;
  opt.timeout_s = 60.0;
  return DecoupledMapper(opt).map(dfg, arch);
}

class EndToEnd : public ::testing::TestWithParam<int> {};

TEST_P(EndToEnd, MappedExecutionMatchesInterpreterOn4x4) {
  const Benchmark& b = benchmark_suite()[static_cast<std::size_t>(GetParam())];
  const CgraArch arch = CgraArch::square(4);
  const MapResult r = map_on(b.dfg, arch);
  ASSERT_TRUE(r.success) << b.name << ": " << r.failure_reason;
  SimOptions sopt;
  sopt.iterations = std::max(8, r.mapping.num_stages() + 2);
  const auto problems =
      verify_mapping_by_simulation(b.kernel, b.dfg, arch, r.mapping, sopt);
  EXPECT_TRUE(problems.empty())
      << b.name << ": " << (problems.empty() ? "" : problems.front());
}

TEST_P(EndToEnd, RegisterPressureIsModest) {
  const Benchmark& b = benchmark_suite()[static_cast<std::size_t>(GetParam())];
  const CgraArch arch = CgraArch::square(4);
  const MapResult r = map_on(b.dfg, arch);
  ASSERT_TRUE(r.success) << b.name;
  const RegPressureReport report =
      analyze_register_pressure(b.dfg, arch, r.mapping);
  EXPECT_GE(report.max_per_pe, 1) << b.name;
  // The paper assumes RFs hold all live values; our kernels stay well under
  // a 32-entry RF (Fig. 1 shows a multi-entry register file per PE).
  EXPECT_LE(report.max_per_pe, 32) << b.name << " " << report.to_string();
  EXPECT_GE(report.total, b.dfg.num_nodes());
}

TEST_P(EndToEnd, ModuloExpansionIsPeriodic) {
  const Benchmark& b = benchmark_suite()[static_cast<std::size_t>(GetParam())];
  const CgraArch arch = CgraArch::square(5);
  const MapResult r = map_on(b.dfg, arch);
  ASSERT_TRUE(r.success) << b.name;
  const int iters = r.mapping.num_stages() + 3;
  const ModuloExpansion exp(r.mapping, iters);
  EXPECT_TRUE(exp.steady_state_is_periodic()) << b.name;
  // Every node appears exactly `iters` times in the expanded schedule.
  std::vector<int> count(static_cast<std::size_t>(b.dfg.num_nodes()), 0);
  for (int t = 0; t < exp.total_cycles(); ++t) {
    for (const ScheduledOp& op : exp.row(t)) {
      ++count[static_cast<std::size_t>(op.node)];
    }
  }
  for (const int c : count) {
    EXPECT_EQ(c, iters);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, EndToEnd, ::testing::Range(0, 17),
    [](const ::testing::TestParamInfo<int>& info) {
      return benchmark_suite()[static_cast<std::size_t>(info.param)].name;
    });

TEST(Simulator, DetectsBadTimingDynamically) {
  // Hand-build an invalid mapping (dependency not satisfied) and check the
  // simulator flags it even without the static validator.
  const Benchmark& b = benchmark_by_name("bitcount");
  const CgraArch arch = CgraArch::square(2);
  const MapResult r = map_on(b.dfg, arch);
  ASSERT_TRUE(r.success);
  // Corrupt: move every node to time 0 (keeps labels = 0, breaks ordering).
  std::vector<int> times(static_cast<std::size_t>(b.dfg.num_nodes()), 0);
  std::vector<PeId> pes;
  for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
    pes.push_back(r.mapping.pe(v));
  }
  const Mapping bad(r.ii, times, pes);
  SimOptions sopt;
  sopt.iterations = 6;
  const SimResult sim = simulate(b.kernel, b.dfg, arch, bad, sopt);
  EXPECT_FALSE(sim.ok);
  EXPECT_FALSE(sim.errors.empty());
}

TEST(Simulator, HazardFreeOnSuite) {
  const Benchmark& b = benchmark_by_name("cfd");
  const CgraArch arch = CgraArch::square(5);
  const MapResult r = map_on(b.dfg, arch);
  ASSERT_TRUE(r.success);
  SimOptions sopt;
  sopt.iterations = std::max(8, r.mapping.num_stages() + 2);
  const SimResult sim = simulate(b.kernel, b.dfg, arch, r.mapping, sopt);
  EXPECT_TRUE(sim.ok);
  EXPECT_TRUE(sim.hazards.empty());
}

TEST(Simulator, RfSizeCheckTriggersWhenTiny) {
  const Benchmark& b = benchmark_by_name("aes");
  const CgraArch arch = CgraArch::square(4);
  const MapResult r = map_on(b.dfg, arch);
  ASSERT_TRUE(r.success);
  SimOptions sopt;
  sopt.iterations = std::max(8, r.mapping.num_stages() + 2);
  sopt.rf_size = 1;  // unrealistically small: must be reported
  const RegPressureReport rep = analyze_register_pressure(b.dfg, arch, r.mapping);
  const SimResult sim = simulate(b.kernel, b.dfg, arch, r.mapping, sopt);
  if (rep.max_per_pe > 1) {
    EXPECT_FALSE(sim.errors.empty());
  }
}

TEST(ConfigGen, EveryMappedNodeGetsASlot) {
  const Benchmark& b = benchmark_by_name("fft");
  const CgraArch arch = CgraArch::square(4);
  const MapResult r = map_on(b.dfg, arch);
  ASSERT_TRUE(r.success);
  const ConfigImage image(b.kernel, b.dfg, arch, r.mapping);
  int active = 0;
  for (PeId pe = 0; pe < arch.num_pes(); ++pe) {
    for (int slot = 0; slot < image.ii(); ++slot) {
      const PeSlotConfig& cfg = image.at(pe, slot);
      if (!cfg.active) continue;
      ++active;
      EXPECT_EQ(r.mapping.pe(cfg.node), pe);
      EXPECT_EQ(r.mapping.slot(cfg.node), slot);
      // Routing directions must be resolvable (mesh: no kOther).
      for (const OperandRoute& route : cfg.routes) {
        EXPECT_NE(route.dir, RouteDir::kOther);
      }
    }
  }
  EXPECT_EQ(active, b.dfg.num_nodes());
  EXPECT_GT(image.utilization(), 0.0);
  EXPECT_LE(image.utilization(), 1.0);
  EXPECT_FALSE(image.to_string().empty());
}

TEST(ConfigGen, RejectsInvalidMapping) {
  const Benchmark& b = benchmark_by_name("bitcount");
  const CgraArch arch = CgraArch::square(2);
  const Mapping bad(1, std::vector<int>(7, 0), std::vector<PeId>(7, 0));
  EXPECT_THROW(ConfigImage(b.kernel, b.dfg, arch, bad), AssertionError);
}

TEST(ModuloExpansion, RunningBitcountStageStructure) {
  const Benchmark& b = benchmark_by_name("bitcount");
  const CgraArch arch = CgraArch::square(2);
  const MapResult r = map_on(b.dfg, arch);
  ASSERT_TRUE(r.success);
  const ModuloExpansion exp(r.mapping, 8);
  EXPECT_EQ(exp.prologue_cycles(), (exp.stages() - 1) * exp.ii());
  EXPECT_FALSE(exp.to_string(b.dfg).empty());
  EXPECT_THROW(ModuloExpansion(r.mapping, exp.stages() - 1), AssertionError);
}

}  // namespace
}  // namespace monomap
