// Tests for the text serialisation of DFGs and mappings.
#include <gtest/gtest.h>

#include "io/dfg_io.hpp"
#include "workloads/running_example.hpp"

namespace monomap {
namespace {

TEST(DfgIo, RoundTripRunningExample) {
  const Dfg original = running_example_dfg();
  const std::string text = dfg_to_text(original);
  const Dfg parsed = dfg_from_text(text);
  EXPECT_EQ(parsed.name(), original.name());
  EXPECT_EQ(parsed.num_nodes(), original.num_nodes());
  ASSERT_EQ(parsed.num_edges(), original.num_edges());
  for (EdgeId e = 0; e < original.num_edges(); ++e) {
    EXPECT_EQ(parsed.graph().edge(e).src, original.graph().edge(e).src);
    EXPECT_EQ(parsed.graph().edge(e).dst, original.graph().edge(e).dst);
    EXPECT_EQ(parsed.graph().edge(e).attr, original.graph().edge(e).attr);
  }
}

TEST(DfgIo, ParsesCommentsAndWhitespace) {
  const std::string text =
      "# a comment\n"
      "dfg tiny\n"
      "nodes 2\n"
      "  edge 0 1 0   # data dep\n"
      "edge 1 0 1\n"
      "end\n";
  const Dfg dfg = dfg_from_text(text);
  EXPECT_EQ(dfg.num_nodes(), 2);
  EXPECT_EQ(dfg.num_edges(), 2);
  EXPECT_EQ(dfg.graph().edge(1).attr, 1);
}

TEST(DfgIo, RejectsMalformedInput) {
  EXPECT_THROW(dfg_from_text(""), AssertionError);
  EXPECT_THROW(dfg_from_text("dfg x\nedge 0 1 0\nend\n"), AssertionError);
  EXPECT_THROW(dfg_from_text("dfg x\nnodes 1\nedge 0 5 0\nend\n"),
               AssertionError);
  EXPECT_THROW(dfg_from_text("dfg x\nnodes 1\n"), AssertionError);
  EXPECT_THROW(dfg_from_text("dfg x\nnodes 1\nbogus\nend\n"),
               AssertionError);
  EXPECT_THROW(dfg_from_text("dfg x\nnodes 1\nedge 0 0 -1\nend\n"),
               AssertionError);
}

TEST(MappingIo, RoundTrip) {
  const Dfg dfg = Dfg::from_edges("pair", 2, {{0, 1, 0}});
  const Mapping mapping(2, {0, 1}, {0, 1});
  const std::string text = mapping_to_text(dfg, mapping);
  const Mapping parsed = mapping_from_text(text, 2);
  EXPECT_EQ(parsed.ii(), 2);
  for (NodeId v = 0; v < 2; ++v) {
    EXPECT_EQ(parsed.pe(v), mapping.pe(v));
    EXPECT_EQ(parsed.time(v), mapping.time(v));
  }
}

TEST(MappingIo, RejectsIncompleteMapping) {
  EXPECT_THROW(mapping_from_text("mapping x\nii 2\nplace 0 0 0\nend\n", 2),
               AssertionError);
  EXPECT_THROW(mapping_from_text("mapping x\nplace 0 0 0\nend\n", 1),
               AssertionError);
}

}  // namespace
}  // namespace monomap
