// Tests for the CNF encoding layer: one-hot, at-most-k (sequential counter),
// implications — exhaustively cross-checked by model enumeration.
#include <gtest/gtest.h>

#include "encode/cnf_builder.hpp"

namespace monomap {
namespace {

std::vector<Lit> make_vars(SatSolver& s, int n) {
  std::vector<Lit> lits;
  for (int i = 0; i < n; ++i) {
    lits.push_back(Lit::pos(s.new_var()));
  }
  return lits;
}

/// Enumerate all models over the first `n` variables; returns the multiset
/// of popcounts seen.
std::vector<int> model_popcounts(SatSolver& s, const std::vector<Lit>& vars) {
  std::vector<int> counts;
  while (s.solve() == SatStatus::kSat) {
    int pop = 0;
    std::vector<Lit> block;
    for (const Lit l : vars) {
      const bool val = s.model_value(l);
      pop += val ? 1 : 0;
      block.push_back(val ? ~l : l);
    }
    counts.push_back(pop);
    if (!s.add_clause(block)) break;
    if (counts.size() > 5000u) break;  // safety
  }
  return counts;
}

class AtMostK : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AtMostK, ExactlyTheRightModelCount) {
  const auto [n, k] = GetParam();
  SatSolver s;
  CnfBuilder cnf(s);
  const auto vars = make_vars(s, n);
  ASSERT_TRUE(cnf.at_most_k(vars, k));
  const auto counts = model_popcounts(s, vars);
  // Expected number of assignments with popcount <= k: sum of C(n, j).
  std::uint64_t expected = 0;
  for (int j = 0; j <= k && j <= n; ++j) {
    std::uint64_t c = 1;
    for (int t = 0; t < j; ++t) {
      c = c * static_cast<std::uint64_t>(n - t) /
          static_cast<std::uint64_t>(t + 1);
    }
    expected += c;
  }
  EXPECT_EQ(counts.size(), expected);
  for (const int pop : counts) {
    EXPECT_LE(pop, k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AtMostK,
    ::testing::Values(std::make_pair(4, 1), std::make_pair(4, 2),
                      std::make_pair(5, 3), std::make_pair(6, 2),
                      std::make_pair(7, 1), std::make_pair(8, 4),
                      std::make_pair(10, 1), std::make_pair(12, 2)));

TEST(CnfBuilder, AtMostZeroForcesAllFalse) {
  SatSolver s;
  CnfBuilder cnf(s);
  const auto vars = make_vars(s, 4);
  ASSERT_TRUE(cnf.at_most_k(vars, 0));
  ASSERT_EQ(s.solve(), SatStatus::kSat);
  for (const Lit l : vars) {
    EXPECT_FALSE(s.model_value(l));
  }
}

TEST(CnfBuilder, AtMostKAboveSizeIsNoOp) {
  SatSolver s;
  CnfBuilder cnf(s);
  const auto vars = make_vars(s, 3);
  ASSERT_TRUE(cnf.at_most_k(vars, 5));
  EXPECT_EQ(cnf.aux_vars(), 0);
  EXPECT_EQ(model_popcounts(s, vars).size(), 8u);
}

TEST(CnfBuilder, ExactlyOneEnumeration) {
  for (const int n : {1, 2, 5, 9, 12}) {
    SatSolver s;
    CnfBuilder cnf(s);
    const auto vars = make_vars(s, n);
    ASSERT_TRUE(cnf.exactly_one(vars));
    const auto counts = model_popcounts(s, vars);
    EXPECT_EQ(counts.size(), static_cast<std::size_t>(n)) << n;
    for (const int pop : counts) {
      EXPECT_EQ(pop, 1);
    }
  }
}

TEST(CnfBuilder, AtMostOnePairwiseVsSequentialAgree) {
  // n <= 8 uses pairwise, larger uses the counter; both must count models
  // identically: n + 1 models (all-false plus n singletons).
  for (const int n : {8, 9}) {
    SatSolver s;
    CnfBuilder cnf(s);
    const auto vars = make_vars(s, n);
    ASSERT_TRUE(cnf.at_most_one(vars));
    EXPECT_EQ(model_popcounts(s, vars).size(),
              static_cast<std::size_t>(n + 1));
  }
}

TEST(CnfBuilder, ImpliesClause) {
  SatSolver s;
  CnfBuilder cnf(s);
  const auto vars = make_vars(s, 3);
  ASSERT_TRUE(cnf.implies_clause(vars[0], {vars[1], vars[2]}));
  ASSERT_TRUE(s.add_unit(vars[0]));
  ASSERT_TRUE(s.add_unit(~vars[1]));
  ASSERT_EQ(s.solve(), SatStatus::kSat);
  EXPECT_TRUE(s.model_value(vars[2]));
}

TEST(CnfBuilder, EquivOrBothDirections) {
  SatSolver s;
  CnfBuilder cnf(s);
  const auto vars = make_vars(s, 3);
  const Lit y = Lit::pos(s.new_var());
  ASSERT_TRUE(cnf.equiv_or(y, {vars[0], vars[1], vars[2]}));
  {
    // y true forces some member true.
    ASSERT_TRUE(s.add_unit(y));
    ASSERT_TRUE(s.add_unit(~vars[0]));
    ASSERT_TRUE(s.add_unit(~vars[1]));
    ASSERT_EQ(s.solve(), SatStatus::kSat);
    EXPECT_TRUE(s.model_value(vars[2]));
  }
  {
    // member true forces y.
    SatSolver s2;
    CnfBuilder cnf2(s2);
    const auto vars2 = make_vars(s2, 2);
    const Lit y2 = Lit::pos(s2.new_var());
    ASSERT_TRUE(cnf2.equiv_or(y2, {vars2[0], vars2[1]}));
    ASSERT_TRUE(s2.add_unit(vars2[1]));
    ASSERT_EQ(s2.solve(), SatStatus::kSat);
    EXPECT_TRUE(s2.model_value(y2));
  }
}

TEST(CnfBuilder, ForbidPair) {
  SatSolver s;
  CnfBuilder cnf(s);
  const auto vars = make_vars(s, 2);
  ASSERT_TRUE(cnf.forbid_pair(vars[0], vars[1]));
  ASSERT_TRUE(s.add_unit(vars[0]));
  ASSERT_EQ(s.solve(), SatStatus::kSat);
  EXPECT_FALSE(s.model_value(vars[1]));
}

TEST(CnfBuilder, AuxVarAccounting) {
  SatSolver s;
  CnfBuilder cnf(s);
  const auto vars = make_vars(s, 10);
  ASSERT_TRUE(cnf.at_most_k(vars, 2));
  // Sinz counter: (n-1)*k auxiliaries.
  EXPECT_EQ(cnf.aux_vars(), 9 * 2);
}

}  // namespace
}  // namespace monomap
