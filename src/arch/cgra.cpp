#include "arch/cgra.hpp"

#include <algorithm>
#include <sstream>

namespace monomap {

const char* topology_name(Topology t) {
  switch (t) {
    case Topology::kMesh: return "mesh";
    case Topology::kTorus: return "torus";
    case Topology::kDiagonal: return "diagonal";
  }
  return "?";
}

CgraArch::CgraArch(int rows, int cols, Topology topology)
    : rows_(rows), cols_(cols), topology_(topology) {
  MONOMAP_ASSERT_MSG(rows >= 1 && cols >= 1,
                     "CGRA must have at least one PE; got " << rows << "x"
                                                            << cols);
  const int n = num_pes();
  neighbors_.resize(static_cast<std::size_t>(n));
  closed_neighbors_.resize(static_cast<std::size_t>(n));

  auto maybe_add = [&](PeId from, int r, int c) {
    if (topology_ == Topology::kTorus) {
      r = (r + rows_) % rows_;
      c = (c + cols_) % cols_;
    } else if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
      return;
    }
    const PeId to = pe_at(r, c);
    if (to == from) {
      return;  // torus wrap on a 1-wide dimension
    }
    auto& list = neighbors_[static_cast<std::size_t>(from)];
    if (std::find(list.begin(), list.end(), to) == list.end()) {
      list.push_back(to);
    }
  };

  for (PeId pe = 0; pe < n; ++pe) {
    const int r = row_of(pe);
    const int c = col_of(pe);
    maybe_add(pe, r - 1, c);
    maybe_add(pe, r + 1, c);
    maybe_add(pe, r, c - 1);
    maybe_add(pe, r, c + 1);
    if (topology_ == Topology::kDiagonal) {
      maybe_add(pe, r - 1, c - 1);
      maybe_add(pe, r - 1, c + 1);
      maybe_add(pe, r + 1, c - 1);
      maybe_add(pe, r + 1, c + 1);
    }
    std::sort(neighbors_[static_cast<std::size_t>(pe)].begin(),
              neighbors_[static_cast<std::size_t>(pe)].end());
    auto& closed = closed_neighbors_[static_cast<std::size_t>(pe)];
    closed = neighbors_[static_cast<std::size_t>(pe)];
    closed.push_back(pe);
    std::sort(closed.begin(), closed.end());
    degree_ = std::max(degree_, static_cast<int>(closed.size()));
  }

  neighbor_masks_.reserve(static_cast<std::size_t>(n));
  closed_neighbor_masks_.reserve(static_cast<std::size_t>(n));
  for (PeId pe = 0; pe < n; ++pe) {
    PeSet open(n);
    for (const PeId q : neighbors_[static_cast<std::size_t>(pe)]) {
      open.set(q);
    }
    PeSet closed = open;
    closed.set(pe);
    neighbor_masks_.push_back(std::move(open));
    closed_neighbor_masks_.push_back(std::move(closed));
  }

  distance2_masks_.reserve(static_cast<std::size_t>(n));
  for (PeId pe = 0; pe < n; ++pe) {
    PeSet ball = closed_neighbor_masks_[static_cast<std::size_t>(pe)];
    for (const PeId q : neighbors_[static_cast<std::size_t>(pe)]) {
      ball |= closed_neighbor_masks_[static_cast<std::size_t>(q)];
    }
    const int size = ball.count();
    d2_ball_min_ = pe == 0 ? size : std::min(d2_ball_min_, size);
    d2_ball_max_ = std::max(d2_ball_max_, size);
    distance2_masks_.push_back(std::move(ball));
  }

  // Degree-threshold masks: need == 0 is the full set, need > degree_ the
  // empty one (index degree_ + 1).
  min_degree_masks_.reserve(static_cast<std::size_t>(degree_) + 2);
  for (int need = 0; need <= degree_ + 1; ++need) {
    PeSet mask(n);
    for (PeId pe = 0; pe < n; ++pe) {
      if (static_cast<int>(
              closed_neighbors_[static_cast<std::size_t>(pe)].size()) >=
          need) {
        mask.set(pe);
      }
    }
    min_degree_masks_.push_back(std::move(mask));
  }
}

const std::vector<PeSet>& CgraArch::common_target_masks(int min_common) const {
  MONOMAP_ASSERT(min_common >= 1);
  std::lock_guard<std::mutex> lock(common_target_mutex_);
  auto it = common_target_cache_.find(min_common);
  if (it == common_target_cache_.end()) {
    std::vector<PeSet> masks;
    masks.reserve(static_cast<std::size_t>(num_pes()));
    for (PeId p = 0; p < num_pes(); ++p) {
      masks.push_back(common_target_mask(p, min_common));
    }
    it = common_target_cache_.emplace(min_common, std::move(masks)).first;
  }
  return it->second;
}

const std::vector<PeId>& CgraArch::interior_first_order() const {
  std::lock_guard<std::mutex> lock(common_target_mutex_);
  if (interior_order_.empty()) {
    interior_order_.reserve(static_cast<std::size_t>(num_pes()));
    for (PeId p = 0; p < num_pes(); ++p) interior_order_.push_back(p);
    std::stable_sort(interior_order_.begin(), interior_order_.end(),
                     [&](PeId a, PeId b) {
                       return closed_neighbors(a).size() >
                              closed_neighbors(b).size();
                     });
    interior_rank_.assign(static_cast<std::size_t>(num_pes()), 0);
    for (int i = 0; i < num_pes(); ++i) {
      interior_rank_[static_cast<std::size_t>(
          interior_order_[static_cast<std::size_t>(i)])] = i;
    }
  }
  return interior_order_;
}

const std::vector<int>& CgraArch::interior_first_rank() const {
  interior_first_order();  // builds both under the lock
  return interior_rank_;
}

PeSet CgraArch::common_target_mask(PeId pe, int min_common) const {
  MONOMAP_ASSERT(has_pe(pe) && min_common >= 1);
  PeSet mask(num_pes());
  const PeSet& mine = closed_neighbor_masks_[static_cast<std::size_t>(pe)];
  // |N[pe] ∩ N[q]| >= 1 already implies q within two grid hops of pe (some
  // common member is adjacent-or-equal to both), so only the distance-2
  // ball needs probing — constant work per PE as the grid grows.
  distance2_masks_[static_cast<std::size_t>(pe)].for_each([&](int q) {
    if (mine.intersect_count(
            closed_neighbor_masks_[static_cast<std::size_t>(q)]) >=
        min_common) {
      mask.set(q);
    }
  });
  return mask;
}

std::string CgraArch::description() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " " << topology_name(topology_)
     << " CGRA (" << num_pes() << " PEs, D_M=" << degree_ << ")";
  return os.str();
}

}  // namespace monomap
