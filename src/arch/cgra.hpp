// CGRA architecture model (paper Fig. 1).
//
// A rectangular grid of PEs; every PE has an ALU, a register file that
// neighbouring PEs can read (the paper's target architecture, Sec. V), and a
// port to the shared data memory. The interconnect topology is configurable;
// the paper evaluates the 2D near-neighbour mesh.
#ifndef MONOMAP_ARCH_CGRA_HPP
#define MONOMAP_ARCH_CGRA_HPP

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/assert.hpp"
#include "support/pe_set.hpp"

namespace monomap {

using PeId = std::int32_t;

/// Interconnect topology of the grid.
enum class Topology {
  kMesh,      // 4-neighbour von-Neumann mesh (the paper's architecture)
  kTorus,     // 4-neighbour with wrap-around links
  kDiagonal,  // 8-neighbour king mesh
};

const char* topology_name(Topology t);

/// A rows x cols CGRA. PEs are numbered row-major: pe = row * cols + col.
class CgraArch {
 public:
  CgraArch(int rows, int cols, Topology topology = Topology::kMesh);

  /// Square mesh shorthand: n x n, as in the paper's "2x2 .. 20x20".
  static CgraArch square(int n, Topology topology = Topology::kMesh) {
    return CgraArch(n, n, topology);
  }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int num_pes() const { return rows_ * cols_; }
  [[nodiscard]] Topology topology() const { return topology_; }

  [[nodiscard]] bool has_pe(PeId pe) const {
    return pe >= 0 && pe < num_pes();
  }
  [[nodiscard]] int row_of(PeId pe) const { return pe / cols_; }
  [[nodiscard]] int col_of(PeId pe) const { return pe % cols_; }
  [[nodiscard]] PeId pe_at(int row, int col) const {
    MONOMAP_ASSERT(row >= 0 && row < rows_ && col >= 0 && col < cols_);
    return row * cols_ + col;
  }

  /// Mesh neighbours of `pe`, excluding `pe` itself.
  [[nodiscard]] const std::vector<PeId>& neighbors(PeId pe) const {
    MONOMAP_ASSERT(has_pe(pe));
    return neighbors_[static_cast<std::size_t>(pe)];
  }

  /// Neighbours plus the PE itself ("closed neighbourhood"): the set of PEs
  /// whose register files `pe` can read (own RF + neighbour RFs).
  [[nodiscard]] const std::vector<PeId>& closed_neighbors(PeId pe) const {
    MONOMAP_ASSERT(has_pe(pe));
    return closed_neighbors_[static_cast<std::size_t>(pe)];
  }

  /// Bitset view of neighbors(pe) (capacity == num_pes). The space search
  /// intersects these masks to filter whole candidate domains per operation
  /// instead of probing adjacency per PE pair.
  [[nodiscard]] const PeSet& neighbor_mask(PeId pe) const {
    MONOMAP_ASSERT(has_pe(pe));
    return neighbor_masks_[static_cast<std::size_t>(pe)];
  }

  /// Bitset view of closed_neighbors(pe).
  [[nodiscard]] const PeSet& closed_neighbor_mask(PeId pe) const {
    MONOMAP_ASSERT(has_pe(pe));
    return closed_neighbor_masks_[static_cast<std::size_t>(pe)];
  }

  /// PEs within grid distance <= 2 of `pe` (the union of closed
  /// neighbourhoods over N[pe], so it includes `pe` itself). Supplemental
  /// paths-of-length-2 filtering in the space search intersects these masks
  /// into the domains of DFG nodes two hops from a placed node: if u-w-v is
  /// a DFG path, phi(v) must lie within two grid hops of phi(u).
  [[nodiscard]] const PeSet& distance2_mask(PeId pe) const {
    MONOMAP_ASSERT(has_pe(pe));
    return distance2_masks_[static_cast<std::size_t>(pe)];
  }

  /// PEs q whose closed neighbourhood shares at least `min_common` members
  /// with N[pe] — the multiplicity-aware sharpening of distance2_mask: if k
  /// DFG nodes (same slot label) are each adjacent to both of two nodes a
  /// and b, they need k *distinct* PEs inside N[phi(a)] ∩ N[phi(b)], so
  /// phi(b) ∈ common_target_mask(phi(a), k). min_common == 1 reproduces
  /// distance2_mask exactly; on a 4-neighbour mesh min_common == 2 already
  /// drops the straight-line distance-2 targets (midpoint only, |∩| = 1)
  /// and min_common == 3 pins q == pe. Computed on demand (callers cache —
  /// the space searcher builds per-k tables only for the multiplicities its
  /// DFG actually contains).
  [[nodiscard]] PeSet common_target_mask(PeId pe, int min_common) const;

  /// All common_target_mask(p, min_common) rows of one level, built on
  /// first request and memoised for the architecture's lifetime. Searchers
  /// ask for the same one or two levels on every construction, and the
  /// per-PE ball probes are the dominant cost of building a searcher on a
  /// 64x64 fabric — the memo turns that into a one-time charge per arch.
  /// Thread-safe; the reference stays valid as long as the arch does.
  [[nodiscard]] const std::vector<PeSet>& common_target_masks(
      int min_common) const;

  /// PEs sorted by descending closed-neighbourhood size (stable, so
  /// row-major id order breaks ties): the space searchers' interior-first
  /// global value order. Memoised like common_target_masks — the
  /// stable_sort over num_pes is measurable per-searcher construction on a
  /// 64x64 fabric, and the order is a pure function of the architecture.
  [[nodiscard]] const std::vector<PeId>& interior_first_order() const;

  /// Inverse permutation of interior_first_order(): rank[pe] = position.
  /// The searchers order candidate lists by rank lookups.
  [[nodiscard]] const std::vector<int>& interior_first_rank() const;

  /// PEs whose closed neighbourhood holds at least `need` members. The
  /// space search intersects candidate domains with this instead of probing
  /// closed_neighbors(p).size() per PE (the root degree filter). `need`
  /// beyond connectivity_degree() yields the empty set.
  [[nodiscard]] const PeSet& min_closed_degree_mask(int need) const {
    MONOMAP_ASSERT(need >= 0);
    const int idx = std::min(need, degree_ + 1);
    return min_degree_masks_[static_cast<std::size_t>(idx)];
  }

  [[nodiscard]] bool adjacent(PeId a, PeId b) const {
    MONOMAP_ASSERT(has_pe(a) && has_pe(b));
    return neighbor_masks_[static_cast<std::size_t>(a)].test(b);
  }

  /// adjacent(a,b) || a == b.
  [[nodiscard]] bool adjacent_or_same(PeId a, PeId b) const {
    MONOMAP_ASSERT(has_pe(a) && has_pe(b));
    return closed_neighbor_masks_[static_cast<std::size_t>(a)].test(b);
  }

  /// The paper's connectivity degree D_M: the maximum closed-neighbourhood
  /// size over all PEs (3 on a 2x2 mesh, 5 on 3x3-and-larger meshes).
  [[nodiscard]] int connectivity_degree() const { return degree_; }

  /// Grid hop distance between two PEs under this topology: Manhattan on
  /// the mesh, wrap-aware Manhattan on the torus, Chebyshev on the
  /// 8-neighbour king mesh. Pure coordinate arithmetic — the space
  /// searcher's sparse value ordering calls it inside a sort comparator.
  [[nodiscard]] int grid_distance(PeId a, PeId b) const {
    MONOMAP_ASSERT(has_pe(a) && has_pe(b));
    int dr = row_of(a) - row_of(b);
    int dc = col_of(a) - col_of(b);
    dr = dr < 0 ? -dr : dr;
    dc = dc < 0 ? -dc : dc;
    if (topology_ == Topology::kTorus) {
      dr = std::min(dr, rows_ - dr);
      dc = std::min(dc, cols_ - dc);
    }
    return topology_ == Topology::kDiagonal ? std::max(dr, dc) : dr + dc;
  }

  /// Smallest / largest distance-2 ball size (|distance2_mask(pe)|) over
  /// all PEs: the corner-PE and interior-PE capacities (13 and 7 on a big
  /// enough plain mesh). Workload generators size satisfiable instances
  /// against these — any same-label cluster a DFG forces into one ball
  /// must fit the *interior* capacity to be placeable everywhere, and
  /// refutation-heavy instances push past the corner capacity.
  [[nodiscard]] int distance2_ball_min() const { return d2_ball_min_; }
  [[nodiscard]] int distance2_ball_max() const { return d2_ball_max_; }

  [[nodiscard]] std::string description() const;

 private:
  int rows_;
  int cols_;
  Topology topology_;
  int degree_ = 0;
  int d2_ball_min_ = 0;
  int d2_ball_max_ = 0;
  std::vector<std::vector<PeId>> neighbors_;
  std::vector<std::vector<PeId>> closed_neighbors_;
  std::vector<PeSet> neighbor_masks_;
  std::vector<PeSet> closed_neighbor_masks_;
  std::vector<PeSet> distance2_masks_;
  std::vector<PeSet> min_degree_masks_;  // indexed by `need`, 0..degree_+1
  // common_target_masks memo (arch is shared across threads; the lock is
  // per-call but the call is once per searcher construction).
  mutable std::mutex common_target_mutex_;
  mutable std::map<int, std::vector<PeSet>> common_target_cache_;
  mutable std::vector<PeId> interior_order_;  // same lock; empty = unbuilt
  mutable std::vector<int> interior_rank_;
};

}  // namespace monomap

#endif  // MONOMAP_ARCH_CGRA_HPP
