// CGRA architecture model (paper Fig. 1).
//
// A rectangular grid of PEs; every PE has an ALU, a register file that
// neighbouring PEs can read (the paper's target architecture, Sec. V), and a
// port to the shared data memory. The interconnect topology is configurable;
// the paper evaluates the 2D near-neighbour mesh.
#ifndef MONOMAP_ARCH_CGRA_HPP
#define MONOMAP_ARCH_CGRA_HPP

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "support/assert.hpp"
#include "support/pe_set.hpp"

namespace monomap {

using PeId = std::int32_t;

/// Interconnect topology of the grid.
enum class Topology {
  kMesh,      // 4-neighbour von-Neumann mesh (the paper's architecture)
  kTorus,     // 4-neighbour with wrap-around links
  kDiagonal,  // 8-neighbour king mesh
};

const char* topology_name(Topology t);

/// A rows x cols CGRA. PEs are numbered row-major: pe = row * cols + col.
class CgraArch {
 public:
  CgraArch(int rows, int cols, Topology topology = Topology::kMesh);

  /// Square mesh shorthand: n x n, as in the paper's "2x2 .. 20x20".
  static CgraArch square(int n, Topology topology = Topology::kMesh) {
    return CgraArch(n, n, topology);
  }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int num_pes() const { return rows_ * cols_; }
  [[nodiscard]] Topology topology() const { return topology_; }

  [[nodiscard]] bool has_pe(PeId pe) const {
    return pe >= 0 && pe < num_pes();
  }
  [[nodiscard]] int row_of(PeId pe) const { return pe / cols_; }
  [[nodiscard]] int col_of(PeId pe) const { return pe % cols_; }
  [[nodiscard]] PeId pe_at(int row, int col) const {
    MONOMAP_ASSERT(row >= 0 && row < rows_ && col >= 0 && col < cols_);
    return row * cols_ + col;
  }

  /// Mesh neighbours of `pe`, excluding `pe` itself.
  [[nodiscard]] const std::vector<PeId>& neighbors(PeId pe) const {
    MONOMAP_ASSERT(has_pe(pe));
    return neighbors_[static_cast<std::size_t>(pe)];
  }

  /// Neighbours plus the PE itself ("closed neighbourhood"): the set of PEs
  /// whose register files `pe` can read (own RF + neighbour RFs).
  [[nodiscard]] const std::vector<PeId>& closed_neighbors(PeId pe) const {
    MONOMAP_ASSERT(has_pe(pe));
    return closed_neighbors_[static_cast<std::size_t>(pe)];
  }

  /// Bitset view of neighbors(pe) (capacity == num_pes). The space search
  /// intersects these masks to filter whole candidate domains per operation
  /// instead of probing adjacency per PE pair.
  [[nodiscard]] const PeSet& neighbor_mask(PeId pe) const {
    MONOMAP_ASSERT(has_pe(pe));
    return neighbor_masks_[static_cast<std::size_t>(pe)];
  }

  /// Bitset view of closed_neighbors(pe).
  [[nodiscard]] const PeSet& closed_neighbor_mask(PeId pe) const {
    MONOMAP_ASSERT(has_pe(pe));
    return closed_neighbor_masks_[static_cast<std::size_t>(pe)];
  }

  /// PEs within grid distance <= 2 of `pe` (the union of closed
  /// neighbourhoods over N[pe], so it includes `pe` itself). Supplemental
  /// paths-of-length-2 filtering in the space search intersects these masks
  /// into the domains of DFG nodes two hops from a placed node: if u-w-v is
  /// a DFG path, phi(v) must lie within two grid hops of phi(u).
  [[nodiscard]] const PeSet& distance2_mask(PeId pe) const {
    MONOMAP_ASSERT(has_pe(pe));
    return distance2_masks_[static_cast<std::size_t>(pe)];
  }

  /// PEs q whose closed neighbourhood shares at least `min_common` members
  /// with N[pe] — the multiplicity-aware sharpening of distance2_mask: if k
  /// DFG nodes (same slot label) are each adjacent to both of two nodes a
  /// and b, they need k *distinct* PEs inside N[phi(a)] ∩ N[phi(b)], so
  /// phi(b) ∈ common_target_mask(phi(a), k). min_common == 1 reproduces
  /// distance2_mask exactly; on a 4-neighbour mesh min_common == 2 already
  /// drops the straight-line distance-2 targets (midpoint only, |∩| = 1)
  /// and min_common == 3 pins q == pe. Computed on demand (callers cache —
  /// the space searcher builds per-k tables only for the multiplicities its
  /// DFG actually contains).
  [[nodiscard]] PeSet common_target_mask(PeId pe, int min_common) const;

  /// PEs whose closed neighbourhood holds at least `need` members. The
  /// space search intersects candidate domains with this instead of probing
  /// closed_neighbors(p).size() per PE (the root degree filter). `need`
  /// beyond connectivity_degree() yields the empty set.
  [[nodiscard]] const PeSet& min_closed_degree_mask(int need) const {
    MONOMAP_ASSERT(need >= 0);
    const int idx = std::min(need, degree_ + 1);
    return min_degree_masks_[static_cast<std::size_t>(idx)];
  }

  [[nodiscard]] bool adjacent(PeId a, PeId b) const {
    MONOMAP_ASSERT(has_pe(a) && has_pe(b));
    return neighbor_masks_[static_cast<std::size_t>(a)].test(b);
  }

  /// adjacent(a,b) || a == b.
  [[nodiscard]] bool adjacent_or_same(PeId a, PeId b) const {
    MONOMAP_ASSERT(has_pe(a) && has_pe(b));
    return closed_neighbor_masks_[static_cast<std::size_t>(a)].test(b);
  }

  /// The paper's connectivity degree D_M: the maximum closed-neighbourhood
  /// size over all PEs (3 on a 2x2 mesh, 5 on 3x3-and-larger meshes).
  [[nodiscard]] int connectivity_degree() const { return degree_; }

  [[nodiscard]] std::string description() const;

 private:
  int rows_;
  int cols_;
  Topology topology_;
  int degree_ = 0;
  std::vector<std::vector<PeId>> neighbors_;
  std::vector<std::vector<PeId>> closed_neighbors_;
  std::vector<PeSet> neighbor_masks_;
  std::vector<PeSet> closed_neighbor_masks_;
  std::vector<PeSet> distance2_masks_;
  std::vector<PeSet> min_degree_masks_;  // indexed by `need`, 0..degree_+1
};

}  // namespace monomap

#endif  // MONOMAP_ARCH_CGRA_HPP
