// Modulo Routing Resource Graph (paper Sec. IV-A, Fig. 3).
//
// II stacked copies of the CGRA linked through time. Vertices are (PE, slot)
// pairs with label(v) = slot. Two edge models are provided:
//
// * kRegisterPersistence (default; the paper's target architecture): a value
//   written into a PE's register file stays readable by the PE and its mesh
//   neighbours across kernel slots, so (p,i) and (q,j) are adjacent iff
//   q ∈ N(p) ∪ {p} and (p,i) != (q,j). The kernel is cyclic in time.
// * kConsecutiveOnly: edges only between slots i and (i+1) mod II plus
//   intra-slot mesh edges — the literal reading of the paper's E_M formula.
//   Used by ablation A2/A3 to show why persistence is the coherent model.
//
// Adjacency is answered implicitly from grid coordinates (no materialised
// edge list): a 20x20 CGRA at II=16 has 6400 vertices and ~120k edges, and
// the monomorphism search only ever asks point queries and neighbourhood
// enumerations.
#ifndef MONOMAP_ARCH_MRRG_HPP
#define MONOMAP_ARCH_MRRG_HPP

#include <cstdint>
#include <vector>

#include "arch/cgra.hpp"

namespace monomap {

using MrrgVertexId = std::int32_t;

enum class MrrgModel {
  kRegisterPersistence,
  kConsecutiveOnly,
};

class Mrrg {
 public:
  Mrrg(const CgraArch& arch, int ii,
       MrrgModel model = MrrgModel::kRegisterPersistence);

  [[nodiscard]] const CgraArch& arch() const { return *arch_; }
  [[nodiscard]] int ii() const { return ii_; }
  [[nodiscard]] MrrgModel model() const { return model_; }

  [[nodiscard]] int num_vertices() const { return arch_->num_pes() * ii_; }

  /// Vertices are numbered slot-major: id = slot * num_pes + pe.
  [[nodiscard]] MrrgVertexId vertex(PeId pe, int slot) const {
    MONOMAP_ASSERT(arch_->has_pe(pe) && slot >= 0 && slot < ii_);
    return slot * arch_->num_pes() + pe;
  }
  [[nodiscard]] PeId pe_of(MrrgVertexId v) const {
    MONOMAP_ASSERT(v >= 0 && v < num_vertices());
    return v % arch_->num_pes();
  }
  [[nodiscard]] int slot_of(MrrgVertexId v) const {
    MONOMAP_ASSERT(v >= 0 && v < num_vertices());
    return v / arch_->num_pes();
  }

  /// The paper's labelling function l_M: vertex -> its time step.
  [[nodiscard]] int label(MrrgVertexId v) const { return slot_of(v); }

  /// Undirected adjacency (self-loops excluded; every vertex additionally
  /// has an implicit self-loop per the paper's Fig. 3 caption).
  [[nodiscard]] bool adjacent(MrrgVertexId a, MrrgVertexId b) const;

  /// All vertices adjacent to v (excluding v itself).
  [[nodiscard]] std::vector<MrrgVertexId> neighbors(MrrgVertexId v) const;

  /// Number of edges of the explicit undirected graph (for tests/stats).
  [[nodiscard]] std::int64_t count_edges() const;

 private:
  [[nodiscard]] bool slots_adjacent(int si, int sj) const;

  const CgraArch* arch_;
  int ii_;
  MrrgModel model_;
};

}  // namespace monomap

#endif  // MONOMAP_ARCH_MRRG_HPP
