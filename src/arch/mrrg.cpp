#include "arch/mrrg.hpp"

namespace monomap {

Mrrg::Mrrg(const CgraArch& arch, int ii, MrrgModel model)
    : arch_(&arch), ii_(ii), model_(model) {
  MONOMAP_ASSERT_MSG(ii >= 1, "MRRG needs II >= 1, got " << ii);
}

bool Mrrg::slots_adjacent(int si, int sj) const {
  if (model_ == MrrgModel::kRegisterPersistence) {
    return true;  // values persist in register files across the kernel window
  }
  // Consecutive-only: same slot, or cyclically consecutive slots.
  if (si == sj) return true;
  const int d = (sj - si + ii_) % ii_;
  return d == 1 || d == ii_ - 1;
}

bool Mrrg::adjacent(MrrgVertexId a, MrrgVertexId b) const {
  if (a == b) return false;
  const PeId pa = pe_of(a);
  const PeId pb = pe_of(b);
  if (!arch_->adjacent_or_same(pa, pb)) return false;
  return slots_adjacent(slot_of(a), slot_of(b));
}

std::vector<MrrgVertexId> Mrrg::neighbors(MrrgVertexId v) const {
  std::vector<MrrgVertexId> result;
  const PeId pv = pe_of(v);
  const int sv = slot_of(v);
  const auto& closed = arch_->closed_neighbors(pv);
  result.reserve(closed.size() * static_cast<std::size_t>(ii_));
  for (int slot = 0; slot < ii_; ++slot) {
    if (!slots_adjacent(sv, slot)) continue;
    for (const PeId q : closed) {
      const MrrgVertexId w = vertex(q, slot);
      if (w != v) {
        result.push_back(w);
      }
    }
  }
  return result;
}

std::int64_t Mrrg::count_edges() const {
  std::int64_t twice = 0;
  for (MrrgVertexId v = 0; v < num_vertices(); ++v) {
    twice += static_cast<std::int64_t>(neighbors(v).size());
  }
  MONOMAP_ASSERT(twice % 2 == 0);
  return twice / 2;
}

}  // namespace monomap
