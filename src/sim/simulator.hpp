// Functional CGRA simulator (DESIGN.md S15).
//
// Replays a mapped kernel cycle by cycle, the way the configured array would
// execute it: iteration i's node v issues at absolute cycle i*II + T_v on
// PE(v); operands are fetched from the producing PE's register file, which
// must be the consumer's own or a neighbouring PE (checked dynamically —
// defence in depth on top of the static validator). Register files rotate:
// value (u, iteration j) is overwritten once u has produced its value for
// iteration j + regs(u), where regs(u) is the modulo-variable-expansion
// count from the register-pressure analysis.
//
// Memory semantics per cycle: all loads read the state left by cycles < t,
// all stores commit at the end of t; a load and store (or two stores)
// touching the same cell in the same cycle is recorded as a hazard. The
// workload kernels are hazard-free by construction (disjoint input/output
// spaces, unique store addresses per iteration).
//
// The CgraSimulator's result is compared bit-for-bit against the sequential
// interpreter — the oracle check used by the integration tests.
#ifndef MONOMAP_SIM_SIMULATOR_HPP
#define MONOMAP_SIM_SIMULATOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "ir/interpreter.hpp"
#include "mapper/mapping.hpp"

namespace monomap {

struct SimOptions {
  /// Loop iterations to execute (must allow a steady state: >= stages).
  int iterations = 8;
  /// Register-file capacity per PE; 0 = check against the analysis only.
  int rf_size = 0;
  /// Memory salt (must match the interpreter run used as oracle).
  std::uint64_t memory_salt = 0;
};

struct SimResult {
  bool ok = false;
  int cycles = 0;
  std::vector<std::string> errors;   // adjacency/ordering/liveness violations
  std::vector<std::string> hazards;  // same-cycle memory conflicts
  /// values[i][v] = value produced by node v in iteration i.
  std::vector<std::vector<std::int64_t>> values;
  DataMemory memory;
};

/// Execute `mapping` of `kernel` on `arch`.
SimResult simulate(const LoopKernel& kernel, const Dfg& dfg,
                   const CgraArch& arch, const Mapping& mapping,
                   const SimOptions& options = SimOptions{});

/// Run both the simulator and the sequential interpreter and compare all
/// produced values and the final memory image. Returns a list of
/// discrepancies (empty == the mapping computes exactly the loop's results).
std::vector<std::string> verify_mapping_by_simulation(
    const LoopKernel& kernel, const Dfg& dfg, const CgraArch& arch,
    const Mapping& mapping, const SimOptions& options = SimOptions{});

}  // namespace monomap

#endif  // MONOMAP_SIM_SIMULATOR_HPP
