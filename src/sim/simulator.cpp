#include "sim/simulator.hpp"

#include <map>
#include <set>
#include <sstream>

#include "mapper/reg_pressure.hpp"

namespace monomap {

namespace {

std::string at(NodeId v, int iter, int cycle) {
  std::ostringstream os;
  os << "node " << v << " iter " << iter << " cycle " << cycle;
  return os.str();
}

}  // namespace

SimResult simulate(const LoopKernel& kernel, const Dfg& dfg,
                   const CgraArch& arch, const Mapping& mapping,
                   const SimOptions& options) {
  MONOMAP_ASSERT(kernel.size() == dfg.num_nodes());
  SimResult result;
  result.memory = DataMemory(options.memory_salt);
  const int n = dfg.num_nodes();
  const int ii = mapping.ii();
  const int iters = options.iterations;
  MONOMAP_ASSERT_MSG(iters >= mapping.num_stages(),
                     "need >= " << mapping.num_stages()
                                << " iterations for a steady state");

  // Rotating-register depth per producer (modulo variable expansion).
  const RegPressureReport pressure =
      analyze_register_pressure(dfg, arch, mapping);
  if (options.rf_size > 0 && pressure.max_per_pe > options.rf_size) {
    result.errors.push_back(
        "register pressure " + std::to_string(pressure.max_per_pe) +
        " exceeds RF size " + std::to_string(options.rf_size));
  }
  std::vector<int> reg_depth(static_cast<std::size_t>(n), 1);
  const Graph& g = dfg.graph();
  for (NodeId v = 0; v < n; ++v) {
    int last_use = mapping.time(v);
    for (const EdgeId e : g.out_edges(v)) {
      const Edge& edge = g.edge(e);
      last_use = std::max(last_use, mapping.time(edge.dst) + edge.attr * ii);
    }
    const int lifetime = last_use - mapping.time(v);
    reg_depth[static_cast<std::size_t>(v)] =
        1 + (lifetime > 0 ? (lifetime - 1) / ii : 0);
  }

  result.values.assign(static_cast<std::size_t>(iters),
                       std::vector<std::int64_t>(static_cast<std::size_t>(n), 0));
  // latest_iter[v] = most recent iteration v has produced (for liveness).
  std::vector<int> latest_iter(static_cast<std::size_t>(n), -1);

  auto fetch = [&](NodeId consumer, const OperandRef& o, int iter, int cycle,
                   std::int64_t& out) {
    const int src_iter = iter - o.distance;
    if (src_iter < 0) {
      out = kernel.instr(o.producer).init;
      return;
    }
    // Spatial check: the producer's RF must be readable from the consumer.
    if (!arch.adjacent_or_same(mapping.pe(consumer), mapping.pe(o.producer))) {
      result.errors.push_back("non-adjacent fetch by " +
                              at(consumer, iter, cycle) + " from PE" +
                              std::to_string(mapping.pe(o.producer)));
      out = 0;
      return;
    }
    // Temporal check: the value must already have been produced...
    const int produced_at = src_iter * ii + mapping.time(o.producer);
    if (produced_at >= cycle) {
      result.errors.push_back("read-before-write by " +
                              at(consumer, iter, cycle) + " of value produced at cycle " +
                              std::to_string(produced_at));
      out = 0;
      return;
    }
    // ...and still live in the producer's rotating registers.
    const int depth = reg_depth[static_cast<std::size_t>(o.producer)];
    if (latest_iter[static_cast<std::size_t>(o.producer)] - src_iter >=
        depth) {
      result.errors.push_back("overwritten value read by " +
                              at(consumer, iter, cycle) + " (rotating depth " +
                              std::to_string(depth) + ")");
      out = 0;
      return;
    }
    out = result.values[static_cast<std::size_t>(src_iter)]
                       [static_cast<std::size_t>(o.producer)];
  };

  const int total_cycles = (iters - 1) * ii + mapping.max_time() + 1;
  result.cycles = total_cycles;
  struct PendingStore {
    int space;
    std::int64_t addr;
    std::int64_t value;
  };
  for (int cycle = 0; cycle < total_cycles; ++cycle) {
    std::vector<PendingStore> stores;
    // Register writes commit at the end of the cycle: liveness bookkeeping
    // is deferred so same-cycle readers still see the previous value.
    std::vector<std::pair<NodeId, int>> produced;
    std::set<std::pair<int, std::int64_t>> touched;
    // All ops issuing this cycle: iteration i = (cycle - T_v) / II.
    for (NodeId v = 0; v < n; ++v) {
      const int offset = cycle - mapping.time(v);
      if (offset < 0 || offset % ii != 0) continue;
      const int iter = offset / ii;
      if (iter >= iters) continue;
      const Instruction& in = kernel.instr(v);
      std::int64_t a = 0;
      std::int64_t b = 0;
      std::int64_t c = 0;
      if (!in.operands.empty()) fetch(v, in.operands[0], iter, cycle, a);
      if (in.operands.size() > 1) fetch(v, in.operands[1], iter, cycle, b);
      if (in.operands.size() > 2) fetch(v, in.operands[2], iter, cycle, c);
      if (in.rhs_is_imm) b = in.imm;
      std::int64_t value = 0;
      switch (in.op) {
        case Opcode::kConst:
          value = in.imm;
          break;
        case Opcode::kIndex:
          value = iter;
          break;
        case Opcode::kLoad: {
          const auto key = std::make_pair(static_cast<int>(in.imm), a);
          if (touched.count(key) != 0) {
            result.hazards.push_back("same-cycle load/store overlap at " +
                                     at(v, iter, cycle));
          }
          value = result.memory.read(key.first, key.second);
          break;
        }
        case Opcode::kStore: {
          const auto key = std::make_pair(static_cast<int>(in.imm), a);
          if (!touched.insert(key).second) {
            result.hazards.push_back("same-cycle store conflict at " +
                                     at(v, iter, cycle));
          }
          value = b;
          stores.push_back(PendingStore{key.first, key.second, value});
          break;
        }
        default:
          value = eval_pure(in.op, a, b, c);
          break;
      }
      result.values[static_cast<std::size_t>(iter)]
                   [static_cast<std::size_t>(v)] = value;
      produced.emplace_back(v, iter);
    }
    for (const auto& [v, iter] : produced) {
      latest_iter[static_cast<std::size_t>(v)] =
          std::max(latest_iter[static_cast<std::size_t>(v)], iter);
    }
    for (const PendingStore& st : stores) {
      result.memory.write(st.space, st.addr, st.value);
    }
  }
  result.ok = result.errors.empty() && result.hazards.empty();
  return result;
}

std::vector<std::string> verify_mapping_by_simulation(
    const LoopKernel& kernel, const Dfg& dfg, const CgraArch& arch,
    const Mapping& mapping, const SimOptions& options) {
  std::vector<std::string> problems;
  const SimResult sim = simulate(kernel, dfg, arch, mapping, options);
  problems.insert(problems.end(), sim.errors.begin(), sim.errors.end());
  problems.insert(problems.end(), sim.hazards.begin(), sim.hazards.end());

  const ExecutionTrace oracle =
      interpret(kernel, options.iterations, DataMemory(options.memory_salt));
  for (int iter = 0; iter < options.iterations; ++iter) {
    for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
      const std::int64_t got =
          sim.values[static_cast<std::size_t>(iter)][static_cast<std::size_t>(v)];
      const std::int64_t want =
          oracle.values[static_cast<std::size_t>(iter)]
                       [static_cast<std::size_t>(v)];
      if (got != want) {
        std::ostringstream os;
        os << "value mismatch: node " << v << " ('" << dfg.node_name(v)
           << "') iter " << iter << ": mapped=" << got
           << " sequential=" << want;
        problems.push_back(os.str());
      }
    }
  }
  if (!(sim.memory == oracle.memory)) {
    problems.push_back("final data-memory images differ");
  }
  return problems;
}

}  // namespace monomap
