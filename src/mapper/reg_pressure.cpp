#include "mapper/reg_pressure.hpp"

#include <algorithm>
#include <sstream>

namespace monomap {

std::string RegPressureReport::to_string() const {
  std::ostringstream os;
  os << "register pressure: max/PE=" << max_per_pe << " total=" << total
     << " per-PE=[";
  for (std::size_t p = 0; p < per_pe.size(); ++p) {
    if (p != 0) os << ' ';
    os << per_pe[p];
  }
  os << ']';
  return os.str();
}

RegPressureReport analyze_register_pressure(const Dfg& dfg,
                                            const CgraArch& arch,
                                            const Mapping& mapping) {
  MONOMAP_ASSERT(mapping.num_nodes() == dfg.num_nodes());
  RegPressureReport report;
  report.per_pe.assign(static_cast<std::size_t>(arch.num_pes()), 0);
  const int ii = mapping.ii();
  const Graph& g = dfg.graph();
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    int last_use = mapping.time(v);  // no consumer: live for 0 extra cycles
    for (const EdgeId e : g.out_edges(v)) {
      const Edge& edge = g.edge(e);
      const int consume_at = mapping.time(edge.dst) + edge.attr * ii;
      last_use = std::max(last_use, consume_at);
    }
    const int lifetime = last_use - mapping.time(v);
    const int regs = 1 + (lifetime > 0 ? (lifetime - 1) / ii : 0);
    report.per_pe[static_cast<std::size_t>(mapping.pe(v))] += regs;
    report.total += regs;
  }
  report.max_per_pe =
      report.per_pe.empty()
          ? 0
          : *std::max_element(report.per_pe.begin(), report.per_pe.end());
  return report;
}

}  // namespace monomap
