#include "mapper/decoupled_mapper.hpp"

#include <algorithm>
#include <limits>
#include <thread>

#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/stopwatch.hpp"

namespace monomap {

MapResult DecoupledMapper::map(const Dfg& dfg, const CgraArch& arch) const {
  const Deadline deadline = options_.timeout_s > 0
                                ? Deadline(options_.timeout_s)
                                : Deadline::unlimited();
  return map(dfg, arch, deadline);
}

MapResult DecoupledMapper::map(const Dfg& dfg, const CgraArch& arch,
                               const Deadline& deadline) const {
  MapResult result;
  TimeSolverOptions time_options = options_.time;
  if (options_.space.model == MrrgModel::kConsecutiveOnly) {
    // Restricted interconnect: keep the time search consistent with the
    // space model, or every schedule with a long slot span would be
    // rejected in space.
    time_options.constraints.consecutive_slots = true;
  }
  TimeSolver time_solver(dfg, arch, time_options);
  result.mii = time_solver.mii();

  Stopwatch phase;
  const std::uint64_t base_budget = options_.space.max_backtracks;
  std::uint64_t budget = base_budget;
  // Failures at the current II, by what they taught us: uninformative ones
  // (truncations, and refutations whose conflict set spans most of the
  // DFG — their nogood prunes almost nothing) burn the II's retry budget;
  // narrow refutations are progress (each prunes a whole schedule family)
  // and only a generous separate cap bounds them.
  int uninformative_at_current_ii = 0;
  int narrow_refutations_at_current_ii = 0;
  bool refuted_at_current_ii = false;  // any complete refutation at this II
  bool probed_at_current_ii = false;   // last-chance probe already granted
  int last_ii = -1;
  for (;;) {
    phase.restart();
    const std::optional<TimeSolution> schedule = time_solver.next(deadline);
    result.time_phase_s += phase.elapsed_s();
    if (!schedule.has_value()) {
      result.timed_out = time_solver.timed_out();
      result.failure_reason = result.timed_out
                                  ? "time search hit the deadline"
                                  : "time search exhausted up to max II";
      break;
    }
    ++result.schedules_tried;
    if (schedule->ii != last_ii) {
      // The time solver escalates II on its own when an II's schedules are
      // exhausted; the new II's first schedule gets the full search effort.
      uninformative_at_current_ii = 0;
      narrow_refutations_at_current_ii = 0;
      refuted_at_current_ii = false;
      probed_at_current_ii = false;
      budget = base_budget;
      last_ii = schedule->ii;
    }

    std::vector<int> labels(static_cast<std::size_t>(dfg.num_nodes()));
    for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
      labels[static_cast<std::size_t>(v)] = schedule->label(v);
    }
    phase.restart();
    SpaceOptions space_options = options_.space;
    if (options_.adaptive_space_budget) {
      space_options.max_backtracks = budget;
    } else if (uninformative_at_current_ii +
                       narrow_refutations_at_current_ii >
                   0 &&
               space_options.max_backtracks != 0) {
      // Historical flat policy: the first schedule at an II gets the full
      // search effort, retries a quarter.
      space_options.max_backtracks =
          std::max<std::uint64_t>(space_options.max_backtracks / 4, 4096);
    }
    const SpaceResult space = find_monomorphism(
        dfg, arch, labels, schedule->ii, space_options, deadline);
    result.space_phase_s += phase.elapsed_s();
    result.space_backjumps += space.backjumps;
    result.last_space = space;

    if (space.found) {
      result.success = true;
      result.ii = schedule->ii;
      result.mapping = Mapping(schedule->ii, schedule->time, space.pe);
      // The decoupling invariant: every returned mapping is valid.
      const auto violations =
          validate_mapping(dfg, arch, result.mapping, options_.space.model);
      MONOMAP_ASSERT_MSG(violations.empty(),
                         "mapper produced invalid mapping: "
                             << violations.front().what);
      break;
    }
    if (space.deadline_expired) {
      result.timed_out = true;
      result.failure_reason = "space search hit the deadline";
      break;
    }
    // No monomorphism for this labelling (or the backtrack budget decided
    // to stop looking): block it and retry. A complete refutation carries
    // a conflict explanation — a node subset that can never co-occupy
    // these slots — fed back as a time-phase nogood so the time search
    // skips every schedule repeating those placements, not just this
    // label vector. Truncated searches learned nothing; only they count
    // toward giving the II up, and the adaptive budget decides how much
    // to spend on the next one from how this one died.
    if (!space.timed_out && !space.conflict_nodes.empty()) {
      time_solver.add_space_nogood(*schedule, space.conflict_nodes);
    }
    const bool narrow_conflict =
        !space.timed_out &&
        static_cast<int>(space.conflict_nodes.size()) * 2 <=
            dfg.num_nodes();
    if (space.truncated) {
      ++result.space_truncated;
      ++uninformative_at_current_ii;
    } else {
      ++result.space_exhausted;
      refuted_at_current_ii = true;
      if (narrow_conflict) {
        ++narrow_refutations_at_current_ii;
      } else {
        ++uninformative_at_current_ii;
      }
    }
    if (options_.adaptive_space_budget && base_budget != 0) {
      const double retreat_fraction =
          dfg.num_nodes() > 0
              ? static_cast<double>(space.shallowest_retreat) /
                    dfg.num_nodes()
              : 1.0;
      if (space.truncated &&
          retreat_fraction >= options_.near_miss_depth_fraction) {
        // Near-miss: every conflict so far stayed confined near the
        // leaves — the shallow decisions were never implicated, so a
        // deeper look may finish the job.
        const std::uint64_t cap =
            base_budget *
            std::max<std::uint64_t>(options_.max_space_budget_boost, 1);
        if (budget < cap) {
          budget = std::min(budget * 2, cap);
          ++result.budget_extensions;
        }
      } else if (narrow_conflict) {
        // Narrow refutation: the conflict channel is pruning whole
        // schedule families — restore full effort for the next family.
        budget = base_budget;
      } else {
        // Shallow truncation or wide refutation: the failure implicates
        // the earliest placements (or all of them) — this schedule family
        // dies early and wide, so stop paying full price to re-learn
        // that. The default divisor of 2 is deliberately cautious: it
        // keeps mid-sized probes alive for schedules that are placeable
        // but need some search (with 8 retries the budget reaches ~1% of
        // base, not the floor); raise space_budget_shrink_divisor to kill
        // dead-II mills faster.
        const std::uint64_t floor =
            std::min(options_.min_space_backtracks, base_budget);
        const std::uint64_t divisor =
            std::max<std::uint64_t>(options_.space_budget_shrink_divisor, 2);
        if (budget / divisor >= floor) {
          budget /= divisor;
          ++result.budget_shrinks;
        } else if (budget > floor) {
          budget = floor;
          ++result.budget_shrinks;
        }
      }
    }
    MONOMAP_DEBUG("space failed at II="
                  << schedule->ii << " (" << space.failure_reason << ") in "
                  << space.seconds << "s, " << space.backtracks
                  << " backtracks, depth " << space.shallowest_retreat << ".."
                  << space.max_depth << "/" << dfg.num_nodes()
                  << ", conflict " << space.conflict_nodes.size()
                  << " nodes; uninformative " << uninformative_at_current_ii
                  << ", narrow " << narrow_refutations_at_current_ii
                  << ", next budget " << budget);
    const bool out_of_retries =
        options_.max_space_retries_per_ii > 0 &&
        uninformative_at_current_ii >= options_.max_space_retries_per_ii;
    const bool out_of_refutations =
        options_.max_space_refutations_per_ii > 0 &&
        narrow_refutations_at_current_ii >=
            options_.max_space_refutations_per_ii;
    if (out_of_retries || out_of_refutations) {
      if (out_of_retries && !out_of_refutations &&
          options_.last_chance_probe && options_.adaptive_space_budget &&
          !probed_at_current_ii && !refuted_at_current_ii &&
          base_budget != 0 && budget < base_budget) {
        // Every failure here was a truncation and the budget had shrunk:
        // the II's feasibility is genuinely unknown and the last few
        // schedules were starved. One full-budget schedule before giving
        // the II up — this is what keeps cfd on 5x5 at II 6 instead of
        // drifting to 8 when the shrink sequence outruns the placeable
        // schedule.
        probed_at_current_ii = true;
        budget = base_budget;
        ++result.budget_probes;
        MONOMAP_DEBUG("last-chance probe at II=" << schedule->ii);
        continue;
      }
      uninformative_at_current_ii = 0;
      narrow_refutations_at_current_ii = 0;
      refuted_at_current_ii = false;
      probed_at_current_ii = false;
      budget = base_budget;
      phase.restart();
      const bool more = time_solver.skip_to_next_ii();
      result.time_phase_s += phase.elapsed_s();
      if (!more) {
        result.failure_reason = "space search failed for every II up to max";
        break;
      }
      MONOMAP_DEBUG("escalating to II=" << time_solver.current_ii());
    }
  }
  result.time_stats = time_solver.stats();
  result.total_s = result.time_phase_s + result.space_phase_s;
  return result;
}

std::vector<SpaceOptions> default_portfolio_configs(const SpaceOptions& base) {
  // Diverse variable orders first (they explore genuinely different trees),
  // then a no-symmetry variant: on rare instances the canonical-octant
  // restriction steers the first placement away from the only easy region.
  std::vector<SpaceOptions> configs;
  for (const SpaceOrder order :
       {SpaceOrder::kDynamicMrv, SpaceOrder::kConnectivity,
        SpaceOrder::kDegree}) {
    SpaceOptions c = base;
    c.order = order;
    configs.push_back(c);
  }
  SpaceOptions no_sym = base;
  no_sym.order = SpaceOrder::kDynamicMrv;
  no_sym.symmetry_breaking = false;
  configs.push_back(no_sym);
  return configs;
}

MapResult DecoupledMapper::map_portfolio(const Dfg& dfg, const CgraArch& arch,
                                         const PortfolioOptions& portfolio) const {
  const std::vector<SpaceOptions> configs =
      portfolio.configs.empty() ? default_portfolio_configs(options_.space)
                                : portfolio.configs;
  const int num_configs = static_cast<int>(configs.size());
  MONOMAP_ASSERT(num_configs > 0);

  CancelToken winner_found;
  // One shared budget for the whole race: copies of `base` share the same
  // start instant and all observe the first-win token.
  const Deadline base(options_.timeout_s > 0
                          ? options_.timeout_s
                          : std::numeric_limits<double>::infinity(),
                      &winner_found);

  std::vector<MapResult> results(static_cast<std::size_t>(num_configs));
  auto run_config = [&](int index) {
    // A win (or expiry) skips the configurations still waiting for a
    // thread; in sequential mode this is the early exit.
    if (base.expired()) return;
    DecoupledMapperOptions opt = options_;
    opt.space = configs[static_cast<std::size_t>(index)];
    MapResult r = DecoupledMapper(opt).map(dfg, arch, base);
    r.portfolio_config = index;
    // Only a win ends the race. A failure is not definitive even with
    // timed_out == false: the mapper truncates per-schedule space searches
    // with backtrack budgets (without flagging the overall result), so a
    // configuration with a different variable order may still succeed.
    if (r.success) {
      winner_found.cancel();
    }
    results[static_cast<std::size_t>(index)] = std::move(r);
  };
  parallel_for_indices(num_configs, portfolio.num_threads, run_config);

  // First-win: lowest-index success (in the threaded race every loser was
  // cancelled moments after the winner finished, so any success is "the"
  // winner up to scheduling noise; picking the lowest index keeps the
  // reduction deterministic given the same set of successes).
  for (MapResult& r : results) {
    if (r.success) return std::move(r);
  }
  // All failed: prefer a definitive exhaustion over a cancelled/timed-out
  // racer, else fall back to the first configuration's result.
  for (MapResult& r : results) {
    if (r.portfolio_config >= 0 && !r.timed_out &&
        !r.failure_reason.empty()) {
      return std::move(r);
    }
  }
  for (MapResult& r : results) {
    if (r.portfolio_config >= 0) return std::move(r);
  }
  MapResult none;
  none.failure_reason = "portfolio: no configuration ran before the deadline";
  none.timed_out = true;
  return none;
}

std::vector<MapResult> DecoupledMapper::map_batch(
    const std::vector<const Dfg*>& dfgs, const CgraArch& arch,
    int num_threads) const {
  // One budget for the whole batch. Historically every item silently got
  // its own full options_.timeout_s, so a batch could run items * timeout.
  const Deadline deadline = options_.timeout_s > 0
                                ? Deadline(options_.timeout_s)
                                : Deadline::unlimited();
  return map_batch(dfgs, arch, deadline, num_threads);
}

std::vector<MapResult> DecoupledMapper::map_batch(
    const std::vector<const Dfg*>& dfgs, const CgraArch& arch,
    const Deadline& deadline, int num_threads) const {
  std::vector<MapResult> results(dfgs.size());
  parallel_for_indices(
      static_cast<int>(dfgs.size()), num_threads, [&](int i) {
        results[static_cast<std::size_t>(i)] =
            map(*dfgs[static_cast<std::size_t>(i)], arch, deadline);
      });
  return results;
}

}  // namespace monomap
