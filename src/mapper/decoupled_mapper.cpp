#include "mapper/decoupled_mapper.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "sched/mii.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/resource.hpp"
#include "support/stopwatch.hpp"

namespace monomap {

/// Cross-II state threaded through one speculative attempt's mapping loop:
/// the shared store, this attempt's II, and the local certificate snapshot
/// the schedule prefilter scans.
struct DecoupledMapper::CrossIiContext {
  CrossIiNogoodStore* store = nullptr;
  int attempt_ii = 0;
  std::size_t cursor = 0;                // drain position in the store
  std::vector<SlotPartitionCert> certs;  // local snapshot for the prefilter
};

namespace {

/// Derive the structured verdict from the result flags (precedence:
/// feasible > degraded > cancelled > memory > fault > deadline > refuted —
/// cancellation never degrades) and publish the sound II interval.
/// Idempotent; entry points re-run it after adding governor telemetry.
void finalize_outcome(MapResult& r) {
  if (r.success) {
    r.outcome = r.degraded ? MapOutcome::kDegraded : MapOutcome::kFeasible;
  } else if (r.cancelled) {
    r.outcome = MapOutcome::kCancelled;
  } else if (r.memory_out) {
    r.outcome = MapOutcome::kMemory;
  } else if (r.faulted) {
    r.outcome = MapOutcome::kFault;
  } else if (r.timed_out) {
    r.outcome = MapOutcome::kDeadline;
  } else {
    r.outcome = MapOutcome::kRefuted;
  }
  r.ii_lo = std::max(1, r.ii_refuted_up_to + 1);
  r.ii_hi = r.success ? r.ii : 0;
}

/// Fold one resolved attempt's effort counters into an aggregate. Result
/// fields that identify the outcome (success, ii, mapping, failure_reason,
/// last_space, final_ii, learnt_retained) stay the receiver's.
void merge_attempt_counters(MapResult& into, const MapResult& from) {
  into.time_phase_s += from.time_phase_s;
  into.space_phase_s += from.space_phase_s;
  into.schedules_tried += from.schedules_tried;
  into.space_truncated += from.space_truncated;
  into.space_exhausted += from.space_exhausted;
  into.space_backjumps += from.space_backjumps;
  into.budget_extensions += from.budget_extensions;
  into.budget_shrinks += from.budget_shrinks;
  into.budget_probes += from.budget_probes;
  into.speculative_hits += from.speculative_hits;
  into.nogoods_lifted_cross_ii += from.nogoods_lifted_cross_ii;
  into.fault_retries += from.fault_retries;
  into.mem_sheds += from.mem_sheds;
  into.mem_peak_bytes = std::max(into.mem_peak_bytes, from.mem_peak_bytes);
  TimeSolverStats& t = into.time_stats;
  const TimeSolverStats& f = from.time_stats;
  t.instances_built += f.instances_built;
  t.sat_calls += f.sat_calls;
  t.solutions_yielded += f.solutions_yielded;
  t.sessions_created += f.sessions_created;
  t.horizon_extensions += f.horizon_extensions;
  t.assumptions_used += f.assumptions_used;
  t.nogoods_added += f.nogoods_added;
  t.narrow_nogoods += f.narrow_nogoods;
  t.nogoods_lifted += f.nogoods_lifted;
  t.nogoods_deduped += f.nogoods_deduped;
  t.nogoods_lifted_cross_ii += f.nogoods_lifted_cross_ii;
}

/// Create this request's governor when a budget is configured and no outer
/// scope already bound one (nested calls — the anytime probe, portfolio
/// racers on the caller's thread — inherit the outer request's budget).
std::unique_ptr<ResourceGovernor> make_request_governor(
    std::size_t memory_budget_mb) {
  if (GovernorScope::current() != nullptr || memory_budget_mb == 0) {
    return nullptr;
  }
  return std::make_unique<ResourceGovernor>(memory_budget_mb << 20);
}

/// Fold governor telemetry into the result and backstop the memory
/// classification: a tripped governor on a non-success is a memory
/// outcome even when the trip surfaced through a generic timeout path.
void absorb_governor(MapResult& r, const ResourceGovernor* gov) {
  if (gov == nullptr) return;
  r.mem_peak_bytes = std::max(r.mem_peak_bytes, gov->peak());
  r.mem_sheds += gov->sheds();
  if (gov->tripped()) {
    if (!r.success && !r.cancelled) r.memory_out = true;
    r.causes.push_back({"governor", gov->trip_reason()});
  }
}

}  // namespace

MapResult DecoupledMapper::map(const Dfg& dfg, const CgraArch& arch) const {
  const Deadline deadline = options_.timeout_s > 0
                                ? Deadline(options_.timeout_s)
                                : Deadline::unlimited();
  return map(dfg, arch, deadline);
}

MapResult DecoupledMapper::map(const Dfg& dfg, const CgraArch& arch,
                               const Deadline& deadline) const {
  std::unique_ptr<ResourceGovernor> owned_gov =
      make_request_governor(options_.memory_budget_mb);
  const GovernorScope scope(owned_gov.get());
  ResourceGovernor* gov = GovernorScope::current();

  // Fault containment: an injected fault (or allocation failure) escaping
  // the walk abandons that attempt's state entirely — solvers may be
  // mid-search — and retries from scratch after a bounded backoff.
  // AssertionError is NOT caught: an invariant violation is a bug, not a
  // fault to retry.
  MapResult result;
  int retries = 0;
  for (;;) {
    bool retryable = false;
    try {
      result = map_sequential(dfg, arch, deadline);
      result.fault_retries += retries;
      break;
    } catch (const fault::FaultInjectedError& e) {
      result = MapResult{};
      result.faulted = true;
      result.timed_out = true;
      result.failure_reason = std::string("injected fault: ") + e.what();
      result.causes.push_back({e.site(), "injected fault"});
      retryable = true;
    } catch (const std::bad_alloc&) {
      result = MapResult{};
      result.memory_out = true;
      result.timed_out = true;
      result.failure_reason = "allocation failure";
      result.causes.push_back({"alloc", "allocation failure"});
      retryable = true;
    }
    if (!retryable || retries >= options_.max_fault_retries ||
        !fault::backoff_sleep(deadline, retries)) {
      result.fault_retries = retries;
      result.cancelled = deadline.cancel_fired();
      break;
    }
    ++retries;
  }
  absorb_governor(result, gov);
  finalize_outcome(result);
  return result;
}

MapResult DecoupledMapper::map_walk(const Dfg& dfg, const CgraArch& arch,
                                    const Deadline& deadline,
                                    const TimeSolverOptions& time_opts) const {
  MapResult result;
  TimeSolverOptions time_options = time_opts;
  if (options_.space.model == MrrgModel::kConsecutiveOnly) {
    // Restricted interconnect: keep the time search consistent with the
    // space model, or every schedule with a long slot span would be
    // rejected in space.
    time_options.constraints.consecutive_slots = true;
  }
  TimeSolver time_solver(dfg, arch, time_options);
  result.mii = time_solver.mii();
  run_mapping_loop(dfg, arch, deadline, time_solver, nullptr, result);
  result.time_stats = time_solver.stats();
  result.total_s = result.time_phase_s + result.space_phase_s;
  return result;
}

MapResult DecoupledMapper::map_sequential(const Dfg& dfg, const CgraArch& arch,
                                          const Deadline& deadline) const {
  if (!options_.anytime) {
    return map_walk(dfg, arch, deadline, options_.time);
  }
  // Anytime mode: secure the fallback first. At the automatic ceiling
  // (max(mII, #nodes)) a fully sequential schedule always satisfies
  // capacity and connectivity, so the probe is cheap and near-certain;
  // a user-configured max_ii is probed instead when set.
  const MiiBreakdown mii = compute_mii(dfg, arch);
  const int probe_ii = options_.time.max_ii > 0
                           ? options_.time.max_ii
                           : std::max(mii.mii(), std::max(1, dfg.num_nodes()));
  MapResult probe = map_at_ii(dfg, arch, probe_ii, deadline);
  if (!probe.success) {
    // No safety net to degrade onto — fall back to the plain walk (the
    // probe's effort is merged so telemetry still accounts for it).
    MapResult result = map_walk(dfg, arch, deadline, options_.time);
    merge_attempt_counters(result, probe);
    return result;
  }
  if (probe_ii <= mii.mii()) {
    // The ceiling IS the floor: the probe is provably optimal.
    probe.ii_refuted_up_to = mii.mii() - 1;
    return probe;
  }
  TimeSolverOptions walk_time = options_.time;
  walk_time.max_ii = probe_ii - 1;
  MapResult walk = map_walk(dfg, arch, deadline, walk_time);
  if (walk.success) {
    merge_attempt_counters(walk, probe);
    return walk;
  }
  if (walk.cancelled) {
    // Cancellation never degrades: the caller asked this run to stop
    // producing, not for its best effort so far.
    merge_attempt_counters(walk, probe);
    return walk;
  }
  // The capped walk ended without a better mapping. If it soundly refuted
  // everything below the probe, the probe is the proven optimum; otherwise
  // return it marked degraded with the sound interval the walk did
  // establish.
  MapResult result = std::move(probe);
  merge_attempt_counters(result, walk);
  result.ii_refuted_up_to = walk.ii_refuted_up_to;
  if (walk.ii_refuted_up_to >= probe_ii - 1) {
    return result;  // kFeasible, interval collapses to [probe_ii, probe_ii]
  }
  result.degraded = true;
  result.timed_out = walk.timed_out;
  result.memory_out = walk.memory_out;
  result.faulted = walk.faulted;
  result.failure_reason = walk.failure_reason;
  result.causes = walk.causes;
  result.causes.push_back(
      {"anytime", "walk below the held mapping was cut short"});
  return result;
}

MapResult DecoupledMapper::map_at_ii(const Dfg& dfg, const CgraArch& arch,
                                     int ii, const Deadline& deadline,
                                     CrossIiNogoodStore* store) const {
  MapResult result;
  TimeSolverOptions time_options = options_.time;
  if (options_.space.model == MrrgModel::kConsecutiveOnly) {
    time_options.constraints.consecutive_slots = true;
  }
  // Pin the time search to exactly this II. (An ii below mII comes back
  // refuted immediately: the solver clamps its start to mII, which then
  // exceeds max_ii — correct, since no schedule exists there.)
  time_options.min_ii = ii;
  time_options.max_ii = ii;
  TimeSolver time_solver(dfg, arch, time_options);
  result.mii = time_solver.mii();
  CrossIiContext ctx;
  ctx.store = store;
  ctx.attempt_ii = ii;
  run_mapping_loop(dfg, arch, deadline, time_solver,
                   store != nullptr ? &ctx : nullptr, result);
  result.time_stats = time_solver.stats();
  result.total_s = result.time_phase_s + result.space_phase_s;
  finalize_outcome(result);
  return result;
}

MapResult DecoupledMapper::map_warm(const Dfg& dfg, const CgraArch& arch,
                                    const Deadline& deadline,
                                    CrossIiNogoodStore* store,
                                    int refuted_floor) const {
  std::unique_ptr<ResourceGovernor> owned_gov =
      make_request_governor(options_.memory_budget_mb);
  const GovernorScope scope(owned_gov.get());
  ResourceGovernor* gov = GovernorScope::current();

  MapResult aggregate;   // counters of the non-final attempts
  MapResult final_result;
  int floor = std::max(0, refuted_floor);
  int ii = floor + 1;
  int cap = options_.time.max_ii;  // 0 = unknown until the first attempt
  int retries = 0;
  bool first = true;
  for (;;) {
    MapResult attempt;
    bool retryable = false;
    try {
      DecoupledMapperOptions per = options_;
      if (options_.max_schedules > 0) {
        // The schedule budget spans the whole walk, like map()'s.
        per.max_schedules =
            options_.max_schedules - aggregate.schedules_tried;
        if (per.max_schedules <= 0) {
          final_result.timed_out = true;
          final_result.failure_reason = "schedule budget exhausted";
          final_result.causes.push_back(
              {"budget", "schedule budget exhausted"});
          break;
        }
      }
      attempt = DecoupledMapper(per).map_at_ii(dfg, arch, ii, deadline,
                                               store);
    } catch (const fault::FaultInjectedError& e) {
      attempt = MapResult{};
      attempt.faulted = true;
      attempt.timed_out = true;
      attempt.failure_reason = std::string("injected fault: ") + e.what();
      attempt.causes.push_back({e.site(), "injected fault"});
      retryable = true;
    } catch (const std::bad_alloc&) {
      attempt = MapResult{};
      attempt.memory_out = true;
      attempt.timed_out = true;
      attempt.failure_reason = "allocation failure";
      attempt.causes.push_back({"alloc", "allocation failure"});
      retryable = true;
    }
    if (retryable) {
      if (retries >= options_.max_fault_retries ||
          !fault::backoff_sleep(deadline, retries)) {
        attempt.fault_retries = retries;
        attempt.cancelled = deadline.cancel_fired();
        final_result = std::move(attempt);
        break;
      }
      ++retries;
      continue;  // retry the same II
    }
    if (first) {
      first = false;
      final_result.mii = attempt.mii;
      if (cap <= 0) {
        cap = std::max(attempt.mii.mii(), std::max(1, dfg.num_nodes()));
      }
    }
    const int mii = attempt.mii.mii();
    if (attempt.success || attempt.timed_out) {
      const MiiBreakdown walk_mii = final_result.mii;
      final_result = std::move(attempt);
      final_result.mii = walk_mii;
      break;
    }
    // Refuted at this II. IIs below mII are refuted by the bound itself,
    // so a pinned attempt below it closes the whole gap in one step.
    const int closed_up_to = mii > ii ? mii - 1 : ii;
    if (attempt.sound_refutation && ii == floor + 1) {
      floor = closed_up_to;
    }
    const int next_ii = std::max(ii + 1, mii);
    if (next_ii > cap) {
      const MiiBreakdown walk_mii = final_result.mii;
      final_result = std::move(attempt);
      final_result.mii = walk_mii;
      final_result.success = false;
      final_result.timed_out = false;
      final_result.failure_reason = "warm walk exhausted the II range";
      break;
    }
    merge_attempt_counters(aggregate, attempt);
    ii = next_ii;
  }
  merge_attempt_counters(final_result, aggregate);
  final_result.fault_retries += retries;
  final_result.ii_refuted_up_to = floor;
  absorb_governor(final_result, gov);
  finalize_outcome(final_result);
  return final_result;
}

void DecoupledMapper::run_mapping_loop(const Dfg& dfg, const CgraArch& arch,
                                       const Deadline& deadline,
                                       TimeSolver& time_solver,
                                       CrossIiContext* ctx,
                                       MapResult& result) const {
  Stopwatch phase;
  const std::uint64_t base_budget = options_.space.max_backtracks;
  std::uint64_t budget = base_budget;
  // Failures at the current II, by what they taught us: uninformative ones
  // (truncations, and refutations whose conflict set spans most of the
  // DFG — their nogood prunes almost nothing) burn the II's retry budget;
  // narrow refutations are progress (each prunes a whole schedule family)
  // and only a generous separate cap bounds them.
  int uninformative_at_current_ii = 0;
  int narrow_refutations_at_current_ii = 0;
  bool refuted_at_current_ii = false;  // any complete refutation at this II
  bool probed_at_current_ii = false;   // last-chance probe already granted
  int last_ii = -1;
  // Sound refutation accounting. An II counts as soundly refuted only when
  // its time search exhausted naturally (never via skip_to_next_ii — the
  // retry caps are heuristics) AND no space search at it was truncated:
  // every schedule was either fully refuted in space or pruned by a sound
  // nogood/prefilter certificate. The run value advances contiguously from
  // the solver's starting II, so the reported interval never has holes.
  const int start_ii = time_solver.current_ii();
  int run_refuted_up_to = start_ii - 1;
  bool truncated_at_current_ii = false;
  bool skipped_current_ii = false;
  const auto note_ii_closed = [&](int closed_ii) {
    if (closed_ii >= 0 && !skipped_current_ii && !truncated_at_current_ii &&
        closed_ii == run_refuted_up_to + 1) {
      run_refuted_up_to = closed_ii;
    }
    truncated_at_current_ii = false;
    skipped_current_ii = false;
  };
  for (;;) {
    if (options_.max_schedules > 0 &&
        result.schedules_tried >= options_.max_schedules) {
      // Deterministic work budget: unlike a wall deadline this trips at a
      // bit-reproducible point, so degraded anytime results are replayable.
      result.timed_out = true;
      result.failure_reason = "schedule budget exhausted";
      result.causes.push_back({"budget", "schedule budget exhausted"});
      break;
    }
    if (ctx != nullptr) {
      // Pull certificates the other racing IIs learned since the last
      // look: instantiate their cyclic-rotation clauses into this II's
      // solver (warm start — see CrossIiNogoodStore) and extend the local
      // snapshot the prefilter below scans. Own-II certificates skip the
      // clause step: add_space_nogood already lifted their rotations here.
      std::vector<SlotPartitionCert> fresh;
      ctx->store->drain(&ctx->cursor, &fresh);
      for (SlotPartitionCert& cert : fresh) {
        if (cert.source_ii != ctx->attempt_ii) {
          for (auto& rotation :
               instantiate_rotations(cert, ctx->attempt_ii)) {
            if (time_solver.add_cross_ii_nogood(std::move(rotation))) {
              ++result.nogoods_lifted_cross_ii;
            }
          }
        }
        ctx->certs.push_back(std::move(cert));
      }
    }
    phase.restart();
    const std::optional<TimeSolution> schedule = time_solver.next(deadline);
    result.time_phase_s += phase.elapsed_s();
    if (!schedule.has_value()) {
      result.timed_out = time_solver.timed_out();
      result.cancelled = result.timed_out && deadline.cancel_fired();
      if (result.timed_out && time_solver.memory_out()) {
        result.memory_out = true;
        result.failure_reason = "time search exceeded the memory budget";
        result.causes.push_back({"time", "memory budget exceeded"});
      } else {
        result.failure_reason = result.timed_out
                                    ? "time search hit the deadline"
                                    : "time search exhausted up to max II";
      }
      if (!result.timed_out) {
        // Natural exhaustion of the whole range: close the last II the
        // solver visited, and if the run stayed contiguous to it — or the
        // range was refuted purely in time (last_ii == -1, not one
        // schedule yielded) — the full range up to max_ii is sound.
        note_ii_closed(last_ii);
        if (last_ii == -1 || run_refuted_up_to == last_ii) {
          run_refuted_up_to = time_solver.max_ii();
        }
        result.causes.push_back({"time", "search space exhausted"});
      }
      break;
    }
    ++result.schedules_tried;
    if (schedule->ii != last_ii) {
      // The time solver escalates II on its own when an II's schedules are
      // exhausted; the new II's first schedule gets the full search effort.
      // The II it left behind is closed: fold it into the sound run.
      note_ii_closed(last_ii);
      uninformative_at_current_ii = 0;
      narrow_refutations_at_current_ii = 0;
      refuted_at_current_ii = false;
      probed_at_current_ii = false;
      budget = base_budget;
      last_ii = schedule->ii;
    }

    std::vector<int> labels(static_cast<std::size_t>(dfg.num_nodes()));
    for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
      labels[static_cast<std::size_t>(v)] = schedule->label(v);
    }
    phase.restart();
    // Cross-II certificate prefilter: a schedule realising (or coarsening)
    // a stored refutation partition is spatially infeasible — synthesise
    // the refutation another II already paid for instead of searching.
    // The synthetic SpaceResult then flows through the exact policy path a
    // real refutation takes (nogood feedback, narrow/wide classification,
    // budget adaptation, retry caps).
    bool prefilter_hit = false;
    SpaceResult space;
    if (ctx != nullptr) {
      for (const SlotPartitionCert& cert : ctx->certs) {
        if (cert_hits_labels(cert, labels)) {
          prefilter_hit = true;
          ++result.speculative_hits;
          space.found = false;
          space.failure_reason = "cross-II certificate prefilter";
          space.shallowest_retreat = 0;
          for (const auto& block : cert.blocks) {
            space.conflict_nodes.insert(space.conflict_nodes.end(),
                                        block.begin(), block.end());
          }
          break;
        }
      }
    }
    if (!prefilter_hit) {
      SpaceOptions space_options = options_.space;
      if (options_.adaptive_space_budget) {
        space_options.max_backtracks = budget;
      } else if (uninformative_at_current_ii +
                         narrow_refutations_at_current_ii >
                     0 &&
                 space_options.max_backtracks != 0) {
        // Historical flat policy: the first schedule at an II gets the full
        // search effort, retries a quarter.
        space_options.max_backtracks =
            std::max<std::uint64_t>(space_options.max_backtracks / 4, 4096);
      }
      space = find_monomorphism(dfg, arch, labels, schedule->ii,
                                space_options, deadline);
    }
    result.space_phase_s += phase.elapsed_s();
    result.space_backjumps += space.backjumps;
    result.last_space = space;

    if (space.found) {
      result.success = true;
      result.ii = schedule->ii;
      result.mapping = Mapping(schedule->ii, schedule->time, space.pe);
      // The decoupling invariant: every returned mapping is valid.
      const auto violations =
          validate_mapping(dfg, arch, result.mapping, options_.space.model);
      MONOMAP_ASSERT_MSG(violations.empty(),
                         "mapper produced invalid mapping: "
                             << violations.front().what);
      break;
    }
    if (space.memory_out) {
      result.timed_out = true;
      result.memory_out = true;
      result.cancelled = deadline.cancel_fired();
      result.failure_reason = "space search exceeded the memory budget";
      result.causes.push_back({"space", "memory budget exceeded"});
      break;
    }
    if (space.deadline_expired) {
      result.timed_out = true;
      result.cancelled = deadline.cancel_fired();
      result.failure_reason = "space search hit the deadline";
      break;
    }
    // No monomorphism for this labelling (or the backtrack budget decided
    // to stop looking): block it and retry. A complete refutation carries
    // a conflict explanation — a node subset that can never co-occupy
    // these slots — fed back as a time-phase nogood so the time search
    // skips every schedule repeating those placements, not just this
    // label vector. Truncated searches learned nothing; only they count
    // toward giving the II up, and the adaptive budget decides how much
    // to spend on the next one from how this one died.
    if (!space.timed_out && !space.conflict_nodes.empty()) {
      time_solver.add_space_nogood(*schedule, space.conflict_nodes);
      if (ctx != nullptr && !prefilter_hit) {
        // Publish the refutation for the other racing IIs (the prefilter's
        // own hits are already in the store — they came from it).
        ctx->store->add(ctx->attempt_ii, space.conflict_nodes, labels);
      }
    }
    const bool narrow_conflict =
        !space.timed_out &&
        static_cast<int>(space.conflict_nodes.size()) * 2 <=
            dfg.num_nodes();
    if (space.truncated) {
      ++result.space_truncated;
      ++uninformative_at_current_ii;
      // A truncated space search proves nothing about this II: it can
      // never enter the sound refuted interval.
      truncated_at_current_ii = true;
    } else {
      ++result.space_exhausted;
      refuted_at_current_ii = true;
      if (narrow_conflict) {
        ++narrow_refutations_at_current_ii;
      } else {
        ++uninformative_at_current_ii;
      }
    }
    if (options_.adaptive_space_budget && base_budget != 0) {
      const double retreat_fraction =
          dfg.num_nodes() > 0
              ? static_cast<double>(space.shallowest_retreat) /
                    dfg.num_nodes()
              : 1.0;
      if (space.truncated &&
          retreat_fraction >= options_.near_miss_depth_fraction) {
        // Near-miss: every conflict so far stayed confined near the
        // leaves — the shallow decisions were never implicated, so a
        // deeper look may finish the job.
        const std::uint64_t cap =
            base_budget *
            std::max<std::uint64_t>(options_.max_space_budget_boost, 1);
        if (budget < cap) {
          budget = std::min(budget * 2, cap);
          ++result.budget_extensions;
        }
      } else if (narrow_conflict) {
        // Narrow refutation: the conflict channel is pruning whole
        // schedule families — restore full effort for the next family.
        budget = base_budget;
      } else {
        // Shallow truncation or wide refutation: the failure implicates
        // the earliest placements (or all of them) — this schedule family
        // dies early and wide, so stop paying full price to re-learn
        // that. The default divisor of 2 is deliberately cautious: it
        // keeps mid-sized probes alive for schedules that are placeable
        // but need some search (with 8 retries the budget reaches ~1% of
        // base, not the floor); raise space_budget_shrink_divisor to kill
        // dead-II mills faster.
        const std::uint64_t floor =
            std::min(options_.min_space_backtracks, base_budget);
        const std::uint64_t divisor =
            std::max<std::uint64_t>(options_.space_budget_shrink_divisor, 2);
        if (budget / divisor >= floor) {
          budget /= divisor;
          ++result.budget_shrinks;
        } else if (budget > floor) {
          budget = floor;
          ++result.budget_shrinks;
        }
      }
    }
    MONOMAP_DEBUG("space failed at II="
                  << schedule->ii << " (" << space.failure_reason << ") in "
                  << space.seconds << "s, " << space.backtracks
                  << " backtracks, depth " << space.shallowest_retreat << ".."
                  << space.max_depth << "/" << dfg.num_nodes()
                  << ", conflict " << space.conflict_nodes.size()
                  << " nodes; uninformative " << uninformative_at_current_ii
                  << ", narrow " << narrow_refutations_at_current_ii
                  << ", next budget " << budget);
    const bool out_of_retries =
        options_.max_space_retries_per_ii > 0 &&
        uninformative_at_current_ii >= options_.max_space_retries_per_ii;
    const bool out_of_refutations =
        options_.max_space_refutations_per_ii > 0 &&
        narrow_refutations_at_current_ii >=
            options_.max_space_refutations_per_ii;
    if (out_of_retries || out_of_refutations) {
      if (out_of_retries && !out_of_refutations &&
          options_.last_chance_probe && options_.adaptive_space_budget &&
          !probed_at_current_ii && !refuted_at_current_ii &&
          base_budget != 0 && budget < base_budget) {
        // Every failure here was a truncation and the budget had shrunk:
        // the II's feasibility is genuinely unknown and the last few
        // schedules were starved. One full-budget schedule before giving
        // the II up — this is what keeps cfd on 5x5 at II 6 instead of
        // drifting to 8 when the shrink sequence outruns the placeable
        // schedule.
        probed_at_current_ii = true;
        budget = base_budget;
        ++result.budget_probes;
        MONOMAP_DEBUG("last-chance probe at II=" << schedule->ii);
        continue;
      }
      uninformative_at_current_ii = 0;
      narrow_refutations_at_current_ii = 0;
      refuted_at_current_ii = false;
      probed_at_current_ii = false;
      budget = base_budget;
      // Giving an II up by retry-cap heuristic is NOT a refutation:
      // schedules at it may remain untried. Keep it out of the sound run.
      skipped_current_ii = true;
      phase.restart();
      const bool more = time_solver.skip_to_next_ii();
      result.time_phase_s += phase.elapsed_s();
      if (!more) {
        result.failure_reason = "space search failed for every II up to max";
        break;
      }
      MONOMAP_DEBUG("escalating to II=" << time_solver.current_ii());
    }
  }
  // Publish the sound interval. A pinned attempt starting above mII (the
  // speculative racers) cannot claim IIs below its own start refuted — it
  // never looked at them — so it only reports the universally-known
  // [1, mII) floor; its per-run verdict travels via sound_refutation.
  const int mii = result.mii.mii();
  result.sound_refutation = !result.success && !result.timed_out &&
                            run_refuted_up_to >= time_solver.max_ii();
  result.ii_refuted_up_to =
      (start_ii <= mii) ? run_refuted_up_to : mii - 1;
}

std::vector<SpaceOptions> default_portfolio_configs(const SpaceOptions& base) {
  // Diverse variable orders first (they explore genuinely different trees),
  // then a no-symmetry variant: on rare instances the canonical-octant
  // restriction steers the first placement away from the only easy region.
  std::vector<SpaceOptions> configs;
  for (const SpaceOrder order :
       {SpaceOrder::kDynamicMrv, SpaceOrder::kConnectivity,
        SpaceOrder::kDegree}) {
    SpaceOptions c = base;
    c.order = order;
    configs.push_back(c);
  }
  SpaceOptions no_sym = base;
  no_sym.order = SpaceOrder::kDynamicMrv;
  no_sym.symmetry_breaking = false;
  configs.push_back(no_sym);
  return configs;
}

MapResult DecoupledMapper::map_portfolio(const Dfg& dfg, const CgraArch& arch,
                                         const PortfolioOptions& portfolio) const {
  const std::vector<SpaceOptions> configs =
      portfolio.configs.empty() ? default_portfolio_configs(options_.space)
                                : portfolio.configs;
  const int num_configs = static_cast<int>(configs.size());
  MONOMAP_ASSERT(num_configs > 0);

  CancelToken winner_found;
  // One shared budget for the whole race: copies of `base` share the same
  // start instant and all observe the first-win token.
  const Deadline base(options_.timeout_s > 0
                          ? options_.timeout_s
                          : std::numeric_limits<double>::infinity(),
                      &winner_found);

  std::vector<MapResult> results(static_cast<std::size_t>(num_configs));
  auto run_config = [&](int index) {
    // A win (or expiry) skips the configurations still waiting for a
    // thread; in sequential mode this is the early exit.
    if (base.expired()) return;
    DecoupledMapperOptions opt = options_;
    opt.space = configs[static_cast<std::size_t>(index)];
    MapResult r = DecoupledMapper(opt).map(dfg, arch, base);
    r.portfolio_config = index;
    // Only a win ends the race. A failure is not definitive even with
    // timed_out == false: the mapper truncates per-schedule space searches
    // with backtrack budgets (without flagging the overall result), so a
    // configuration with a different variable order may still succeed.
    if (r.success) {
      winner_found.cancel();
    }
    results[static_cast<std::size_t>(index)] = std::move(r);
  };
  parallel_for_indices(num_configs, portfolio.num_threads, run_config);

  // First-win: lowest-index success (in the threaded race every loser was
  // cancelled moments after the winner finished, so any success is "the"
  // winner up to scheduling noise; picking the lowest index keeps the
  // reduction deterministic given the same set of successes).
  for (MapResult& r : results) {
    if (r.success) return std::move(r);
  }
  // All failed: prefer a definitive exhaustion over a cancelled/timed-out
  // racer, else fall back to the first configuration's result.
  for (MapResult& r : results) {
    if (r.portfolio_config >= 0 && !r.timed_out &&
        !r.failure_reason.empty()) {
      return std::move(r);
    }
  }
  for (MapResult& r : results) {
    if (r.portfolio_config >= 0) return std::move(r);
  }
  MapResult none;
  none.failure_reason = "portfolio: no configuration ran before the deadline";
  none.timed_out = true;
  return none;
}

namespace {

/// One speculative cross-II race: per-II pinned attempts on a shared
/// work-stealing pool, a frontier walking upward over refutations, and a
/// commit rule that only accepts a feasible II once every smaller II is
/// refuted (minimal-II optimality, agreement with sequential map()).
///
/// Completion-driven: no thread ever blocks waiting for an attempt. Each
/// attempt's tail (still on the worker) resolves its state under the run
/// mutex, advances the frontier, and launches whatever the window
/// [frontier, frontier + lookahead] is missing. The pool's wait_idle() is
/// therefore the natural barrier: when no tasks remain, every run has
/// committed.
class SpeculativeRun {
 public:
  struct Config {
    int start_ii = 1;   // mII — where the frontier starts
    int max_ii = 1;     // inclusive II ceiling (mirrors TimeSolver's rule)
    int lookahead = 2;  // IIs kept in flight beyond the frontier
    bool lift = false;  // cross-II certificate sharing (register persistence)
    bool anytime = false;       // degrade to the best held feasible mapping
    int max_fault_retries = 3;  // per-attempt injected-fault retry cap
  };

  SpeculativeRun(const DecoupledMapper& mapper, const Dfg& dfg,
                 const CgraArch& arch, const Deadline& base,
                 const Config& config, WorkStealingPool& pool,
                 MiiBreakdown mii, ResourceGovernor* gov)
      : mapper_(mapper),
        dfg_(dfg),
        arch_(arch),
        base_(base),
        config_(config),
        pool_(pool),
        mii_(std::move(mii)),
        gov_(gov),
        frontier_(config.start_ii),
        refuted_up_to_(config.start_ii - 1) {
    store_.set_governor(gov);
  }

  /// Launch the initial attempt window. Call once, before wait_idle().
  void start() {
    const std::lock_guard<std::mutex> lock(m_);
    if (frontier_ > config_.max_ii) {
      // mII already beyond the configured cap — same verdict the
      // sequential solver reaches without a single SAT call.
      MapResult none;
      none.failure_reason = "time search exhausted up to max II";
      commit_locked(std::move(none));
      return;
    }
    launch_locked();
  }

  /// The committed result. Valid after the pool drained; if a worker
  /// failure left the run uncommitted (its attempt's tail never ran), the
  /// accumulated effort is returned classified as a fault instead of
  /// asserting — batch siblings must not lose their results over it.
  MapResult take() {
    const std::lock_guard<std::mutex> lock(m_);
    if (!done_) {
      MapResult aborted = std::move(aggregate_);
      aborted.faulted = true;
      aborted.timed_out = true;
      aborted.failure_reason = "speculative run aborted by a worker failure";
      aborted.causes.push_back(
          {"speculative", "worker failed before the run committed"});
      aborted.ii_refuted_up_to = refuted_up_to_;
      commit_locked(std::move(aborted));
    }
    return std::move(final_);
  }

 private:
  struct Attempt {
    explicit Attempt(const CancelToken* parent) : token(parent) {}
    enum class State { kRunning, kFeasible, kRefuted, kTimedOut };
    CancelToken token;  // parented to the caller's token, if any
    MapResult result;
    State state = State::kRunning;
    bool cancelled_by_us = false;
  };

  // Fill the window [frontier, min(frontier + lookahead, max_ii)] with
  // running attempts; never above an already-feasible II. m_ held.
  void launch_locked() {
    if (done_) return;
    int cap = std::min(frontier_ + config_.lookahead, config_.max_ii);
    if (best_feasible_ >= 0) cap = std::min(cap, best_feasible_ - 1);
    for (int ii = frontier_; ii <= cap; ++ii) {
      if (attempts_.count(ii) != 0) continue;
      auto attempt = std::make_unique<Attempt>(base_.cancel_token());
      Attempt* a = attempt.get();
      attempts_.emplace(ii, std::move(attempt));
      pool_.submit([this, ii, a] { run_attempt(ii, a); });
    }
  }

  void run_attempt(int ii, Attempt* a) {
    // Pool workers are fresh threads: bind the request's governor so the
    // attempt's solvers charge the shared budget.
    const GovernorScope scope(gov_);
    MapResult r;
    if (a->token.cancelled()) {
      // Cancelled while still queued (a smaller II already won, or the
      // caller pulled the plug) — don't even build the solver.
      r.timed_out = true;
      r.cancelled = true;
      r.failure_reason = "cancelled before start";
    } else {
      // The attempt shares the run's wall budget (remaining as of launch —
      // both deadlines tick from the same start) and carries its own
      // cancel token so a smaller feasible II can cut it individually.
      // Injected faults and allocation failures abandon the attempt's
      // solvers and retry from scratch after a bounded backoff; a
      // permanent fault resolves the attempt as unresolved-at-deadline so
      // the frontier reports it instead of crashing the race.
      const Deadline deadline(base_.remaining_s(), &a->token);
      int retries = 0;
      for (;;) {
        bool retryable = false;
        try {
          r = mapper_.map_at_ii(dfg_, arch_, ii, deadline,
                                config_.lift ? &store_ : nullptr);
          r.fault_retries += retries;
          break;
        } catch (const fault::FaultInjectedError& e) {
          r = MapResult{};
          r.faulted = true;
          r.timed_out = true;
          r.failure_reason = std::string("injected fault: ") + e.what();
          r.causes.push_back({e.site(), "injected fault"});
          retryable = true;
        } catch (const std::bad_alloc&) {
          r = MapResult{};
          r.memory_out = true;
          r.timed_out = true;
          r.failure_reason = "allocation failure";
          r.causes.push_back({"alloc", "allocation failure"});
          retryable = true;
        }
        if (!retryable || retries >= config_.max_fault_retries ||
            !fault::backoff_sleep(deadline, retries)) {
          r.fault_retries = retries;
          r.cancelled = deadline.cancel_fired();
          break;
        }
        ++retries;
      }
    }

    const std::lock_guard<std::mutex> lock(m_);
    a->result = std::move(r);
    a->state = a->result.success     ? Attempt::State::kFeasible
               : a->result.timed_out ? Attempt::State::kTimedOut
                                     : Attempt::State::kRefuted;
    if (a->state == Attempt::State::kFeasible &&
        (best_feasible_ < 0 || ii < best_feasible_)) {
      best_feasible_ = ii;
      // Larger IIs can no longer win — cancel them; smaller ones keep
      // running, the commit rule still needs their refutations.
      for (auto& [other_ii, other] : attempts_) {
        if (other_ii > ii && other->state == Attempt::State::kRunning) {
          other->cancelled_by_us = true;
          other->token.cancel();
        }
      }
    }
    advance_locked();
  }

  // Walk the frontier over resolved attempts, commit when its verdict is
  // final, then refill the launch window. m_ held.
  void advance_locked() {
    while (!done_) {
      const auto it = attempts_.find(frontier_);
      if (it == attempts_.end() ||
          it->second->state == Attempt::State::kRunning) {
        break;
      }
      Attempt& a = *it->second;
      if (a.state == Attempt::State::kFeasible) {
        // Every II below the frontier was refuted — this is THE minimal
        // feasible II, same answer the sequential walk reaches.
        MapResult final_result = std::move(a.result);
        merge_attempt_counters(final_result, aggregate_);
        final_result.ii_refuted_up_to = refuted_up_to_;
        commit_locked(std::move(final_result));
        return;
      }
      if (a.state == Attempt::State::kTimedOut) {
        // The frontier is never cancelled by us (only IIs above a feasible
        // one are), so this is the shared wall budget or the caller's
        // token. Optimality below a held feasible II is unprovable now.
        if (config_.anytime && best_feasible_ >= 0 && !base_.cancel_fired()) {
          // Anytime contract: surrender optimality, not the mapping. The
          // best held feasible II ships marked degraded, with the sound
          // interval [refuted_up_to_ + 1, best_feasible_] and the
          // frontier's stop cause attached. (An explicit caller cancel
          // still returns nothing — cancellation never degrades.)
          const auto best = attempts_.find(best_feasible_);
          MONOMAP_ASSERT(best != attempts_.end());
          MapResult final_result = std::move(best->second->result);
          merge_attempt_counters(final_result, aggregate_);
          merge_attempt_counters(final_result, a.result);
          final_result.degraded = true;
          final_result.timed_out = a.result.timed_out;
          final_result.memory_out = a.result.memory_out;
          final_result.faulted = a.result.faulted;
          final_result.ii_refuted_up_to = refuted_up_to_;
          std::ostringstream note;
          note << "II=" << frontier_ << " unresolved ("
               << a.result.failure_reason << ")";
          final_result.causes.push_back({"speculative", note.str()});
          commit_locked(std::move(final_result));
          return;
        }
        // Strict mode: report the timeout rather than a possibly
        // non-minimal mapping.
        MapResult final_result = std::move(a.result);
        merge_attempt_counters(final_result, aggregate_);
        final_result.ii_refuted_up_to = refuted_up_to_;
        if (best_feasible_ >= 0) {
          std::ostringstream note;
          note << final_result.failure_reason << " (II=" << frontier_
               << " unresolved; a feasible mapping at II=" << best_feasible_
               << " was held back by the determinism rule)";
          final_result.failure_reason = note.str();
        }
        commit_locked(std::move(final_result));
        return;
      }
      // Refuted. A pinned attempt whose whole (single-II) range was
      // soundly refuted extends the contiguous sound interval.
      if (a.result.sound_refutation && it->first == refuted_up_to_ + 1) {
        refuted_up_to_ = it->first;
      }
      // The topmost II carries the exhaustion verdict itself.
      if (it->first >= config_.max_ii) {
        MapResult final_result = std::move(a.result);
        merge_attempt_counters(final_result, aggregate_);
        final_result.ii_refuted_up_to = refuted_up_to_;
        commit_locked(std::move(final_result));
        return;
      }
      merge_attempt_counters(aggregate_, a.result);
      ++frontier_;
    }
    launch_locked();
  }

  void commit_locked(MapResult final_result) {
    final_result.mii = mii_;
    final_result.total_s =
        final_result.time_phase_s + final_result.space_phase_s;
    finalize_outcome(final_result);
    for (auto& [ii, attempt] : attempts_) {
      if (attempt->state == Attempt::State::kRunning) {
        attempt->cancelled_by_us = true;
        attempt->token.cancel();
      }
    }
    final_ = std::move(final_result);
    done_ = true;
  }

  const DecoupledMapper& mapper_;
  const Dfg& dfg_;
  const CgraArch& arch_;
  const Deadline& base_;
  const Config config_;
  WorkStealingPool& pool_;
  const MiiBreakdown mii_;
  ResourceGovernor* gov_;  // request governor, rebound on each worker
  CrossIiNogoodStore store_;

  std::mutex m_;
  std::map<int, std::unique_ptr<Attempt>> attempts_;
  int frontier_;            // lowest unresolved II
  int best_feasible_ = -1;  // smallest II with a held feasible mapping
  // Largest II such that [start_ii, refuted_up_to_] is contiguously,
  // soundly refuted (pinned attempts report sound_refutation; heuristic
  // give-ups do not extend this).
  int refuted_up_to_;
  // Effort counters of the refuted IIs the frontier walked over, merged in
  // ascending II order (cancelled speculative losers above the final II
  // are deliberately excluded — they are wall-clock, not work the answer
  // needed).
  MapResult aggregate_;
  MapResult final_;
  bool done_ = false;
};

SpeculativeRun::Config speculative_config(const DecoupledMapperOptions& options,
                                          const Dfg& dfg, int lookahead,
                                          bool share_nogoods,
                                          const MiiBreakdown& mii) {
  SpeculativeRun::Config config;
  config.start_ii = mii.mii();
  // Same auto ceiling as TimeSolver: at II = #nodes a fully sequential
  // schedule always satisfies capacity and connectivity.
  config.max_ii = options.time.max_ii > 0
                      ? options.time.max_ii
                      : std::max(mii.mii(), std::max(1, dfg.num_nodes()));
  config.lookahead = std::max(lookahead, 0);
  config.lift = share_nogoods &&
                options.space.model == MrrgModel::kRegisterPersistence;
  config.anytime = options.anytime;
  config.max_fault_retries = options.max_fault_retries;
  return config;
}

// The II attempts are CPU-bound SAT/search work: workers beyond the
// machine's cores only timeslice against each other, turning speculation
// from free use of spare cores into a tax on the frontier attempt. Treat
// the requested thread count as a ceiling; on a small machine the race
// degenerates gracefully toward the sequential walk (queued attempts run
// frontier-first and a win cancels them before they start).
int clamp_pool_threads(int requested) {
  const int cores =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  if (requested <= 0) return cores;
  return std::min(requested, cores);
}

}  // namespace

MapResult DecoupledMapper::map_speculative(const Dfg& dfg,
                                           const CgraArch& arch,
                                           const SpeculativeOptions& spec) const {
  const Deadline deadline = options_.timeout_s > 0
                                ? Deadline(options_.timeout_s)
                                : Deadline::unlimited();
  return map_speculative(dfg, arch, deadline, spec);
}

MapResult DecoupledMapper::map_speculative(const Dfg& dfg,
                                           const CgraArch& arch,
                                           const Deadline& deadline,
                                           const SpeculativeOptions& spec) const {
  std::unique_ptr<ResourceGovernor> owned_gov =
      make_request_governor(options_.memory_budget_mb);
  const GovernorScope scope(owned_gov.get());
  ResourceGovernor* gov = GovernorScope::current();

  WorkStealingPool pool(clamp_pool_threads(spec.num_threads));
  MiiBreakdown mii = compute_mii(dfg, arch);
  const SpeculativeRun::Config config = speculative_config(
      options_, dfg, spec.lookahead, spec.share_nogoods, mii);
  SpeculativeRun run(*this, dfg, arch, deadline, config, pool,
                     std::move(mii), gov);
  run.start();
  const std::exception_ptr error = pool.wait_idle_collect();
  MapResult result = run.take();
  result.steals = pool.steals();
  if (error != nullptr) {
    // A worker died past its retry budget. Classify the known fault
    // classes onto the result (take() already salvaged the effort
    // counters); anything else — AssertionError above all — propagates.
    try {
      std::rethrow_exception(error);
    } catch (const fault::FaultInjectedError& e) {
      if (!result.success) {
        result.faulted = true;
        result.causes.push_back({e.site(), "injected fault"});
      }
    } catch (const std::bad_alloc&) {
      if (!result.success) {
        result.memory_out = true;
        result.causes.push_back({"alloc", "allocation failure"});
      }
    }
  }
  absorb_governor(result, gov);
  finalize_outcome(result);
  return result;
}

std::vector<MapResult> DecoupledMapper::map_batch(
    const std::vector<const Dfg*>& dfgs, const CgraArch& arch,
    int num_threads) const {
  // One budget for the whole batch. Historically every item silently got
  // its own full options_.timeout_s, so a batch could run items * timeout.
  const Deadline deadline = options_.timeout_s > 0
                                ? Deadline(options_.timeout_s)
                                : Deadline::unlimited();
  return map_batch(dfgs, arch, deadline, num_threads);
}

std::vector<MapResult> DecoupledMapper::map_batch(
    const std::vector<const Dfg*>& dfgs, const CgraArch& arch,
    const Deadline& deadline, int num_threads, BatchStats* stats) const {
  std::vector<MapResult> results(dfgs.size());
  if (stats != nullptr) *stats = BatchStats{};
  if (dfgs.empty()) return results;
  if (num_threads == 1) {
    // Sequential reference path: every case runs the plain map() in order.
    for (std::size_t i = 0; i < dfgs.size(); ++i) {
      results[i] = map(*dfgs[i], arch, deadline);
      if (stats != nullptr) {
        ++stats->outcome_counts[static_cast<std::size_t>(
            results[i].outcome)];
      }
    }
    return results;
  }
  // Pooled path: every case becomes a speculative run with lookahead 1 —
  // its per-II attempts are the pool's tasks. A hard case decomposes into
  // subtasks the other workers steal, instead of pinning one thread for
  // the whole batch (the pre-pool behaviour: static case-per-thread via
  // parallel_for_indices, where one pathological case idled its siblings).
  // No certificate sharing: batch results stay bit-exactly what the
  // per-case sequential map() would return (see SpeculativeOptions::
  // share_nogoods for why warm starts can move the committed II).
  std::unique_ptr<ResourceGovernor> owned_gov =
      make_request_governor(options_.memory_budget_mb);
  const GovernorScope scope(owned_gov.get());
  ResourceGovernor* gov = GovernorScope::current();

  WorkStealingPool pool(clamp_pool_threads(num_threads));
  std::vector<std::unique_ptr<SpeculativeRun>> runs;
  runs.reserve(dfgs.size());
  for (const Dfg* dfg : dfgs) {
    MiiBreakdown mii = compute_mii(*dfg, arch);
    const SpeculativeRun::Config config = speculative_config(
        options_, *dfg, /*lookahead=*/1, /*share_nogoods=*/false, mii);
    runs.push_back(std::make_unique<SpeculativeRun>(
        *this, *dfg, arch, deadline, config, pool, std::move(mii), gov));
  }
  for (auto& run : runs) run->start();
  const std::exception_ptr error = pool.wait_idle_collect();
  if (error != nullptr) {
    // One poisoned case must not sink the batch: the known fault classes
    // are already folded into the affected case's take() fallback;
    // anything else (AssertionError first) propagates.
    try {
      std::rethrow_exception(error);
    } catch (const fault::FaultInjectedError&) {
    } catch (const std::bad_alloc&) {
    }
  }
  for (std::size_t i = 0; i < runs.size(); ++i) {
    results[i] = runs[i]->take();
    if (stats != nullptr) {
      ++stats->outcome_counts[static_cast<std::size_t>(results[i].outcome)];
    }
  }
  if (stats != nullptr) {
    stats->steals = pool.steals();
    stats->fault_requeues = pool.fault_requeues();
  }
  return results;
}

}  // namespace monomap
