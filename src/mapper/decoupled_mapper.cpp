#include "mapper/decoupled_mapper.hpp"

#include <algorithm>

#include "support/log.hpp"
#include "support/stopwatch.hpp"

namespace monomap {

MapResult DecoupledMapper::map(const Dfg& dfg, const CgraArch& arch) const {
  MapResult result;
  const Deadline deadline = options_.timeout_s > 0
                                ? Deadline(options_.timeout_s)
                                : Deadline::unlimited();
  TimeSolverOptions time_options = options_.time;
  if (options_.space.model == MrrgModel::kConsecutiveOnly) {
    // Restricted interconnect: keep the time search consistent with the
    // space model, or every schedule with a long slot span would be
    // rejected in space.
    time_options.constraints.consecutive_slots = true;
  }
  TimeSolver time_solver(dfg, arch, time_options);
  result.mii = time_solver.mii();

  Stopwatch phase;
  int failures_at_current_ii = 0;
  for (;;) {
    phase.restart();
    const std::optional<TimeSolution> schedule = time_solver.next(deadline);
    result.time_phase_s += phase.elapsed_s();
    if (!schedule.has_value()) {
      result.timed_out = time_solver.timed_out();
      result.failure_reason = result.timed_out
                                  ? "time search hit the deadline"
                                  : "time search exhausted up to max II";
      break;
    }
    ++result.schedules_tried;

    std::vector<int> labels(static_cast<std::size_t>(dfg.num_nodes()));
    for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
      labels[static_cast<std::size_t>(v)] = schedule->label(v);
    }
    phase.restart();
    // The first schedule at an II gets the full search effort; retries get
    // a quarter — alternative label vectors rarely change feasibility, so
    // the budget is better spent escalating the II.
    SpaceOptions space_options = options_.space;
    if (failures_at_current_ii > 0 && space_options.max_backtracks != 0) {
      space_options.max_backtracks =
          std::max<std::uint64_t>(space_options.max_backtracks / 4, 4096);
    }
    const SpaceResult space = find_monomorphism(
        dfg, arch, labels, schedule->ii, space_options, deadline);
    result.space_phase_s += phase.elapsed_s();
    result.last_space = space;

    if (space.found) {
      result.success = true;
      result.ii = schedule->ii;
      result.mapping = Mapping(schedule->ii, schedule->time, space.pe);
      // The decoupling invariant: every returned mapping is valid.
      const auto violations =
          validate_mapping(dfg, arch, result.mapping, options_.space.model);
      MONOMAP_ASSERT_MSG(violations.empty(),
                         "mapper produced invalid mapping: "
                             << violations.front().what);
      break;
    }
    if (space.deadline_expired) {
      result.timed_out = true;
      result.failure_reason = "space search hit the deadline";
      break;
    }
    // No monomorphism for this labelling (or the backtrack budget decided
    // it is hopeless): block it and retry; after repeated failures at the
    // same II, give the II up — connectivity constraints are necessary but
    // not sufficient, so some IIs admit schedules yet no placement.
    ++failures_at_current_ii;
    MONOMAP_DEBUG("space failed at II=" << schedule->ii << " ("
                                        << space.failure_reason << "), retry "
                                        << failures_at_current_ii);
    if (options_.max_space_retries_per_ii > 0 &&
        failures_at_current_ii >= options_.max_space_retries_per_ii) {
      failures_at_current_ii = 0;
      phase.restart();
      const bool more = time_solver.skip_to_next_ii();
      result.time_phase_s += phase.elapsed_s();
      if (!more) {
        result.failure_reason = "space search failed for every II up to max";
        break;
      }
      MONOMAP_DEBUG("escalating to II=" << time_solver.current_ii());
    }
  }
  result.time_stats = time_solver.stats();
  result.total_s = result.time_phase_s + result.space_phase_s;
  return result;
}

}  // namespace monomap
