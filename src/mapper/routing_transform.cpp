#include "mapper/routing_transform.hpp"

#include <algorithm>
#include <string>

#include "graph/algorithms.hpp"
#include "support/log.hpp"

namespace monomap {

RoutedDfg insert_route_nodes(const Dfg& dfg, int max_span) {
  MONOMAP_ASSERT(max_span >= 1);
  const Graph& g = dfg.graph();
  const auto asap = longest_path_from_sources(g, edges_with_attr(0));

  // Rebuild the edge list, splitting long distance-0 edges.
  std::vector<Edge> edges;
  std::vector<std::pair<NodeId, NodeId>> routes;
  int next_node = dfg.num_nodes();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.attr != 0 || edge.src == edge.dst) {
      edges.push_back(edge);
      continue;
    }
    const int gap = asap[static_cast<std::size_t>(edge.dst)] -
                    asap[static_cast<std::size_t>(edge.src)];
    const int hops = std::max(1, (gap + max_span - 1) / max_span);
    if (hops <= 1) {
      edges.push_back(edge);
      continue;
    }
    // s -> r1 -> ... -> r_{hops-1} -> d, all distance 0.
    NodeId prev = edge.src;
    for (int h = 1; h < hops; ++h) {
      const NodeId r = next_node++;
      routes.emplace_back(edge.src, edge.dst);
      edges.push_back(Edge{prev, r, 0});
      prev = r;
    }
    edges.push_back(Edge{prev, edge.dst, 0});
  }

  RoutedDfg result{
      Dfg::from_edges(dfg.name() + "+routes", next_node, edges),
      dfg.num_nodes(), std::move(routes)};
  return result;
}

MapResult map_with_routing(const Dfg& dfg, const CgraArch& arch,
                           DecoupledMapperOptions options, RoutedDfg* routed) {
  MONOMAP_ASSERT(routed != nullptr);
  options.space.model = MrrgModel::kConsecutiveOnly;
  // Placement under the restricted model is a snake-embedding problem: the
  // routed DFG is dominated by unit-slot chains that must wind through the
  // mesh. Give the (complete) space search a much larger effort budget and
  // fewer alternative schedules per II — alternatives rarely change the
  // chain structure.
  if (options.space.max_backtracks != 0 &&
      options.space.max_backtracks < 20'000'000) {
    options.space.max_backtracks = 20'000'000;
  }
  options.max_space_retries_per_ii =
      std::min(options.max_space_retries_per_ii, 3);
  // Recurrence cycles pin the II almost exactly under consecutive-slot
  // routing (the cycle's slot spans must all be 0/1), so escalating far
  // past mII only burns the budget.
  auto capped = [&](const Dfg& d) {
    DecoupledMapperOptions opt = options;
    if (opt.time.max_ii <= 0) {
      opt.time.max_ii = compute_mii(d, arch).mii() + 6;
    }
    return opt;
  };

  // Round 0: the DFG may already be mappable without routing.
  RoutedDfg current{dfg, dfg.num_nodes(), {}};
  MapResult result = DecoupledMapper(capped(current.dfg)).map(current.dfg, arch);
  if (result.success || result.timed_out) {
    *routed = std::move(current);
    return result;
  }
  // Round 1: unit-span routing of long intra-iteration dependences.
  MONOMAP_INFO("restricted mapping of '" << dfg.name()
                                         << "' needs route nodes");
  current = insert_route_nodes(dfg, 1);
  result = DecoupledMapper(capped(current.dfg)).map(current.dfg, arch);
  *routed = std::move(current);
  return result;
}

}  // namespace monomap
