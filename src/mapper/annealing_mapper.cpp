#include "mapper/annealing_mapper.hpp"

#include <algorithm>
#include <cmath>

#include "sched/asap_alap.hpp"
#include "sched/mobility.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace monomap {

namespace {

/// Annealing state for one (DFG, arch, II) instance.
class Annealer {
 public:
  Annealer(const Dfg& dfg, const CgraArch& arch, int ii,
           const MobilitySchedule& mobs, const AnnealingOptions& options,
           Rng& rng)
      : dfg_(dfg),
        arch_(arch),
        ii_(ii),
        mobs_(mobs),
        options_(options),
        rng_(rng),
        time_(static_cast<std::size_t>(dfg.num_nodes())),
        pe_(static_cast<std::size_t>(dfg.num_nodes())),
        occupancy_(static_cast<std::size_t>(arch.num_pes()) *
                       static_cast<std::size_t>(ii),
                   0) {}

  /// One annealing run from a fresh random state. Returns true on cost 0.
  bool run(const Deadline& deadline, std::uint64_t& moves) {
    randomize();
    double temperature = options_.initial_temperature;
    const int moves_per_step =
        std::max(16, options_.moves_per_node * dfg_.num_nodes());
    while (temperature > options_.min_temperature) {
      for (int m = 0; m < moves_per_step; ++m) {
        ++moves;
        if (cost_ == 0) return true;
        propose(temperature);
        if ((moves & 0x3FF) == 0 && deadline.expired()) return cost_ == 0;
      }
      temperature *= options_.cooling;
    }
    return cost_ == 0;
  }

  [[nodiscard]] Mapping mapping() const { return Mapping(ii_, time_, pe_); }

 private:
  // --- cost model ---------------------------------------------------------

  [[nodiscard]] int edge_cost(EdgeId e) const {
    const Edge& edge = dfg_.graph().edge(e);
    int cost = 0;
    const int slack = time_[static_cast<std::size_t>(edge.dst)] +
                      edge.attr * ii_ -
                      time_[static_cast<std::size_t>(edge.src)] - 1;
    if (slack < 0) {
      cost += -slack;  // timing violation magnitude
    }
    if (edge.src != edge.dst &&
        !arch_.adjacent_or_same(pe_[static_cast<std::size_t>(edge.src)],
                                pe_[static_cast<std::size_t>(edge.dst)])) {
      cost += 4;  // spatial violation: needs several moves to fix
    }
    return cost;
  }

  [[nodiscard]] int node_edge_cost(NodeId v) const {
    int cost = 0;
    for (const EdgeId e : dfg_.graph().out_edges(v)) cost += edge_cost(e);
    for (const EdgeId e : dfg_.graph().in_edges(v)) {
      if (dfg_.graph().edge(e).src != v) cost += edge_cost(e);
    }
    return cost;
  }

  [[nodiscard]] std::size_t cell(PeId p, int t) const {
    return static_cast<std::size_t>(t % ii_) *
               static_cast<std::size_t>(arch_.num_pes()) +
           static_cast<std::size_t>(p);
  }

  /// Collision cost of a cell with `n` occupants: (n - 1) * 6 when n > 1.
  [[nodiscard]] int collision_cost(int occupants) const {
    return occupants > 1 ? (occupants - 1) * 6 : 0;
  }

  void recompute_cost() {
    cost_ = 0;
    for (EdgeId e = 0; e < dfg_.graph().num_edges(); ++e) {
      cost_ += edge_cost(e);
    }
    for (const int n : occupancy_) {
      cost_ += collision_cost(n);
    }
  }

  // --- moves ---------------------------------------------------------------

  void randomize() {
    std::fill(occupancy_.begin(), occupancy_.end(), 0);
    for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
      const ScheduleRange& r = mobs_.range(v);
      time_[static_cast<std::size_t>(v)] =
          r.asap + static_cast<int>(rng_.next_below(
                       static_cast<std::uint64_t>(r.width())));
      pe_[static_cast<std::size_t>(v)] = static_cast<PeId>(
          rng_.next_below(static_cast<std::uint64_t>(arch_.num_pes())));
      ++occupancy_[cell(pe_[static_cast<std::size_t>(v)],
                        time_[static_cast<std::size_t>(v)])];
    }
    recompute_cost();
  }

  void propose(double temperature) {
    const auto v = static_cast<NodeId>(
        rng_.next_below(static_cast<std::uint64_t>(dfg_.num_nodes())));
    const ScheduleRange& r = mobs_.range(v);
    const int old_time = time_[static_cast<std::size_t>(v)];
    const PeId old_pe = pe_[static_cast<std::size_t>(v)];
    const int new_time =
        r.asap + static_cast<int>(rng_.next_below(
                     static_cast<std::uint64_t>(r.width())));
    // Half of the moves stay local (neighbouring PE), half teleport.
    PeId new_pe;
    if (rng_.next_bool(0.5)) {
      const auto& closed = arch_.closed_neighbors(old_pe);
      new_pe = closed[rng_.next_below(closed.size())];
    } else {
      new_pe = static_cast<PeId>(
          rng_.next_below(static_cast<std::uint64_t>(arch_.num_pes())));
    }
    if (new_time == old_time && new_pe == old_pe) return;

    const int before = node_edge_cost(v) +
                       collision_cost(occupancy_[cell(old_pe, old_time)]) +
                       collision_cost(occupancy_[cell(new_pe, new_time)]);
    --occupancy_[cell(old_pe, old_time)];
    time_[static_cast<std::size_t>(v)] = new_time;
    pe_[static_cast<std::size_t>(v)] = new_pe;
    ++occupancy_[cell(new_pe, new_time)];
    const int after = node_edge_cost(v) +
                      collision_cost(occupancy_[cell(old_pe, old_time)]) +
                      collision_cost(occupancy_[cell(new_pe, new_time)]);
    const int delta = after - before;
    if (delta <= 0 ||
        rng_.next_double() < std::exp(-static_cast<double>(delta) / temperature)) {
      cost_ += delta;
      return;
    }
    // Reject: undo.
    --occupancy_[cell(new_pe, new_time)];
    time_[static_cast<std::size_t>(v)] = old_time;
    pe_[static_cast<std::size_t>(v)] = old_pe;
    ++occupancy_[cell(old_pe, old_time)];
  }

  const Dfg& dfg_;
  const CgraArch& arch_;
  int ii_;
  const MobilitySchedule& mobs_;
  const AnnealingOptions& options_;
  Rng& rng_;
  std::vector<int> time_;
  std::vector<PeId> pe_;
  std::vector<int> occupancy_;
  int cost_ = 0;
};

}  // namespace

AnnealResult AnnealingMapper::map(const Dfg& dfg, const CgraArch& arch) const {
  AnnealResult result;
  Stopwatch watch;
  const Deadline deadline = options_.timeout_s > 0
                                ? Deadline(options_.timeout_s)
                                : Deadline::unlimited();
  result.mii = compute_mii(dfg, arch);
  const int max_ii =
      options_.max_ii > 0
          ? options_.max_ii
          : std::max(result.mii.mii(), std::max(1, dfg.num_nodes()));
  Rng rng(options_.seed);

  for (int ii = result.mii.mii(); ii <= max_ii; ++ii) {
    // Generous horizon: II extra steps of slack help the anneal spread load.
    const int horizon = critical_path_length(dfg) + ii;
    const MobilitySchedule mobs(dfg, horizon);
    for (int restart = 0; restart < options_.restarts_per_ii; ++restart) {
      if (deadline.expired()) {
        result.timed_out = true;
        result.failure_reason = "annealing hit the deadline";
        result.total_s = watch.elapsed_s();
        return result;
      }
      ++result.restarts;
      Annealer annealer(dfg, arch, ii, mobs, options_, rng);
      if (annealer.run(deadline, result.moves)) {
        result.success = true;
        result.ii = ii;
        result.mapping = annealer.mapping();
        const auto violations = validate_mapping(dfg, arch, result.mapping);
        MONOMAP_ASSERT_MSG(violations.empty(),
                           "annealer returned invalid mapping: "
                               << violations.front().what);
        result.total_s = watch.elapsed_s();
        return result;
      }
    }
    MONOMAP_DEBUG("annealing failed at II=" << ii << "; escalating");
  }
  result.failure_reason = "annealing exhausted II range";
  result.total_s = watch.elapsed_s();
  return result;
}

}  // namespace monomap
