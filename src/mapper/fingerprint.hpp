// Isomorphism-robust DFG fingerprints for the cross-request knowledge layer.
//
// The service memoises completed mappings and reuses refutation certificates
// across requests; both need a key that identifies a DFG *up to node
// relabelling* — AutoSA-style flows emit many near-duplicate kernels whose
// node ids differ only by emission order. The fingerprint here is:
//
//   1. WL (Weisfeiler-Leman) colour refinement over (opcode, in/out edge
//      roles, loop-carried distances) to a fixpoint. The sorted colour
//      multiset is already an isomorphism invariant.
//   2. Canonical-form tie-break: individualisation-refinement search over
//      the non-singleton colour cells. Each leaf of the search is a
//      discrete colouring = a node ordering; the minimal signature over all
//      leaves is the canonical form, and `canon` maps node -> canonical
//      index. Two isomorphic DFGs get identical (iso_hi, iso_lo) AND their
//      canonical forms are the same labelled graph, so artefacts expressed
//      in canonical node space (mappings, slot-partition certificates)
//      transfer between them by composing the two permutations.
//
// The search is budget-bounded. The budget is counted in refinement steps,
// a quantity identical across isomorphic copies of a graph, so the
// abort decision itself is isomorphism-invariant: either every copy
// canonicalises or none does. On abort, `canonical` is false, `canon` is
// empty and (iso_hi, iso_lo) degrade to the WL-multiset hash — still a
// correct iso-invariant key, but without a transfer permutation, so the
// knowledge layer falls back to exact-identity matching (`exact`).
//
// 128 bits (two independently seeded hashes) make accidental collisions
// across a realistic cache population negligible; the consumers additionally
// validate anything reconstructed from a hit, so a collision costs a miss,
// never soundness.
#ifndef MONOMAP_MAPPER_FINGERPRINT_HPP
#define MONOMAP_MAPPER_FINGERPRINT_HPP

#include <cstdint>
#include <vector>

#include "arch/cgra.hpp"
#include "graph/graph.hpp"
#include "ir/dfg.hpp"

namespace monomap {

struct DfgFingerprint {
  /// Isomorphism-invariant 128-bit hash (canonical-form hash when
  /// `canonical`, WL colour-multiset hash otherwise).
  std::uint64_t iso_hi = 0;
  std::uint64_t iso_lo = 0;
  /// Node-id-sensitive hash of the graph exactly as given (opcodes + edge
  /// list in id order). Exact repeats match on this even when
  /// canonicalisation was aborted.
  std::uint64_t exact = 0;
  /// Canonicalisation ran to completion within budget.
  bool canonical = false;
  /// node id -> canonical index (empty unless `canonical`).
  std::vector<NodeId> canon;
};

/// Fingerprint `dfg`. `budget` bounds the individualisation-refinement
/// search in refinement steps (node-signature recomputations); 0 uses a
/// default generous enough for every suite case. The abort decision is
/// isomorphism-invariant (see file comment).
DfgFingerprint fingerprint_dfg(const Dfg& dfg, std::uint64_t budget = 0);

/// Hash of everything the mapping problem reads from the architecture:
/// rows, cols, topology.
std::uint64_t fingerprint_arch(const CgraArch& arch);

}  // namespace monomap

#endif  // MONOMAP_MAPPER_FINGERPRINT_HPP
