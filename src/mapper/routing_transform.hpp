// Routing-node insertion for restricted interconnects (extension).
//
// The paper's architecture lets any PE read a neighbour's register file at
// any later kernel cycle, which is what makes space/time decoupling clean
// (Sec. V limitations). On a conventional CGRA without that persistence,
// values must be moved through explicit routing (pass-through) operations —
// the approach of EPIMap [13] and Zhao et al. [24], which the paper notes
// "leads to increased II". This module implements that transform so the
// decoupled mapper also covers the restricted architecture:
//
//   every intra-iteration dependence whose ASAP span exceeds one step is
//   split into a chain of unit-latency route (identity) nodes; the mapper
//   then runs with MrrgModel::kConsecutiveOnly.
//
// The measured II inflation vs the persistence architecture quantifies the
// benefit of the paper's architectural assumption (ablation in
// bench_ablation_constraints).
#ifndef MONOMAP_MAPPER_ROUTING_TRANSFORM_HPP
#define MONOMAP_MAPPER_ROUTING_TRANSFORM_HPP

#include <vector>

#include "ir/dfg.hpp"
#include "mapper/decoupled_mapper.hpp"

namespace monomap {

/// A DFG augmented with route nodes.
struct RoutedDfg {
  Dfg dfg;
  /// Number of original nodes; nodes >= this are route nodes.
  int original_nodes = 0;
  /// For each route node (index - original_nodes), the original edge's
  /// (source, destination) pair it helps route.
  std::vector<std::pair<NodeId, NodeId>> routes;

  [[nodiscard]] int num_route_nodes() const {
    return static_cast<int>(routes.size());
  }
};

/// Split every distance-0 edge whose ASAP span exceeds `max_span` steps into
/// a chain of route nodes so each link can be scheduled on consecutive
/// kernel slots. Loop-carried edges are left untouched (they close tight
/// recurrence cycles; splitting them would inflate RecII).
RoutedDfg insert_route_nodes(const Dfg& dfg, int max_span = 1);

/// Map `dfg` onto a restricted-interconnect CGRA: first as-is, then (if the
/// time search proves the unrouted DFG infeasible) with route nodes
/// inserted. The returned MapResult refers to the routed DFG returned in
/// *routed (route placements are genuine PE/slot assignments executing
/// pass-through ops).
MapResult map_with_routing(const Dfg& dfg, const CgraArch& arch,
                           DecoupledMapperOptions options, RoutedDfg* routed);

}  // namespace monomap

#endif  // MONOMAP_MAPPER_ROUTING_TRANSFORM_HPP
