#include "mapper/config_gen.hpp"

#include <sstream>

namespace monomap {

const char* to_string(RouteDir dir) {
  switch (dir) {
    case RouteDir::kSelf: return "self";
    case RouteDir::kNorth: return "N";
    case RouteDir::kSouth: return "S";
    case RouteDir::kEast: return "E";
    case RouteDir::kWest: return "W";
    case RouteDir::kOther: return "?";
  }
  return "?";
}

namespace {

RouteDir direction(const CgraArch& arch, PeId from, PeId to) {
  if (from == to) return RouteDir::kSelf;
  const int dr = arch.row_of(to) - arch.row_of(from);
  const int dc = arch.col_of(to) - arch.col_of(from);
  if (dr == -1 && dc == 0) return RouteDir::kNorth;
  if (dr == 1 && dc == 0) return RouteDir::kSouth;
  if (dr == 0 && dc == 1) return RouteDir::kEast;
  if (dr == 0 && dc == -1) return RouteDir::kWest;
  return RouteDir::kOther;  // torus wrap / diagonal links
}

}  // namespace

ConfigImage::ConfigImage(const LoopKernel& kernel, const Dfg& dfg,
                         const CgraArch& arch, const Mapping& mapping)
    : arch_(&arch), ii_(mapping.ii()) {
  MONOMAP_ASSERT(kernel.size() == dfg.num_nodes());
  MONOMAP_ASSERT_MSG(mapping_is_valid(dfg, arch, mapping),
                     "refusing to generate configuration for an invalid mapping");
  slots_.assign(static_cast<std::size_t>(arch.num_pes()) *
                    static_cast<std::size_t>(ii_),
                PeSlotConfig{});
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    const Instruction& in = kernel.instr(v);
    PeSlotConfig cfg;
    cfg.active = true;
    cfg.node = v;
    cfg.op = in.op;
    for (const OperandRef& o : in.operands) {
      OperandRoute route;
      route.producer = o.producer;
      route.distance = o.distance;
      route.dir = direction(arch, mapping.pe(v), mapping.pe(o.producer));
      cfg.routes.push_back(route);
    }
    slots_[static_cast<std::size_t>(mapping.pe(v)) *
               static_cast<std::size_t>(ii_) +
           static_cast<std::size_t>(mapping.slot(v))] = std::move(cfg);
  }
}

const PeSlotConfig& ConfigImage::at(PeId pe, int slot) const {
  MONOMAP_ASSERT(arch_->has_pe(pe) && slot >= 0 && slot < ii_);
  return slots_[static_cast<std::size_t>(pe) * static_cast<std::size_t>(ii_) +
                static_cast<std::size_t>(slot)];
}

double ConfigImage::utilization() const {
  int active = 0;
  for (const PeSlotConfig& cfg : slots_) {
    if (cfg.active) ++active;
  }
  return slots_.empty() ? 0.0
                        : static_cast<double>(active) /
                              static_cast<double>(slots_.size());
}

std::string ConfigImage::to_string() const {
  std::ostringstream os;
  for (PeId pe = 0; pe < arch_->num_pes(); ++pe) {
    os << "PE" << pe << " (r" << arch_->row_of(pe) << ",c" << arch_->col_of(pe)
       << "):\n";
    for (int slot = 0; slot < ii_; ++slot) {
      const PeSlotConfig& cfg = at(pe, slot);
      os << "  [" << slot << "] ";
      if (!cfg.active) {
        os << "nop\n";
        continue;
      }
      os << opcode_name(cfg.op) << " n" << cfg.node;
      for (const OperandRoute& r : cfg.routes) {
        os << ' ' << monomap::to_string(r.dir) << ":r" << r.producer;
        if (r.distance > 0) {
          os << "(-" << r.distance << "it)";
        }
      }
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace monomap
