// Cross-request knowledge store: the concurrently shared half of the
// mapper split (the per-request DecoupledMapper instance stays stateless).
//
// Two kinds of reuse, both keyed by (arch fingerprint, canonical DFG
// fingerprint) so isomorphic requests share entries:
//
//  * MEMO — a bounded LRU cache of completed feasible MapResults, keyed
//    additionally on the FULL options fingerprint (every knob that shapes
//    the answer; the wall deadline is deliberately excluded — it shapes
//    *whether* an answer was found, and only completed feasible results
//    are cached). The mapping is stored in canonical node space; a hit
//    translates it through the requesting DFG's canonical permutation and
//    re-validates, so a fingerprint collision costs a miss, never an
//    invalid answer. Non-canonical fingerprints (canonicalisation budget
//    blown) degrade to exact-identity keys.
//
//  * KNOWLEDGE — slot-partition certificates and sound refuted-II floors,
//    keyed additionally on the SOUNDNESS fingerprint (just the options
//    that decide which certificates are valid at all: the MRRG model and
//    the time-constraint semantics). Certificates are stored in canonical
//    node space and translated into a per-request CrossIiNogoodStore,
//    which feeds the existing add_cross_ii_nogood / prefilter channel —
//    one user's refutation warm-starts the next user's walk. Floors only
//    ever advance via MapResult::ii_refuted_up_to (natural exhaustion +
//    zero truncated space searches, contiguous), so a warm request's
//    starting II never exceeds a sound refutation. Gated to
//    MrrgModel::kRegisterPersistence, where the partition argument holds
//    across IIs (see cross_ii_store.hpp).
//
// Lock-striped: keys hash to one of kStripes independent shards, each with
// its own mutex, maps and LRU list, so concurrent requests on different
// DFGs never contend. Memory is accounted against an internal
// ResourceGovernor; denied charges evict memo LRU entries first, then the
// oldest certificates of the inserting key.
#ifndef MONOMAP_MAPPER_KNOWLEDGE_STORE_HPP
#define MONOMAP_MAPPER_KNOWLEDGE_STORE_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "mapper/cross_ii_store.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "mapper/fingerprint.hpp"
#include "support/resource.hpp"

namespace monomap {

/// Hash of the option subset that decides whether a stored certificate /
/// refuted-II floor is valid for a request: the space model and the
/// time-constraint semantics. Effort knobs (budgets, retries, adaptive
/// policy) do not affect validity — a certificate is a property of the
/// problem, not of the search that found it.
std::uint64_t soundness_fingerprint(const DecoupledMapperOptions& options);

/// Hash of every option that shapes the ANSWER a mapper returns (engines,
/// models, constraint toggles, budgets, retry policy, anytime, schedule
/// caps...). timeout_s is excluded: only completed feasible results are
/// memoised, and those are deadline-independent. Two requests with equal
/// options fingerprints asking for the same (arch, DFG) get the same
/// answer, so the memo may serve one to the other.
std::uint64_t options_fingerprint(const DecoupledMapperOptions& options);

class KnowledgeStore {
 public:
  struct Options {
    /// Byte budget for everything the store retains; 0 = unlimited.
    std::size_t memory_budget_mb = 64;
    /// Hard cap on memo entries across all stripes (LRU beyond it).
    std::size_t max_memo_entries = 4096;
  };

  struct StatsSnapshot {
    std::uint64_t memo_hits = 0;
    std::uint64_t memo_misses = 0;
    std::uint64_t memo_stores = 0;
    std::uint64_t memo_evictions = 0;
    /// Hits rejected because the translated mapping failed validation
    /// (fingerprint collision or a stale entry) — served as misses.
    std::uint64_t memo_invalid = 0;
    std::uint64_t warm_requests = 0;
    std::uint64_t certs_seeded = 0;
    std::uint64_t certs_published = 0;
    /// Warm requests that started above II 1 thanks to a stored floor.
    std::uint64_t floor_hits = 0;
    std::size_t bytes_used = 0;
    std::size_t bytes_peak = 0;
  };

  KnowledgeStore();  // default Options
  explicit KnowledgeStore(Options options);
  KnowledgeStore(const KnowledgeStore&) = delete;
  KnowledgeStore& operator=(const KnowledgeStore&) = delete;

  // ---- memo cache ----

  /// Look up a completed result for (arch, dfg, options). On a hit the
  /// cached canonical mapping is translated through `fp.canon` and
  /// re-validated against THIS dfg/arch; failure (collision) is a miss.
  /// `salt` partitions the memo further (e.g. the service keys warm and
  /// cold walks separately — they may settle on different valid answers).
  std::optional<MapResult> lookup(const Dfg& dfg, const CgraArch& arch,
                                  const DfgFingerprint& fp,
                                  std::uint64_t arch_fp,
                                  const DecoupledMapperOptions& options,
                                  std::uint64_t salt = 0);

  /// Memoise `result` when it is a completed feasible (non-degraded)
  /// mapping; anything else is ignored — deadline-shaped outcomes must
  /// not be served to other requests.
  void store(const Dfg& dfg, const DfgFingerprint& fp, std::uint64_t arch_fp,
             const DecoupledMapperOptions& options, const MapResult& result,
             std::uint64_t salt = 0);

  // ---- knowledge (certificates + refuted-II floors) ----

  /// Sound refuted-II floor for this key (0 = nothing known): every II
  /// <= floor is soundly refuted, so a warm walk may start at floor + 1.
  int refuted_floor(const DfgFingerprint& fp, std::uint64_t arch_fp,
                    const DecoupledMapperOptions& options);

  /// Translate this key's stored certificates into `out` (request node
  /// space, source_ii = 0 so every attempt lifts their rotations) and
  /// return how many were seeded. No-op (0) for non-canonical fingerprints
  /// or non-register-persistence models.
  std::size_t seed(const DfgFingerprint& fp, std::uint64_t arch_fp,
                   const DecoupledMapperOptions& options,
                   CrossIiNogoodStore* out);

  /// Harvest a finished warm run: translate `scratch`'s certificates into
  /// canonical space, dedup into the key's entry, and advance the refuted
  /// floor to `refuted_up_to` when it is larger (caller passes
  /// MapResult::ii_refuted_up_to — sound by construction). Returns the
  /// number of newly stored certificates.
  std::size_t publish(const DfgFingerprint& fp, std::uint64_t arch_fp,
                      const DecoupledMapperOptions& options,
                      const CrossIiNogoodStore& scratch, int refuted_up_to);

  [[nodiscard]] StatsSnapshot stats() const;

 private:
  struct Key {
    std::uint64_t arch_fp = 0;
    std::uint64_t dfg_hi = 0;
    std::uint64_t dfg_lo = 0;
    std::uint64_t scope_fp = 0;  // options fp (memo) / soundness fp (knowledge)
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  /// A completed feasible mapping in canonical node space.
  struct MemoEntry {
    int ii = 0;
    int ii_refuted_up_to = 0;
    int schedules_tried = 0;
    int num_nodes = 0;
    int num_edges = 0;
    std::vector<int> time;  // canonical index -> absolute time
    std::vector<PeId> pe;   // canonical index -> PE
    std::list<Key>::iterator lru;
    std::size_t bytes = 0;
  };

  struct KnowledgeEntry {
    int refuted_floor = 0;
    std::vector<SlotPartitionCert> certs;  // canonical node space
    std::set<std::vector<std::vector<NodeId>>> seen;
  };

  struct Stripe {
    mutable std::mutex m;
    std::unordered_map<Key, MemoEntry, KeyHash> memo;
    std::unordered_map<Key, KnowledgeEntry, KeyHash> knowledge;
    std::list<Key> lru;  // front = most recent
    std::size_t memo_count = 0;
  };

  static constexpr std::size_t kStripes = 16;

  Stripe& stripe_for(const Key& key);
  /// Whether the knowledge side applies at all to these options/fp.
  static bool knowledge_applicable(const DfgFingerprint& fp,
                                   const DecoupledMapperOptions& options);
  static Key memo_key(const DfgFingerprint& fp, std::uint64_t arch_fp,
                      std::uint64_t options_fp);
  void evict_lru_locked(Stripe& stripe, std::size_t* counter);

  Options options_;
  ResourceGovernor governor_;
  Stripe stripes_[kStripes];

  std::atomic<std::uint64_t> memo_hits_{0};
  std::atomic<std::uint64_t> memo_misses_{0};
  std::atomic<std::uint64_t> memo_stores_{0};
  std::atomic<std::uint64_t> memo_evictions_{0};
  std::atomic<std::uint64_t> memo_invalid_{0};
  std::atomic<std::uint64_t> warm_requests_{0};
  std::atomic<std::uint64_t> certs_seeded_{0};
  std::atomic<std::uint64_t> certs_published_{0};
  std::atomic<std::uint64_t> floor_hits_{0};
};

}  // namespace monomap

#endif  // MONOMAP_MAPPER_KNOWLEDGE_STORE_HPP
