#include "mapper/fingerprint.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <map>
#include <utility>

namespace monomap {
namespace {

constexpr std::uint64_t kSeedA = 0x6d6f6e6f6d61702bULL;  // "monomap+"
constexpr std::uint64_t kSeedB = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kIndividualize = 0xc2b2ae3d27d4eb4fULL;
constexpr std::uint64_t kDefaultBudget = 4'000'000;

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

/// Budgeted individualisation-refinement canonical search. Every quantity
/// that steers it (colours, cell choice, budget spend) is a function of the
/// graph's structure only, so isomorphic copies take identical paths —
/// including the abort path.
class CanonSearch {
 public:
  CanonSearch(const Dfg& dfg, std::uint64_t budget)
      : dfg_(dfg), n_(dfg.num_nodes()), budget_(budget) {}

  bool exhausted() const { return exhausted_; }
  bool have_best() const { return have_best_; }
  const std::array<std::uint64_t, 2>& best_sig() const { return best_sig_; }
  std::vector<NodeId> take_best_perm() { return std::move(best_perm_); }

  /// Refine `color` to a fixpoint of WL splitting. Returns false when the
  /// budget ran out (exhausted_ is then latched).
  bool refine(std::vector<std::uint64_t>& color) {
    std::vector<int> prev = cells(color);
    std::vector<std::uint64_t> parts;
    std::vector<std::uint64_t> next(static_cast<std::size_t>(n_));
    for (;;) {
      if (!spend(static_cast<std::uint64_t>(n_))) {
        return false;
      }
      for (NodeId v = 0; v < n_; ++v) {
        parts.clear();
        for (EdgeId e : dfg_.graph().out_edges(v)) {
          const Edge& edge = dfg_.graph().edge(e);
          parts.push_back(fold(
              fold(0x0f0f0f0f0f0f0f0fULL,
                   static_cast<std::uint64_t>(edge.attr) + 1),
              color[static_cast<std::size_t>(edge.dst)]));
        }
        for (EdgeId e : dfg_.graph().in_edges(v)) {
          const Edge& edge = dfg_.graph().edge(e);
          parts.push_back(fold(
              fold(0xf0f0f0f0f0f0f0f0ULL,
                   static_cast<std::uint64_t>(edge.attr) + 1),
              color[static_cast<std::size_t>(edge.src)]));
        }
        std::sort(parts.begin(), parts.end());
        std::uint64_t h = color[static_cast<std::size_t>(v)];
        for (std::uint64_t p : parts) {
          h = fold(h, p);
        }
        next[static_cast<std::size_t>(v)] = h;
      }
      color.swap(next);
      std::vector<int> cur = cells(color);
      if (cur == prev) {
        return true;  // partition stable: refinement is at its fixpoint
      }
      prev = std::move(cur);
    }
  }

  void search(std::vector<std::uint64_t> color) {
    if (exhausted_) {
      return;
    }
    if (!refine(color)) {
      return;
    }
    // Pick the target cell: smallest non-singleton cell, ties broken by
    // smallest colour value. Colour values are equal on corresponding
    // nodes of isomorphic copies, so the choice is iso-invariant.
    std::map<std::uint64_t, int> count;
    for (std::uint64_t c : color) {
      ++count[c];
    }
    std::uint64_t target = 0;
    int target_size = n_ + 1;
    for (const auto& [c, k] : count) {
      if (k > 1 && k < target_size) {
        target = c;
        target_size = k;
      }
    }
    if (target_size > n_) {
      leaf(color);
      return;
    }
    for (NodeId v = 0; v < n_ && !exhausted_; ++v) {
      if (color[static_cast<std::size_t>(v)] != target) {
        continue;
      }
      std::vector<std::uint64_t> child = color;
      child[static_cast<std::size_t>(v)] =
          mix64(child[static_cast<std::size_t>(v)] ^ kIndividualize);
      search(std::move(child));
    }
  }

 private:
  bool spend(std::uint64_t steps) {
    if (exhausted_ || budget_ < steps) {
      exhausted_ = true;
      return false;
    }
    budget_ -= steps;
    return true;
  }

  /// Cell labels in first-occurrence order — equal vectors iff the two
  /// colourings induce the same partition (value-independent, so the
  /// refinement fixpoint test ignores the hash churn per round).
  std::vector<int> cells(const std::vector<std::uint64_t>& color) const {
    std::vector<int> part(static_cast<std::size_t>(n_));
    std::map<std::uint64_t, int> id;
    for (NodeId v = 0; v < n_; ++v) {
      auto [it, inserted] =
          id.try_emplace(color[static_cast<std::size_t>(v)],
                         static_cast<int>(id.size()));
      part[static_cast<std::size_t>(v)] = it->second;
    }
    return part;
  }

  /// Discrete colouring: hash the induced canonical form, keep the minimum.
  void leaf(const std::vector<std::uint64_t>& color) {
    if (!spend(static_cast<std::uint64_t>(n_))) {
      return;
    }
    std::vector<NodeId> order(static_cast<std::size_t>(n_));
    for (NodeId v = 0; v < n_; ++v) {
      order[static_cast<std::size_t>(v)] = v;
    }
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return color[static_cast<std::size_t>(a)] <
             color[static_cast<std::size_t>(b)];
    });
    std::vector<NodeId> perm(static_cast<std::size_t>(n_));
    for (int pos = 0; pos < n_; ++pos) {
      perm[static_cast<std::size_t>(order[static_cast<std::size_t>(pos)])] =
          pos;
    }
    std::array<std::uint64_t, 2> sig{kSeedA, kSeedB};
    auto fold2 = [&sig](std::uint64_t v) {
      sig[0] = fold(sig[0], v);
      sig[1] = fold(sig[1], mix64(v ^ 0xabcdef0123456789ULL));
    };
    fold2(static_cast<std::uint64_t>(n_));
    fold2(static_cast<std::uint64_t>(dfg_.num_edges()));
    std::vector<std::pair<int, int>> outs;
    for (int pos = 0; pos < n_; ++pos) {
      const NodeId v = order[static_cast<std::size_t>(pos)];
      fold2(static_cast<std::uint64_t>(dfg_.opcode(v)));
      outs.clear();
      for (EdgeId e : dfg_.graph().out_edges(v)) {
        const Edge& edge = dfg_.graph().edge(e);
        outs.emplace_back(perm[static_cast<std::size_t>(edge.dst)],
                          edge.attr);
      }
      std::sort(outs.begin(), outs.end());
      fold2(0x5e5e5e5e'00000000ULL + outs.size());
      for (const auto& [dst, attr] : outs) {
        fold2((static_cast<std::uint64_t>(dst) << 20) ^
              static_cast<std::uint64_t>(attr));
      }
    }
    if (!have_best_ || sig < best_sig_) {
      have_best_ = true;
      best_sig_ = sig;
      best_perm_ = std::move(perm);
    }
  }

  const Dfg& dfg_;
  const int n_;
  std::uint64_t budget_;
  bool exhausted_ = false;
  bool have_best_ = false;
  std::array<std::uint64_t, 2> best_sig_{};
  std::vector<NodeId> best_perm_;
};

std::vector<std::uint64_t> initial_colors(const Dfg& dfg) {
  std::vector<std::uint64_t> color(
      static_cast<std::size_t>(dfg.num_nodes()));
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    color[static_cast<std::size_t>(v)] =
        mix64(0x1234'5678'9abc'def0ULL ^
              static_cast<std::uint64_t>(dfg.opcode(v)));
  }
  return color;
}

}  // namespace

DfgFingerprint fingerprint_dfg(const Dfg& dfg, std::uint64_t budget) {
  if (budget == 0) {
    budget = kDefaultBudget;
  }
  const int n = dfg.num_nodes();
  DfgFingerprint fp;

  // Exact (node-id-sensitive) hash: opcodes in id order + sorted edge list.
  {
    std::uint64_t h = fold(kSeedA, static_cast<std::uint64_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      h = fold(h, static_cast<std::uint64_t>(dfg.opcode(v)));
    }
    std::vector<std::array<int, 3>> edges;
    edges.reserve(static_cast<std::size_t>(dfg.num_edges()));
    for (EdgeId e = 0; e < dfg.num_edges(); ++e) {
      const Edge& edge = dfg.graph().edge(e);
      edges.push_back({edge.src, edge.dst, edge.attr});
    }
    std::sort(edges.begin(), edges.end());
    for (const auto& edge : edges) {
      h = fold(fold(fold(h, static_cast<std::uint64_t>(edge[0])),
                    static_cast<std::uint64_t>(edge[1])),
               static_cast<std::uint64_t>(edge[2]) + 1);
    }
    fp.exact = h;
  }

  CanonSearch canon(dfg, budget);
  std::vector<std::uint64_t> color = initial_colors(dfg);

  // The stable WL colouring doubles as the fallback iso-hash source, so
  // compute it once up front; search() re-refines no-op-fast from here.
  std::vector<std::uint64_t> stable = color;
  const bool refined = canon.refine(stable);
  if (refined) {
    canon.search(stable);
  }
  if (!canon.exhausted() && canon.have_best()) {
    fp.canonical = true;
    fp.iso_hi = canon.best_sig()[0];
    fp.iso_lo = canon.best_sig()[1];
    fp.canon = canon.take_best_perm();
    return fp;
  }

  // Budget blown: fall back to the WL colour-multiset hash of the deepest
  // refinement we completed (the initial colouring when even round one was
  // over budget). Still iso-invariant; no transfer permutation.
  const std::vector<std::uint64_t>& base = refined ? stable : color;
  std::vector<std::uint64_t> sorted = base;
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t hi = fold(kSeedA, static_cast<std::uint64_t>(n));
  std::uint64_t lo = fold(kSeedB, static_cast<std::uint64_t>(dfg.num_edges()));
  for (std::uint64_t c : sorted) {
    hi = fold(hi, c);
    lo = fold(lo, mix64(c ^ 0xabcdef0123456789ULL));
  }
  fp.canonical = false;
  fp.iso_hi = hi;
  fp.iso_lo = lo;
  return fp;
}

std::uint64_t fingerprint_arch(const CgraArch& arch) {
  std::uint64_t h = fold(kSeedB, static_cast<std::uint64_t>(arch.rows()));
  h = fold(h, static_cast<std::uint64_t>(arch.cols()));
  h = fold(h, static_cast<std::uint64_t>(arch.topology()));
  return h;
}

}  // namespace monomap
