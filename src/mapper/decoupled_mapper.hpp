// The paper's contribution: space/time-decoupled CGRA mapping (Sec. IV).
//
// Pipeline per II (starting at mII):
//   1. TIME   — SAT search over the KMS with capacity + connectivity
//               constraints yields a schedule (labels per node).
//   2. SPACE  — monomorphism search places the labelled DFG into the MRRG.
//   3. If space fails (rare; Sec. IV-D argues it should not happen under the
//      constraints), block that label vector and ask for the next schedule.
//
// The result records the two phase times separately — Table III's
// "Time"/"Space" columns.
#ifndef MONOMAP_MAPPER_DECOUPLED_MAPPER_HPP
#define MONOMAP_MAPPER_DECOUPLED_MAPPER_HPP

#include <string>

#include "mapper/mapping.hpp"
#include "space/monomorphism.hpp"
#include "timing/time_solver.hpp"

namespace monomap {

struct DecoupledMapperOptions {
  TimeSolverOptions time;
  SpaceOptions space;
  /// Overall wall-clock budget in seconds (paper: 4000 s); <= 0 = unlimited.
  double timeout_s = 4000.0;
  /// After this many *uninformative* space failures at one II, escalate to
  /// II+1. Uninformative means the search either truncated (budget ran
  /// out, nothing learned) or refuted the schedule with a conflict set
  /// spanning most of the DFG (> half the nodes — the nogood prunes almost
  /// no other schedules, the classic signature of a spatially dead II).
  /// Narrow refutations don't count against this: each one feeds a sound
  /// family-pruning nogood back into the time search, so retrying is
  /// progress, not wheel-spinning (they are bounded separately by
  /// max_space_refutations_per_ii).
  /// (The paper's Sec. IV-D argues failures should be rare; when the DFG
  /// has high-degree hubs the counting argument has gaps, and escalating
  /// II is what produces the II > mII rows seen in the paper's Table III.)
  int max_space_retries_per_ii = 8;
  /// Hard cap on narrow (family-pruning) space refutations at one II
  /// before the mapper escalates anyway (guards against an II whose huge
  /// schedule space is spatially dead but only refutable one narrow family
  /// at a time). 0 = unlimited.
  int max_space_refutations_per_ii = 64;
  /// Conflict-driven space budget adaptation. The per-schedule backtrack
  /// budget starts at space.max_backtracks and then tracks what the
  /// conflicts say, keyed off SpaceResult::shallowest_retreat (the
  /// minimum backjump target — how shallow the failure's conflicts
  /// reached, not how deep the dive got): a truncated search whose
  /// conflicts implicated shallow decisions marks a hopeless schedule
  /// family — shrink the budget and move on; one whose retreats all
  /// stayed confined near the leaves is a near-miss — double the budget
  /// (up to base * max_space_budget_boost); a complete refutation with a
  /// narrow conflict set resets to the base budget (the nogood channel is
  /// doing the pruning). Disable to get the historical flat behaviour
  /// (full budget on the first schedule of an II, a quarter on retries).
  bool adaptive_space_budget = true;
  /// Floor for the adapted budget.
  std::uint64_t min_space_backtracks = 4'096;
  /// Divisor applied to the budget after an uninformative failure
  /// (shallow truncation or wide refutation). 2 is cautious — it keeps
  /// mid-sized probes alive for schedules that are placeable but need
  /// some search; 4+ kills dead-II mills faster at the risk of truncating
  /// a findable placement.
  std::uint64_t space_budget_shrink_divisor = 2;
  /// Ceiling multiplier for the adapted budget (base * boost).
  std::uint64_t max_space_budget_boost = 8;
  /// A truncated search whose shallowest backjump target stayed at or
  /// above fraction * num_nodes counts as a near-miss (its conflicts never
  /// implicated the shallow placements).
  double near_miss_depth_fraction = 0.75;
  /// Last-chance probe: when an II is about to be abandoned on truncations
  /// alone — the engine never completed a single search there, so its
  /// feasibility is genuinely unknown and the later, budget-starved
  /// schedules may have been placeable — grant one more schedule at the
  /// full base budget before escalating. IIs with refutation evidence (the
  /// engine proved schedules dead there within budget) escalate without
  /// the probe. Bounded: one probe per II.
  bool last_chance_probe = true;
};

/// Parallel-portfolio configuration: race several space-search
/// configurations for the same DFG and take the first valid mapping.
struct PortfolioOptions {
  /// Space configurations to race. Empty = a built-in diverse set
  /// (dynamic-MRV / connectivity / degree orders, symmetry on/off); see
  /// default_portfolio_configs().
  std::vector<SpaceOptions> configs;
  /// Worker threads: 0 = one per configuration (capped at hardware
  /// concurrency), 1 = run configurations sequentially in order — fully
  /// deterministic, used by tests.
  int num_threads = 0;
};

/// The built-in portfolio: diverse variable orders and symmetry settings
/// seeded from `base` (engine/model/budget are inherited from it).
std::vector<SpaceOptions> default_portfolio_configs(const SpaceOptions& base);

struct MapResult {
  bool success = false;
  bool timed_out = false;
  Mapping mapping;
  int ii = 0;
  MiiBreakdown mii;
  double time_phase_s = 0.0;   // Table III "Time" column
  double space_phase_s = 0.0;  // Table III "Space" column
  double total_s = 0.0;
  int schedules_tried = 0;
  /// Space searches cut off by the backtrack budget (learned nothing).
  int space_truncated = 0;
  /// Space searches that ran to a complete refutation (each fed a nogood).
  int space_exhausted = 0;
  /// Non-chronological retreats summed over all space searches.
  std::uint64_t space_backjumps = 0;
  /// Adaptive-budget policy actions (see
  /// DecoupledMapperOptions::adaptive_space_budget).
  int budget_extensions = 0;
  int budget_shrinks = 0;
  int budget_probes = 0;  // last-chance full-budget searches granted
  std::string failure_reason;
  TimeSolverStats time_stats;
  SpaceResult last_space;
  /// Which portfolio configuration produced this result (-1 when the result
  /// did not come from map_portfolio).
  int portfolio_config = -1;
};

class DecoupledMapper {
 public:
  explicit DecoupledMapper(DecoupledMapperOptions options = {})
      : options_(options) {}

  /// Map `dfg` onto `arch`. The returned mapping (on success) always passes
  /// validate_mapping — this is asserted internally.
  MapResult map(const Dfg& dfg, const CgraArch& arch) const;

  /// Like map(), but under an externally supplied deadline (which may carry
  /// a CancelToken). options_.timeout_s is ignored.
  MapResult map(const Dfg& dfg, const CgraArch& arch,
                const Deadline& deadline) const;

  /// Race several space configurations for the same DFG across threads;
  /// the first valid mapping wins and cancels the rest (atomic first-win
  /// token observed through each racer's Deadline). With
  /// portfolio.num_threads == 1 the configurations run sequentially in
  /// order, which makes the result deterministic.
  MapResult map_portfolio(const Dfg& dfg, const CgraArch& arch,
                          const PortfolioOptions& portfolio = {}) const;

  /// Map a whole batch of DFGs across `num_threads` worker threads
  /// (0 = hardware concurrency). Results are positionally aligned with
  /// `dfgs`. The whole batch shares ONE options_.timeout_s budget.
  std::vector<MapResult> map_batch(const std::vector<const Dfg*>& dfgs,
                                   const CgraArch& arch,
                                   int num_threads = 0) const;

  /// Like the above, but every item observes the externally supplied
  /// shared `deadline` — including its CancelToken, so a caller can cut an
  /// entire in-flight batch short. options_.timeout_s is ignored.
  std::vector<MapResult> map_batch(const std::vector<const Dfg*>& dfgs,
                                   const CgraArch& arch,
                                   const Deadline& deadline,
                                   int num_threads = 0) const;

 private:
  DecoupledMapperOptions options_;
};

}  // namespace monomap

#endif  // MONOMAP_MAPPER_DECOUPLED_MAPPER_HPP
