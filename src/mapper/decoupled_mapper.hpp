// The paper's contribution: space/time-decoupled CGRA mapping (Sec. IV).
//
// Pipeline per II (starting at mII):
//   1. TIME   — SAT search over the KMS with capacity + connectivity
//               constraints yields a schedule (labels per node).
//   2. SPACE  — monomorphism search places the labelled DFG into the MRRG.
//   3. If space fails (rare; Sec. IV-D argues it should not happen under the
//      constraints), block that label vector and ask for the next schedule.
//
// The result records the two phase times separately — Table III's
// "Time"/"Space" columns.
#ifndef MONOMAP_MAPPER_DECOUPLED_MAPPER_HPP
#define MONOMAP_MAPPER_DECOUPLED_MAPPER_HPP

#include <string>

#include "mapper/mapping.hpp"
#include "space/monomorphism.hpp"
#include "timing/time_solver.hpp"

namespace monomap {

struct DecoupledMapperOptions {
  TimeSolverOptions time;
  SpaceOptions space;
  /// Overall wall-clock budget in seconds (paper: 4000 s); <= 0 = unlimited.
  double timeout_s = 4000.0;
  /// After this many schedules fail in space at one II, escalate to II+1.
  /// (The paper's Sec. IV-D argues failures should be rare; when the DFG has
  /// high-degree hubs the counting argument has gaps, and escalating II is
  /// what produces the II > mII rows seen in the paper's Table III.)
  int max_space_retries_per_ii = 8;
};

/// Parallel-portfolio configuration: race several space-search
/// configurations for the same DFG and take the first valid mapping.
struct PortfolioOptions {
  /// Space configurations to race. Empty = a built-in diverse set
  /// (dynamic-MRV / connectivity / degree orders, symmetry on/off); see
  /// default_portfolio_configs().
  std::vector<SpaceOptions> configs;
  /// Worker threads: 0 = one per configuration (capped at hardware
  /// concurrency), 1 = run configurations sequentially in order — fully
  /// deterministic, used by tests.
  int num_threads = 0;
};

/// The built-in portfolio: diverse variable orders and symmetry settings
/// seeded from `base` (engine/model/budget are inherited from it).
std::vector<SpaceOptions> default_portfolio_configs(const SpaceOptions& base);

struct MapResult {
  bool success = false;
  bool timed_out = false;
  Mapping mapping;
  int ii = 0;
  MiiBreakdown mii;
  double time_phase_s = 0.0;   // Table III "Time" column
  double space_phase_s = 0.0;  // Table III "Space" column
  double total_s = 0.0;
  int schedules_tried = 0;
  std::string failure_reason;
  TimeSolverStats time_stats;
  SpaceResult last_space;
  /// Which portfolio configuration produced this result (-1 when the result
  /// did not come from map_portfolio).
  int portfolio_config = -1;
};

class DecoupledMapper {
 public:
  explicit DecoupledMapper(DecoupledMapperOptions options = {})
      : options_(options) {}

  /// Map `dfg` onto `arch`. The returned mapping (on success) always passes
  /// validate_mapping — this is asserted internally.
  MapResult map(const Dfg& dfg, const CgraArch& arch) const;

  /// Like map(), but under an externally supplied deadline (which may carry
  /// a CancelToken). options_.timeout_s is ignored.
  MapResult map(const Dfg& dfg, const CgraArch& arch,
                const Deadline& deadline) const;

  /// Race several space configurations for the same DFG across threads;
  /// the first valid mapping wins and cancels the rest (atomic first-win
  /// token observed through each racer's Deadline). With
  /// portfolio.num_threads == 1 the configurations run sequentially in
  /// order, which makes the result deterministic.
  MapResult map_portfolio(const Dfg& dfg, const CgraArch& arch,
                          const PortfolioOptions& portfolio = {}) const;

  /// Map a whole batch of DFGs across `num_threads` worker threads
  /// (0 = hardware concurrency). Results are positionally aligned with
  /// `dfgs`. The whole batch shares ONE options_.timeout_s budget.
  std::vector<MapResult> map_batch(const std::vector<const Dfg*>& dfgs,
                                   const CgraArch& arch,
                                   int num_threads = 0) const;

  /// Like the above, but every item observes the externally supplied
  /// shared `deadline` — including its CancelToken, so a caller can cut an
  /// entire in-flight batch short. options_.timeout_s is ignored.
  std::vector<MapResult> map_batch(const std::vector<const Dfg*>& dfgs,
                                   const CgraArch& arch,
                                   const Deadline& deadline,
                                   int num_threads = 0) const;

 private:
  DecoupledMapperOptions options_;
};

}  // namespace monomap

#endif  // MONOMAP_MAPPER_DECOUPLED_MAPPER_HPP
