// The paper's contribution: space/time-decoupled CGRA mapping (Sec. IV).
//
// Pipeline per II (starting at mII):
//   1. TIME   — SAT search over the KMS with capacity + connectivity
//               constraints yields a schedule (labels per node).
//   2. SPACE  — monomorphism search places the labelled DFG into the MRRG.
//   3. If space fails (rare; Sec. IV-D argues it should not happen under the
//      constraints), block that label vector and ask for the next schedule.
//
// The result records the two phase times separately — Table III's
// "Time"/"Space" columns.
#ifndef MONOMAP_MAPPER_DECOUPLED_MAPPER_HPP
#define MONOMAP_MAPPER_DECOUPLED_MAPPER_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "mapper/cross_ii_store.hpp"
#include "mapper/mapping.hpp"
#include "space/monomorphism.hpp"
#include "support/outcome.hpp"
#include "timing/time_solver.hpp"

namespace monomap {

struct DecoupledMapperOptions {
  TimeSolverOptions time;
  SpaceOptions space;
  /// Overall wall-clock budget in seconds (paper: 4000 s); <= 0 = unlimited.
  double timeout_s = 4000.0;
  /// After this many *uninformative* space failures at one II, escalate to
  /// II+1. Uninformative means the search either truncated (budget ran
  /// out, nothing learned) or refuted the schedule with a conflict set
  /// spanning most of the DFG (> half the nodes — the nogood prunes almost
  /// no other schedules, the classic signature of a spatially dead II).
  /// Narrow refutations don't count against this: each one feeds a sound
  /// family-pruning nogood back into the time search, so retrying is
  /// progress, not wheel-spinning (they are bounded separately by
  /// max_space_refutations_per_ii).
  /// (The paper's Sec. IV-D argues failures should be rare; when the DFG
  /// has high-degree hubs the counting argument has gaps, and escalating
  /// II is what produces the II > mII rows seen in the paper's Table III.)
  int max_space_retries_per_ii = 8;
  /// Hard cap on narrow (family-pruning) space refutations at one II
  /// before the mapper escalates anyway (guards against an II whose huge
  /// schedule space is spatially dead but only refutable one narrow family
  /// at a time). 0 = unlimited.
  int max_space_refutations_per_ii = 64;
  /// Conflict-driven space budget adaptation. The per-schedule backtrack
  /// budget starts at space.max_backtracks and then tracks what the
  /// conflicts say, keyed off SpaceResult::shallowest_retreat (the
  /// minimum backjump target — how shallow the failure's conflicts
  /// reached, not how deep the dive got): a truncated search whose
  /// conflicts implicated shallow decisions marks a hopeless schedule
  /// family — shrink the budget and move on; one whose retreats all
  /// stayed confined near the leaves is a near-miss — double the budget
  /// (up to base * max_space_budget_boost); a complete refutation with a
  /// narrow conflict set resets to the base budget (the nogood channel is
  /// doing the pruning). Disable to get the historical flat behaviour
  /// (full budget on the first schedule of an II, a quarter on retries).
  bool adaptive_space_budget = true;
  /// Floor for the adapted budget.
  std::uint64_t min_space_backtracks = 4'096;
  /// Divisor applied to the budget after an uninformative failure
  /// (shallow truncation or wide refutation). 2 is cautious — it keeps
  /// mid-sized probes alive for schedules that are placeable but need
  /// some search; 4+ kills dead-II mills faster at the risk of truncating
  /// a findable placement.
  std::uint64_t space_budget_shrink_divisor = 2;
  /// Ceiling multiplier for the adapted budget (base * boost).
  std::uint64_t max_space_budget_boost = 8;
  /// A truncated search whose shallowest backjump target stayed at or
  /// above fraction * num_nodes counts as a near-miss (its conflicts never
  /// implicated the shallow placements).
  double near_miss_depth_fraction = 0.75;
  /// Last-chance probe: when an II is about to be abandoned on truncations
  /// alone — the engine never completed a single search there, so its
  /// feasibility is genuinely unknown and the later, budget-starved
  /// schedules may have been placeable — grant one more schedule at the
  /// full base budget before escalating. IIs with refutation evidence (the
  /// engine proved schedules dead there within budget) escalate without
  /// the probe. Bounded: one probe per II.
  bool last_chance_probe = true;
  /// Anytime mode (map() only): before the bottom-up walk, secure a
  /// fallback mapping at the II ceiling (max(mII, #nodes) — where a fully
  /// sequential schedule always places) and cap the walk below it. If the
  /// walk is cut short by the deadline, the schedule budget, or the memory
  /// governor, the held mapping is returned marked MapOutcome::kDegraded
  /// with the sound interval [ii_lo, ii_hi] instead of a bare failure; if
  /// the walk soundly refutes everything below the ceiling, the fallback
  /// is promoted to kFeasible. Default off: the probe costs one extra
  /// mapping attempt, and non-anytime callers pin exact-walk behaviour.
  bool anytime = false;
  /// Deterministic work budget: give up (timed_out, or degraded under
  /// anytime) after this many schedules have been tried. Unlike the wall
  /// clock this is bit-reproducible across machines and runs — the
  /// degraded-mode determinism test pins that. 0 = unlimited.
  int max_schedules = 0;
  /// Retries after an injected fault or allocation failure before the
  /// request is classified kFault/kMemory (bounded exponential backoff
  /// between attempts; see support/fault.hpp).
  int max_fault_retries = 3;
  /// Per-request memory budget in MiB, accounted by the SAT learnt DB, the
  /// bitset searcher's trail reservations, and the cross-II nogood store
  /// (see support/resource.hpp). 0 = unlimited — and bit-identical to the
  /// ungoverned build.
  std::size_t memory_budget_mb = 0;
};

/// Parallel-portfolio configuration: race several space-search
/// configurations for the same DFG and take the first valid mapping.
struct PortfolioOptions {
  /// Space configurations to race. Empty = a built-in diverse set
  /// (dynamic-MRV / connectivity / degree orders, symmetry on/off); see
  /// default_portfolio_configs().
  std::vector<SpaceOptions> configs;
  /// Worker threads: 0 = one per configuration (capped at hardware
  /// concurrency), 1 = run configurations sequentially in order — fully
  /// deterministic, used by tests.
  int num_threads = 0;
};

/// The built-in portfolio: diverse variable orders and symmetry settings
/// seeded from `base` (engine/model/budget are inherited from it).
std::vector<SpaceOptions> default_portfolio_configs(const SpaceOptions& base);

/// Speculative cross-II race configuration (map_speculative).
struct SpeculativeOptions {
  /// Worker threads for the II race (<= 0 = hardware concurrency). Always
  /// clamped to the machine's core count: extra workers would only
  /// timeslice against the frontier attempt. On a small machine the race
  /// degenerates gracefully toward the sequential walk.
  int num_threads = 4;
  /// How many IIs beyond the unresolved frontier to keep in flight: with
  /// lookahead 2, while II is still being refuted II+1 and II+2 already
  /// run on spare threads. 0 degenerates to one II at a time (still a
  /// pinned-II replay of the sequential walk, just on a worker thread).
  int lookahead = 2;
  /// Share slot-partition certificates across the racing IIs (see
  /// CrossIiNogoodStore) so speculative IIs start warm. The certificates
  /// are sound — they prune only schedules whose slot partition some II
  /// already proved spatially dead, so a feasible II can never be missed
  /// and the committed mapping always validates — but the injected
  /// clauses change the SAT enumeration order, which moves the per-II
  /// retry policy's heuristic give-up points: on borderline cases the
  /// warm walk can settle one II away from the sequential walk (either
  /// direction), and which certificates arrive in time depends on thread
  /// timing. Default OFF, which makes every attempt a pure function of
  /// its II and the final answer bit-exactly equal to sequential map().
  /// Turn on for throughput work where "a valid minimal-II-of-its-walk
  /// mapping, faster" beats "the exact sequential answer". Certificate
  /// sharing is additionally gated off for MrrgModel::kConsecutiveOnly,
  /// where cyclic label distances change with II and the partition
  /// argument does not carry.
  bool share_nogoods = false;
};

/// Aggregate telemetry for one map_batch call (the per-case MapResults
/// cannot carry pool-level counters without double counting).
struct BatchStats {
  std::uint64_t steals = 0;  // tasks taken from another worker's deque
  /// Tasks a worker put back after an injected pool.worker fault fired.
  std::uint64_t fault_requeues = 0;
  /// Cases per final MapOutcome, indexed by static_cast<int>(outcome).
  std::array<std::uint64_t, kMapOutcomeCount> outcome_counts{};
};

struct MapResult {
  bool success = false;
  bool timed_out = false;
  /// The deadline's CancelToken fired (subset of timed_out): the run was
  /// cut short by a caller — a portfolio/speculative first-win or an
  /// explicit batch cancel — not by the wall clock. Batch telemetry uses
  /// this to tell a cancelled case from one that genuinely ran out of
  /// budget.
  bool cancelled = false;
  /// Structured verdict derived from the flags below (precedence:
  /// feasible > degraded > cancelled > memory > fault > deadline >
  /// refuted). The flags stay authoritative for callers that predate the
  /// taxonomy; `outcome` is what the CLI exit code and batch telemetry
  /// key on.
  MapOutcome outcome = MapOutcome::kRefuted;
  /// Machine-readable cause chain (site, detail), outermost first.
  std::vector<OutcomeCause> causes;
  /// Anytime mode: `mapping` is the held fallback, not a proven optimum —
  /// the walk below ii was cut short. The true minimal II lies in
  /// [ii_lo, ii_hi] (see below). Implies success.
  bool degraded = false;
  /// The request's memory governor tripped (subset of timed_out on
  /// non-degraded results).
  bool memory_out = false;
  /// An injected fault (or allocation failure) survived every retry.
  bool faulted = false;
  /// Fault-retry attempts consumed (see
  /// DecoupledMapperOptions::max_fault_retries).
  int fault_retries = 0;
  /// Sound interval for the optimal II. ii_lo = deepest soundly refuted
  /// II + 1 — an II counts as refuted only via natural time-phase
  /// exhaustion with zero truncated space searches at that II (heuristic
  /// skips prove nothing), contiguously from the walk's start. ii_hi is
  /// the achieved II on success/degraded, 0 (unknown) otherwise. On a
  /// kFeasible result from the plain walk ii_hi == ii but ii_lo may sit
  /// below it when the walk skipped IIs heuristically.
  int ii_lo = 1;
  int ii_hi = 0;
  /// The raw contiguous sound-refutation high-water mark behind ii_lo.
  int ii_refuted_up_to = 0;
  /// This run soundly refuted its ENTIRE II range (natural time-phase
  /// exhaustion, zero truncated space searches, no heuristic skips). For a
  /// pinned map_at_ii run this means exactly "this II is soundly refuted"
  /// — the speculative walk's interval tracking keys on it.
  bool sound_refutation = false;
  /// Memory-governor telemetry (zero when ungoverned).
  std::size_t mem_peak_bytes = 0;
  int mem_sheds = 0;
  Mapping mapping;
  int ii = 0;
  MiiBreakdown mii;
  double time_phase_s = 0.0;   // Table III "Time" column
  double space_phase_s = 0.0;  // Table III "Space" column
  double total_s = 0.0;
  int schedules_tried = 0;
  /// Space searches cut off by the backtrack budget (learned nothing).
  int space_truncated = 0;
  /// Space searches that ran to a complete refutation (each fed a nogood).
  int space_exhausted = 0;
  /// Non-chronological retreats summed over all space searches.
  std::uint64_t space_backjumps = 0;
  /// Adaptive-budget policy actions (see
  /// DecoupledMapperOptions::adaptive_space_budget).
  int budget_extensions = 0;
  int budget_shrinks = 0;
  int budget_probes = 0;  // last-chance full-budget searches granted
  /// Speculative runs: schedules discarded by the cross-II certificate
  /// prefilter without running a space search (each one is a space search
  /// another II already paid for).
  int speculative_hits = 0;
  /// Speculative runs: label-nogood clauses instantiated from other IIs'
  /// slot-partition certificates (warm-start volume).
  int nogoods_lifted_cross_ii = 0;
  /// Work-stealing pool steals observed by this call (map_speculative
  /// only; map_batch reports pool-level steals via BatchStats).
  std::uint64_t steals = 0;
  std::string failure_reason;
  TimeSolverStats time_stats;
  SpaceResult last_space;
  /// Which portfolio configuration produced this result (-1 when the result
  /// did not come from map_portfolio).
  int portfolio_config = -1;
};

class DecoupledMapper {
 public:
  explicit DecoupledMapper(DecoupledMapperOptions options = {})
      : options_(options) {}

  /// Map `dfg` onto `arch`. The returned mapping (on success) always passes
  /// validate_mapping — this is asserted internally.
  MapResult map(const Dfg& dfg, const CgraArch& arch) const;

  /// Like map(), but under an externally supplied deadline (which may carry
  /// a CancelToken). options_.timeout_s is ignored.
  MapResult map(const Dfg& dfg, const CgraArch& arch,
                const Deadline& deadline) const;

  /// Run the space/time loop pinned to exactly `ii` — no escalation. The
  /// per-II policy (nogood feedback, adaptive budgets, last-chance probe)
  /// is the exact code map() runs at one II, so "!success && !timed_out"
  /// here means precisely "sequential map() would have escalated past ii".
  /// When `store` is non-null (speculative runs, register-persistence
  /// model only) the attempt drains the store into its time solver as
  /// warm-start clauses + a schedule prefilter, and contributes its own
  /// refutation certificates back.
  MapResult map_at_ii(const Dfg& dfg, const CgraArch& arch, int ii,
                      const Deadline& deadline,
                      CrossIiNogoodStore* store = nullptr) const;

  /// Warm-started sequential walk for the cross-request knowledge layer:
  /// II rises one at a time from max(refuted_floor + 1, mII) via pinned
  /// map_at_ii attempts that share `store` — seeded certificates prune
  /// schedules through the usual rotation-clause + prefilter channel, and
  /// refutations this walk finds are published back into `store` for the
  /// caller to harvest. `refuted_floor` must be sound (every II <= floor
  /// refuted by natural exhaustion — the KnowledgeStore only records such
  /// floors), and the walk keeps the same contiguous sound-refutation
  /// accounting as map(): the result's ii_refuted_up_to never exceeds a
  /// sound refutation. With a null store and floor 0 this is the
  /// per-II replay of sequential map() (same per-II policy, same answer).
  MapResult map_warm(const Dfg& dfg, const CgraArch& arch,
                     const Deadline& deadline,
                     CrossIiNogoodStore* store = nullptr,
                     int refuted_floor = 0) const;

  /// Speculative cross-II race: while the lowest unresolved II is still in
  /// its space/time loop, II+1..II+lookahead already run on spare threads.
  /// Deterministic commit rule: a feasible II is returned only once every
  /// strictly smaller II has been refuted, so minimal-II optimality is
  /// preserved. With the default options each attempt is a pure function
  /// of its II (no cross-attempt information flow), so the committed II
  /// bit-exactly equals the sequential map() answer on every input —
  /// speculation buys wall clock, not a different answer. With
  /// spec.share_nogoods the attempts additionally exchange slot-partition
  /// certificates through a CrossIiNogoodStore (see that option's caveat).
  MapResult map_speculative(const Dfg& dfg, const CgraArch& arch,
                            const SpeculativeOptions& spec = {}) const;

  /// Like the above under an external deadline (which may carry a
  /// CancelToken). options_.timeout_s is ignored.
  MapResult map_speculative(const Dfg& dfg, const CgraArch& arch,
                            const Deadline& deadline,
                            const SpeculativeOptions& spec = {}) const;

  /// Race several space configurations for the same DFG across threads;
  /// the first valid mapping wins and cancels the rest (atomic first-win
  /// token observed through each racer's Deadline). With
  /// portfolio.num_threads == 1 the configurations run sequentially in
  /// order, which makes the result deterministic.
  MapResult map_portfolio(const Dfg& dfg, const CgraArch& arch,
                          const PortfolioOptions& portfolio = {}) const;

  /// Map a whole batch of DFGs across `num_threads` worker threads
  /// (0 = hardware concurrency). Results are positionally aligned with
  /// `dfgs`. The whole batch shares ONE options_.timeout_s budget.
  std::vector<MapResult> map_batch(const std::vector<const Dfg*>& dfgs,
                                   const CgraArch& arch,
                                   int num_threads = 0) const;

  /// Like the above, but every item observes the externally supplied
  /// shared `deadline` — including its CancelToken, so a caller can cut an
  /// entire in-flight batch short. options_.timeout_s is ignored.
  ///
  /// With num_threads != 1 the batch runs on a work-stealing pool and each
  /// case is split into per-II subtasks (a lookahead-1 speculative race),
  /// so one pathological case no longer idles the other cores; with
  /// num_threads == 1 every case runs the plain sequential map() in order.
  /// `stats`, when non-null, receives pool-level telemetry.
  std::vector<MapResult> map_batch(const std::vector<const Dfg*>& dfgs,
                                   const CgraArch& arch,
                                   const Deadline& deadline,
                                   int num_threads = 0,
                                   BatchStats* stats = nullptr) const;

 private:
  struct CrossIiContext;  // speculative-attempt state threaded into the loop

  /// The per-schedule space/time loop shared by map() and map_at_ii():
  /// pull schedules, run (or prefilter) the space search, feed conflicts
  /// back, adapt budgets, escalate II when the policy says so. `ctx` is
  /// null on sequential runs.
  void run_mapping_loop(const Dfg& dfg, const CgraArch& arch,
                        const Deadline& deadline, TimeSolver& time_solver,
                        CrossIiContext* ctx, MapResult& result) const;

  /// One bottom-up walk under the given time options (the historical map()
  /// body, parameterised so the anytime path can cap max_ii).
  MapResult map_walk(const Dfg& dfg, const CgraArch& arch,
                     const Deadline& deadline,
                     const TimeSolverOptions& time_options) const;

  /// map() minus governor binding and fault retries: the plain walk, or
  /// the anytime probe + capped walk + degradation merge.
  MapResult map_sequential(const Dfg& dfg, const CgraArch& arch,
                           const Deadline& deadline) const;

  DecoupledMapperOptions options_;
};

}  // namespace monomap

#endif  // MONOMAP_MAPPER_DECOUPLED_MAPPER_HPP
