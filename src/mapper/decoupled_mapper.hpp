// The paper's contribution: space/time-decoupled CGRA mapping (Sec. IV).
//
// Pipeline per II (starting at mII):
//   1. TIME   — SAT search over the KMS with capacity + connectivity
//               constraints yields a schedule (labels per node).
//   2. SPACE  — monomorphism search places the labelled DFG into the MRRG.
//   3. If space fails (rare; Sec. IV-D argues it should not happen under the
//      constraints), block that label vector and ask for the next schedule.
//
// The result records the two phase times separately — Table III's
// "Time"/"Space" columns.
#ifndef MONOMAP_MAPPER_DECOUPLED_MAPPER_HPP
#define MONOMAP_MAPPER_DECOUPLED_MAPPER_HPP

#include <string>

#include "mapper/mapping.hpp"
#include "space/monomorphism.hpp"
#include "timing/time_solver.hpp"

namespace monomap {

struct DecoupledMapperOptions {
  TimeSolverOptions time;
  SpaceOptions space;
  /// Overall wall-clock budget in seconds (paper: 4000 s); <= 0 = unlimited.
  double timeout_s = 4000.0;
  /// After this many schedules fail in space at one II, escalate to II+1.
  /// (The paper's Sec. IV-D argues failures should be rare; when the DFG has
  /// high-degree hubs the counting argument has gaps, and escalating II is
  /// what produces the II > mII rows seen in the paper's Table III.)
  int max_space_retries_per_ii = 8;
};

struct MapResult {
  bool success = false;
  bool timed_out = false;
  Mapping mapping;
  int ii = 0;
  MiiBreakdown mii;
  double time_phase_s = 0.0;   // Table III "Time" column
  double space_phase_s = 0.0;  // Table III "Space" column
  double total_s = 0.0;
  int schedules_tried = 0;
  std::string failure_reason;
  TimeSolverStats time_stats;
  SpaceResult last_space;
};

class DecoupledMapper {
 public:
  explicit DecoupledMapper(DecoupledMapperOptions options = {})
      : options_(options) {}

  /// Map `dfg` onto `arch`. The returned mapping (on success) always passes
  /// validate_mapping — this is asserted internally.
  MapResult map(const Dfg& dfg, const CgraArch& arch) const;

 private:
  DecoupledMapperOptions options_;
};

}  // namespace monomap

#endif  // MONOMAP_MAPPER_DECOUPLED_MAPPER_HPP
