// Per-PE configuration ("bitstream") generation.
//
// The CGRA's instruction memory holds, for every PE, one micro-op per kernel
// slot (paper Fig. 1: Instruction Memory feeding the PE array). Given a
// kernel + mapping, this module emits the textual configuration image:
// opcode, operand routing (which neighbour's register file each operand is
// read from, and how many iterations back the value was produced) and the
// destination register.
#ifndef MONOMAP_MAPPER_CONFIG_GEN_HPP
#define MONOMAP_MAPPER_CONFIG_GEN_HPP

#include <string>
#include <vector>

#include "ir/kernel.hpp"
#include "mapper/mapping.hpp"

namespace monomap {

/// Routing direction from a consumer PE to the producer PE's register file.
enum class RouteDir { kSelf, kNorth, kSouth, kEast, kWest, kOther };

const char* to_string(RouteDir dir);

/// One operand's routing description.
struct OperandRoute {
  NodeId producer = kInvalidNode;
  RouteDir dir = RouteDir::kSelf;
  int distance = 0;  // loop-carried distance (iterations back)
};

/// One configured slot of one PE.
struct PeSlotConfig {
  bool active = false;
  NodeId node = kInvalidNode;
  Opcode op = Opcode::kConst;
  std::vector<OperandRoute> routes;
};

/// The full configuration image: config[pe][slot].
class ConfigImage {
 public:
  ConfigImage(const LoopKernel& kernel, const Dfg& dfg, const CgraArch& arch,
              const Mapping& mapping);

  [[nodiscard]] int ii() const { return ii_; }
  [[nodiscard]] const PeSlotConfig& at(PeId pe, int slot) const;

  /// Fraction of (PE, slot) issue slots that hold an operation.
  [[nodiscard]] double utilization() const;

  /// Human-readable assembly-style listing.
  [[nodiscard]] std::string to_string() const;

 private:
  const CgraArch* arch_;
  int ii_;
  std::vector<PeSlotConfig> slots_;  // pe * ii + slot
};

}  // namespace monomap

#endif  // MONOMAP_MAPPER_CONFIG_GEN_HPP
