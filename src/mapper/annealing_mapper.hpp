// Simulated-annealing heuristic mapper (DRESC-style baseline).
//
// The first generation of CGRA mappers (Mei et al., ADRES/DRESC [11])
// anneals scheduling, placement and routing together: start from a random
// space-time assignment and move single operations to random legal
// positions, accepting cost-increasing moves with Boltzmann probability.
// The paper's related-work section cites the known drawbacks — long run
// times, low-quality solutions, limited scalability — which this
// implementation lets the benches quantify against both exact mappers.
//
// Cost function: weighted sum of dependency-timing violations, spatial
// adjacency violations and (PE, slot) collisions; a zero-cost state is a
// valid mapping (it passes validate_mapping by construction).
#ifndef MONOMAP_MAPPER_ANNEALING_MAPPER_HPP
#define MONOMAP_MAPPER_ANNEALING_MAPPER_HPP

#include <cstdint>

#include "mapper/mapping.hpp"
#include "sched/mii.hpp"

namespace monomap {

struct AnnealingOptions {
  /// Overall wall-clock budget in seconds; <= 0 = unlimited.
  double timeout_s = 60.0;
  /// Highest II to try; 0 = automatic (same rule as the exact mappers).
  int max_ii = 0;
  /// Random restarts per II before escalating.
  int restarts_per_ii = 3;
  /// Moves per temperature step = this factor times the node count.
  int moves_per_node = 64;
  double initial_temperature = 3.0;
  double cooling = 0.92;
  /// Temperature floor: below it the search is greedy; a restart follows.
  double min_temperature = 0.02;
  std::uint64_t seed = 0xC6A4A793;
};

struct AnnealResult {
  bool success = false;
  bool timed_out = false;
  Mapping mapping;
  int ii = 0;
  MiiBreakdown mii;
  double total_s = 0.0;
  std::uint64_t moves = 0;
  int restarts = 0;
  std::string failure_reason;
};

class AnnealingMapper {
 public:
  explicit AnnealingMapper(AnnealingOptions options = {})
      : options_(options) {}

  /// Map by simulated annealing over the joint space-time assignment.
  /// On success the mapping passes validate_mapping (asserted internally).
  AnnealResult map(const Dfg& dfg, const CgraArch& arch) const;

 private:
  AnnealingOptions options_;
};

}  // namespace monomap

#endif  // MONOMAP_MAPPER_ANNEALING_MAPPER_HPP
