#include "mapper/coupled_mapper.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "encode/cnf_builder.hpp"
#include "sched/asap_alap.hpp"
#include "sched/mobility.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"

namespace monomap {

namespace {

/// One joint formulation instance at a fixed (II, horizon).
class JointFormulation {
 public:
  JointFormulation(const Dfg& dfg, const CgraArch& arch, int ii, int horizon)
      : dfg_(dfg), arch_(arch), ii_(ii), mobs_(dfg, horizon), cnf_(solver_) {}

  /// Returns false if trivially unsatisfiable or the deadline expired during
  /// construction (sets timed_out).
  bool build(const Deadline& deadline) {
    const int n = dfg_.num_nodes();
    const int pes = arch_.num_pes();
    z_base_.resize(static_cast<std::size_t>(n));

    // Position variables + exactly-one per node.
    for (NodeId v = 0; v < n; ++v) {
      const ScheduleRange& r = mobs_.range(v);
      z_base_[static_cast<std::size_t>(v)] = solver_.num_vars();
      std::vector<Lit> all;
      all.reserve(static_cast<std::size_t>(r.width() * pes));
      for (int t = r.asap; t <= r.alap; ++t) {
        for (PeId p = 0; p < pes; ++p) {
          all.push_back(Lit::pos(solver_.new_var()));
        }
      }
      if (!cnf_.exactly_one(all)) return false;
      if (deadline.expired()) {
        timed_out_ = true;
        return false;
      }
    }

    // Exclusivity: at most one node per (PE, slot) — one PE executes one
    // operation per kernel cycle.
    {
      std::vector<std::vector<Lit>> bins(
          static_cast<std::size_t>(pes) * static_cast<std::size_t>(ii_));
      for (NodeId v = 0; v < n; ++v) {
        const ScheduleRange& r = mobs_.range(v);
        for (int t = r.asap; t <= r.alap; ++t) {
          for (PeId p = 0; p < pes; ++p) {
            bins[static_cast<std::size_t>(t % ii_) *
                     static_cast<std::size_t>(pes) +
                 static_cast<std::size_t>(p)]
                .push_back(z_lit(v, t, p));
          }
        }
      }
      for (const auto& bin : bins) {
        if (!cnf_.at_most_one(bin)) return false;
      }
      if (deadline.expired()) {
        timed_out_ = true;
        return false;
      }
    }

    // Dependencies: placing the source implies a compatible destination
    // placement (timing + neighbourhood), per edge and source position.
    const Graph& g = dfg_.graph();
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& edge = g.edge(e);
      if (edge.src == edge.dst) {
        MONOMAP_ASSERT_MSG(edge.attr >= 1,
                           "zero-distance self-dependency is unschedulable");
        continue;
      }
      const ScheduleRange& rs = mobs_.range(edge.src);
      const ScheduleRange& rd = mobs_.range(edge.dst);
      for (int ts = rs.asap; ts <= rs.alap; ++ts) {
        // Destination times satisfying T_d + dist*II >= T_s + 1.
        std::vector<int> valid_td;
        for (int td = rd.asap; td <= rd.alap; ++td) {
          if (td + edge.attr * ii_ >= ts + 1) valid_td.push_back(td);
        }
        for (PeId ps = 0; ps < arch_.num_pes(); ++ps) {
          std::vector<Lit> targets;
          for (const int td : valid_td) {
            for (const PeId pd : arch_.closed_neighbors(ps)) {
              if (pd == ps && td % ii_ == ts % ii_) {
                continue;  // same MRRG vertex cannot hold both endpoints
              }
              targets.push_back(z_lit(edge.dst, td, pd));
            }
          }
          if (!cnf_.implies_clause(z_lit(edge.src, ts, ps),
                                   std::move(targets))) {
            return false;
          }
        }
        if (deadline.expired()) {
          timed_out_ = true;
          return false;
        }
      }
    }
    return true;
  }

  SatStatus solve(const Deadline& deadline) { return solver_.solve(deadline); }

  [[nodiscard]] Mapping extract() const {
    const int n = dfg_.num_nodes();
    std::vector<int> time(static_cast<std::size_t>(n), -1);
    std::vector<PeId> pe(static_cast<std::size_t>(n), -1);
    for (NodeId v = 0; v < n; ++v) {
      const ScheduleRange& r = mobs_.range(v);
      for (int t = r.asap; t <= r.alap && time[static_cast<std::size_t>(v)] < 0;
           ++t) {
        for (PeId p = 0; p < arch_.num_pes(); ++p) {
          if (solver_.model_value(z_lit(v, t, p))) {
            time[static_cast<std::size_t>(v)] = t;
            pe[static_cast<std::size_t>(v)] = p;
            break;
          }
        }
      }
      MONOMAP_ASSERT(time[static_cast<std::size_t>(v)] >= 0);
    }
    return Mapping(ii_, std::move(time), std::move(pe));
  }

  [[nodiscard]] bool timed_out() const { return timed_out_; }
  [[nodiscard]] int num_vars() const { return solver_.num_vars(); }
  [[nodiscard]] int num_clauses() const { return solver_.num_clauses(); }

 private:
  [[nodiscard]] Lit z_lit(NodeId v, int t, PeId p) const {
    const ScheduleRange& r = mobs_.range(v);
    MONOMAP_ASSERT(r.contains(t));
    return Lit::pos(z_base_[static_cast<std::size_t>(v)] +
                    (t - r.asap) * arch_.num_pes() + p);
  }

  const Dfg& dfg_;
  const CgraArch& arch_;
  int ii_;
  MobilitySchedule mobs_;
  SatSolver solver_;
  CnfBuilder cnf_;
  std::vector<SatVar> z_base_;
  bool timed_out_ = false;
};

}  // namespace

CoupledMapResult CoupledSatMapper::map(const Dfg& dfg,
                                       const CgraArch& arch) const {
  CoupledMapResult result;
  Stopwatch watch;
  const Deadline deadline = options_.timeout_s > 0
                                ? Deadline(options_.timeout_s)
                                : Deadline::unlimited();
  result.mii = compute_mii(dfg, arch);
  const int max_ii =
      options_.max_ii > 0
          ? options_.max_ii
          : std::max(result.mii.mii(), std::max(1, dfg.num_nodes()));
  const int cp = critical_path_length(dfg);

  for (int ii = result.mii.mii(); ii <= max_ii; ++ii) {
    for (int ext = 0; ext <= options_.max_horizon_extension; ++ext) {
      if (deadline.expired()) {
        result.timed_out = true;
        result.failure_reason = "joint search hit the deadline";
        result.total_s = watch.elapsed_s();
        return result;
      }
      JointFormulation joint(dfg, arch, ii, cp + ext);
      const bool built = joint.build(deadline);
      result.num_vars = joint.num_vars();
      result.num_clauses = joint.num_clauses();
      if (!built) {
        if (joint.timed_out()) {
          result.timed_out = true;
          result.failure_reason = "formula construction hit the deadline";
          result.total_s = watch.elapsed_s();
          return result;
        }
        continue;  // trivially UNSAT at this (ii, ext)
      }
      const SatStatus status = joint.solve(deadline);
      if (status == SatStatus::kSat) {
        result.success = true;
        result.ii = ii;
        result.mapping = joint.extract();
        const auto violations = validate_mapping(dfg, arch, result.mapping);
        MONOMAP_ASSERT_MSG(violations.empty(),
                           "coupled mapper produced invalid mapping: "
                               << violations.front().what);
        result.total_s = watch.elapsed_s();
        return result;
      }
      if (status == SatStatus::kUnknown) {
        result.timed_out = true;
        result.failure_reason = "joint SAT search hit the deadline";
        result.total_s = watch.elapsed_s();
        return result;
      }
      MONOMAP_DEBUG("coupled: UNSAT at II=" << ii << " ext=" << ext);
    }
  }
  result.failure_reason = "joint search exhausted up to max II";
  result.total_s = watch.elapsed_s();
  return result;
}

}  // namespace monomap
