#include "mapper/mapping.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace monomap {

int Mapping::max_time() const {
  MONOMAP_ASSERT(!time_.empty());
  return *std::max_element(time_.begin(), time_.end());
}

int Mapping::num_stages() const { return max_time() / ii_ + 1; }

std::vector<MappingViolation> validate_mapping(const Dfg& dfg,
                                               const CgraArch& arch,
                                               const Mapping& mapping,
                                               MrrgModel model) {
  std::vector<MappingViolation> out;
  auto fail = [&out](const std::string& what) {
    out.push_back(MappingViolation{what});
  };

  if (mapping.num_nodes() != dfg.num_nodes()) {
    fail("mapping covers " + std::to_string(mapping.num_nodes()) +
         " nodes but DFG has " + std::to_string(dfg.num_nodes()));
    return out;
  }
  const int ii = mapping.ii();

  // mono2 well-formedness: PE ids and times in range.
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    if (!arch.has_pe(mapping.pe(v))) {
      fail("node " + std::to_string(v) + " placed on invalid PE " +
           std::to_string(mapping.pe(v)));
    }
    if (mapping.time(v) < 0) {
      fail("node " + std::to_string(v) + " has negative schedule time");
    }
  }
  if (!out.empty()) return out;

  // mono1: injectivity on (PE, slot).
  std::map<std::pair<PeId, int>, NodeId> occupied;
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    const auto key = std::make_pair(mapping.pe(v), mapping.slot(v));
    const auto [it, inserted] = occupied.emplace(key, v);
    if (!inserted) {
      fail("nodes " + std::to_string(it->second) + " and " +
           std::to_string(v) + " both occupy PE" +
           std::to_string(key.first) + " slot " + std::to_string(key.second));
    }
  }

  // Capacity per slot (redundant with mono1; kept for diagnostics).
  std::vector<int> per_slot(static_cast<std::size_t>(ii), 0);
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    ++per_slot[static_cast<std::size_t>(mapping.slot(v))];
  }
  for (int s = 0; s < ii; ++s) {
    if (per_slot[static_cast<std::size_t>(s)] > arch.num_pes()) {
      fail("slot " + std::to_string(s) + " holds " +
           std::to_string(per_slot[static_cast<std::size_t>(s)]) +
           " ops > " + std::to_string(arch.num_pes()) + " PEs");
    }
  }

  // Timing + mono3 spatial adjacency per edge.
  const Graph& g = dfg.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    const int ts = mapping.time(edge.src);
    const int td = mapping.time(edge.dst);
    if (td + edge.attr * ii < ts + 1) {
      fail("edge " + std::to_string(edge.src) + "->" +
           std::to_string(edge.dst) + " (dist " + std::to_string(edge.attr) +
           ") violates timing: T_s=" + std::to_string(ts) +
           " T_d=" + std::to_string(td) + " II=" + std::to_string(ii));
    }
    if (edge.src == edge.dst) continue;  // self-dependency: same PE, fine
    if (!arch.adjacent_or_same(mapping.pe(edge.src), mapping.pe(edge.dst))) {
      fail("edge " + std::to_string(edge.src) + "->" +
           std::to_string(edge.dst) + " maps to non-adjacent PEs " +
           std::to_string(mapping.pe(edge.src)) + " and " +
           std::to_string(mapping.pe(edge.dst)));
    }
    if (model == MrrgModel::kConsecutiveOnly) {
      const int d =
          (mapping.slot(edge.dst) - mapping.slot(edge.src) + ii) % ii;
      if (!(d == 0 || d == 1 || d == ii - 1)) {
        fail("edge " + std::to_string(edge.src) + "->" +
             std::to_string(edge.dst) +
             " spans non-consecutive slots under the restricted model");
      }
    }
  }
  return out;
}

bool mapping_is_valid(const Dfg& dfg, const CgraArch& arch,
                      const Mapping& mapping, MrrgModel model) {
  return validate_mapping(dfg, arch, mapping, model).empty();
}

std::string mapping_to_string(const Dfg& dfg, const CgraArch& arch,
                              const Mapping& mapping) {
  std::ostringstream os;
  os << "mapping of '" << dfg.name() << "' onto " << arch.description()
     << " @ II=" << mapping.ii() << " (" << mapping.num_stages()
     << " stages)\n";
  for (int slot = 0; slot < mapping.ii(); ++slot) {
    os << "  slot " << slot << ":";
    for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
      if (mapping.slot(v) == slot) {
        os << ' ' << dfg.node_name(v) << "@PE" << mapping.pe(v) << "(T="
           << mapping.time(v) << ')';
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace monomap
