// Space-time mapping result and its validator.
//
// A mapping assigns every DFG node an absolute schedule time T (within the
// KMS horizon) and a PE. The kernel slot (the paper's label l_G) is T mod II.
// validate() checks the three monomorphism properties of Sec. IV-A plus
// dependency timing — every mapping either mapper produces must pass it.
#ifndef MONOMAP_MAPPER_MAPPING_HPP
#define MONOMAP_MAPPER_MAPPING_HPP

#include <string>
#include <vector>

#include "arch/cgra.hpp"
#include "arch/mrrg.hpp"
#include "ir/dfg.hpp"

namespace monomap {

class Mapping {
 public:
  Mapping() = default;
  Mapping(int ii, std::vector<int> time, std::vector<PeId> pe)
      : ii_(ii), time_(std::move(time)), pe_(std::move(pe)) {
    MONOMAP_ASSERT(ii_ >= 1);
    MONOMAP_ASSERT(time_.size() == pe_.size());
  }

  [[nodiscard]] bool empty() const { return time_.empty(); }
  [[nodiscard]] int ii() const { return ii_; }
  [[nodiscard]] int num_nodes() const { return static_cast<int>(time_.size()); }

  /// Absolute schedule time of node v (position in the unrolled schedule).
  [[nodiscard]] int time(NodeId v) const {
    MONOMAP_ASSERT(v >= 0 && v < num_nodes());
    return time_[static_cast<std::size_t>(v)];
  }

  /// Kernel slot of node v: the paper's label l_G(v) = T mod II.
  [[nodiscard]] int slot(NodeId v) const { return time(v) % ii_; }

  /// Iteration fold of node v: T div II (the KMS subscript).
  [[nodiscard]] int fold(NodeId v) const { return time(v) / ii_; }

  [[nodiscard]] PeId pe(NodeId v) const {
    MONOMAP_ASSERT(v >= 0 && v < num_nodes());
    return pe_[static_cast<std::size_t>(v)];
  }

  /// Latest absolute time used (schedule length - 1).
  [[nodiscard]] int max_time() const;

  /// Number of pipeline stages = ceil(schedule length / II).
  [[nodiscard]] int num_stages() const;

 private:
  int ii_ = 1;
  std::vector<int> time_;
  std::vector<PeId> pe_;
};

/// One validation problem; `what` is human-readable.
struct MappingViolation {
  std::string what;
};

/// Check `mapping` against `dfg` on `arch`:
///  * mono1 — injectivity on (PE, slot),
///  * mono2 — every node's PE/slot well-formed (label == T mod II by
///            construction; PE and T in range),
///  * mono3 — every DFG edge lands on adjacent-or-same PEs,
///  * timing — every edge (s,d,dist) satisfies T_d + dist*II >= T_s + 1,
///  * capacity — at most one node per (PE, slot) implies per-slot usage
///               <= #PEs (reported redundantly for diagnostics).
/// Returns all violations (empty == valid). Under
/// MrrgModel::kConsecutiveOnly additionally requires every edge to span
/// equal or cyclically-consecutive kernel slots (restricted interconnect).
std::vector<MappingViolation> validate_mapping(
    const Dfg& dfg, const CgraArch& arch, const Mapping& mapping,
    MrrgModel model = MrrgModel::kRegisterPersistence);

/// Convenience: true iff validate_mapping reports nothing.
bool mapping_is_valid(const Dfg& dfg, const CgraArch& arch,
                      const Mapping& mapping,
                      MrrgModel model = MrrgModel::kRegisterPersistence);

/// Render a compact kernel view: one line per slot, listing node@PE, plus a
/// Fig. 2b-style stage table. For documentation and the examples.
std::string mapping_to_string(const Dfg& dfg, const CgraArch& arch,
                              const Mapping& mapping);

}  // namespace monomap

#endif  // MONOMAP_MAPPER_MAPPING_HPP
