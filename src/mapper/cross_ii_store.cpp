#include "mapper/cross_ii_store.hpp"

#include <algorithm>
#include <map>

namespace monomap {

bool cert_hits_labels(const SlotPartitionCert& cert,
                      const std::vector<int>& labels) {
  for (const std::vector<NodeId>& block : cert.blocks) {
    const int want = labels[static_cast<std::size_t>(block.front())];
    for (std::size_t i = 1; i < block.size(); ++i) {
      if (labels[static_cast<std::size_t>(block[i])] != want) return false;
    }
  }
  return true;
}

std::vector<std::vector<std::pair<NodeId, int>>> instantiate_rotations(
    const SlotPartitionCert& cert, int target_ii) {
  std::vector<std::vector<std::pair<NodeId, int>>> out;
  out.reserve(static_cast<std::size_t>(target_ii));
  std::size_t num_nodes = 0;
  for (const auto& block : cert.blocks) num_nodes += block.size();
  for (int k = 0; k < target_ii; ++k) {
    std::vector<std::pair<NodeId, int>> placements;
    placements.reserve(num_nodes);
    for (std::size_t b = 0; b < cert.blocks.size(); ++b) {
      const int slot =
          (cert.block_slots[b] + k) % target_ii;
      for (const NodeId v : cert.blocks[b]) {
        placements.emplace_back(v, slot);
      }
    }
    out.push_back(std::move(placements));
  }
  return out;
}

bool CrossIiNogoodStore::add(int source_ii, const std::vector<NodeId>& nodes,
                             const std::vector<int>& labels) {
  if (nodes.empty()) return false;
  // Group the conflict nodes by their slot, canonically: std::map orders
  // blocks by slot, then re-sorting by first node makes the partition key
  // independent of which slots happened to carry it.
  std::map<int, std::vector<NodeId>> by_slot;
  for (const NodeId v : nodes) {
    by_slot[labels[static_cast<std::size_t>(v)]].push_back(v);
  }
  SlotPartitionCert cert;
  cert.source_ii = source_ii;
  cert.blocks.reserve(by_slot.size());
  cert.block_slots.reserve(by_slot.size());
  for (auto& [slot, block] : by_slot) {
    std::sort(block.begin(), block.end());
    cert.blocks.push_back(std::move(block));
    cert.block_slots.push_back(slot);
  }
  std::vector<std::size_t> order(cert.blocks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return cert.blocks[a].front() < cert.blocks[b].front();
  });
  SlotPartitionCert canon;
  canon.source_ii = cert.source_ii;
  canon.blocks.reserve(order.size());
  canon.block_slots.reserve(order.size());
  for (const std::size_t i : order) {
    canon.blocks.push_back(std::move(cert.blocks[i]));
    canon.block_slots.push_back(cert.block_slots[i]);
  }

  const std::lock_guard<std::mutex> lock(m_);
  if (!seen_.insert(canon.blocks).second) return false;
  if (gov_ != nullptr) {
    // Charge the certificate; under pressure evict oldest-first — stale
    // source-II knowledge goes before fresh — and only drop the new
    // certificate when the store is empty and the budget still refuses.
    const std::size_t bytes = cert_bytes(canon);
    while (!gov_->try_charge(bytes)) {
      if (certs_.empty()) return false;
      gov_->note_shed();
      evict_front_locked();
    }
    gov_charged_ += bytes;
  }
  certs_.push_back(std::move(canon));
  return true;
}

bool CrossIiNogoodStore::add_cert(SlotPartitionCert cert) {
  if (cert.blocks.empty() || cert.blocks.size() != cert.block_slots.size()) {
    return false;
  }
  const std::lock_guard<std::mutex> lock(m_);
  if (!seen_.insert(cert.blocks).second) return false;
  if (gov_ != nullptr) {
    const std::size_t bytes = cert_bytes(cert);
    while (!gov_->try_charge(bytes)) {
      if (certs_.empty()) return false;
      gov_->note_shed();
      evict_front_locked();
    }
    gov_charged_ += bytes;
  }
  certs_.push_back(std::move(cert));
  return true;
}

CrossIiNogoodStore::~CrossIiNogoodStore() {
  if (gov_ != nullptr) gov_->uncharge(gov_charged_);
}

void CrossIiNogoodStore::set_governor(ResourceGovernor* governor) {
  const std::lock_guard<std::mutex> lock(m_);
  gov_ = governor;
}

std::size_t CrossIiNogoodStore::cert_bytes(const SlotPartitionCert& cert) {
  std::size_t bytes = sizeof(SlotPartitionCert) + 64;
  for (const auto& block : cert.blocks) {
    bytes += sizeof(std::vector<NodeId>) + block.size() * sizeof(NodeId);
  }
  bytes += cert.block_slots.size() * sizeof(int);
  return bytes;
}

void CrossIiNogoodStore::evict_front_locked() {
  const std::size_t bytes = cert_bytes(certs_.front());
  const std::size_t refund = std::min(bytes, gov_charged_);
  gov_->uncharge(refund);
  gov_charged_ -= refund;
  certs_.pop_front();
  ++base_;
  ++evicted_;
}

void CrossIiNogoodStore::drain(std::size_t* cursor,
                               std::vector<SlotPartitionCert>* out) const {
  const std::lock_guard<std::mutex> lock(m_);
  // Cursors are virtual indices; a cursor pointing below base_ names
  // evicted certificates, which are gone — skip ahead.
  for (std::size_t i = std::max(*cursor, base_); i < base_ + certs_.size();
       ++i) {
    out->push_back(certs_[i - base_]);
  }
  *cursor = base_ + certs_.size();
}

std::size_t CrossIiNogoodStore::size() const {
  const std::lock_guard<std::mutex> lock(m_);
  return certs_.size();
}

std::size_t CrossIiNogoodStore::evicted() const {
  const std::lock_guard<std::mutex> lock(m_);
  return evicted_;
}

}  // namespace monomap
