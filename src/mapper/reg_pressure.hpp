// Register-file pressure analysis (extension; DESIGN.md S14).
//
// The paper assumes register files large enough to hold every live value
// (its Sec. V limitation). This analysis quantifies that assumption: a value
// produced by node v at time T_v and last consumed at T_c (+ dist*II for
// loop-carried uses) stays live for L = T_c - T_v cycles, requiring
// ceil(L / II) simultaneously-live copies across overlapped iterations
// (modulo variable expansion). Summing over the nodes placed on one PE gives
// that PE's register-file requirement.
#ifndef MONOMAP_MAPPER_REG_PRESSURE_HPP
#define MONOMAP_MAPPER_REG_PRESSURE_HPP

#include <string>
#include <vector>

#include "mapper/mapping.hpp"

namespace monomap {

struct RegPressureReport {
  /// Registers required per PE.
  std::vector<int> per_pe;
  /// Maximum over PEs — the minimum register-file size that supports the
  /// mapping under the paper's architecture.
  int max_per_pe = 0;
  /// Total live registers across the array.
  int total = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Compute register pressure of `mapping` for `dfg` on `arch`. Nodes with no
/// consumers still occupy one register (their slot's write target).
RegPressureReport analyze_register_pressure(const Dfg& dfg,
                                            const CgraArch& arch,
                                            const Mapping& mapping);

}  // namespace monomap

#endif  // MONOMAP_MAPPER_REG_PRESSURE_HPP
