// Cross-II nogood store: slot-partition certificates shared between the
// speculative mapper's II attempts.
//
// A space refutation at II says "this subset of nodes can never jointly
// occupy these kernel slots". Under MrrgModel::kRegisterPersistence the
// spatial sub-problem restricted to those nodes depends only on the slot
// *partition* they induce — capacity wants distinct PEs per same-label
// group and the MRRG adjacency never reads label values — and *merging*
// partition blocks only adds same-slot constraints, i.e. only tightens.
// So the refutation generalises far beyond the II it was found at:
//
//   Any schedule, at ANY II, whose labels restricted to the conflict
//   nodes induce a partition equal to or coarser than the certificate's
//   is spatially infeasible.
//
// (PR 5's within-II rotation lifting is the special case where the
// relabelling is a cyclic rotation at the same II. The consecutive-only
// model is excluded: there cyclic label *distances* matter and they change
// with II, so certificates must not cross II boundaries.)
//
// The store keeps one canonical certificate per distinct partition and
// hands them to other II attempts two ways:
//  * eager clauses — drain() + instantiate_rotations(): the II' cyclic
//    rotations of the source slots are sound at II' (equal source slots
//    stay equal; a collision of distinct slots mod II' is a block merge —
//    coarser, still infeasible) and drop into TimeSession as ordinary
//    label nogoods, so the speculative SAT search starts warm;
//  * a prefilter — cert_hits_labels(): the full arbitrary-permutation
//    check (every block monochromatic in the candidate schedule) applied
//    to each yielded schedule, catching the relabellings the rotation
//    clauses cannot express without exponentially many clauses.
//
// Thread-safe: add() and drain() take an internal mutex; certificates are
// returned by value so readers never alias store internals.
#ifndef MONOMAP_MAPPER_CROSS_II_STORE_HPP
#define MONOMAP_MAPPER_CROSS_II_STORE_HPP

#include <cstddef>
#include <deque>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "support/resource.hpp"

namespace monomap {

/// A space refutation abstracted to what made it infeasible: the conflict
/// nodes partitioned by the kernel slot they shared, in canonical form
/// (nodes ascending within a block, blocks ascending by first node).
struct SlotPartitionCert {
  int source_ii = 0;
  std::vector<std::vector<NodeId>> blocks;
  /// The source schedule's slot per block (aligned with `blocks`); kept so
  /// rotation instantiation at another II reproduces concrete placements.
  std::vector<int> block_slots;
};

/// True when `labels` (full per-node label vector) realises the
/// certificate's partition or a coarsening of it — i.e. every block is
/// monochromatic. Such a schedule is spatially infeasible; the space
/// search need not run.
bool cert_hits_labels(const SlotPartitionCert& cert,
                      const std::vector<int>& labels);

/// Instantiate the certificate at `target_ii` as concrete (node, slot)
/// placement sets: one per cyclic rotation k, mapping block b to slot
/// (block_slots[b] + k) mod target_ii. Each returned set is a sound label
/// nogood at target_ii (see file comment for why collisions stay sound).
std::vector<std::vector<std::pair<NodeId, int>>> instantiate_rotations(
    const SlotPartitionCert& cert, int target_ii);

/// Thread-safe accumulator of slot-partition certificates, shared by every
/// II attempt of one speculative map() call. Append-only; readers poll new
/// certificates with a cursor so repeated drains are incremental.
class CrossIiNogoodStore {
 public:
  CrossIiNogoodStore() = default;
  ~CrossIiNogoodStore();
  CrossIiNogoodStore(const CrossIiNogoodStore&) = delete;
  CrossIiNogoodStore& operator=(const CrossIiNogoodStore&) = delete;

  /// Record the refutation of `nodes` under `labels` (full per-node label
  /// vector) found at `source_ii`. Returns true when the induced partition
  /// was new, false when an identical certificate was already stored.
  bool add(int source_ii, const std::vector<NodeId>& nodes,
           const std::vector<int>& labels);

  /// Insert an already-canonical certificate (blocks sorted internally and
  /// ordered by first node) — the KnowledgeStore seeding path, which
  /// replays certificates learned by previous requests. Pass source_ii = 0
  /// ("foreign") so every attempt instantiates its rotation clauses: the
  /// skip-own-II shortcut in the mapping loop assumes same-II certificates
  /// were already lifted by the session that learned them, which is false
  /// for seeded ones. Returns false on duplicate partition.
  bool add_cert(SlotPartitionCert cert);

  /// Append every certificate added since `*cursor` to `out` and advance
  /// the cursor. A fresh cursor of 0 drains the full store. Certificates
  /// evicted under memory pressure before this reader reached them are
  /// silently skipped (losing a nogood costs search effort, never
  /// soundness).
  void drain(std::size_t* cursor, std::vector<SlotPartitionCert>* out) const;

  /// Bind the request's memory governor: each stored certificate is
  /// charged, and a denied charge evicts oldest-first before giving up.
  /// Call before the store is shared across threads.
  void set_governor(ResourceGovernor* governor);

  [[nodiscard]] std::size_t size() const;
  /// Certificates evicted under memory pressure since construction.
  [[nodiscard]] std::size_t evicted() const;

 private:
  [[nodiscard]] static std::size_t cert_bytes(const SlotPartitionCert& cert);
  void evict_front_locked();

  mutable std::mutex m_;
  // A deque plus a monotone base offset: drain() cursors are *virtual*
  // indices (base_ + deque position), so evicting from the front never
  // shifts a reader's cursor onto a certificate it already consumed.
  std::deque<SlotPartitionCert> certs_;
  std::size_t base_ = 0;
  // Canonical partitions already stored (block_slots excluded: two
  // refutations inducing the same partition are the same knowledge).
  // Evicted partitions stay in this set: re-adding an evicted certificate
  // would just be re-charged and re-evicted under the same pressure.
  std::set<std::vector<std::vector<NodeId>>> seen_;
  ResourceGovernor* gov_ = nullptr;
  std::size_t gov_charged_ = 0;
  std::size_t evicted_ = 0;
};

}  // namespace monomap

#endif  // MONOMAP_MAPPER_CROSS_II_STORE_HPP
