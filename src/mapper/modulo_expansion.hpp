// Expansion of a kernel mapping into the full modulo schedule
// (prologue / kernel / epilogue — paper Fig. 2b).
//
// With S = ceil(schedule length / II) pipeline stages and N loop iterations
// (N >= S), iteration i's node v executes at absolute cycle i*II + T_v.
// Cycles [0, (S-1)*II) ramp the pipeline up (prologue), the next II cycles
// repeat as the steady-state kernel, and the final (S-1)*II cycles drain
// (epilogue).
#ifndef MONOMAP_MAPPER_MODULO_EXPANSION_HPP
#define MONOMAP_MAPPER_MODULO_EXPANSION_HPP

#include <string>
#include <vector>

#include "mapper/mapping.hpp"

namespace monomap {

/// One op instance in the expanded schedule.
struct ScheduledOp {
  NodeId node = kInvalidNode;
  int iteration = 0;  // which loop iteration this instance belongs to
  PeId pe = -1;
};

class ModuloExpansion {
 public:
  /// Expand `mapping` for `iterations` loop iterations
  /// (iterations >= num_stages required so a steady-state kernel exists).
  ModuloExpansion(const Mapping& mapping, int iterations);

  [[nodiscard]] int ii() const { return ii_; }
  [[nodiscard]] int stages() const { return stages_; }
  [[nodiscard]] int iterations() const { return iterations_; }
  [[nodiscard]] int total_cycles() const {
    return static_cast<int>(rows_.size());
  }

  /// Ops issued at absolute cycle `t`.
  [[nodiscard]] const std::vector<ScheduledOp>& row(int t) const;

  [[nodiscard]] int prologue_cycles() const { return (stages_ - 1) * ii_; }
  [[nodiscard]] int epilogue_cycles() const { return (stages_ - 1) * ii_; }

  /// True if rows within the steady-state region repeat with period II
  /// modulo the iteration offset — the defining property of a modulo
  /// schedule (checked by tests).
  [[nodiscard]] bool steady_state_is_periodic() const;

  /// Fig. 2b-style rendering with prologue/kernel/epilogue separators.
  [[nodiscard]] std::string to_string(const Dfg& dfg) const;

 private:
  int ii_;
  int stages_;
  int iterations_;
  std::vector<std::vector<ScheduledOp>> rows_;
};

}  // namespace monomap

#endif  // MONOMAP_MAPPER_MODULO_EXPANSION_HPP
