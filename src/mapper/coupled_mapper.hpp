// Coupled space-time exact mapper — the SAT-MapIt-style baseline [22].
//
// One SAT formulation decides schedule, placement and routing together:
// variables z[v][(T, pe)] range over the *joint* position space
// (KMS time x PE), so the formulation grows with |PEs| * II. This coupling
// is precisely what the paper identifies as the scalability bottleneck of
// prior exact mappers, and what Table III / Fig. 5 measure against.
#ifndef MONOMAP_MAPPER_COUPLED_MAPPER_HPP
#define MONOMAP_MAPPER_COUPLED_MAPPER_HPP

#include <string>

#include "mapper/mapping.hpp"
#include "sched/mii.hpp"

namespace monomap {

struct CoupledMapperOptions {
  /// Overall wall-clock budget in seconds (paper: 4000 s); <= 0 = unlimited.
  double timeout_s = 4000.0;
  /// Highest II to try; 0 = automatic (same rule as the time solver).
  int max_ii = 0;
  /// Extra schedule steps beyond the critical path per II.
  int max_horizon_extension = 8;
};

struct CoupledMapResult {
  bool success = false;
  bool timed_out = false;
  Mapping mapping;
  int ii = 0;
  MiiBreakdown mii;
  double total_s = 0.0;
  int num_vars = 0;     // of the final (or last attempted) formulation
  int num_clauses = 0;
  std::string failure_reason;
};

class CoupledSatMapper {
 public:
  explicit CoupledSatMapper(CoupledMapperOptions options = {})
      : options_(options) {}

  /// Map `dfg` onto `arch` by joint SAT search. On success the mapping
  /// passes validate_mapping (asserted internally).
  CoupledMapResult map(const Dfg& dfg, const CgraArch& arch) const;

 private:
  CoupledMapperOptions options_;
};

}  // namespace monomap

#endif  // MONOMAP_MAPPER_COUPLED_MAPPER_HPP
