#include "mapper/knowledge_store.hpp"

#include <algorithm>
#include <utility>

#include "mapper/mapping.hpp"

namespace monomap {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

std::uint64_t fold_d(std::uint64_t h, double v) {
  return fold(h, static_cast<std::uint64_t>(v * 4096.0));
}

}  // namespace

std::uint64_t soundness_fingerprint(const DecoupledMapperOptions& options) {
  std::uint64_t h = 0x5049'4e4e'4544'2121ULL;
  h = fold(h, static_cast<std::uint64_t>(options.space.model));
  const TimeConstraintOptions& c = options.time.constraints;
  h = fold(h, (static_cast<std::uint64_t>(c.dependencies) << 0) |
                  (static_cast<std::uint64_t>(c.capacity) << 1) |
                  (static_cast<std::uint64_t>(c.connectivity) << 2) |
                  (static_cast<std::uint64_t>(c.strict_connectivity) << 3) |
                  (static_cast<std::uint64_t>(c.consecutive_slots) << 4));
  // A refuted-II floor additionally depends on how far the time search is
  // allowed to fold the horizon: "no schedule exists at this II" is a claim
  // within that extension budget.
  h = fold(h, static_cast<std::uint64_t>(options.time.max_horizon_extension));
  return h;
}

std::uint64_t options_fingerprint(const DecoupledMapperOptions& options) {
  std::uint64_t h = soundness_fingerprint(options);
  h = fold(h, static_cast<std::uint64_t>(options.time.engine));
  h = fold(h, static_cast<std::uint64_t>(options.time.max_ii));
  h = fold(h, static_cast<std::uint64_t>(options.time.min_ii));
  const SpaceOptions& s = options.space;
  h = fold(h, static_cast<std::uint64_t>(s.engine));
  h = fold(h, static_cast<std::uint64_t>(s.order));
  h = fold(h, (static_cast<std::uint64_t>(s.forward_check) << 0) |
                  (static_cast<std::uint64_t>(s.interior_first) << 1) |
                  (static_cast<std::uint64_t>(s.symmetry_breaking) << 2) |
                  (static_cast<std::uint64_t>(s.distance2_filter) << 3) |
                  (static_cast<std::uint64_t>(s.distance2_multiplicity) << 4) |
                  (static_cast<std::uint64_t>(s.backjumping) << 5));
  h = fold(h, s.max_backtracks);
  h = fold(h, static_cast<std::uint64_t>(options.max_space_retries_per_ii));
  h = fold(h,
           static_cast<std::uint64_t>(options.max_space_refutations_per_ii));
  h = fold(h, static_cast<std::uint64_t>(options.adaptive_space_budget));
  h = fold(h, options.min_space_backtracks);
  h = fold(h, options.space_budget_shrink_divisor);
  h = fold(h, options.max_space_budget_boost);
  h = fold_d(h, options.near_miss_depth_fraction);
  h = fold(h, static_cast<std::uint64_t>(options.last_chance_probe));
  h = fold(h, static_cast<std::uint64_t>(options.anytime));
  h = fold(h, static_cast<std::uint64_t>(options.max_schedules));
  h = fold(h, static_cast<std::uint64_t>(options.memory_budget_mb));
  return h;
}

std::size_t KnowledgeStore::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = fold(k.arch_fp, k.dfg_hi);
  h = fold(h, k.dfg_lo);
  h = fold(h, k.scope_fp);
  return static_cast<std::size_t>(h);
}

KnowledgeStore::KnowledgeStore() : KnowledgeStore(Options{}) {}

KnowledgeStore::KnowledgeStore(Options options)
    : options_(options), governor_(options.memory_budget_mb << 20) {}

KnowledgeStore::Stripe& KnowledgeStore::stripe_for(const Key& key) {
  return stripes_[KeyHash{}(key) % kStripes];
}

KnowledgeStore::Key KnowledgeStore::memo_key(const DfgFingerprint& fp,
                                             std::uint64_t arch_fp,
                                             std::uint64_t options_fp) {
  Key key;
  key.arch_fp = arch_fp;
  key.scope_fp = options_fp;
  if (fp.canonical) {
    key.dfg_hi = fp.iso_hi;
    key.dfg_lo = fp.iso_lo;
  } else {
    // No transfer permutation: degrade to exact identity, tagged so an
    // exact hash can never alias an iso hash.
    key.dfg_hi = fp.exact;
    key.dfg_lo = ~std::uint64_t{0};
  }
  return key;
}

bool KnowledgeStore::knowledge_applicable(
    const DfgFingerprint& fp, const DecoupledMapperOptions& options) {
  // Certificate transfer needs a canonical permutation, and the partition
  // argument only holds under register persistence (cross_ii_store.hpp).
  return fp.canonical &&
         options.space.model == MrrgModel::kRegisterPersistence;
}

std::optional<MapResult> KnowledgeStore::lookup(
    const Dfg& dfg, const CgraArch& arch, const DfgFingerprint& fp,
    std::uint64_t arch_fp, const DecoupledMapperOptions& options,
    std::uint64_t salt) {
  const Key key =
      memo_key(fp, arch_fp, fold(options_fingerprint(options), salt));
  Stripe& stripe = stripe_for(key);
  MemoEntry snapshot;
  {
    const std::lock_guard<std::mutex> lock(stripe.m);
    auto it = stripe.memo.find(key);
    if (it == stripe.memo.end()) {
      memo_misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru);
    snapshot = it->second;  // copy out; validate outside the lock
  }
  if (snapshot.num_nodes != dfg.num_nodes() ||
      snapshot.num_edges != dfg.num_edges()) {
    memo_invalid_.fetch_add(1, std::memory_order_relaxed);
    memo_misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  // Translate canonical -> this request's node ids. Non-canonical entries
  // were stored with the identity permutation against the exact key, so
  // the ids already line up.
  const std::size_t n = static_cast<std::size_t>(dfg.num_nodes());
  std::vector<int> time(n);
  std::vector<PeId> pe(n);
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    const std::size_t ci =
        fp.canonical ? static_cast<std::size_t>(
                           fp.canon[static_cast<std::size_t>(v)])
                     : static_cast<std::size_t>(v);
    time[static_cast<std::size_t>(v)] = snapshot.time[ci];
    pe[static_cast<std::size_t>(v)] = snapshot.pe[ci];
  }
  MapResult result;
  result.mapping = Mapping(snapshot.ii, std::move(time), std::move(pe));
  if (!mapping_is_valid(dfg, arch, result.mapping, options.space.model)) {
    // Fingerprint collision (or automorphism mismatch): the cached answer
    // does not fit this graph. Served as a miss — soundness never rests on
    // hash uniqueness.
    memo_invalid_.fetch_add(1, std::memory_order_relaxed);
    memo_misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  result.success = true;
  result.outcome = MapOutcome::kFeasible;
  result.ii = snapshot.ii;
  result.ii_refuted_up_to = snapshot.ii_refuted_up_to;
  result.ii_lo = std::max(1, snapshot.ii_refuted_up_to + 1);
  result.ii_hi = snapshot.ii;
  result.schedules_tried = 0;  // the hit costs no search
  result.causes.push_back({"memo", "served from the knowledge store"});
  memo_hits_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

void KnowledgeStore::store(const Dfg& dfg, const DfgFingerprint& fp,
                           std::uint64_t arch_fp,
                           const DecoupledMapperOptions& options,
                           const MapResult& result, std::uint64_t salt) {
  if (!result.success || result.degraded ||
      result.outcome != MapOutcome::kFeasible || result.mapping.empty() ||
      result.mapping.num_nodes() != dfg.num_nodes()) {
    return;
  }
  const Key key =
      memo_key(fp, arch_fp, fold(options_fingerprint(options), salt));
  MemoEntry entry;
  entry.ii = result.ii;
  entry.ii_refuted_up_to = result.ii_refuted_up_to;
  entry.schedules_tried = result.schedules_tried;
  entry.num_nodes = dfg.num_nodes();
  entry.num_edges = dfg.num_edges();
  const std::size_t n = static_cast<std::size_t>(dfg.num_nodes());
  entry.time.resize(n);
  entry.pe.resize(n);
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    const std::size_t ci =
        fp.canonical ? static_cast<std::size_t>(
                           fp.canon[static_cast<std::size_t>(v)])
                     : static_cast<std::size_t>(v);
    entry.time[ci] = result.mapping.time(v);
    entry.pe[ci] = result.mapping.pe(v);
  }
  entry.bytes = sizeof(MemoEntry) + n * (sizeof(int) + sizeof(PeId)) + 64;

  Stripe& stripe = stripe_for(key);
  const std::lock_guard<std::mutex> lock(stripe.m);
  if (stripe.memo.count(key) != 0) {
    return;  // an equivalent answer is already cached
  }
  std::size_t evictions = 0;
  const std::size_t cap = options_.max_memo_entries / kStripes + 1;
  while (stripe.memo_count >= cap && !stripe.lru.empty()) {
    evict_lru_locked(stripe, &evictions);
  }
  bool charged = false;
  while (!(charged = governor_.try_charge(entry.bytes))) {
    if (stripe.lru.empty()) {
      break;  // nothing local to shed; skip the insert
    }
    evict_lru_locked(stripe, &evictions);
  }
  memo_evictions_.fetch_add(evictions, std::memory_order_relaxed);
  if (!charged) {
    return;
  }
  stripe.lru.push_front(key);
  entry.lru = stripe.lru.begin();
  stripe.memo.emplace(key, std::move(entry));
  ++stripe.memo_count;
  memo_stores_.fetch_add(1, std::memory_order_relaxed);
}

void KnowledgeStore::evict_lru_locked(Stripe& stripe, std::size_t* counter) {
  const Key victim = stripe.lru.back();
  auto it = stripe.memo.find(victim);
  if (it != stripe.memo.end()) {
    governor_.uncharge(it->second.bytes);
    stripe.memo.erase(it);
    --stripe.memo_count;
    ++*counter;
  }
  stripe.lru.pop_back();
}

int KnowledgeStore::refuted_floor(const DfgFingerprint& fp,
                                  std::uint64_t arch_fp,
                                  const DecoupledMapperOptions& options) {
  if (!knowledge_applicable(fp, options)) {
    return 0;
  }
  Key key;
  key.arch_fp = arch_fp;
  key.dfg_hi = fp.iso_hi;
  key.dfg_lo = fp.iso_lo;
  key.scope_fp = soundness_fingerprint(options);
  Stripe& stripe = stripe_for(key);
  const std::lock_guard<std::mutex> lock(stripe.m);
  auto it = stripe.knowledge.find(key);
  if (it == stripe.knowledge.end()) {
    return 0;
  }
  if (it->second.refuted_floor > 0) {
    floor_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second.refuted_floor;
}

std::size_t KnowledgeStore::seed(const DfgFingerprint& fp,
                                 std::uint64_t arch_fp,
                                 const DecoupledMapperOptions& options,
                                 CrossIiNogoodStore* out) {
  warm_requests_.fetch_add(1, std::memory_order_relaxed);
  if (!knowledge_applicable(fp, options) || out == nullptr) {
    return 0;
  }
  Key key;
  key.arch_fp = arch_fp;
  key.dfg_hi = fp.iso_hi;
  key.dfg_lo = fp.iso_lo;
  key.scope_fp = soundness_fingerprint(options);
  Stripe& stripe = stripe_for(key);
  std::vector<SlotPartitionCert> canonical;
  {
    const std::lock_guard<std::mutex> lock(stripe.m);
    auto it = stripe.knowledge.find(key);
    if (it == stripe.knowledge.end()) {
      return 0;
    }
    canonical = it->second.certs;
  }
  // canonical index -> this request's node id.
  std::vector<NodeId> inverse(fp.canon.size());
  for (std::size_t v = 0; v < fp.canon.size(); ++v) {
    inverse[static_cast<std::size_t>(fp.canon[v])] =
        static_cast<NodeId>(v);
  }
  std::size_t seeded = 0;
  for (const SlotPartitionCert& cert : canonical) {
    SlotPartitionCert local;
    local.source_ii = 0;  // foreign: every attempt must lift its rotations
    local.blocks.reserve(cert.blocks.size());
    local.block_slots = cert.block_slots;
    for (const auto& block : cert.blocks) {
      std::vector<NodeId> mapped;
      mapped.reserve(block.size());
      for (const NodeId ci : block) {
        mapped.push_back(inverse[static_cast<std::size_t>(ci)]);
      }
      std::sort(mapped.begin(), mapped.end());
      local.blocks.push_back(std::move(mapped));
    }
    // Restore canonical block order (by first node) after translation.
    std::vector<std::size_t> order(local.blocks.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return local.blocks[a].front() < local.blocks[b].front();
    });
    SlotPartitionCert sorted;
    sorted.source_ii = 0;
    sorted.blocks.reserve(order.size());
    sorted.block_slots.reserve(order.size());
    for (const std::size_t i : order) {
      sorted.blocks.push_back(std::move(local.blocks[i]));
      sorted.block_slots.push_back(local.block_slots[i]);
    }
    if (out->add_cert(std::move(sorted))) {
      ++seeded;
    }
  }
  certs_seeded_.fetch_add(seeded, std::memory_order_relaxed);
  return seeded;
}

std::size_t KnowledgeStore::publish(const DfgFingerprint& fp,
                                    std::uint64_t arch_fp,
                                    const DecoupledMapperOptions& options,
                                    const CrossIiNogoodStore& scratch,
                                    int refuted_up_to) {
  if (!knowledge_applicable(fp, options)) {
    return 0;
  }
  Key key;
  key.arch_fp = arch_fp;
  key.dfg_hi = fp.iso_hi;
  key.dfg_lo = fp.iso_lo;
  key.scope_fp = soundness_fingerprint(options);
  std::vector<SlotPartitionCert> fresh;
  std::size_t cursor = 0;
  scratch.drain(&cursor, &fresh);
  Stripe& stripe = stripe_for(key);
  const std::lock_guard<std::mutex> lock(stripe.m);
  KnowledgeEntry& entry = stripe.knowledge[key];
  // Floors only advance, and only with the sound value the caller derived
  // from MapResult::ii_refuted_up_to.
  entry.refuted_floor = std::max(entry.refuted_floor, refuted_up_to);
  std::size_t stored = 0;
  for (SlotPartitionCert& cert : fresh) {
    SlotPartitionCert canon;
    canon.source_ii = cert.source_ii;
    canon.blocks.reserve(cert.blocks.size());
    canon.block_slots = cert.block_slots;
    for (const auto& block : cert.blocks) {
      std::vector<NodeId> mapped;
      mapped.reserve(block.size());
      for (const NodeId v : block) {
        mapped.push_back(fp.canon[static_cast<std::size_t>(v)]);
      }
      std::sort(mapped.begin(), mapped.end());
      canon.blocks.push_back(std::move(mapped));
    }
    std::vector<std::size_t> order(canon.blocks.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return canon.blocks[a].front() < canon.blocks[b].front();
    });
    SlotPartitionCert sorted;
    sorted.source_ii = canon.source_ii;
    sorted.blocks.reserve(order.size());
    sorted.block_slots.reserve(order.size());
    for (const std::size_t i : order) {
      sorted.blocks.push_back(std::move(canon.blocks[i]));
      sorted.block_slots.push_back(canon.block_slots[i]);
    }
    if (!entry.seen.insert(sorted.blocks).second) {
      continue;
    }
    std::size_t bytes = sizeof(SlotPartitionCert) + 64;
    for (const auto& block : sorted.blocks) {
      bytes += sizeof(std::vector<NodeId>) + block.size() * sizeof(NodeId);
    }
    if (!governor_.try_charge(bytes)) {
      // Knowledge overflow: drop the new certificate (memo LRU pressure is
      // handled on the memo path; losing a nogood costs effort, not
      // soundness).
      entry.seen.erase(sorted.blocks);
      break;
    }
    entry.certs.push_back(std::move(sorted));
    ++stored;
  }
  certs_published_.fetch_add(stored, std::memory_order_relaxed);
  return stored;
}

KnowledgeStore::StatsSnapshot KnowledgeStore::stats() const {
  StatsSnapshot s;
  s.memo_hits = memo_hits_.load(std::memory_order_relaxed);
  s.memo_misses = memo_misses_.load(std::memory_order_relaxed);
  s.memo_stores = memo_stores_.load(std::memory_order_relaxed);
  s.memo_evictions = memo_evictions_.load(std::memory_order_relaxed);
  s.memo_invalid = memo_invalid_.load(std::memory_order_relaxed);
  s.warm_requests = warm_requests_.load(std::memory_order_relaxed);
  s.certs_seeded = certs_seeded_.load(std::memory_order_relaxed);
  s.certs_published = certs_published_.load(std::memory_order_relaxed);
  s.floor_hits = floor_hits_.load(std::memory_order_relaxed);
  s.bytes_used = governor_.used();
  s.bytes_peak = governor_.peak();
  return s;
}

}  // namespace monomap
