#include "mapper/modulo_expansion.hpp"

#include <algorithm>
#include <sstream>

namespace monomap {

ModuloExpansion::ModuloExpansion(const Mapping& mapping, int iterations)
    : ii_(mapping.ii()),
      stages_(mapping.num_stages()),
      iterations_(iterations) {
  MONOMAP_ASSERT_MSG(iterations >= stages_,
                     "need at least " << stages_
                                      << " iterations for a steady state");
  const int total = (iterations_ - 1) * ii_ + mapping.max_time() + 1;
  rows_.resize(static_cast<std::size_t>(total));
  for (int iter = 0; iter < iterations_; ++iter) {
    for (NodeId v = 0; v < mapping.num_nodes(); ++v) {
      const int cycle = iter * ii_ + mapping.time(v);
      rows_[static_cast<std::size_t>(cycle)].push_back(
          ScheduledOp{v, iter, mapping.pe(v)});
    }
  }
  for (auto& row : rows_) {
    std::sort(row.begin(), row.end(),
              [](const ScheduledOp& a, const ScheduledOp& b) {
                return a.pe < b.pe;
              });
  }
}

const std::vector<ScheduledOp>& ModuloExpansion::row(int t) const {
  MONOMAP_ASSERT(t >= 0 && t < total_cycles());
  return rows_[static_cast<std::size_t>(t)];
}

bool ModuloExpansion::steady_state_is_periodic() const {
  const int start = prologue_cycles();
  const int end = total_cycles() - epilogue_cycles();
  for (int t = start; t + ii_ < end; ++t) {
    const auto& a = rows_[static_cast<std::size_t>(t)];
    const auto& b = rows_[static_cast<std::size_t>(t + ii_)];
    if (a.size() != b.size()) return false;
    for (std::size_t k = 0; k < a.size(); ++k) {
      if (a[k].node != b[k].node || a[k].pe != b[k].pe ||
          a[k].iteration + 1 != b[k].iteration) {
        return false;
      }
    }
  }
  return true;
}

std::string ModuloExpansion::to_string(const Dfg& dfg) const {
  std::ostringstream os;
  const int prologue_end = prologue_cycles();
  const int kernel_end = prologue_end + ii_;
  os << "modulo schedule: II=" << ii_ << " stages=" << stages_
     << " iterations=" << iterations_ << '\n';
  for (int t = 0; t < total_cycles(); ++t) {
    if (t == 0 && prologue_end > 0) os << "--- prologue ---\n";
    if (t == prologue_end) os << "--- kernel (repeats) ---\n";
    if (t == kernel_end) os << "--- epilogue / further rounds ---\n";
    os << "T=" << t << ":";
    for (const ScheduledOp& op : rows_[static_cast<std::size_t>(t)]) {
      os << ' ' << dfg.node_name(op.node) << "[i" << op.iteration << "]@PE"
         << op.pe;
    }
    os << '\n';
    if (t >= kernel_end && prologue_end > 0 &&
        t + 1 == kernel_end + ii_) {
      // Only print one kernel repetition beyond the first; elide the rest.
      const int remaining = total_cycles() - (t + 1);
      if (remaining > epilogue_cycles()) {
        os << "... (" << remaining - epilogue_cycles()
           << " further kernel cycles elided)\n";
        t = total_cycles() - epilogue_cycles() - 1;
      }
    }
  }
  return os.str();
}

}  // namespace monomap
