#include "sched/mobility.hpp"

#include <sstream>

#include "support/table.hpp"

namespace monomap {

MobilitySchedule::MobilitySchedule(const Dfg& dfg, int horizon)
    : length_(horizon > 0 ? horizon : critical_path_length(dfg)),
      ranges_(compute_asap_alap(dfg, horizon)) {}

std::vector<NodeId> MobilitySchedule::nodes_at(int t) const {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < static_cast<NodeId>(ranges_.size()); ++v) {
    if (ranges_[static_cast<std::size_t>(v)].contains(t)) {
      nodes.push_back(v);
    }
  }
  return nodes;
}

std::string MobilitySchedule::to_table() const {
  AsciiTable table({"Time", "ASAP", "ALAP", "MobS"},
                   {Align::kRight, Align::kLeft, Align::kLeft, Align::kLeft});
  auto join = [](const std::vector<NodeId>& nodes) {
    std::ostringstream os;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (i != 0) os << ' ';
      os << nodes[i];
    }
    return os.str();
  };
  for (int t = 0; t < length_; ++t) {
    std::vector<NodeId> asap_nodes;
    std::vector<NodeId> alap_nodes;
    for (NodeId v = 0; v < static_cast<NodeId>(ranges_.size()); ++v) {
      if (ranges_[static_cast<std::size_t>(v)].asap == t) asap_nodes.push_back(v);
      if (ranges_[static_cast<std::size_t>(v)].alap == t) alap_nodes.push_back(v);
    }
    table.add_row({std::to_string(t), join(asap_nodes), join(alap_nodes),
                   join(nodes_at(t))});
  }
  return table.to_string();
}

}  // namespace monomap
