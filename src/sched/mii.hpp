// Minimum iteration interval (paper Sec. IV-B; Rau's mII).
//
//   mII = max(ResII, RecII)
//   ResII = ceil(|V_G| / #PEs)         — resource bound
//   RecII = max over cycles ceil(len/dist) — recurrence bound
#ifndef MONOMAP_SCHED_MII_HPP
#define MONOMAP_SCHED_MII_HPP

#include "arch/cgra.hpp"
#include "ir/dfg.hpp"

namespace monomap {

struct MiiBreakdown {
  int res_ii = 1;
  int rec_ii = 1;
  [[nodiscard]] int mii() const { return res_ii > rec_ii ? res_ii : rec_ii; }
};

/// Resource-minimum II for `dfg` on `arch`.
int resource_mii(const Dfg& dfg, const CgraArch& arch);

/// Recurrence-minimum II of `dfg` (1 if acyclic). Exposed from
/// graph/algorithms; this overload exists for API symmetry.
int recurrence_mii_of(const Dfg& dfg);

/// Both bounds at once.
MiiBreakdown compute_mii(const Dfg& dfg, const CgraArch& arch);

}  // namespace monomap

#endif  // MONOMAP_SCHED_MII_HPP
