#include "sched/asap_alap.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"

namespace monomap {

int critical_path_length(const Dfg& dfg) {
  if (dfg.num_nodes() == 0) return 0;
  const auto depth =
      longest_path_from_sources(dfg.graph(), edges_with_attr(0));
  return 1 + *std::max_element(depth.begin(), depth.end());
}

std::vector<ScheduleRange> compute_asap_alap(const Dfg& dfg, int horizon) {
  const Graph& g = dfg.graph();
  const int n = g.num_nodes();
  const int cp = critical_path_length(dfg);
  if (horizon <= 0) {
    horizon = cp;
  }
  MONOMAP_ASSERT_MSG(horizon >= cp, "horizon " << horizon
                                               << " below critical path "
                                               << cp);
  // ASAP: longest distance-0 path from any source.
  const auto asap = longest_path_from_sources(g, edges_with_attr(0));

  // ALAP: horizon-1 minus the longest distance-0 path to any sink. Computed
  // by relaxing in reverse topological order.
  const auto order = topological_sort(g, edges_with_attr(0));
  MONOMAP_ASSERT(order.has_value());
  std::vector<int> tail(static_cast<std::size_t>(n), 0);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId v = *it;
    for (const EdgeId e : g.out_edges(v)) {
      if (g.edge(e).attr != 0) continue;
      const NodeId d = g.edge(e).dst;
      tail[static_cast<std::size_t>(v)] =
          std::max(tail[static_cast<std::size_t>(v)],
                   tail[static_cast<std::size_t>(d)] + 1);
    }
  }
  std::vector<ScheduleRange> ranges(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    ranges[static_cast<std::size_t>(v)].asap = asap[static_cast<std::size_t>(v)];
    ranges[static_cast<std::size_t>(v)].alap =
        horizon - 1 - tail[static_cast<std::size_t>(v)];
    MONOMAP_ASSERT(ranges[static_cast<std::size_t>(v)].asap <=
                   ranges[static_cast<std::size_t>(v)].alap);
  }
  return ranges;
}

}  // namespace monomap
