// Mobility Schedule (MobS) — paper Sec. IV-B, Table I.
//
// The MobS lists, for every schedule step, the nodes whose [ASAP, ALAP]
// window contains that step. It is the base structure folded into the KMS.
#ifndef MONOMAP_SCHED_MOBILITY_HPP
#define MONOMAP_SCHED_MOBILITY_HPP

#include <string>
#include <vector>

#include "ir/dfg.hpp"
#include "sched/asap_alap.hpp"

namespace monomap {

class MobilitySchedule {
 public:
  /// Build the MobS of `dfg` with the given horizon (0 = critical path).
  MobilitySchedule(const Dfg& dfg, int horizon = 0);

  [[nodiscard]] int length() const { return length_; }
  [[nodiscard]] const std::vector<ScheduleRange>& ranges() const {
    return ranges_;
  }
  [[nodiscard]] const ScheduleRange& range(NodeId v) const {
    MONOMAP_ASSERT(v >= 0 && v < static_cast<NodeId>(ranges_.size()));
    return ranges_[static_cast<std::size_t>(v)];
  }

  /// Nodes whose window contains step t (a row of the paper's Table I MobS).
  [[nodiscard]] std::vector<NodeId> nodes_at(int t) const;

  /// Render the three-column ASAP/ALAP/MobS table (paper Table I).
  [[nodiscard]] std::string to_table() const;

 private:
  int length_;
  std::vector<ScheduleRange> ranges_;
};

}  // namespace monomap

#endif  // MONOMAP_SCHED_MOBILITY_HPP
