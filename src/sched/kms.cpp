#include "sched/kms.hpp"

#include <sstream>

#include "support/table.hpp"

namespace monomap {

Kms::Kms(const MobilitySchedule& mobs, int ii)
    : ii_(ii),
      interleave_((mobs.length() + ii - 1) / ii),
      ranges_(mobs.ranges()),
      rows_(static_cast<std::size_t>(ii)) {
  MONOMAP_ASSERT_MSG(ii >= 1, "KMS needs II >= 1");
  for (NodeId v = 0; v < static_cast<NodeId>(ranges_.size()); ++v) {
    const ScheduleRange& r = ranges_[static_cast<std::size_t>(v)];
    for (int t = r.asap; t <= r.alap; ++t) {
      rows_[static_cast<std::size_t>(t % ii_)].push_back(
          KmsEntry{v, t / ii_, t});
    }
  }
}

std::vector<int> Kms::candidate_times(NodeId v) const {
  MONOMAP_ASSERT(v >= 0 && v < static_cast<NodeId>(ranges_.size()));
  const ScheduleRange& r = ranges_[static_cast<std::size_t>(v)];
  std::vector<int> times;
  times.reserve(static_cast<std::size_t>(r.width()));
  for (int t = r.asap; t <= r.alap; ++t) {
    times.push_back(t);
  }
  return times;
}

std::string Kms::to_table() const {
  AsciiTable table({"Time", "Nodes"}, {Align::kRight, Align::kLeft});
  for (int slot = 0; slot < ii_; ++slot) {
    std::ostringstream os;
    const auto& entries = rows_[static_cast<std::size_t>(slot)];
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i != 0) os << ' ';
      os << entries[i].node << '_' << entries[i].fold;
    }
    table.add_row({std::to_string(slot), os.str()});
  }
  return table.to_string();
}

}  // namespace monomap
