#include "sched/mii.hpp"

#include "graph/algorithms.hpp"

namespace monomap {

int resource_mii(const Dfg& dfg, const CgraArch& arch) {
  const int pes = arch.num_pes();
  MONOMAP_ASSERT(pes > 0);
  const int n = dfg.num_nodes();
  return n == 0 ? 1 : (n + pes - 1) / pes;
}

int recurrence_mii_of(const Dfg& dfg) {
  return recurrence_mii(dfg.graph());
}

MiiBreakdown compute_mii(const Dfg& dfg, const CgraArch& arch) {
  MiiBreakdown b;
  b.res_ii = resource_mii(dfg, arch);
  b.rec_ii = recurrence_mii_of(dfg);
  return b;
}

}  // namespace monomap
