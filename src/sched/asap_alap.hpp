// ASAP/ALAP scheduling ranges (paper Sec. IV-B, Table I).
//
// Computed over the distance-0 (intra-iteration) dependence DAG, as is
// standard in modulo scheduling: loop-carried edges constrain the II (via
// RecII), not the per-iteration mobility window.
#ifndef MONOMAP_SCHED_ASAP_ALAP_HPP
#define MONOMAP_SCHED_ASAP_ALAP_HPP

#include <vector>

#include "ir/dfg.hpp"

namespace monomap {

/// Inclusive window of feasible schedule steps for one node.
struct ScheduleRange {
  int asap = 0;
  int alap = 0;

  [[nodiscard]] int width() const { return alap - asap + 1; }
  [[nodiscard]] bool contains(int t) const { return t >= asap && t <= alap; }
};

/// Per-node ASAP/ALAP windows for a schedule horizon of `horizon` steps
/// (steps 0 .. horizon-1). `horizon` must be at least the critical-path
/// length; pass horizon <= 0 to use exactly the critical-path length —
/// the paper's MobS. Larger horizons add slack ("schedule extension").
std::vector<ScheduleRange> compute_asap_alap(const Dfg& dfg, int horizon = 0);

/// Critical-path length in steps of the distance-0 DAG (the paper's
/// "MobS length": 6 for the running example).
int critical_path_length(const Dfg& dfg);

}  // namespace monomap

#endif  // MONOMAP_SCHED_ASAP_ALAP_HPP
