// Kernel Mobility Schedule (KMS) — paper Sec. IV-B, Table II.
//
// The KMS folds the MobS by II: a node schedulable at absolute step T can
// occupy kernel slot T mod II with iteration subscript ("fold") T div II.
// It is the superset of all modulo schedules for a given II, and the domain
// over which the time formulation's decision variables range.
#ifndef MONOMAP_SCHED_KMS_HPP
#define MONOMAP_SCHED_KMS_HPP

#include <string>
#include <vector>

#include "sched/mobility.hpp"

namespace monomap {

/// One schedulable position of a node inside the kernel.
struct KmsEntry {
  NodeId node = kInvalidNode;
  int fold = 0;          // iteration subscript (number of foldings applied)
  int absolute_time = 0; // T in the MobS; slot = T % II, fold = T / II
};

class Kms {
 public:
  Kms(const MobilitySchedule& mobs, int ii);

  [[nodiscard]] int ii() const { return ii_; }

  /// Number of loop iterations interleaved in the kernel:
  /// ceil(MobS length / II) (paper: ceil(6/4) = 2 for the running example).
  [[nodiscard]] int interleaved_iterations() const { return interleave_; }

  /// All positions available in kernel slot `slot` (a row of Table II).
  [[nodiscard]] const std::vector<KmsEntry>& row(int slot) const {
    MONOMAP_ASSERT(slot >= 0 && slot < ii_);
    return rows_[static_cast<std::size_t>(slot)];
  }

  /// All candidate absolute times of node v (its MobS window).
  [[nodiscard]] std::vector<int> candidate_times(NodeId v) const;

  /// Render the paper's Table II: one row per kernel slot, entries as
  /// node_fold.
  [[nodiscard]] std::string to_table() const;

 private:
  int ii_;
  int interleave_;
  std::vector<ScheduleRange> ranges_;
  std::vector<std::vector<KmsEntry>> rows_;
};

}  // namespace monomap

#endif  // MONOMAP_SCHED_KMS_HPP
