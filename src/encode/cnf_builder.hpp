// Finite-domain-to-CNF encoding helpers (DESIGN.md S8).
//
// The time formulation and the coupled baseline both need: one-hot selection
// ("node v is scheduled at exactly one of its candidate times"), cardinality
// bounds ("at most |PEs| nodes per kernel slot"), and implications. This
// layer provides them on top of the raw SAT solver, playing the role Z3's
// theories play in the paper's toolchain.
#ifndef MONOMAP_ENCODE_CNF_BUILDER_HPP
#define MONOMAP_ENCODE_CNF_BUILDER_HPP

#include <vector>

#include "sat/solver.hpp"

namespace monomap {

/// Stateless helpers adding encodings to a solver. All functions return
/// false if the solver became trivially unsatisfiable.
class CnfBuilder {
 public:
  explicit CnfBuilder(SatSolver& solver) : solver_(&solver) {}

  [[nodiscard]] SatSolver& solver() { return *solver_; }

  /// OR(lits) — at least one.
  bool at_least_one(const std::vector<Lit>& lits);

  /// At most one of `lits`: pairwise for <= 8 literals, sequential
  /// (Sinz) encoding above that.
  bool at_most_one(const std::vector<Lit>& lits);

  /// Exactly one of `lits`.
  bool exactly_one(const std::vector<Lit>& lits);

  /// Sinz sequential-counter at-most-k. k >= lits.size() is a no-op;
  /// k == 0 forces all literals false.
  bool at_most_k(const std::vector<Lit>& lits, int k);

  /// antecedent -> OR(consequents), i.e. clause (~antecedent v consequents).
  bool implies_clause(Lit antecedent, std::vector<Lit> consequents);

  /// a -> b.
  bool implies(Lit a, Lit b) { return solver_->add_binary(~a, b); }

  /// NOT(a AND b) — conflict pair.
  bool forbid_pair(Lit a, Lit b) { return solver_->add_binary(~a, ~b); }

  /// y <-> OR(lits): used to alias "node v occupies kernel slot i" to the
  /// disjunction of its candidate absolute times congruent to i.
  bool equiv_or(Lit y, const std::vector<Lit>& lits);

  /// Number of auxiliary variables created so far by this builder.
  [[nodiscard]] std::int64_t aux_vars() const { return aux_vars_; }

 private:
  SatVar fresh();

  SatSolver* solver_;
  std::int64_t aux_vars_ = 0;
  std::vector<SatVar> regs_;  // scratch for the sequential counter
};

}  // namespace monomap

#endif  // MONOMAP_ENCODE_CNF_BUILDER_HPP
