#include "encode/cnf_builder.hpp"

#include "support/assert.hpp"

namespace monomap {

SatVar CnfBuilder::fresh() {
  ++aux_vars_;
  return solver_->new_var();
}

bool CnfBuilder::at_least_one(const std::vector<Lit>& lits) {
  return solver_->add_clause(lits);
}

bool CnfBuilder::at_most_one(const std::vector<Lit>& lits) {
  if (lits.size() <= 1) return true;
  if (lits.size() <= 8) {
    for (std::size_t i = 0; i < lits.size(); ++i) {
      for (std::size_t j = i + 1; j < lits.size(); ++j) {
        if (!forbid_pair(lits[i], lits[j])) return false;
      }
    }
    return true;
  }
  return at_most_k(lits, 1);
}

bool CnfBuilder::exactly_one(const std::vector<Lit>& lits) {
  MONOMAP_ASSERT(!lits.empty());
  return at_least_one(lits) && at_most_one(lits);
}

bool CnfBuilder::at_most_k(const std::vector<Lit>& lits, int k) {
  MONOMAP_ASSERT(k >= 0);
  const int n = static_cast<int>(lits.size());
  if (k >= n) return true;
  if (k == 0) {
    for (const Lit l : lits) {
      if (!solver_->add_unit(~l)) return false;
    }
    return true;
  }
  // Sinz sequential counter: s[i][j] = "at least j+1 of lits[0..i] are true".
  // Laid out as a flat (n-1) x k array of fresh variables.
  auto s = [&](int i, int j) { return regs_[static_cast<std::size_t>(i * k + j)]; };
  regs_.clear();
  regs_.reserve(static_cast<std::size_t>((n - 1) * k));
  for (int i = 0; i < (n - 1) * k; ++i) {
    regs_.push_back(fresh());
  }
  bool ok = true;
  // x0 -> s(0,0); s(0,j) false for j >= 1.
  ok = ok && solver_->add_binary(~lits[0], Lit::pos(s(0, 0)));
  for (int j = 1; j < k; ++j) {
    ok = ok && solver_->add_unit(Lit::neg(s(0, j)));
  }
  for (int i = 1; i < n - 1; ++i) {
    ok = ok && solver_->add_binary(~lits[static_cast<std::size_t>(i)],
                                   Lit::pos(s(i, 0)));
    ok = ok && solver_->add_binary(Lit::neg(s(i - 1, 0)), Lit::pos(s(i, 0)));
    for (int j = 1; j < k; ++j) {
      ok = ok && solver_->add_ternary(~lits[static_cast<std::size_t>(i)],
                                      Lit::neg(s(i - 1, j - 1)),
                                      Lit::pos(s(i, j)));
      ok = ok && solver_->add_binary(Lit::neg(s(i - 1, j)), Lit::pos(s(i, j)));
    }
    ok = ok && solver_->add_binary(~lits[static_cast<std::size_t>(i)],
                                   Lit::neg(s(i - 1, k - 1)));
  }
  ok = ok && solver_->add_binary(~lits[static_cast<std::size_t>(n - 1)],
                                 Lit::neg(s(n - 2, k - 1)));
  return ok;
}

bool CnfBuilder::implies_clause(Lit antecedent, std::vector<Lit> consequents) {
  consequents.push_back(~antecedent);
  return solver_->add_clause(std::move(consequents));
}

bool CnfBuilder::equiv_or(Lit y, const std::vector<Lit>& lits) {
  // y -> OR(lits)
  std::vector<Lit> clause = lits;
  clause.push_back(~y);
  if (!solver_->add_clause(std::move(clause))) return false;
  // each lit -> y
  for (const Lit l : lits) {
    if (!solver_->add_binary(~l, y)) return false;
  }
  return true;
}

}  // namespace monomap
