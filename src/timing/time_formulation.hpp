// SAT encoding of the paper's time-dimension formulation (Sec. IV-B).
//
// Decision variables: x[v][T] = "node v is scheduled at absolute KMS time T"
// for T in v's mobility window, plus aliases y[v][i] = "node v occupies
// kernel slot i" (i = T mod II). Constraint families:
//
//  1. modulo scheduling — for every DFG edge (s -> d, distance dist):
//     T_d + dist*II >= T_s + 1 (unit latency). Folding this inequality by II
//     yields exactly the paper's four case-split rules over (t, it) pairs.
//  2. capacity — per slot i: at-most-|PEs| of {y[v][i]}.
//  3. connectivity — per node v and slot i: at most D_M of v's DFG
//     neighbours occupy slot i (strict mode additionally counts v itself
//     when i is v's own slot — ablation A2).
//
// The formulation is deliberately CGRA-size-independent except for the two
// integer bounds |PEs| and D_M — that is the source of the paper's
// scalability result.
#ifndef MONOMAP_TIMING_TIME_FORMULATION_HPP
#define MONOMAP_TIMING_TIME_FORMULATION_HPP

#include <optional>
#include <utility>
#include <vector>

#include "arch/cgra.hpp"
#include "encode/cnf_builder.hpp"
#include "ir/dfg.hpp"
#include "sched/mobility.hpp"

namespace monomap {

/// Which constraint families to emit (ablation A1 disables some).
struct TimeConstraintOptions {
  bool dependencies = true;
  bool capacity = true;
  bool connectivity = true;
  /// Additionally count the node itself in S_i^v at its own slot. The paper
  /// states the constraint without the self term; including it is exactly
  /// necessary (the node occupies one of the D_M closed-neighbourhood
  /// vertices at its own slot) and never excludes a feasible placement, so
  /// it is on by default. Ablation A2 measures the paper's literal variant.
  bool strict_connectivity = true;
  /// Restricted-interconnect mode (the paper's future-work architecture,
  /// without cross-slot register persistence): every dependency must land
  /// on equal or cyclically-consecutive kernel slots, matching the
  /// MrrgModel::kConsecutiveOnly edge set.
  bool consecutive_slots = false;
};

/// A schedule found by the time solver: absolute times per node; labels are
/// time[v] mod ii.
struct TimeSolution {
  int ii = 0;
  int horizon = 0;
  std::vector<int> time;

  [[nodiscard]] int label(NodeId v) const {
    return time[static_cast<std::size_t>(v)] % ii;
  }
};

/// Encoding-size statistics (micro-bench A6).
struct TimeFormulationStats {
  int num_vars = 0;
  int num_clauses = 0;
};

class TimeFormulation {
 public:
  /// Build the encoding for `dfg` at the given II over `horizon` schedule
  /// steps (horizon >= critical path; pass 0 for exactly the critical path).
  TimeFormulation(const Dfg& dfg, const CgraArch& arch, int ii,
                  int horizon = 0,
                  TimeConstraintOptions options = TimeConstraintOptions{});

  /// Emit all constraints. Returns false if trivially unsatisfiable.
  bool build();

  /// Solve; kUnknown on deadline/conflict budget exhaustion.
  SatStatus solve(const Deadline& deadline);

  /// True when the last solve's kUnknown came from the memory governor
  /// tripping rather than the deadline (see SatSolver).
  [[nodiscard]] bool last_solve_memory_out() const {
    return solver_.last_unknown_was_memory();
  }

  /// Extract the schedule from the current model (solve() returned kSat).
  [[nodiscard]] TimeSolution extract() const;

  /// Forbid the label vector of `solution` (one clause), so the next solve
  /// yields a schedule with a different slot assignment. Returns false if
  /// the formula became unsatisfiable.
  bool block_labels(const TimeSolution& solution);

  /// Forbid every schedule that realises all of the given (node, slot)
  /// placements simultaneously — the reference-path application of a
  /// space-conflict nogood (TimeSolver re-applies these after each
  /// rebuild). Placements a node can never reach in this instance satisfy
  /// the nogood vacuously. Returns false if the formula became
  /// unsatisfiable.
  bool add_label_nogood(
      const std::vector<std::pair<NodeId, int>>& placements);

  [[nodiscard]] int ii() const { return ii_; }
  [[nodiscard]] int horizon() const { return mobs_.length(); }
  [[nodiscard]] TimeFormulationStats stats() const;

 private:
  [[nodiscard]] Lit x_lit(NodeId v, int t) const;
  [[nodiscard]] std::optional<Lit> y_lit(NodeId v, int slot) const;

  bool emit_selection();
  bool emit_dependencies();
  bool emit_capacity();
  bool emit_connectivity();

  const Dfg& dfg_;
  const CgraArch& arch_;
  int ii_;
  TimeConstraintOptions options_;
  MobilitySchedule mobs_;
  SatSolver solver_;
  CnfBuilder cnf_;
  // x_base_[v]: SatVar of x[v][asap(v)]; consecutive vars follow.
  std::vector<SatVar> x_base_;
  // y_var_[v*ii + slot]: var of y[v][slot] or -1 if v can never sit there.
  std::vector<SatVar> y_var_;
  bool built_ = false;
};

}  // namespace monomap

#endif  // MONOMAP_TIMING_TIME_FORMULATION_HPP
