#include "timing/time_formulation.hpp"

#include <algorithm>

namespace monomap {

TimeFormulation::TimeFormulation(const Dfg& dfg, const CgraArch& arch, int ii,
                                 int horizon, TimeConstraintOptions options)
    : dfg_(dfg),
      arch_(arch),
      ii_(ii),
      options_(options),
      mobs_(dfg, horizon),
      cnf_(solver_) {
  MONOMAP_ASSERT(ii >= 1);
}

Lit TimeFormulation::x_lit(NodeId v, int t) const {
  const ScheduleRange& r = mobs_.range(v);
  MONOMAP_ASSERT(r.contains(t));
  return Lit::pos(x_base_[static_cast<std::size_t>(v)] + (t - r.asap));
}

std::optional<Lit> TimeFormulation::y_lit(NodeId v, int slot) const {
  MONOMAP_ASSERT(slot >= 0 && slot < ii_);
  const SatVar var = y_var_[static_cast<std::size_t>(v) *
                                static_cast<std::size_t>(ii_) +
                            static_cast<std::size_t>(slot)];
  if (var < 0) return std::nullopt;
  return Lit::pos(var);
}

bool TimeFormulation::emit_selection() {
  const int n = dfg_.num_nodes();
  x_base_.resize(static_cast<std::size_t>(n));
  y_var_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(ii_),
                -1);
  for (NodeId v = 0; v < n; ++v) {
    const ScheduleRange& r = mobs_.range(v);
    x_base_[static_cast<std::size_t>(v)] = solver_.new_var();
    for (int t = r.asap + 1; t <= r.alap; ++t) {
      solver_.new_var();
    }
    std::vector<Lit> choices;
    choices.reserve(static_cast<std::size_t>(r.width()));
    for (int t = r.asap; t <= r.alap; ++t) {
      choices.push_back(x_lit(v, t));
    }
    if (!cnf_.exactly_one(choices)) return false;

    // Slot aliases y[v][i] <-> OR of x[v][T] with T mod II == i.
    for (int slot = 0; slot < ii_; ++slot) {
      std::vector<Lit> members;
      for (int t = r.asap; t <= r.alap; ++t) {
        if (t % ii_ == slot) members.push_back(x_lit(v, t));
      }
      if (members.empty()) continue;
      const SatVar y = solver_.new_var();
      y_var_[static_cast<std::size_t>(v) * static_cast<std::size_t>(ii_) +
             static_cast<std::size_t>(slot)] = y;
      if (!cnf_.equiv_or(Lit::pos(y), members)) return false;
    }
  }
  return true;
}

bool TimeFormulation::emit_dependencies() {
  const Graph& g = dfg_.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.src == edge.dst) {
      // Self-dependency: T_d == T_s, needs dist*II >= 1.
      MONOMAP_ASSERT_MSG(edge.attr >= 1,
                         "zero-distance self-dependency is unschedulable");
      continue;
    }
    const ScheduleRange& rs = mobs_.range(edge.src);
    const ScheduleRange& rd = mobs_.range(edge.dst);
    for (int ts = rs.asap; ts <= rs.alap; ++ts) {
      for (int td = rd.asap; td <= rd.alap; ++td) {
        // Require T_d + dist*II >= T_s + 1; forbid violating pairs.
        bool forbid = td + edge.attr * ii_ < ts + 1;
        if (!forbid && options_.consecutive_slots && ii_ > 2) {
          // Restricted interconnect: the MRRG only links equal or
          // cyclically-consecutive slots (no register persistence).
          const int d = ((td - ts) % ii_ + ii_) % ii_;
          forbid = !(d == 0 || d == 1 || d == ii_ - 1);
        }
        if (forbid &&
            !cnf_.forbid_pair(x_lit(edge.src, ts), x_lit(edge.dst, td))) {
          return false;
        }
      }
    }
  }
  return true;
}

bool TimeFormulation::emit_capacity() {
  const int n = dfg_.num_nodes();
  for (int slot = 0; slot < ii_; ++slot) {
    std::vector<Lit> at_slot;
    for (NodeId v = 0; v < n; ++v) {
      if (const auto y = y_lit(v, slot)) {
        at_slot.push_back(*y);
      }
    }
    if (static_cast<int>(at_slot.size()) <= arch_.num_pes()) continue;
    if (!cnf_.at_most_k(at_slot, arch_.num_pes())) return false;
  }
  return true;
}

bool TimeFormulation::emit_connectivity() {
  const int n = dfg_.num_nodes();
  const int degree = arch_.connectivity_degree();
  for (NodeId v = 0; v < n; ++v) {
    const std::vector<NodeId> neighbors = dfg_.graph().undirected_neighbors(v);
    const int self_term = options_.strict_connectivity ? 1 : 0;
    if (static_cast<int>(neighbors.size()) + self_term <= degree) {
      continue;  // can never exceed D_M
    }
    for (int slot = 0; slot < ii_; ++slot) {
      std::vector<Lit> same_slot;
      for (const NodeId u : neighbors) {
        if (const auto y = y_lit(u, slot)) {
          same_slot.push_back(*y);
        }
      }
      if (options_.strict_connectivity) {
        // Count v itself: it occupies its own PE, which is one of the D_M
        // closed-neighbourhood positions of that PE at its own slot.
        if (const auto yv = y_lit(v, slot)) {
          same_slot.push_back(*yv);
        }
      }
      if (static_cast<int>(same_slot.size()) <= degree) continue;
      if (!cnf_.at_most_k(same_slot, degree)) return false;
    }
  }
  return true;
}

bool TimeFormulation::build() {
  MONOMAP_ASSERT(!built_);
  built_ = true;
  if (!emit_selection()) return false;
  if (options_.dependencies && !emit_dependencies()) return false;
  if (options_.capacity && !emit_capacity()) return false;
  if (options_.connectivity && !emit_connectivity()) return false;
  return true;
}

SatStatus TimeFormulation::solve(const Deadline& deadline) {
  MONOMAP_ASSERT(built_);
  return solver_.solve(deadline);
}

TimeSolution TimeFormulation::extract() const {
  TimeSolution solution;
  solution.ii = ii_;
  solution.horizon = mobs_.length();
  solution.time.resize(static_cast<std::size_t>(dfg_.num_nodes()), -1);
  for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
    const ScheduleRange& r = mobs_.range(v);
    for (int t = r.asap; t <= r.alap; ++t) {
      if (solver_.model_value(x_lit(v, t))) {
        solution.time[static_cast<std::size_t>(v)] = t;
        break;
      }
    }
    MONOMAP_ASSERT_MSG(solution.time[static_cast<std::size_t>(v)] >= 0,
                       "model has no time for node " << v);
  }
  return solution;
}

bool TimeFormulation::block_labels(const TimeSolution& solution) {
  std::vector<Lit> clause;
  clause.reserve(static_cast<std::size_t>(dfg_.num_nodes()));
  for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
    const auto y = y_lit(v, solution.label(v));
    MONOMAP_ASSERT(y.has_value());
    clause.push_back(~*y);
  }
  return solver_.add_clause(std::move(clause));
}

bool TimeFormulation::add_label_nogood(
    const std::vector<std::pair<NodeId, int>>& placements) {
  std::vector<Lit> clause;
  clause.reserve(placements.size());
  for (const auto& [v, slot] : placements) {
    MONOMAP_ASSERT(slot >= 0 && slot < ii_);
    const auto y = y_lit(v, slot);
    // No window step of v reaches this slot here: the placement cannot be
    // realised, so the nogood holds vacuously.
    if (!y.has_value()) return true;
    clause.push_back(~*y);
  }
  return solver_.add_clause(std::move(clause));
}

TimeFormulationStats TimeFormulation::stats() const {
  return TimeFormulationStats{solver_.num_vars(), solver_.num_clauses()};
}

}  // namespace monomap
