#include "timing/time_session.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "support/fault.hpp"

namespace monomap {

TimeSession::TimeSession(const Dfg& dfg, const CgraArch& arch, int ii,
                         TimeConstraintOptions options)
    : dfg_(dfg),
      arch_(arch),
      ii_(ii),
      options_(options),
      horizon_(critical_path_length(dfg)),
      ranges_(compute_asap_alap(dfg, horizon_)),
      cnf_(solver_) {
  MONOMAP_ASSERT(ii >= 1);
  const int n = dfg_.num_nodes();
  x_.resize(static_cast<std::size_t>(n));
  y_var_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(ii_),
                -1);
  cap_emitted_.assign(static_cast<std::size_t>(ii_), 0);
  conn_emitted_.assign(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(ii_), 0);

  // Base window: x variables, at-most-one per node (Sinz above 8 — later
  // steps extend it pairwise), and the x -> y slot links.
  for (NodeId v = 0; v < n; ++v) {
    const ScheduleRange& r = ranges_[static_cast<std::size_t>(v)];
    std::vector<Lit> window;
    window.reserve(static_cast<std::size_t>(r.width()));
    for (int t = r.asap; t <= r.alap; ++t) {
      const SatVar x = solver_.new_var();
      x_[static_cast<std::size_t>(v)].push_back(x);
      window.push_back(Lit::pos(x));
    }
    if (!cnf_.at_most_one(window)) ok_ = false;
    for (int t = r.asap; t <= r.alap; ++t) {
      const SatVar y = y_get_or_create(v, t % ii_);
      if (!cnf_.implies(x_lit(v, t), Lit::pos(y))) ok_ = false;
    }
  }

  if (options_.dependencies) {
    const Graph& g = dfg_.graph();
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& edge = g.edge(e);
      if (edge.src == edge.dst) {
        MONOMAP_ASSERT_MSG(edge.attr >= 1,
                           "zero-distance self-dependency is unschedulable");
        continue;
      }
      const ScheduleRange& rs = ranges_[static_cast<std::size_t>(edge.src)];
      const ScheduleRange& rd = ranges_[static_cast<std::size_t>(edge.dst)];
      emit_dependency_pairs(edge.src, edge.dst, edge.attr, rs.asap, rs.alap,
                            rd.asap, rd.alap);
    }
  }

  selectors_.push_back(solver_.new_var());
  emit_window_clauses(selectors_.back());
  refresh_cardinalities();
  seed_space_friendly_phases(0);
}

void TimeSession::seed_space_friendly_phases(int salt) {
  // Bias the next model toward schedules the space phase places easily:
  // walk the distance-0 DAG in topological order and give every node a
  // preferred window step whose kernel slot (a) holds the fewest of the
  // node's DFG neighbours (connectivity pressure is what makes placements
  // fail) and (b) has the lowest overall occupancy. `salt` rotates which
  // step wins among equal scores, so a re-seed after a space failure
  // steers the search toward a structurally different schedule instead of
  // the nearest neighbour of the blocked one. This only touches decision
  // phases — satisfiability and completeness are untouched; phase saving
  // takes over as soon as search learns better.
  const Graph& g = dfg_.graph();
  const auto order = topological_sort(g, edges_with_attr(0));
  if (!order.has_value()) return;
  std::vector<int> slot_load(static_cast<std::size_t>(ii_), 0);
  std::vector<int> seeded_slot(static_cast<std::size_t>(dfg_.num_nodes()),
                               -1);
  for (const NodeId v : *order) {
    const ScheduleRange& r = ranges_[static_cast<std::size_t>(v)];
    const std::vector<NodeId> neighbors = g.undirected_neighbors(v);
    // Drop stale phases from a previous seeding round.
    for (int t = r.asap; t <= r.alap; ++t) {
      solver_.set_polarity(x_lit(v, t).var(), false);
    }
    for (int slot = 0; slot < ii_; ++slot) {
      if (const SatVar y = y_of(v, slot); y >= 0) {
        solver_.set_polarity(y, false);
      }
    }
    int best_t = r.asap;
    long best_score = -1;
    const int width = r.width();
    for (int k = 0; k < width; ++k) {
      const int t = r.asap + (k + salt) % width;  // salt-rotated visit order
      const int slot = t % ii_;
      int neighbor_load = 0;
      for (const NodeId u : neighbors) {
        if (seeded_slot[static_cast<std::size_t>(u)] == slot) {
          ++neighbor_load;
        }
      }
      // Spread a node's neighbours across slots (same-slot neighbour
      // concentration is what makes placements fail), but PACK the global
      // slot occupancy: dense slots give the space search strong mono1
      // propagation, so dense schedules place fast or refute fast — and a
      // fast refutation carries a nogood. Capacity-full slots are avoided.
      const bool full =
          slot_load[static_cast<std::size_t>(slot)] >= arch_.num_pes();
      const long score =
          (static_cast<long>(neighbor_load) + (full ? 1 : 0)) *
              (static_cast<long>(dfg_.num_nodes()) + 1) -
          (full ? 0 : slot_load[static_cast<std::size_t>(slot)]);
      if (best_score < 0 || score < best_score) {
        best_score = score;
        best_t = t;
      }
    }
    const int slot = best_t % ii_;
    seeded_slot[static_cast<std::size_t>(v)] = slot;
    ++slot_load[static_cast<std::size_t>(slot)];
    // Seed the step AND its slot alias: branching on y[v][slot'] = false
    // (the default phase) wipes a whole slot before any x is touched, so
    // the y phases must tell the same story as the x phases.
    solver_.set_polarity(x_lit(v, best_t).var(), true);
    solver_.set_polarity(y_of(v, slot), true);
  }
}

Lit TimeSession::x_lit(NodeId v, int t) const {
  const ScheduleRange& r = ranges_[static_cast<std::size_t>(v)];
  MONOMAP_ASSERT(r.contains(t));
  return Lit::pos(
      x_[static_cast<std::size_t>(v)][static_cast<std::size_t>(t - r.asap)]);
}

SatVar TimeSession::y_of(NodeId v, int slot) const {
  return y_var_[static_cast<std::size_t>(v) * static_cast<std::size_t>(ii_) +
                static_cast<std::size_t>(slot)];
}

SatVar TimeSession::y_get_or_create(NodeId v, int slot) {
  const std::size_t idx =
      static_cast<std::size_t>(v) * static_cast<std::size_t>(ii_) +
      static_cast<std::size_t>(slot);
  if (y_var_[idx] < 0) y_var_[idx] = solver_.new_var();
  return y_var_[idx];
}

void TimeSession::append_step(NodeId v, int t) {
  const SatVar x = solver_.new_var();
  // Pairwise exclusion against every existing step keeps the node's
  // at-most-one valid no matter how the base window was encoded.
  for (const SatVar prev : x_[static_cast<std::size_t>(v)]) {
    if (!cnf_.forbid_pair(Lit::pos(prev), Lit::pos(x))) ok_ = false;
  }
  x_[static_cast<std::size_t>(v)].push_back(x);
  const SatVar y = y_get_or_create(v, t % ii_);
  if (!cnf_.implies(Lit::pos(x), Lit::pos(y))) ok_ = false;
}

void TimeSession::emit_dependency_pairs(NodeId src, NodeId dst, int dist,
                                        int ts_lo, int ts_hi, int td_lo,
                                        int td_hi) {
  for (int ts = ts_lo; ts <= ts_hi; ++ts) {
    for (int td = td_lo; td <= td_hi; ++td) {
      // Require T_d + dist*II >= T_s + 1; forbid violating pairs.
      bool forbid = td + dist * ii_ < ts + 1;
      if (!forbid && options_.consecutive_slots && ii_ > 2) {
        // Restricted interconnect: the MRRG only links equal or
        // cyclically-consecutive slots (no register persistence).
        const int d = ((td - ts) % ii_ + ii_) % ii_;
        forbid = !(d == 0 || d == 1 || d == ii_ - 1);
      }
      if (forbid && !cnf_.forbid_pair(x_lit(src, ts), x_lit(dst, td))) {
        ok_ = false;
      }
    }
  }
}

void TimeSession::emit_new_dependency_pairs() {
  const Graph& g = dfg_.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.src == edge.dst) continue;
    const ScheduleRange& rs = ranges_[static_cast<std::size_t>(edge.src)];
    const ScheduleRange& rd = ranges_[static_cast<std::size_t>(edge.dst)];
    // Each extension adds exactly the step `alap` per node: pair the new
    // source step against the full destination window, then the old source
    // window against the new destination step.
    emit_dependency_pairs(edge.src, edge.dst, edge.attr, rs.alap, rs.alap,
                          rd.asap, rd.alap);
    emit_dependency_pairs(edge.src, edge.dst, edge.attr, rs.asap,
                          rs.alap - 1, rd.alap, rd.alap);
  }
}

void TimeSession::emit_window_clauses(SatVar selector) {
  // Guarded at-least-one: under this extension's selector every node is
  // scheduled somewhere in its current window.
  for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
    const ScheduleRange& r = ranges_[static_cast<std::size_t>(v)];
    std::vector<Lit> clause;
    clause.reserve(static_cast<std::size_t>(r.width()) + 1);
    clause.push_back(Lit::neg(selector));
    for (int t = r.asap; t <= r.alap; ++t) {
      clause.push_back(x_lit(v, t));
    }
    if (!solver_.add_clause(std::move(clause))) ok_ = false;
  }
}

void TimeSession::refresh_cardinalities() {
  const int n = dfg_.num_nodes();
  if (options_.capacity) {
    for (int slot = 0; slot < ii_; ++slot) {
      std::vector<Lit> at_slot;
      for (NodeId v = 0; v < n; ++v) {
        if (const SatVar y = y_of(v, slot); y >= 0) {
          at_slot.push_back(Lit::pos(y));
        }
      }
      const int size = static_cast<int>(at_slot.size());
      if (size <= arch_.num_pes() ||
          size <= cap_emitted_[static_cast<std::size_t>(slot)]) {
        continue;
      }
      if (!cnf_.at_most_k(at_slot, arch_.num_pes())) ok_ = false;
      cap_emitted_[static_cast<std::size_t>(slot)] = size;
    }
  }
  if (options_.connectivity) {
    const int degree = arch_.connectivity_degree();
    for (NodeId v = 0; v < n; ++v) {
      const std::vector<NodeId> neighbors =
          dfg_.graph().undirected_neighbors(v);
      for (int slot = 0; slot < ii_; ++slot) {
        std::vector<Lit> same_slot;
        for (const NodeId u : neighbors) {
          if (const SatVar y = y_of(u, slot); y >= 0) {
            same_slot.push_back(Lit::pos(y));
          }
        }
        if (options_.strict_connectivity) {
          // Count v itself: it occupies one of the D_M closed-neighbourhood
          // positions at its own slot (ablation A2 semantics).
          if (const SatVar y = y_of(v, slot); y >= 0) {
            same_slot.push_back(Lit::pos(y));
          }
        }
        const std::size_t idx =
            static_cast<std::size_t>(v) * static_cast<std::size_t>(ii_) +
            static_cast<std::size_t>(slot);
        const int size = static_cast<int>(same_slot.size());
        if (size <= degree || size <= conn_emitted_[idx]) continue;
        if (!cnf_.at_most_k(same_slot, degree)) ok_ = false;
        conn_emitted_[idx] = size;
      }
    }
  }
}

bool TimeSession::extend_horizon() {
  if (!ok_) return false;
  const SatVar retired = selectors_.back();
  ++horizon_;
  const std::vector<ScheduleRange> next =
      compute_asap_alap(dfg_, horizon_);
  for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
    const ScheduleRange& oldr = ranges_[static_cast<std::size_t>(v)];
    const ScheduleRange& newr = next[static_cast<std::size_t>(v)];
    // The incremental encoding relies on windows growing by exactly one
    // step at the tail (ALAP = horizon - 1 - tail(v)).
    MONOMAP_ASSERT(newr.asap == oldr.asap && newr.alap == oldr.alap + 1);
  }
  ranges_ = next;
  for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
    append_step(v, ranges_[static_cast<std::size_t>(v)].alap);
  }
  if (options_.dependencies) emit_new_dependency_pairs();
  selectors_.push_back(solver_.new_var());
  emit_window_clauses(selectors_.back());
  refresh_cardinalities();
  // Retire the previous horizon permanently — the search never narrows.
  if (!solver_.add_unit(Lit::neg(retired))) ok_ = false;
  return ok_;
}

SatStatus TimeSession::solve(const Deadline& deadline) {
  fault::maybe_inject("time.session");
  if (!ok_) return SatStatus::kUnsat;
  // Early-out before touching the solver: a cancelled speculative attempt
  // (its Deadline's token fired) should stop at the next call boundary
  // instead of paying for a solver round first.
  if (deadline.expired()) return SatStatus::kUnknown;
  return solver_.solve_assuming({Lit::pos(selectors_.back())}, deadline);
}

bool TimeSession::unsat_is_final() const {
  return !ok_ || solver_.failed_assumptions().empty();
}

TimeSolution TimeSession::extract() const {
  TimeSolution solution;
  solution.ii = ii_;
  solution.horizon = horizon_;
  solution.time.resize(static_cast<std::size_t>(dfg_.num_nodes()), -1);
  for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
    const ScheduleRange& r = ranges_[static_cast<std::size_t>(v)];
    for (int t = r.asap; t <= r.alap; ++t) {
      if (solver_.model_value(x_lit(v, t))) {
        solution.time[static_cast<std::size_t>(v)] = t;
        break;
      }
    }
    MONOMAP_ASSERT_MSG(solution.time[static_cast<std::size_t>(v)] >= 0,
                       "model has no time for node " << v);
  }
  return solution;
}

bool TimeSession::block_labels(const TimeSolution& solution) {
  std::vector<Lit> clause;
  clause.reserve(static_cast<std::size_t>(dfg_.num_nodes()));
  for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
    const SatVar y = y_of(v, solution.label(v));
    MONOMAP_ASSERT(y >= 0);
    clause.push_back(Lit::neg(y));
  }
  if (!solver_.add_clause(std::move(clause))) ok_ = false;
  return ok_;
}

bool TimeSession::add_label_nogood(
    const std::vector<std::pair<NodeId, int>>& placements) {
  std::vector<Lit> clause;
  clause.reserve(placements.size());
  for (const auto& [v, slot] : placements) {
    MONOMAP_ASSERT(slot >= 0 && slot < ii_);
    // Materialise the slot variable even if no current window step reaches
    // it: the clause then already binds when a later horizon extension
    // links an x to it (an unlinked y floats false at zero cost).
    clause.push_back(Lit::neg(y_get_or_create(v, slot)));
  }
  if (!solver_.add_clause(std::move(clause))) ok_ = false;
  return ok_;
}

TimeFormulationStats TimeSession::stats() const {
  return TimeFormulationStats{solver_.num_vars(), solver_.num_clauses()};
}

int TimeSession::num_learnts() const { return solver_.num_learnts(); }

}  // namespace monomap
