// Time-dimension search driver (paper Sec. IV-B).
//
// Sweeps II upward from mII. For each II it searches the KMS (optionally
// with extended schedule horizons, which add mobility slack exactly like
// SAT-MapIt's iterative schedule extension) and yields schedules. The
// caller (DecoupledMapper) may ask for further, different-labelled
// schedules after a space failure — and may feed the space phase's
// conflict explanation back as a nogood that prunes whole families of
// schedules, not just the failed label vector.
//
// Two engines drive the search:
//  * TimeEngine::kIncremental (default) — one persistent TimeSession (one
//    warm SAT solver) per II serves every horizon extension via
//    assumption literals; learnt clauses, blocked label vectors and
//    space-conflict nogoods all survive horizon extension.
//  * TimeEngine::kReference — the original rebuild-per-instance path (a
//    fresh TimeFormulation per (II, extension)), kept as the independent
//    oracle for differential testing, mirroring the PR 3 space-engine
//    pattern.
#ifndef MONOMAP_TIMING_TIME_SOLVER_HPP
#define MONOMAP_TIMING_TIME_SOLVER_HPP

#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "sched/mii.hpp"
#include "timing/time_formulation.hpp"
#include "timing/time_session.hpp"

namespace monomap {

/// Time-search engine (see tests/time_engines_test.cpp for the
/// differential harness).
enum class TimeEngine {
  /// Persistent per-II session: incremental horizon extension under
  /// assumption literals, learnt-clause reuse, nogood accumulation.
  kIncremental,
  /// Rebuild-per-instance reference path (nogoods are re-applied after
  /// every rebuild so both engines prune the same schedules).
  kReference,
};

const char* to_string(TimeEngine engine);

struct TimeSolverOptions {
  TimeConstraintOptions constraints;
  TimeEngine engine = TimeEngine::kIncremental;
  /// Highest II to try; 0 = automatic (max(mII, #nodes) — at II = #nodes a
  /// fully sequential schedule always satisfies capacity and connectivity).
  int max_ii = 0;
  /// Lowest II to try; the search starts at max(mII, min_ii). Setting
  /// min_ii == max_ii pins the solver to exactly one II — the speculative
  /// mapper runs one such pinned solver per racing II.
  int min_ii = 0;
  /// Extra schedule steps to try beyond the critical path at each II before
  /// giving the II up. Adds KMS folds, exactly like the paper's iterative
  /// MobS folding.
  int max_horizon_extension = 8;
};

struct TimeSolverStats {
  int instances_built = 0;  // (II, extension) instances activated
  int sat_calls = 0;
  int solutions_yielded = 0;
  int final_ii = 0;
  // Incremental-engine reuse counters (zero on the reference path where
  // noted).
  int sessions_created = 0;      // warm solvers built (one per II reached)
  int horizon_extensions = 0;    // in-place window growths (kIncremental)
  int assumptions_used = 0;      // assumption literals passed to solves
  int learnt_retained = 0;       // learnt clauses alive after the last call
  // Space-conflict feedback (both engines).
  int nogoods_added = 0;         // distinct space conflicts recorded
  int narrow_nogoods = 0;        // nogoods over a strict subset of nodes
  int nogoods_lifted = 0;        // extra rotation clauses derived from them
  int nogoods_deduped = 0;       // conflicts already covered by a recorded one
  int nogoods_lifted_cross_ii = 0;  // clauses instantiated from other IIs
  TimeFormulationStats last_formulation;
};

class TimeSolver {
 public:
  TimeSolver(const Dfg& dfg, const CgraArch& arch,
             TimeSolverOptions options = TimeSolverOptions{});
  ~TimeSolver();
  TimeSolver(const TimeSolver&) = delete;
  TimeSolver& operator=(const TimeSolver&) = delete;

  /// Yield the next time solution. The first call returns a schedule at the
  /// lowest feasible II >= mII; subsequent calls block the previously
  /// returned label vector and continue the search (same II first, then
  /// larger horizons, then larger IIs). Returns std::nullopt when the search
  /// space is exhausted up to max_ii or the deadline expired (see
  /// timed_out()).
  std::optional<TimeSolution> next(const Deadline& deadline);

  /// Abandon the current II entirely (the mapper calls this when several
  /// schedules at this II failed in space) and continue at II+1. Returns
  /// false if II+1 exceeds max_ii.
  bool skip_to_next_ii();

  /// Record a space-conflict nogood against the current II: the subset
  /// `nodes` of `solution`'s nodes cannot jointly take their labelled
  /// slots, so prune every schedule that repeats those placements. Because
  /// spatial feasibility depends only on the slot *partition* (mono1 wants
  /// distinct PEs per layer and mono3 never reads label values; under the
  /// consecutive-only model cyclic label distances are rotation-invariant
  /// too), the conflict is lifted to all ii cyclic rotations — one clause
  /// each — so a refuted schedule family takes its rotated twins down with
  /// it. Conflicts already covered by a recorded nogood are skipped
  /// (stats().nogoods_deduped). Nogoods persist across horizon extensions
  /// of the II (and rebuilds on the reference path) and subsume blocking
  /// `solution` itself. Returns false if `solution` is not from the
  /// current II.
  bool add_space_nogood(const TimeSolution& solution,
                        const std::vector<NodeId>& nodes);

  /// Inject a placement nogood instantiated from *another* II's refutation
  /// certificate (see CrossIiNogoodStore): the given (node, slot) pairs —
  /// slots already reduced mod the current II — are jointly spatially
  /// infeasible here too. Unlike add_space_nogood no further rotation
  /// lifting happens (the caller instantiates every rotation itself).
  /// Safe to call before the first next(): the clause is queued and armed
  /// when the II's solver comes up. Returns true when the nogood was new.
  bool add_cross_ii_nogood(std::vector<std::pair<NodeId, int>> placements);

  [[nodiscard]] int current_ii() const { return ii_; }
  /// Effective inclusive II ceiling (options.max_ii, or the automatic
  /// max(mII, #nodes) when unset).
  [[nodiscard]] int max_ii() const { return max_ii_; }
  [[nodiscard]] bool timed_out() const { return timed_out_; }
  /// Subset of timed_out(): the stop came from the memory governor
  /// tripping, not the deadline — callers classify it as `memory`.
  [[nodiscard]] bool memory_out() const { return memory_out_; }
  [[nodiscard]] const MiiBreakdown& mii() const { return mii_; }
  [[nodiscard]] const TimeSolverStats& stats() const { return stats_; }

 private:
  bool advance_instance();  // move to next (ii, extension); false if done
  void enter_next_ii();

  const Dfg& dfg_;
  const CgraArch& arch_;
  TimeSolverOptions options_;
  MiiBreakdown mii_;
  int max_ii_;
  int ii_;
  int extension_ = 0;
  // kReference engine state: one formulation per (ii, extension), plus the
  // nogoods recorded at this II (rotations included) for re-application
  // after each rebuild. The incremental engine also queues cross-II
  // nogoods here when they arrive before the II's session exists.
  std::unique_ptr<TimeFormulation> formulation_;
  std::vector<std::vector<std::pair<NodeId, int>>> ii_nogoods_;
  // Conflicts recorded at this II, every rotation of each — the dedupe set.
  std::set<std::vector<std::pair<NodeId, int>>> seen_nogoods_;
  // kIncremental engine state: one warm session per II.
  std::unique_ptr<TimeSession> session_;
  int reseed_salt_ = 0;  // phase-diversification counter at this II
  std::optional<TimeSolution> last_solution_;
  bool last_blocked_by_nogood_ = false;
  bool instance_ok_ = false;
  bool timed_out_ = false;
  bool memory_out_ = false;
  TimeSolverStats stats_;
};

}  // namespace monomap

#endif  // MONOMAP_TIMING_TIME_SOLVER_HPP
