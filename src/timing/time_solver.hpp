// Time-dimension search driver (paper Sec. IV-B).
//
// Sweeps II upward from mII. For each II it builds the SAT formulation over
// the KMS (optionally with extended schedule horizons, which add mobility
// slack exactly like SAT-MapIt's iterative schedule extension) and yields
// schedules. The caller (DecoupledMapper) may ask for further, different-
// labelled schedules after a space failure; the solver blocks the previous
// label vector and re-solves incrementally.
#ifndef MONOMAP_TIMING_TIME_SOLVER_HPP
#define MONOMAP_TIMING_TIME_SOLVER_HPP

#include <memory>
#include <optional>

#include "sched/mii.hpp"
#include "timing/time_formulation.hpp"

namespace monomap {

struct TimeSolverOptions {
  TimeConstraintOptions constraints;
  /// Highest II to try; 0 = automatic (max(mII, #nodes) — at II = #nodes a
  /// fully sequential schedule always satisfies capacity and connectivity).
  int max_ii = 0;
  /// Extra schedule steps to try beyond the critical path at each II before
  /// giving the II up. Adds KMS folds, exactly like the paper's iterative
  /// MobS folding.
  int max_horizon_extension = 8;
};

struct TimeSolverStats {
  int instances_built = 0;
  int sat_calls = 0;
  int solutions_yielded = 0;
  int final_ii = 0;
  TimeFormulationStats last_formulation;
};

class TimeSolver {
 public:
  TimeSolver(const Dfg& dfg, const CgraArch& arch,
             TimeSolverOptions options = TimeSolverOptions{});
  ~TimeSolver();
  TimeSolver(const TimeSolver&) = delete;
  TimeSolver& operator=(const TimeSolver&) = delete;

  /// Yield the next time solution. The first call returns a schedule at the
  /// lowest feasible II >= mII; subsequent calls block the previously
  /// returned label vector and continue the search (same II first, then
  /// larger horizons, then larger IIs). Returns std::nullopt when the search
  /// space is exhausted up to max_ii or the deadline expired (see
  /// timed_out()).
  std::optional<TimeSolution> next(const Deadline& deadline);

  /// Abandon the current II entirely (the mapper calls this when several
  /// schedules at this II failed in space) and continue at II+1. Returns
  /// false if II+1 exceeds max_ii.
  bool skip_to_next_ii();

  [[nodiscard]] int current_ii() const { return ii_; }
  [[nodiscard]] bool timed_out() const { return timed_out_; }
  [[nodiscard]] const MiiBreakdown& mii() const { return mii_; }
  [[nodiscard]] const TimeSolverStats& stats() const { return stats_; }

 private:
  bool advance_instance();  // move to next (ii, extension); false if done

  const Dfg& dfg_;
  const CgraArch& arch_;
  TimeSolverOptions options_;
  MiiBreakdown mii_;
  int max_ii_;
  int ii_;
  int extension_ = 0;
  std::unique_ptr<TimeFormulation> formulation_;
  std::optional<TimeSolution> last_solution_;
  bool instance_ok_ = false;
  bool timed_out_ = false;
  TimeSolverStats stats_;
};

}  // namespace monomap

#endif  // MONOMAP_TIMING_TIME_SOLVER_HPP
