#include "timing/time_solver.hpp"

#include <algorithm>

#include "sched/asap_alap.hpp"
#include "support/log.hpp"

namespace monomap {

const char* to_string(TimeEngine engine) {
  switch (engine) {
    case TimeEngine::kIncremental: return "incremental";
    case TimeEngine::kReference: return "reference";
  }
  return "?";
}

TimeSolver::TimeSolver(const Dfg& dfg, const CgraArch& arch,
                       TimeSolverOptions options)
    : dfg_(dfg),
      arch_(arch),
      options_(options),
      mii_(compute_mii(dfg, arch)),
      max_ii_(options.max_ii > 0
                  ? options.max_ii
                  : std::max(mii_.mii(), std::max(1, dfg.num_nodes()))),
      ii_(std::max(mii_.mii(), options.min_ii)) {
  MONOMAP_ASSERT(dfg.num_nodes() > 0);
  extension_ = -1;  // advance_instance() pre-increments (reference path)
}

TimeSolver::~TimeSolver() = default;

void TimeSolver::enter_next_ii() {
  formulation_.reset();
  session_.reset();
  ii_nogoods_.clear();
  seen_nogoods_.clear();
  instance_ok_ = false;
  extension_ = -1;
  reseed_salt_ = 0;
  ++ii_;
}

bool TimeSolver::advance_instance() {
  if (options_.engine == TimeEngine::kIncremental) {
    for (;;) {
      if (ii_ > max_ii_) return false;
      if (!session_) {
        session_ = std::make_unique<TimeSession>(dfg_, arch_, ii_,
                                                 options_.constraints);
        extension_ = 0;
        ++stats_.sessions_created;
        ++stats_.instances_built;
        // Arm cross-II nogoods that were injected before the session
        // existed (empty outside speculative runs).
        for (const auto& nogood : ii_nogoods_) {
          session_->add_label_nogood(nogood);
        }
      } else {
        if (extension_ >= options_.max_horizon_extension) {
          enter_next_ii();
          continue;
        }
        ++extension_;
        ++stats_.horizon_extensions;
        ++stats_.instances_built;
        session_->extend_horizon();
      }
      if (session_->ok()) {
        instance_ok_ = true;
        stats_.last_formulation = session_->stats();
        return true;
      }
      // The session's formula died without assumptions: every further
      // extension is a superset, so the whole II is exhausted.
      enter_next_ii();
    }
  }
  for (;;) {
    ++extension_;
    if (extension_ > options_.max_horizon_extension) {
      enter_next_ii();
      ++extension_;  // enter_next_ii resets to -1; this instance is 0
    }
    if (ii_ > max_ii_) {
      return false;  // also covers mII already above the configured cap
    }
    const int horizon = critical_path_length(dfg_) + extension_;
    formulation_ = std::make_unique<TimeFormulation>(
        dfg_, arch_, ii_, horizon, options_.constraints);
    ++stats_.instances_built;
    if (formulation_->build()) {
      // Re-arm the space-conflict nogoods recorded at this II; a rebuild
      // must keep pruning exactly what the incremental session prunes.
      bool alive = true;
      for (const auto& nogood : ii_nogoods_) {
        if (!formulation_->add_label_nogood(nogood)) {
          alive = false;
          break;
        }
      }
      if (alive) {
        instance_ok_ = true;
        stats_.last_formulation = formulation_->stats();
        return true;
      }
    }
    // Trivially unsatisfiable (e.g. capacity cannot fit); try next instance.
    instance_ok_ = false;
  }
}

bool TimeSolver::skip_to_next_ii() {
  last_solution_.reset();
  last_blocked_by_nogood_ = false;
  enter_next_ii();
  return ii_ <= max_ii_;
}

bool TimeSolver::add_space_nogood(const TimeSolution& solution,
                                  const std::vector<NodeId>& nodes) {
  if (solution.ii != ii_ || nodes.empty()) return false;
  std::vector<std::pair<NodeId, int>> placements;
  placements.reserve(nodes.size());
  for (const NodeId v : nodes) {
    placements.emplace_back(v, solution.label(v));
  }
  // A conflict already covered by a recorded one (directly or as a
  // rotation of it) adds nothing — every rotation of every recorded
  // conflict sits in seen_nogoods_.
  if (seen_nogoods_.count(placements) != 0) {
    ++stats_.nogoods_deduped;
    return true;
  }
  ++stats_.nogoods_added;
  if (static_cast<int>(nodes.size()) < dfg_.num_nodes()) {
    ++stats_.narrow_nogoods;
  }
  // Lift the conflict to all cyclic slot rotations: spatial feasibility
  // depends only on the slot partition (and, in the consecutive-only
  // model, on cyclic label distances — also rotation-invariant), so every
  // rotation of an unplaceable placement set is unplaceable too.
  for (int k = 0; k < ii_; ++k) {
    std::vector<std::pair<NodeId, int>> rotated;
    rotated.reserve(placements.size());
    for (const auto& [v, slot] : placements) {
      rotated.emplace_back(v, (slot + k) % ii_);
    }
    if (!seen_nogoods_.insert(rotated).second) continue;
    if (k > 0) ++stats_.nogoods_lifted;
    if (options_.engine == TimeEngine::kIncremental) {
      if (session_) session_->add_label_nogood(rotated);
    } else {
      if (formulation_ && instance_ok_ &&
          !formulation_->add_label_nogood(rotated)) {
        instance_ok_ = false;  // every schedule left here is pruned
      }
      ii_nogoods_.push_back(std::move(rotated));
    }
  }
  // A nogood whose placements all appear in the pending solution subsumes
  // the blocking clause next() would add for it.
  if (last_solution_.has_value() && last_solution_->ii == solution.ii) {
    bool covers = true;
    for (const NodeId v : nodes) {
      if (last_solution_->label(v) != solution.label(v)) {
        covers = false;
        break;
      }
    }
    if (covers) last_blocked_by_nogood_ = true;
  }
  return true;
}

bool TimeSolver::add_cross_ii_nogood(
    std::vector<std::pair<NodeId, int>> placements) {
  if (placements.empty()) return false;
  for (const auto& [v, slot] : placements) {
    MONOMAP_ASSERT(v >= 0 && v < dfg_.num_nodes());
    MONOMAP_ASSERT(slot >= 0 && slot < ii_);
  }
  // Canonical node order so identical instantiations from different
  // certificates (or repeated drains) dedupe against each other.
  std::sort(placements.begin(), placements.end());
  if (!seen_nogoods_.insert(placements).second) return false;
  ++stats_.nogoods_lifted_cross_ii;
  if (options_.engine == TimeEngine::kIncremental) {
    if (session_) session_->add_label_nogood(placements);
    // Queue for replay in case the II's session is created later (or not
    // yet); enter_next_ii clears the queue with the II it belongs to.
    ii_nogoods_.push_back(std::move(placements));
    return true;
  }
  if (formulation_ && instance_ok_ &&
      !formulation_->add_label_nogood(placements)) {
    instance_ok_ = false;  // every schedule left here is pruned
  }
  ii_nogoods_.push_back(std::move(placements));
  return true;
}

std::optional<TimeSolution> TimeSolver::next(const Deadline& deadline) {
  const bool incremental = options_.engine == TimeEngine::kIncremental;
  // Block the previously yielded solution so the search moves on (unless a
  // space-conflict nogood already subsumes it).
  if (last_solution_.has_value() && instance_ok_) {
    if (!last_blocked_by_nogood_) {
      if (incremental) {
        if (session_) session_->block_labels(*last_solution_);
      } else if (formulation_ &&
                 !formulation_->block_labels(*last_solution_)) {
        instance_ok_ = false;  // no more label vectors at this instance
      }
    }
    // The caller rejected the previous schedule (a space failure):
    // re-seed the warm session's phases with a rotated preference so the
    // next model comes from a structurally different schedule family
    // instead of phase saving drifting to the nearest neighbour of the
    // blocked one. Measured on the 8x8 suite this keeps the achieved II
    // at parity with the reference engine on every instance (drift-only
    // retries lose an II level on cfd).
    if (incremental && session_) {
      session_->reseed_phases(++reseed_salt_);
    }
  }
  last_solution_.reset();
  last_blocked_by_nogood_ = false;

  for (;;) {
    if (deadline.expired()) {
      timed_out_ = true;
      return std::nullopt;
    }
    if (!instance_ok_) {
      if (!advance_instance()) {
        return std::nullopt;
      }
      continue;
    }
    ++stats_.sat_calls;
    SatStatus status;
    if (incremental) {
      ++stats_.assumptions_used;  // one horizon selector per call
      status = session_->solve(deadline);
      stats_.learnt_retained = session_->num_learnts();
      stats_.last_formulation = session_->stats();
    } else {
      status = formulation_->solve(deadline);
    }
    if (status == SatStatus::kSat) {
      TimeSolution solution =
          incremental ? session_->extract() : formulation_->extract();
      MONOMAP_DEBUG("time solution at II=" << ii_ << " horizon="
                                           << solution.horizon);
      last_solution_ = solution;
      ++stats_.solutions_yielded;
      stats_.final_ii = ii_;
      return solution;
    }
    if (status == SatStatus::kUnknown) {
      timed_out_ = true;
      if (incremental ? (session_ && session_->last_solve_memory_out())
                      : (formulation_ &&
                         formulation_->last_solve_memory_out())) {
        memory_out_ = true;
      }
      return std::nullopt;
    }
    // UNSAT: exhaust this instance, move on. A session refutation that did
    // not rest on the horizon selector exhausts the whole II at once.
    instance_ok_ = false;
    if (incremental && session_ && session_->unsat_is_final()) {
      enter_next_ii();
    }
  }
}

}  // namespace monomap
