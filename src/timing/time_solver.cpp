#include "timing/time_solver.hpp"

#include <algorithm>

#include "sched/asap_alap.hpp"
#include "support/log.hpp"

namespace monomap {

TimeSolver::TimeSolver(const Dfg& dfg, const CgraArch& arch,
                       TimeSolverOptions options)
    : dfg_(dfg),
      arch_(arch),
      options_(options),
      mii_(compute_mii(dfg, arch)),
      max_ii_(options.max_ii > 0
                  ? options.max_ii
                  : std::max(mii_.mii(), std::max(1, dfg.num_nodes()))),
      ii_(mii_.mii()) {
  MONOMAP_ASSERT(dfg.num_nodes() > 0);
  extension_ = -1;  // advance_instance() pre-increments
}

TimeSolver::~TimeSolver() = default;

bool TimeSolver::advance_instance() {
  for (;;) {
    ++extension_;
    if (extension_ > options_.max_horizon_extension) {
      extension_ = 0;
      ++ii_;
    }
    if (ii_ > max_ii_) {
      return false;  // also covers mII already above the configured cap
    }
    const int horizon = critical_path_length(dfg_) + extension_;
    formulation_ = std::make_unique<TimeFormulation>(
        dfg_, arch_, ii_, horizon, options_.constraints);
    ++stats_.instances_built;
    if (formulation_->build()) {
      instance_ok_ = true;
      stats_.last_formulation = formulation_->stats();
      return true;
    }
    // Trivially unsatisfiable (e.g. capacity cannot fit); try next instance.
    instance_ok_ = false;
  }
}

bool TimeSolver::skip_to_next_ii() {
  formulation_.reset();
  instance_ok_ = false;
  last_solution_.reset();
  extension_ = -1;  // advance_instance() pre-increments to 0
  ++ii_;
  return ii_ <= max_ii_;
}

std::optional<TimeSolution> TimeSolver::next(const Deadline& deadline) {
  // Block the previously yielded solution so the search moves on.
  if (formulation_ && instance_ok_ && last_solution_.has_value()) {
    if (!formulation_->block_labels(*last_solution_)) {
      instance_ok_ = false;  // no more label vectors at this instance
    }
    last_solution_.reset();
  }
  for (;;) {
    if (deadline.expired()) {
      timed_out_ = true;
      return std::nullopt;
    }
    if (!formulation_ || !instance_ok_) {
      if (!advance_instance()) {
        return std::nullopt;
      }
      continue;
    }
    ++stats_.sat_calls;
    const SatStatus status = formulation_->solve(deadline);
    if (status == SatStatus::kSat) {
      TimeSolution solution = formulation_->extract();
      MONOMAP_DEBUG("time solution at II=" << ii_ << " horizon="
                                           << solution.horizon);
      last_solution_ = solution;
      ++stats_.solutions_yielded;
      stats_.final_ii = ii_;
      return solution;
    }
    if (status == SatStatus::kUnknown) {
      timed_out_ = true;
      return std::nullopt;
    }
    // UNSAT: exhaust this instance, move on.
    instance_ok_ = false;
  }
}

}  // namespace monomap
