// Incremental per-II time-phase session (the tentpole of the incremental
// time engine).
//
// The reference path (TimeSolver + TimeFormulation with
// TimeEngine::kReference) rebuilds the whole SAT encoding and a fresh
// solver for every (II, horizon-extension) instance, so a space failure or
// an UNSAT horizon teaches the next query nothing. A TimeSession instead
// owns ONE SatSolver for all horizon extensions of one II:
//
//  * Horizon activation is an assumption literal S_e per extension level.
//    The at-least-one ("node v is scheduled somewhere in its window")
//    clauses are guarded by ~S_e; solving at extension e assumes S_e, and
//    extending retires the previous selector with a permanent ~S_{e-1}
//    unit. All other constraint families are monotone in the horizon and
//    are appended unguarded.
//  * Extending the horizon appends exactly one new time step per node
//    (ALAP grows by one per horizon step): one new x variable, pairwise
//    at-most-one clauses against the node's existing steps, an x -> y slot
//    link, and the dependency conflict pairs against the neighbouring
//    windows. Learnt clauses, activities and phases all survive.
//  * y[v][slot] is one-directional here (x[v][T] -> y[v][slot], without the
//    reverse implication of TimeFormulation::equiv_or): a spurious true y
//    only tightens the at-most-k constraints and blocking clauses that
//    mention it, and every genuine schedule admits a model with exact y,
//    so soundness and completeness are both preserved while new slot
//    members stay appendable.
//  * Cardinality bounds (capacity per slot, connectivity per node x slot)
//    are re-emitted over the full member list whenever the list outgrows
//    the bound; the superseded encodings remain as valid, weaker
//    constraints.
//  * Space-conflict nogoods (add_label_nogood) and blocked label vectors
//    are clauses over y, so they keep pruning across every later horizon
//    extension of the II — the space phase's failures accumulate into the
//    time phase instead of evaporating on rebuild.
#ifndef MONOMAP_TIMING_TIME_SESSION_HPP
#define MONOMAP_TIMING_TIME_SESSION_HPP

#include <utility>
#include <vector>

#include "arch/cgra.hpp"
#include "encode/cnf_builder.hpp"
#include "ir/dfg.hpp"
#include "sched/asap_alap.hpp"
#include "timing/time_formulation.hpp"

namespace monomap {

class TimeSession {
 public:
  /// Build the base encoding at the critical-path horizon.
  TimeSession(const Dfg& dfg, const CgraArch& arch, int ii,
              TimeConstraintOptions options = TimeConstraintOptions{});

  /// False once the underlying formula is unsatisfiable without any
  /// assumptions — no horizon extension of this II can recover.
  [[nodiscard]] bool ok() const { return ok_; }

  [[nodiscard]] int ii() const { return ii_; }
  [[nodiscard]] int horizon() const { return horizon_; }
  [[nodiscard]] int extension() const {
    return static_cast<int>(selectors_.size()) - 1;
  }

  /// Widen every node's window by one schedule step and activate the next
  /// selector. Returns ok().
  bool extend_horizon();

  /// Solve at the current horizon (assumes the current selector literal).
  /// kUnsat means "no schedule within this horizon" unless unsat_is_final().
  SatStatus solve(const Deadline& deadline);

  /// After solve() returned kUnsat: true when the refutation did not rest
  /// on the horizon selector, i.e. the II itself is exhausted (blocking
  /// clauses / nogoods made the formula unsatisfiable outright).
  [[nodiscard]] bool unsat_is_final() const;

  /// True when the last solve's kUnknown came from the memory governor
  /// tripping rather than the deadline (see SatSolver).
  [[nodiscard]] bool last_solve_memory_out() const {
    return solver_.last_unknown_was_memory();
  }

  /// Extract the schedule from the current model (solve() returned kSat).
  [[nodiscard]] TimeSolution extract() const;

  /// Forbid the label vector of `solution` across all future horizons of
  /// this II. Returns ok().
  bool block_labels(const TimeSolution& solution);

  /// Record a space-conflict nogood: the given (node, slot) placements are
  /// jointly spatially infeasible, so forbid every schedule that realises
  /// all of them. Returns ok().
  bool add_label_nogood(const std::vector<std::pair<NodeId, int>>& placements);

  [[nodiscard]] TimeFormulationStats stats() const;
  /// Learnt clauses currently retained by the session's solver.
  [[nodiscard]] int num_learnts() const;

  /// Re-bias the decision phases toward a space-friendly schedule, with
  /// `salt` rotating the preferred steps so successive re-seeds (one per
  /// space failure) walk structurally different schedule families.
  void reseed_phases(int salt) { seed_space_friendly_phases(salt); }

 private:
  [[nodiscard]] Lit x_lit(NodeId v, int t) const;
  [[nodiscard]] SatVar y_of(NodeId v, int slot) const;
  SatVar y_get_or_create(NodeId v, int slot);

  void append_step(NodeId v, int t);
  void emit_dependency_pairs(NodeId src, NodeId dst, int dist, int ts_lo,
                             int ts_hi, int td_lo, int td_hi);
  void emit_new_dependency_pairs();
  void emit_window_clauses(SatVar selector);
  void refresh_cardinalities();
  void seed_space_friendly_phases(int salt);

  const Dfg& dfg_;
  const CgraArch& arch_;
  int ii_;
  TimeConstraintOptions options_;
  int horizon_;
  std::vector<ScheduleRange> ranges_;
  SatSolver solver_;
  CnfBuilder cnf_;
  std::vector<std::vector<SatVar>> x_;  // per node, indexed by t - asap
  std::vector<SatVar> y_var_;           // v*ii + slot, -1 = absent
  std::vector<SatVar> selectors_;       // one per extension level
  // Member-list sizes at the last at-most-k emission, so each cardinality
  // constraint is re-encoded only when its scope actually grew.
  std::vector<int> cap_emitted_;   // per slot
  std::vector<int> conn_emitted_;  // per v*ii + slot
  bool ok_ = true;
};

}  // namespace monomap

#endif  // MONOMAP_TIMING_TIME_SESSION_HPP
