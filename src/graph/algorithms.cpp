#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace monomap {

EdgePredicate all_edges() {
  return [](const Graph&, EdgeId) { return true; };
}

EdgePredicate edges_with_attr(int attr) {
  return [attr](const Graph& g, EdgeId e) { return g.edge(e).attr == attr; };
}

std::optional<std::vector<NodeId>> topological_sort(
    const Graph& g, const EdgePredicate& include) {
  const int n = g.num_nodes();
  std::vector<int> in_deg(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    for (EdgeId e : g.out_edges(v)) {
      if (include(g, e)) {
        ++in_deg[static_cast<std::size_t>(g.edge(e).dst)];
      }
    }
  }
  std::deque<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    if (in_deg[static_cast<std::size_t>(v)] == 0) {
      ready.push_back(v);
    }
  }
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const NodeId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (EdgeId e : g.out_edges(v)) {
      if (!include(g, e)) continue;
      const NodeId d = g.edge(e).dst;
      if (--in_deg[static_cast<std::size_t>(d)] == 0) {
        ready.push_back(d);
      }
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return std::nullopt;  // cycle in the selected subgraph
  }
  return order;
}

std::vector<int> strongly_connected_components(const Graph& g, int* count) {
  // Iterative Tarjan.
  const int n = g.num_nodes();
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  std::vector<NodeId> stack;
  int next_index = 0;
  int next_comp = 0;

  struct Frame {
    NodeId v;
    std::size_t edge_pos;
  };
  std::vector<Frame> call;

  for (NodeId root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    call.push_back({root, 0});
    while (!call.empty()) {
      Frame& frame = call.back();
      const NodeId v = frame.v;
      if (frame.edge_pos == 0) {
        index[static_cast<std::size_t>(v)] = next_index;
        lowlink[static_cast<std::size_t>(v)] = next_index;
        ++next_index;
        stack.push_back(v);
        on_stack[static_cast<std::size_t>(v)] = true;
      }
      bool descended = false;
      const auto& outs = g.out_edges(v);
      while (frame.edge_pos < outs.size()) {
        const NodeId w = g.edge(outs[frame.edge_pos]).dst;
        ++frame.edge_pos;
        if (index[static_cast<std::size_t>(w)] == -1) {
          call.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[static_cast<std::size_t>(w)]) {
          lowlink[static_cast<std::size_t>(v)] =
              std::min(lowlink[static_cast<std::size_t>(v)],
                       index[static_cast<std::size_t>(w)]);
        }
      }
      if (descended) continue;
      if (lowlink[static_cast<std::size_t>(v)] ==
          index[static_cast<std::size_t>(v)]) {
        for (;;) {
          const NodeId w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          comp[static_cast<std::size_t>(w)] = next_comp;
          if (w == v) break;
        }
        ++next_comp;
      }
      call.pop_back();
      if (!call.empty()) {
        const NodeId parent = call.back().v;
        lowlink[static_cast<std::size_t>(parent)] =
            std::min(lowlink[static_cast<std::size_t>(parent)],
                     lowlink[static_cast<std::size_t>(v)]);
      }
    }
  }
  if (count != nullptr) {
    *count = next_comp;
  }
  return comp;
}

std::vector<int> longest_path_from_sources(const Graph& g,
                                           const EdgePredicate& include) {
  const auto order = topological_sort(g, include);
  MONOMAP_ASSERT_MSG(order.has_value(),
                     "longest_path_from_sources requires an acyclic subgraph");
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId v : *order) {
    for (EdgeId e : g.out_edges(v)) {
      if (!include(g, e)) continue;
      const NodeId d = g.edge(e).dst;
      dist[static_cast<std::size_t>(d)] =
          std::max(dist[static_cast<std::size_t>(d)],
                   dist[static_cast<std::size_t>(v)] + 1);
    }
  }
  return dist;
}

namespace {

/// Johnson's circuit-enumeration state.
class JohnsonState {
 public:
  JohnsonState(const Graph& g, std::size_t max_cycles)
      : g_(g),
        max_cycles_(max_cycles),
        blocked_(static_cast<std::size_t>(g.num_nodes()), false),
        block_map_(static_cast<std::size_t>(g.num_nodes())) {}

  std::vector<std::vector<NodeId>> run() {
    const int n = g_.num_nodes();
    for (NodeId s = 0; s < n && cycles_.size() < max_cycles_; ++s) {
      start_ = s;
      std::fill(blocked_.begin(), blocked_.end(), false);
      for (auto& bm : block_map_) bm.clear();
      circuit(s);
    }
    return std::move(cycles_);
  }

 private:
  bool circuit(NodeId v) {
    bool found = false;
    path_.push_back(v);
    blocked_[static_cast<std::size_t>(v)] = true;
    for (EdgeId e : g_.out_edges(v)) {
      const NodeId w = g_.edge(e).dst;
      if (w < start_) continue;  // only consider nodes >= start (canonical)
      if (w == start_) {
        cycles_.push_back(path_);
        found = true;
        if (cycles_.size() >= max_cycles_) break;
      } else if (!blocked_[static_cast<std::size_t>(w)]) {
        if (circuit(w)) {
          found = true;
        }
        if (cycles_.size() >= max_cycles_) break;
      }
    }
    if (found) {
      unblock(v);
    } else {
      for (EdgeId e : g_.out_edges(v)) {
        const NodeId w = g_.edge(e).dst;
        if (w < start_) continue;
        auto& bm = block_map_[static_cast<std::size_t>(w)];
        if (std::find(bm.begin(), bm.end(), v) == bm.end()) {
          bm.push_back(v);
        }
      }
    }
    path_.pop_back();
    return found;
  }

  void unblock(NodeId v) {
    blocked_[static_cast<std::size_t>(v)] = false;
    auto& bm = block_map_[static_cast<std::size_t>(v)];
    while (!bm.empty()) {
      const NodeId w = bm.back();
      bm.pop_back();
      if (blocked_[static_cast<std::size_t>(w)]) {
        unblock(w);
      }
    }
  }

  const Graph& g_;
  std::size_t max_cycles_;
  NodeId start_ = 0;
  std::vector<bool> blocked_;
  std::vector<std::vector<NodeId>> block_map_;
  std::vector<NodeId> path_;
  std::vector<std::vector<NodeId>> cycles_;
};

}  // namespace

std::vector<std::vector<NodeId>> elementary_cycles(const Graph& g,
                                                   std::size_t max_cycles) {
  return JohnsonState(g, max_cycles).run();
}

bool ii_feasible(const Graph& g, int ii) {
  MONOMAP_ASSERT(ii >= 1);
  // Difference constraints T_dst >= T_src + (1 - ii*dist). A solution exists
  // iff there is no positive-weight cycle. Run Bellman-Ford longest-path
  // relaxation from a virtual source connected to every node with weight 0.
  const int n = g.num_nodes();
  if (n == 0) return true;
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n), 0);
  for (int round = 0; round < n; ++round) {
    bool changed = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& edge = g.edge(e);
      const std::int64_t w =
          1 - static_cast<std::int64_t>(ii) * edge.attr;
      const std::int64_t candidate = dist[static_cast<std::size_t>(edge.src)] + w;
      if (candidate > dist[static_cast<std::size_t>(edge.dst)]) {
        dist[static_cast<std::size_t>(edge.dst)] = candidate;
        changed = true;
      }
    }
    if (!changed) return true;
  }
  return false;  // still relaxing after n rounds => positive cycle
}

int recurrence_mii(const Graph& g) {
  // A cycle with total distance d and length l forces ii >= ceil(l/d).
  // l <= num_nodes, d >= 1, so RecII <= num_nodes; linear scan is fine at
  // DFG scale and avoids corner cases of binary search on a non-monotone
  // predicate (ii_feasible *is* monotone, so the first feasible ii is it).
  for (int ii = 1; ii <= std::max(1, g.num_nodes()); ++ii) {
    if (ii_feasible(g, ii)) {
      return ii;
    }
  }
  MONOMAP_ASSERT_MSG(false, "graph has a zero-distance cycle: no feasible II");
  return -1;
}

std::vector<int> undirected_components(const Graph& g, int* count) {
  const int n = g.num_nodes();
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  int next = 0;
  std::vector<NodeId> queue;
  for (NodeId s = 0; s < n; ++s) {
    if (comp[static_cast<std::size_t>(s)] != -1) continue;
    comp[static_cast<std::size_t>(s)] = next;
    queue.assign(1, s);
    while (!queue.empty()) {
      const NodeId v = queue.back();
      queue.pop_back();
      for (const NodeId w : g.undirected_neighbors(v)) {
        if (comp[static_cast<std::size_t>(w)] == -1) {
          comp[static_cast<std::size_t>(w)] = next;
          queue.push_back(w);
        }
      }
    }
    ++next;
  }
  if (count != nullptr) *count = next;
  return comp;
}

std::vector<NodeId> undirected_bfs_order(const Graph& g, NodeId start) {
  MONOMAP_ASSERT(g.has_node(start));
  std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
  std::deque<NodeId> queue{start};
  seen[static_cast<std::size_t>(start)] = true;
  std::vector<NodeId> order;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    order.push_back(v);
    for (const NodeId w : g.undirected_neighbors(v)) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        queue.push_back(w);
      }
    }
  }
  return order;
}

}  // namespace monomap
