// Graphviz DOT export for debugging and documentation figures.
#ifndef MONOMAP_GRAPH_DOT_HPP
#define MONOMAP_GRAPH_DOT_HPP

#include <functional>
#include <string>

#include "graph/graph.hpp"

namespace monomap {

/// Render `g` as a DOT digraph. `node_label` supplies per-node labels
/// (defaults to the node id); edges with non-zero attribute are drawn red and
/// annotated with the attribute, matching the paper's Fig. 2a convention for
/// loop-carried dependencies.
std::string to_dot(const Graph& g, const std::string& name = "G",
                   const std::function<std::string(NodeId)>& node_label = {});

}  // namespace monomap

#endif  // MONOMAP_GRAPH_DOT_HPP
