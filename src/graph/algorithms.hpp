// Graph algorithms used by the scheduling front end and the mappers.
#ifndef MONOMAP_GRAPH_ALGORITHMS_HPP
#define MONOMAP_GRAPH_ALGORITHMS_HPP

#include <functional>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace monomap {

/// Predicate selecting which edges an algorithm traverses. The scheduling
/// front end uses it to restrict to intra-iteration (distance 0) edges.
using EdgePredicate = std::function<bool(const Graph&, EdgeId)>;

/// Predicate accepting every edge.
EdgePredicate all_edges();

/// Predicate accepting edges whose attribute equals `attr` (DFG: distance 0
/// edges form the acyclic intra-iteration dependence DAG).
EdgePredicate edges_with_attr(int attr);

/// Kahn topological order over the selected edges. Returns std::nullopt if
/// the selected subgraph has a cycle.
std::optional<std::vector<NodeId>> topological_sort(
    const Graph& g, const EdgePredicate& include = all_edges());

/// Tarjan strongly connected components (iterative). Returns one component
/// id per node, components numbered in reverse topological order; the number
/// of components is written to *count if non-null.
std::vector<int> strongly_connected_components(const Graph& g,
                                               int* count = nullptr);

/// Longest path length (in edges) from any source, over selected edges,
/// which must form a DAG. Result[v] = length of the longest selected path
/// ending at v. Throws AssertionError if the selected subgraph is cyclic.
std::vector<int> longest_path_from_sources(const Graph& g,
                                           const EdgePredicate& include);

/// All elementary cycles (Johnson's algorithm), as node sequences. Intended
/// for DFG-sized graphs; enumeration stops after `max_cycles`.
std::vector<std::vector<NodeId>> elementary_cycles(const Graph& g,
                                                   std::size_t max_cycles = 100000);

/// True iff the difference-constraint system {T_dst - T_src >= 1 - ii*attr(e)}
/// derived from the graph's edges admits a solution, i.e. no positive-weight
/// cycle exists (Bellman-Ford). This is exactly "ii >= RecII".
bool ii_feasible(const Graph& g, int ii);

/// Smallest ii such that ii_feasible(g, ii); 1 for acyclic graphs.
/// This is the paper's RecII (max over cycles of ceil(length/distance)).
int recurrence_mii(const Graph& g);

/// Undirected connected components: one id per node plus component count.
std::vector<int> undirected_components(const Graph& g, int* count = nullptr);

/// BFS order over the undirected graph starting from `start`, visiting only
/// the component of `start`.
std::vector<NodeId> undirected_bfs_order(const Graph& g, NodeId start);

}  // namespace monomap

#endif  // MONOMAP_GRAPH_ALGORITHMS_HPP
