#include "graph/dot.hpp"

#include <sstream>

namespace monomap {

std::string to_dot(const Graph& g, const std::string& name,
                   const std::function<std::string(NodeId)>& node_label) {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v << " [label=\"";
    if (node_label) {
      os << node_label(v);
    } else {
      os << v;
    }
    os << "\"];\n";
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    os << "  n" << edge.src << " -> n" << edge.dst;
    if (edge.attr != 0) {
      os << " [color=red, label=\"" << edge.attr << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace monomap
