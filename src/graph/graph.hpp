// Directed multigraph with integer edge attributes.
//
// This is the shared graph substrate: DFGs store the loop-carried dependency
// distance in the edge attribute, the MRRG and other derived graphs use it as
// a plain tag. Nodes and edges are dense integer ids, which keeps every
// algorithm allocation-light and cache-friendly.
#ifndef MONOMAP_GRAPH_GRAPH_HPP
#define MONOMAP_GRAPH_GRAPH_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "support/assert.hpp"

namespace monomap {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// A directed edge; `attr` is caller-defined (DFG: loop-carried distance).
struct Edge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int attr = 0;
};

/// Directed multigraph with O(1) id-based access and per-node in/out
/// adjacency. Self-edges and parallel edges are allowed (DFGs need both:
/// accumulators are self-edges with distance >= 1).
class Graph {
 public:
  Graph() = default;

  /// Create a graph with `n` isolated nodes.
  explicit Graph(int n) { add_nodes(n); }

  NodeId add_node() {
    out_.emplace_back();
    in_.emplace_back();
    return static_cast<NodeId>(out_.size() - 1);
  }

  void add_nodes(int count) {
    MONOMAP_ASSERT(count >= 0);
    for (int i = 0; i < count; ++i) {
      add_node();
    }
  }

  EdgeId add_edge(NodeId src, NodeId dst, int attr = 0) {
    MONOMAP_ASSERT(has_node(src) && has_node(dst));
    const auto id = static_cast<EdgeId>(edges_.size());
    edges_.push_back(Edge{src, dst, attr});
    out_[static_cast<std::size_t>(src)].push_back(id);
    in_[static_cast<std::size_t>(dst)].push_back(id);
    return id;
  }

  [[nodiscard]] int num_nodes() const { return static_cast<int>(out_.size()); }
  [[nodiscard]] int num_edges() const { return static_cast<int>(edges_.size()); }

  [[nodiscard]] bool has_node(NodeId v) const {
    return v >= 0 && v < num_nodes();
  }
  [[nodiscard]] bool has_edge(EdgeId e) const {
    return e >= 0 && e < num_edges();
  }

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    MONOMAP_ASSERT(has_edge(e));
    return edges_[static_cast<std::size_t>(e)];
  }

  [[nodiscard]] const std::vector<EdgeId>& out_edges(NodeId v) const {
    MONOMAP_ASSERT(has_node(v));
    return out_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] const std::vector<EdgeId>& in_edges(NodeId v) const {
    MONOMAP_ASSERT(has_node(v));
    return in_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] int out_degree(NodeId v) const {
    return static_cast<int>(out_edges(v).size());
  }
  [[nodiscard]] int in_degree(NodeId v) const {
    return static_cast<int>(in_edges(v).size());
  }

  /// Total degree in the *undirected* sense; a self-edge counts once.
  [[nodiscard]] int undirected_degree(NodeId v) const;

  /// Distinct undirected neighbours of `v`, excluding `v` itself,
  /// deduplicated and sorted.
  [[nodiscard]] std::vector<NodeId> undirected_neighbors(NodeId v) const;

  /// True if some edge (in either direction, any attribute) links u and v.
  [[nodiscard]] bool are_adjacent(NodeId u, NodeId v) const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace monomap

#endif  // MONOMAP_GRAPH_GRAPH_HPP
