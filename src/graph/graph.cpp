#include "graph/graph.hpp"

#include <algorithm>

namespace monomap {

int Graph::undirected_degree(NodeId v) const {
  int self_edges = 0;
  for (EdgeId e : out_edges(v)) {
    if (edge(e).dst == v) {
      ++self_edges;
    }
  }
  return out_degree(v) + in_degree(v) - self_edges;
}

std::vector<NodeId> Graph::undirected_neighbors(NodeId v) const {
  std::vector<NodeId> result;
  result.reserve(static_cast<std::size_t>(out_degree(v) + in_degree(v)));
  for (EdgeId e : out_edges(v)) {
    if (edge(e).dst != v) {
      result.push_back(edge(e).dst);
    }
  }
  for (EdgeId e : in_edges(v)) {
    if (edge(e).src != v) {
      result.push_back(edge(e).src);
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

bool Graph::are_adjacent(NodeId u, NodeId v) const {
  for (EdgeId e : out_edges(u)) {
    if (edge(e).dst == v) return true;
  }
  for (EdgeId e : in_edges(u)) {
    if (edge(e).src == v) return true;
  }
  return false;
}

}  // namespace monomap
