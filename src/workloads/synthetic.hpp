// Synthetic DFG generators for property tests and micro-benchmarks.
#ifndef MONOMAP_WORKLOADS_SYNTHETIC_HPP
#define MONOMAP_WORKLOADS_SYNTHETIC_HPP

#include <cstdint>
#include <vector>

#include "arch/cgra.hpp"
#include "ir/dfg.hpp"

namespace monomap {

struct SyntheticSpec {
  int num_nodes = 20;
  /// Probability of an extra edge to a random earlier node (beyond the one
  /// that keeps the graph connected).
  double extra_edge_prob = 0.3;
  /// Number of distance-1 back edges closing recurrence cycles.
  int num_recurrences = 1;
  /// Cap on undirected node degree (mirrors bounded operand/fan-out counts
  /// of real DFGs; also keeps connectivity constraints satisfiable).
  int max_degree = 4;
  std::uint64_t seed = 1;
};

/// A random connected DFG: every node links to an earlier node, extra edges
/// and a few distance-1 back edges are sprinkled subject to max_degree.
Dfg random_dfg(const SyntheticSpec& spec);

/// A layered DAG ("pipeline" shape): `layers` layers of `width` nodes, each
/// node feeding 1-2 nodes of the next layer, plus one recurrence.
Dfg layered_dfg(int layers, int width, std::uint64_t seed);

/// Parameters for placeable_grid_dfg.
struct PlaceableGridSpec {
  int rows = 8;
  int cols = 8;
  /// Initiation interval the wave labels are computed against.
  int ii = 2;
  /// Probability of keeping each optional vertical mesh edge beyond the
  /// connected spanning skeleton (1.0 = the full mesh patch).
  double edge_keep = 0.8;
  std::uint64_t seed = 1;
};

/// A satisfiable-by-construction *placement* instance: a rows x cols mesh
/// patch of DFG nodes whose edges all connect grid-adjacent positions, with
/// diagonal-wave slot labels label(r, c) = (r + c) % ii written to
/// `labels_out` (required, sized to the node count). Placing node (r, c) on
/// PE (r, c) of any CGRA at least rows x cols is always a monomorphism —
/// the map is injective (mono1 holds for any labels) and every edge lands
/// on a grid link (mono3) — so the space search must *find* a placement
/// rather than refute one, which is what makes these the large-grid
/// placement-throughput benchmark cases (the layered instances measure
/// refutation throughput instead). The search, of course, does not know
/// the witness: it still has to discover some embedding of an
/// irregularly-thinned patch (edge_keep) into the full fabric.
/// The one loop-carried recurrence also joins grid-adjacent nodes, keeping
/// the witness valid.
Dfg placeable_grid_dfg(const PlaceableGridSpec& spec,
                       std::vector<int>* labels_out);

/// A spec sized against `arch`: a patch of ~3/5 the fabric's linear extent
/// (large enough that domains span many cache-line tiles, small enough to
/// leave placement slack), with the II raised until the wave labelling's
/// densest same-label 2-hop cluster fits the architecture's interior
/// distance-2 ball (CgraArch::distance2_ball_max) — the capacity argument
/// that keeps the instance from drowning in implied distance-2 conflicts.
PlaceableGridSpec placeable_spec_for(const CgraArch& arch, int ii,
                                     std::uint64_t seed);

}  // namespace monomap

#endif  // MONOMAP_WORKLOADS_SYNTHETIC_HPP
