// Synthetic DFG generators for property tests and micro-benchmarks.
#ifndef MONOMAP_WORKLOADS_SYNTHETIC_HPP
#define MONOMAP_WORKLOADS_SYNTHETIC_HPP

#include <cstdint>

#include "ir/dfg.hpp"

namespace monomap {

struct SyntheticSpec {
  int num_nodes = 20;
  /// Probability of an extra edge to a random earlier node (beyond the one
  /// that keeps the graph connected).
  double extra_edge_prob = 0.3;
  /// Number of distance-1 back edges closing recurrence cycles.
  int num_recurrences = 1;
  /// Cap on undirected node degree (mirrors bounded operand/fan-out counts
  /// of real DFGs; also keeps connectivity constraints satisfiable).
  int max_degree = 4;
  std::uint64_t seed = 1;
};

/// A random connected DFG: every node links to an earlier node, extra edges
/// and a few distance-1 back edges are sprinkled subject to max_degree.
Dfg random_dfg(const SyntheticSpec& spec);

/// A layered DAG ("pipeline" shape): `layers` layers of `width` nodes, each
/// node feeding 1-2 nodes of the next layer, plus one recurrence.
Dfg layered_dfg(int layers, int width, std::uint64_t seed);

}  // namespace monomap

#endif  // MONOMAP_WORKLOADS_SYNTHETIC_HPP
