#include "workloads/suite.hpp"

#include "support/assert.hpp"

namespace monomap {
namespace {

// Shorthand used throughout: every kernel is written as straight-line IR in
// SSA style; recurrence cycles are closed by building the phi first with a
// placeholder operand and patching in the carried reference once the cycle's
// tail exists. Node-count comments track the running instruction count.

constexpr std::int64_t kAccMask = (1LL << 28) - 1;

/// aes — MiBench security. AddRoundKey + S-box + double xtime (MixColumns
/// GF(2^8) doubling) + rotate feeding the next state: a 14-op recurrence,
/// the longest in the suite. 23 nodes, RecII 14.
LoopKernel make_aes() {
  LoopKernel k("aes");
  const auto i = k.index("i");                                    // 1
  const auto pt = k.load(0, ref(i), "pt");                        // 2
  const auto key = k.load(1, ref(i), "key");                      // 3
  const auto tk = k.binary(Opcode::kXor, ref(pt), ref(key), "tk");  // 4
  const auto st = k.phi(carried(0), "state");                     // 5 (patched)
  const auto x0 = k.binary(Opcode::kXor, ref(st), ref(tk), "x0");   // 6
  const auto sa = k.binary_imm(Opcode::kAnd, ref(x0), 255, "sa");   // 7
  const auto sb = k.load(2, ref(sa), "sbox");                     // 8
  const auto d1a = k.binary_imm(Opcode::kShl, ref(sb), 1, "d1a");   // 9
  const auto d1b = k.binary_imm(Opcode::kAshr, ref(sb), 7, "d1b");  // 10
  const auto d1c = k.binary_imm(Opcode::kAnd, ref(d1b), 0x1B, "d1c");  // 11
  const auto d1 = k.binary(Opcode::kXor, ref(d1a), ref(d1c), "d1");    // 12
  const auto d2a = k.binary_imm(Opcode::kShl, ref(d1), 1, "d2a");      // 13
  const auto d2b = k.binary_imm(Opcode::kAshr, ref(d1), 7, "d2b");     // 14
  const auto d2c = k.binary_imm(Opcode::kAnd, ref(d2b), 0x1B, "d2c");  // 15
  const auto d2 = k.binary(Opcode::kXor, ref(d2a), ref(d2c), "d2");    // 16
  const auto mx = k.binary(Opcode::kXor, ref(d2), ref(sb), "mix");     // 17
  const auto k2 = k.binary(Opcode::kXor, ref(mx), ref(x0), "k2");      // 18
  const auto rl = k.binary_imm(Opcode::kShl, ref(k2), 3, "rl");        // 19
  const auto nst = k.binary_imm(Opcode::kAnd, ref(rl), 255, "nst");    // 20
  k.set_operand(st, 0, carried(nst));
  k.store(3, ref(i), ref(nst), "ct");                             // 21
  const auto hi = k.binary_imm(Opcode::kShr, ref(k2), 4, "hi");   // 22
  k.store(4, ref(i), ref(hi), "ct_hi");                           // 23
  return k;
}

/// backprop — Rodinia. Two weight-update lanes with 5-op clamped momentum
/// recurrences, hidden-error accumulation, bias update. 34 nodes, RecII 5.
LoopKernel make_backprop() {
  LoopKernel k("backprop");
  const auto i = k.index("i");                                     // 1
  const auto x = k.load(0, ref(i), "x");                           // 2
  const auto d = k.load(1, ref(i), "delta");                       // 3
  const auto g = k.binary(Opcode::kMul, ref(x), ref(d), "grad");   // 4
  const auto gs = k.binary_imm(Opcode::kAshr, ref(g), 8, "gs");    // 5
  const auto pm = k.phi(carried(0), "mom");                        // 6
  const auto mm = k.binary_imm(Opcode::kMul, ref(pm), 29, "mm");   // 7
  const auto msh = k.binary_imm(Opcode::kAshr, ref(mm), 5, "msh"); // 8
  const auto ma = k.binary(Opcode::kAdd, ref(msh), ref(gs), "ma"); // 9
  const auto mc = k.binary_imm(Opcode::kMin, ref(ma), 1 << 20, "mc");  // 10
  k.set_operand(pm, 0, carried(mc));
  const auto pw = k.phi(carried(0), "w");                          // 11
  const auto wn = k.binary(Opcode::kAdd, ref(pw), ref(mc), "wn");  // 12
  k.set_operand(pw, 0, carried(wn));
  k.store(2, ref(i), ref(wn), "w_out");                            // 13
  const auto xb = k.load(3, ref(i), "xb");                         // 14
  const auto gb = k.binary(Opcode::kMul, ref(xb), ref(d), "gb");   // 15
  const auto gbs = k.binary_imm(Opcode::kAshr, ref(gb), 8, "gbs"); // 16
  const auto pmb = k.phi(carried(0), "momb");                      // 17
  const auto mmb = k.binary_imm(Opcode::kMul, ref(pmb), 29, "mmb");  // 18
  const auto mshb = k.binary_imm(Opcode::kAshr, ref(mmb), 5, "mshb");  // 19
  const auto mab = k.binary(Opcode::kAdd, ref(mshb), ref(gbs), "mab"); // 20
  const auto mcb = k.binary_imm(Opcode::kMin, ref(mab), 1 << 20, "mcb");  // 21
  k.set_operand(pmb, 0, carried(mcb));
  const auto pwb = k.phi(carried(0), "wb");                        // 22
  const auto wnb = k.binary(Opcode::kAdd, ref(pwb), ref(mcb), "wnb");  // 23
  k.set_operand(pwb, 0, carried(wnb));
  k.store(4, ref(i), ref(wnb), "wb_out");                          // 24
  const auto e1 = k.binary(Opcode::kMul, ref(wn), ref(d), "e1");   // 25
  const auto e2 = k.binary(Opcode::kMul, ref(wnb), ref(d), "e2");  // 26
  const auto es = k.binary(Opcode::kAdd, ref(e1), ref(e2), "es");  // 27
  const auto pe = k.phi(carried(0), "err");                        // 28
  const auto en = k.binary(Opcode::kAdd, ref(pe), ref(es), "en");  // 29
  k.set_operand(pe, 0, carried(en));
  const auto sc = k.binary_imm(Opcode::kAnd, ref(en), 0xFFFF, "sc");  // 30
  k.store(5, ref(i), ref(sc), "err_out");                          // 31
  const auto bias = k.load(6, ref(i), "bias");                     // 32
  const auto bn = k.binary(Opcode::kAdd, ref(bias), ref(gs), "bn");  // 33
  k.store(7, ref(i), ref(bn), "bias_out");                         // 34
  return k;
}

/// basicmath — MiBench. Newton cube-root step x' = clamp((2x + a/x^2)/3)
/// with a 7-op guarded recurrence plus residual and coefficient streams.
/// 21 nodes, RecII 7.
LoopKernel make_basicmath() {
  LoopKernel k("basicmath");
  const auto i = k.index("i");                                     // 1
  const auto a = k.load(0, ref(i), "a");                           // 2
  const auto px = k.phi(carried(0), "x");                          // 3
  const auto x2 = k.binary(Opcode::kMul, ref(px), ref(px), "x2");  // 4
  const auto q = k.binary(Opcode::kDiv, ref(a), ref(x2), "q");     // 5
  const auto tx = k.binary_imm(Opcode::kMul, ref(px), 2, "tx");    // 6
  const auto s = k.binary(Opcode::kAdd, ref(tx), ref(q), "s");     // 7
  const auto xn = k.binary_imm(Opcode::kDiv, ref(s), 3, "xn");     // 8
  const auto gmax = k.binary_imm(Opcode::kMax, ref(xn), 1, "g");   // 9
  const auto xc = k.binary_imm(Opcode::kMin, ref(gmax), 1 << 30, "xc");  // 10
  k.set_operand(px, 0, carried(xc));
  k.store(1, ref(i), ref(xc), "x_out");                            // 11
  const auto er = k.binary(Opcode::kSub, ref(x2), ref(a), "er");   // 12
  const auto ea = k.unary(Opcode::kAbs, ref(er), "ea");            // 13
  k.store(2, ref(i), ref(ea), "err_out");                          // 14
  const auto b = k.load(3, ref(i), "b");                           // 15
  const auto t1 = k.binary_imm(Opcode::kMul, ref(b), 3, "t1");     // 16
  const auto t2 = k.binary(Opcode::kAdd, ref(t1), ref(ea), "t2");  // 17
  const auto t3 = k.binary_imm(Opcode::kAshr, ref(t2), 2, "t3");   // 18
  k.store(4, ref(i), ref(t3), "t_out");                            // 19
  const auto t4 = k.binary_imm(Opcode::kAnd, ref(t3), 0xFFFF, "t4");  // 20
  k.store(5, ref(i), ref(t4), "t4_out");                           // 21
  return k;
}

/// bitcount — MiBench. Kernighan clear-lowest-bit step; the LLVM-style
/// phi -> dec -> and cycle gives RecII 3. 7 nodes.
LoopKernel make_bitcount() {
  LoopKernel k("bitcount");
  const auto px = k.phi(carried(0), "x");                          // 1
  const auto dec = k.binary_imm(Opcode::kSub, ref(px), 1, "dec");  // 2
  const auto an = k.binary(Opcode::kAnd, ref(px), ref(dec), "an"); // 3
  k.set_operand(px, 0, carried(an));
  k.set_init(px, 0x5F5F5F5F);
  const auto nz = k.binary_imm(Opcode::kCmpNe, ref(an), 0, "nz");  // 4
  const auto acc = k.binary(Opcode::kAdd, carried(0), ref(nz), "acc");  // 5
  k.set_operand(acc, 0, carried(acc));
  const auto i = k.index("i");                                     // 6
  k.store(0, ref(i), ref(acc), "cnt_out");                         // 7
  return k;
}

/// cfd — Rodinia. Euler flux kernel: density/momentum/energy loads over
/// three strength-reduced address streams, five flux accumulators. The
/// widest shallow DFG of the suite. 51 nodes, RecII 2.
LoopKernel make_cfd() {
  LoopKernel k("cfd");
  const auto apA = k.phi(carried(0), "ptrA");                      // 1
  const auto aiA = k.binary_imm(Opcode::kAdd, ref(apA), 1, "incA");  // 2
  k.set_operand(apA, 0, carried(aiA));
  const auto r = k.load(0, ref(apA), "rho");                       // 3
  const auto mx = k.load(1, ref(apA), "momx");                     // 4
  const auto my = k.load(2, ref(apA), "momy");                     // 5
  const auto mz = k.load(3, ref(apA), "momz");                     // 6
  const auto apB = k.phi(carried(0), "ptrB");                      // 7
  const auto aiB = k.binary_imm(Opcode::kAdd, ref(apB), 1, "incB");  // 8
  k.set_operand(apB, 0, carried(aiB));
  const auto e = k.load(4, ref(apB), "energy");                    // 9
  const auto p = k.load(5, ref(apB), "press");                     // 10
  const auto nx = k.load(6, ref(apB), "nx");                       // 11
  const auto ny = k.load(7, ref(apB), "ny");                       // 12
  const auto apC = k.phi(carried(0), "ptrC");                      // 13
  const auto aiC = k.binary_imm(Opcode::kAdd, ref(apC), 1, "incC");  // 14
  k.set_operand(apC, 0, carried(aiC));
  const auto nz = k.load(8, ref(apC), "nz");                       // 15
  const auto v = k.load(9, ref(apC), "vel");                       // 16
  const auto fx = k.binary(Opcode::kMul, ref(mx), ref(nx), "fx");  // 17
  const auto fy = k.binary(Opcode::kMul, ref(my), ref(ny), "fy");  // 18
  const auto fz = k.binary(Opcode::kMul, ref(mz), ref(nz), "fz");  // 19
  const auto s1 = k.binary(Opcode::kAdd, ref(fx), ref(fy), "s1");  // 20
  const auto fl = k.binary(Opcode::kAdd, ref(s1), ref(fz), "fl");  // 21
  const auto flr = k.binary(Opcode::kMul, ref(fl), ref(r), "flr"); // 22
  const auto pr = k.binary(Opcode::kMul, ref(p), ref(nx), "pr");   // 23
  const auto mv = k.binary(Opcode::kMul, ref(mx), ref(v), "mv");   // 24
  const auto fmx = k.binary(Opcode::kAdd, ref(mv), ref(pr), "fmx");  // 25
  const auto pr2 = k.binary(Opcode::kMul, ref(p), ref(ny), "pr2"); // 26
  const auto mv2 = k.binary(Opcode::kMul, ref(my), ref(v), "mv2"); // 27
  const auto fmy = k.binary(Opcode::kAdd, ref(mv2), ref(pr2), "fmy");  // 28
  const auto pr3 = k.binary(Opcode::kMul, ref(p), ref(nz), "pr3"); // 29
  const auto mv3 = k.binary(Opcode::kMul, ref(mz), ref(v), "mv3"); // 30
  const auto fmz = k.binary(Opcode::kAdd, ref(mv3), ref(pr3), "fmz");  // 31
  const auto ev = k.binary(Opcode::kMul, ref(e), ref(v), "ev");    // 32
  const auto pv = k.binary(Opcode::kMul, ref(p), ref(v), "pv");    // 33
  const auto fe = k.binary(Opcode::kAdd, ref(ev), ref(pv), "fe");  // 34
  InstrId accs[5];
  const InstrId feeders[5] = {flr, fmx, fmy, fmz, fe};
  for (int lane = 0; lane < 5; ++lane) {                           // 35..44
    const auto ph = k.phi(carried(0), "facc" + std::to_string(lane));
    const auto ad = k.binary(Opcode::kAdd, ref(ph), ref(feeders[lane]),
                             "fsum" + std::to_string(lane));
    k.set_operand(ph, 0, carried(ad));
    accs[lane] = ad;
  }
  k.store(10, ref(apA), ref(accs[0]), "out_fl");                   // 45
  k.store(11, ref(apB), ref(accs[1]), "out_fmx");                  // 46
  k.store(12, ref(apC), ref(accs[2]), "out_fmy");                  // 47
  k.store(13, ref(apA), ref(accs[3]), "out_fmz");                  // 48
  k.store(14, ref(apB), ref(accs[4]), "out_fe");                   // 49
  const auto sm = k.binary(Opcode::kAdd, ref(fl), ref(fe), "sm");  // 50
  k.store(15, ref(apC), ref(sm), "out_sm");                        // 51
  return k;
}

/// crc32 — MiBench. Two chained table-lookup byte steps per iteration:
/// crc' = (crc1 >> 8) ^ T[crc1 & FF] with crc1 = (crc >> 8) ^ T[(crc^b)&FF].
/// The serial double-update is an 8-op recurrence. 24 nodes, RecII 8.
LoopKernel make_crc32() {
  LoopKernel k("crc32");
  const auto ap = k.phi(carried(0), "ptr");                        // 1
  const auto ai = k.binary_imm(Opcode::kAdd, ref(ap), 1, "inc");   // 2
  k.set_operand(ap, 0, carried(ai));
  const auto by = k.load(0, ref(ap), "byte");                      // 3
  const auto pc = k.phi(carried(0), "crc");                        // 4
  const auto x1 = k.binary(Opcode::kXor, ref(pc), ref(by), "x1");  // 5
  const auto x2 = k.binary_imm(Opcode::kAnd, ref(x1), 255, "x2");  // 6
  const auto t1 = k.load(1, ref(x2), "tab1");                      // 7
  const auto s1 = k.binary_imm(Opcode::kShr, ref(pc), 8, "s1");    // 8
  const auto c1 = k.binary(Opcode::kXor, ref(s1), ref(t1), "c1");  // 9
  const auto x3 = k.binary_imm(Opcode::kAnd, ref(c1), 255, "x3");  // 10
  const auto t2 = k.load(1, ref(x3), "tab2");                      // 11
  const auto s2 = k.binary_imm(Opcode::kShr, ref(c1), 8, "s2");    // 12
  const auto c2 = k.binary(Opcode::kXor, ref(s2), ref(t2), "c2");  // 13
  k.set_operand(pc, 0, carried(c2));
  const auto ob = k.binary_imm(Opcode::kAnd, ref(c2), 0xFFFF, "ob");  // 14
  k.store(2, ref(ap), ref(ob), "crc_out");                         // 15
  const auto by2 = k.load(3, ref(ap), "byte2");                    // 16
  const auto x5 = k.binary(Opcode::kXor, ref(by2), ref(c2), "x5"); // 17
  const auto x6 = k.binary_imm(Opcode::kAnd, ref(x5), 255, "x6");  // 18
  const auto t3 = k.load(1, ref(x6), "tab3");                      // 19
  const auto acc = k.binary(Opcode::kAdd, carried(0), ref(t3), "acc");  // 20
  k.set_operand(acc, 0, carried(acc));
  k.store(4, ref(ap), ref(acc), "acc_out");                        // 21
  const auto hi = k.binary_imm(Opcode::kShr, ref(c2), 16, "hi");   // 22
  const auto hx = k.binary_imm(Opcode::kAnd, ref(hi), 255, "hx");  // 23
  k.store(5, ref(ap), ref(hx), "hi_out");                          // 24
  return k;
}

/// fft — MiBench. Butterfly with a 7-op fixed-point twiddle recurrence
/// (wr' = wr*c - (wr*c)*wr*s style chain). 20 nodes, RecII 7.
LoopKernel make_fft() {
  LoopKernel k("fft");
  const auto ap = k.phi(carried(0), "ptr");                        // 1
  const auto ai = k.binary_imm(Opcode::kAdd, ref(ap), 2, "inc");   // 2
  k.set_operand(ap, 0, carried(ai));
  const auto xr = k.load(0, ref(ap), "xr");                        // 3
  const auto xi = k.load(1, ref(ap), "xi");                        // 4
  const auto pw = k.phi(carried(0), "w");                          // 5
  const auto m1 = k.binary_imm(Opcode::kMul, ref(pw), 31, "m1");   // 6
  const auto sh1 = k.binary_imm(Opcode::kAshr, ref(m1), 5, "sh1"); // 7
  const auto m2 = k.binary(Opcode::kMul, ref(sh1), ref(pw), "m2"); // 8
  const auto sh2 = k.binary_imm(Opcode::kAshr, ref(m2), 7, "sh2"); // 9
  const auto dd = k.binary(Opcode::kSub, ref(sh1), ref(sh2), "dd");  // 10
  const auto wn = k.binary_imm(Opcode::kMax, ref(dd), -(1 << 20), "wn");  // 11
  k.set_operand(pw, 0, carried(wn));
  k.set_init(pw, 1 << 10);
  const auto tr = k.binary(Opcode::kMul, ref(xr), ref(wn), "tr");  // 12
  const auto ti = k.binary(Opcode::kMul, ref(xi), ref(wn), "ti");  // 13
  const auto yr = k.binary(Opcode::kAdd, ref(tr), ref(xi), "yr");  // 14
  const auto yi = k.binary(Opcode::kSub, ref(ti), ref(xr), "yi");  // 15
  k.store(2, ref(ap), ref(yr), "yr_out");                          // 16
  k.store(3, ref(ap), ref(yi), "yi_out");                          // 17
  const auto er = k.binary(Opcode::kSub, ref(yr), ref(yi), "er");  // 18
  const auto ea = k.unary(Opcode::kAbs, ref(er), "ea");            // 19
  k.store(4, ref(ap), ref(ea), "mag_out");                         // 20
  return k;
}

/// gsm — MiBench telecomm. Two cascaded short-term LARp filter sections,
/// each a 4-op recurrence, plus energy accumulation and saturation clip.
/// 24 nodes, RecII 4.
LoopKernel make_gsm() {
  LoopKernel k("gsm");
  const auto ap = k.phi(carried(0), "ptr");                        // 1
  const auto ai = k.binary_imm(Opcode::kAdd, ref(ap), 1, "inc");   // 2
  k.set_operand(ap, 0, carried(ai));
  const auto s = k.load(0, ref(ap), "s");                          // 3
  const auto rp = k.load(1, ref(ap), "rp");                        // 4
  const auto pu = k.phi(carried(0), "u");                          // 5
  const auto m1 = k.binary(Opcode::kMul, ref(rp), ref(pu), "m1");  // 6
  const auto sh1 = k.binary_imm(Opcode::kAshr, ref(m1), 15, "sh1");  // 7
  const auto un = k.binary(Opcode::kAdd, ref(sh1), ref(s), "un");  // 8
  k.set_operand(pu, 0, carried(un));
  const auto sr = k.binary(Opcode::kSub, ref(s), ref(sh1), "sr");  // 9
  k.store(2, ref(ap), ref(sr), "sr_out");                          // 10
  const auto rp2 = k.load(3, ref(ap), "rp2");                      // 11
  const auto pu2 = k.phi(carried(0), "u2");                        // 12
  const auto m2 = k.binary(Opcode::kMul, ref(rp2), ref(pu2), "m2");  // 13
  const auto sh2 = k.binary_imm(Opcode::kAshr, ref(m2), 15, "sh2");  // 14
  const auto un2 = k.binary(Opcode::kAdd, ref(sh2), ref(sr), "un2");  // 15
  k.set_operand(pu2, 0, carried(un2));
  const auto sr2 = k.binary(Opcode::kSub, ref(sr), ref(sh2), "sr2");  // 16
  k.store(4, ref(ap), ref(sr2), "sr2_out");                        // 17
  const auto e = k.binary(Opcode::kMul, ref(sr2), ref(sr2), "e");  // 18
  const auto es = k.binary_imm(Opcode::kAshr, ref(e), 3, "es");    // 19
  const auto acc = k.binary(Opcode::kAdd, carried(0), ref(es), "acc");  // 20
  k.set_operand(acc, 0, carried(acc));
  k.store(5, ref(ap), ref(acc), "e_out");                          // 21
  const auto clip = k.binary_imm(Opcode::kMin, ref(sr2), 32767, "clip");  // 22
  const auto cl2 = k.binary_imm(Opcode::kMax, ref(clip), -32768, "cl2");  // 23
  k.store(6, ref(ap), ref(cl2), "clip_out");                       // 24
  return k;
}

/// heartwall — Rodinia. Template-matching correlation statistics: six
/// masked 3-op accumulators over image/template pixels. 35 nodes, RecII 3.
LoopKernel make_heartwall() {
  LoopKernel k("heartwall");
  const auto ap = k.phi(carried(0), "ptr");                        // 1
  const auto ai = k.binary_imm(Opcode::kAdd, ref(ap), 1, "inc");   // 2
  k.set_operand(ap, 0, carried(ai));
  const auto im = k.load(0, ref(ap), "im");                        // 3
  const auto tp = k.load(1, ref(ap), "tp");                        // 4
  const auto d = k.binary(Opcode::kSub, ref(im), ref(tp), "d");    // 5
  const auto d2 = k.binary(Opcode::kMul, ref(d), ref(d), "d2");    // 6
  auto masked_acc = [&k](InstrId feeder, const std::string& name) {
    const auto ph = k.phi(carried(0), name);
    const auto ad = k.binary(Opcode::kAdd, ref(ph), ref(feeder), name + "_a");
    const auto ms = k.binary_imm(Opcode::kAnd, ref(ad), kAccMask, name + "_m");
    k.set_operand(ph, 0, carried(ms));
    return ms;
  };
  const auto ssd = masked_acc(d2, "ssd");                          // 7..9
  k.store(2, ref(ap), ref(ssd), "ssd_out");                        // 10
  const auto sim = masked_acc(im, "sim");                          // 11..13
  const auto stp = masked_acc(tp, "stp");                          // 14..16
  const auto mit = k.binary(Opcode::kMul, ref(im), ref(tp), "mit");  // 17
  const auto sit = masked_acc(mit, "sit");                         // 18..20
  const auto mi2 = k.binary(Opcode::kMul, ref(im), ref(im), "mi2");  // 21
  const auto si2 = masked_acc(mi2, "si2");                         // 22..24
  const auto mt2 = k.binary(Opcode::kMul, ref(tp), ref(tp), "mt2");  // 25
  const auto st2 = masked_acc(mt2, "st2");                         // 26..28
  const auto nm = k.binary(Opcode::kMul, ref(sim), ref(stp), "nm");  // 29
  const auto ns = k.binary_imm(Opcode::kAshr, ref(nm), 8, "ns");   // 30
  const auto nd = k.binary(Opcode::kSub, ref(sit), ref(ns), "nd"); // 31
  k.store(3, ref(ap), ref(nd), "corr_out");                        // 32
  const auto dn = k.binary(Opcode::kAdd, ref(si2), ref(st2), "dn");  // 33
  const auto dns = k.binary_imm(Opcode::kAshr, ref(dn), 1, "dns"); // 34
  k.store(4, ref(ap), ref(dns), "den_out");                        // 35
  return k;
}

/// hotspot3D — Rodinia. 7-point thermal stencil plus a second-slice 3-point
/// pass, max-temperature and energy accumulators. The largest DFG of the
/// suite (57 nodes), all recurrences length 2.
LoopKernel make_hotspot3d() {
  LoopKernel k("hotspot3D");
  const auto apA = k.phi(carried(0), "ptrA");                      // 1
  const auto aiA = k.binary_imm(Opcode::kAdd, ref(apA), 1, "incA");  // 2
  k.set_operand(apA, 0, carried(aiA));
  const auto apB = k.phi(carried(0), "ptrB");                      // 3
  const auto aiB = k.binary_imm(Opcode::kAdd, ref(apB), 1, "incB");  // 4
  k.set_operand(apB, 0, carried(aiB));
  const auto c = k.load(0, ref(apA), "c");                         // 5
  const auto n = k.load(1, ref(apA), "n");                         // 6
  const auto s = k.load(2, ref(apA), "s");                         // 7
  const auto e = k.load(3, ref(apA), "e");                         // 8
  const auto w = k.load(4, ref(apB), "w");                         // 9
  const auto t = k.load(5, ref(apB), "t");                         // 10
  const auto b = k.load(6, ref(apB), "b");                         // 11
  const auto pw = k.load(7, ref(apB), "pow");                      // 12
  auto face = [&k, c](InstrId nb, std::int64_t wgt, const std::string& nm) {
    const auto df = k.binary(Opcode::kSub, ref(nb), ref(c), nm + "_d");
    return k.binary_imm(Opcode::kMul, ref(df), wgt, nm + "_w");
  };
  const auto fn = face(n, 3, "fn");                                // 13,14
  const auto fs = face(s, 3, "fs");                                // 15,16
  const auto fe2 = face(e, 5, "fe");                               // 17,18
  const auto fw = face(w, 5, "fw");                                // 19,20
  const auto ft = face(t, 7, "ft");                                // 21,22
  const auto fb = face(b, 7, "fb");                                // 23,24
  const auto s1 = k.binary(Opcode::kAdd, ref(fn), ref(fs), "s1");  // 25
  const auto s2 = k.binary(Opcode::kAdd, ref(fe2), ref(fw), "s2"); // 26
  const auto s3 = k.binary(Opcode::kAdd, ref(ft), ref(fb), "s3");  // 27
  const auto s4 = k.binary(Opcode::kAdd, ref(s1), ref(s2), "s4");  // 28
  const auto s5 = k.binary(Opcode::kAdd, ref(s4), ref(s3), "s5");  // 29
  const auto sp = k.binary(Opcode::kAdd, ref(s5), ref(pw), "sp");  // 30
  const auto scl = k.binary_imm(Opcode::kAshr, ref(sp), 6, "scl"); // 31
  const auto tn = k.binary(Opcode::kAdd, ref(c), ref(scl), "tn");  // 32
  k.store(8, ref(apA), ref(tn), "t_out");                          // 33
  const auto bp = k.phi(carried(0), "ptrC");                       // 34
  const auto bi = k.binary_imm(Opcode::kAdd, ref(bp), 1, "incC");  // 35
  k.set_operand(bp, 0, carried(bi));
  const auto c2 = k.load(9, ref(bp), "c2");                        // 36
  const auto n2 = k.load(10, ref(bp), "n2");                       // 37
  const auto s2l = k.load(11, ref(bp), "s2l");                     // 38
  const auto pw2 = k.load(12, ref(bp), "pow2");                    // 39
  const auto d7 = k.binary(Opcode::kSub, ref(n2), ref(c2), "d7");  // 40
  const auto w7 = k.binary_imm(Opcode::kMul, ref(d7), 3, "w7");    // 41
  const auto d8 = k.binary(Opcode::kSub, ref(s2l), ref(c2), "d8"); // 42
  const auto w8 = k.binary_imm(Opcode::kMul, ref(d8), 3, "w8");    // 43
  const auto s6 = k.binary(Opcode::kAdd, ref(w7), ref(w8), "s6");  // 44
  const auto s7 = k.binary(Opcode::kAdd, ref(s6), ref(pw2), "s7"); // 45
  const auto sc2 = k.binary_imm(Opcode::kAshr, ref(s7), 6, "sc2"); // 46
  const auto tn2 = k.binary(Opcode::kAdd, ref(c2), ref(sc2), "tn2");  // 47
  k.store(13, ref(bp), ref(tn2), "t2_out");                        // 48
  const auto pmx = k.phi(carried(0), "maxt");                      // 49
  const auto mx = k.binary(Opcode::kMax, ref(pmx), ref(tn), "mx"); // 50
  k.set_operand(pmx, 0, carried(mx));
  const auto pmx2 = k.phi(carried(0), "maxt2");                    // 51
  const auto mx2 = k.binary(Opcode::kMax, ref(pmx2), ref(tn2), "mx2");  // 52
  k.set_operand(pmx2, 0, carried(mx2));
  const auto gm = k.binary(Opcode::kMax, ref(mx), ref(mx2), "gm"); // 53
  k.store(14, ref(apB), ref(gm), "max_out");                       // 54
  const auto pen = k.phi(carried(0), "energy");                    // 55
  const auto en = k.binary(Opcode::kAdd, ref(pen), ref(sp), "en"); // 56
  k.set_operand(pen, 0, carried(en));
  k.store(15, ref(bp), ref(en), "e_out");                          // 57
  return k;
}

/// lud — Rodinia. Two row-elimination MAC lanes with masked 3-op dot-product
/// accumulators and pivot divisions. 26 nodes, RecII 3.
LoopKernel make_lud() {
  LoopKernel k("lud");
  const auto ap = k.phi(carried(0), "ptr");                        // 1
  const auto ai = k.binary_imm(Opcode::kAdd, ref(ap), 1, "inc");   // 2
  k.set_operand(ap, 0, carried(ai));
  const auto a = k.load(0, ref(ap), "a");                          // 3
  const auto l = k.load(1, ref(ap), "l");                          // 4
  const auto u = k.load(2, ref(ap), "u");                          // 5
  const auto m = k.binary(Opcode::kMul, ref(l), ref(u), "m");      // 6
  const auto pa = k.phi(carried(0), "dot");                        // 7
  const auto sum = k.binary(Opcode::kAdd, ref(pa), ref(m), "sum"); // 8
  const auto sm = k.binary_imm(Opcode::kAnd, ref(sum), kAccMask, "sm");  // 9
  k.set_operand(pa, 0, carried(sm));
  const auto d = k.binary(Opcode::kSub, ref(a), ref(sm), "d");     // 10
  const auto piv = k.load(3, ref(ap), "piv");                      // 11
  const auto q = k.binary(Opcode::kDiv, ref(d), ref(piv), "q");    // 12
  k.store(4, ref(ap), ref(q), "q_out");                            // 13
  const auto l2 = k.load(5, ref(ap), "l2");                        // 14
  const auto u2 = k.load(6, ref(ap), "u2");                        // 15
  const auto m2 = k.binary(Opcode::kMul, ref(l2), ref(u2), "m2");  // 16
  const auto pa2 = k.phi(carried(0), "dot2");                      // 17
  const auto sum2 = k.binary(Opcode::kAdd, ref(pa2), ref(m2), "sum2");  // 18
  const auto sm2 = k.binary_imm(Opcode::kAnd, ref(sum2), kAccMask, "sm2");  // 19
  k.set_operand(pa2, 0, carried(sm2));
  const auto d2 = k.binary(Opcode::kSub, ref(a), ref(sm2), "d2");  // 20
  const auto q2 = k.binary(Opcode::kDiv, ref(d2), ref(piv), "q2"); // 21
  k.store(7, ref(ap), ref(q2), "q2_out");                          // 22
  const auto rr = k.binary(Opcode::kMul, ref(q), ref(q2), "rr");   // 23
  const auto rs = k.binary_imm(Opcode::kAshr, ref(rr), 4, "rs");   // 24
  const auto acc = k.binary(Opcode::kAdd, carried(0), ref(rs), "acc");  // 25
  k.set_operand(acc, 0, carried(acc));
  k.store(8, ref(ap), ref(acc), "acc_out");                        // 26
  return k;
}

/// nw — Rodinia. Two Needleman-Wunsch score cells (diag/left/up max with gap
/// penalties), running maxima, cross-lane diff. 33 nodes, RecII 2.
LoopKernel make_nw() {
  LoopKernel k("nw");
  const auto ap = k.phi(carried(0), "ptr");                        // 1
  const auto ai = k.binary_imm(Opcode::kAdd, ref(ap), 1, "inc");   // 2
  k.set_operand(ap, 0, carried(ai));
  const auto nw_ = k.load(0, ref(ap), "nw");                       // 3
  const auto w = k.load(1, ref(ap), "w");                          // 4
  const auto n = k.load(2, ref(ap), "n");                          // 5
  const auto rf = k.load(3, ref(ap), "ref");                       // 6
  const auto m1 = k.binary(Opcode::kAdd, ref(nw_), ref(rf), "m1"); // 7
  const auto m2 = k.binary_imm(Opcode::kSub, ref(w), 10, "m2");    // 8
  const auto m3 = k.binary_imm(Opcode::kSub, ref(n), 10, "m3");    // 9
  const auto mx1 = k.binary(Opcode::kMax, ref(m1), ref(m2), "mx1");  // 10
  const auto mx2 = k.binary(Opcode::kMax, ref(mx1), ref(m3), "mx2");  // 11
  k.store(4, ref(ap), ref(mx2), "cell_out");                       // 12
  const auto pm = k.phi(carried(0), "runmax");                     // 13
  const auto rm = k.binary(Opcode::kMax, ref(pm), ref(mx2), "rm"); // 14
  k.set_operand(pm, 0, carried(rm));
  const auto bp = k.phi(carried(0), "ptrB");                       // 15
  const auto bi = k.binary_imm(Opcode::kAdd, ref(bp), 1, "incB");  // 16
  k.set_operand(bp, 0, carried(bi));
  const auto nw2 = k.load(5, ref(bp), "nw2");                      // 17
  const auto w2 = k.load(6, ref(bp), "w2");                        // 18
  const auto n2 = k.load(7, ref(bp), "n2");                        // 19
  const auto rf2 = k.load(8, ref(bp), "ref2");                     // 20
  const auto m1b = k.binary(Opcode::kAdd, ref(nw2), ref(rf2), "m1b");  // 21
  const auto m2b = k.binary_imm(Opcode::kSub, ref(w2), 10, "m2b"); // 22
  const auto m3b = k.binary_imm(Opcode::kSub, ref(n2), 10, "m3b"); // 23
  const auto mx1b = k.binary(Opcode::kMax, ref(m1b), ref(m2b), "mx1b");  // 24
  const auto mx2b = k.binary(Opcode::kMax, ref(mx1b), ref(m3b), "mx2b");  // 25
  k.store(9, ref(bp), ref(mx2b), "cell2_out");                     // 26
  const auto pm2 = k.phi(carried(0), "runmax2");                   // 27
  const auto rm2 = k.binary(Opcode::kMax, ref(pm2), ref(mx2b), "rm2");  // 28
  k.set_operand(pm2, 0, carried(rm2));
  const auto gmx = k.binary(Opcode::kMax, ref(rm), ref(rm2), "gmx");  // 29
  k.store(10, ref(ap), ref(gmx), "max_out");                       // 30
  const auto df = k.binary(Opcode::kSub, ref(mx2), ref(mx2b), "df");  // 31
  const auto da = k.unary(Opcode::kAbs, ref(df), "da");            // 32
  k.store(11, ref(bp), ref(da), "diff_out");                       // 33
  return k;
}

/// particlefilter — Rodinia. 9-op clamped weight-normalisation recurrence,
/// CDF accumulation, particle position update, second likelihood lane.
/// 38 nodes, RecII 9.
LoopKernel make_particlefilter() {
  LoopKernel k("particlefilter");
  const auto ap = k.phi(carried(0), "ptr");                        // 1
  const auto ai = k.binary_imm(Opcode::kAdd, ref(ap), 1, "inc");   // 2
  k.set_operand(ap, 0, carried(ai));
  const auto ob = k.load(0, ref(ap), "obs");                       // 3
  const auto pt = k.load(1, ref(ap), "part");                      // 4
  const auto d = k.binary(Opcode::kSub, ref(ob), ref(pt), "d");    // 5
  const auto d2 = k.binary(Opcode::kMul, ref(d), ref(d), "d2");    // 6
  const auto dn = k.binary_imm(Opcode::kAshr, ref(d2), 7, "dn");   // 7
  const auto pw = k.phi(carried(0), "wgt");                        // 8
  const auto m = k.binary(Opcode::kMul, ref(pw), ref(dn), "m");    // 9
  const auto s1 = k.binary_imm(Opcode::kAshr, ref(m), 10, "s1");   // 10
  const auto a1 = k.binary_imm(Opcode::kAdd, ref(s1), 1, "a1");    // 11
  const auto mn = k.binary_imm(Opcode::kMin, ref(a1), 1 << 24, "mn");  // 12
  const auto mx = k.binary_imm(Opcode::kMax, ref(mn), 1, "mx");    // 13
  const auto m3 = k.binary_imm(Opcode::kMul, ref(mx), 205, "m3");  // 14
  const auto s4 = k.binary_imm(Opcode::kAshr, ref(m3), 8, "s4");   // 15
  const auto wn = k.binary(Opcode::kSub, ref(s4), ref(dn), "wn");  // 16
  k.set_operand(pw, 0, carried(wn));
  k.set_init(pw, 512);
  k.store(2, ref(ap), ref(wn), "w_out");                           // 17
  const auto pc = k.phi(carried(0), "cdf");                        // 18
  const auto cs = k.binary(Opcode::kAdd, ref(pc), ref(wn), "cs");  // 19
  k.set_operand(pc, 0, carried(cs));
  k.store(3, ref(ap), ref(cs), "cdf_out");                         // 20
  const auto pt2 = k.load(4, ref(ap), "pt2");                      // 21
  const auto vel = k.load(5, ref(ap), "vel");                      // 22
  const auto np = k.binary(Opcode::kAdd, ref(pt2), ref(vel), "np");  // 23
  const auto nz = k.binary_imm(Opcode::kAnd, ref(np), 0xFFFF, "nz");  // 24
  k.store(6, ref(ap), ref(nz), "pos_out");                         // 25
  const auto d2b = k.binary(Opcode::kSub, ref(ob), ref(np), "d2b");  // 26
  const auto sq = k.binary(Opcode::kMul, ref(d2b), ref(d2b), "sq");  // 27
  const auto sn = k.binary_imm(Opcode::kAshr, ref(sq), 7, "sn");   // 28
  const auto pw2 = k.phi(carried(0), "wgt2");                      // 29
  const auto m2b = k.binary(Opcode::kMul, ref(pw2), ref(sn), "m2b");  // 30
  const auto w2 = k.binary_imm(Opcode::kAshr, ref(m2b), 10, "w2"); // 31
  k.set_operand(pw2, 0, carried(w2));
  k.set_init(pw2, 1024);
  k.store(7, ref(ap), ref(w2), "w2_out");                          // 32
  const auto tw = k.binary(Opcode::kAdd, ref(wn), ref(w2), "tw");  // 33
  const auto ts = k.binary_imm(Opcode::kAshr, ref(tw), 1, "ts");   // 34
  k.store(8, ref(ap), ref(ts), "tw_out");                          // 35
  const auto mxw = k.binary(Opcode::kMax, carried(0), ref(tw), "mxw");  // 36
  k.set_operand(mxw, 0, carried(mxw));
  k.store(9, ref(ap), ref(mxw), "mxw_out");                        // 37
  k.binary_imm(Opcode::kCmpLt, ref(ts), 1000, "resample");         // 38
  return k;
}

/// sha1 — MiBench. Message-schedule expansion W[i] = rol1(W[i-3] ^ W[i-8] ^
/// W[i-14]): the distance-3 carried reference over the 4-op chain gives
/// RecII = ceil(4/3) = 2. 21 nodes.
LoopKernel make_sha1() {
  LoopKernel k("sha1");
  const auto ap = k.phi(carried(0), "ptr");                        // 1
  const auto ai = k.binary_imm(Opcode::kAdd, ref(ap), 1, "inc");   // 2
  k.set_operand(ap, 0, carried(ai));
  // Forward references to the schedule word (instruction id 6).
  const InstrId wv_id = 6;
  const auto x1 = k.binary(Opcode::kXor, carried(wv_id, 3),
                           carried(wv_id, 8), "x1");               // 3
  const auto x2 = k.binary(Opcode::kXor, ref(x1), carried(wv_id, 14), "x2");  // 4
  const auto sl = k.binary_imm(Opcode::kShl, ref(x2), 1, "sl");    // 5
  const auto sr = k.binary_imm(Opcode::kShr, ref(x2), 31, "sr");   // 6
  const auto wv = k.binary(Opcode::kOr, ref(sl), ref(sr), "w");    // 7
  MONOMAP_ASSERT(wv == wv_id);
  k.set_init(wv, 0x67452301);
  k.store(0, ref(ap), ref(wv), "w_out");                           // 8
  const auto kc = k.load(1, ref(ap), "k");                         // 9
  const auto tw = k.binary(Opcode::kAdd, ref(wv), ref(kc), "tw");  // 10
  k.store(2, ref(ap), ref(tw), "tw_out");                          // 11
  const auto pa = k.phi(carried(0), "sum");                        // 12
  const auto ac = k.binary(Opcode::kAdd, ref(pa), ref(tw), "ac");  // 13
  k.set_operand(pa, 0, carried(ac));
  k.store(3, ref(ap), ref(ac), "sum_out");                         // 14
  const auto b1 = k.binary_imm(Opcode::kAnd, ref(wv), 255, "b1");  // 15
  const auto b2 = k.binary_imm(Opcode::kShr, ref(wv), 24, "b2");   // 16
  const auto bx = k.binary(Opcode::kXor, ref(b1), ref(b2), "bx");  // 17
  k.store(4, ref(ap), ref(bx), "bx_out");                          // 18
  const auto pr = k.phi(carried(0), "bmax");                       // 19
  const auto mxb = k.binary(Opcode::kMax, ref(pr), ref(bx), "mxb");  // 20
  k.set_operand(pr, 0, carried(mxb));
  k.store(5, ref(ap), ref(mxb), "bmax_out");                       // 21
  return k;
}

/// sha2 — round-function sketch: Σ0-style shift/xor chain through the state
/// (7-op recurrence), choose function, digest accumulation. 25 nodes,
/// RecII 7.
LoopKernel make_sha2() {
  LoopKernel k("sha2");
  const auto ap = k.phi(carried(0), "ptr");                        // 1
  const auto ai = k.binary_imm(Opcode::kAdd, ref(ap), 1, "inc");   // 2
  k.set_operand(ap, 0, carried(ai));
  const auto w = k.load(0, ref(ap), "w");                          // 3
  const auto kc = k.load(1, ref(ap), "k");                         // 4
  const auto wk = k.binary(Opcode::kAdd, ref(w), ref(kc), "wk");   // 5
  const auto ps = k.phi(carried(0), "state");                      // 6
  const auto r1 = k.binary_imm(Opcode::kShr, ref(ps), 6, "r1");    // 7
  const auto xx1 = k.binary(Opcode::kXor, ref(r1), ref(wk), "xx1");  // 8
  const auto a1 = k.binary(Opcode::kAdd, ref(xx1), ref(w), "a1");  // 9
  const auto r2 = k.binary_imm(Opcode::kShl, ref(a1), 7, "r2");    // 10
  const auto xx2 = k.binary(Opcode::kXor, ref(r2), ref(kc), "xx2");  // 11
  const auto ns = k.binary_imm(Opcode::kAnd, ref(xx2), (1LL << 30) - 1, "ns");  // 12
  k.set_operand(ps, 0, carried(ns));
  k.set_init(ps, 0x6A09E667);
  k.store(2, ref(ap), ref(ns), "state_out");                       // 13
  const auto ch = k.binary(Opcode::kAnd, ref(ns), ref(w), "ch");   // 14
  const auto nt = k.unary(Opcode::kNot, ref(ns), "nt");            // 15
  const auto ch2 = k.binary(Opcode::kAnd, ref(nt), ref(kc), "ch2");  // 16
  const auto cho = k.binary(Opcode::kOr, ref(ch), ref(ch2), "cho");  // 17
  k.store(3, ref(ap), ref(cho), "cho_out");                        // 18
  const auto pa = k.phi(carried(0), "dig");                        // 19
  const auto ac = k.binary(Opcode::kAdd, ref(pa), ref(cho), "ac"); // 20
  k.set_operand(pa, 0, carried(ac));
  k.store(4, ref(ap), ref(ac), "dig_out");                         // 21
  const auto h1 = k.binary_imm(Opcode::kShr, ref(cho), 16, "h1");  // 22
  const auto h2 = k.binary(Opcode::kXor, ref(h1), ref(cho), "h2"); // 23
  const auto hm = k.binary_imm(Opcode::kAnd, ref(h2), 0xFFFF, "hm");  // 24
  k.store(5, ref(ap), ref(hm), "hash_out");                        // 25
  return k;
}

/// stringsearch — MiBench. Boyer-Moore-Horspool position update
/// pos' = pos + skip[text[pos]] — a 3-op recurrence through two loads —
/// plus match counting and a hash probe lane. 28 nodes, RecII 3.
LoopKernel make_stringsearch() {
  LoopKernel k("stringsearch");
  const InstrId np_id = 2;  // forward reference to the position update
  const auto ch = k.load(0, carried(np_id, 1), "ch");              // 1
  const auto sk = k.load(1, ref(ch), "skip");                      // 2
  const auto np = k.binary(Opcode::kAdd, carried(np_id, 1), ref(sk), "np");  // 3
  MONOMAP_ASSERT(np == np_id);
  const auto cm = k.load(2, ref(ch), "pat");                       // 4
  const auto eq = k.binary(Opcode::kCmpEq, ref(ch), ref(cm), "eq");  // 5
  const auto pa = k.phi(carried(0), "matches");                    // 6
  const auto cnt = k.binary(Opcode::kAdd, ref(pa), ref(eq), "cnt");  // 7
  k.set_operand(pa, 0, carried(cnt));
  const auto ap2 = k.phi(carried(0), "optr");                      // 8
  const auto ai2 = k.binary_imm(Opcode::kAdd, ref(ap2), 1, "oinc");  // 9
  k.set_operand(ap2, 0, carried(ai2));
  k.store(3, ref(ap2), ref(cnt), "cnt_out");                       // 10
  k.store(4, ref(ap2), ref(np), "pos_out");                        // 11
  const auto ch2 = k.load(5, ref(np), "ch2");                      // 12
  const auto sk2 = k.load(6, ref(ch2), "skip2");                   // 13
  const auto h1 = k.binary_imm(Opcode::kMul, ref(ch2), 31, "h1");  // 14
  const auto h2 = k.binary(Opcode::kAdd, ref(h1), ref(ch), "h2");  // 15
  const auto hm = k.binary_imm(Opcode::kAnd, ref(h2), 255, "hm");  // 16
  const auto tb = k.load(7, ref(hm), "tb");                        // 17
  const auto eq2 = k.binary(Opcode::kCmpEq, ref(tb), ref(ch2), "eq2");  // 18
  const auto pa2 = k.phi(carried(0), "matches2");                  // 19
  const auto c2 = k.binary(Opcode::kAdd, ref(pa2), ref(eq2), "c2");  // 20
  k.set_operand(pa2, 0, carried(c2));
  k.store(8, ref(ap2), ref(c2), "cnt2_out");                       // 21
  const auto mxs = k.binary(Opcode::kMax, ref(sk2), ref(sk), "mxs");  // 22
  const auto adv = k.binary(Opcode::kAdd, ref(np), ref(mxs), "adv");  // 23
  k.store(9, ref(ap2), ref(adv), "adv_out");                       // 24
  const auto lo = k.binary_imm(Opcode::kAnd, ref(adv), 255, "lo"); // 25
  const auto ld2 = k.load(10, ref(lo), "probe");                   // 26
  const auto acc2 = k.binary(Opcode::kAdd, carried(0), ref(ld2), "acc2");  // 27
  k.set_operand(acc2, 0, carried(acc2));
  k.store(11, ref(ap2), ref(acc2), "probe_out");                   // 28
  return k;
}

/// susan — MiBench. Two brightness-difference/threshold lanes with USAN
/// area accumulators. 21 nodes, RecII 2.
LoopKernel make_susan() {
  LoopKernel k("susan");
  const auto ap = k.phi(carried(0), "ptr");                        // 1
  const auto ai = k.binary_imm(Opcode::kAdd, ref(ap), 1, "inc");   // 2
  k.set_operand(ap, 0, carried(ai));
  const auto c = k.load(0, ref(ap), "center");                     // 3
  const auto p = k.load(1, ref(ap), "pix");                        // 4
  const auto d = k.binary(Opcode::kSub, ref(p), ref(c), "d");      // 5
  const auto da = k.unary(Opcode::kAbs, ref(d), "da");             // 6
  const auto th = k.binary_imm(Opcode::kCmpLt, ref(da), 20, "th"); // 7
  const auto pa = k.phi(carried(0), "usan");                       // 8
  const auto na = k.binary(Opcode::kAdd, ref(pa), ref(th), "na");  // 9
  k.set_operand(pa, 0, carried(na));
  k.store(2, ref(ap), ref(na), "usan_out");                        // 10
  const auto p2 = k.load(3, ref(ap), "pix2");                      // 11
  const auto d2 = k.binary(Opcode::kSub, ref(p2), ref(c), "d2");   // 12
  const auto da2 = k.unary(Opcode::kAbs, ref(d2), "da2");          // 13
  const auto th2 = k.binary_imm(Opcode::kCmpLt, ref(da2), 20, "th2");  // 14
  const auto pa2 = k.phi(carried(0), "usan2");                     // 15
  const auto n2 = k.binary(Opcode::kAdd, ref(pa2), ref(th2), "n2");  // 16
  k.set_operand(pa2, 0, carried(n2));
  k.store(4, ref(ap), ref(n2), "usan2_out");                       // 17
  const auto tt = k.binary(Opcode::kAdd, ref(th), ref(th2), "tt"); // 18
  const auto ws = k.binary(Opcode::kAdd, carried(0), ref(tt), "wsum");  // 19
  k.set_operand(ws, 0, carried(ws));
  const auto gm = k.binary(Opcode::kMax, ref(na), ref(n2), "gm");  // 20
  k.store(5, ref(ap), ref(gm), "gm_out");                          // 21
  return k;
}

Benchmark finish(LoopKernel kernel, int nodes, int rec,
                 std::array<int, 4> paper_ii, std::array<int, 4> paper_mii) {
  kernel.validate();
  Dfg dfg = Dfg::from_kernel(kernel);
  std::string name = kernel.name();
  return Benchmark{std::move(name), std::move(kernel), std::move(dfg),
                   nodes, rec, paper_ii, paper_mii};
}

std::vector<Benchmark> build_suite() {
  std::vector<Benchmark> all;
  all.reserve(17);
  // Table III data: II and mII per {2x2, 5x5, 10x10, 20x20}; -1 marks a
  // timeout of the corresponding tool in the paper.
  all.push_back(finish(make_aes(), 23, 14, {16, 16, 16, 16}, {14, 14, 14, 14}));
  all.push_back(finish(make_backprop(), 34, 5, {10, 5, 5, 5}, {9, 5, 5, 5}));
  all.push_back(finish(make_basicmath(), 21, 7, {7, 7, 7, 7}, {7, 7, 7, 7}));
  all.push_back(finish(make_bitcount(), 7, 3, {3, 3, 3, 3}, {3, 3, 3, 3}));
  all.push_back(finish(make_cfd(), 51, 2, {-1, 3, -1, -1}, {13, 3, 2, 2}));
  all.push_back(finish(make_crc32(), 24, 8, {11, 11, 11, 11}, {8, 8, 8, 8}));
  all.push_back(finish(make_fft(), 20, 7, {7, 7, 7, 7}, {7, 7, 7, 7}));
  all.push_back(finish(make_gsm(), 24, 4, {6, 5, 5, 5}, {6, 4, 4, 4}));
  all.push_back(finish(make_heartwall(), 35, 3, {9, 3, 3, 3}, {9, 3, 3, 3}));
  all.push_back(
      finish(make_hotspot3d(), 57, 2, {17, 6, -1, -1}, {15, 3, 2, 2}));
  all.push_back(finish(make_lud(), 26, 3, {7, 3, 3, 3}, {7, 3, 3, 3}));
  all.push_back(finish(make_nw(), 33, 2, {9, 2, 2, 2}, {9, 2, 2, 2}));
  all.push_back(
      finish(make_particlefilter(), 38, 9, {10, 9, 9, 9}, {10, 9, 9, 9}));
  all.push_back(finish(make_sha1(), 21, 2, {6, 4, 4, 4}, {6, 2, 2, 2}));
  // sha2 2x2: the paper prints mII 6, inconsistent with its own RecII 7 on
  // larger grids; we list the self-consistent 7 (see EXPERIMENTS.md).
  all.push_back(finish(make_sha2(), 25, 7, {7, 7, 7, 7}, {7, 7, 7, 7}));
  all.push_back(
      finish(make_stringsearch(), 28, 3, {7, 3, 3, 3}, {7, 3, 3, 3}));
  all.push_back(finish(make_susan(), 21, 2, {6, 2, 2, 2}, {6, 2, 2, 2}));
  return all;
}

}  // namespace

const std::vector<Benchmark>& benchmark_suite() {
  static const std::vector<Benchmark> suite = build_suite();
  return suite;
}

const Benchmark& benchmark_by_name(const std::string& name) {
  for (const Benchmark& b : benchmark_suite()) {
    if (b.name == name) return b;
  }
  MONOMAP_ASSERT_MSG(false, "unknown benchmark '" << name << "'");
  // Unreachable; assertion throws.
  return benchmark_suite().front();
}

}  // namespace monomap
