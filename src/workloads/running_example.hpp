// The paper's running example (Fig. 2a / Table I / Table II).
//
// The 14-node DFG below was reconstructed from Table I: with horizon 6 the
// ASAP/ALAP/MobS tables it produces match the paper's Table I cell-for-cell,
// and its recurrence cycle 4 -> 5 -> 6 -> 7 -> (distance-1) -> 4 gives
// RecII = 4 while ResII on a 2x2 CGRA is ceil(14/4) = 4, so mII = 4 — the
// paper's starting point.
#ifndef MONOMAP_WORKLOADS_RUNNING_EXAMPLE_HPP
#define MONOMAP_WORKLOADS_RUNNING_EXAMPLE_HPP

#include "ir/dfg.hpp"

namespace monomap {

/// The Fig. 2a DFG: 14 nodes, 14 data edges, 1 loop-carried edge (7 -> 4).
Dfg running_example_dfg();

}  // namespace monomap

#endif  // MONOMAP_WORKLOADS_RUNNING_EXAMPLE_HPP
