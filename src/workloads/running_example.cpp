#include "workloads/running_example.hpp"

namespace monomap {

Dfg running_example_dfg() {
  // Data dependencies (black edges in Fig. 2a).
  std::vector<Edge> edges = {
      {4, 5, 0},  {5, 6, 0},  {3, 6, 0},  {6, 7, 0},   {6, 8, 0},
      {0, 8, 0},  {2, 8, 0},  {8, 9, 0},  {1, 9, 0},   {9, 10, 0},
      {7, 10, 0}, {4, 11, 0}, {11, 12, 0}, {12, 13, 0},
      // Loop-carried dependency (red edge): node 7 feeds node 4 of the next
      // iteration, closing the RecII = 4 cycle 4 -> 5 -> 6 -> 7 -> 4.
      {7, 4, 1},
  };
  return Dfg::from_edges("running_example", 14, edges);
}

}  // namespace monomap
