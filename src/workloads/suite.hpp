// The 17-benchmark workload suite (paper Sec. V).
//
// The paper maps the innermost loops (no calls, no conditionals) of 17
// MiBench/Rodinia benchmarks. Those exact LLVM-extracted DFGs are not
// distributable, so each kernel is reimplemented in the mini loop IR as a
// faithful sketch of the original inner loop (same op mix, same memory
// access style, same recurrence structure). Node counts match Table III
// exactly, and the recurrence bounds are chosen so that
// mII = max(ResII, RecII) reproduces the paper's mII for all 68
// (benchmark, grid) pairs — pinned by tests/workloads_test.cpp.
//
// Memory discipline (needed for the mapped-vs-sequential simulation check):
// loads only touch pure-input spaces, stores only pure-output spaces at
// per-iteration-unique addresses, and every loop-carried value flows through
// registers (carried references), never through memory.
#ifndef MONOMAP_WORKLOADS_SUITE_HPP
#define MONOMAP_WORKLOADS_SUITE_HPP

#include <array>
#include <string>
#include <vector>

#include "ir/dfg.hpp"
#include "ir/kernel.hpp"

namespace monomap {

/// CGRA side lengths evaluated in the paper's Table III.
inline constexpr std::array<int, 4> kPaperGridSizes{2, 5, 10, 20};

struct Benchmark {
  std::string name;
  LoopKernel kernel;
  Dfg dfg;
  int paper_nodes;                 // Table III "DFG Nodes"
  int paper_rec_ii;                // recurrence bound implied by Table III
  std::array<int, 4> paper_ii;     // Table III II per grid (-1 = timeout)
  std::array<int, 4> paper_mii;    // Table III mII per grid (as printed)
};

/// All 17 benchmarks, in the paper's (alphabetical) order.
const std::vector<Benchmark>& benchmark_suite();

/// Lookup by name; throws AssertionError if unknown.
const Benchmark& benchmark_by_name(const std::string& name);

}  // namespace monomap

#endif  // MONOMAP_WORKLOADS_SUITE_HPP
