#include "workloads/synthetic.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace monomap {

Dfg random_dfg(const SyntheticSpec& spec) {
  MONOMAP_ASSERT(spec.num_nodes >= 1);
  Rng rng(spec.seed);
  std::vector<Edge> edges;
  std::vector<int> degree(static_cast<std::size_t>(spec.num_nodes), 0);

  auto try_edge = [&](NodeId src, NodeId dst, int dist) {
    if (degree[static_cast<std::size_t>(src)] >= spec.max_degree ||
        degree[static_cast<std::size_t>(dst)] >= spec.max_degree) {
      return false;
    }
    for (const Edge& e : edges) {
      if (e.src == src && e.dst == dst && e.attr == dist) return false;
    }
    edges.push_back(Edge{src, dst, dist});
    ++degree[static_cast<std::size_t>(src)];
    ++degree[static_cast<std::size_t>(dst)];
    return true;
  };

  // Spanning structure: each node (except 0) consumes one earlier value,
  // preferring producers that still have degree headroom.
  for (NodeId v = 1; v < spec.num_nodes; ++v) {
    auto u = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(v)));
    for (int attempt = 0;
         attempt < 8 && degree[static_cast<std::size_t>(u)] >= spec.max_degree;
         ++attempt) {
      u = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(v)));
    }
    edges.push_back(Edge{u, v, 0});
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
  }
  // Extra forward edges.
  for (NodeId v = 2; v < spec.num_nodes; ++v) {
    if (rng.next_bool(spec.extra_edge_prob)) {
      const auto u = static_cast<NodeId>(rng.next_below(
          static_cast<std::uint64_t>(v)));
      try_edge(u, v, 0);
    }
  }
  // Recurrences: distance-1 back edges from a later node to an earlier one.
  int placed = 0;
  for (int attempt = 0; attempt < 10 * spec.num_recurrences &&
                        placed < spec.num_recurrences && spec.num_nodes > 1;
       ++attempt) {
    const auto a = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(spec.num_nodes)));
    const auto b = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(spec.num_nodes)));
    const NodeId src = std::max(a, b);
    const NodeId dst = std::min(a, b);
    if (src == dst) continue;
    if (try_edge(src, dst, 1)) ++placed;
  }
  return Dfg::from_edges("synthetic_" + std::to_string(spec.seed),
                         spec.num_nodes, edges);
}

Dfg layered_dfg(int layers, int width, std::uint64_t seed) {
  MONOMAP_ASSERT(layers >= 1 && width >= 1);
  Rng rng(seed);
  const int n = layers * width;
  std::vector<Edge> edges;
  auto node = [width](int layer, int pos) { return layer * width + pos; };
  for (int layer = 1; layer < layers; ++layer) {
    for (int pos = 0; pos < width; ++pos) {
      // One guaranteed producer in the previous layer keeps it connected...
      const int p = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(width)));
      edges.push_back(Edge{node(layer - 1, p), node(layer, pos), 0});
      // ...plus an occasional second one.
      if (width > 1 && rng.next_bool(0.4)) {
        const int q = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(width)));
        if (q != p) {
          edges.push_back(Edge{node(layer - 1, q), node(layer, pos), 0});
        }
      }
    }
  }
  // One loop-carried recurrence from the last layer back to the first.
  edges.push_back(Edge{node(layers - 1, 0), node(0, 0), 1});
  return Dfg::from_edges("layered_" + std::to_string(layers) + "x" +
                             std::to_string(width),
                         n, edges);
}

}  // namespace monomap
