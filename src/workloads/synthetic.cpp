#include "workloads/synthetic.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace monomap {

Dfg random_dfg(const SyntheticSpec& spec) {
  MONOMAP_ASSERT(spec.num_nodes >= 1);
  Rng rng(spec.seed);
  std::vector<Edge> edges;
  std::vector<int> degree(static_cast<std::size_t>(spec.num_nodes), 0);

  auto try_edge = [&](NodeId src, NodeId dst, int dist) {
    if (degree[static_cast<std::size_t>(src)] >= spec.max_degree ||
        degree[static_cast<std::size_t>(dst)] >= spec.max_degree) {
      return false;
    }
    for (const Edge& e : edges) {
      if (e.src == src && e.dst == dst && e.attr == dist) return false;
    }
    edges.push_back(Edge{src, dst, dist});
    ++degree[static_cast<std::size_t>(src)];
    ++degree[static_cast<std::size_t>(dst)];
    return true;
  };

  // Spanning structure: each node (except 0) consumes one earlier value,
  // preferring producers that still have degree headroom.
  for (NodeId v = 1; v < spec.num_nodes; ++v) {
    auto u = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(v)));
    for (int attempt = 0;
         attempt < 8 && degree[static_cast<std::size_t>(u)] >= spec.max_degree;
         ++attempt) {
      u = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(v)));
    }
    edges.push_back(Edge{u, v, 0});
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
  }
  // Extra forward edges.
  for (NodeId v = 2; v < spec.num_nodes; ++v) {
    if (rng.next_bool(spec.extra_edge_prob)) {
      const auto u = static_cast<NodeId>(rng.next_below(
          static_cast<std::uint64_t>(v)));
      try_edge(u, v, 0);
    }
  }
  // Recurrences: distance-1 back edges from a later node to an earlier one.
  int placed = 0;
  for (int attempt = 0; attempt < 10 * spec.num_recurrences &&
                        placed < spec.num_recurrences && spec.num_nodes > 1;
       ++attempt) {
    const auto a = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(spec.num_nodes)));
    const auto b = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(spec.num_nodes)));
    const NodeId src = std::max(a, b);
    const NodeId dst = std::min(a, b);
    if (src == dst) continue;
    if (try_edge(src, dst, 1)) ++placed;
  }
  return Dfg::from_edges("synthetic_" + std::to_string(spec.seed),
                         spec.num_nodes, edges);
}

Dfg layered_dfg(int layers, int width, std::uint64_t seed) {
  MONOMAP_ASSERT(layers >= 1 && width >= 1);
  Rng rng(seed);
  const int n = layers * width;
  std::vector<Edge> edges;
  auto node = [width](int layer, int pos) { return layer * width + pos; };
  for (int layer = 1; layer < layers; ++layer) {
    for (int pos = 0; pos < width; ++pos) {
      // One guaranteed producer in the previous layer keeps it connected...
      const int p = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(width)));
      edges.push_back(Edge{node(layer - 1, p), node(layer, pos), 0});
      // ...plus an occasional second one.
      if (width > 1 && rng.next_bool(0.4)) {
        const int q = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(width)));
        if (q != p) {
          edges.push_back(Edge{node(layer - 1, q), node(layer, pos), 0});
        }
      }
    }
  }
  // One loop-carried recurrence from the last layer back to the first.
  edges.push_back(Edge{node(layers - 1, 0), node(0, 0), 1});
  return Dfg::from_edges("layered_" + std::to_string(layers) + "x" +
                             std::to_string(width),
                         n, edges);
}

Dfg placeable_grid_dfg(const PlaceableGridSpec& spec,
                       std::vector<int>* labels_out) {
  MONOMAP_ASSERT(spec.rows >= 1 && spec.cols >= 1 && spec.ii >= 1);
  MONOMAP_ASSERT(spec.rows * spec.cols >= 2);
  MONOMAP_ASSERT(labels_out != nullptr);
  Rng rng(spec.seed);
  const int n = spec.rows * spec.cols;
  auto node = [&spec](int r, int c) { return r * spec.cols + c; };
  std::vector<Edge> edges;
  // Connected spanning skeleton: every row is a chain, the first column
  // ties the rows together. Deterministic, so the instance is connected at
  // any edge_keep.
  for (int r = 0; r < spec.rows; ++r) {
    for (int c = 1; c < spec.cols; ++c) {
      edges.push_back(Edge{node(r, c - 1), node(r, c), 0});
    }
  }
  for (int r = 1; r < spec.rows; ++r) {
    edges.push_back(Edge{node(r - 1, 0), node(r, 0), 0});
    // Optional vertical edges thin the patch irregularly, so the search
    // faces many inequivalent embeddings instead of a rigid full mesh.
    for (int c = 1; c < spec.cols; ++c) {
      if (rng.next_bool(spec.edge_keep)) {
        edges.push_back(Edge{node(r - 1, c), node(r, c), 0});
      }
    }
  }
  // The loop-carried recurrence joins a grid-adjacent pair (unlike the
  // layered generator's last-to-first edge) — the identity embedding must
  // stay a monomorphism witness.
  if (spec.rows > 1) {
    edges.push_back(Edge{node(1, 0), node(0, 0), 1});
  } else {
    edges.push_back(Edge{node(0, 1), node(0, 0), 1});
  }
  labels_out->assign(static_cast<std::size_t>(n), 0);
  for (int r = 0; r < spec.rows; ++r) {
    for (int c = 0; c < spec.cols; ++c) {
      (*labels_out)[static_cast<std::size_t>(node(r, c))] =
          (r + c) % spec.ii;
    }
  }
  return Dfg::from_edges("placeable_" + std::to_string(spec.rows) + "x" +
                             std::to_string(spec.cols) + "_s" +
                             std::to_string(spec.seed),
                         n, edges);
}

namespace {

/// Largest number of same-label nodes the (r + c) % ii wave labelling packs
/// into any node's 2-hop grid neighbourhood (offsets with |dr| + |dc| <= 2).
/// Once their common neighbour is placed, all of them compete for distinct
/// PEs inside one distance-2 ball, so this is the demand the architecture's
/// ball capacity must cover.
int wave_same_label_demand(int ii) {
  int worst = 0;
  for (int residue = 0; residue < ii; ++residue) {
    int count = 0;
    for (int dr = -2; dr <= 2; ++dr) {
      for (int dc = -2; dc <= 2; ++dc) {
        if (std::abs(dr) + std::abs(dc) > 2) continue;
        if (((dr + dc) % ii + ii) % ii == residue) ++count;
      }
    }
    worst = std::max(worst, count);
  }
  return worst;
}

}  // namespace

PlaceableGridSpec placeable_spec_for(const CgraArch& arch, int ii,
                                     std::uint64_t seed) {
  PlaceableGridSpec spec;
  spec.seed = seed;
  // ~3/5 of the fabric's linear extent: domains still span many tiles, but
  // the patch has room to slide, so the instance measures placement rather
  // than a perfect-packing puzzle.
  spec.rows = std::clamp(arch.rows() * 3 / 5, 1, arch.rows());
  spec.cols = std::clamp(arch.cols() * 3 / 5, 1, arch.cols());
  if (spec.rows * spec.cols < 2) spec.cols = std::min(2, arch.cols());
  // Raise the II until the densest same-label 2-hop cluster fits the
  // interior distance-2 ball (on a plain mesh ii = 2 already does: demand 9
  // against capacity 13). The num_pes bound is an overflow guard for
  // degenerate fabrics whose balls can never cover the ii-independent
  // demand floor.
  spec.ii = std::max(ii, 2);
  while (spec.ii < arch.num_pes() &&
         wave_same_label_demand(spec.ii) > arch.distance2_ball_max()) {
    ++spec.ii;
  }
  return spec;
}

}  // namespace monomap
