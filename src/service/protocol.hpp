// Wire protocol of the mapping service: newline-delimited JSON.
//
// One request object per line; the service answers with exactly one JSON
// object per request, in order per connection. Verbs:
//
//   {"verb":"map", "id":..., "bench":"fft"|"dfg":"dfg ...\n...",
//    "grid":4|"rows":R,"cols":C, "topology":"mesh|torus|diagonal",
//    "deadline_s":S, "warm":bool, "memo":bool, "anytime":bool,
//    "max_schedules":N, "max_ii":N, "mapping":bool}
//   {"verb":"stats", "id":...}
//   {"verb":"shutdown", "id":...}
//
// Defaults: memo/warm follow the service configuration; the others are
// off/0. `mapping:true` asks for the placement text in the response.
// Unknown fields are ignored (forward compatibility); a missing or
// unknown verb, unparsable JSON, or an inconsistent body is a protocol
// error — answered with {"ok":false,"error":...}, never a dropped
// connection.
#ifndef MONOMAP_SERVICE_PROTOCOL_HPP
#define MONOMAP_SERVICE_PROTOCOL_HPP

#include <string>

#include "arch/cgra.hpp"

namespace monomap {

struct ServeRequest {
  enum class Verb { kMap, kStats, kShutdown };
  Verb verb = Verb::kMap;
  std::string id;        // echoed verbatim in the response (as a string)
  std::string bench;     // workload-suite benchmark name, or empty
  std::string dfg_text;  // io/dfg_io format, or empty
  int rows = 4;
  int cols = 4;
  Topology topology = Topology::kMesh;
  double deadline_s = 0.0;  // <= 0: the service default
  /// Tri-state toggles: -1 = service default, 0 = off, 1 = on.
  int warm = -1;
  int memo = -1;
  bool anytime = false;
  int max_schedules = 0;
  int max_ii = 0;
  bool want_mapping = false;
};

struct ParsedRequest {
  bool ok = false;
  std::string error;  // set when !ok
  ServeRequest request;
};

/// Parse one request line. Never throws; malformed input comes back as
/// ok = false with a one-line reason.
ParsedRequest parse_request(const std::string& line);

}  // namespace monomap

#endif  // MONOMAP_SERVICE_PROTOCOL_HPP
