#include "service/protocol.hpp"

#include <cmath>
#include <cstdio>

#include "support/json.hpp"

namespace monomap {
namespace {

/// Echo the request id as a string whatever JSON type it came in as.
std::string id_to_string(const json::Value& root) {
  const json::Value* id = root.find("id");
  if (id == nullptr) return "";
  if (id->is_string()) return id->as_string();
  if (id->is_number()) {
    char buf[32];
    const double d = id->as_number();
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    } else {
      std::snprintf(buf, sizeof(buf), "%g", d);
    }
    return buf;
  }
  return "";
}

/// Positive integer field with a default; false (leaving *out alone) only
/// when the field is present but not a usable integer.
bool int_field(const json::Value& root, const std::string& key, int* out) {
  const json::Value* v = root.find(key);
  if (v == nullptr) return true;
  if (!v->is_number()) return false;
  const double d = v->as_number();
  if (d != std::floor(d) || d < -2e9 || d > 2e9) return false;
  *out = static_cast<int>(d);
  return true;
}

}  // namespace

ParsedRequest parse_request(const std::string& line) {
  ParsedRequest parsed;
  std::optional<json::Value> doc = json::parse(line);
  if (!doc.has_value() || !doc->is_object()) {
    parsed.error = "request is not a JSON object";
    return parsed;
  }
  ServeRequest& req = parsed.request;
  req.id = id_to_string(*doc);
  const std::string verb = doc->string_or("verb", "map");
  if (verb == "map") {
    req.verb = ServeRequest::Verb::kMap;
  } else if (verb == "stats") {
    req.verb = ServeRequest::Verb::kStats;
    parsed.ok = true;
    return parsed;
  } else if (verb == "shutdown") {
    req.verb = ServeRequest::Verb::kShutdown;
    parsed.ok = true;
    return parsed;
  } else {
    parsed.error = "unknown verb '" + verb + "'";
    return parsed;
  }

  req.bench = doc->string_or("bench", "");
  req.dfg_text = doc->string_or("dfg", "");
  if (req.bench.empty() == req.dfg_text.empty()) {
    parsed.error = "exactly one of 'bench' or 'dfg' is required";
    return parsed;
  }
  int grid = 0;
  if (!int_field(*doc, "grid", &grid) || !int_field(*doc, "rows", &req.rows) ||
      !int_field(*doc, "cols", &req.cols) ||
      !int_field(*doc, "max_schedules", &req.max_schedules) ||
      !int_field(*doc, "max_ii", &req.max_ii)) {
    parsed.error = "malformed integer field";
    return parsed;
  }
  if (doc->find("grid") != nullptr && grid < 1) {
    parsed.error = "grid dimensions out of range";
    return parsed;
  }
  if (grid > 0) {
    req.rows = grid;
    req.cols = grid;
  }
  if (req.rows < 1 || req.cols < 1 || req.rows > 1024 || req.cols > 1024) {
    parsed.error = "grid dimensions out of range";
    return parsed;
  }
  if (req.max_schedules < 0 || req.max_ii < 0) {
    parsed.error = "negative budget field";
    return parsed;
  }
  const std::string topo = doc->string_or("topology", "mesh");
  if (topo == "mesh") {
    req.topology = Topology::kMesh;
  } else if (topo == "torus") {
    req.topology = Topology::kTorus;
  } else if (topo == "diagonal") {
    req.topology = Topology::kDiagonal;
  } else {
    parsed.error = "unknown topology '" + topo + "'";
    return parsed;
  }
  req.deadline_s = doc->number_or("deadline_s", 0.0);
  if (!(req.deadline_s >= 0.0) || req.deadline_s > 1e9) {
    parsed.error = "malformed deadline_s";
    return parsed;
  }
  const json::Value* warm = doc->find("warm");
  if (warm != nullptr) {
    if (!warm->is_bool()) {
      parsed.error = "'warm' must be a bool";
      return parsed;
    }
    req.warm = warm->as_bool() ? 1 : 0;
  }
  const json::Value* memo = doc->find("memo");
  if (memo != nullptr) {
    if (!memo->is_bool()) {
      parsed.error = "'memo' must be a bool";
      return parsed;
    }
    req.memo = memo->as_bool() ? 1 : 0;
  }
  req.anytime = doc->bool_or("anytime", false);
  req.want_mapping = doc->bool_or("mapping", false);
  parsed.ok = true;
  return parsed;
}

}  // namespace monomap
