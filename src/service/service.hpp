// MappingService: the daemon's engine, usable in-process.
//
// One instance owns the shared KnowledgeStore, a WorkStealingPool of
// mapper workers, admission control and latency telemetry. handle_line()
// is the single entry point — the socket front-end (tools/monomap_serve)
// and the in-process load generator (bench_serve) and tests all feed
// request lines through it, so every path exercises the same code.
//
// Request lifecycle: parse -> admission (a bounded in-flight count; an
// overloaded service answers immediately with a `deadline` outcome and an
// "admission" cause instead of queueing unboundedly) -> a pool worker runs
// the mapper under the request's Deadline -> response. Reuse:
//
//   memo  — exact/isomorphic repeat with the same options fingerprint is
//           answered from the KnowledgeStore without any search;
//   warm  — the worker walks IIs via DecoupledMapper::map_warm with a
//           scratch CrossIiNogoodStore seeded from the KnowledgeStore
//           (certificates + sound refuted-II floor) and publishes what the
//           walk learned back for the next request.
//
// Failure containment: the `serve.request` fault-injection site fires at
// the top of every worker job; an injected fault (or any exception the
// mapper's own retries could not absorb) is classified onto the wire as a
// `fault` outcome and the service keeps serving. Malformed input is a
// protocol error response, never a crash.
#ifndef MONOMAP_SERVICE_SERVICE_HPP
#define MONOMAP_SERVICE_SERVICE_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mapper/decoupled_mapper.hpp"
#include "mapper/knowledge_store.hpp"
#include "service/protocol.hpp"
#include "support/parallel.hpp"

namespace monomap {

class MappingService {
 public:
  struct Options {
    /// Mapper worker threads (the socket front-end adds its own
    /// per-connection reader threads on top).
    int threads = 1;
    /// Admission bound: map requests in flight (queued + running) beyond
    /// this are rejected with a `deadline` outcome. <= 0 = unbounded.
    int queue_limit = 16;
    /// Deadline for requests that do not carry their own.
    double default_deadline_s = 30.0;
    /// Serve memo hits / warm-start walks unless the request opts out.
    bool memo = true;
    bool warm = true;
    /// KnowledgeStore sizing.
    std::size_t store_budget_mb = 64;
    std::size_t max_memo_entries = 4096;
    /// Base per-request mapper configuration; requests may override
    /// anytime/max_schedules/max_ii.
    DecoupledMapperOptions mapper;
  };

  struct StatsSnapshot {
    std::uint64_t requests = 0;
    std::uint64_t rejected = 0;
    std::uint64_t errors = 0;
    std::uint64_t faults = 0;
    /// Requests that began their walk warm (seeded certificates and/or a
    /// stored refuted-II floor).
    std::uint64_t warm_starts = 0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    KnowledgeStore::StatsSnapshot store;
  };

  MappingService();  // default Options
  explicit MappingService(Options options);
  ~MappingService();
  MappingService(const MappingService&) = delete;
  MappingService& operator=(const MappingService&) = delete;

  /// Handle one request line; returns the response JSON (no newline).
  /// Thread-safe; map requests block the calling thread until a worker
  /// finishes them (connection threads are the natural callers).
  std::string handle_line(const std::string& line);

  /// A shutdown verb was accepted; the front-end should stop accepting.
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  [[nodiscard]] StatsSnapshot stats() const;
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  std::string handle_map(const ServeRequest& req);
  std::string run_map_job(const ServeRequest& req);
  std::string render_stats(const std::string& id) const;
  void record_latency(double seconds);

  Options options_;
  KnowledgeStore store_;
  std::unique_ptr<WorkStealingPool> pool_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int> in_flight_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> faults_{0};
  std::atomic<std::uint64_t> warm_starts_{0};

  mutable std::mutex latency_m_;
  std::vector<double> latencies_s_;  // ring buffer
  std::size_t latency_next_ = 0;
  std::size_t latency_count_ = 0;
};

}  // namespace monomap

#endif  // MONOMAP_SERVICE_SERVICE_HPP
