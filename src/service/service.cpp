#include "service/service.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <utility>

#include "io/dfg_io.hpp"
#include "support/assert.hpp"
#include "support/fault.hpp"
#include "support/json.hpp"
#include "support/outcome.hpp"
#include "support/stopwatch.hpp"
#include "workloads/suite.hpp"

namespace monomap {
namespace {

constexpr std::size_t kLatencyWindow = 4096;

std::string num_field(const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6f", key, v);
  return buf;
}

std::string int_field(const char* key, long long v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%lld", key, v);
  return buf;
}

std::string error_response(const std::string& id, const std::string& what) {
  return "{\"id\":\"" + json::escape(id) + "\",\"ok\":false,\"error\":\"" +
         json::escape(what) + "\"}";
}

}  // namespace

MappingService::MappingService() : MappingService(Options{}) {}

MappingService::MappingService(Options options)
    : options_(std::move(options)),
      store_(KnowledgeStore::Options{options_.store_budget_mb,
                                     options_.max_memo_entries}),
      latencies_s_(kLatencyWindow, 0.0) {
  pool_ = std::make_unique<WorkStealingPool>(std::max(1, options_.threads));
}

MappingService::~MappingService() {
  // Drain in-flight jobs before the pool (and the store they use) die.
  (void)pool_->wait_idle_collect();
}

void MappingService::record_latency(double seconds) {
  const std::lock_guard<std::mutex> lock(latency_m_);
  latencies_s_[latency_next_] = seconds;
  latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  latency_count_ = std::min(latency_count_ + 1, kLatencyWindow);
}

std::string MappingService::handle_line(const std::string& line) {
  ParsedRequest parsed = parse_request(line);
  if (!parsed.ok) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return error_response(parsed.request.id, parsed.error);
  }
  const ServeRequest& req = parsed.request;
  switch (req.verb) {
    case ServeRequest::Verb::kStats:
      return render_stats(req.id);
    case ServeRequest::Verb::kShutdown:
      shutdown_.store(true, std::memory_order_release);
      return "{\"id\":\"" + json::escape(req.id) +
             "\",\"ok\":true,\"verb\":\"shutdown\"}";
    case ServeRequest::Verb::kMap:
      return handle_map(req);
  }
  return error_response(req.id, "unreachable verb");
}

std::string MappingService::handle_map(const ServeRequest& req) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Stopwatch watch;
  // Admission control: bound queued + running map requests. An overloaded
  // service answers NOW with the outcome an expired deadline would have
  // produced — the client's retry policy treats both the same — instead of
  // queueing into a latency cliff.
  const int limit = options_.queue_limit;
  if (limit > 0 &&
      in_flight_.fetch_add(1, std::memory_order_acq_rel) >= limit) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    record_latency(watch.elapsed_s());
    return "{\"id\":\"" + json::escape(req.id) +
           "\",\"ok\":false,\"outcome\":\"" +
           to_string(MapOutcome::kDeadline) +
           "\"," + int_field("exit_code", exit_code(MapOutcome::kDeadline)) +
           ",\"causes\":\"admission: queue full\",\"error\":\"admission "
           "queue full\"}";
  }
  if (limit <= 0) {
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
  }

  struct Job {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::string response;
  };
  auto job = std::make_shared<Job>();
  pool_->submit([this, job, req] {
    std::string response;
    try {
      response = run_map_job(req);
    } catch (const std::exception& e) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      response = error_response(req.id, e.what());
    } catch (...) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      response = error_response(req.id, "unknown worker failure");
    }
    {
      const std::lock_guard<std::mutex> lock(job->m);
      job->response = std::move(response);
      job->done = true;
    }
    job->cv.notify_all();
  });
  std::string response;
  {
    std::unique_lock<std::mutex> lock(job->m);
    job->cv.wait(lock, [&job] { return job->done; });
    response = std::move(job->response);
  }
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  record_latency(watch.elapsed_s());
  return response;
}

std::string MappingService::run_map_job(const ServeRequest& req) {
  Stopwatch watch;
  // The daemon-path fault site: fires before any real work so the ASan
  // sweep proves a failed request becomes a classified outcome on the
  // wire with the server still up.
  try {
    fault::maybe_inject("serve.request");
  } catch (const fault::FaultInjectedError& e) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    return "{\"id\":\"" + json::escape(req.id) +
           "\",\"ok\":false,\"outcome\":\"" +
           to_string(MapOutcome::kFault) + "\"," +
           int_field("exit_code", exit_code(MapOutcome::kFault)) +
           ",\"causes\":\"" + json::escape(e.site()) +
           ": injected fault\",\"error\":\"" + json::escape(e.what()) + "\"}";
  }

  // Materialise the problem. Malformed DFG text / unknown bench names
  // surface as AssertionError from the loaders — protocol errors, not
  // crashes.
  std::optional<Dfg> dfg;
  try {
    if (!req.bench.empty()) {
      dfg = benchmark_by_name(req.bench).dfg;
    } else {
      dfg = dfg_from_text(req.dfg_text);
    }
  } catch (const AssertionError& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return error_response(req.id, std::string("bad request: ") + e.what());
  }
  const CgraArch arch(req.rows, req.cols, req.topology);

  DecoupledMapperOptions opts = options_.mapper;
  opts.anytime = req.anytime;
  if (req.max_schedules > 0) opts.max_schedules = req.max_schedules;
  if (req.max_ii > 0) opts.time.max_ii = req.max_ii;
  const bool use_memo = req.memo == -1 ? options_.memo : req.memo != 0;
  const bool use_warm = req.warm == -1 ? options_.warm : req.warm != 0;
  const double deadline_s =
      req.deadline_s > 0.0 ? req.deadline_s : options_.default_deadline_s;

  const DfgFingerprint fp = fingerprint_dfg(*dfg);
  const std::uint64_t arch_fp = fingerprint_arch(arch);
  // Warm and cold walks may legitimately settle on different (equally
  // valid) answers, so they never share a memo slot.
  const std::uint64_t mode_salt = use_warm ? 0xbadc0ffee0ddf00dULL : 0;

  bool memo_hit = false;
  std::size_t seeded = 0;
  int floor = 0;
  MapResult result;
  std::optional<MapResult> cached;
  if (use_memo) {
    cached = store_.lookup(*dfg, arch, fp, arch_fp, opts, mode_salt);
  }
  if (cached.has_value()) {
    memo_hit = true;
    result = std::move(*cached);
  } else if (use_warm) {
    CrossIiNogoodStore scratch;
    floor = store_.refuted_floor(fp, arch_fp, opts);
    seeded = store_.seed(fp, arch_fp, opts, &scratch);
    if (seeded > 0 || floor > 0) {
      warm_starts_.fetch_add(1, std::memory_order_relaxed);
    }
    const Deadline deadline(deadline_s);
    result = DecoupledMapper(opts).map_warm(*dfg, arch, deadline, &scratch,
                                            floor);
    store_.publish(fp, arch_fp, opts, scratch, result.ii_refuted_up_to);
    if (use_memo) {
      store_.store(*dfg, fp, arch_fp, opts, result, mode_salt);
    }
  } else {
    const Deadline deadline(deadline_s);
    result = DecoupledMapper(opts).map(*dfg, arch, deadline);
    if (use_memo) {
      store_.store(*dfg, fp, arch_fp, opts, result, mode_salt);
    }
  }
  if (result.outcome == MapOutcome::kFault) {
    faults_.fetch_add(1, std::memory_order_relaxed);
  }

  std::string out = "{\"id\":\"" + json::escape(req.id) + "\",\"ok\":" +
                    (result.success ? "true" : "false") + ",\"outcome\":\"" +
                    to_string(result.outcome) + "\"," +
                    int_field("exit_code", exit_code(result.outcome)) + "," +
                    int_field("ii", result.ii) + "," +
                    int_field("mii", result.mii.mii()) + "," +
                    int_field("ii_lo", result.ii_lo) + "," +
                    int_field("ii_hi", result.ii_hi) + "," +
                    int_field("schedules_tried", result.schedules_tried) +
                    "," +
                    int_field("nogoods_lifted_cross_ii",
                              result.nogoods_lifted_cross_ii) +
                    "," +
                    int_field("speculative_hits", result.speculative_hits) +
                    ",\"degraded\":" + (result.degraded ? "true" : "false") +
                    ",\"memo_hit\":" + (memo_hit ? "true" : "false") +
                    ",\"warm\":" + (use_warm ? "true" : "false") + "," +
                    int_field("certs_seeded",
                              static_cast<long long>(seeded)) +
                    "," + int_field("floor", floor) + "," +
                    num_field("seconds", watch.elapsed_s());
  if (!result.causes.empty()) {
    out += ",\"causes\":\"" + json::escape(format_causes(result.causes)) +
           "\"";
  }
  if (!result.success && !result.failure_reason.empty()) {
    out += ",\"error\":\"" + json::escape(result.failure_reason) + "\"";
  }
  if (req.want_mapping && result.success) {
    out += ",\"mapping\":\"" +
           json::escape(mapping_to_text(*dfg, result.mapping)) + "\"";
  }
  out += "}";
  return out;
}

std::string MappingService::render_stats(const std::string& id) const {
  const StatsSnapshot s = stats();
  std::string out = "{\"id\":\"" + json::escape(id) +
                    "\",\"ok\":true,\"verb\":\"stats\"," +
                    int_field("requests", static_cast<long long>(s.requests)) +
                    "," +
                    int_field("rejected", static_cast<long long>(s.rejected)) +
                    "," +
                    int_field("errors", static_cast<long long>(s.errors)) +
                    "," +
                    int_field("faults", static_cast<long long>(s.faults)) +
                    "," +
                    int_field("warm_starts",
                              static_cast<long long>(s.warm_starts)) +
                    "," + num_field("p50_ms", s.p50_ms) + "," +
                    num_field("p99_ms", s.p99_ms) + "," +
                    int_field("memo_hits",
                              static_cast<long long>(s.store.memo_hits)) +
                    "," +
                    int_field("memo_misses",
                              static_cast<long long>(s.store.memo_misses)) +
                    "," +
                    int_field("memo_stores",
                              static_cast<long long>(s.store.memo_stores)) +
                    "," +
                    int_field("memo_evictions",
                              static_cast<long long>(s.store.memo_evictions)) +
                    "," +
                    int_field("certs_seeded",
                              static_cast<long long>(s.store.certs_seeded)) +
                    "," +
                    int_field(
                        "certs_published",
                        static_cast<long long>(s.store.certs_published)) +
                    "," +
                    int_field("floor_hits",
                              static_cast<long long>(s.store.floor_hits)) +
                    "," +
                    int_field("mem_bytes",
                              static_cast<long long>(s.store.bytes_used)) +
                    "," +
                    int_field("mem_peak_bytes",
                              static_cast<long long>(s.store.bytes_peak)) +
                    "," + int_field("threads", pool_->num_threads()) + "," +
                    int_field("queue_limit", options_.queue_limit) + "}";
  return out;
}

MappingService::StatsSnapshot MappingService::stats() const {
  StatsSnapshot s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.faults = faults_.load(std::memory_order_relaxed);
  s.warm_starts = warm_starts_.load(std::memory_order_relaxed);
  std::vector<double> window;
  {
    const std::lock_guard<std::mutex> lock(latency_m_);
    window.assign(latencies_s_.begin(),
                  latencies_s_.begin() +
                      static_cast<std::ptrdiff_t>(latency_count_));
  }
  if (!window.empty()) {
    std::sort(window.begin(), window.end());
    const auto pick = [&window](double q) {
      const std::size_t idx = std::min(
          window.size() - 1,
          static_cast<std::size_t>(q * static_cast<double>(window.size())));
      return window[idx] * 1000.0;
    };
    s.p50_ms = pick(0.50);
    s.p99_ms = pick(0.99);
  }
  s.store = store_.stats();
  return s;
}

}  // namespace monomap
