#include "space/monomorphism.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <memory>

#include "support/assert.hpp"
#include "support/fault.hpp"
#include "support/pe_set.hpp"
#include "support/resource.hpp"
#include "support/simd.hpp"

namespace monomap {

const char* to_string(SpaceOrder order) {
  switch (order) {
    case SpaceOrder::kDynamicMrv: return "dynamic-mrv";
    case SpaceOrder::kConnectivity: return "connectivity";
    case SpaceOrder::kDegree: return "degree";
    case SpaceOrder::kBfs: return "bfs";
    case SpaceOrder::kSparseMrv: return "sparse-mrv";
  }
  return "?";
}

const char* to_string(SpaceEngine engine) {
  switch (engine) {
    case SpaceEngine::kBitset: return "bitset";
    case SpaceEngine::kReference: return "reference";
  }
  return "?";
}

namespace {

// --- checks and orderings shared by both engines ---------------------------

bool check_labels(const Dfg& dfg, const CgraArch& arch,
                  const std::vector<int>& labels, int ii,
                  SpaceResult& result) {
  // Capacity per label layer must hold or no injective map exists.
  std::vector<int> count(static_cast<std::size_t>(ii), 0);
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    const int l = labels[static_cast<std::size_t>(v)];
    MONOMAP_ASSERT_MSG(l >= 0 && l < ii,
                       "label " << l << " outside [0," << ii << ")");
    if (++count[static_cast<std::size_t>(l)] > arch.num_pes()) {
      result.failure_reason =
          "label layer " + std::to_string(l) + " exceeds CGRA capacity";
      // Any |PEs|+1 nodes of the overfull layer are jointly unplaceable —
      // the narrowest possible conflict explanation.
      for (NodeId u = 0; u <= v; ++u) {
        if (labels[static_cast<std::size_t>(u)] == l) {
          result.conflict_nodes.push_back(u);
        }
      }
      return false;
    }
  }
  return true;
}

bool check_slot_adjacency(const Dfg& dfg, const std::vector<int>& labels,
                          int ii, SpaceResult& result) {
  // Consecutive-only MRRG: an edge is only mappable if its labels are
  // equal or cyclically consecutive.
  const Graph& g = dfg.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.src == edge.dst) continue;
    const int a = labels[static_cast<std::size_t>(edge.src)];
    const int b = labels[static_cast<std::size_t>(edge.dst)];
    const int d = (b - a + ii) % ii;
    if (!(d == 0 || d == 1 || d == ii - 1)) {
      result.failure_reason =
          "edge " + std::to_string(edge.src) + "->" +
          std::to_string(edge.dst) +
          " spans non-consecutive slots under kConsecutiveOnly";
      result.conflict_nodes = {std::min(edge.src, edge.dst),
                               std::max(edge.src, edge.dst)};
      return false;
    }
  }
  return true;
}

/// Whether this ordering recomputes its choice at every step (the dynamic
/// family); the rest use build_static_order below.
bool is_dynamic_order(SpaceOrder order) {
  return order == SpaceOrder::kDynamicMrv || order == SpaceOrder::kSparseMrv;
}

/// PE count at which kDynamicMrv auto-upgrades to the sparse-tuned ordering
/// (SpaceOptions::sparse_order_auto): 256 PEs = 4 words is where domains
/// outgrow the single-word regime and the dense heuristics stop paying.
/// Below it the upgrade never arms, keeping small-grid traces bit-identical
/// to the recorded baselines.
constexpr int kSparseOrderMinPes = 256;

/// Static variable order for kConnectivity / kDegree / kBfs.
std::vector<NodeId> build_static_order(
    const Dfg& dfg, const std::vector<std::vector<NodeId>>& neighbors,
    SpaceOrder order) {
  const int n = dfg.num_nodes();
  std::vector<NodeId> result;
  result.reserve(static_cast<std::size_t>(n));

  auto degree = [&](NodeId v) {
    return static_cast<int>(neighbors[static_cast<std::size_t>(v)].size());
  };

  if (order == SpaceOrder::kDegree) {
    for (NodeId v = 0; v < n; ++v) result.push_back(v);
    std::stable_sort(result.begin(), result.end(),
                     [&](NodeId a, NodeId b) { return degree(a) > degree(b); });
    return result;
  }

  // kConnectivity and kBfs both grow a frontier; kConnectivity picks the
  // most-connected-to-placed next, kBfs follows FIFO discovery order.
  std::vector<bool> placed(static_cast<std::size_t>(n), false);
  std::vector<int> mapped_neighbors(static_cast<std::size_t>(n), 0);
  for (int step = 0; step < n; ++step) {
    NodeId best = kInvalidNode;
    for (NodeId v = 0; v < n; ++v) {
      if (placed[static_cast<std::size_t>(v)]) continue;
      if (best == kInvalidNode) {
        best = v;
        continue;
      }
      const int mb = mapped_neighbors[static_cast<std::size_t>(best)];
      const int mv = mapped_neighbors[static_cast<std::size_t>(v)];
      if (order == SpaceOrder::kConnectivity) {
        if (mv > mb || (mv == mb && degree(v) > degree(best))) {
          best = v;
        }
      } else {  // kBfs: first discovered (any mapped neighbour) wins
        if (mb == 0 && mv > 0) {
          best = v;
        } else if ((mb > 0) == (mv > 0) && degree(v) > degree(best) &&
                   mb == 0) {
          best = v;
        }
      }
    }
    result.push_back(best);
    placed[static_cast<std::size_t>(best)] = true;
    for (const NodeId u : neighbors[static_cast<std::size_t>(best)]) {
      ++mapped_neighbors[static_cast<std::size_t>(u)];
    }
  }
  return result;
}

/// True if the 8-fold symmetry reduction applies to this architecture.
bool symmetry_applicable(const CgraArch& arch) {
  return arch.rows() == arch.cols() && arch.topology() != Topology::kTorus;
}

/// For the very first placement on an empty square grid, candidates may be
/// restricted to one symmetry octant (sound: any solution can be
/// reflected/rotated into one whose first node lies there).
bool in_canonical_octant(const CgraArch& arch, PeId p) {
  const int half = (arch.rows() + 1) / 2;
  const int r = arch.row_of(p);
  const int c = arch.col_of(p);
  return r < half && c < half && c >= r;
}

// --- bitset engine ---------------------------------------------------------

/// Bit-parallel domain-propagation search. One PeSet candidate domain per
/// DFG node; assigning node v to PE p narrows the domains of v's unassigned
/// neighbours (mask intersection with N[p]), of unassigned same-label nodes
/// (PE p's slot is now taken), and — with supplemental filtering — of
/// unassigned nodes at DFG distance 2 (intersection with the distance-2
/// ball around p). Every changed word is recorded on a trail, so
/// unassignment is an O(#changes) word-wise restore. A domain wiped to zero
/// anywhere triggers an immediate retreat.
///
/// Failure handling is conflict-directed (FC-CBJ in Prosser's sense): every
/// domain pruning records its culprit in a per-node pruner set, a wipeout
/// charges the wiped node's pruners to the current decision's conflict set,
/// and exhausting a decision's candidates jumps straight to the deepest
/// decision level present in the accumulated conflict set — the levels in
/// between provably cannot repair the failure. When the whole search
/// exhausts, the final conflict set is exactly the node subset the
/// refutation depended on, which run() exports as the conflict explanation.
/// A conflict set with no assigned node at all refutes its node subset
/// outright, so the search stops immediately — even mid-tree, even under a
/// backtrack budget.
///
/// All state (domains, trails, conflict sets, orders) is preallocated in
/// the constructor; the recursion itself never allocates.
class BitsetSearcher {
 public:
  BitsetSearcher(const Dfg& dfg, const CgraArch& arch,
                 const std::vector<int>& labels, int ii,
                 const SpaceOptions& options, const Deadline& deadline)
      : dfg_(dfg),
        arch_(arch),
        labels_(labels),
        ii_(ii),
        options_(options),
        deadline_(deadline),
        n_(dfg.num_nodes()),
        num_pes_(arch.num_pes()),
        neighbors_(static_cast<std::size_t>(n_)),
        nodes_by_label_(static_cast<std::size_t>(ii)),
        assignment_(static_cast<std::size_t>(n_), -1),
        mapped_neighbor_count_(static_cast<std::size_t>(n_), 0),
        level_of_(static_cast<std::size_t>(n_), -1),
        frontier_(n_),
        fail_set_(n_) {
    degree_of_.resize(static_cast<std::size_t>(n_));
    for (NodeId v = 0; v < n_; ++v) {
      neighbors_[static_cast<std::size_t>(v)] =
          dfg_.graph().undirected_neighbors(v);
      // Flat copy of the degrees: select_node's comparator reads them per
      // candidate pair, and the vector-of-vectors size() chase is
      // measurable there.
      degree_of_[static_cast<std::size_t>(v)] =
          static_cast<int>(neighbors_[static_cast<std::size_t>(v)].size());
      const int label = labels_[static_cast<std::size_t>(v)];
      if (label >= 0 && label < ii_) {  // check_labels asserts otherwise
        nodes_by_label_[static_cast<std::size_t>(label)].push_back(v);
      }
    }
    // Dancing-links views of the unassigned node set: ascending-id order
    // globally (select_node's scan) and nodes_by_label_ order per label
    // (the mono1 sweep). Both iterate exactly the nodes the old
    // scan-and-skip loops reached, in the same order, without touching
    // assigned nodes — unlink on assign, relink on undo, strict LIFO, so
    // a node's neighbours are intact when it relinks.
    un_next_.assign(static_cast<std::size_t>(n_) + 1, 0);
    un_prev_.assign(static_cast<std::size_t>(n_) + 1, 0);
    for (NodeId v = 0; v <= n_; ++v) {
      const NodeId nx = v == n_ ? 0 : v + 1;
      un_next_[static_cast<std::size_t>(v)] = nx;
      un_prev_[static_cast<std::size_t>(nx)] = v;
    }
    lab_next_.assign(static_cast<std::size_t>(n_ + ii_), 0);
    lab_prev_.assign(static_cast<std::size_t>(n_ + ii_), 0);
    for (int l = 0; l < ii_; ++l) {
      NodeId prev = n_ + l;  // per-label sentinel
      for (const NodeId u : nodes_by_label_[static_cast<std::size_t>(l)]) {
        lab_next_[static_cast<std::size_t>(prev)] = u;
        lab_prev_[static_cast<std::size_t>(u)] = prev;
        prev = u;
      }
      lab_next_[static_cast<std::size_t>(prev)] = n_ + l;
      lab_prev_[static_cast<std::size_t>(n_ + l)] = prev;
    }
    count_cache_.assign(static_cast<std::size_t>(n_), -1);
    domain_.reserve(static_cast<std::size_t>(n_));
    pruners_.reserve(static_cast<std::size_t>(n_));
    cs_stack_.reserve(static_cast<std::size_t>(n_));
    for (NodeId v = 0; v < n_; ++v) {
      domain_.push_back(PeSet::full(num_pes_));
      pruners_.push_back(PeSet(n_));
      cs_stack_.push_back(PeSet(n_));
    }
    words_ = (num_pes_ + PeSet::kWordBits - 1) / PeSet::kWordBits;
    node_words_ = (n_ + PeSet::kWordBits - 1) / PeSet::kWordBits;
    num_tiles_ = (words_ + PeSet::kTileWords - 1) / PeSet::kTileWords;
    // Cached once per search so a run is internally consistent even if the
    // global toggle flips concurrently (the bench flips it between runs).
    tile_skip_ = words_ >= PeSet::kDispatchWords &&
                 words_ <= PeSet::kMaxTrackedWords &&
                 simd::tile_skipping_enabled();
    // Same once-per-search pinning for the dispatch level: the tiled loops
    // below call kernels per 8-word tile, where re-resolving the dispatch
    // table each call costs as much as the kernel itself.
    hk_ = simd::hot_kernels();
    use_sparse_ = options_.order == SpaceOrder::kSparseMrv ||
                  (options_.order == SpaceOrder::kDynamicMrv &&
                   options_.sparse_order_auto &&
                   num_pes_ >= kSparseOrderMinPes);

    // Global value order: interior-first rank memoised on the arch (same
    // key and stability as the reference engine's candidate sort, so both
    // engines expand values in the same order; the per-searcher
    // stable_sort over num_pes was measurable on a 64x64 fabric). Without
    // interior_first the rank is the identity.
    if (options_.interior_first) {
      value_rank_ = arch_.interior_first_rank().data();
    } else {
      identity_rank_.resize(static_cast<std::size_t>(num_pes_));
      for (int i = 0; i < num_pes_; ++i) {
        identity_rank_[static_cast<std::size_t>(i)] = i;
      }
      value_rank_ = identity_rank_.data();
    }
    // One candidate buffer per depth: enumeration happens via the domain's
    // set bits (O(words + candidates)), not a scan over all PEs. The
    // storage is deliberately left uninitialised — search() always writes
    // a depth's slice from the domain before reading it, and zero-filling
    // n * num_pes ints is measurable against a whole small-kernel mapping
    // on a 64x64 fabric.
    cand_arena_.reset(new PeId[static_cast<std::size_t>(n_) *
                               static_cast<std::size_t>(num_pes_)]);
    if (options_.symmetry_breaking && symmetry_applicable(arch_)) {
      canonical_ = PeSet(num_pes_);
      for (PeId p = 0; p < num_pes_; ++p) {
        if (in_canonical_octant(arch_, p)) canonical_.set(p);
      }
    }
    if (!is_dynamic_order(options_.order)) {
      order_ = build_static_order(dfg_, neighbors_, options_.order);
    }
    if (options_.distance2_filter) {
      // Paths-of-length-2 adjacency of the labelled DFG: for every node a,
      // the nodes b at undirected distance exactly 2 with *all* their
      // common neighbours. The first witness drives the plain ball filter
      // (its existence is what makes the implied constraint valid on the
      // induced subproblem, so it joins the conflict explanation whenever
      // the pruning participates in a refutation); the size of the largest
      // same-label witness group is the pair's multiplicity, which the
      // multiplicity-aware filter turns into a sharper target mask.
      dist2_.resize(static_cast<std::size_t>(n_));
      PeSet seen(n_);
      std::vector<std::vector<NodeId>> wit(static_cast<std::size_t>(n_));
      std::vector<NodeId> partners;
      std::vector<char> mult_used;
      for (NodeId a = 0; a < n_; ++a) {
        seen.clear();
        seen.set(a);
        for (const NodeId w : neighbors_[static_cast<std::size_t>(a)]) {
          seen.set(w);
        }
        partners.clear();
        for (const NodeId w : neighbors_[static_cast<std::size_t>(a)]) {
          for (const NodeId b : neighbors_[static_cast<std::size_t>(w)]) {
            if (seen.test(b)) continue;  // a itself, or adjacent to a
            auto& wl = wit[static_cast<std::size_t>(b)];
            if (wl.empty()) partners.push_back(b);
            wl.push_back(w);
          }
        }
        for (const NodeId b : partners) {
          auto& wl = wit[static_cast<std::size_t>(b)];
          // Largest same-label witness group; ties break to the smallest
          // label so the pair (and the search trace) is deterministic.
          int best_label = -1;
          int best_count = 0;
          for (const NodeId w : wl) {
            const int l = labels_[static_cast<std::size_t>(w)];
            int c = 0;
            for (const NodeId x : wl) {
              c += labels_[static_cast<std::size_t>(x)] == l ? 1 : 0;
            }
            if (c > best_count ||
                (c == best_count && (best_label < 0 || l < best_label))) {
              best_count = c;
              best_label = l;
            }
          }
          D2Pair pair{b, wl[0], best_count, 0};
          if (best_count >= 2) {
            pair.wit_begin =
                static_cast<std::int32_t>(d2_witness_pool_.size());
            for (const NodeId w : wl) {
              if (labels_[static_cast<std::size_t>(w)] == best_label) {
                d2_witness_pool_.push_back(w);
              }
            }
            max_mult_ = std::max(max_mult_, best_count);
            if (static_cast<int>(mult_used.size()) <= best_count) {
              mult_used.resize(static_cast<std::size_t>(best_count) + 1, 0);
            }
            mult_used[static_cast<std::size_t>(best_count)] = 1;
          }
          dist2_[static_cast<std::size_t>(a)].push_back(pair);
          wl.clear();
        }
      }
      // Per-multiplicity target-mask tables, only for the multiplicities
      // this DFG actually contains (commonly none, or just k = 2). Probing
      // stays within each PE's distance-2 ball, so the build is O(PEs)
      // with a constant per-PE factor. Armed on multi-word fabrics only:
      // on <= 64 PEs the k-masks are barely sharper than the ball (border
      // effects dominate) while the extra pruner witnesses enlarge
      // conflict sets and measurably weaken backjumping — nw 4x4 pays
      // ~8% more backtracks — whereas 16x16 and up win 13-26% (see
      // SpaceOptions::distance2_multiplicity).
      use_mult_ = options_.distance2_multiplicity && max_mult_ >= 2 &&
                  num_pes_ > PeSet::kWordBits;
      if (use_mult_) {
        d2k_masks_.resize(static_cast<std::size_t>(max_mult_) + 1, nullptr);
        for (int k = 2; k <= max_mult_; ++k) {
          if (mult_used[static_cast<std::size_t>(k)] == 0) continue;
          d2k_masks_[static_cast<std::size_t>(k)] =
              &arch_.common_target_masks(k);
        }
      }
    }

    // Hard bound on live word-trail entries: per active depth and pruned
    // node, the same-label loop trails at most one word, and (untiled) the
    // node is touched by either the neighbour loop (<= words_) or the two
    // distance-2 filters (<= 2 * words_), never both; at most n_ depths
    // are active. With tile skipping armed the intersect paths never push
    // word entries at all — their changes go on the tile trail — leaving
    // only the one same-label word per (depth, node). Reserving the bound
    // up front is what keeps the recursion heap-silent — run() asserts it
    // was never exceeded.
    const std::size_t trail_cap =
        static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_) *
        static_cast<std::size_t>(tile_skip_ ? 1 : 2 * words_ + 1);
    // Tile-trail bound: per (depth, pruned node) the three intersects that
    // can touch it (neighbour mask, distance-2 ball, multiplicity mask)
    // each snapshot each occupied tile at most once.
    const std::size_t tile_cap =
        tile_skip_ ? static_cast<std::size_t>(n_) *
                         static_cast<std::size_t>(n_) * 3 *
                         static_cast<std::size_t>(num_tiles_)
                   : 0;
    // Pruner-set bound: per (depth, pruned node) the new bits are at most
    // the assigned culprit, the primary distance-2 witness, and one
    // same-label witness group.
    const std::size_t pruner_cap =
        static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_) *
        static_cast<std::size_t>(2 + std::max(max_mult_, 0));
    // The trails dominate the searcher's footprint and are reserved once,
    // so the governor is charged for the whole reservation up front. A
    // denied charge skips the reserves entirely; run() then aborts into a
    // memory outcome before the search starts.
    gov_ = GovernorScope::current();
    if (gov_ != nullptr) {
      const std::size_t bytes =
          (trail_cap + pruner_cap) * sizeof(TrailEntry) +
          tile_cap * sizeof(TileTrailEntry);
      if (gov_->try_charge(bytes)) {
        gov_charged_ = bytes;
      } else {
        gov_->trip("space trail reservation exceeded the memory budget");
        gov_denied_ = true;
        return;
      }
    }
    trail_.reserve(trail_cap);
    trail_reserved_ = trail_.capacity();
    tile_trail_.reserve(tile_cap);
    tile_trail_reserved_ = tile_trail_.capacity();
    pruner_trail_.reserve(pruner_cap);
    pruner_trail_reserved_ = pruner_trail_.capacity();
  }

  ~BitsetSearcher() {
    if (gov_ != nullptr) gov_->uncharge(gov_charged_);
  }

  SpaceResult run() {
    SpaceResult result;
    result.words_per_domain = words_;
    Stopwatch watch;
    if (gov_denied_) {
      // The constructor could not reserve the trails within the memory
      // budget: nothing was proven about the space.
      result.timed_out = true;
      result.memory_out = true;
      result.failure_reason = "space trail reservation exceeded the memory budget";
      result.seconds = watch.elapsed_s();
      return result;
    }
    if (!check_labels(dfg_, arch_, labels_, ii_, result)) {
      result.seconds = watch.elapsed_s();
      return result;
    }
    if (options_.model == MrrgModel::kConsecutiveOnly &&
        !check_slot_adjacency(dfg_, labels_, ii_, result)) {
      result.seconds = watch.elapsed_s();
      return result;
    }
    if (options_.distance2_filter &&
        !apply_root_degree_filter(result)) {
      result.seconds = watch.elapsed_s();
      return result;
    }
    result.shallowest_retreat = n_ + 1;
    result.found = n_ == 0 ? true : search(0, result);
    // The no-steady-state-allocation invariant: the preallocated trails
    // were never outgrown (a regrowth would mean a capacity bound is
    // wrong).
    MONOMAP_ASSERT(trail_.capacity() == trail_reserved_);
    MONOMAP_ASSERT(tile_trail_.capacity() == tile_trail_reserved_);
    MONOMAP_ASSERT(pruner_trail_.capacity() == pruner_trail_reserved_);
    result.trail_words_saved = trail_words_saved_ + trail_.size();
    for (const TileTrailEntry& e : tile_trail_) {
      result.trail_words_saved += static_cast<std::uint64_t>(
          std::min(PeSet::kTileWords, words_ - e.base));
    }
    result.multiplicity_prunings = mult_prunings_;
    result.tiles_skipped = tiles_skipped_;
    result.domain_bytes_touched = words_touched_ * sizeof(PeSet::Word);
    if (result.found) {
      result.pe = assignment_;
    } else if (result.failure_reason.empty()) {
      result.failure_reason = result.timed_out ? "search budget exhausted"
                                               : "search space exhausted";
      if (!result.timed_out) {
        // Complete refutation: the final conflict set names every node the
        // proof branched on or wiped out, plus every node whose placement
        // or existence pruned a domain the proof used — so the proof
        // stands on the induced subproblem of exactly these nodes (see
        // SpaceResult::conflict_nodes).
        fail_set_.for_each(
            [&](int u) { result.conflict_nodes.push_back(u); });
      }
    }
    result.seconds = watch.elapsed_s();
    return result;
  }

 private:
  struct TrailEntry {
    NodeId node;
    std::int32_t word;
    PeSet::Word old_bits;
  };

  /// Tile-granular trail entry: a snapshot of one whole cache-line tile,
  /// taken by the tiled intersect path just before its bulk AND (or wipe).
  /// One entry replaces up to kTileWords dirty-word TrailEntry pushes and
  /// restores as a straight copy, so both sides of the trade are
  /// branch-free; tiles the preview proves untouched are never snapshot.
  /// Only ever pushed when tile_skip_ is armed.
  struct TileTrailEntry {
    NodeId node;
    std::int32_t base;  // first word of the tile
    PeSet::Word old_bits[PeSet::kTileWords];
  };

  /// Snapshot one tile of domain_[u] onto the tile trail. Callers only
  /// snapshot tiles the preview (or the all_zero probe) proved are about
  /// to change, so every snapshot holds at least one nonzero word — which
  /// is what lets undo's restore_words re-mark the tile occupied
  /// unconditionally.
  void push_tile(NodeId u, int base, int n, const PeSet& d) {
    tile_trail_.emplace_back();
    TileTrailEntry& e = tile_trail_.back();
    e.node = u;
    e.base = base;
    std::memcpy(e.old_bits, d.words().data() + base,
                static_cast<std::size_t>(n) * sizeof(PeSet::Word));
  }

  /// A node at undirected DFG distance exactly 2, with its common-neighbour
  /// evidence. `witness` is the first-discovered common neighbour (drives
  /// the plain ball filter); `mult` is the size of the largest same-label
  /// common-neighbour group, and when mult >= 2 that group lives at
  /// d2_witness_pool_[wit_begin, wit_begin + mult).
  struct D2Pair {
    NodeId partner;
    NodeId witness;
    std::int32_t mult;
    std::int32_t wit_begin;
  };

  enum class Change { kUnchanged, kChanged, kWiped };

  [[nodiscard]] bool assigned(NodeId v) const {
    return assignment_[static_cast<std::size_t>(v)] >= 0;
  }

  /// domain_[u] &= mask, trailing every change. Multi-word domains use a
  /// vectorised non-mutating preview: the dirty bitmask names exactly the
  /// words `&=` would change, and untouched words are never stored back.
  /// Untiled, each dirty word is trailed and rewritten individually (in
  /// ascending order, so the trail layout is identical at every SIMD
  /// level). With tile skipping the preview runs per occupied cache-line
  /// tile of the domain — tiles the occupancy map proves empty hold no
  /// candidates and contribute nothing — and the trail snapshots at tile
  /// granularity: one whole-tile copy, then a branch-free bulk AND,
  /// instead of the per-dirty-word loop. Tiles the *mask* proves empty are
  /// snapshot and wiped without loading the mask. Either way a tile whose
  /// intersection comes out all-zero is dropped from the domain's
  /// occupancy map, which is how domains narrow to a few lines as the
  /// search deepens. The search trace (return values, decisions, every
  /// counter except the trail/byte/tile telemetry) is identical across
  /// layouts, and fully bit-identical across SIMD levels within a layout
  /// (the preview and the occupancy map are level-independent); only the
  /// trail representation and the cache lines touched differ between
  /// layouts.
  Change intersect_domain(NodeId u, const PeSet& mask) {
    PeSet& d = domain_[static_cast<std::size_t>(u)];
    PeSet::Word any = 0;
    bool changed = false;
    if (tile_skip_) {
      const PeSet::Word occ = d.tile_occupancy();
      tiles_skipped_ +=
          static_cast<std::uint64_t>(num_tiles_ - std::popcount(occ));
      const PeSet::Word mocc = mask.tile_occupancy();
      for (PeSet::Word rest = occ; rest != 0; rest &= rest - 1) {
        const int t = std::countr_zero(rest);
        const int base = t * PeSet::kTileWords;
        const int n = std::min(PeSet::kTileWords, words_ - base);
        words_touched_ += static_cast<std::uint64_t>(n);
        if (((mocc >> t) & 1) == 0) {
          // The mask is empty on this whole tile: every surviving domain
          // word dies. Snapshot-and-wipe, unless the occupancy bit was
          // stale and the tile is already clear.
          if (!hk_.all_zero(d.words().data() + base,
                            static_cast<std::size_t>(n))) {
            push_tile(u, base, n, d);
            d.zero_words(base, n);
            changed = true;
          }
          d.mark_tile_empty(t);
          continue;
        }
        const simd::AndPreview pv =
            hk_.and_preview(d.words().data() + base,
                            mask.words().data() + base,
                            static_cast<std::size_t>(n));
        any |= pv.any;
        if (pv.dirty != 0) {
          push_tile(u, base, n, d);
          d.and_words(mask, base, n);
          changed = true;
        }
        if (pv.any == 0) d.mark_tile_empty(t);
      }
    } else if (words_ >= PeSet::kDispatchWords) {
      words_touched_ += static_cast<std::uint64_t>(words_);
      for (int base = 0; base < words_; base += 64) {
        const int n = std::min(64, words_ - base);
        const simd::AndPreview pv = d.intersect_preview(mask, base, n);
        any |= pv.any;
        for (PeSet::Word dirty = pv.dirty; dirty != 0; dirty &= dirty - 1) {
          const int w = base + std::countr_zero(dirty);
          const PeSet::Word old = d.word(w);
          trail_.push_back(TrailEntry{u, w, old});
          d.restore_word(w, old & mask.word(w));
          changed = true;
        }
      }
    } else {
      words_touched_ += static_cast<std::uint64_t>(words_);
      for (int w = 0; w < words_; ++w) {
        const PeSet::Word old = d.word(w);
        const PeSet::Word next = old & mask.word(w);
        if (next != old) {
          trail_.push_back(TrailEntry{u, w, old});
          d.restore_word(w, next);
          changed = true;
        }
        any |= next;
      }
    }
    if (changed) count_cache_[static_cast<std::size_t>(u)] = -1;
    if (any == 0) return Change::kWiped;
    return changed ? Change::kChanged : Change::kUnchanged;
  }

  /// domain_[u] -= {p}, trailing the change.
  Change remove_from_domain(NodeId u, PeId p) {
    PeSet& d = domain_[static_cast<std::size_t>(u)];
    ++words_touched_;
    const int w = p / PeSet::kWordBits;
    const PeSet::Word bit = PeSet::Word{1} << (p % PeSet::kWordBits);
    const PeSet::Word old = d.word(w);
    // No-op removal: the domain is unchanged, and domains of unassigned
    // nodes are non-empty by invariant — skip the emptiness scan.
    if ((old & bit) == 0) return Change::kUnchanged;
    trail_.push_back(TrailEntry{u, w, old});
    d.restore_word(w, old & ~bit);
    // Exactly one set bit left the domain: an exact decrement keeps the
    // count memo warm through the whole mono1 sweep instead of forcing a
    // recount per touched node.
    int& cc = count_cache_[static_cast<std::size_t>(u)];
    if (cc >= 0) --cc;
    // A one-bit removal can only wipe the domain if its own word just went
    // to zero; every other word is untouched, so the common case skips the
    // whole-set emptiness scan (millions of calls per mono1 sweep).
    if ((old & ~bit) != 0) return Change::kChanged;
    return d.empty() ? Change::kWiped : Change::kChanged;
  }

  /// Record `culprit` as responsible for a pruning of u's current domain
  /// (trailed, so the record dies with the pruning it explains).
  void add_pruner(NodeId u, NodeId culprit) {
    PeSet& ps = pruners_[static_cast<std::size_t>(u)];
    const int w = culprit / PeSet::kWordBits;
    const PeSet::Word bit = PeSet::Word{1} << (culprit % PeSet::kWordBits);
    const PeSet::Word old = ps.word(w);
    if ((old & bit) != 0) return;
    pruner_trail_.push_back(TrailEntry{u, w, old});
    ps.set_word(w, old | bit);
  }

  /// Root-level supplemental filter: every same-label subset of
  /// N(v) ∪ {v} must occupy distinct PEs inside N[phi(v)] (neighbours land
  /// there by mono3, v trivially, equal labels force distinct PEs by
  /// mono1) — so phi(v)'s closed neighbourhood must be at least that
  /// large. Prunes hub nodes off corner and edge PEs before the search
  /// starts. Prunings are permanent (never trailed) and record the
  /// maximising same-label witness set in pruners_[v] so conflict
  /// explanations that rest on them stay sound. Returns false when some
  /// domain is already wiped out, filling in the refutation.
  bool apply_root_degree_filter(SpaceResult& result) {
    std::vector<int> per_label(static_cast<std::size_t>(ii_), 0);
    for (NodeId v = 0; v < n_; ++v) {
      int need = 0;
      int need_label = -1;
      auto bump = [&](NodeId u) {
        const int l = labels_[static_cast<std::size_t>(u)];
        if (++per_label[static_cast<std::size_t>(l)] > need) {
          need = per_label[static_cast<std::size_t>(l)];
          need_label = l;
        }
      };
      bump(v);
      for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) bump(u);
      per_label[static_cast<std::size_t>(labels_[
          static_cast<std::size_t>(v)])] = 0;
      for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
        per_label[static_cast<std::size_t>(labels_[
            static_cast<std::size_t>(u)])] = 0;
      }
      if (need <= 1) continue;
      PeSet& d = domain_[static_cast<std::size_t>(v)];
      const PeSet& mask = arch_.min_closed_degree_mask(need);
      if (d.is_subset_of(mask)) continue;
      d &= mask;
      for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
        if (labels_[static_cast<std::size_t>(u)] == need_label) {
          pruners_[static_cast<std::size_t>(v)].set(u);
        }
      }
      if (d.empty()) {
        result.failure_reason =
            "node " + std::to_string(v) +
            " needs a closed neighbourhood larger than any PE offers";
        result.conflict_nodes.push_back(v);
        for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
          if (labels_[static_cast<std::size_t>(u)] == need_label && u != v) {
            result.conflict_nodes.push_back(u);
          }
        }
        std::sort(result.conflict_nodes.begin(),
                  result.conflict_nodes.end());
        return false;
      }
    }
    return true;
  }

  /// Propagate the consequences of assignment v -> p into every unassigned
  /// domain, recording v (and, for distance-2 prunings, the path witness)
  /// as the culprit of every change. Returns the wiped-out node, or
  /// kInvalidNode on success.
  NodeId propagate_assign(NodeId v, PeId p) {
    // Frontier bookkeeping first, unconditionally: undo_assign always
    // decrements every neighbour, so the increments must not be skipped by
    // an early wipeout return below.
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      if (++mapped_neighbor_count_[static_cast<std::size_t>(u)] == 1 &&
          !assigned(u)) {
        frontier_.set(u);
      }
    }
    const int label = labels_[static_cast<std::size_t>(v)];
    // PE p's slot at v's label is now occupied (mono1). The list walk
    // visits exactly the unassigned same-label nodes, in nodes_by_label_
    // order (v itself was unlinked before this propagation).
    const NodeId lsent = n_ + label;
    for (NodeId u = lab_next_[static_cast<std::size_t>(lsent)]; u != lsent;
         u = lab_next_[static_cast<std::size_t>(u)]) {
      const Change c = remove_from_domain(u, p);
      if (c != Change::kUnchanged) add_pruner(u, v);
      if (c == Change::kWiped) return u;
    }
    // Unassigned neighbours must land in N[p] (mono3); a same-label
    // neighbour additionally lost p itself above.
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      if (assigned(u)) continue;
      const Change c = intersect_domain(u, arch_.closed_neighbor_mask(p));
      if (c != Change::kUnchanged) add_pruner(u, v);
      if (c == Change::kWiped) return u;
    }
    // Supplemental distance-2 constraint: a DFG path v-w-u forces phi(u)
    // within two grid hops of p. The witness w joins u's pruners because
    // the implied constraint only holds on subproblems that contain w.
    if (options_.distance2_filter) {
      const PeSet& ball = arch_.distance2_mask(p);
      for (const D2Pair& pr : dist2_[static_cast<std::size_t>(v)]) {
        const NodeId u = pr.partner;
        if (assigned(u)) continue;
        // An assigned witness already propagated the tighter constraint:
        // domain(u) ⊆ N[phi(w)] ⊆ ball — the intersection is a no-op.
        if (!assigned(pr.witness)) {
          const Change c = intersect_domain(u, ball);
          if (c != Change::kUnchanged) {
            add_pruner(u, v);
            add_pruner(u, pr.witness);
          }
          if (c == Change::kWiped) return u;
        }
        // Multiplicity sharpening: pr.mult same-label common neighbours of
        // v and u need pr.mult distinct PEs inside N[p] ∩ N[phi(u)], so
        // phi(u) is confined to common_target_mask(p, pr.mult). All mult
        // witnesses join u's pruners — the implied constraint (and thus
        // any refutation resting on this pruning) needs the whole group in
        // the induced subproblem.
        if (use_mult_ && pr.mult >= 2) {
          const Change c = intersect_domain(
              u, (*d2k_masks_[static_cast<std::size_t>(pr.mult)])
                     [static_cast<std::size_t>(p)]);
          if (c != Change::kUnchanged) {
            ++mult_prunings_;
            add_pruner(u, v);
            for (std::int32_t i = pr.wit_begin;
                 i < pr.wit_begin + pr.mult; ++i) {
              add_pruner(u, d2_witness_pool_[static_cast<std::size_t>(i)]);
            }
          }
          if (c == Change::kWiped) return u;
        }
      }
    }
    return kInvalidNode;
  }

  void unlink_node(NodeId v) {
    un_next_[static_cast<std::size_t>(un_prev_[static_cast<std::size_t>(v)])] =
        un_next_[static_cast<std::size_t>(v)];
    un_prev_[static_cast<std::size_t>(un_next_[static_cast<std::size_t>(v)])] =
        un_prev_[static_cast<std::size_t>(v)];
    lab_next_[static_cast<std::size_t>(
        lab_prev_[static_cast<std::size_t>(v)])] =
        lab_next_[static_cast<std::size_t>(v)];
    lab_prev_[static_cast<std::size_t>(
        lab_next_[static_cast<std::size_t>(v)])] =
        lab_prev_[static_cast<std::size_t>(v)];
  }

  void relink_node(NodeId v) {
    un_next_[static_cast<std::size_t>(un_prev_[static_cast<std::size_t>(v)])] =
        v;
    un_prev_[static_cast<std::size_t>(un_next_[static_cast<std::size_t>(v)])] =
        v;
    lab_next_[static_cast<std::size_t>(
        lab_prev_[static_cast<std::size_t>(v)])] = v;
    lab_prev_[static_cast<std::size_t>(
        lab_next_[static_cast<std::size_t>(v)])] = v;
  }

  void undo_assign(NodeId v, std::size_t mark, std::size_t pruner_mark,
                   std::size_t tile_mark) {
    // Tile trail first, then word trail: within one undo scope the only
    // word entries pushed alongside tile entries are the same-label
    // removals, which run before the intersects that snapshot tiles — so
    // the chronologically older word values must be applied last to win.
    for (std::size_t i = tile_trail_.size(); i > tile_mark; --i) {
      const TileTrailEntry& e = tile_trail_[i - 1];
      const int n = std::min(PeSet::kTileWords, words_ - e.base);
      trail_words_saved_ += static_cast<std::uint64_t>(n);
      count_cache_[static_cast<std::size_t>(e.node)] = -1;
      domain_[static_cast<std::size_t>(e.node)].restore_words(e.base, n,
                                                              e.old_bits);
    }
    tile_trail_.resize(tile_mark);
    // restore_word, not set_word: every old_bits value was read out of the
    // set it goes back into, so the tail-mask re-check would be pure
    // overhead on the hottest loop in the engine.
    trail_words_saved_ += trail_.size() - mark;
    for (std::size_t i = trail_.size(); i > mark; --i) {
      const TrailEntry& e = trail_[i - 1];
      count_cache_[static_cast<std::size_t>(e.node)] = -1;
      domain_[static_cast<std::size_t>(e.node)].restore_word(e.word,
                                                             e.old_bits);
    }
    trail_.resize(mark);
    for (std::size_t i = pruner_trail_.size(); i > pruner_mark; --i) {
      const TrailEntry& e = pruner_trail_[i - 1];
      pruners_[static_cast<std::size_t>(e.node)].restore_word(e.word,
                                                              e.old_bits);
    }
    pruner_trail_.resize(pruner_mark);
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      // An assigned u's bit is already clear; resetting it is harmless.
      if (--mapped_neighbor_count_[static_cast<std::size_t>(u)] == 0) {
        frontier_.reset(u);
      }
    }
    relink_node(v);
    assignment_[static_cast<std::size_t>(v)] = -1;
    // v's own mapped-neighbour count was untouched by this undo, so its
    // frontier membership is exactly count > 0 again.
    if (mapped_neighbor_count_[static_cast<std::size_t>(v)] > 0) {
      frontier_.set(v);
    }
  }

  /// Next node to branch on. Static orders read order_; dynamic MRV picks
  /// the unassigned node with the smallest domain (popcount), preferring
  /// frontier nodes, breaking ties by higher degree. The sparse variant
  /// (use_sparse_) weighs domain size against degree instead — minimising
  /// |domain(v)| / (deg(v) + 1), the classic dom/deg rule — because on a
  /// giant fabric every frontier domain collapses to a similar-sized
  /// neighbourhood ball and plain MRV degenerates to
  /// discovery order; the degree weighting branches on hub nodes first,
  /// whose placement prunes the most. Any selection rule is complete.
  /// domain.count() with the dispatch hoisted (see hk_): popcount only the
  /// occupied tiles. Exact — identical to PeSet::count() — this is purely
  /// the per-call table-resolution cost pulled out of select_node's loop.
  int domain_count(const PeSet& d) const {
    if (!tile_skip_) return d.count();
    int c = 0;
    for (PeSet::Word rest = d.tile_occupancy(); rest != 0; rest &= rest - 1) {
      const int t = std::countr_zero(rest);
      const int base = t * PeSet::kTileWords;
      const int n = std::min(PeSet::kTileWords, words_ - base);
      c += hk_.count(d.words().data() + base, static_cast<std::size_t>(n));
    }
    return c;
  }

  /// domain_count with a per-node memo. select_node rescans every
  /// unassigned node each expansion, but a propagation only narrows the
  /// assigned node's neighbourhood — every other domain still holds the
  /// count computed last time. The memo is exact (invalidated on every
  /// domain mutation and undo, decremented in place by mono1's single-bit
  /// removals), so MRV decisions and search traces are unchanged; only the
  /// repeated full-span popcounts over untouched domains disappear.
  int cached_domain_count(NodeId v) const {
    int& c = count_cache_[static_cast<std::size_t>(v)];
    if (c < 0) c = domain_count(domain_[static_cast<std::size_t>(v)]);
    return c;
  }

  NodeId select_node(std::size_t depth) const {
    if (!is_dynamic_order(options_.order)) {
      return order_[depth];
    }
    const auto deg = [&](NodeId x) {
      return static_cast<std::uint64_t>(
          degree_of_[static_cast<std::size_t>(x)]);
    };
    NodeId best = kInvalidNode;
    int best_count = 0;
    const auto consider = [&](NodeId v) {
      const int count = cached_domain_count(v);
      bool better;
      if (best == kInvalidNode) {
        better = true;
      } else if (use_sparse_) {
        // count / (deg + 1) compared cross-multiplied, exact in integers.
        const std::uint64_t sv =
            static_cast<std::uint64_t>(count) * (deg(best) + 1);
        const std::uint64_t sb =
            static_cast<std::uint64_t>(best_count) * (deg(v) + 1);
        better = sv < sb || (sv == sb && deg(v) > deg(best));
      } else {
        better = count < best_count ||
                 (count == best_count && deg(v) > deg(best));
      }
      if (better) {
        best = v;
        best_count = count;
      }
    };
    // Frontier preference: any node with a placed neighbour beats every
    // node without one, so when the frontier set is non-empty only its
    // members can win. Iterating its bits ascending visits exactly the
    // frontier subsequence of the old full unassigned scan, so ties (and
    // therefore traces) resolve identically — without walking the
    // hundreds of untouched interior nodes a big patch keeps unassigned.
    if (!frontier_.empty()) {
      frontier_.for_each([&](int v) { consider(static_cast<NodeId>(v)); });
    } else {
      for (NodeId v = un_next_[static_cast<std::size_t>(n_)]; v != n_;
           v = un_next_[static_cast<std::size_t>(v)]) {
        consider(v);
      }
    }
    return best;
  }

  bool search(std::size_t depth, SpaceResult& result) {
    if (depth == static_cast<std::size_t>(n_)) return true;
    ++result.nodes_expanded;
    if (static_cast<int>(depth) + 1 > result.max_depth) {
      result.max_depth = static_cast<int>(depth) + 1;
    }
    if ((result.nodes_expanded & 0xFFF) == 0) {
      if (deadline_.expired()) {
        result.timed_out = true;
        result.deadline_expired = true;
        fail_level_ = -1;
        return false;
      }
      // Watchdog: some subsystem tripped the shared governor — abort this
      // walk into the same classified memory outcome.
      if (gov_ != nullptr && gov_->tripped()) {
        result.timed_out = true;
        result.memory_out = true;
        fail_level_ = -1;
        return false;
      }
    }
    if (options_.max_backtracks != 0 &&
        result.backtracks > options_.max_backtracks) {
      result.timed_out = true;
      result.truncated = true;
      fail_level_ = -1;
      return false;
    }
    const NodeId v = select_node(depth);
    MONOMAP_ASSERT(v != kInvalidNode);
    level_of_[static_cast<std::size_t>(v)] = static_cast<int>(depth);
    // This decision's conflict set: v itself, plus everything that shaped
    // v's candidate list (the refutation below enumerates exactly the
    // unpruned candidates, so whoever pruned the rest is part of the
    // proof).
    PeSet& cs = cs_stack_[depth];
    cs.clear();
    cs.set(v);
    cs |= pruners_[static_cast<std::size_t>(v)];
    // First placement: restrict to the canonical octant unless that empties
    // the candidate set (mirrors the reference engine exactly).
    const bool canonical_only = depth == 0 && canonical_.capacity() > 0 &&
                                domain_[static_cast<std::size_t>(v)]
                                    .intersects(canonical_);
    // Snapshot the domain's candidates into this depth's buffer and order
    // them by the global value order (ranks are unique, so this reproduces
    // filtering value_order_ by the domain, without scanning all PEs).
    PeId* cands = cand_arena_.get() +
                  static_cast<std::size_t>(depth) *
                      static_cast<std::size_t>(num_pes_);
    int num_cands = 0;
    domain_[static_cast<std::size_t>(v)].for_each([&](int p) {
      if (canonical_only && !canonical_.test(p)) return;
      cands[num_cands++] = static_cast<PeId>(p);
    });
    // Sparse value ordering: once v has a placed neighbour, its domain is
    // (a subset of) that neighbour's ball — try candidates center-out by
    // grid distance to the anchor placement instead of the global
    // interior-first rank, so early branches stay compact and the trailing
    // far-corner candidates (the ones most likely to fail on the *next*
    // node's ball intersection) come last. Deterministic: ties fall back
    // to the unique global rank. Any value order is complete.
    PeId sparse_anchor = -1;
    if (use_sparse_) {
      for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
        if (assigned(u)) {
          sparse_anchor = assignment_[static_cast<std::size_t>(u)];
          break;
        }
      }
    }
    if (sparse_anchor >= 0) {
      std::sort(cands, cands + num_cands, [&](PeId a, PeId b) {
        const int da = arch_.grid_distance(a, sparse_anchor);
        const int db = arch_.grid_distance(b, sparse_anchor);
        if (da != db) return da < db;
        return value_rank_[static_cast<std::size_t>(a)] <
               value_rank_[static_cast<std::size_t>(b)];
      });
    } else {
      std::sort(cands, cands + num_cands, [&](PeId a, PeId b) {
        return value_rank_[static_cast<std::size_t>(a)] <
               value_rank_[static_cast<std::size_t>(b)];
      });
    }
    for (int ci = 0; ci < num_cands; ++ci) {
      const PeId p = cands[ci];
      const std::size_t mark = trail_.size();
      const std::size_t pruner_mark = pruner_trail_.size();
      const std::size_t tile_mark = tile_trail_.size();
      assignment_[static_cast<std::size_t>(v)] = p;
      unlink_node(v);
      frontier_.reset(v);
      const NodeId wiped = propagate_assign(v, p);
      if (wiped == kInvalidNode) {
        if (search(depth + 1, result)) return true;
        if (result.timed_out) {
          undo_assign(v, mark, pruner_mark, tile_mark);
          level_of_[static_cast<std::size_t>(v)] = -1;
          return false;
        }
        if (fail_level_ < static_cast<int>(depth)) {
          // The failure below rests only on decisions above this one
          // (fail_set_ names no node assigned here or deeper): no other
          // value of v can repair it. Skip the remaining candidates and
          // deliver fail_set_ unchanged to the culprit level.
          undo_assign(v, mark, pruner_mark, tile_mark);
          level_of_[static_cast<std::size_t>(v)] = -1;
          return false;
        }
        // fail_level_ == depth: this decision is the deepest culprit.
        // Absorb the sub-refutation and try the next value.
        cs |= fail_set_;
      } else {
        // Immediate wipeout: charge the wiped node and whatever pruned its
        // domain (which includes v via propagate_assign).
        cs |= pruners_[static_cast<std::size_t>(wiped)];
        cs.set(wiped);
      }
      undo_assign(v, mark, pruner_mark, tile_mark);
      ++result.backtracks;
    }
    // Every candidate failed. Jump to the deepest decision level the
    // conflict set names; levels in between cannot repair the failure. No
    // assigned node in the set at all means the refutation is
    // self-contained — the search as a whole is over, and cs is a sound
    // certificate even if a budget would have truncated the full tree.
    level_of_[static_cast<std::size_t>(v)] = -1;
    int target = -1;
    if (options_.backjumping) {
      cs.for_each([&](int u) {
        target = std::max(target, level_of_[static_cast<std::size_t>(u)]);
      });
    } else {
      target = static_cast<int>(depth) - 1;
    }
    if (target < static_cast<int>(depth) - 1) ++result.backjumps;
    if (target < result.shallowest_retreat) {
      result.shallowest_retreat = target;
    }
    for (int w = 0; w < node_words_; ++w) {
      fail_set_.restore_word(w, cs.word(w));
    }
    fail_level_ = target;
    return false;
  }

  const Dfg& dfg_;
  const CgraArch& arch_;
  const std::vector<int>& labels_;
  int ii_;
  SpaceOptions options_;
  const Deadline& deadline_;
  int n_;
  int num_pes_;
  int words_ = 0;       // words per PE set
  int node_words_ = 0;  // words per node set
  std::vector<std::vector<NodeId>> neighbors_;
  std::vector<std::vector<NodeId>> nodes_by_label_;
  /// Per node: every node at undirected DFG distance exactly 2, with the
  /// first-discovered witness and the same-label multiplicity evidence.
  std::vector<std::vector<D2Pair>> dist2_;
  /// Backing store for the D2Pair same-label witness groups (mult >= 2).
  std::vector<NodeId> d2_witness_pool_;
  /// (*d2k_masks_[k])[p] == arch_.common_target_mask(p, k); fetched from
  /// the arch's memo only for the multiplicities k >= 2 this DFG contains,
  /// when use_mult_ (nullptr for absent levels).
  std::vector<const std::vector<PeSet>*> d2k_masks_;
  int max_mult_ = 0;      // largest same-label witness-group size seen
  bool use_mult_ = false; // multiplicity filter armed (toggle && mult >= 2)
  int num_tiles_ = 0;     // occupancy tiles per domain
  bool tile_skip_ = false;   // tile skipping armed for this run
  simd::HotKernels hk_{};    // dispatch hoisted out of the per-tile loops
  bool use_sparse_ = false;  // sparse ordering armed (kSparseMrv, or auto)
  std::uint64_t mult_prunings_ = 0;
  std::uint64_t trail_words_saved_ = 0;
  std::uint64_t tiles_skipped_ = 0;   // tiles occupancy let us skip
  std::uint64_t words_touched_ = 0;   // domain words propagation touched
  std::vector<PeId> assignment_;
  std::vector<int> mapped_neighbor_count_;
  std::vector<int> degree_of_;     // |undirected_neighbors(v)|, flattened
  std::vector<int> level_of_;      // decision level per node; -1 unassigned
  // Unassigned nodes with >= 1 placed neighbour (mapped_neighbor_count_
  // > 0), maintained on assign/undo. select_node iterates this instead of
  // the whole unassigned list whenever it is non-empty.
  PeSet frontier_;
  // Unassigned-node lists (dancing links; see ctor). un_* is the global
  // ascending-id list with its sentinel at index n_; lab_* chains each
  // label's nodes_by_label_ order with per-label sentinels at n_ + label.
  std::vector<NodeId> un_next_;
  std::vector<NodeId> un_prev_;
  std::vector<NodeId> lab_next_;
  std::vector<NodeId> lab_prev_;
  std::vector<PeSet> domain_;
  // Exact per-node |domain| memo for select_node (-1 = stale; see
  // cached_domain_count). mutable: reads recompute lazily from const paths.
  mutable std::vector<int> count_cache_;
  std::vector<PeSet> pruners_;     // per node: who pruned its domain
  std::vector<PeSet> cs_stack_;    // conflict set per decision level
  PeSet fail_set_;                 // conflict set of the failure in flight
  int fail_level_ = -1;            // level that failure resumes at
  std::vector<TrailEntry> trail_;
  std::size_t trail_reserved_ = 0;
  std::vector<TileTrailEntry> tile_trail_;  // tiled-layout undo snapshots
  std::size_t tile_trail_reserved_ = 0;
  std::vector<TrailEntry> pruner_trail_;
  std::size_t pruner_trail_reserved_ = 0;
  ResourceGovernor* gov_ = nullptr;  // bound scope at construction time
  std::size_t gov_charged_ = 0;      // trail reservation bytes charged
  bool gov_denied_ = false;          // reservation refused: run() aborts
  // Rank of each PE in the global value order (interior-first: the arch's
  // memoised table; otherwise identity_rank_, built per searcher).
  const int* value_rank_ = nullptr;
  std::vector<int> identity_rank_;
  std::unique_ptr<PeId[]> cand_arena_;  // per-depth candidate buffers
  std::vector<NodeId> order_;       // static variable order, if any
  PeSet canonical_;                 // empty capacity == disabled
};

// --- reference engine ------------------------------------------------------

/// The original scan-based searcher (RI/VF3 style): candidate sets recounted
/// from adjacency lists at every step. Kept verbatim as the independent
/// oracle for differential testing.
class ReferenceSearcher {
 public:
  ReferenceSearcher(const Dfg& dfg, const CgraArch& arch,
                    const std::vector<int>& labels, int ii,
                    const SpaceOptions& options, const Deadline& deadline)
      : dfg_(dfg),
        arch_(arch),
        labels_(labels),
        ii_(ii),
        options_(options),
        deadline_(deadline),
        neighbors_(static_cast<std::size_t>(dfg.num_nodes())),
        assignment_(static_cast<std::size_t>(dfg.num_nodes()), -1),
        used_(static_cast<std::size_t>(arch.num_pes()) *
                  static_cast<std::size_t>(ii),
              false) {
    for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
      neighbors_[static_cast<std::size_t>(v)] =
          dfg_.graph().undirected_neighbors(v);
    }
  }

  SpaceResult run() {
    SpaceResult result;
    Stopwatch watch;
    if (!check_labels(dfg_, arch_, labels_, ii_, result)) {
      result.seconds = watch.elapsed_s();
      return result;
    }
    if (options_.model == MrrgModel::kConsecutiveOnly &&
        !check_slot_adjacency(dfg_, labels_, ii_, result)) {
      result.seconds = watch.elapsed_s();
      return result;
    }
    result.shallowest_retreat = dfg_.num_nodes() + 1;
    // kSparseMrv runs as plain dynamic MRV here: the sparse heuristics are
    // bitset-engine tuning, and since any ordering is complete the oracle
    // still agrees on found/not-found — which is what the differential
    // tests check.
    const bool found =
        is_dynamic_order(options_.order)
            ? (prepare_dynamic(), search_dynamic(0, result))
            : (order_ = build_static_order(dfg_, neighbors_, options_.order),
               search(0, result));
    result.found = found;
    if (found) {
      result.pe = assignment_;
    } else if (result.failure_reason.empty()) {
      result.failure_reason = result.timed_out ? "search budget exhausted"
                                               : "search space exhausted";
      if (!result.timed_out) {
        // The scan engine keeps no touched-set bookkeeping; the full node
        // set is the (trivially sound) conflict explanation.
        for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
          result.conflict_nodes.push_back(v);
        }
      }
    }
    result.seconds = watch.elapsed_s();
    return result;
  }

 private:
  [[nodiscard]] bool slot_used(PeId pe, int slot) const {
    return used_[static_cast<std::size_t>(slot) *
                     static_cast<std::size_t>(arch_.num_pes()) +
                 static_cast<std::size_t>(pe)];
  }
  void set_slot(PeId pe, int slot, bool value) {
    used_[static_cast<std::size_t>(slot) *
              static_cast<std::size_t>(arch_.num_pes()) +
          static_cast<std::size_t>(pe)] = value;
  }

  /// Count candidates of `v`, stopping once `limit` is reached (the MRV
  /// selection only needs "fewer than the current best?").
  std::size_t count_candidates(NodeId v, std::size_t limit) const {
    const int label = labels_[static_cast<std::size_t>(v)];
    PeId anchor = -1;
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      if (assignment_[static_cast<std::size_t>(u)] >= 0) {
        anchor = assignment_[static_cast<std::size_t>(u)];
        break;
      }
    }
    std::size_t count = 0;
    if (anchor >= 0) {
      for (const PeId p : arch_.closed_neighbors(anchor)) {
        if (pe_compatible(v, p, label) && ++count >= limit) break;
      }
    } else {
      for (PeId p = 0; p < arch_.num_pes(); ++p) {
        if (pe_compatible(v, p, label) && ++count >= limit) break;
      }
    }
    return count;
  }

  /// The single compatibility predicate both candidate enumeration and MRV
  /// counting share: p's slot at v's label is free, every assigned
  /// neighbour is adjacent-or-same, and same-PE placement only happens
  /// across distinct label layers.
  [[nodiscard]] bool pe_compatible(NodeId v, PeId p, int label) const {
    if (slot_used(p, label)) return false;
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      const PeId q = assignment_[static_cast<std::size_t>(u)];
      if (q < 0) continue;
      if (!arch_.adjacent_or_same(p, q)) return false;
      if (p == q && labels_[static_cast<std::size_t>(u)] == label) {
        return false;
      }
    }
    return true;
  }

  /// Candidate PEs for `v` given current assignment, cheapest filters first.
  void candidates(NodeId v, std::vector<PeId>& out) const {
    out.clear();
    const int label = labels_[static_cast<std::size_t>(v)];
    PeId anchor = -1;
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      if (assignment_[static_cast<std::size_t>(u)] >= 0) {
        anchor = assignment_[static_cast<std::size_t>(u)];
        break;
      }
    }
    if (anchor >= 0) {
      for (const PeId p : arch_.closed_neighbors(anchor)) {
        if (pe_compatible(v, p, label)) out.push_back(p);
      }
    } else {
      for (PeId p = 0; p < arch_.num_pes(); ++p) {
        if (pe_compatible(v, p, label)) out.push_back(p);
      }
    }
    if (options_.interior_first) {
      std::stable_sort(out.begin(), out.end(), [&](PeId a, PeId b) {
        return arch_.closed_neighbors(a).size() >
               arch_.closed_neighbors(b).size();
      });
    }
  }

  /// Cheap forward check: every unmapped neighbour of v must retain at least
  /// one available PE adjacent to v's placement.
  [[nodiscard]] bool neighbors_still_placeable(NodeId v) const {
    const PeId pv = assignment_[static_cast<std::size_t>(v)];
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      if (assignment_[static_cast<std::size_t>(u)] >= 0) continue;
      const int lu = labels_[static_cast<std::size_t>(u)];
      bool open = false;
      for (const PeId q : arch_.closed_neighbors(pv)) {
        if (!slot_used(q, lu)) {
          open = true;
          break;
        }
      }
      if (!open) return false;
    }
    return true;
  }

  bool search(std::size_t depth, SpaceResult& result) {
    if (depth == order_.size()) return true;
    ++result.nodes_expanded;
    if (static_cast<int>(depth) + 1 > result.max_depth) {
      result.max_depth = static_cast<int>(depth) + 1;
    }
    if ((result.nodes_expanded & 0xFFF) == 0 && deadline_.expired()) {
      result.timed_out = true;
      result.deadline_expired = true;
      return false;
    }
    if (options_.max_backtracks != 0 &&
        result.backtracks > options_.max_backtracks) {
      result.timed_out = true;
      result.truncated = true;
      return false;
    }
    const NodeId v = order_[depth];
    std::vector<PeId> cands;
    candidates(v, cands);
    if (depth == 0 && options_.symmetry_breaking) {
      restrict_to_canonical(cands);
    }
    const int label = labels_[static_cast<std::size_t>(v)];
    for (const PeId p : cands) {
      assignment_[static_cast<std::size_t>(v)] = p;
      set_slot(p, label, true);
      if (!options_.forward_check || neighbors_still_placeable(v)) {
        if (search(depth + 1, result)) return true;
        if (result.timed_out) {
          // unwind without counting further backtracks
          assignment_[static_cast<std::size_t>(v)] = -1;
          set_slot(p, label, false);
          return false;
        }
      }
      assignment_[static_cast<std::size_t>(v)] = -1;
      set_slot(p, label, false);
      ++result.backtracks;
    }
    if (static_cast<int>(depth) - 1 < result.shallowest_retreat) {
      result.shallowest_retreat = static_cast<int>(depth) - 1;
    }
    return false;
  }

  void prepare_dynamic() {
    mapped_neighbor_count_.assign(
        static_cast<std::size_t>(dfg_.num_nodes()), 0);
  }

  /// Dynamic minimum-remaining-values search: at every depth pick the
  /// unmapped node with the fewest compatible PEs (preferring nodes already
  /// adjacent to the mapped region), recomputing candidate sets as the
  /// mapping grows. Dead ends (a node with zero candidates) are detected
  /// the moment they appear — much stronger pruning than a static order on
  /// hub-heavy DFGs like hotspot3D.
  bool search_dynamic(std::size_t depth, SpaceResult& result) {
    const std::size_t n = static_cast<std::size_t>(dfg_.num_nodes());
    if (depth == n) return true;
    ++result.nodes_expanded;
    if (static_cast<int>(depth) + 1 > result.max_depth) {
      result.max_depth = static_cast<int>(depth) + 1;
    }
    if ((result.nodes_expanded & 0xFFF) == 0 && deadline_.expired()) {
      result.timed_out = true;
      result.deadline_expired = true;
      return false;
    }
    if (options_.max_backtracks != 0 &&
        result.backtracks > options_.max_backtracks) {
      result.timed_out = true;
      result.truncated = true;
      return false;
    }
    // Select the most constrained node: prefer frontier nodes (those with
    // mapped neighbours); among them minimise candidate count, break ties
    // by higher degree. A zero-candidate frontier node forces an immediate
    // backtrack.
    NodeId best = kInvalidNode;
    std::size_t best_cands = 0;
    bool best_frontier = false;
    for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
      if (assignment_[static_cast<std::size_t>(v)] >= 0) continue;
      const bool frontier =
          mapped_neighbor_count_[static_cast<std::size_t>(v)] > 0;
      if (best != kInvalidNode && best_frontier && !frontier) continue;
      // Counting is capped: we only care whether v beats the current best.
      const std::size_t cap =
          (best == kInvalidNode || (frontier && !best_frontier))
              ? static_cast<std::size_t>(arch_.num_pes())
              : best_cands + 1;
      const std::size_t count =
          count_candidates(v, std::max<std::size_t>(cap, 1));
      if (frontier && count == 0) {
        ++result.backtracks;
        if (static_cast<int>(depth) - 1 < result.shallowest_retreat) {
          result.shallowest_retreat = static_cast<int>(depth) - 1;
        }
        return false;  // dead end: some neighbour choice was wrong
      }
      const bool better =
          best == kInvalidNode || (frontier && !best_frontier) ||
          (frontier == best_frontier &&
           (count < best_cands ||
            (count == best_cands &&
             neighbors_[static_cast<std::size_t>(v)].size() >
                 neighbors_[static_cast<std::size_t>(best)].size())));
      if (better) {
        best = v;
        best_cands = count;
        best_frontier = frontier;
      }
    }
    MONOMAP_ASSERT(best != kInvalidNode);
    std::vector<PeId> cands;
    candidates(best, cands);
    if (depth == 0 && options_.symmetry_breaking) {
      restrict_to_canonical(cands);
    }
    const int label = labels_[static_cast<std::size_t>(best)];
    for (const PeId p : cands) {
      assignment_[static_cast<std::size_t>(best)] = p;
      set_slot(p, label, true);
      for (const NodeId u : neighbors_[static_cast<std::size_t>(best)]) {
        ++mapped_neighbor_count_[static_cast<std::size_t>(u)];
      }
      if (search_dynamic(depth + 1, result)) return true;
      for (const NodeId u : neighbors_[static_cast<std::size_t>(best)]) {
        --mapped_neighbor_count_[static_cast<std::size_t>(u)];
      }
      assignment_[static_cast<std::size_t>(best)] = -1;
      set_slot(p, label, false);
      if (result.timed_out) return false;
      ++result.backtracks;
    }
    if (static_cast<int>(depth) - 1 < result.shallowest_retreat) {
      result.shallowest_retreat = static_cast<int>(depth) - 1;
    }
    return false;
  }

  /// Restrict the first placement to one symmetry octant of a square mesh.
  void restrict_to_canonical(std::vector<PeId>& cands) const {
    if (!symmetry_applicable(arch_)) return;
    std::vector<PeId> filtered;
    for (const PeId p : cands) {
      if (in_canonical_octant(arch_, p)) filtered.push_back(p);
    }
    if (!filtered.empty()) {
      cands = std::move(filtered);
    }
  }

  const Dfg& dfg_;
  const CgraArch& arch_;
  const std::vector<int>& labels_;
  int ii_;
  SpaceOptions options_;
  const Deadline& deadline_;
  std::vector<std::vector<NodeId>> neighbors_;
  std::vector<NodeId> order_;
  std::vector<PeId> assignment_;
  std::vector<bool> used_;
  std::vector<int> mapped_neighbor_count_;  // dynamic-MRV bookkeeping
};

}  // namespace

SpaceResult find_monomorphism(const Dfg& dfg, const CgraArch& arch,
                              const std::vector<int>& labels, int ii,
                              const SpaceOptions& options,
                              const Deadline& deadline) {
  MONOMAP_ASSERT(static_cast<int>(labels.size()) == dfg.num_nodes());
  MONOMAP_ASSERT(ii >= 1);
  fault::maybe_inject("space.search");
  if (options.engine == SpaceEngine::kReference) {
    return ReferenceSearcher(dfg, arch, labels, ii, options, deadline).run();
  }
  return BitsetSearcher(dfg, arch, labels, ii, options, deadline).run();
}

}  // namespace monomap
