#include "space/monomorphism.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace monomap {

const char* to_string(SpaceOrder order) {
  switch (order) {
    case SpaceOrder::kDynamicMrv: return "dynamic-mrv";
    case SpaceOrder::kConnectivity: return "connectivity";
    case SpaceOrder::kDegree: return "degree";
    case SpaceOrder::kBfs: return "bfs";
  }
  return "?";
}

namespace {

class Searcher {
 public:
  Searcher(const Dfg& dfg, const CgraArch& arch,
           const std::vector<int>& labels, int ii,
           const SpaceOptions& options, const Deadline& deadline)
      : dfg_(dfg),
        arch_(arch),
        labels_(labels),
        ii_(ii),
        options_(options),
        deadline_(deadline),
        neighbors_(static_cast<std::size_t>(dfg.num_nodes())),
        assignment_(static_cast<std::size_t>(dfg.num_nodes()), -1),
        used_(static_cast<std::size_t>(arch.num_pes()) *
                  static_cast<std::size_t>(ii),
              false) {
    for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
      neighbors_[static_cast<std::size_t>(v)] =
          dfg_.graph().undirected_neighbors(v);
    }
  }

  SpaceResult run() {
    SpaceResult result;
    Stopwatch watch;
    if (!check_labels(result)) {
      result.seconds = watch.elapsed_s();
      return result;
    }
    if (options_.model == MrrgModel::kConsecutiveOnly &&
        !check_slot_adjacency(result)) {
      result.seconds = watch.elapsed_s();
      return result;
    }
    const bool found = options_.order == SpaceOrder::kDynamicMrv
                           ? (prepare_dynamic(), search_dynamic(0, result))
                           : (build_order(), search(0, result));
    result.found = found;
    if (found) {
      result.pe = assignment_;
    } else if (result.failure_reason.empty()) {
      result.failure_reason =
          result.timed_out ? "search budget exhausted" : "search space exhausted";
    }
    result.seconds = watch.elapsed_s();
    return result;
  }

 private:
  [[nodiscard]] bool slot_used(PeId pe, int slot) const {
    return used_[static_cast<std::size_t>(slot) *
                     static_cast<std::size_t>(arch_.num_pes()) +
                 static_cast<std::size_t>(pe)];
  }
  void set_slot(PeId pe, int slot, bool value) {
    used_[static_cast<std::size_t>(slot) *
              static_cast<std::size_t>(arch_.num_pes()) +
          static_cast<std::size_t>(pe)] = value;
  }

  bool check_labels(SpaceResult& result) const {
    // Capacity per label layer must hold or no injective map exists.
    std::vector<int> count(static_cast<std::size_t>(ii_), 0);
    for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
      const int l = labels_[static_cast<std::size_t>(v)];
      MONOMAP_ASSERT_MSG(l >= 0 && l < ii_,
                         "label " << l << " outside [0," << ii_ << ")");
      if (++count[static_cast<std::size_t>(l)] > arch_.num_pes()) {
        result.failure_reason = "label layer " + std::to_string(l) +
                                " exceeds CGRA capacity";
        return false;
      }
    }
    return true;
  }

  bool check_slot_adjacency(SpaceResult& result) const {
    // Consecutive-only MRRG: an edge is only mappable if its labels are
    // equal or cyclically consecutive.
    const Graph& g = dfg_.graph();
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& edge = g.edge(e);
      if (edge.src == edge.dst) continue;
      const int a = labels_[static_cast<std::size_t>(edge.src)];
      const int b = labels_[static_cast<std::size_t>(edge.dst)];
      const int d = (b - a + ii_) % ii_;
      if (!(d == 0 || d == 1 || d == ii_ - 1)) {
        result.failure_reason =
            "edge " + std::to_string(edge.src) + "->" +
            std::to_string(edge.dst) +
            " spans non-consecutive slots under kConsecutiveOnly";
        return false;
      }
    }
    return true;
  }

  void build_order() {
    const int n = dfg_.num_nodes();
    order_.clear();
    order_.reserve(static_cast<std::size_t>(n));
    std::vector<bool> placed(static_cast<std::size_t>(n), false);
    std::vector<int> mapped_neighbors(static_cast<std::size_t>(n), 0);

    auto degree = [&](NodeId v) {
      return static_cast<int>(neighbors_[static_cast<std::size_t>(v)].size());
    };

    if (options_.order == SpaceOrder::kDegree) {
      for (NodeId v = 0; v < n; ++v) order_.push_back(v);
      std::stable_sort(order_.begin(), order_.end(),
                       [&](NodeId a, NodeId b) { return degree(a) > degree(b); });
      return;
    }

    // kConnectivity and kBfs both grow a frontier; kConnectivity picks the
    // most-connected-to-placed next, kBfs follows FIFO discovery order.
    for (int step = 0; step < n; ++step) {
      NodeId best = kInvalidNode;
      for (NodeId v = 0; v < n; ++v) {
        if (placed[static_cast<std::size_t>(v)]) continue;
        if (best == kInvalidNode) {
          best = v;
          continue;
        }
        const int mb = mapped_neighbors[static_cast<std::size_t>(best)];
        const int mv = mapped_neighbors[static_cast<std::size_t>(v)];
        if (options_.order == SpaceOrder::kConnectivity) {
          if (mv > mb || (mv == mb && degree(v) > degree(best))) {
            best = v;
          }
        } else {  // kBfs: first discovered (any mapped neighbour) wins
          if (mb == 0 && mv > 0) {
            best = v;
          } else if ((mb > 0) == (mv > 0) && degree(v) > degree(best) &&
                     mb == 0) {
            best = v;
          }
        }
      }
      order_.push_back(best);
      placed[static_cast<std::size_t>(best)] = true;
      for (const NodeId u : neighbors_[static_cast<std::size_t>(best)]) {
        ++mapped_neighbors[static_cast<std::size_t>(u)];
      }
    }
  }

  /// Count candidates of `v`, stopping once `limit` is reached (the MRV
  /// selection only needs "fewer than the current best?").
  std::size_t count_candidates(NodeId v, std::size_t limit) const {
    const int label = labels_[static_cast<std::size_t>(v)];
    PeId anchor = -1;
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      if (assignment_[static_cast<std::size_t>(u)] >= 0) {
        anchor = assignment_[static_cast<std::size_t>(u)];
        break;
      }
    }
    std::size_t count = 0;
    if (anchor >= 0) {
      for (const PeId p : arch_.closed_neighbors(anchor)) {
        if (pe_compatible(v, p, label) && ++count >= limit) break;
      }
    } else {
      for (PeId p = 0; p < arch_.num_pes(); ++p) {
        if (pe_compatible(v, p, label) && ++count >= limit) break;
      }
    }
    return count;
  }

  [[nodiscard]] bool pe_compatible(NodeId v, PeId p, int label) const {
    if (slot_used(p, label)) return false;
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      const PeId q = assignment_[static_cast<std::size_t>(u)];
      if (q < 0) continue;
      if (!arch_.adjacent_or_same(p, q)) return false;
      if (p == q && labels_[static_cast<std::size_t>(u)] == label) {
        return false;
      }
    }
    return true;
  }

  /// Candidate PEs for `v` given current assignment, cheapest filters first.
  void candidates(NodeId v, std::vector<PeId>& out) const {
    out.clear();
    const int label = labels_[static_cast<std::size_t>(v)];
    // Collect mapped neighbours.
    PeId anchor = -1;
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      if (assignment_[static_cast<std::size_t>(u)] >= 0) {
        anchor = assignment_[static_cast<std::size_t>(u)];
        break;
      }
    }
    auto compatible = [&](PeId p) {
      if (slot_used(p, label)) return false;
      for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
        const PeId q = assignment_[static_cast<std::size_t>(u)];
        if (q < 0) continue;
        if (!arch_.adjacent_or_same(p, q)) return false;
        // Same PE is only possible on a different label layer (injectivity
        // is already guaranteed by slot_used when labels are equal).
        if (p == q && labels_[static_cast<std::size_t>(u)] == label) {
          return false;
        }
      }
      return true;
    };
    if (anchor >= 0) {
      for (const PeId p : arch_.closed_neighbors(anchor)) {
        if (compatible(p)) out.push_back(p);
      }
    } else {
      for (PeId p = 0; p < arch_.num_pes(); ++p) {
        if (compatible(p)) out.push_back(p);
      }
    }
    if (options_.interior_first) {
      std::stable_sort(out.begin(), out.end(), [&](PeId a, PeId b) {
        return arch_.closed_neighbors(a).size() >
               arch_.closed_neighbors(b).size();
      });
    }
  }

  /// Cheap forward check: every unmapped neighbour of v must retain at least
  /// one available PE adjacent to v's placement.
  [[nodiscard]] bool neighbors_still_placeable(NodeId v) const {
    const PeId pv = assignment_[static_cast<std::size_t>(v)];
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      if (assignment_[static_cast<std::size_t>(u)] >= 0) continue;
      const int lu = labels_[static_cast<std::size_t>(u)];
      bool open = false;
      for (const PeId q : arch_.closed_neighbors(pv)) {
        if (!slot_used(q, lu)) {
          open = true;
          break;
        }
      }
      if (!open) return false;
    }
    return true;
  }

  bool search(std::size_t depth, SpaceResult& result) {
    if (depth == order_.size()) return true;
    ++result.nodes_expanded;
    if ((result.nodes_expanded & 0xFFF) == 0 && deadline_.expired()) {
      result.timed_out = true;
      result.deadline_expired = true;
      return false;
    }
    if (options_.max_backtracks != 0 &&
        result.backtracks > options_.max_backtracks) {
      result.timed_out = true;
      return false;
    }
    const NodeId v = order_[depth];
    std::vector<PeId> cands;
    candidates(v, cands);
    if (depth == 0 && options_.symmetry_breaking) {
      restrict_to_canonical(cands);
    }
    const int label = labels_[static_cast<std::size_t>(v)];
    for (const PeId p : cands) {
      assignment_[static_cast<std::size_t>(v)] = p;
      set_slot(p, label, true);
      if (!options_.forward_check || neighbors_still_placeable(v)) {
        if (search(depth + 1, result)) return true;
        if (result.timed_out) {
          // unwind without counting further backtracks
          assignment_[static_cast<std::size_t>(v)] = -1;
          set_slot(p, label, false);
          return false;
        }
      }
      assignment_[static_cast<std::size_t>(v)] = -1;
      set_slot(p, label, false);
      ++result.backtracks;
    }
    return false;
  }

  void prepare_dynamic() {
    mapped_neighbor_count_.assign(
        static_cast<std::size_t>(dfg_.num_nodes()), 0);
  }

  /// Dynamic minimum-remaining-values search: at every depth pick the
  /// unmapped node with the fewest compatible PEs (preferring nodes already
  /// adjacent to the mapped region), recomputing candidate sets as the
  /// mapping grows. Dead ends (a node with zero candidates) are detected
  /// the moment they appear — much stronger pruning than a static order on
  /// hub-heavy DFGs like hotspot3D.
  bool search_dynamic(std::size_t depth, SpaceResult& result) {
    const std::size_t n = static_cast<std::size_t>(dfg_.num_nodes());
    if (depth == n) return true;
    ++result.nodes_expanded;
    if ((result.nodes_expanded & 0xFFF) == 0 && deadline_.expired()) {
      result.timed_out = true;
      result.deadline_expired = true;
      return false;
    }
    if (options_.max_backtracks != 0 &&
        result.backtracks > options_.max_backtracks) {
      result.timed_out = true;
      return false;
    }
    // Select the most constrained node: prefer frontier nodes (those with
    // mapped neighbours); among them minimise candidate count, break ties
    // by higher degree. A zero-candidate frontier node forces an immediate
    // backtrack.
    NodeId best = kInvalidNode;
    std::size_t best_cands = 0;
    bool best_frontier = false;
    for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
      if (assignment_[static_cast<std::size_t>(v)] >= 0) continue;
      const bool frontier =
          mapped_neighbor_count_[static_cast<std::size_t>(v)] > 0;
      if (best != kInvalidNode && best_frontier && !frontier) continue;
      // Counting is capped: we only care whether v beats the current best.
      const std::size_t cap =
          (best == kInvalidNode || (frontier && !best_frontier))
              ? static_cast<std::size_t>(arch_.num_pes())
              : best_cands + 1;
      const std::size_t count = count_candidates(v, std::max<std::size_t>(cap, 1));
      if (frontier && count == 0) {
        ++result.backtracks;
        return false;  // dead end: some neighbour choice was wrong
      }
      const bool better =
          best == kInvalidNode || (frontier && !best_frontier) ||
          (frontier == best_frontier &&
           (count < best_cands ||
            (count == best_cands &&
             neighbors_[static_cast<std::size_t>(v)].size() >
                 neighbors_[static_cast<std::size_t>(best)].size())));
      if (better) {
        best = v;
        best_cands = count;
        best_frontier = frontier;
      }
    }
    MONOMAP_ASSERT(best != kInvalidNode);
    std::vector<PeId> cands;
    candidates(best, cands);
    if (depth == 0 && options_.symmetry_breaking) {
      restrict_to_canonical(cands);
    }
    const int label = labels_[static_cast<std::size_t>(best)];
    for (const PeId p : cands) {
      assignment_[static_cast<std::size_t>(best)] = p;
      set_slot(p, label, true);
      for (const NodeId u : neighbors_[static_cast<std::size_t>(best)]) {
        ++mapped_neighbor_count_[static_cast<std::size_t>(u)];
      }
      if (search_dynamic(depth + 1, result)) return true;
      for (const NodeId u : neighbors_[static_cast<std::size_t>(best)]) {
        --mapped_neighbor_count_[static_cast<std::size_t>(u)];
      }
      assignment_[static_cast<std::size_t>(best)] = -1;
      set_slot(p, label, false);
      if (result.timed_out) return false;
      ++result.backtracks;
    }
    return false;
  }

  /// For the very first placement on an empty square grid, restrict
  /// candidates to one symmetry octant (sound: any solution can be
  /// reflected/rotated into one whose first node lies there).
  void restrict_to_canonical(std::vector<PeId>& cands) const {
    if (arch_.rows() != arch_.cols() ||
        arch_.topology() == Topology::kTorus) {
      return;  // only exploit the 8-fold symmetry of square meshes
    }
    const int half = (arch_.rows() + 1) / 2;
    auto canonical = [&](PeId p) {
      const int r = arch_.row_of(p);
      const int c = arch_.col_of(p);
      return r < half && c < half && c >= r;
    };
    std::vector<PeId> filtered;
    for (const PeId p : cands) {
      if (canonical(p)) filtered.push_back(p);
    }
    if (!filtered.empty()) {
      cands = std::move(filtered);
    }
  }

  const Dfg& dfg_;
  const CgraArch& arch_;
  const std::vector<int>& labels_;
  int ii_;
  SpaceOptions options_;
  const Deadline& deadline_;
  std::vector<std::vector<NodeId>> neighbors_;
  std::vector<NodeId> order_;
  std::vector<PeId> assignment_;
  std::vector<bool> used_;
  std::vector<int> mapped_neighbor_count_;  // dynamic-MRV bookkeeping
};

}  // namespace

SpaceResult find_monomorphism(const Dfg& dfg, const CgraArch& arch,
                              const std::vector<int>& labels, int ii,
                              const SpaceOptions& options,
                              const Deadline& deadline) {
  MONOMAP_ASSERT(static_cast<int>(labels.size()) == dfg.num_nodes());
  MONOMAP_ASSERT(ii >= 1);
  return Searcher(dfg, arch, labels, ii, options, deadline).run();
}

}  // namespace monomap
