#include "space/monomorphism.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/pe_set.hpp"

namespace monomap {

const char* to_string(SpaceOrder order) {
  switch (order) {
    case SpaceOrder::kDynamicMrv: return "dynamic-mrv";
    case SpaceOrder::kConnectivity: return "connectivity";
    case SpaceOrder::kDegree: return "degree";
    case SpaceOrder::kBfs: return "bfs";
  }
  return "?";
}

const char* to_string(SpaceEngine engine) {
  switch (engine) {
    case SpaceEngine::kBitset: return "bitset";
    case SpaceEngine::kReference: return "reference";
  }
  return "?";
}

namespace {

// --- checks and orderings shared by both engines ---------------------------

bool check_labels(const Dfg& dfg, const CgraArch& arch,
                  const std::vector<int>& labels, int ii,
                  SpaceResult& result) {
  // Capacity per label layer must hold or no injective map exists.
  std::vector<int> count(static_cast<std::size_t>(ii), 0);
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    const int l = labels[static_cast<std::size_t>(v)];
    MONOMAP_ASSERT_MSG(l >= 0 && l < ii,
                       "label " << l << " outside [0," << ii << ")");
    if (++count[static_cast<std::size_t>(l)] > arch.num_pes()) {
      result.failure_reason =
          "label layer " + std::to_string(l) + " exceeds CGRA capacity";
      // Any |PEs|+1 nodes of the overfull layer are jointly unplaceable —
      // the narrowest possible conflict explanation.
      for (NodeId u = 0; u <= v; ++u) {
        if (labels[static_cast<std::size_t>(u)] == l) {
          result.conflict_nodes.push_back(u);
        }
      }
      return false;
    }
  }
  return true;
}

bool check_slot_adjacency(const Dfg& dfg, const std::vector<int>& labels,
                          int ii, SpaceResult& result) {
  // Consecutive-only MRRG: an edge is only mappable if its labels are
  // equal or cyclically consecutive.
  const Graph& g = dfg.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.src == edge.dst) continue;
    const int a = labels[static_cast<std::size_t>(edge.src)];
    const int b = labels[static_cast<std::size_t>(edge.dst)];
    const int d = (b - a + ii) % ii;
    if (!(d == 0 || d == 1 || d == ii - 1)) {
      result.failure_reason =
          "edge " + std::to_string(edge.src) + "->" +
          std::to_string(edge.dst) +
          " spans non-consecutive slots under kConsecutiveOnly";
      result.conflict_nodes = {std::min(edge.src, edge.dst),
                               std::max(edge.src, edge.dst)};
      return false;
    }
  }
  return true;
}

/// Static variable order for kConnectivity / kDegree / kBfs.
std::vector<NodeId> build_static_order(
    const Dfg& dfg, const std::vector<std::vector<NodeId>>& neighbors,
    SpaceOrder order) {
  const int n = dfg.num_nodes();
  std::vector<NodeId> result;
  result.reserve(static_cast<std::size_t>(n));

  auto degree = [&](NodeId v) {
    return static_cast<int>(neighbors[static_cast<std::size_t>(v)].size());
  };

  if (order == SpaceOrder::kDegree) {
    for (NodeId v = 0; v < n; ++v) result.push_back(v);
    std::stable_sort(result.begin(), result.end(),
                     [&](NodeId a, NodeId b) { return degree(a) > degree(b); });
    return result;
  }

  // kConnectivity and kBfs both grow a frontier; kConnectivity picks the
  // most-connected-to-placed next, kBfs follows FIFO discovery order.
  std::vector<bool> placed(static_cast<std::size_t>(n), false);
  std::vector<int> mapped_neighbors(static_cast<std::size_t>(n), 0);
  for (int step = 0; step < n; ++step) {
    NodeId best = kInvalidNode;
    for (NodeId v = 0; v < n; ++v) {
      if (placed[static_cast<std::size_t>(v)]) continue;
      if (best == kInvalidNode) {
        best = v;
        continue;
      }
      const int mb = mapped_neighbors[static_cast<std::size_t>(best)];
      const int mv = mapped_neighbors[static_cast<std::size_t>(v)];
      if (order == SpaceOrder::kConnectivity) {
        if (mv > mb || (mv == mb && degree(v) > degree(best))) {
          best = v;
        }
      } else {  // kBfs: first discovered (any mapped neighbour) wins
        if (mb == 0 && mv > 0) {
          best = v;
        } else if ((mb > 0) == (mv > 0) && degree(v) > degree(best) &&
                   mb == 0) {
          best = v;
        }
      }
    }
    result.push_back(best);
    placed[static_cast<std::size_t>(best)] = true;
    for (const NodeId u : neighbors[static_cast<std::size_t>(best)]) {
      ++mapped_neighbors[static_cast<std::size_t>(u)];
    }
  }
  return result;
}

/// True if the 8-fold symmetry reduction applies to this architecture.
bool symmetry_applicable(const CgraArch& arch) {
  return arch.rows() == arch.cols() && arch.topology() != Topology::kTorus;
}

/// For the very first placement on an empty square grid, candidates may be
/// restricted to one symmetry octant (sound: any solution can be
/// reflected/rotated into one whose first node lies there).
bool in_canonical_octant(const CgraArch& arch, PeId p) {
  const int half = (arch.rows() + 1) / 2;
  const int r = arch.row_of(p);
  const int c = arch.col_of(p);
  return r < half && c < half && c >= r;
}

// --- bitset engine ---------------------------------------------------------

/// Bit-parallel domain-propagation search. One PeSet candidate domain per
/// DFG node; assigning node v to PE p narrows the domains of v's unassigned
/// neighbours (mask intersection with N[p]) and of unassigned same-label
/// nodes (PE p's slot is now taken). Every changed word is recorded on a
/// trail, so unassignment is an O(#changes) word-wise restore. A domain
/// wiped to zero anywhere triggers an immediate backtrack — strictly
/// stronger pruning than the reference engine's one-step lookahead.
///
/// All state (domains, trail, orders) is preallocated in the constructor;
/// the recursion itself never allocates.
class BitsetSearcher {
 public:
  BitsetSearcher(const Dfg& dfg, const CgraArch& arch,
                 const std::vector<int>& labels, int ii,
                 const SpaceOptions& options, const Deadline& deadline)
      : dfg_(dfg),
        arch_(arch),
        labels_(labels),
        ii_(ii),
        options_(options),
        deadline_(deadline),
        n_(dfg.num_nodes()),
        num_pes_(arch.num_pes()),
        neighbors_(static_cast<std::size_t>(n_)),
        nodes_by_label_(static_cast<std::size_t>(ii)),
        assignment_(static_cast<std::size_t>(n_), -1),
        mapped_neighbor_count_(static_cast<std::size_t>(n_), 0) {
    for (NodeId v = 0; v < n_; ++v) {
      neighbors_[static_cast<std::size_t>(v)] =
          dfg_.graph().undirected_neighbors(v);
      const int label = labels_[static_cast<std::size_t>(v)];
      if (label >= 0 && label < ii_) {  // check_labels asserts otherwise
        nodes_by_label_[static_cast<std::size_t>(label)].push_back(v);
      }
    }
    domain_.reserve(static_cast<std::size_t>(n_));
    for (NodeId v = 0; v < n_; ++v) {
      domain_.push_back(PeSet::full(num_pes_));
    }
    words_ = (num_pes_ + PeSet::kWordBits - 1) / PeSet::kWordBits;
    // Hard bound on live trail entries: per active depth, the same-label
    // loop trails at most one word per node and the neighbour loop at most
    // `words_` per node (a same-label neighbour contributes to both), and
    // at most n_ depths are active. Reserving the bound up front is what
    // keeps the recursion heap-silent — run() asserts it was never
    // exceeded.
    trail_.reserve(static_cast<std::size_t>(n_) *
                   static_cast<std::size_t>(n_) *
                   static_cast<std::size_t>(words_ + 1));
    trail_reserved_ = trail_.capacity();

    value_order_.reserve(static_cast<std::size_t>(num_pes_));
    for (PeId p = 0; p < num_pes_; ++p) value_order_.push_back(p);
    if (options_.interior_first) {
      // Same key and stability as the reference engine's candidate sort, so
      // both engines expand values in the same order.
      std::stable_sort(value_order_.begin(), value_order_.end(),
                       [&](PeId a, PeId b) {
                         return arch_.closed_neighbors(a).size() >
                                arch_.closed_neighbors(b).size();
                       });
    }
    value_rank_.assign(static_cast<std::size_t>(num_pes_), 0);
    for (int i = 0; i < num_pes_; ++i) {
      value_rank_[static_cast<std::size_t>(value_order_[
          static_cast<std::size_t>(i)])] = i;
    }
    // One candidate buffer per depth: enumeration happens via the domain's
    // set bits (O(words + candidates)), not a scan over all PEs.
    cand_arena_.assign(static_cast<std::size_t>(n_) *
                           static_cast<std::size_t>(num_pes_),
                       0);
    if (options_.symmetry_breaking && symmetry_applicable(arch_)) {
      canonical_ = PeSet(num_pes_);
      for (PeId p = 0; p < num_pes_; ++p) {
        if (in_canonical_octant(arch_, p)) canonical_.set(p);
      }
    }
    if (options_.order != SpaceOrder::kDynamicMrv) {
      order_ = build_static_order(dfg_, neighbors_, options_.order);
    }
  }

  SpaceResult run() {
    SpaceResult result;
    Stopwatch watch;
    if (!check_labels(dfg_, arch_, labels_, ii_, result)) {
      result.seconds = watch.elapsed_s();
      return result;
    }
    if (options_.model == MrrgModel::kConsecutiveOnly &&
        !check_slot_adjacency(dfg_, labels_, ii_, result)) {
      result.seconds = watch.elapsed_s();
      return result;
    }
    in_conflict_.assign(static_cast<std::size_t>(n_), false);
    result.found = n_ == 0 ? true : search(0, result);
    // The no-steady-state-allocation invariant: the preallocated trail was
    // never outgrown (a regrowth would mean the capacity bound is wrong).
    MONOMAP_ASSERT(trail_.capacity() == trail_reserved_);
    if (result.found) {
      result.pe = assignment_;
    } else if (result.failure_reason.empty()) {
      result.failure_reason = result.timed_out ? "search budget exhausted"
                                               : "search space exhausted";
      if (!result.timed_out) {
        // Complete exhaustion: the failure proof only ever branched on or
        // wiped out the marked nodes, and their domains were narrowed only
        // by assignments to marked nodes — so the proof is equally a proof
        // that the marked subset alone cannot be placed (see
        // SpaceResult::conflict_nodes).
        for (NodeId v = 0; v < n_; ++v) {
          if (in_conflict_[static_cast<std::size_t>(v)]) {
            result.conflict_nodes.push_back(v);
          }
        }
      }
    }
    result.seconds = watch.elapsed_s();
    return result;
  }

 private:
  struct TrailEntry {
    NodeId node;
    std::int32_t word;
    PeSet::Word old_bits;
  };

  [[nodiscard]] bool assigned(NodeId v) const {
    return assignment_[static_cast<std::size_t>(v)] >= 0;
  }

  /// domain_[u] &= mask, trailing every changed word. Returns false on
  /// wipeout.
  bool intersect_domain(NodeId u, const PeSet& mask) {
    PeSet& d = domain_[static_cast<std::size_t>(u)];
    PeSet::Word any = 0;
    for (int w = 0; w < words_; ++w) {
      const PeSet::Word old = d.word(w);
      const PeSet::Word next = old & mask.word(w);
      if (next != old) {
        trail_.push_back(TrailEntry{u, w, old});
        d.set_word(w, next);
      }
      any |= next;
    }
    return any != 0;
  }

  /// domain_[u] -= {p}, trailing the change. Returns false on wipeout.
  bool remove_from_domain(NodeId u, PeId p) {
    PeSet& d = domain_[static_cast<std::size_t>(u)];
    const int w = p / PeSet::kWordBits;
    const PeSet::Word bit = PeSet::Word{1} << (p % PeSet::kWordBits);
    const PeSet::Word old = d.word(w);
    // No-op removal: the domain is unchanged, and domains of unassigned
    // nodes are non-empty by invariant — skip the emptiness scan.
    if ((old & bit) == 0) return true;
    trail_.push_back(TrailEntry{u, w, old});
    d.set_word(w, old & ~bit);
    return !d.empty();
  }

  /// Propagate the consequences of assignment v -> p into every unassigned
  /// domain. Returns false if any domain is wiped out (the caller undoes
  /// via the trail mark either way on failure).
  bool propagate_assign(NodeId v, PeId p) {
    // Frontier bookkeeping first, unconditionally: undo_assign always
    // decrements every neighbour, so the increments must not be skipped by
    // an early wipeout return below.
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      ++mapped_neighbor_count_[static_cast<std::size_t>(u)];
    }
    const int label = labels_[static_cast<std::size_t>(v)];
    // PE p's slot at v's label is now occupied (mono1).
    for (const NodeId u : nodes_by_label_[static_cast<std::size_t>(label)]) {
      if (assigned(u)) continue;
      if (!remove_from_domain(u, p)) {
        in_conflict_[static_cast<std::size_t>(u)] = true;
        return false;
      }
    }
    // Unassigned neighbours must land in N[p] (mono3); a same-label
    // neighbour additionally lost p itself above.
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      if (assigned(u)) continue;
      if (!intersect_domain(u, arch_.closed_neighbor_mask(p))) {
        in_conflict_[static_cast<std::size_t>(u)] = true;
        return false;
      }
    }
    return true;
  }

  void undo_assign(NodeId v, std::size_t mark) {
    for (std::size_t i = trail_.size(); i > mark; --i) {
      const TrailEntry& e = trail_[i - 1];
      domain_[static_cast<std::size_t>(e.node)].set_word(e.word, e.old_bits);
    }
    trail_.resize(mark);
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      --mapped_neighbor_count_[static_cast<std::size_t>(u)];
    }
    assignment_[static_cast<std::size_t>(v)] = -1;
  }

  /// Next node to branch on. Static orders read order_; dynamic MRV picks
  /// the unassigned node with the smallest domain (popcount), preferring
  /// frontier nodes, breaking ties by higher degree.
  NodeId select_node(std::size_t depth) const {
    if (options_.order != SpaceOrder::kDynamicMrv) {
      return order_[depth];
    }
    NodeId best = kInvalidNode;
    int best_count = 0;
    bool best_frontier = false;
    for (NodeId v = 0; v < n_; ++v) {
      if (assigned(v)) continue;
      const bool frontier =
          mapped_neighbor_count_[static_cast<std::size_t>(v)] > 0;
      if (best != kInvalidNode && best_frontier && !frontier) continue;
      const int count = domain_[static_cast<std::size_t>(v)].count();
      const bool better =
          best == kInvalidNode || (frontier && !best_frontier) ||
          (frontier == best_frontier &&
           (count < best_count ||
            (count == best_count &&
             neighbors_[static_cast<std::size_t>(v)].size() >
                 neighbors_[static_cast<std::size_t>(best)].size())));
      if (better) {
        best = v;
        best_count = count;
        best_frontier = frontier;
      }
    }
    return best;
  }

  bool search(std::size_t depth, SpaceResult& result) {
    if (depth == static_cast<std::size_t>(n_)) return true;
    ++result.nodes_expanded;
    if ((result.nodes_expanded & 0xFFF) == 0 && deadline_.expired()) {
      result.timed_out = true;
      result.deadline_expired = true;
      return false;
    }
    if (options_.max_backtracks != 0 &&
        result.backtracks > options_.max_backtracks) {
      result.timed_out = true;
      return false;
    }
    const NodeId v = select_node(depth);
    MONOMAP_ASSERT(v != kInvalidNode);
    in_conflict_[static_cast<std::size_t>(v)] = true;
    // First placement: restrict to the canonical octant unless that empties
    // the candidate set (mirrors the reference engine exactly).
    const bool canonical_only = depth == 0 && canonical_.capacity() > 0 &&
                                domain_[static_cast<std::size_t>(v)]
                                    .intersects(canonical_);
    // Snapshot the domain's candidates into this depth's buffer and order
    // them by the global value order (ranks are unique, so this reproduces
    // filtering value_order_ by the domain, without scanning all PEs).
    PeId* cands = cand_arena_.data() +
                  static_cast<std::size_t>(depth) *
                      static_cast<std::size_t>(num_pes_);
    int num_cands = 0;
    domain_[static_cast<std::size_t>(v)].for_each([&](int p) {
      if (canonical_only && !canonical_.test(p)) return;
      cands[num_cands++] = static_cast<PeId>(p);
    });
    std::sort(cands, cands + num_cands, [&](PeId a, PeId b) {
      return value_rank_[static_cast<std::size_t>(a)] <
             value_rank_[static_cast<std::size_t>(b)];
    });
    for (int ci = 0; ci < num_cands; ++ci) {
      const PeId p = cands[ci];
      const std::size_t mark = trail_.size();
      assignment_[static_cast<std::size_t>(v)] = p;
      if (propagate_assign(v, p)) {
        if (search(depth + 1, result)) return true;
        if (result.timed_out) {
          undo_assign(v, mark);
          return false;
        }
      }
      undo_assign(v, mark);
      ++result.backtracks;
    }
    return false;
  }

  const Dfg& dfg_;
  const CgraArch& arch_;
  const std::vector<int>& labels_;
  int ii_;
  SpaceOptions options_;
  const Deadline& deadline_;
  int n_;
  int num_pes_;
  int words_ = 0;
  std::vector<std::vector<NodeId>> neighbors_;
  std::vector<std::vector<NodeId>> nodes_by_label_;
  std::vector<PeId> assignment_;
  std::vector<int> mapped_neighbor_count_;
  std::vector<bool> in_conflict_;  // branched-on or wiped-out nodes
  std::vector<PeSet> domain_;
  std::vector<TrailEntry> trail_;
  std::size_t trail_reserved_ = 0;
  std::vector<PeId> value_order_;   // global value order (interior-first)
  std::vector<int> value_rank_;     // inverse of value_order_
  std::vector<PeId> cand_arena_;    // per-depth candidate buffers
  std::vector<NodeId> order_;       // static variable order, if any
  PeSet canonical_;                 // empty capacity == disabled
};

// --- reference engine ------------------------------------------------------

/// The original scan-based searcher (RI/VF3 style): candidate sets recounted
/// from adjacency lists at every step. Kept verbatim as the independent
/// oracle for differential testing.
class ReferenceSearcher {
 public:
  ReferenceSearcher(const Dfg& dfg, const CgraArch& arch,
                    const std::vector<int>& labels, int ii,
                    const SpaceOptions& options, const Deadline& deadline)
      : dfg_(dfg),
        arch_(arch),
        labels_(labels),
        ii_(ii),
        options_(options),
        deadline_(deadline),
        neighbors_(static_cast<std::size_t>(dfg.num_nodes())),
        assignment_(static_cast<std::size_t>(dfg.num_nodes()), -1),
        used_(static_cast<std::size_t>(arch.num_pes()) *
                  static_cast<std::size_t>(ii),
              false) {
    for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
      neighbors_[static_cast<std::size_t>(v)] =
          dfg_.graph().undirected_neighbors(v);
    }
  }

  SpaceResult run() {
    SpaceResult result;
    Stopwatch watch;
    if (!check_labels(dfg_, arch_, labels_, ii_, result)) {
      result.seconds = watch.elapsed_s();
      return result;
    }
    if (options_.model == MrrgModel::kConsecutiveOnly &&
        !check_slot_adjacency(dfg_, labels_, ii_, result)) {
      result.seconds = watch.elapsed_s();
      return result;
    }
    const bool found =
        options_.order == SpaceOrder::kDynamicMrv
            ? (prepare_dynamic(), search_dynamic(0, result))
            : (order_ = build_static_order(dfg_, neighbors_, options_.order),
               search(0, result));
    result.found = found;
    if (found) {
      result.pe = assignment_;
    } else if (result.failure_reason.empty()) {
      result.failure_reason = result.timed_out ? "search budget exhausted"
                                               : "search space exhausted";
      if (!result.timed_out) {
        // The scan engine keeps no touched-set bookkeeping; the full node
        // set is the (trivially sound) conflict explanation.
        for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
          result.conflict_nodes.push_back(v);
        }
      }
    }
    result.seconds = watch.elapsed_s();
    return result;
  }

 private:
  [[nodiscard]] bool slot_used(PeId pe, int slot) const {
    return used_[static_cast<std::size_t>(slot) *
                     static_cast<std::size_t>(arch_.num_pes()) +
                 static_cast<std::size_t>(pe)];
  }
  void set_slot(PeId pe, int slot, bool value) {
    used_[static_cast<std::size_t>(slot) *
              static_cast<std::size_t>(arch_.num_pes()) +
          static_cast<std::size_t>(pe)] = value;
  }

  /// Count candidates of `v`, stopping once `limit` is reached (the MRV
  /// selection only needs "fewer than the current best?").
  std::size_t count_candidates(NodeId v, std::size_t limit) const {
    const int label = labels_[static_cast<std::size_t>(v)];
    PeId anchor = -1;
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      if (assignment_[static_cast<std::size_t>(u)] >= 0) {
        anchor = assignment_[static_cast<std::size_t>(u)];
        break;
      }
    }
    std::size_t count = 0;
    if (anchor >= 0) {
      for (const PeId p : arch_.closed_neighbors(anchor)) {
        if (pe_compatible(v, p, label) && ++count >= limit) break;
      }
    } else {
      for (PeId p = 0; p < arch_.num_pes(); ++p) {
        if (pe_compatible(v, p, label) && ++count >= limit) break;
      }
    }
    return count;
  }

  /// The single compatibility predicate both candidate enumeration and MRV
  /// counting share: p's slot at v's label is free, every assigned
  /// neighbour is adjacent-or-same, and same-PE placement only happens
  /// across distinct label layers.
  [[nodiscard]] bool pe_compatible(NodeId v, PeId p, int label) const {
    if (slot_used(p, label)) return false;
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      const PeId q = assignment_[static_cast<std::size_t>(u)];
      if (q < 0) continue;
      if (!arch_.adjacent_or_same(p, q)) return false;
      if (p == q && labels_[static_cast<std::size_t>(u)] == label) {
        return false;
      }
    }
    return true;
  }

  /// Candidate PEs for `v` given current assignment, cheapest filters first.
  void candidates(NodeId v, std::vector<PeId>& out) const {
    out.clear();
    const int label = labels_[static_cast<std::size_t>(v)];
    PeId anchor = -1;
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      if (assignment_[static_cast<std::size_t>(u)] >= 0) {
        anchor = assignment_[static_cast<std::size_t>(u)];
        break;
      }
    }
    if (anchor >= 0) {
      for (const PeId p : arch_.closed_neighbors(anchor)) {
        if (pe_compatible(v, p, label)) out.push_back(p);
      }
    } else {
      for (PeId p = 0; p < arch_.num_pes(); ++p) {
        if (pe_compatible(v, p, label)) out.push_back(p);
      }
    }
    if (options_.interior_first) {
      std::stable_sort(out.begin(), out.end(), [&](PeId a, PeId b) {
        return arch_.closed_neighbors(a).size() >
               arch_.closed_neighbors(b).size();
      });
    }
  }

  /// Cheap forward check: every unmapped neighbour of v must retain at least
  /// one available PE adjacent to v's placement.
  [[nodiscard]] bool neighbors_still_placeable(NodeId v) const {
    const PeId pv = assignment_[static_cast<std::size_t>(v)];
    for (const NodeId u : neighbors_[static_cast<std::size_t>(v)]) {
      if (assignment_[static_cast<std::size_t>(u)] >= 0) continue;
      const int lu = labels_[static_cast<std::size_t>(u)];
      bool open = false;
      for (const PeId q : arch_.closed_neighbors(pv)) {
        if (!slot_used(q, lu)) {
          open = true;
          break;
        }
      }
      if (!open) return false;
    }
    return true;
  }

  bool search(std::size_t depth, SpaceResult& result) {
    if (depth == order_.size()) return true;
    ++result.nodes_expanded;
    if ((result.nodes_expanded & 0xFFF) == 0 && deadline_.expired()) {
      result.timed_out = true;
      result.deadline_expired = true;
      return false;
    }
    if (options_.max_backtracks != 0 &&
        result.backtracks > options_.max_backtracks) {
      result.timed_out = true;
      return false;
    }
    const NodeId v = order_[depth];
    std::vector<PeId> cands;
    candidates(v, cands);
    if (depth == 0 && options_.symmetry_breaking) {
      restrict_to_canonical(cands);
    }
    const int label = labels_[static_cast<std::size_t>(v)];
    for (const PeId p : cands) {
      assignment_[static_cast<std::size_t>(v)] = p;
      set_slot(p, label, true);
      if (!options_.forward_check || neighbors_still_placeable(v)) {
        if (search(depth + 1, result)) return true;
        if (result.timed_out) {
          // unwind without counting further backtracks
          assignment_[static_cast<std::size_t>(v)] = -1;
          set_slot(p, label, false);
          return false;
        }
      }
      assignment_[static_cast<std::size_t>(v)] = -1;
      set_slot(p, label, false);
      ++result.backtracks;
    }
    return false;
  }

  void prepare_dynamic() {
    mapped_neighbor_count_.assign(
        static_cast<std::size_t>(dfg_.num_nodes()), 0);
  }

  /// Dynamic minimum-remaining-values search: at every depth pick the
  /// unmapped node with the fewest compatible PEs (preferring nodes already
  /// adjacent to the mapped region), recomputing candidate sets as the
  /// mapping grows. Dead ends (a node with zero candidates) are detected
  /// the moment they appear — much stronger pruning than a static order on
  /// hub-heavy DFGs like hotspot3D.
  bool search_dynamic(std::size_t depth, SpaceResult& result) {
    const std::size_t n = static_cast<std::size_t>(dfg_.num_nodes());
    if (depth == n) return true;
    ++result.nodes_expanded;
    if ((result.nodes_expanded & 0xFFF) == 0 && deadline_.expired()) {
      result.timed_out = true;
      result.deadline_expired = true;
      return false;
    }
    if (options_.max_backtracks != 0 &&
        result.backtracks > options_.max_backtracks) {
      result.timed_out = true;
      return false;
    }
    // Select the most constrained node: prefer frontier nodes (those with
    // mapped neighbours); among them minimise candidate count, break ties
    // by higher degree. A zero-candidate frontier node forces an immediate
    // backtrack.
    NodeId best = kInvalidNode;
    std::size_t best_cands = 0;
    bool best_frontier = false;
    for (NodeId v = 0; v < dfg_.num_nodes(); ++v) {
      if (assignment_[static_cast<std::size_t>(v)] >= 0) continue;
      const bool frontier =
          mapped_neighbor_count_[static_cast<std::size_t>(v)] > 0;
      if (best != kInvalidNode && best_frontier && !frontier) continue;
      // Counting is capped: we only care whether v beats the current best.
      const std::size_t cap =
          (best == kInvalidNode || (frontier && !best_frontier))
              ? static_cast<std::size_t>(arch_.num_pes())
              : best_cands + 1;
      const std::size_t count =
          count_candidates(v, std::max<std::size_t>(cap, 1));
      if (frontier && count == 0) {
        ++result.backtracks;
        return false;  // dead end: some neighbour choice was wrong
      }
      const bool better =
          best == kInvalidNode || (frontier && !best_frontier) ||
          (frontier == best_frontier &&
           (count < best_cands ||
            (count == best_cands &&
             neighbors_[static_cast<std::size_t>(v)].size() >
                 neighbors_[static_cast<std::size_t>(best)].size())));
      if (better) {
        best = v;
        best_cands = count;
        best_frontier = frontier;
      }
    }
    MONOMAP_ASSERT(best != kInvalidNode);
    std::vector<PeId> cands;
    candidates(best, cands);
    if (depth == 0 && options_.symmetry_breaking) {
      restrict_to_canonical(cands);
    }
    const int label = labels_[static_cast<std::size_t>(best)];
    for (const PeId p : cands) {
      assignment_[static_cast<std::size_t>(best)] = p;
      set_slot(p, label, true);
      for (const NodeId u : neighbors_[static_cast<std::size_t>(best)]) {
        ++mapped_neighbor_count_[static_cast<std::size_t>(u)];
      }
      if (search_dynamic(depth + 1, result)) return true;
      for (const NodeId u : neighbors_[static_cast<std::size_t>(best)]) {
        --mapped_neighbor_count_[static_cast<std::size_t>(u)];
      }
      assignment_[static_cast<std::size_t>(best)] = -1;
      set_slot(p, label, false);
      if (result.timed_out) return false;
      ++result.backtracks;
    }
    return false;
  }

  /// Restrict the first placement to one symmetry octant of a square mesh.
  void restrict_to_canonical(std::vector<PeId>& cands) const {
    if (!symmetry_applicable(arch_)) return;
    std::vector<PeId> filtered;
    for (const PeId p : cands) {
      if (in_canonical_octant(arch_, p)) filtered.push_back(p);
    }
    if (!filtered.empty()) {
      cands = std::move(filtered);
    }
  }

  const Dfg& dfg_;
  const CgraArch& arch_;
  const std::vector<int>& labels_;
  int ii_;
  SpaceOptions options_;
  const Deadline& deadline_;
  std::vector<std::vector<NodeId>> neighbors_;
  std::vector<NodeId> order_;
  std::vector<PeId> assignment_;
  std::vector<bool> used_;
  std::vector<int> mapped_neighbor_count_;  // dynamic-MRV bookkeeping
};

}  // namespace

SpaceResult find_monomorphism(const Dfg& dfg, const CgraArch& arch,
                              const std::vector<int>& labels, int ii,
                              const SpaceOptions& options,
                              const Deadline& deadline) {
  MONOMAP_ASSERT(static_cast<int>(labels.size()) == dfg.num_nodes());
  MONOMAP_ASSERT(ii >= 1);
  if (options.engine == SpaceEngine::kReference) {
    return ReferenceSearcher(dfg, arch, labels, ii, options, deadline).run();
  }
  return BitsetSearcher(dfg, arch, labels, ii, options, deadline).run();
}

}  // namespace monomap
