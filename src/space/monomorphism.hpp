// Monomorphism search: spatial phase of the decoupled mapper (Sec. IV-C).
//
// Given a time solution (a slot label per DFG node), find an injective map
// from nodes to MRRG vertices (PE, slot) such that every node lands on its
// own label's layer and every DFG edge lands on an MRRG edge. Because the
// label layer of each node is fixed, this reduces to placing nodes on PEs:
//
//   * two nodes with equal labels need distinct PEs (mono1),
//   * adjacent DFG nodes need adjacent-or-same PEs (mono3, register-
//     persistence MRRG model),
//
// which is a labelled-subgraph-monomorphism search in the style of RI/VF3
// ([29],[30]). The default bitset engine additionally runs Glasgow-solver
// style supplemental distance-2 filtering (a DFG path u-w-v forces
// phi(u), phi(v) within two grid hops of each other) and conflict-directed
// backjumping: every domain wipeout remembers which placements pruned the
// wiped domain, exhausted nodes jump straight to the deepest culprit
// decision, and a completed refutation exports its final conflict set as a
// small, sound infeasibility certificate (SpaceResult::conflict_nodes).
#ifndef MONOMAP_SPACE_MONOMORPHISM_HPP
#define MONOMAP_SPACE_MONOMORPHISM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "arch/cgra.hpp"
#include "arch/mrrg.hpp"
#include "ir/dfg.hpp"
#include "support/stopwatch.hpp"

namespace monomap {

/// Variable-ordering heuristic (ablation A3).
enum class SpaceOrder {
  kDynamicMrv,    // minimum-remaining-values, recomputed at every step
                  // (default: fail-first; subsumes forward checking)
  kConnectivity,  // static greatest-constraint-first (RI-style)
  kDegree,        // static by descending degree
  kBfs,           // breadth-first from the max-degree node
  kSparseMrv,     // dynamic dom/deg-weighted MRV + ball-center-out value
                  // ordering, tuned for giant sparse domains (bitset
                  // engine; the reference engine treats it as kDynamicMrv).
                  // Completeness-preserving: any variable/value order
                  // explores the same space, so found/not-found never
                  // changes, only search effort. kDynamicMrv auto-upgrades
                  // to this on fabrics of 256+ PEs unless
                  // SpaceOptions::sparse_order_auto is cleared.
};

const char* to_string(SpaceOrder order);

/// Search-engine implementation (both explore the same space and agree on
/// found/not-found for complete runs; see tests/space_engines_test.cpp).
enum class SpaceEngine {
  /// Bit-parallel candidate domains (one PeSet per DFG node) updated
  /// incrementally on assign/unassign through a trail: MRV selection is a
  /// popcount, forward checking is domain-wipeout detection, and the
  /// steady-state recursion performs no heap allocation. Glasgow-solver
  /// style; the default.
  kBitset,
  /// The original scan-based searcher: per-step candidate recounts against
  /// adjacency lists. Kept as the independent oracle for differential
  /// testing and for the A3 ablation's forward-check toggle.
  kReference,
};

const char* to_string(SpaceEngine engine);

struct SpaceOptions {
  SpaceEngine engine = SpaceEngine::kBitset;
  SpaceOrder order = SpaceOrder::kDynamicMrv;
  MrrgModel model = MrrgModel::kRegisterPersistence;
  /// Reference engine only: cheap one-step lookahead. The bitset engine's
  /// domain propagation subsumes it and cannot be disabled.
  bool forward_check = true;
  bool interior_first = true;       // value ordering: prefer interior PEs
  bool symmetry_breaking = true;    // restrict the very first placement
  /// Bitset engine: supplemental distance-2 constraints, two mechanisms
  /// under one toggle: (a) paths-of-length-2 filtering — assigning a node
  /// intersects the domains of DFG nodes at distance exactly 2 with the
  /// CGRA's distance-2 ball, so hopeless placements wipe out levels
  /// earlier — and (b) the root degree filter, which strips PEs whose
  /// closed neighbourhood cannot host a node's largest same-label
  /// neighbour set before the search starts. Both are implied by the
  /// original constraints — toggling never changes found/not-found, only
  /// search effort (ablation toggle; note it disables both, so it
  /// measures the supplemental-filtering family, not paths-of-length-2
  /// alone).
  bool distance2_filter = true;
  /// Bitset engine: multiplicity-aware distance-2 filtering (requires
  /// distance2_filter). When two DFG nodes a, b have k >= 2 common
  /// neighbours that carry the *same* slot label, those k nodes need k
  /// distinct PEs adjacent-or-equal to both phi(a) and phi(b) (mono1 +
  /// mono3), so assigning a restricts b's domain to
  /// CgraArch::common_target_mask(phi(a), k) — a strict sharpening of the
  /// plain distance-2 ball (on a mesh, k = 2 excludes the straight-line
  /// distance-2 targets and k = 3 pins phi(b) = phi(a)). The searcher arms
  /// it on multi-word fabrics only (> 64 PEs): there it cuts refutation
  /// backtracks 13-26% on the hard suite cases, while on tiny grids the
  /// masks are barely sharper than the ball and the extra conflict-set
  /// witnesses measurably weaken backjumping, so small-fabric traces stay
  /// exactly as before. Implied by the original constraints: toggling
  /// never changes found/not-found, only search effort (ablation toggle;
  /// pinned by tests/space_engines_test.cpp).
  bool distance2_multiplicity = true;
  /// Bitset engine: when order is kDynamicMrv, automatically switch to the
  /// sparse-tuned ordering (kSparseMrv: dom/deg-weighted MRV +
  /// ball-center-out value ordering) on fabrics of 256+ PEs, where domains
  /// span multiple cache lines and the dense-regime heuristics stop paying.
  /// Below the threshold plain dynamic MRV runs untouched, so small-grid
  /// search traces stay bit-identical to the recorded baselines.
  /// Completeness-preserving either way; clear this (or set order
  /// explicitly) to pin one ordering for A/B runs.
  bool sparse_order_auto = true;
  /// Bitset engine: conflict-directed backjumping. On exhausting a node's
  /// candidates the search jumps to the deepest decision that pruned any
  /// domain involved in the failure, instead of the chronological parent.
  /// Complete either way (ablation toggle).
  bool backjumping = true;
  /// Backtrack budget per invocation; 0 = unlimited. Exhausting the budget
  /// sets `truncated` (and `timed_out`): the search proved nothing about
  /// the remaining space, so no conflict explanation is emitted. The
  /// decoupled mapper adapts this budget per schedule — shrinking it for
  /// schedule families that keep dying shallow and extending it for
  /// near-misses (DecoupledMapperOptions::adaptive_space_budget) — rather
  /// than treating exhaustion as a verdict on the schedule. (300k: with
  /// conflict-directed backjumping and distance-2 filtering the engine
  /// refutes or places every realistic suite schedule that completes at
  /// all well under this — nw's hardest 4x4 refutation, the suite
  /// maximum, needs ~280k — while anything larger only makes truncated
  /// searches cost more.)
  std::uint64_t max_backtracks = 300'000;
};

struct SpaceResult {
  bool found = false;
  /// Search stopped early (deadline or backtrack budget).
  bool timed_out = false;
  /// The *wall-clock deadline* expired (subset of timed_out).
  bool deadline_expired = false;
  /// The *backtrack budget* ran out (subset of timed_out, disjoint from
  /// deadline_expired): the search was cut off having proven nothing.
  bool truncated = false;
  /// The request's ResourceGovernor denied the searcher's trail reservation
  /// or tripped mid-search (subset of timed_out): the search was cut off
  /// having proven nothing, and the caller classifies the run as a
  /// `memory` outcome rather than a deadline.
  bool memory_out = false;
  std::vector<PeId> pe;  // per node; valid when found
  std::uint64_t nodes_expanded = 0;
  std::uint64_t backtracks = 0;
  /// Bitset engine: non-chronological retreats — exhausting a node's
  /// candidates jumped over at least one intervening decision level.
  std::uint64_t backjumps = 0;
  /// Deepest decision level reached (nodes simultaneously assigned, plus
  /// the one being branched). max_depth == num_nodes on success.
  int max_depth = 0;
  /// Shallowest decision level any candidate exhaustion retreated to
  /// (the minimum backjump target; chronological parent on the reference
  /// engine). Initialised to num_nodes + 1, so that value means "no
  /// retreat happened". The mapper's adaptive budget policy keys off
  /// this: a truncated search whose conflicts all stayed confined near
  /// the leaves is a near-miss worth a bigger budget, while one whose
  /// conflict sets reached shallow decisions marks a hopeless schedule
  /// family.
  int shallowest_retreat = 0;
  /// Bitset engine: PeSet words per candidate domain (1 up to 64 PEs, 16 at
  /// 32x32, 64 at 64x64) — the unit of domain-trail traffic.
  int words_per_domain = 0;
  /// Bitset engine: total words recorded on (and restored from) the domain
  /// trail. Untiled, the trail saves exactly the words a propagation
  /// changed; with tile skipping armed the intersect paths snapshot at
  /// cache-line-tile granularity instead (each entry counts its whole
  /// tile, at most kTileWords), trading a few clean words per snapshot
  /// for branch-free save/restore. Compare against
  /// backtracks * num_nodes * words_per_domain — the traffic a
  /// whole-domain snapshot scheme would pay — to see the saving in bench
  /// JSON. Layout-dependent by design: tiled and untiled rows report
  /// different values for identical searches.
  std::uint64_t trail_words_saved = 0;
  /// Bitset engine: domain prunings contributed by the multiplicity-aware
  /// distance-2 filter (distance2_multiplicity).
  std::uint64_t multiplicity_prunings = 0;
  /// Bitset engine: cache-line tiles the domain-intersection path skipped
  /// because the tile-occupancy map proved them empty (see PeSet). Counted
  /// against the occupancy map, so the value is identical at every SIMD
  /// level and with skipping disabled it is exactly 0.
  std::uint64_t tiles_skipped = 0;
  /// Bitset engine: bytes of domain words the propagation path actually
  /// read or wrote (intersections + single-bit removals). With tile
  /// skipping this shrinks to the occupied-tile traffic; untiled it is
  /// words_per_domain * 8 per intersection. Deterministic given the trace,
  /// so bench layout comparisons pair rows with equal effort counters and
  /// differing bytes.
  std::uint64_t domain_bytes_touched = 0;
  double seconds = 0.0;
  std::string failure_reason;
  /// Conflict explanation, set only when the search produced a complete
  /// refutation (found == false, timed_out == false): a subset of DFG
  /// nodes whose induced sub-DFG, with these slot labels, already admits
  /// no placement — adding more nodes only tightens the problem, so any
  /// schedule that gives exactly these slots to these nodes is spatially
  /// infeasible. The bitset engine derives this from conflict-directed
  /// backjumping's final conflict set: the nodes the refutation branched
  /// on or wiped out plus every node whose placement (or existence, for
  /// distance-2 witnesses and degree-filter witnesses) pruned a domain the
  /// refutation used. A refutation whose conflict set contains no assigned
  /// node ends the search immediately — sound even under a backtrack
  /// budget, because the certificate does not depend on the unexplored
  /// region. The reference engine and the precheck failures report coarser
  /// but still sound sets. The decoupled mapper turns this into a
  /// time-phase nogood clause.
  std::vector<NodeId> conflict_nodes;
};

/// Search for a monomorphism of `dfg` (with per-node slot `labels`, values
/// in [0, ii)) into the MRRG of `arch` at the given II.
SpaceResult find_monomorphism(const Dfg& dfg, const CgraArch& arch,
                              const std::vector<int>& labels, int ii,
                              const SpaceOptions& options = SpaceOptions{},
                              const Deadline& deadline = Deadline::unlimited());

}  // namespace monomap

#endif  // MONOMAP_SPACE_MONOMORPHISM_HPP
