// Monomorphism search: spatial phase of the decoupled mapper (Sec. IV-C).
//
// Given a time solution (a slot label per DFG node), find an injective map
// from nodes to MRRG vertices (PE, slot) such that every node lands on its
// own label's layer and every DFG edge lands on an MRRG edge. Because the
// label layer of each node is fixed, this reduces to placing nodes on PEs:
//
//   * two nodes with equal labels need distinct PEs (mono1),
//   * adjacent DFG nodes need adjacent-or-same PEs (mono3, register-
//     persistence MRRG model),
//
// which is a labelled-subgraph-monomorphism search in the style of RI/VF3
// ([29],[30]): a static greatest-constraint-first variable order, candidate
// sets intersected from already-placed neighbours, and chronological
// backtracking with a cheap forward check.
#ifndef MONOMAP_SPACE_MONOMORPHISM_HPP
#define MONOMAP_SPACE_MONOMORPHISM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "arch/cgra.hpp"
#include "arch/mrrg.hpp"
#include "ir/dfg.hpp"
#include "support/stopwatch.hpp"

namespace monomap {

/// Variable-ordering heuristic (ablation A3).
enum class SpaceOrder {
  kDynamicMrv,    // minimum-remaining-values, recomputed at every step
                  // (default: fail-first; subsumes forward checking)
  kConnectivity,  // static greatest-constraint-first (RI-style)
  kDegree,        // static by descending degree
  kBfs,           // breadth-first from the max-degree node
};

const char* to_string(SpaceOrder order);

/// Search-engine implementation (both explore the same space and agree on
/// found/not-found for complete runs; see tests/space_engines_test.cpp).
enum class SpaceEngine {
  /// Bit-parallel candidate domains (one PeSet per DFG node) updated
  /// incrementally on assign/unassign through a trail: MRV selection is a
  /// popcount, forward checking is domain-wipeout detection, and the
  /// steady-state recursion performs no heap allocation. Glasgow-solver
  /// style; the default.
  kBitset,
  /// The original scan-based searcher: per-step candidate recounts against
  /// adjacency lists. Kept as the independent oracle for differential
  /// testing and for the A3 ablation's forward-check toggle.
  kReference,
};

const char* to_string(SpaceEngine engine);

struct SpaceOptions {
  SpaceEngine engine = SpaceEngine::kBitset;
  SpaceOrder order = SpaceOrder::kDynamicMrv;
  MrrgModel model = MrrgModel::kRegisterPersistence;
  /// Reference engine only: cheap one-step lookahead. The bitset engine's
  /// domain propagation subsumes it and cannot be disabled.
  bool forward_check = true;
  bool interior_first = true;       // value ordering: prefer interior PEs
  bool symmetry_breaking = true;    // restrict the very first placement
  /// Backtrack budget per invocation; 0 = unlimited. The decoupled mapper
  /// treats budget exhaustion as "this schedule is hopeless", not as a
  /// global timeout.
  std::uint64_t max_backtracks = 500'000;
};

struct SpaceResult {
  bool found = false;
  /// Search stopped early (deadline or backtrack budget).
  bool timed_out = false;
  /// The *wall-clock deadline* expired (subset of timed_out).
  bool deadline_expired = false;
  std::vector<PeId> pe;  // per node; valid when found
  std::uint64_t nodes_expanded = 0;
  std::uint64_t backtracks = 0;
  double seconds = 0.0;
  std::string failure_reason;
  /// Conflict explanation, set only when the search *exhausted* the space
  /// (found == false, timed_out == false): a subset of DFG nodes whose
  /// induced sub-DFG, with these slot labels, already admits no placement —
  /// adding more nodes only tightens the problem, so any schedule that
  /// gives exactly these slots to these nodes is spatially infeasible. The
  /// bitset engine reports the set of nodes its failure proof ever branched
  /// on or wiped out (usually a strict subset); the reference engine and
  /// the precheck failures report coarser but still sound sets. The
  /// decoupled mapper turns this into a time-phase nogood clause.
  std::vector<NodeId> conflict_nodes;
};

/// Search for a monomorphism of `dfg` (with per-node slot `labels`, values
/// in [0, ii)) into the MRRG of `arch` at the given II.
SpaceResult find_monomorphism(const Dfg& dfg, const CgraArch& arch,
                              const std::vector<int>& labels, int ii,
                              const SpaceOptions& options = SpaceOptions{},
                              const Deadline& deadline = Deadline::unlimited());

}  // namespace monomap

#endif  // MONOMAP_SPACE_MONOMORPHISM_HPP
