// Data Flow Graph extracted from a LoopKernel (paper Sec. III-A, Fig. 2a).
//
// Nodes are instructions; a directed edge (u -> v, attr = d) records that v
// consumes the value u produced d iterations earlier. d = 0 edges are the
// paper's black "data dependencies", d >= 1 edges the red "loop-carried
// dependencies".
#ifndef MONOMAP_IR_DFG_HPP
#define MONOMAP_IR_DFG_HPP

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "ir/kernel.hpp"

namespace monomap {

/// A DFG: the structural graph plus per-node opcode/name metadata.
/// Parallel edges between the same pair (same operand used twice) are
/// collapsed per (src, dst, distance) triple — the mapping problem only
/// cares about the dependence, not its multiplicity.
class Dfg {
 public:
  /// Extract the DFG of `kernel` (which must validate()).
  static Dfg from_kernel(const LoopKernel& kernel);

  /// Build a bare DFG from an explicit edge list (used by synthetic
  /// workloads and tests). Edges are (src, dst, distance).
  static Dfg from_edges(std::string name, int num_nodes,
                        const std::vector<Edge>& edges);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] int num_nodes() const { return graph_.num_nodes(); }
  [[nodiscard]] int num_edges() const { return graph_.num_edges(); }

  [[nodiscard]] Opcode opcode(NodeId v) const;
  [[nodiscard]] const std::string& node_name(NodeId v) const;

  /// Max undirected degree over nodes (self-edges excluded) — the quantity
  /// the paper's connectivity constraints bound per time step.
  [[nodiscard]] int max_undirected_degree() const;

  /// True if every node is reachable from every other ignoring direction.
  [[nodiscard]] bool is_connected() const;

 private:
  Dfg(std::string name, Graph graph, std::vector<Opcode> ops,
      std::vector<std::string> names)
      : name_(std::move(name)),
        graph_(std::move(graph)),
        ops_(std::move(ops)),
        names_(std::move(names)) {}

  std::string name_;
  Graph graph_;
  std::vector<Opcode> ops_;
  std::vector<std::string> names_;
};

}  // namespace monomap

#endif  // MONOMAP_IR_DFG_HPP
