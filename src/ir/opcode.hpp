// Operation set of the loop-body IR.
//
// This models the instruction repertoire of a CGRA PE ALU (paper Fig. 1):
// integer arithmetic/logic, compares, select, and memory access through the
// shared data-memory port. All operations have unit latency, matching the
// paper's architecture model.
#ifndef MONOMAP_IR_OPCODE_HPP
#define MONOMAP_IR_OPCODE_HPP

#include <cstdint>
#include <string>

namespace monomap {

enum class Opcode : std::uint8_t {
  kConst,   // immediate value
  kIndex,   // current loop iteration index
  kPhi,     // loop-header phi: identity of its (usually loop-carried) operand
  kLoad,    // data-memory read:  result = mem[space][op0]
  kStore,   // data-memory write: mem[space][op0] = op1; result = op1
  kAdd,
  kSub,
  kMul,
  kDiv,     // op1 == 0 yields 0 (hardware-style saturating definition)
  kRem,     // op1 == 0 yields 0
  kAnd,
  kOr,
  kXor,
  kShl,     // shift amount masked to 6 bits
  kShr,     // logical shift right, amount masked to 6 bits
  kAshr,    // arithmetic shift right
  kMin,
  kMax,
  kAbs,     // unary
  kNeg,     // unary
  kNot,     // unary bitwise complement
  kCmpEq,   // compares produce 0/1
  kCmpNe,
  kCmpLt,   // signed
  kCmpLe,
  kSelect,  // op0 != 0 ? op1 : op2
};

/// Number of operand references the opcode consumes (0..3).
int opcode_arity(Opcode op);

/// Mnemonic, e.g. "add", "load".
const char* opcode_name(Opcode op);

/// True for kLoad/kStore.
bool opcode_is_memory(Opcode op);

/// Apply a pure opcode (everything except load/store/index/const) to
/// operand values. Precondition: op is pure and arity matches.
std::int64_t eval_pure(Opcode op, std::int64_t a, std::int64_t b,
                       std::int64_t c);

std::string to_string(Opcode op);

}  // namespace monomap

#endif  // MONOMAP_IR_OPCODE_HPP
