#include "ir/opcode.hpp"

#include "support/assert.hpp"

namespace monomap {

int opcode_arity(Opcode op) {
  switch (op) {
    case Opcode::kConst:
    case Opcode::kIndex:
      return 0;
    case Opcode::kPhi:
    case Opcode::kLoad:
    case Opcode::kAbs:
    case Opcode::kNeg:
    case Opcode::kNot:
      return 1;
    case Opcode::kStore:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kAshr:
    case Opcode::kMin:
    case Opcode::kMax:
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
    case Opcode::kCmpLt:
    case Opcode::kCmpLe:
      return 2;
    case Opcode::kSelect:
      return 3;
  }
  MONOMAP_ASSERT_MSG(false, "unknown opcode");
  return 0;
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kConst: return "const";
    case Opcode::kIndex: return "index";
    case Opcode::kPhi: return "phi";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kRem: return "rem";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kAshr: return "ashr";
    case Opcode::kMin: return "min";
    case Opcode::kMax: return "max";
    case Opcode::kAbs: return "abs";
    case Opcode::kNeg: return "neg";
    case Opcode::kNot: return "not";
    case Opcode::kCmpEq: return "cmpeq";
    case Opcode::kCmpNe: return "cmpne";
    case Opcode::kCmpLt: return "cmplt";
    case Opcode::kCmpLe: return "cmple";
    case Opcode::kSelect: return "select";
  }
  return "?";
}

bool opcode_is_memory(Opcode op) {
  return op == Opcode::kLoad || op == Opcode::kStore;
}

std::int64_t eval_pure(Opcode op, std::int64_t a, std::int64_t b,
                       std::int64_t c) {
  using U = std::uint64_t;
  switch (op) {
    case Opcode::kAdd: return static_cast<std::int64_t>(static_cast<U>(a) + static_cast<U>(b));
    case Opcode::kSub: return static_cast<std::int64_t>(static_cast<U>(a) - static_cast<U>(b));
    case Opcode::kMul: return static_cast<std::int64_t>(static_cast<U>(a) * static_cast<U>(b));
    case Opcode::kDiv: return b == 0 ? 0 : a / b;
    case Opcode::kRem: return b == 0 ? 0 : a % b;
    case Opcode::kAnd: return a & b;
    case Opcode::kOr: return a | b;
    case Opcode::kXor: return a ^ b;
    case Opcode::kShl: return static_cast<std::int64_t>(static_cast<U>(a) << (static_cast<U>(b) & 63));
    case Opcode::kShr: return static_cast<std::int64_t>(static_cast<U>(a) >> (static_cast<U>(b) & 63));
    case Opcode::kAshr: return a >> (static_cast<U>(b) & 63);
    case Opcode::kMin: return a < b ? a : b;
    case Opcode::kMax: return a > b ? a : b;
    case Opcode::kAbs: return a < 0 ? -a : a;
    case Opcode::kNeg: return -a;
    case Opcode::kNot: return ~a;
    case Opcode::kCmpEq: return a == b ? 1 : 0;
    case Opcode::kCmpNe: return a != b ? 1 : 0;
    case Opcode::kCmpLt: return a < b ? 1 : 0;
    case Opcode::kCmpLe: return a <= b ? 1 : 0;
    case Opcode::kSelect: return a != 0 ? b : c;
    case Opcode::kPhi: return a;
    case Opcode::kConst:
    case Opcode::kIndex:
    case Opcode::kLoad:
    case Opcode::kStore:
      break;
  }
  MONOMAP_ASSERT_MSG(false, "eval_pure on non-pure opcode " << opcode_name(op));
  return 0;
}

std::string to_string(Opcode op) { return opcode_name(op); }

}  // namespace monomap
