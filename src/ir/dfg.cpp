#include "ir/dfg.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "graph/algorithms.hpp"

namespace monomap {

Dfg Dfg::from_kernel(const LoopKernel& kernel) {
  kernel.validate();
  const int n = kernel.size();
  Graph g(n);
  std::vector<Opcode> ops;
  std::vector<std::string> names;
  ops.reserve(static_cast<std::size_t>(n));
  names.reserve(static_cast<std::size_t>(n));
  for (InstrId id = 0; id < n; ++id) {
    ops.push_back(kernel.instr(id).op);
    names.push_back(kernel.instr(id).name);
  }
  std::set<std::tuple<NodeId, NodeId, int>> seen;
  for (InstrId id = 0; id < n; ++id) {
    for (const OperandRef& o : kernel.instr(id).operands) {
      const auto key = std::make_tuple(o.producer, id, o.distance);
      if (seen.insert(key).second) {
        g.add_edge(o.producer, id, o.distance);
      }
    }
  }
  return Dfg(kernel.name(), std::move(g), std::move(ops), std::move(names));
}

Dfg Dfg::from_edges(std::string name, int num_nodes,
                    const std::vector<Edge>& edges) {
  Graph g(num_nodes);
  for (const Edge& e : edges) {
    g.add_edge(e.src, e.dst, e.attr);
  }
  std::vector<Opcode> ops(static_cast<std::size_t>(num_nodes), Opcode::kAdd);
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(num_nodes));
  for (int v = 0; v < num_nodes; ++v) {
    names.push_back("n" + std::to_string(v));
  }
  return Dfg(std::move(name), std::move(g), std::move(ops), std::move(names));
}

Opcode Dfg::opcode(NodeId v) const {
  MONOMAP_ASSERT(graph_.has_node(v));
  return ops_[static_cast<std::size_t>(v)];
}

const std::string& Dfg::node_name(NodeId v) const {
  MONOMAP_ASSERT(graph_.has_node(v));
  return names_[static_cast<std::size_t>(v)];
}

int Dfg::max_undirected_degree() const {
  int best = 0;
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    best = std::max(
        best, static_cast<int>(graph_.undirected_neighbors(v).size()));
  }
  return best;
}

bool Dfg::is_connected() const {
  if (graph_.num_nodes() == 0) return true;
  int count = 0;
  undirected_components(graph_, &count);
  return count == 1;
}

}  // namespace monomap
