// Sequential reference interpreter for LoopKernels.
//
// Executes the loop body iteration by iteration exactly as a scalar CPU
// would. The CGRA simulator (src/sim) replays the *mapped* schedule and must
// produce bit-identical results — this is the oracle side of that check.
#ifndef MONOMAP_IR_INTERPRETER_HPP
#define MONOMAP_IR_INTERPRETER_HPP

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "ir/kernel.hpp"

namespace monomap {

/// Sparse data memory shared by all kernels. Reads of never-written cells
/// return a deterministic pseudo-random value derived from (space, address),
/// so "input arrays" have reproducible contents without explicit setup.
class DataMemory {
 public:
  explicit DataMemory(std::uint64_t salt = 0) : salt_(salt) {}

  [[nodiscard]] std::int64_t read(int space, std::int64_t addr) const;
  void write(int space, std::int64_t addr, std::int64_t value);

  /// All cells ever written, in deterministic (space, addr) order.
  [[nodiscard]] const std::map<std::pair<int, std::int64_t>, std::int64_t>&
  written_cells() const {
    return cells_;
  }

  bool operator==(const DataMemory& other) const {
    return cells_ == other.cells_;
  }

 private:
  std::uint64_t salt_;
  std::map<std::pair<int, std::int64_t>, std::int64_t> cells_;
};

/// Result of running a kernel for N iterations.
struct ExecutionTrace {
  /// values[i][v] = value produced by instruction v in iteration i.
  std::vector<std::vector<std::int64_t>> values;
  DataMemory memory;
};

/// Run `kernel` sequentially for `iterations` iterations starting from
/// `memory` (moved in). Loop-carried references with i - d < 0 observe the
/// producer instruction's `init` value.
ExecutionTrace interpret(const LoopKernel& kernel, int iterations,
                         DataMemory memory = DataMemory());

}  // namespace monomap

#endif  // MONOMAP_IR_INTERPRETER_HPP
