#include "ir/interpreter.hpp"

#include <deque>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace monomap {

std::int64_t DataMemory::read(int space, std::int64_t addr) const {
  const auto it = cells_.find({space, addr});
  if (it != cells_.end()) {
    return it->second;
  }
  // Deterministic "initial array contents": small values keep products and
  // shifts within comfortable ranges for test comparison.
  const std::uint64_t h =
      mix64(salt_ ^ (static_cast<std::uint64_t>(space) << 56) ^
            static_cast<std::uint64_t>(addr) * 0x9E3779B97F4A7C15ULL);
  return static_cast<std::int64_t>(h % 1024);
}

void DataMemory::write(int space, std::int64_t addr, std::int64_t value) {
  cells_[{space, addr}] = value;
}

namespace {

/// Topological order of the distance-0 dependence DAG.
std::vector<InstrId> execution_order(const LoopKernel& kernel) {
  const int n = kernel.size();
  std::vector<int> in_deg(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<InstrId>> consumers(static_cast<std::size_t>(n));
  for (InstrId id = 0; id < n; ++id) {
    for (const OperandRef& o : kernel.instr(id).operands) {
      if (o.distance == 0) {
        ++in_deg[static_cast<std::size_t>(id)];
        consumers[static_cast<std::size_t>(o.producer)].push_back(id);
      }
    }
  }
  std::deque<InstrId> ready;
  for (InstrId id = 0; id < n; ++id) {
    if (in_deg[static_cast<std::size_t>(id)] == 0) ready.push_back(id);
  }
  std::vector<InstrId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const InstrId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (InstrId c : consumers[static_cast<std::size_t>(v)]) {
      if (--in_deg[static_cast<std::size_t>(c)] == 0) ready.push_back(c);
    }
  }
  MONOMAP_ASSERT(static_cast<int>(order.size()) == n);
  return order;
}

}  // namespace

ExecutionTrace interpret(const LoopKernel& kernel, int iterations,
                         DataMemory memory) {
  kernel.validate();
  MONOMAP_ASSERT(iterations >= 0);
  const int n = kernel.size();
  const std::vector<InstrId> order = execution_order(kernel);

  ExecutionTrace trace;
  trace.memory = std::move(memory);
  trace.values.assign(static_cast<std::size_t>(iterations),
                      std::vector<std::int64_t>(static_cast<std::size_t>(n), 0));

  auto operand_value = [&](const OperandRef& o, int iter) -> std::int64_t {
    const int src_iter = iter - o.distance;
    if (src_iter < 0) {
      return kernel.instr(o.producer).init;
    }
    return trace.values[static_cast<std::size_t>(src_iter)]
                       [static_cast<std::size_t>(o.producer)];
  };

  for (int iter = 0; iter < iterations; ++iter) {
    auto& vals = trace.values[static_cast<std::size_t>(iter)];
    for (const InstrId id : order) {
      const Instruction& in = kernel.instr(id);
      std::int64_t result = 0;
      switch (in.op) {
        case Opcode::kConst:
          result = in.imm;
          break;
        case Opcode::kIndex:
          result = iter;
          break;
        case Opcode::kLoad:
          result = trace.memory.read(static_cast<int>(in.imm),
                                     operand_value(in.operands[0], iter));
          break;
        case Opcode::kStore: {
          const std::int64_t addr = operand_value(in.operands[0], iter);
          result = operand_value(in.operands[1], iter);
          trace.memory.write(static_cast<int>(in.imm), addr, result);
          break;
        }
        default: {
          const std::int64_t a =
              !in.operands.empty() ? operand_value(in.operands[0], iter) : 0;
          const std::int64_t b =
              in.rhs_is_imm
                  ? in.imm
                  : (in.operands.size() > 1
                         ? operand_value(in.operands[1], iter)
                         : 0);
          const std::int64_t c =
              in.operands.size() > 2 ? operand_value(in.operands[2], iter) : 0;
          result = eval_pure(in.op, a, b, c);
          break;
        }
      }
      vals[static_cast<std::size_t>(id)] = result;
    }
  }
  return trace;
}

}  // namespace monomap
