#include "ir/kernel.hpp"

#include <deque>

#include "support/assert.hpp"

namespace monomap {

const Instruction& LoopKernel::instr(InstrId id) const {
  MONOMAP_ASSERT(id >= 0 && id < size());
  return instrs_[static_cast<std::size_t>(id)];
}

InstrId LoopKernel::append(Instruction instr) {
  const auto id = static_cast<InstrId>(instrs_.size());
  if (instr.name.empty()) {
    instr.name = std::string(opcode_name(instr.op)) + std::to_string(id);
  }
  instrs_.push_back(std::move(instr));
  return id;
}

InstrId LoopKernel::constant(std::int64_t value, std::string name) {
  Instruction in;
  in.op = Opcode::kConst;
  in.imm = value;
  in.name = std::move(name);
  return append(std::move(in));
}

InstrId LoopKernel::index(std::string name) {
  Instruction in;
  in.op = Opcode::kIndex;
  in.name = std::move(name);
  return append(std::move(in));
}

InstrId LoopKernel::load(int space, OperandRef addr, std::string name) {
  Instruction in;
  in.op = Opcode::kLoad;
  in.imm = space;
  in.operands = {addr};
  in.name = std::move(name);
  return append(std::move(in));
}

InstrId LoopKernel::store(int space, OperandRef addr, OperandRef value,
                          std::string name) {
  Instruction in;
  in.op = Opcode::kStore;
  in.imm = space;
  in.operands = {addr, value};
  in.name = std::move(name);
  return append(std::move(in));
}

InstrId LoopKernel::unary(Opcode op, OperandRef a, std::string name) {
  MONOMAP_ASSERT(opcode_arity(op) == 1 && !opcode_is_memory(op));
  Instruction in;
  in.op = op;
  in.operands = {a};
  in.name = std::move(name);
  return append(std::move(in));
}

InstrId LoopKernel::binary(Opcode op, OperandRef a, OperandRef b,
                           std::string name) {
  MONOMAP_ASSERT(opcode_arity(op) == 2 && !opcode_is_memory(op));
  Instruction in;
  in.op = op;
  in.operands = {a, b};
  in.name = std::move(name);
  return append(std::move(in));
}

InstrId LoopKernel::binary_imm(Opcode op, OperandRef a, std::int64_t rhs,
                               std::string name) {
  MONOMAP_ASSERT(opcode_arity(op) == 2 && !opcode_is_memory(op));
  Instruction in;
  in.op = op;
  in.operands = {a};
  in.imm = rhs;
  in.rhs_is_imm = true;
  in.name = std::move(name);
  return append(std::move(in));
}

InstrId LoopKernel::phi(OperandRef value, std::string name) {
  Instruction in;
  in.op = Opcode::kPhi;
  in.operands = {value};
  in.name = std::move(name);
  return append(std::move(in));
}

InstrId LoopKernel::select(OperandRef cond, OperandRef if_true,
                           OperandRef if_false, std::string name) {
  Instruction in;
  in.op = Opcode::kSelect;
  in.operands = {cond, if_true, if_false};
  in.name = std::move(name);
  return append(std::move(in));
}

void LoopKernel::set_init(InstrId id, std::int64_t init_value) {
  MONOMAP_ASSERT(id >= 0 && id < size());
  instrs_[static_cast<std::size_t>(id)].init = init_value;
}

void LoopKernel::set_operand(InstrId id, int operand_index, OperandRef ref) {
  MONOMAP_ASSERT(id >= 0 && id < size());
  auto& ops = instrs_[static_cast<std::size_t>(id)].operands;
  MONOMAP_ASSERT(operand_index >= 0 &&
                 operand_index < static_cast<int>(ops.size()));
  ops[static_cast<std::size_t>(operand_index)] = ref;
}

void LoopKernel::validate() const {
  const int n = size();
  std::vector<int> in_deg(static_cast<std::size_t>(n), 0);
  for (InstrId id = 0; id < n; ++id) {
    const Instruction& in = instrs_[static_cast<std::size_t>(id)];
    int expected = opcode_arity(in.op);
    if (in.rhs_is_imm) {
      MONOMAP_ASSERT_MSG(expected == 2 && !opcode_is_memory(in.op),
                         "instr " << id << ": rhs_is_imm requires a binary ALU op");
      expected = 1;
    }
    MONOMAP_ASSERT_MSG(
        static_cast<int>(in.operands.size()) == expected,
        "instr " << id << " (" << opcode_name(in.op) << ") has "
                 << in.operands.size() << " operands");
    for (const OperandRef& o : in.operands) {
      MONOMAP_ASSERT_MSG(o.producer >= 0 && o.producer < n,
                         "instr " << id << " references out-of-range producer "
                                  << o.producer);
      MONOMAP_ASSERT_MSG(o.distance >= 0,
                         "instr " << id << " has negative distance");
      if (o.distance == 0) {
        ++in_deg[static_cast<std::size_t>(id)];
      }
    }
  }
  // Kahn over distance-0 references to confirm acyclicity.
  std::deque<InstrId> ready;
  for (InstrId id = 0; id < n; ++id) {
    if (in_deg[static_cast<std::size_t>(id)] == 0) ready.push_back(id);
  }
  // consumers-by-producer index
  std::vector<std::vector<InstrId>> consumers(static_cast<std::size_t>(n));
  for (InstrId id = 0; id < n; ++id) {
    for (const OperandRef& o : instrs_[static_cast<std::size_t>(id)].operands) {
      if (o.distance == 0) {
        consumers[static_cast<std::size_t>(o.producer)].push_back(id);
      }
    }
  }
  int visited = 0;
  while (!ready.empty()) {
    const InstrId v = ready.front();
    ready.pop_front();
    ++visited;
    for (InstrId c : consumers[static_cast<std::size_t>(v)]) {
      if (--in_deg[static_cast<std::size_t>(c)] == 0) ready.push_back(c);
    }
  }
  MONOMAP_ASSERT_MSG(visited == n,
                     "kernel '" << name_ << "' has a zero-distance dependency cycle");
}

}  // namespace monomap
