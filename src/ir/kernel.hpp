// Loop-body IR: the unit of compilation.
//
// A LoopKernel is the body of an innermost loop with no calls or branches —
// exactly the loops the paper selects from MiBench/Rodinia. Instructions
// reference producer instructions directly; a reference can carry a
// loop-carried *distance* d, meaning "the value `producer` computed d
// iterations ago" (d = 0 is a plain intra-iteration data dependency).
// This replaces LLVM IR + DFG extraction in the paper's flow (DESIGN.md S3).
#ifndef MONOMAP_IR_KERNEL_HPP
#define MONOMAP_IR_KERNEL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "ir/opcode.hpp"

namespace monomap {

using InstrId = std::int32_t;

/// Reference to the value of `producer`, `distance` iterations back.
struct OperandRef {
  InstrId producer = -1;
  int distance = 0;
};

/// One IR instruction. `imm` is the value of kConst, the memory space of
/// kLoad/kStore, or (when rhs_is_imm) the embedded right-hand-side constant
/// of a binary ALU op — mirroring LLVM, where constants are immediates and
/// not DFG nodes. `init` is the value a loop-carried reference observes for
/// iterations before the first (e.g. an accumulator's initial value).
struct Instruction {
  Opcode op = Opcode::kConst;
  std::vector<OperandRef> operands;
  std::int64_t imm = 0;
  std::int64_t init = 0;
  bool rhs_is_imm = false;
  std::string name;
};

/// An innermost-loop body. Instructions are stored in program order; operand
/// distance-0 references must form a DAG (checked by validate()).
class LoopKernel {
 public:
  explicit LoopKernel(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int size() const { return static_cast<int>(instrs_.size()); }
  [[nodiscard]] const Instruction& instr(InstrId id) const;
  [[nodiscard]] const std::vector<Instruction>& instructions() const {
    return instrs_;
  }

  /// Append a fully-formed instruction; returns its id.
  InstrId append(Instruction instr);

  // --- Builder shorthands (used by the workload suite) -------------------

  InstrId constant(std::int64_t value, std::string name = "");
  InstrId index(std::string name = "i");
  InstrId load(int space, OperandRef addr, std::string name = "");
  InstrId store(int space, OperandRef addr, OperandRef value,
                std::string name = "");
  InstrId unary(Opcode op, OperandRef a, std::string name = "");
  InstrId binary(Opcode op, OperandRef a, OperandRef b, std::string name = "");
  /// Binary ALU op with an embedded constant right-hand side (one DFG edge).
  InstrId binary_imm(Opcode op, OperandRef a, std::int64_t rhs,
                     std::string name = "");
  /// Loop-header phi; `value` is usually a carried() reference.
  InstrId phi(OperandRef value, std::string name = "");
  InstrId select(OperandRef cond, OperandRef if_true, OperandRef if_false,
                 std::string name = "");

  /// Set the pre-loop value observed by loop-carried references to `id`.
  void set_init(InstrId id, std::int64_t init_value);

  /// Replace an operand after construction — used to close recurrence
  /// cycles: build the phi with a placeholder, then patch in the carried
  /// reference once the cycle's tail instruction exists.
  void set_operand(InstrId id, int operand_index, OperandRef ref);

  /// Check structural sanity: operand ids in range, arities match,
  /// distances >= 0, distance-0 references acyclic. Throws AssertionError.
  void validate() const;

 private:
  std::string name_;
  std::vector<Instruction> instrs_;
};

/// Convenience: a distance-0 reference.
inline OperandRef ref(InstrId producer) { return OperandRef{producer, 0}; }

/// A loop-carried reference to the value produced `distance` iterations ago.
inline OperandRef carried(InstrId producer, int distance = 1) {
  return OperandRef{producer, distance};
}

}  // namespace monomap

#endif  // MONOMAP_IR_KERNEL_HPP
