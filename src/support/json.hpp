// Minimal JSON value parser + string escaping for the serving layer.
//
// The daemon's wire format is newline-delimited JSON objects; requests are
// small and flat, so this is a straightforward recursive-descent parser
// into a variant tree — no external dependency, no streaming. Responses
// are assembled with ordinary string concatenation plus json_escape()
// (bench/bench_json.hpp remains the writer for the bench emitters).
//
// Numbers are held as double (the protocol's integers are all well inside
// the 2^53 exact range). Parse errors return std::nullopt rather than
// throwing: a malformed request line is an expected input, not an
// exceptional state.
#ifndef MONOMAP_SUPPORT_JSON_HPP
#define MONOMAP_SUPPORT_JSON_HPP

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace monomap::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double d) : kind_(Kind::kNumber), num_(d) {}
  explicit Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  explicit Value(Array a)
      : kind_(Kind::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : kind_(Kind::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const Array& as_array() const { return *arr_; }
  [[nodiscard]] const Object& as_object() const { return *obj_; }

  /// Object member lookup; nullptr when not an object or key absent.
  [[nodiscard]] const Value* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    auto it = obj_->find(key);
    return it == obj_->end() ? nullptr : &it->second;
  }

  // Typed member accessors with defaults — the request-decoding idiom.
  [[nodiscard]] double number_or(const std::string& key, double dflt) const {
    const Value* v = find(key);
    return v != nullptr && v->is_number() ? v->num_ : dflt;
  }
  [[nodiscard]] bool bool_or(const std::string& key, bool dflt) const {
    const Value* v = find(key);
    return v != nullptr && v->is_bool() ? v->bool_ : dflt;
  }
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string dflt) const {
    const Value* v = find(key);
    return v != nullptr && v->is_string() ? v->str_ : std::move(dflt);
  }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Parse one JSON document; std::nullopt on any syntax error or trailing
/// garbage (surrounding whitespace is fine).
std::optional<Value> parse(std::string_view text);

/// Escape `s` for embedding inside a JSON string literal (quotes not
/// included).
std::string escape(std::string_view s);

}  // namespace monomap::json

#endif  // MONOMAP_SUPPORT_JSON_HPP
