#include "support/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace monomap::json {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run() {
    skip_ws();
    std::optional<Value> v = value(0);
    if (!v.has_value()) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Value> value(int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"': {
        std::optional<std::string> s = string();
        if (!s.has_value()) return std::nullopt;
        return Value(std::move(*s));
      }
      case 't':
        return literal("true") ? std::optional<Value>(Value(true))
                               : std::nullopt;
      case 'f':
        return literal("false") ? std::optional<Value>(Value(false))
                                : std::nullopt;
      case 'n':
        return literal("null") ? std::optional<Value>(Value())
                               : std::nullopt;
      default:
        return number();
    }
  }

  std::optional<Value> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    double out = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (ec != std::errc{} || ptr != text_.data() + pos_) return std::nullopt;
    return Value(out);
  }

  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return std::nullopt;
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs in DFG
            // names are not a case the protocol needs; reject them).
            if (code >= 0xD800 && code <= 0xDFFF) return std::nullopt;
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> array(int depth) {
    if (!eat('[')) return std::nullopt;
    Array out;
    skip_ws();
    if (eat(']')) return Value(std::move(out));
    for (;;) {
      skip_ws();
      std::optional<Value> v = value(depth + 1);
      if (!v.has_value()) return std::nullopt;
      out.push_back(std::move(*v));
      skip_ws();
      if (eat(']')) return Value(std::move(out));
      if (!eat(',')) return std::nullopt;
    }
  }

  std::optional<Value> object(int depth) {
    if (!eat('{')) return std::nullopt;
    Object out;
    skip_ws();
    if (eat('}')) return Value(std::move(out));
    for (;;) {
      skip_ws();
      std::optional<std::string> key = string();
      if (!key.has_value()) return std::nullopt;
      skip_ws();
      if (!eat(':')) return std::nullopt;
      skip_ws();
      std::optional<Value> v = value(depth + 1);
      if (!v.has_value()) return std::nullopt;
      out.insert_or_assign(std::move(*key), std::move(*v));
      skip_ws();
      if (eat('}')) return Value(std::move(out));
      if (!eat(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text) {
  return Parser(text).run();
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace monomap::json
