// Deterministic pseudo-random number generation (xoshiro256**, SplitMix64).
//
// All randomized components (synthetic workloads, search tie-breaking, test
// sweeps) draw from this generator so that runs are reproducible from a seed.
#ifndef MONOMAP_SUPPORT_RNG_HPP
#define MONOMAP_SUPPORT_RNG_HPP

#include <cstdint>

#include "support/assert.hpp"

namespace monomap {

/// SplitMix64 step; used for seeding and as a cheap hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a single value (deterministic hash for memory init etc.).
constexpr std::uint64_t mix64(std::uint64_t value) {
  std::uint64_t s = value;
  return splitmix64(s);
}

/// xoshiro256** 1.0 — fast, high-quality, reproducible across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x6d6f6e6f6d617021ULL) {
    std::uint64_t s = seed;
    for (auto& word : state_) {
      word = splitmix64(s);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    MONOMAP_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    MONOMAP_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace monomap

#endif  // MONOMAP_SUPPORT_RNG_HPP
