#include "support/resource.hpp"

namespace monomap {

thread_local ResourceGovernor* GovernorScope::current_ = nullptr;

}  // namespace monomap
