// Kernel implementations for support/simd.hpp.
//
// Layout: one KernelTable of function pointers per level; dispatch swaps an
// atomic table pointer. The scalar table is the portable reference; the
// AVX2/AVX-512 tables are compiled with per-function target attributes so
// this file builds (and the binary runs) on any x86-64 — the vector code is
// only ever *executed* after a CPUID check. Non-x86 builds get the scalar
// table alone.
#include "support/simd.hpp"

#include <atomic>
#include <bit>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

#include "support/assert.hpp"

// MONOMAP_SIMD_FORCE_SCALAR (CMake option) drops the vector tables even on
// x86 — the portability assert CI uses to prove the scalar reference builds
// and dispatches standalone, exactly as a non-x86 (e.g. NEON) host would.
#if !defined(MONOMAP_SIMD_FORCE_SCALAR) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define MONOMAP_SIMD_X86 1
#include <immintrin.h>
#else
#define MONOMAP_SIMD_X86 0
#endif

namespace monomap::simd {
namespace {

struct KernelTable {
  void (*and_assign)(Word*, const Word*, std::size_t);
  void (*or_assign)(Word*, const Word*, std::size_t);
  void (*and_not_assign)(Word*, const Word*, std::size_t);
  Word (*and_assign_any)(Word*, const Word*, std::size_t);
  int (*count)(const Word*, std::size_t);
  int (*intersect_count)(const Word*, const Word*, std::size_t);
  bool (*all_zero)(const Word*, std::size_t);
  bool (*intersects)(const Word*, const Word*, std::size_t);
  bool (*is_subset_of)(const Word*, const Word*, std::size_t);
  AndPreview (*and_preview)(const Word*, const Word*, std::size_t);
  Word (*occupancy_mask)(const Word*, std::size_t);
  Level level;
};

// --- scalar reference (4-way unrolled) -------------------------------------
// The unroll gives the compiler independent accumulator chains to schedule;
// semantics are the plain word loop.

void s_and_assign(Word* a, const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a[i] &= b[i];
    a[i + 1] &= b[i + 1];
    a[i + 2] &= b[i + 2];
    a[i + 3] &= b[i + 3];
  }
  for (; i < n; ++i) a[i] &= b[i];
}

void s_or_assign(Word* a, const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a[i] |= b[i];
    a[i + 1] |= b[i + 1];
    a[i + 2] |= b[i + 2];
    a[i + 3] |= b[i + 3];
  }
  for (; i < n; ++i) a[i] |= b[i];
}

void s_and_not_assign(Word* a, const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a[i] &= ~b[i];
    a[i + 1] &= ~b[i + 1];
    a[i + 2] &= ~b[i + 2];
    a[i + 3] &= ~b[i + 3];
  }
  for (; i < n; ++i) a[i] &= ~b[i];
}

Word s_and_assign_any(Word* a, const Word* b, std::size_t n) {
  Word any0 = 0;
  Word any1 = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    any0 |= (a[i] &= b[i]);
    any1 |= (a[i + 1] &= b[i + 1]);
  }
  for (; i < n; ++i) any0 |= (a[i] &= b[i]);
  return any0 | any1;
}

int s_count(const Word* a, std::size_t n) {
  int c0 = 0;
  int c1 = 0;
  int c2 = 0;
  int c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += std::popcount(a[i]);
    c1 += std::popcount(a[i + 1]);
    c2 += std::popcount(a[i + 2]);
    c3 += std::popcount(a[i + 3]);
  }
  for (; i < n; ++i) c0 += std::popcount(a[i]);
  return c0 + c1 + c2 + c3;
}

int s_intersect_count(const Word* a, const Word* b, std::size_t n) {
  int c0 = 0;
  int c1 = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    c0 += std::popcount(a[i] & b[i]);
    c1 += std::popcount(a[i + 1] & b[i + 1]);
  }
  for (; i < n; ++i) c0 += std::popcount(a[i] & b[i]);
  return c0 + c1;
}

bool s_all_zero(const Word* a, std::size_t n) {
  Word acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc |= a[i];
  return acc == 0;
}

bool s_intersects(const Word* a, const Word* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

bool s_is_subset_of(const Word* a, const Word* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

AndPreview s_and_preview(const Word* a, const Word* b, std::size_t n) {
  AndPreview r{0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    const Word next = a[i] & b[i];
    r.any |= next;
    r.dirty |= static_cast<Word>(next != a[i]) << i;
  }
  return r;
}

Word s_occupancy_mask(const Word* a, std::size_t n) {
  Word occ = 0;
  std::size_t tile = 0;
  for (std::size_t base = 0; base < n; base += kTileWords, ++tile) {
    const std::size_t end = base + kTileWords < n ? base + kTileWords : n;
    Word acc = 0;
    for (std::size_t i = base; i < end; ++i) acc |= a[i];
    occ |= static_cast<Word>(acc != 0) << tile;
  }
  return occ;
}

constexpr KernelTable kScalarTable{
    s_and_assign, s_or_assign,   s_and_not_assign, s_and_assign_any,
    s_count,      s_intersect_count, s_all_zero,   s_intersects,
    s_is_subset_of, s_and_preview, s_occupancy_mask, Level::kScalar,
};

#if MONOMAP_SIMD_X86

// --- AVX2 ------------------------------------------------------------------
// target attributes keep the rest of the build portable. "popcnt" rides
// along for the scalar tails (every AVX2 CPU has it; dispatch still checks).

#define MONOMAP_AVX2 __attribute__((target("avx2,popcnt")))

MONOMAP_AVX2 void v2_and_assign(Word* a, const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < n; ++i) a[i] &= b[i];
}

MONOMAP_AVX2 void v2_or_assign(Word* a, const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_or_si256(va, vb));
  }
  for (; i < n; ++i) a[i] |= b[i];
}

MONOMAP_AVX2 void v2_and_not_assign(Word* a, const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // andnot(x, y) = ~x & y, so operands swap.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_andnot_si256(vb, va));
  }
  for (; i < n; ++i) a[i] &= ~b[i];
}

MONOMAP_AVX2 Word v2_and_assign_any(Word* a, const Word* b, std::size_t n) {
  __m256i vany = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vn = _mm256_and_si256(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i), vn);
    vany = _mm256_or_si256(vany, vn);
  }
  Word any = !_mm256_testz_si256(vany, vany);
  for (; i < n; ++i) any |= (a[i] &= b[i]);
  return any;
}

/// Per-64-bit-lane popcount via the pshufb nibble lookup (Mula's method);
/// returns 4 lane counts as epi64.
MONOMAP_AVX2 inline __m256i v2_popcount_epi64(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

MONOMAP_AVX2 int v2_count(const Word* a, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    acc = _mm256_add_epi64(acc, v2_popcount_epi64(va));
  }
  Word lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int c = static_cast<int>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) c += std::popcount(a[i]);
  return c;
}

MONOMAP_AVX2 int v2_intersect_count(const Word* a, const Word* b,
                                    std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, v2_popcount_epi64(_mm256_and_si256(va, vb)));
  }
  Word lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int c = static_cast<int>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) c += std::popcount(a[i] & b[i]);
  return c;
}

MONOMAP_AVX2 bool v2_all_zero(const Word* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    if (!_mm256_testz_si256(va, va)) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}

MONOMAP_AVX2 bool v2_intersects(const Word* a, const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(va, vb)) return true;  // testz: (va & vb) == 0
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

MONOMAP_AVX2 bool v2_is_subset_of(const Word* a, const Word* b,
                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // testc: (~vb & va) == 0, i.e. va ⊆ vb.
    if (!_mm256_testc_si256(vb, va)) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

MONOMAP_AVX2 AndPreview v2_and_preview(const Word* a, const Word* b,
                                       std::size_t n) {
  AndPreview r{0, 0};
  __m256i vany = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vn = _mm256_and_si256(va, vb);
    vany = _mm256_or_si256(vany, vn);
    // Lane-wise vn == va (all-ones / all-zeros per 64-bit lane); the double
    // movemask reads one bit per lane.
    const __m256i eq = _mm256_cmpeq_epi64(vn, va);
    const Word unchanged = static_cast<Word>(
        _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
    r.dirty |= (~unchanged & 0xF) << i;
  }
  Word any_tail = !_mm256_testz_si256(vany, vany);
  for (; i < n; ++i) {
    const Word next = a[i] & b[i];
    any_tail |= next;
    r.dirty |= static_cast<Word>(next != a[i]) << i;
  }
  r.any = any_tail;
  return r;
}

MONOMAP_AVX2 Word v2_occupancy_mask(const Word* a, std::size_t n) {
  Word occ = 0;
  std::size_t tile = 0;
  std::size_t base = 0;
  for (; base + kTileWords <= n; base += kTileWords, ++tile) {
    const __m256i lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + base));
    const __m256i hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + base + 4));
    const __m256i v = _mm256_or_si256(lo, hi);
    occ |= static_cast<Word>(!_mm256_testz_si256(v, v)) << tile;
  }
  if (base < n) {
    Word acc = 0;
    for (std::size_t i = base; i < n; ++i) acc |= a[i];
    occ |= static_cast<Word>(acc != 0) << tile;
  }
  return occ;
}

constexpr KernelTable kAvx2Table{
    v2_and_assign, v2_or_assign,   v2_and_not_assign, v2_and_assign_any,
    v2_count,      v2_intersect_count, v2_all_zero,   v2_intersects,
    v2_is_subset_of, v2_and_preview, v2_occupancy_mask, Level::kAvx2,
};

// --- AVX-512 ---------------------------------------------------------------

#define MONOMAP_AVX512 \
  __attribute__((target("avx512f,avx512bw,avx512vpopcntdq,popcnt")))

MONOMAP_AVX512 void v5_and_assign(Word* a, const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    _mm512_storeu_si512(a + i, _mm512_and_si512(va, vb));
  }
  for (; i < n; ++i) a[i] &= b[i];
}

MONOMAP_AVX512 void v5_or_assign(Word* a, const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    _mm512_storeu_si512(a + i, _mm512_or_si512(va, vb));
  }
  for (; i < n; ++i) a[i] |= b[i];
}

MONOMAP_AVX512 void v5_and_not_assign(Word* a, const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    _mm512_storeu_si512(a + i, _mm512_andnot_si512(vb, va));
  }
  for (; i < n; ++i) a[i] &= ~b[i];
}

MONOMAP_AVX512 Word v5_and_assign_any(Word* a, const Word* b, std::size_t n) {
  __m512i vany = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    const __m512i vn = _mm512_and_si512(va, vb);
    _mm512_storeu_si512(a + i, vn);
    vany = _mm512_or_si512(vany, vn);
  }
  Word any = _mm512_reduce_or_epi64(vany);
  for (; i < n; ++i) any |= (a[i] &= b[i]);
  return any;
}

MONOMAP_AVX512 int v5_count(const Word* a, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_loadu_si512(a + i)));
  }
  int c = static_cast<int>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) c += std::popcount(a[i]);
  return c;
}

MONOMAP_AVX512 int v5_intersect_count(const Word* a, const Word* b,
                                      std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  int c = static_cast<int>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) c += std::popcount(a[i] & b[i]);
  return c;
}

MONOMAP_AVX512 bool v5_all_zero(const Word* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    if (_mm512_test_epi64_mask(va, va) != 0) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}

MONOMAP_AVX512 bool v5_intersects(const Word* a, const Word* b,
                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    if (_mm512_test_epi64_mask(va, vb) != 0) return true;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

MONOMAP_AVX512 bool v5_is_subset_of(const Word* a, const Word* b,
                                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    if (_mm512_test_epi64_mask(va, ~vb) != 0) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

MONOMAP_AVX512 AndPreview v5_and_preview(const Word* a, const Word* b,
                                         std::size_t n) {
  AndPreview r{0, 0};
  __m512i vany = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    const __m512i vn = _mm512_and_si512(va, vb);
    vany = _mm512_or_si512(vany, vn);
    const __mmask8 changed = _mm512_cmpneq_epi64_mask(vn, va);
    r.dirty |= static_cast<Word>(changed) << i;
  }
  Word any_tail = _mm512_reduce_or_epi64(vany);
  for (; i < n; ++i) {
    const Word next = a[i] & b[i];
    any_tail |= next;
    r.dirty |= static_cast<Word>(next != a[i]) << i;
  }
  r.any = any_tail;
  return r;
}

MONOMAP_AVX512 Word v5_occupancy_mask(const Word* a, std::size_t n) {
  Word occ = 0;
  std::size_t tile = 0;
  std::size_t base = 0;
  for (; base + kTileWords <= n; base += kTileWords, ++tile) {
    const __m512i v = _mm512_loadu_si512(a + base);
    occ |= static_cast<Word>(_mm512_test_epi64_mask(v, v) != 0) << tile;
  }
  if (base < n) {
    Word acc = 0;
    for (std::size_t i = base; i < n; ++i) acc |= a[i];
    occ |= static_cast<Word>(acc != 0) << tile;
  }
  return occ;
}

constexpr KernelTable kAvx512Table{
    v5_and_assign, v5_or_assign,   v5_and_not_assign, v5_and_assign_any,
    v5_count,      v5_intersect_count, v5_all_zero,   v5_intersects,
    v5_is_subset_of, v5_and_preview, v5_occupancy_mask, Level::kAvx512,
};

#endif  // MONOMAP_SIMD_X86

const KernelTable* table_for(Level level) {
#if MONOMAP_SIMD_X86
  switch (level) {
    case Level::kAvx512: return &kAvx512Table;
    case Level::kAvx2: return &kAvx2Table;
    case Level::kScalar: break;
  }
#endif
  (void)level;
  return &kScalarTable;
}

Level probe_best_level() {
#if MONOMAP_SIMD_X86
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vpopcntdq") &&
      __builtin_cpu_supports("popcnt")) {
    return Level::kAvx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt")) {
    return Level::kAvx2;
  }
#endif
  return Level::kScalar;
}

Level clamp_to_supported(Level level) {
  const Level best = best_supported_level();
  return static_cast<int>(level) > static_cast<int>(best) ? best : level;
}

/// Startup level: the best supported one, narrowed by MONOMAP_SIMD.
/// "off"/"scalar"/"0" force the reference path, "avx2"/"avx512" request a
/// tier (clamped to what the CPU has), anything else (incl. "auto") keeps
/// the probe result.
Level startup_level() {
  const char* env = std::getenv("MONOMAP_SIMD");
  if (env == nullptr) return best_supported_level();
  std::string s(env);
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  if (s == "off" || s == "scalar" || s == "0") return Level::kScalar;
  if (s == "avx2") return clamp_to_supported(Level::kAvx2);
  if (s == "avx512") return clamp_to_supported(Level::kAvx512);
  return best_supported_level();
}

std::atomic<const KernelTable*>& active_table() {
  static std::atomic<const KernelTable*> table{table_for(startup_level())};
  return table;
}

const KernelTable& kernels() {
  return *active_table().load(std::memory_order_relaxed);
}

/// Startup tile-skipping setting: on unless MONOMAP_TILES says "off"/"0".
bool startup_tile_skipping() {
  const char* env = std::getenv("MONOMAP_TILES");
  if (env == nullptr) return true;
  std::string s(env);
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return !(s == "off" || s == "0" || s == "false");
}

std::atomic<bool>& tile_skipping_flag() {
  static std::atomic<bool> flag{startup_tile_skipping()};
  return flag;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "?";
}

Level best_supported_level() {
  static const Level best = probe_best_level();
  return best;
}

Level active_level() { return kernels().level; }

Level set_level(Level level) {
  const Level clamped = clamp_to_supported(level);
  active_table().store(table_for(clamped), std::memory_order_relaxed);
  return clamped;
}

void and_assign(Word* a, const Word* b, std::size_t n) {
  kernels().and_assign(a, b, n);
}
void or_assign(Word* a, const Word* b, std::size_t n) {
  kernels().or_assign(a, b, n);
}
void and_not_assign(Word* a, const Word* b, std::size_t n) {
  kernels().and_not_assign(a, b, n);
}
Word and_assign_any(Word* a, const Word* b, std::size_t n) {
  return kernels().and_assign_any(a, b, n);
}
int count(const Word* a, std::size_t n) { return kernels().count(a, n); }
int intersect_count(const Word* a, const Word* b, std::size_t n) {
  return kernels().intersect_count(a, b, n);
}
bool all_zero(const Word* a, std::size_t n) {
  return kernels().all_zero(a, n);
}
bool intersects(const Word* a, const Word* b, std::size_t n) {
  return kernels().intersects(a, b, n);
}
bool is_subset_of(const Word* a, const Word* b, std::size_t n) {
  return kernels().is_subset_of(a, b, n);
}
AndPreview and_preview(const Word* a, const Word* b, std::size_t n) {
  MONOMAP_ASSERT(n <= 64);
  return kernels().and_preview(a, b, n);
}
Word occupancy_mask(const Word* a, std::size_t n) {
  MONOMAP_ASSERT(n <= 64 * static_cast<std::size_t>(kTileWords));
  return kernels().occupancy_mask(a, n);
}

HotKernels hot_kernels() {
  const KernelTable& t = kernels();
  return HotKernels{t.and_preview, t.all_zero, t.count};
}

bool tile_skipping_enabled() {
  return tile_skipping_flag().load(std::memory_order_relaxed);
}

bool set_tile_skipping(bool enabled) {
  return tile_skipping_flag().exchange(enabled, std::memory_order_relaxed);
}

}  // namespace monomap::simd
