// Strict numeric CLI-argument parsing shared by the tools.
//
// std::atoi silently turns garbage into 0, which for flags like
// --max-schedules means "unlimited" — the opposite of what a typo'd value
// should do. These helpers accept the full string or nothing: any
// non-numeric suffix, overflow, or empty input is a parse failure the
// caller turns into exit code 2 + usage, the same contract malformed
// --faults specs already follow.
#ifndef MONOMAP_SUPPORT_ARGPARSE_HPP
#define MONOMAP_SUPPORT_ARGPARSE_HPP

#include <cstdint>
#include <string_view>

namespace monomap::argparse {

/// Parse a non-negative integer; false on empty/garbage/overflow/negative.
bool parse_u64(std::string_view text, std::uint64_t* out);

/// Parse a (possibly negative) integer fitting in int.
bool parse_int(std::string_view text, int* out);

/// Parse a finite double (strtod grammar, but the whole string must
/// consume).
bool parse_double(std::string_view text, double* out);

}  // namespace monomap::argparse

#endif  // MONOMAP_SUPPORT_ARGPARSE_HPP
