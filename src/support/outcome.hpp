// Structured outcome taxonomy for mapping requests (the robustness layer's
// vocabulary).
//
// Every mapper entry point classifies how the request ended into one
// MapOutcome, replacing ad-hoc inspection of scattered bools
// (success/timed_out/cancelled/...) in scripted callers. The bools remain
// as the low-level evidence; the outcome is derived from them in one place
// (finalize_outcome in decoupled_mapper.cpp) so the precedence rules —
// e.g. a cancellation is never reported as a degradation — are stated once.
// The cause chain carries the machine-readable "why": one entry per
// subsystem that contributed to the verdict, in the order the evidence
// appeared.
#ifndef MONOMAP_SUPPORT_OUTCOME_HPP
#define MONOMAP_SUPPORT_OUTCOME_HPP

#include <string>
#include <vector>

namespace monomap {

/// How a mapping request ended, from best to worst.
enum class MapOutcome {
  /// A valid mapping at the walk's minimal II.
  kFeasible,
  /// Anytime degradation: the search was cut short (deadline or work
  /// budget) but a valid mapping found earlier is returned, with a sound
  /// II interval [ii_lo, ii_hi] bracketing the true minimum.
  kDegraded,
  /// The search completed and proved (or walk-refuted) every II up to the
  /// cap infeasible; no mapping exists within the configured bounds.
  kRefuted,
  /// The wall-clock deadline (or deterministic schedule budget) expired
  /// with no feasible mapping in hand.
  kDeadline,
  /// The resource governor's memory budget tripped (or an allocation
  /// failed) before a verdict was reached.
  kMemory,
  /// An injected or real fault exhausted its retry budget.
  kFault,
  /// The caller's CancelToken fired; the request was abandoned, not
  /// answered.
  kCancelled,
};

/// Number of MapOutcome values (for counter arrays).
inline constexpr int kMapOutcomeCount = 7;

const char* to_string(MapOutcome outcome);

/// Process exit code for scripted callers: 0 feasible, a distinct small
/// non-zero per failure class (1 and 2 are reserved for generic I/O errors
/// and usage errors respectively).
int exit_code(MapOutcome outcome);

/// One link of the machine-readable cause chain: which subsystem produced
/// the evidence and what it observed.
struct OutcomeCause {
  std::string site;    // "time", "space", "sat", "pool", "governor", ...
  std::string detail;  // human-readable specifics
};

/// "site: detail; site: detail" — the canonical one-line rendering.
std::string format_causes(const std::vector<OutcomeCause>& causes);

}  // namespace monomap

#endif  // MONOMAP_SUPPORT_OUTCOME_HPP
