// ASCII table / CSV rendering used by the bench harnesses to print
// paper-style result tables.
#ifndef MONOMAP_SUPPORT_TABLE_HPP
#define MONOMAP_SUPPORT_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace monomap {

/// Column alignment for AsciiTable.
enum class Align { kLeft, kRight };

/// A simple monospace table: set headers, append rows of strings, print.
/// Column widths are computed from content.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers,
                      std::vector<Align> aligns = {});

  /// Append a row; it must have exactly one cell per header.
  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal separator before the next row.
  void add_separator();

  /// Render with box-drawing in plain ASCII ("+-|").
  void print(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// Format seconds the way the paper's Table III does: "~0.01" below 10 ms,
/// otherwise two decimals; "TO" for timeouts (negative values).
std::string format_time_s(double seconds);

/// Format a double with `digits` decimals.
std::string format_fixed(double value, int digits);

/// Write rows as CSV (minimal quoting: fields containing comma/quote/newline
/// get quoted with doubled quotes).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

}  // namespace monomap

#endif  // MONOMAP_SUPPORT_TABLE_HPP
