// Always-on assertion machinery.
//
// Mapping code is full of invariants whose violation indicates a logic bug
// (not bad user input), so checks stay enabled in every build type. Failures
// throw AssertionError rather than aborting, which lets tests exercise the
// failure paths.
#ifndef MONOMAP_SUPPORT_ASSERT_HPP
#define MONOMAP_SUPPORT_ASSERT_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace monomap {

/// Thrown when an internal invariant is violated.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void assertion_failure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": assertion failed: " << expr;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw AssertionError(os.str());
}

}  // namespace detail
}  // namespace monomap

/// Assert an internal invariant; throws monomap::AssertionError on failure.
#define MONOMAP_ASSERT(expr)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::monomap::detail::assertion_failure(#expr, __FILE__, __LINE__, ""); \
    }                                                                     \
  } while (false)

/// Assert with a streamed message: MONOMAP_ASSERT_MSG(x > 0, "x=" << x).
#define MONOMAP_ASSERT_MSG(expr, stream_expr)                       \
  do {                                                              \
    if (!(expr)) {                                                  \
      std::ostringstream monomap_assert_os;                         \
      monomap_assert_os << stream_expr;                             \
      ::monomap::detail::assertion_failure(#expr, __FILE__, __LINE__, \
                                           monomap_assert_os.str()); \
    }                                                               \
  } while (false)

#endif  // MONOMAP_SUPPORT_ASSERT_HPP
