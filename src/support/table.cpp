#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace monomap {

AsciiTable::AsciiTable(std::vector<std::string> headers,
                       std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  MONOMAP_ASSERT(!headers_.empty());
  if (aligns_.empty()) {
    aligns_.assign(headers_.size(), Align::kRight);
    aligns_.front() = Align::kLeft;
  }
  MONOMAP_ASSERT(aligns_.size() == headers_.size());
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  MONOMAP_ASSERT_MSG(cells.size() == headers_.size(),
                     "row has " << cells.size() << " cells, expected "
                                << headers_.size());
  Row row;
  row.cells = std::move(cells);
  row.separator_before = pending_separator_;
  pending_separator_ = false;
  rows_.push_back(std::move(row));
}

void AsciiTable::add_separator() { pending_separator_ = true; }

namespace {

void print_rule(std::ostream& os, const std::vector<std::size_t>& widths) {
  os << '+';
  for (std::size_t w : widths) {
    for (std::size_t i = 0; i < w + 2; ++i) os << '-';
    os << '+';
  }
  os << '\n';
}

void print_cells(std::ostream& os, const std::vector<std::string>& cells,
                 const std::vector<std::size_t>& widths,
                 const std::vector<Align>& aligns) {
  os << '|';
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const std::string& text = cells[c];
    const std::size_t pad = widths[c] - text.size();
    os << ' ';
    if (aligns[c] == Align::kRight) {
      os << std::string(pad, ' ') << text;
    } else {
      os << text << std::string(pad, ' ');
    }
    os << " |";
  }
  os << '\n';
}

}  // namespace

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  print_rule(os, widths);
  print_cells(os, headers_, widths, aligns_);
  print_rule(os, widths);
  for (const Row& row : rows_) {
    if (row.separator_before) {
      print_rule(os, widths);
    }
    print_cells(os, row.cells, widths, aligns_);
  }
  print_rule(os, widths);
}

std::string AsciiTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_time_s(double seconds) {
  if (seconds < 0.0 || !std::isfinite(seconds)) {
    return "TO";
  }
  if (seconds < 0.01) {
    return "~0.01";
  }
  return format_fixed(seconds, 2);
}

std::string format_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os_ << ',';
    const std::string& cell = cells[i];
    const bool needs_quote =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote) {
      os_ << cell;
      continue;
    }
    os_ << '"';
    for (char ch : cell) {
      if (ch == '"') os_ << '"';
      os_ << ch;
    }
    os_ << '"';
  }
  os_ << '\n';
}

}  // namespace monomap
