// Fixed-capacity bitset over dense integer ids (PEs, nodes, ...).
//
// The space-search hot path works on candidate *domains*: sets of PEs a DFG
// node may still be placed on. Representing a domain as a word array turns
// the inner-loop operations — "intersect with a neighbourhood", "how many
// candidates remain", "is the domain wiped out" — into a handful of
// bitwise ops and popcounts, independent of how many elements the set holds.
// Capacity is fixed at construction (one cache-line-aligned heap
// allocation); every subsequent operation is allocation-free, which is what
// lets the searcher preallocate all of its domains up front and keep the
// recursion heap-silent.
//
// Word layout: capacity bits packed little-endian into 64-bit words; the
// unused high bits of the last word (the "tail") are always zero, so
// count()/empty()/== never need masking. Up to 64 PEs (an 8x8 mesh) a set
// is a single word and every operation below compiles to a couple of
// instructions; at 1K-4K PEs (32x32-64x64 fabrics) a set is 16-64 words and
// the bulk operations dispatch to the runtime-selected SIMD kernels in
// support/simd.hpp (AVX2/AVX-512 with a bit-identical scalar fallback).
//
// Tiled occupancy layout: the words are additionally viewed as cache-line
// tiles of simd::kTileWords (8) words, and every set tracks a one-word
// occupancy bitmap — bit t set means tile t *may* hold set bits, bit t
// clear means tile t is *definitely* all-zero. Deep in a search a 64-word
// grid-64 domain is typically narrowed to one or two neighbourhood-ball
// tiles, so the bulk read operations walk only the occupied tiles and the
// other 60+ cache lines are never loaded. The bitmap is a conservative
// over-approximation (clearing a bit requires proof, setting one doesn't),
// which keeps every operation exact: results, counts, iteration order, and
// the dirty-word trail are bit-identical with skipping on or off — only
// the memory traffic differs. simd::set_tile_skipping()/MONOMAP_TILES
// toggles the skipping globally (the bench records both layouts); sets
// wider than 64 tiles don't track occupancy and keep the full-span paths.
#ifndef MONOMAP_SUPPORT_PE_SET_HPP
#define MONOMAP_SUPPORT_PE_SET_HPP

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.hpp"
#include "support/simd.hpp"

namespace monomap {

class PeSet {
 public:
  using Word = std::uint64_t;
  static constexpr int kWordBits = 64;
  /// Sets at least this many words wide route bulk operations through the
  /// dispatched SIMD kernels; narrower sets keep the inline word loops
  /// (which the compiler fully unrolls and which beat an indirect call for
  /// one-or-two-word sets, the small-mesh regime).
  static constexpr int kDispatchWords = 4;
  /// Words per occupancy tile: one 64-byte cache line.
  static constexpr int kTileWords = simd::kTileWords;
  /// Widest set whose tile count fits the one-word occupancy bitmap
  /// (64 tiles = 512 words = 32768 ids); wider sets skip nothing.
  static constexpr int kMaxTrackedWords = kTileWords * kWordBits;

  PeSet() = default;

  /// An empty set able to hold ids in [0, capacity).
  explicit PeSet(int capacity)
      : capacity_(capacity),
        words_(static_cast<std::size_t>((capacity + kWordBits - 1) / kWordBits),
               0) {
    MONOMAP_ASSERT(capacity >= 0);
  }

  /// The full set {0, ..., capacity-1}.
  static PeSet full(int capacity) {
    PeSet s(capacity);
    s.fill();
    return s;
  }

  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] int num_words() const {
    return static_cast<int>(words_.size());
  }
  [[nodiscard]] int num_tiles() const {
    return (num_words() + kTileWords - 1) / kTileWords;
  }
  /// Whether this set maintains the occupancy bitmap (<= 64 tiles).
  [[nodiscard]] bool tracks_tiles() const {
    return num_words() <= kMaxTrackedWords;
  }
  /// The occupancy over-approximation: bit t clear <=> tile t is all-zero.
  /// Meaningful only when tracks_tiles().
  [[nodiscard]] Word tile_occupancy() const { return occ_; }

  [[nodiscard]] bool test(int i) const {
    MONOMAP_ASSERT(i >= 0 && i < capacity_);
    return (words_[static_cast<std::size_t>(i / kWordBits)] >>
            (i % kWordBits)) & 1u;
  }
  void set(int i) {
    MONOMAP_ASSERT(i >= 0 && i < capacity_);
    words_[static_cast<std::size_t>(i / kWordBits)] |= Word{1}
                                                       << (i % kWordBits);
    mark_word_occupied(i / kWordBits);
  }
  void reset(int i) {
    MONOMAP_ASSERT(i >= 0 && i < capacity_);
    words_[static_cast<std::size_t>(i / kWordBits)] &=
        ~(Word{1} << (i % kWordBits));
  }

  void clear() {
    for (Word& w : words_) w = 0;
    occ_ = 0;
  }
  void fill() {
    for (Word& w : words_) w = ~Word{0};
    trim();
    const int nt = num_tiles();
    occ_ = nt >= kWordBits ? ~Word{0} : (Word{1} << nt) - 1;
  }

  [[nodiscard]] int count() const {
    if (num_words() >= kDispatchWords) {
      if (tile_skipping_active()) {
        int c = 0;
        for_tile_runs(occ_, [&](int base, int n) {
          c += simd::count(words_.data() + base,
                           static_cast<std::size_t>(n));
          return true;
        });
        return c;
      }
      return simd::count(words_.data(), words_.size());
    }
    int c = 0;
    for (const Word w : words_) c += std::popcount(w);
    return c;
  }
  [[nodiscard]] bool empty() const {
    if (num_words() >= kDispatchWords) {
      if (tile_skipping_active()) {
        return for_tile_runs(occ_, [&](int base, int n) {
          return simd::all_zero(words_.data() + base,
                                static_cast<std::size_t>(n));
        });
      }
      return simd::all_zero(words_.data(), words_.size());
    }
    for (const Word w : words_) {
      if (w != 0) return false;
    }
    return true;
  }
  [[nodiscard]] bool any() const { return !empty(); }

  PeSet& operator&=(const PeSet& o) {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    if (num_words() >= kDispatchWords) {
      simd::and_assign(words_.data(), o.words_.data(), words_.size());
    } else {
      for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    }
    // Tiles nonzero in (a & b) are nonzero in both — intersecting the
    // over-approximations stays an over-approximation.
    occ_ &= o.occ_;
    return *this;
  }
  PeSet& operator|=(const PeSet& o) {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    if (num_words() >= kDispatchWords) {
      simd::or_assign(words_.data(), o.words_.data(), words_.size());
    } else {
      for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    }
    occ_ |= o.occ_;
    return *this;
  }
  /// this &= ~o (set difference). Occupancy is unchanged: the result only
  /// loses bits, so the old map stays a valid over-approximation.
  PeSet& and_not(const PeSet& o) {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    if (num_words() >= kDispatchWords) {
      simd::and_not_assign(words_.data(), o.words_.data(), words_.size());
      return *this;
    }
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  /// Fused this &= o that also reports whether anything is left: one pass
  /// where operator&= followed by empty() would take two.
  bool intersect_and_test(const PeSet& o) {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    occ_ &= o.occ_;
    if (num_words() >= kDispatchWords) {
      return simd::and_assign_any(words_.data(), o.words_.data(),
                                  words_.size()) != 0;
    }
    Word any = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      any |= (words_[i] &= o.words_[i]);
    }
    return any != 0;
  }

  /// |this & o| without materialising the intersection.
  [[nodiscard]] int intersect_count(const PeSet& o) const {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    if (num_words() >= kDispatchWords) {
      if (tile_skipping_active()) {
        int c = 0;
        for_tile_runs(occ_ & o.occ_, [&](int base, int n) {
          c += simd::intersect_count(words_.data() + base,
                                     o.words_.data() + base,
                                     static_cast<std::size_t>(n));
          return true;
        });
        return c;
      }
      return simd::intersect_count(words_.data(), o.words_.data(),
                                   words_.size());
    }
    int c = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      c += std::popcount(words_[i] & o.words_[i]);
    }
    return c;
  }

  /// Non-mutating fused intersect over words [base, base+n), n <= 64: which
  /// words would `this &= o` change (bit i of .dirty <=> word base+i), and
  /// the OR of the intersection words in the range (.any). The searcher's
  /// trail uses this to rewrite (and record) only the dirty words.
  [[nodiscard]] simd::AndPreview intersect_preview(const PeSet& o, int base,
                                                   int n) const {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    MONOMAP_ASSERT(base >= 0 && n >= 0 &&
                   base + n <= static_cast<int>(words_.size()));
    return simd::and_preview(words_.data() + base, o.words_.data() + base,
                             static_cast<std::size_t>(n));
  }

  /// True if every member of this set is also in `o`.
  [[nodiscard]] bool is_subset_of(const PeSet& o) const {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    if (num_words() >= kDispatchWords) {
      if (tile_skipping_active()) {
        // Tiles empty in this set are trivially contained.
        return for_tile_runs(occ_, [&](int base, int n) {
          return simd::is_subset_of(words_.data() + base,
                                    o.words_.data() + base,
                                    static_cast<std::size_t>(n));
        });
      }
      return simd::is_subset_of(words_.data(), o.words_.data(),
                                words_.size());
    }
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & ~o.words_[i]) != 0) return false;
    }
    return true;
  }

  [[nodiscard]] bool intersects(const PeSet& o) const {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    if (num_words() >= kDispatchWords) {
      if (tile_skipping_active()) {
        return !for_tile_runs(occ_ & o.occ_, [&](int base, int n) {
          return !simd::intersects(words_.data() + base,
                                   o.words_.data() + base,
                                   static_cast<std::size_t>(n));
        });
      }
      return simd::intersects(words_.data(), o.words_.data(), words_.size());
    }
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & o.words_[i]) != 0) return true;
    }
    return false;
  }

  // Occupancy is an over-approximation, so two equal sets may carry
  // different maps; equality compares the bits alone.
  friend bool operator==(const PeSet& a, const PeSet& b) {
    return a.capacity_ == b.capacity_ && a.words_ == b.words_;
  }
  friend bool operator!=(const PeSet& a, const PeSet& b) { return !(a == b); }

  /// Lowest set id, or -1 when empty.
  [[nodiscard]] int find_first() const { return find_from(0); }

  /// Lowest set id > prev, or -1 when exhausted.
  [[nodiscard]] int find_next(int prev) const { return find_from(prev + 1); }

  /// Lowest set id >= start, or -1 when exhausted. Starts below 0 are
  /// clamped; starts at or beyond capacity() return -1.
  [[nodiscard]] int find_from(int start) const {
    if (start < 0) start = 0;
    if (start >= capacity_) return -1;
    std::size_t wi = static_cast<std::size_t>(start / kWordBits);
    Word w = words_[wi] >> (start % kWordBits);
    if (w != 0) return start + std::countr_zero(w);
    if (num_words() >= kDispatchWords && tile_skipping_active()) {
      const int nw = num_words();
      int i = static_cast<int>(wi) + 1;
      while (i < nw) {
        const int t = i / kTileWords;
        if (((occ_ >> t) & 1) == 0) {
          i = (t + 1) * kTileWords;  // tile definitely empty, hop the line
          continue;
        }
        const int end = (t + 1) * kTileWords < nw ? (t + 1) * kTileWords : nw;
        for (; i < end; ++i) {
          if (words_[static_cast<std::size_t>(i)] != 0) {
            return i * kWordBits +
                   std::countr_zero(words_[static_cast<std::size_t>(i)]);
          }
        }
      }
      return -1;
    }
    for (++wi; wi < words_.size(); ++wi) {
      if (words_[wi] != 0) {
        return static_cast<int>(wi) * kWordBits + std::countr_zero(words_[wi]);
      }
    }
    return -1;
  }

  /// Visits set ids in ascending order (callers rely on the order being
  /// identical with tile skipping on or off — skipped tiles hold no ids).
  template <typename F>
  void for_each(F&& f) const {
    const int nw = num_words();
    if (nw >= kDispatchWords && tile_skipping_active()) {
      for (Word rest = occ_; rest != 0; rest &= rest - 1) {
        const int t = std::countr_zero(rest);
        const int end = (t + 1) * kTileWords < nw ? (t + 1) * kTileWords : nw;
        for (int wi = t * kTileWords; wi < end; ++wi) {
          Word w = words_[static_cast<std::size_t>(wi)];
          while (w != 0) {
            const int bit = std::countr_zero(w);
            f(wi * kWordBits + bit);
            w &= w - 1;
          }
        }
      }
      return;
    }
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      Word w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        f(static_cast<int>(wi) * kWordBits + bit);
        w &= w - 1;
      }
    }
  }

  // Raw word access: the searcher's trail saves/restores domains word-wise.
  [[nodiscard]] Word word(int i) const {
    return words_[static_cast<std::size_t>(i)];
  }
  /// Read-only view of the backing words (cache-line aligned).
  [[nodiscard]] std::span<const Word> words() const {
    return {words_.data(), words_.size()};
  }
  /// Checked word store for *new* bit patterns.
  void set_word(int i, Word w) {
    // Phantom bits beyond capacity() would corrupt count()/empty()/==.
    MONOMAP_ASSERT((w & ~tail_mask(i)) == 0);
    words_[static_cast<std::size_t>(i)] = w;
    if (w != 0) mark_word_occupied(i);
  }
  /// Unchecked word store for values previously read via word()/words():
  /// the backtracking trail restores thousands of words per search, and
  /// (with always-on asserts) re-deriving the tail mask per word is pure
  /// overhead for bits that were in the set before. Callers writing any
  /// *new* pattern must use set_word.
  void restore_word(int i, Word w) {
    words_[static_cast<std::size_t>(i)] = w;
    if (w != 0) mark_word_occupied(i);
  }
  /// Bulk this &= o over words [base, base+n) with no per-word dirty
  /// bookkeeping: the tiled searcher snapshots the whole tile beforehand,
  /// so nothing needs trailing here. Occupancy is untouched (the result
  /// only loses bits, so the old map stays a valid over-approximation);
  /// callers tighten via mark_tile_empty when the tile came out all-zero.
  void and_words(const PeSet& o, int base, int n) {
    Word* a = words_.data() + base;
    const Word* b = o.words_.data() + base;
    for (int i = 0; i < n; ++i) a[i] &= b[i];
  }
  /// Zero words [base, base+n) (tile wipe under an all-empty mask tile);
  /// the caller snapshots beforehand and tightens via mark_tile_empty.
  void zero_words(int base, int n) {
    Word* a = words_.data() + base;
    for (int i = 0; i < n; ++i) a[i] = 0;
  }
  /// Restore words [base, base+n) from a snapshot previously copied out of
  /// words() — the tile-granular undo. A snapshot is only ever taken of a
  /// tile that held bits (an all-zero tile is never dirty), so the tile is
  /// re-marked occupied wholesale: the exact analogue of restore_word's
  /// re-occupation, which is why backtracking needs no occupancy trail.
  void restore_words(int base, int n, const Word* old) {
    Word* a = words_.data() + base;
    for (int i = 0; i < n; ++i) a[i] = old[i];
    mark_word_occupied(base);
  }
  /// Caller-proven tightening: drop tile t from the occupancy map.
  /// Unchecked like restore_word (hot path); the caller must have just
  /// established that every word of tile t is zero (e.g. a full intersect
  /// preview of the tile came back all-zero) — marking a nonempty tile
  /// empty corrupts every subsequent bulk result. A later restore_word of
  /// a nonzero word re-occupies the tile, so backtracking needs no
  /// occupancy trail of its own.
  void mark_tile_empty(int t) { occ_ &= ~(Word{1} << t); }

 private:
  /// Clear the unused high bits of the last word so count()/empty() stay
  /// exact after fill().
  void trim() {
    if (!words_.empty()) {
      words_.back() &= tail_mask(static_cast<int>(words_.size()) - 1);
    }
  }

  /// Valid-bit mask of word `i` (all-ones except the last word's tail).
  [[nodiscard]] Word tail_mask(int i) const {
    const int tail = capacity_ % kWordBits;
    if (i + 1 == static_cast<int>(words_.size()) && tail != 0) {
      return (Word{1} << tail) - 1;
    }
    return ~Word{0};
  }

  void mark_word_occupied(int wi) {
    const int t = wi / kTileWords;
    // Sets wider than 64 tiles don't track occupancy (tracks_tiles() is
    // false and no read path consults occ_), but stay shift-safe.
    if (t < kWordBits) occ_ |= Word{1} << t;
  }

  [[nodiscard]] bool tile_skipping_active() const {
    return tracks_tiles() && simd::tile_skipping_enabled();
  }

  /// Invoke f(base_word, n_words) for each maximal run of tiles set in
  /// `occ` (ascending); stop and return false the first time f does.
  template <typename F>
  bool for_tile_runs(Word occ, F&& f) const {
    const int nw = num_words();
    while (occ != 0) {
      const int t = std::countr_zero(occ);
      const int end_t = t + std::countr_one(occ >> t);
      const int base = t * kTileWords;
      const int end = end_t * kTileWords < nw ? end_t * kTileWords : nw;
      if (!f(base, end - base)) return false;
      occ = end_t >= kWordBits ? Word{0} : occ & (~Word{0} << end_t);
    }
    return true;
  }

  int capacity_ = 0;
  Word occ_ = 0;
  std::vector<Word, simd::CacheAlignedAllocator<Word>> words_;
};

}  // namespace monomap

#endif  // MONOMAP_SUPPORT_PE_SET_HPP
