// Fixed-capacity bitset over dense integer ids (PEs, nodes, ...).
//
// The space-search hot path works on candidate *domains*: sets of PEs a DFG
// node may still be placed on. Representing a domain as a word array turns
// the inner-loop operations — "intersect with a neighbourhood", "how many
// candidates remain", "is the domain wiped out" — into a handful of
// bitwise ops and popcounts, independent of how many elements the set holds.
// Capacity is fixed at construction (one cache-line-aligned heap
// allocation); every subsequent operation is allocation-free, which is what
// lets the searcher preallocate all of its domains up front and keep the
// recursion heap-silent.
//
// Word layout: capacity bits packed little-endian into 64-bit words; the
// unused high bits of the last word (the "tail") are always zero, so
// count()/empty()/== never need masking. Up to 64 PEs (an 8x8 mesh) a set
// is a single word and every operation below compiles to a couple of
// instructions; at 1K-4K PEs (32x32-64x64 fabrics) a set is 16-64 words and
// the bulk operations dispatch to the runtime-selected SIMD kernels in
// support/simd.hpp (AVX2/AVX-512 with a bit-identical scalar fallback).
#ifndef MONOMAP_SUPPORT_PE_SET_HPP
#define MONOMAP_SUPPORT_PE_SET_HPP

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.hpp"
#include "support/simd.hpp"

namespace monomap {

class PeSet {
 public:
  using Word = std::uint64_t;
  static constexpr int kWordBits = 64;
  /// Sets at least this many words wide route bulk operations through the
  /// dispatched SIMD kernels; narrower sets keep the inline word loops
  /// (which the compiler fully unrolls and which beat an indirect call for
  /// one-or-two-word sets, the small-mesh regime).
  static constexpr int kDispatchWords = 4;

  PeSet() = default;

  /// An empty set able to hold ids in [0, capacity).
  explicit PeSet(int capacity)
      : capacity_(capacity),
        words_(static_cast<std::size_t>((capacity + kWordBits - 1) / kWordBits),
               0) {
    MONOMAP_ASSERT(capacity >= 0);
  }

  /// The full set {0, ..., capacity-1}.
  static PeSet full(int capacity) {
    PeSet s(capacity);
    s.fill();
    return s;
  }

  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] int num_words() const {
    return static_cast<int>(words_.size());
  }

  [[nodiscard]] bool test(int i) const {
    MONOMAP_ASSERT(i >= 0 && i < capacity_);
    return (words_[static_cast<std::size_t>(i / kWordBits)] >>
            (i % kWordBits)) & 1u;
  }
  void set(int i) {
    MONOMAP_ASSERT(i >= 0 && i < capacity_);
    words_[static_cast<std::size_t>(i / kWordBits)] |= Word{1}
                                                       << (i % kWordBits);
  }
  void reset(int i) {
    MONOMAP_ASSERT(i >= 0 && i < capacity_);
    words_[static_cast<std::size_t>(i / kWordBits)] &=
        ~(Word{1} << (i % kWordBits));
  }

  void clear() {
    for (Word& w : words_) w = 0;
  }
  void fill() {
    for (Word& w : words_) w = ~Word{0};
    trim();
  }

  [[nodiscard]] int count() const {
    if (num_words() >= kDispatchWords) {
      return simd::count(words_.data(), words_.size());
    }
    int c = 0;
    for (const Word w : words_) c += std::popcount(w);
    return c;
  }
  [[nodiscard]] bool empty() const {
    if (num_words() >= kDispatchWords) {
      return simd::all_zero(words_.data(), words_.size());
    }
    for (const Word w : words_) {
      if (w != 0) return false;
    }
    return true;
  }
  [[nodiscard]] bool any() const { return !empty(); }

  PeSet& operator&=(const PeSet& o) {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    if (num_words() >= kDispatchWords) {
      simd::and_assign(words_.data(), o.words_.data(), words_.size());
      return *this;
    }
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }
  PeSet& operator|=(const PeSet& o) {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    if (num_words() >= kDispatchWords) {
      simd::or_assign(words_.data(), o.words_.data(), words_.size());
      return *this;
    }
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }
  /// this &= ~o (set difference).
  PeSet& and_not(const PeSet& o) {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    if (num_words() >= kDispatchWords) {
      simd::and_not_assign(words_.data(), o.words_.data(), words_.size());
      return *this;
    }
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  /// Fused this &= o that also reports whether anything is left: one pass
  /// where operator&= followed by empty() would take two.
  bool intersect_and_test(const PeSet& o) {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    if (num_words() >= kDispatchWords) {
      return simd::and_assign_any(words_.data(), o.words_.data(),
                                  words_.size()) != 0;
    }
    Word any = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      any |= (words_[i] &= o.words_[i]);
    }
    return any != 0;
  }

  /// |this & o| without materialising the intersection.
  [[nodiscard]] int intersect_count(const PeSet& o) const {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    if (num_words() >= kDispatchWords) {
      return simd::intersect_count(words_.data(), o.words_.data(),
                                   words_.size());
    }
    int c = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      c += std::popcount(words_[i] & o.words_[i]);
    }
    return c;
  }

  /// Non-mutating fused intersect over words [base, base+n), n <= 64: which
  /// words would `this &= o` change (bit i of .dirty <=> word base+i), and
  /// the OR of the intersection words in the range (.any). The searcher's
  /// trail uses this to rewrite (and record) only the dirty words.
  [[nodiscard]] simd::AndPreview intersect_preview(const PeSet& o, int base,
                                                   int n) const {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    MONOMAP_ASSERT(base >= 0 && n >= 0 &&
                   base + n <= static_cast<int>(words_.size()));
    return simd::and_preview(words_.data() + base, o.words_.data() + base,
                             static_cast<std::size_t>(n));
  }

  /// True if every member of this set is also in `o`.
  [[nodiscard]] bool is_subset_of(const PeSet& o) const {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    if (num_words() >= kDispatchWords) {
      return simd::is_subset_of(words_.data(), o.words_.data(),
                                words_.size());
    }
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & ~o.words_[i]) != 0) return false;
    }
    return true;
  }

  [[nodiscard]] bool intersects(const PeSet& o) const {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    if (num_words() >= kDispatchWords) {
      return simd::intersects(words_.data(), o.words_.data(), words_.size());
    }
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & o.words_[i]) != 0) return true;
    }
    return false;
  }

  friend bool operator==(const PeSet& a, const PeSet& b) {
    return a.capacity_ == b.capacity_ && a.words_ == b.words_;
  }
  friend bool operator!=(const PeSet& a, const PeSet& b) { return !(a == b); }

  /// Lowest set id, or -1 when empty.
  [[nodiscard]] int find_first() const { return find_from(0); }

  /// Lowest set id > prev, or -1 when exhausted.
  [[nodiscard]] int find_next(int prev) const { return find_from(prev + 1); }

  /// Lowest set id >= start, or -1 when exhausted. Starts below 0 are
  /// clamped; starts at or beyond capacity() return -1.
  [[nodiscard]] int find_from(int start) const {
    if (start < 0) start = 0;
    if (start >= capacity_) return -1;
    std::size_t wi = static_cast<std::size_t>(start / kWordBits);
    Word w = words_[wi] >> (start % kWordBits);
    if (w != 0) return start + std::countr_zero(w);
    for (++wi; wi < words_.size(); ++wi) {
      if (words_[wi] != 0) {
        return static_cast<int>(wi) * kWordBits + std::countr_zero(words_[wi]);
      }
    }
    return -1;
  }

  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      Word w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        f(static_cast<int>(wi) * kWordBits + bit);
        w &= w - 1;
      }
    }
  }

  // Raw word access: the searcher's trail saves/restores domains word-wise.
  [[nodiscard]] Word word(int i) const {
    return words_[static_cast<std::size_t>(i)];
  }
  /// Read-only view of the backing words (cache-line aligned).
  [[nodiscard]] std::span<const Word> words() const {
    return {words_.data(), words_.size()};
  }
  /// Checked word store for *new* bit patterns.
  void set_word(int i, Word w) {
    // Phantom bits beyond capacity() would corrupt count()/empty()/==.
    MONOMAP_ASSERT((w & ~tail_mask(i)) == 0);
    words_[static_cast<std::size_t>(i)] = w;
  }
  /// Unchecked word store for values previously read via word()/words():
  /// the backtracking trail restores thousands of words per search, and
  /// (with always-on asserts) re-deriving the tail mask per word is pure
  /// overhead for bits that were in the set before. Callers writing any
  /// *new* pattern must use set_word.
  void restore_word(int i, Word w) {
    words_[static_cast<std::size_t>(i)] = w;
  }

 private:
  /// Clear the unused high bits of the last word so count()/empty() stay
  /// exact after fill().
  void trim() {
    if (!words_.empty()) {
      words_.back() &= tail_mask(static_cast<int>(words_.size()) - 1);
    }
  }

  /// Valid-bit mask of word `i` (all-ones except the last word's tail).
  [[nodiscard]] Word tail_mask(int i) const {
    const int tail = capacity_ % kWordBits;
    if (i + 1 == static_cast<int>(words_.size()) && tail != 0) {
      return (Word{1} << tail) - 1;
    }
    return ~Word{0};
  }

  int capacity_ = 0;
  std::vector<Word, simd::CacheAlignedAllocator<Word>> words_;
};

}  // namespace monomap

#endif  // MONOMAP_SUPPORT_PE_SET_HPP
