// Fixed-capacity bitset over dense integer ids (PEs, nodes, ...).
//
// The space-search hot path works on candidate *domains*: sets of PEs a DFG
// node may still be placed on. Representing a domain as a word array turns
// the inner-loop operations — "intersect with a neighbourhood", "how many
// candidates remain", "is the domain wiped out" — into a handful of
// bitwise ops and popcounts, independent of how many elements the set holds.
// Capacity is fixed at construction (one heap allocation); every subsequent
// operation is allocation-free, which is what lets the searcher preallocate
// all of its domains up front and keep the recursion heap-silent.
#ifndef MONOMAP_SUPPORT_PE_SET_HPP
#define MONOMAP_SUPPORT_PE_SET_HPP

#include <bit>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace monomap {

class PeSet {
 public:
  using Word = std::uint64_t;
  static constexpr int kWordBits = 64;

  PeSet() = default;

  /// An empty set able to hold ids in [0, capacity).
  explicit PeSet(int capacity)
      : capacity_(capacity),
        words_(static_cast<std::size_t>((capacity + kWordBits - 1) / kWordBits),
               0) {
    MONOMAP_ASSERT(capacity >= 0);
  }

  /// The full set {0, ..., capacity-1}.
  static PeSet full(int capacity) {
    PeSet s(capacity);
    s.fill();
    return s;
  }

  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] int num_words() const {
    return static_cast<int>(words_.size());
  }

  [[nodiscard]] bool test(int i) const {
    MONOMAP_ASSERT(i >= 0 && i < capacity_);
    return (words_[static_cast<std::size_t>(i / kWordBits)] >>
            (i % kWordBits)) & 1u;
  }
  void set(int i) {
    MONOMAP_ASSERT(i >= 0 && i < capacity_);
    words_[static_cast<std::size_t>(i / kWordBits)] |= Word{1}
                                                       << (i % kWordBits);
  }
  void reset(int i) {
    MONOMAP_ASSERT(i >= 0 && i < capacity_);
    words_[static_cast<std::size_t>(i / kWordBits)] &=
        ~(Word{1} << (i % kWordBits));
  }

  void clear() {
    for (Word& w : words_) w = 0;
  }
  void fill() {
    for (Word& w : words_) w = ~Word{0};
    trim();
  }

  [[nodiscard]] int count() const {
    int c = 0;
    for (const Word w : words_) c += std::popcount(w);
    return c;
  }
  [[nodiscard]] bool empty() const {
    for (const Word w : words_) {
      if (w != 0) return false;
    }
    return true;
  }
  [[nodiscard]] bool any() const { return !empty(); }

  PeSet& operator&=(const PeSet& o) {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }
  PeSet& operator|=(const PeSet& o) {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }
  /// this &= ~o (set difference).
  PeSet& and_not(const PeSet& o) {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  /// True if every member of this set is also in `o`.
  [[nodiscard]] bool is_subset_of(const PeSet& o) const {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & ~o.words_[i]) != 0) return false;
    }
    return true;
  }

  [[nodiscard]] bool intersects(const PeSet& o) const {
    MONOMAP_ASSERT(o.words_.size() == words_.size());
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & o.words_[i]) != 0) return true;
    }
    return false;
  }

  friend bool operator==(const PeSet& a, const PeSet& b) {
    return a.capacity_ == b.capacity_ && a.words_ == b.words_;
  }
  friend bool operator!=(const PeSet& a, const PeSet& b) { return !(a == b); }

  /// Lowest set id, or -1 when empty.
  [[nodiscard]] int find_first() const { return find_from(0); }

  /// Lowest set id > prev, or -1 when exhausted.
  [[nodiscard]] int find_next(int prev) const { return find_from(prev + 1); }

  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      Word w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        f(static_cast<int>(wi) * kWordBits + bit);
        w &= w - 1;
      }
    }
  }

  // Raw word access: the searcher's trail saves/restores domains word-wise.
  [[nodiscard]] Word word(int i) const {
    return words_[static_cast<std::size_t>(i)];
  }
  void set_word(int i, Word w) {
    // Phantom bits beyond capacity() would corrupt count()/empty()/==.
    MONOMAP_ASSERT((w & ~tail_mask(i)) == 0);
    words_[static_cast<std::size_t>(i)] = w;
  }

 private:
  [[nodiscard]] int find_from(int start) const {
    if (start < 0) start = 0;
    if (start >= capacity_) return -1;
    std::size_t wi = static_cast<std::size_t>(start / kWordBits);
    Word w = words_[wi] >> (start % kWordBits);
    if (w != 0) return start + std::countr_zero(w);
    for (++wi; wi < words_.size(); ++wi) {
      if (words_[wi] != 0) {
        return static_cast<int>(wi) * kWordBits + std::countr_zero(words_[wi]);
      }
    }
    return -1;
  }

  /// Clear the unused high bits of the last word so count()/empty() stay
  /// exact after fill().
  void trim() {
    if (!words_.empty()) {
      words_.back() &= tail_mask(static_cast<int>(words_.size()) - 1);
    }
  }

  /// Valid-bit mask of word `i` (all-ones except the last word's tail).
  [[nodiscard]] Word tail_mask(int i) const {
    const int tail = capacity_ % kWordBits;
    if (i + 1 == static_cast<int>(words_.size()) && tail != 0) {
      return (Word{1} << tail) - 1;
    }
    return ~Word{0};
  }

  int capacity_ = 0;
  std::vector<Word> words_;
};

}  // namespace monomap

#endif  // MONOMAP_SUPPORT_PE_SET_HPP
