// Deterministic seeded fault-injection harness.
//
// Production builds carry named injection points (fault::maybe_inject) at
// the subsystem boundaries a mapping-as-a-service deployment has to survive:
//
//   sat.solve     — SatSolver::solve_assuming entry
//   space.search  — find_monomorphism entry
//   time.session  — TimeSession::solve entry
//   pool.worker   — WorkStealingPool, before each task runs
//   serve.request — MappingService, at the top of every daemon worker job
//
// With no plan installed a site is one relaxed atomic load — effectively
// free. A plan arms per-site rules of the form kind@period: every period-th
// arrival at the site fires the fault, with a seed-derived phase so
// different seeds fire at different points of the sequence while the same
// seed reproduces the exact run. Kinds:
//
//   throw — FaultInjectedError (the retry-with-backoff path)
//   stall — a short bounded sleep (latency spike; no exception)
//   alloc — std::bad_alloc (allocation failure; the memory-outcome path)
//
// Spec grammar (MONOMAP_FAULTS environment variable or the CLI --faults
// flag):
//
//   spec  := rule ("," rule)* [":" seed]
//   rule  := site "=" kind "@" period
//   seed  := decimal uint64 (default 0)
//
//   e.g.  MONOMAP_FAULTS="sat.solve=throw@5,pool.worker=stall@3:42"
//
// The environment variable is read lazily on the first maybe_inject call;
// install_faults/clear_faults override it explicitly (tests, CLI).
#ifndef MONOMAP_SUPPORT_FAULT_HPP
#define MONOMAP_SUPPORT_FAULT_HPP

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/stopwatch.hpp"

namespace monomap::fault {

/// The exception an armed `throw` rule raises. Distinct from AssertionError
/// (a logic bug) and std::bad_alloc (a memory failure) so recovery layers
/// can retry faults without masking real bugs.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& site)
      : std::runtime_error("injected fault at " + site), site_(site) {}
  [[nodiscard]] const std::string& site() const { return site_; }

 private:
  std::string site_;
};

enum class FaultKind { kThrow, kStall, kAlloc };

const char* to_string(FaultKind kind);

struct FaultRule {
  std::string site;
  FaultKind kind = FaultKind::kThrow;
  std::uint64_t period = 1;  // fire every period-th arrival (>= 1)
};

struct FaultPlan {
  std::vector<FaultRule> rules;
  std::uint64_t seed = 0;
};

/// Parse the spec grammar above. Returns nullopt and fills `error` (if
/// non-null) on a malformed spec.
std::optional<FaultPlan> parse_fault_spec(const std::string& spec,
                                          std::string* error = nullptr);

/// Arm `plan` process-wide, replacing any previous plan (and pre-empting
/// the lazy MONOMAP_FAULTS read). Thread-safe.
void install_faults(const FaultPlan& plan);

/// Disarm all injection and suppress the MONOMAP_FAULTS fallback.
void clear_faults();

/// True when any rule is armed (forces the lazy env read).
bool faults_active();

/// The injection point. Fires the matching rule's fault when its site
/// counter crosses the seeded phase; otherwise returns immediately.
void maybe_inject(const char* site);

/// Total faults fired since the current plan was installed.
std::uint64_t injected_count();

/// Bounded exponential backoff between fault retries: sleeps roughly
/// base * 2^retry milliseconds (capped), in small slices so a deadline
/// expiry or a (possibly parent-chained) cancel is observed mid-sleep.
/// Returns false when the deadline expired before the sleep completed —
/// the caller should stop retrying.
bool backoff_sleep(const Deadline& deadline, int retry,
                   double base_ms = 1.0);

}  // namespace monomap::fault

#endif  // MONOMAP_SUPPORT_FAULT_HPP
