#include "support/fault.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <thread>

namespace monomap::fault {

namespace {

/// splitmix64 — the seed/site mix that places each rule's firing phase.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_site(const std::string& site) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// An armed plan plus its per-rule arrival counters. Readers access it via
/// an atomic pointer with no lock; replaced plans are intentionally leaked
/// (installs are rare — tests and process start — and a freed plan under a
/// concurrent reader would be a use-after-free).
struct ActivePlan {
  std::vector<FaultRule> rules;
  std::vector<std::uint64_t> phases;  // seeded firing phase per rule
  std::unique_ptr<std::atomic<std::uint64_t>[]> counters;
  std::atomic<std::uint64_t> fired{0};

  explicit ActivePlan(const FaultPlan& plan) : rules(plan.rules) {
    phases.reserve(rules.size());
    counters = std::make_unique<std::atomic<std::uint64_t>[]>(rules.size());
    for (std::size_t i = 0; i < rules.size(); ++i) {
      const std::uint64_t period = rules[i].period == 0 ? 1 : rules[i].period;
      rules[i].period = period;
      phases.push_back(mix64(plan.seed ^ hash_site(rules[i].site)) % period);
      counters[i].store(0, std::memory_order_relaxed);
    }
  }
};

std::atomic<ActivePlan*> g_plan{nullptr};
std::atomic<bool> g_env_resolved{false};
std::mutex g_install_m;

void install_locked(ActivePlan* next) {
  g_plan.store(next, std::memory_order_release);
  g_env_resolved.store(true, std::memory_order_release);
}

/// First maybe_inject/faults_active call with no explicit install: arm
/// whatever MONOMAP_FAULTS says (nothing when unset or malformed).
void resolve_env() {
  const std::lock_guard<std::mutex> lock(g_install_m);
  if (g_env_resolved.load(std::memory_order_acquire)) return;
  const char* env = std::getenv("MONOMAP_FAULTS");
  ActivePlan* next = nullptr;
  if (env != nullptr && *env != '\0') {
    if (const auto plan = parse_fault_spec(env)) {
      next = new ActivePlan(*plan);
    }
  }
  install_locked(next);
}

ActivePlan* current_plan() {
  if (!g_env_resolved.load(std::memory_order_acquire)) resolve_env();
  return g_plan.load(std::memory_order_acquire);
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThrow: return "throw";
    case FaultKind::kStall: return "stall";
    case FaultKind::kAlloc: return "alloc";
  }
  return "?";
}

std::optional<FaultPlan> parse_fault_spec(const std::string& spec,
                                          std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<FaultPlan> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  FaultPlan plan;
  std::string rules_part = spec;
  // The seed separator is the LAST ':' — site names contain '.' but never
  // ':', so this is unambiguous.
  if (const auto colon = spec.rfind(':'); colon != std::string::npos) {
    const std::string seed_str = spec.substr(colon + 1);
    if (seed_str.empty()) return fail("empty seed after ':'");
    char* end = nullptr;
    plan.seed = std::strtoull(seed_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return fail("seed is not a decimal integer: '" + seed_str + "'");
    }
    rules_part = spec.substr(0, colon);
  }
  std::size_t pos = 0;
  while (pos <= rules_part.size()) {
    const std::size_t comma = rules_part.find(',', pos);
    const std::string item = rules_part.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? rules_part.size() + 1 : comma + 1;
    if (item.empty()) {
      if (rules_part.empty() && plan.rules.empty()) break;  // bare ":seed"
      return fail("empty rule in spec");
    }
    const std::size_t eq = item.find('=');
    const std::size_t at = item.find('@');
    if (eq == std::string::npos || at == std::string::npos || at < eq) {
      return fail("rule '" + item + "' is not site=kind@period");
    }
    FaultRule rule;
    rule.site = item.substr(0, eq);
    if (rule.site.empty()) return fail("empty site in '" + item + "'");
    const std::string kind = item.substr(eq + 1, at - eq - 1);
    if (kind == "throw") rule.kind = FaultKind::kThrow;
    else if (kind == "stall") rule.kind = FaultKind::kStall;
    else if (kind == "alloc") rule.kind = FaultKind::kAlloc;
    else return fail("unknown fault kind '" + kind + "'");
    const std::string period_str = item.substr(at + 1);
    char* end = nullptr;
    rule.period = std::strtoull(period_str.c_str(), &end, 10);
    if (period_str.empty() || end == nullptr || *end != '\0' ||
        rule.period == 0) {
      return fail("period must be a positive integer in '" + item + "'");
    }
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

void install_faults(const FaultPlan& plan) {
  const std::lock_guard<std::mutex> lock(g_install_m);
  install_locked(plan.rules.empty() ? nullptr : new ActivePlan(plan));
}

void clear_faults() {
  const std::lock_guard<std::mutex> lock(g_install_m);
  install_locked(nullptr);
}

bool faults_active() { return current_plan() != nullptr; }

void maybe_inject(const char* site) {
  ActivePlan* plan = current_plan();
  if (plan == nullptr) return;
  for (std::size_t i = 0; i < plan->rules.size(); ++i) {
    const FaultRule& rule = plan->rules[i];
    if (rule.site != site) continue;
    const std::uint64_t n =
        plan->counters[i].fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % rule.period != plan->phases[i]) continue;
    plan->fired.fetch_add(1, std::memory_order_relaxed);
    switch (rule.kind) {
      case FaultKind::kThrow:
        throw FaultInjectedError(rule.site);
      case FaultKind::kStall:
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        break;
      case FaultKind::kAlloc:
        throw std::bad_alloc();
    }
  }
}

std::uint64_t injected_count() {
  ActivePlan* plan = g_plan.load(std::memory_order_acquire);
  return plan == nullptr ? 0 : plan->fired.load(std::memory_order_relaxed);
}

bool backoff_sleep(const Deadline& deadline, int retry, double base_ms) {
  // Cap the exponent so the sleep stays bounded (~64x base) however many
  // retries a long-running request accumulates.
  const int exponent = retry < 6 ? (retry < 0 ? 0 : retry) : 6;
  double remaining_ms = base_ms * static_cast<double>(1 << exponent);
  while (remaining_ms > 0.0) {
    if (deadline.expired()) return false;
    const double slice_ms = remaining_ms < 1.0 ? remaining_ms : 1.0;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        slice_ms));
    remaining_ms -= slice_ms;
  }
  return !deadline.expired();
}

}  // namespace monomap::fault
