#include "support/outcome.hpp"

#include <sstream>

namespace monomap {

const char* to_string(MapOutcome outcome) {
  switch (outcome) {
    case MapOutcome::kFeasible: return "feasible";
    case MapOutcome::kDegraded: return "degraded";
    case MapOutcome::kRefuted: return "refuted";
    case MapOutcome::kDeadline: return "deadline";
    case MapOutcome::kMemory: return "memory";
    case MapOutcome::kFault: return "fault";
    case MapOutcome::kCancelled: return "cancelled";
  }
  return "?";
}

int exit_code(MapOutcome outcome) {
  switch (outcome) {
    case MapOutcome::kFeasible: return 0;
    case MapOutcome::kDegraded: return 3;
    case MapOutcome::kRefuted: return 4;
    case MapOutcome::kDeadline: return 5;
    case MapOutcome::kMemory: return 6;
    case MapOutcome::kFault: return 7;
    case MapOutcome::kCancelled: return 8;
  }
  return 1;
}

std::string format_causes(const std::vector<OutcomeCause>& causes) {
  std::ostringstream out;
  for (std::size_t i = 0; i < causes.size(); ++i) {
    if (i != 0) out << "; ";
    out << causes[i].site << ": " << causes[i].detail;
  }
  return out.str();
}

}  // namespace monomap
