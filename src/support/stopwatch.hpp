// Wall-clock measurement and solve deadlines.
#ifndef MONOMAP_SUPPORT_STOPWATCH_HPP
#define MONOMAP_SUPPORT_STOPWATCH_HPP

#include <atomic>
#include <chrono>
#include <limits>

namespace monomap {

/// Steady-clock stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last restart().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Cooperative cancellation flag shared between solver threads. The
/// portfolio mapper hands one token to every racing configuration; the
/// first winner cancels the rest, which observe it through their Deadline
/// at the next periodic expiry check. A token may be chained to a parent:
/// the speculative mapper gives every II attempt its own token parented to
/// the caller's, so one attempt can be cancelled individually (a smaller II
/// won) while a caller-level cancel still reaches every attempt.
class CancelToken {
 public:
  CancelToken() = default;
  /// A token that also reports cancelled() when `parent` does. The parent
  /// must outlive this token; pass nullptr for a root token.
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->cancelled();
  }
  void reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
  const CancelToken* parent_ = nullptr;
};

/// A wall-clock budget shared by the phases of a solve. An infinite budget
/// means "no deadline"; a non-positive budget is already expired (tests use
/// Deadline(0.0) to exercise expiry paths) — callers treating "<= 0" as
/// unlimited must translate it themselves, as DecoupledMapper does. May
/// additionally carry a CancelToken: a cancelled token makes the deadline
/// report expiry immediately, regardless of the wall clock.
class Deadline {
 public:
  /// No deadline.
  Deadline() : limit_s_(std::numeric_limits<double>::infinity()) {}

  /// Deadline `budget_s` seconds from now.
  explicit Deadline(double budget_s) : limit_s_(budget_s) {}

  /// Deadline `budget_s` seconds from now that also honours `cancel`. The
  /// token must outlive the deadline; pass nullptr for no token.
  Deadline(double budget_s, const CancelToken* cancel)
      : limit_s_(budget_s), cancel_(cancel) {}

  [[nodiscard]] static Deadline unlimited() { return Deadline(); }

  [[nodiscard]] bool expired() const {
    if (cancel_ != nullptr && cancel_->cancelled()) return true;
    return watch_.elapsed_s() >= limit_s_;
  }

  /// The wall-clock component alone (ignores the cancel token). Lets a
  /// caller that observed expired() report *why*: a fired token with the
  /// wall clock still inside the budget is a cancellation, not a timeout.
  [[nodiscard]] bool wall_expired() const {
    return watch_.elapsed_s() >= limit_s_;
  }

  /// True when the attached cancel token (if any) has fired.
  [[nodiscard]] bool cancel_fired() const {
    return cancel_ != nullptr && cancel_->cancelled();
  }

  [[nodiscard]] const CancelToken* cancel_token() const { return cancel_; }

  /// Seconds remaining (never negative; +inf when unlimited; 0 once the
  /// cancel token fired, consistent with expired()).
  [[nodiscard]] double remaining_s() const {
    if (cancel_ != nullptr && cancel_->cancelled()) return 0.0;
    const double rem = limit_s_ - watch_.elapsed_s();
    return rem > 0.0 ? rem : 0.0;
  }

  [[nodiscard]] double elapsed_s() const { return watch_.elapsed_s(); }

  [[nodiscard]] double budget_s() const { return limit_s_; }

 private:
  Stopwatch watch_;
  double limit_s_;
  const CancelToken* cancel_ = nullptr;
};

}  // namespace monomap

#endif  // MONOMAP_SUPPORT_STOPWATCH_HPP
