// Wall-clock measurement and solve deadlines.
#ifndef MONOMAP_SUPPORT_STOPWATCH_HPP
#define MONOMAP_SUPPORT_STOPWATCH_HPP

#include <chrono>
#include <limits>

namespace monomap {

/// Steady-clock stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last restart().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock budget shared by the phases of a solve. A non-positive or
/// infinite budget means "no deadline".
class Deadline {
 public:
  /// No deadline.
  Deadline() : limit_s_(std::numeric_limits<double>::infinity()) {}

  /// Deadline `budget_s` seconds from now.
  explicit Deadline(double budget_s) : limit_s_(budget_s) {}

  [[nodiscard]] static Deadline unlimited() { return Deadline(); }

  [[nodiscard]] bool expired() const {
    return watch_.elapsed_s() >= limit_s_;
  }

  /// Seconds remaining (never negative; +inf when unlimited).
  [[nodiscard]] double remaining_s() const {
    const double rem = limit_s_ - watch_.elapsed_s();
    return rem > 0.0 ? rem : 0.0;
  }

  [[nodiscard]] double elapsed_s() const { return watch_.elapsed_s(); }

  [[nodiscard]] double budget_s() const { return limit_s_; }

 private:
  Stopwatch watch_;
  double limit_s_;
};

}  // namespace monomap

#endif  // MONOMAP_SUPPORT_STOPWATCH_HPP
