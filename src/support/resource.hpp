// Per-request resource governor: a memory budget shared by the subsystems
// whose footprints actually grow with search effort — the SAT learnt-clause
// database, the bitset searcher's preallocated domain trails, and the
// speculative race's CrossIiNogoodStore.
//
// Subsystems charge their allocations with try_charge() and give the bytes
// back with uncharge(). A denied charge is the shed signal: the subsystem
// first frees what it can (the SAT solver reduces its learnt DB, the
// nogood store evicts its oldest certificates) and retries; only when
// shedding cannot make room does it trip() the governor and abort into a
// clean `memory` outcome. Once tripped, every subsystem observes tripped()
// at its next periodic check — the watchdog that converts runaway
// propagation anywhere in the request into the same classified outcome
// instead of an OOM kill.
//
// Plumbing is a thread-local scope rather than threaded parameters:
// DecoupledMapper binds the request's governor with a GovernorScope around
// each entry point (including the per-II attempt tasks on pool workers),
// and SatSolver / the searchers / the store consult GovernorScope::current()
// — zero signature churn, and code outside a scope (unit tests, the
// reference oracles) pays one thread-local read.
//
// With a zero budget every operation is a no-op that always grants, so the
// governed build behaves bit-identically to the ungoverned one until a
// budget is actually configured.
#ifndef MONOMAP_SUPPORT_RESOURCE_HPP
#define MONOMAP_SUPPORT_RESOURCE_HPP

#include <atomic>
#include <cstddef>

namespace monomap {

class ResourceGovernor {
 public:
  /// `budget_bytes` == 0 means unlimited (all charges granted, never trips
  /// on its own; an explicit trip() still works).
  explicit ResourceGovernor(std::size_t budget_bytes)
      : budget_(budget_bytes) {}

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// Reserve `bytes` against the budget. False when the reservation would
  /// exceed it (nothing is charged then) or the governor already tripped —
  /// the caller should shed and retry, or abort with a memory outcome.
  bool try_charge(std::size_t bytes) {
    if (tripped_.load(std::memory_order_relaxed)) return false;
    const std::size_t now =
        used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (budget_ != 0 && now > budget_) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return false;
    }
    // Peak tracking is advisory telemetry; a racy max is fine.
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
    return true;
  }

  void uncharge(std::size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Latch the governor into the tripped state; every subsystem's next
  /// periodic tripped() check aborts cleanly. `why` must be a string
  /// literal (stored by pointer).
  void trip(const char* why) {
    const char* expected = nullptr;
    trip_reason_.compare_exchange_strong(expected, why,
                                         std::memory_order_relaxed);
    tripped_.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool tripped() const {
    return tripped_.load(std::memory_order_acquire);
  }

  /// First trip cause, or "" before any trip.
  [[nodiscard]] const char* trip_reason() const {
    const char* why = trip_reason_.load(std::memory_order_relaxed);
    return why != nullptr ? why : "";
  }

  /// Soft-pressure threshold (>= 3/4 of the budget in use): subsystems
  /// with cheap shedding levers pull them early here, before charges
  /// start failing.
  [[nodiscard]] bool soft_pressure() const {
    return budget_ != 0 &&
           used_.load(std::memory_order_relaxed) >= budget_ - budget_ / 4;
  }

  void note_shed() { sheds_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] std::size_t used() const {
    return used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t peak() const {
    return peak_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t budget() const { return budget_; }
  [[nodiscard]] int sheds() const {
    return sheds_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t budget_;
  std::atomic<std::size_t> used_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<int> sheds_{0};
  std::atomic<bool> tripped_{false};
  std::atomic<const char*> trip_reason_{nullptr};
};

/// RAII thread-local binding of "the current request's governor". Nests:
/// an inner scope shadows, the destructor restores. Binding nullptr is a
/// no-op shadow (current() keeps reporting the outer governor), which lets
/// callers bind unconditionally.
class GovernorScope {
 public:
  explicit GovernorScope(ResourceGovernor* governor)
      : previous_(current_) {
    if (governor != nullptr) current_ = governor;
  }
  ~GovernorScope() { current_ = previous_; }

  GovernorScope(const GovernorScope&) = delete;
  GovernorScope& operator=(const GovernorScope&) = delete;

  /// The governor bound on this thread, or nullptr outside any scope.
  [[nodiscard]] static ResourceGovernor* current() { return current_; }

 private:
  ResourceGovernor* previous_;
  static thread_local ResourceGovernor* current_;
};

}  // namespace monomap

#endif  // MONOMAP_SUPPORT_RESOURCE_HPP
