// Parallel building blocks shared by the portfolio, batch and speculative
// mappers: an index-space parallel-for and a work-stealing task pool.
//
// Exceptions matter here: MONOMAP_ASSERT throws a catchable AssertionError
// by design, but an exception escaping a std::thread body calls
// std::terminate. Workers therefore capture the first exception and it is
// rethrown on the calling thread after every worker joined (parallel_for)
// or from wait_idle() (WorkStealingPool) — the threaded paths fail the
// same way the sequential path does.
#ifndef MONOMAP_SUPPORT_PARALLEL_HPP
#define MONOMAP_SUPPORT_PARALLEL_HPP

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/fault.hpp"

namespace monomap {

/// Run fn(i) for every i in [0, count) across up to `num_threads` worker
/// threads (<= 0 = hardware concurrency, capped at count). num_threads == 1
/// runs inline in ascending index order — fully deterministic; callers rely
/// on that for reproducible portfolio runs.
template <typename Fn>
void parallel_for_indices(int count, int num_threads, Fn&& fn) {
  if (count <= 0) return;
  if (num_threads <= 0) {
    num_threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  num_threads = std::min(num_threads, count);
  if (num_threads == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&]() {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) workers.emplace_back(worker);
  for (std::thread& w : workers) w.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// A work-stealing task pool. Each worker owns a deque: tasks submitted
/// from inside a worker go to that worker's own deque, tasks submitted
/// from outside are dealt round-robin, and an idle worker steals from the
/// other deques — one pathological task queue no longer idles the rest of
/// the pool. Tasks may themselves submit further tasks (the speculative
/// mapper's completion handlers launch the next II attempts this way);
/// wait_idle() accounts for such nested submissions.
///
/// Both own-pop and steal take the *oldest* task (FIFO): the speculative
/// mapper submits II attempts frontier-first, and on a loaded pool FIFO
/// preserves that priority — the II whose verdict gates the commit always
/// runs before the lookahead gambles behind it. (The classic LIFO own-pop
/// buys cache locality for fine-grained tasks; these tasks are entire
/// mapping attempts, milliseconds to seconds each, so ordering matters
/// and locality does not.)
///
/// Deques are mutex-guarded rather than lock-free: at this task
/// granularity queue overhead is irrelevant and the simple locking is
/// trivially clean under ThreadSanitizer.
class WorkStealingPool {
 public:
  /// Spawn `num_threads` workers (<= 0 = hardware concurrency).
  explicit WorkStealingPool(int num_threads) {
    if (num_threads <= 0) {
      num_threads =
          std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    }
    queues_.resize(static_cast<std::size_t>(num_threads));
    for (auto& q : queues_) q = std::make_unique<Queue>();
    workers_.reserve(static_cast<std::size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
      workers_.emplace_back([this, t] { worker_loop(t); });
    }
  }

  ~WorkStealingPool() {
    {
      const std::lock_guard<std::mutex> lock(sleep_m_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size());
  }

  /// Enqueue a task. Runnable from any thread, including pool workers.
  void submit(std::function<void()> task) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    const int self = current_worker_index();
    const std::size_t target =
        self >= 0 ? static_cast<std::size_t>(self)
                  : next_external_.fetch_add(1, std::memory_order_relaxed) %
                        queues_.size();
    try {
      const std::lock_guard<std::mutex> lock(queues_[target]->m);
      queues_[target]->q.push_back(std::move(task));
    } catch (...) {
      // A failed enqueue (allocation failure in push_back) must give the
      // pending count back, or wait_idle() parks forever on a task that
      // never existed — and if this was the last outstanding task, the
      // waiter needs the wake-up the task's completion would have sent.
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard<std::mutex> lock(idle_m_);
        idle_cv_.notify_all();
      }
      throw;
    }
    work_cv_.notify_one();
  }

  /// Block until every submitted task (including tasks submitted by tasks)
  /// has finished — queued tasks keep draining even after a peer's task
  /// threw — and return the first captured task exception (nullptr when
  /// every task completed cleanly). Must be called from outside the pool.
  /// The non-throwing twin of wait_idle() for callers that classify worker
  /// failures instead of propagating them.
  [[nodiscard]] std::exception_ptr wait_idle_collect() {
    std::unique_lock<std::mutex> lock(idle_m_);
    idle_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
    std::exception_ptr error;
    {
      const std::lock_guard<std::mutex> elock(error_m_);
      std::swap(error, first_error_);
    }
    return error;
  }

  /// wait_idle_collect(), rethrowing the collected exception, if any.
  void wait_idle() {
    if (std::exception_ptr error = wait_idle_collect()) {
      std::rethrow_exception(error);
    }
  }

  /// Tasks taken from another worker's deque since construction.
  [[nodiscard]] std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Tasks put back on a queue after an injected pool.worker fault fired
  /// before they ran (see support/fault.hpp).
  [[nodiscard]] std::uint64_t fault_requeues() const {
    return fault_requeues_.load(std::memory_order_relaxed);
  }

 private:
  struct Queue {
    std::mutex m;
    std::deque<std::function<void()>> q;
  };

  // Worker index of the calling thread in *this* pool, -1 for outsiders.
  [[nodiscard]] int current_worker_index() const {
    return tls_pool == this ? tls_worker : -1;
  }

  bool try_pop(int self, std::function<void()>* task) {
    // Own deque first, oldest-first (see class comment on FIFO priority).
    {
      Queue& own = *queues_[static_cast<std::size_t>(self)];
      const std::lock_guard<std::mutex> lock(own.m);
      if (!own.q.empty()) {
        *task = std::move(own.q.front());
        own.q.pop_front();
        return true;
      }
    }
    // Steal oldest-first from the others, scanning from the right
    // neighbour so victims spread instead of hammering worker 0.
    const int n = static_cast<int>(queues_.size());
    for (int d = 1; d < n; ++d) {
      Queue& victim = *queues_[static_cast<std::size_t>((self + d) % n)];
      const std::lock_guard<std::mutex> lock(victim.m);
      if (!victim.q.empty()) {
        *task = std::move(victim.q.front());
        victim.q.pop_front();
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  void worker_loop(int self) {
    tls_pool = this;
    tls_worker = self;
    std::function<void()> task;
    for (;;) {
      if (try_pop(self, &task)) {
        // Injected worker fault, fired BEFORE the task runs (the task is
        // intact): put it back at the end of the own queue and let a later
        // (or another) worker retry it — one poisoned pickup degrades only
        // itself. Bounded so a 100%-firing rule cannot livelock the pool.
        bool requeued = false;
        try {
          fault::maybe_inject("pool.worker");
        } catch (...) {
          if (fault_requeues_.fetch_add(1, std::memory_order_relaxed) <
              kMaxFaultRequeues) {
            const std::lock_guard<std::mutex> lock(
                queues_[static_cast<std::size_t>(self)]->m);
            queues_[static_cast<std::size_t>(self)]->q.push_back(
                std::move(task));
            requeued = true;
          } else {
            const std::lock_guard<std::mutex> lock(error_m_);
            if (!first_error_) first_error_ = std::current_exception();
            task = nullptr;  // dropped: the error surfaces via wait_idle
          }
        }
        if (requeued) {
          task = nullptr;
          work_cv_.notify_one();
          continue;  // pending_ untouched: the task is still outstanding
        }
        if (task) {
          try {
            task();
          } catch (...) {
            const std::lock_guard<std::mutex> lock(error_m_);
            if (!first_error_) first_error_ = std::current_exception();
          }
        }
        task = nullptr;
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Last task out: wake wait_idle(). Taking the lock orders this
          // notify after the waiter's predicate check.
          const std::lock_guard<std::mutex> lock(idle_m_);
          idle_cv_.notify_all();
        }
        continue;
      }
      std::unique_lock<std::mutex> lock(sleep_m_);
      if (stop_) return;
      // Re-check for work racing with the notify, then sleep briefly; the
      // timeout bounds the lost-wakeup window without a seqlock.
      work_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

  static thread_local const WorkStealingPool* tls_pool;
  static thread_local int tls_worker;

  /// Ceiling on fault-driven requeues per pool lifetime: generous against
  /// any realistic periodic rule, small against a livelock.
  static constexpr std::uint64_t kMaxFaultRequeues = 4096;

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_external_{0};
  std::atomic<int> pending_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> fault_requeues_{0};
  std::mutex sleep_m_;
  std::condition_variable work_cv_;
  bool stop_ = false;  // guarded by sleep_m_
  std::mutex idle_m_;
  std::condition_variable idle_cv_;
  std::mutex error_m_;
  std::exception_ptr first_error_;  // guarded by error_m_
};

inline thread_local const WorkStealingPool* WorkStealingPool::tls_pool =
    nullptr;
inline thread_local int WorkStealingPool::tls_worker = -1;

}  // namespace monomap

#endif  // MONOMAP_SUPPORT_PARALLEL_HPP
