// Minimal index-space parallel-for shared by the portfolio and batch
// mappers (and any future parallel sweep).
//
// Exceptions matter here: MONOMAP_ASSERT throws a catchable AssertionError
// by design, but an exception escaping a std::thread body calls
// std::terminate. Workers therefore capture the first exception and it is
// rethrown on the calling thread after every worker joined — the threaded
// paths fail the same way the sequential path does.
#ifndef MONOMAP_SUPPORT_PARALLEL_HPP
#define MONOMAP_SUPPORT_PARALLEL_HPP

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace monomap {

/// Run fn(i) for every i in [0, count) across up to `num_threads` worker
/// threads (<= 0 = hardware concurrency, capped at count). num_threads == 1
/// runs inline in ascending index order — fully deterministic; callers rely
/// on that for reproducible portfolio runs.
template <typename Fn>
void parallel_for_indices(int count, int num_threads, Fn&& fn) {
  if (count <= 0) return;
  if (num_threads <= 0) {
    num_threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  num_threads = std::min(num_threads, count);
  if (num_threads == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&]() {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) workers.emplace_back(worker);
  for (std::thread& w : workers) w.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace monomap

#endif  // MONOMAP_SUPPORT_PARALLEL_HPP
