// Minimal levelled logger writing to stderr.
//
// Not thread-safe by design: the mapper is single-threaded (like the paper's
// toolchain) and benches measure wall-clock of the solving path, so logging
// must stay out of the way when disabled.
#ifndef MONOMAP_SUPPORT_LOG_HPP
#define MONOMAP_SUPPORT_LOG_HPP

#include <sstream>
#include <string>

namespace monomap {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& text);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace monomap

#define MONOMAP_LOG(level, stream_expr)                              \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::monomap::log_level())) {                  \
      std::ostringstream monomap_log_os;                             \
      monomap_log_os << stream_expr;                                 \
      ::monomap::detail::log_emit(level, monomap_log_os.str());      \
    }                                                                \
  } while (false)

#define MONOMAP_DEBUG(stream_expr) MONOMAP_LOG(::monomap::LogLevel::kDebug, stream_expr)
#define MONOMAP_INFO(stream_expr) MONOMAP_LOG(::monomap::LogLevel::kInfo, stream_expr)
#define MONOMAP_WARN(stream_expr) MONOMAP_LOG(::monomap::LogLevel::kWarn, stream_expr)
#define MONOMAP_ERROR(stream_expr) MONOMAP_LOG(::monomap::LogLevel::kError, stream_expr)

#endif  // MONOMAP_SUPPORT_LOG_HPP
