#include "support/log.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <iostream>

namespace monomap {
namespace {

LogLevel initial_level() {
  // MONOMAP_LOG_LEVEL=debug|info|warn|error|off overrides the default, so
  // the solving path can be traced without a recompile or CLI plumbing.
  if (const char* env = std::getenv("MONOMAP_LOG_LEVEL")) {
    return parse_log_level(env);
  }
  return LogLevel::kWarn;
}

LogLevel g_level = initial_level();

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

LogLevel log_level() { return g_level; }

void set_log_level(LogLevel level) { g_level = level; }

LogLevel parse_log_level(const std::string& text) {
  std::string lower(text.size(), '\0');
  std::transform(text.begin(), text.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kWarn;
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  std::cerr << "[monomap " << level_tag(level) << "] " << message << '\n';
}

}  // namespace detail
}  // namespace monomap
