#include "support/argparse.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <string>

namespace monomap::argparse {

bool parse_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return false;
  *out = value;
  return true;
}

bool parse_int(std::string_view text, int* out) {
  if (text.empty()) return false;
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return false;
  *out = value;
  return true;
}

bool parse_double(std::string_view text, double* out) {
  if (text.empty()) return false;
  // strtod via a NUL-terminated copy: std::from_chars<double> is the
  // obvious tool but its full-string check is the same either way.
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || !std::isfinite(value)) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace monomap::argparse
