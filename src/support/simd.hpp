// Runtime-dispatched SIMD kernels for multi-word bitset operations.
//
// The space search represents candidate domains as PeSet word arrays. On an
// 8x8 mesh a domain is one 64-bit word and the searcher's inline loops are
// already optimal, but production-scale fabrics (32x32-64x64, 1K-4K PEs)
// make every domain 16-64 words, and intersect/popcount/scan over those
// arrays become the hot path. This layer provides the word-array kernels the
// multi-word regime needs, with three interchangeable implementations:
//
//   * kScalar — portable 4-way unrolled word loops; the reference semantics
//     every other path must match bit-for-bit,
//   * kAvx2   — 256-bit vectors, popcounts via the pshufb nibble-LUT trick,
//   * kAvx512 — 512-bit vectors with native vpopcntq.
//
// The vector paths are compiled with per-function target attributes, so the
// translation unit (and the whole default build) stays portable; dispatch
// picks the best level the running CPU supports. Every kernel is exact —
// the level changes throughput only, never results, which is what lets the
// scalar and SIMD builds produce bit-identical search traces (pinned by
// tests). The level can be forced with the MONOMAP_SIMD environment
// variable ("off"/"scalar", "avx2", "avx512", "auto") or programmatically
// with set_level() (used by tests and the bench's scalar-vs-SIMD rows).
#ifndef MONOMAP_SUPPORT_SIMD_HPP
#define MONOMAP_SUPPORT_SIMD_HPP

#include <cstddef>
#include <cstdint>
#include <new>

namespace monomap::simd {

using Word = std::uint64_t;

/// Words per layout tile: one 64-byte cache line (512 PEs). Multi-word
/// PeSets keep a one-word occupancy bitmap (bit t <=> tile t holds any set
/// bit, conservatively), so bulk reads skip definitely-empty lines — on a
/// 64x64 fabric a domain narrowed to a neighbourhood ball occupies 1-2 of
/// its 8 tiles and the other 6-7 lines are never loaded.
inline constexpr int kTileWords = 8;

/// Whether occupancy-directed tile skipping is active (default on; the
/// MONOMAP_TILES environment variable — "off"/"0" — disables it at
/// startup). Skipping never changes results or search traces, only which
/// cache lines get touched; the bench flips it to record the untiled
/// layout as a comparison row.
bool tile_skipping_enabled();

/// Enable/disable tile skipping; returns the previous setting. Thread-safe,
/// but flip it between searches, not during one (the searcher caches the
/// setting per run).
bool set_tile_skipping(bool enabled);

/// Kernel implementation tiers, in increasing capability order. Dispatch
/// never selects a level the CPU cannot execute.
enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,  // requires AVX-512 F+BW+VPOPCNTDQ
};

const char* level_name(Level level);

/// Best level the running CPU supports (CPUID probe, cached).
Level best_supported_level();

/// The level kernels currently dispatch to. Defaults to the best supported
/// level, unless the MONOMAP_SIMD environment variable narrowed it at
/// startup.
Level active_level();

/// Force the dispatch level (clamped to best_supported_level()); returns
/// the level actually installed. Thread-safe, but callers racing searches
/// concurrently should not flip it mid-run — results stay exact either way,
/// only timing comparisons would blur.
Level set_level(Level level);

/// Result of the fused intersect preview (see and_preview).
struct AndPreview {
  /// Bit i set <=> (a[i] & b[i]) != a[i], i.e. word i would change.
  Word dirty;
  /// OR of all a[i] & b[i]: zero <=> the intersection is empty.
  Word any;
};

// --- kernels ---------------------------------------------------------------
// All kernels treat a/b as n-word little-endian bit arrays. They accept any
// n >= 0 and any alignment (PeSet hands them cache-line-aligned storage).

/// a &= b.
void and_assign(Word* a, const Word* b, std::size_t n);
/// a |= b.
void or_assign(Word* a, const Word* b, std::size_t n);
/// a &= ~b.
void and_not_assign(Word* a, const Word* b, std::size_t n);
/// Fused a &= b that also reports the OR of the result words, so callers
/// test wipeout without a second pass.
Word and_assign_any(Word* a, const Word* b, std::size_t n);
/// popcount(a).
int count(const Word* a, std::size_t n);
/// popcount(a & b) without materialising the intersection.
int intersect_count(const Word* a, const Word* b, std::size_t n);
bool all_zero(const Word* a, std::size_t n);
bool intersects(const Word* a, const Word* b, std::size_t n);
/// Every bit of a is also set in b.
bool is_subset_of(const Word* a, const Word* b, std::size_t n);
/// Non-mutating fused intersect: which words would a &= b change (dirty
/// mask, so the caller trails and rewrites only those), and is the result
/// empty. Requires n <= 64 so the dirty mask fits one word; callers with
/// wider arrays loop in 64-word blocks.
AndPreview and_preview(const Word* a, const Word* b, std::size_t n);
/// Tile occupancy bitmap: bit t set <=> the t'th kTileWords-word tile of a
/// holds any set bit. Requires n <= 64 * kTileWords so the bitmap fits one
/// word; wider sets don't track occupancy (see PeSet).
Word occupancy_mask(const Word* a, std::size_t n);

/// Resolved function pointers for the kernels the search engine's per-tile
/// loops call millions of times per run. The free functions above re-read
/// the dispatch table on every call — negligible for full-span sweeps, but
/// per 8-word tile the table load and indirection cost as much as the
/// kernel itself. Fetch once per search (after any set_level()) and call
/// through the pointers; the resolved level is pinned for the fetch's
/// lifetime, exactly like the searcher's cached tile-skipping flag.
struct HotKernels {
  AndPreview (*and_preview)(const Word*, const Word*, std::size_t);
  bool (*all_zero)(const Word*, std::size_t);
  int (*count)(const Word*, std::size_t);
};
HotKernels hot_kernels();

// --- aligned storage -------------------------------------------------------

/// Minimal allocator pinning allocations to cache-line (64-byte) starts, so
/// a multi-word PeSet never straddles an extra line and vector loads hit
/// aligned addresses. Drop-in for std::vector.
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{64};

  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) { ::operator delete(p, kAlign); }

  template <typename U>
  bool operator==(const CacheAlignedAllocator<U>&) const {
    return true;
  }
};

}  // namespace monomap::simd

#endif  // MONOMAP_SUPPORT_SIMD_HPP
