// Conflict-driven clause-learning SAT solver.
//
// This is the search engine behind both the decoupled time formulation and
// the coupled SAT-MapIt-style baseline (DESIGN.md S7; substitution for Z3).
// Feature set: two-watched-literal propagation, 1-UIP clause learning with
// recursive minimisation, VSIDS decision heuristic with phase saving, Luby
// restarts, LBD-based learned-clause reduction, incremental clause addition
// between solve() calls, solve-under-assumptions with failed-assumption
// (final conflict) extraction, and wall-clock/conflict budgets. Learnt
// clauses, variable activities and saved phases persist across calls, so a
// sequence of closely related queries (the time phase's horizon extensions
// and blocking-clause re-solves) shares one warm solver.
#ifndef MONOMAP_SAT_SOLVER_HPP
#define MONOMAP_SAT_SOLVER_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "sat/literal.hpp"
#include "support/stopwatch.hpp"

namespace monomap {

enum class SatStatus { kSat, kUnsat, kUnknown };

const char* to_string(SatStatus status);

struct SatStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t deleted_clauses = 0;
  std::uint64_t minimized_literals = 0;
};

class SatSolver {
 public:
  SatSolver();
  ~SatSolver();
  SatSolver(const SatSolver&) = delete;
  SatSolver& operator=(const SatSolver&) = delete;

  /// Create a fresh variable; returns its index.
  SatVar new_var();

  [[nodiscard]] int num_vars() const;
  [[nodiscard]] int num_clauses() const;

  /// Add a clause (disjunction of literals). Returns false if the formula
  /// became trivially unsatisfiable (empty clause / conflicting units).
  /// May be called before or between solve() invocations (incremental use:
  /// the mapper adds blocking clauses and re-solves).
  bool add_clause(std::vector<Lit> lits);

  /// Convenience overloads.
  bool add_unit(Lit a) { return add_clause({a}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// Solve under an optional wall-clock deadline and conflict budget
  /// (0 = unlimited conflicts).
  SatStatus solve(const Deadline& deadline = Deadline::unlimited(),
                  std::uint64_t conflict_budget = 0);

  /// Solve with `assumptions` held as temporary decisions (MiniSat-style
  /// incremental interface). A kUnsat result under non-empty assumptions
  /// does NOT poison the solver: the formula may still be satisfiable under
  /// different assumptions, and failed_assumptions() names the subset of
  /// assumptions the refutation rests on. Learnt clauses survive the call.
  SatStatus solve_assuming(const std::vector<Lit>& assumptions,
                           const Deadline& deadline = Deadline::unlimited(),
                           std::uint64_t conflict_budget = 0);

  /// After solve_assuming() returned kUnsat: the (not necessarily minimal)
  /// subset of the assumption literals whose joint propagation is
  /// contradictory. Empty when the formula is unsatisfiable outright —
  /// no horizon-activation assumption can revive it.
  [[nodiscard]] const std::vector<Lit>& failed_assumptions() const;

  /// Learnt clauses currently alive in the database (retained across
  /// solve() calls; the incremental time session reports this as its
  /// reuse statistic).
  [[nodiscard]] int num_learnts() const;

  /// True when the last solve returned kUnknown because the bound
  /// ResourceGovernor's memory budget tripped (learnt-DB charge denied
  /// even after shedding, or another subsystem tripped the governor),
  /// rather than because of the deadline or conflict budget. The caller
  /// maps this to the `memory` outcome instead of `deadline`.
  [[nodiscard]] bool last_unknown_was_memory() const;

  /// Seed the decision phase of `v` (the polarity picked when the solver
  /// branches on it). Overwritten by phase saving once the variable is
  /// assigned during search; callers use this to bias the FIRST model
  /// toward a preferred shape (the time session seeds space-friendly
  /// schedules). Has no effect on satisfiability.
  void set_polarity(SatVar v, bool phase);

  /// Value of `v` in the model found by the last solve() (kSat only).
  [[nodiscard]] bool model_value(SatVar v) const;
  [[nodiscard]] bool model_value(Lit l) const {
    return model_value(l.var()) != l.negated();
  }

  [[nodiscard]] const SatStats& stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace monomap

#endif  // MONOMAP_SAT_SOLVER_HPP
