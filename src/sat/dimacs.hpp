// DIMACS CNF parsing/serialisation — debugging aid and test vector format.
#ifndef MONOMAP_SAT_DIMACS_HPP
#define MONOMAP_SAT_DIMACS_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/solver.hpp"

namespace monomap {

/// A CNF formula in portable form: clauses of signed 1-based literals.
struct CnfFormula {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;
};

/// Parse DIMACS text ("p cnf ..." header optional; comments allowed).
/// Throws AssertionError on malformed input.
CnfFormula parse_dimacs(const std::string& text);

/// Serialise to DIMACS text.
std::string to_dimacs(const CnfFormula& formula);

/// Load a formula into `solver`, creating variables 0..num_vars-1.
/// Returns false if the formula is trivially unsatisfiable.
bool load_into_solver(const CnfFormula& formula, SatSolver& solver);

}  // namespace monomap

#endif  // MONOMAP_SAT_DIMACS_HPP
