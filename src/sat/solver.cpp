#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "support/fault.hpp"
#include "support/resource.hpp"

namespace monomap {

const char* to_string(SatStatus status) {
  switch (status) {
    case SatStatus::kSat: return "SAT";
    case SatStatus::kUnsat: return "UNSAT";
    case SatStatus::kUnknown: return "UNKNOWN";
  }
  return "?";
}

namespace {

struct Clause {
  std::vector<Lit> lits;
  double activity = 0.0;
  int lbd = 0;
  bool learnt = false;

  [[nodiscard]] std::size_t size() const { return lits.size(); }
  Lit& operator[](std::size_t i) { return lits[i]; }
  const Lit& operator[](std::size_t i) const { return lits[i]; }
};

struct Watch {
  Clause* clause = nullptr;
  Lit blocker;  // if blocker is true, the clause is satisfied — skip it
};

/// Binary max-heap over variable activities (VSIDS order).
class VarHeap {
 public:
  void grow(int num_vars) { pos_.resize(static_cast<std::size_t>(num_vars), -1); }

  [[nodiscard]] bool contains(SatVar v) const {
    return pos_[static_cast<std::size_t>(v)] >= 0;
  }
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  void insert(SatVar v, const std::vector<double>& act) {
    if (contains(v)) return;
    pos_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    sift_up(static_cast<int>(heap_.size()) - 1, act);
  }

  SatVar pop_max(const std::vector<double>& act) {
    const SatVar top = heap_.front();
    swap_entries(0, static_cast<int>(heap_.size()) - 1);
    pos_[static_cast<std::size_t>(top)] = -1;
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0, act);
    return top;
  }

  void increased(SatVar v, const std::vector<double>& act) {
    if (contains(v)) sift_up(pos_[static_cast<std::size_t>(v)], act);
  }

 private:
  void swap_entries(int a, int b) {
    std::swap(heap_[static_cast<std::size_t>(a)], heap_[static_cast<std::size_t>(b)]);
    pos_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(a)])] = a;
    pos_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(b)])] = b;
  }
  void sift_up(int i, const std::vector<double>& act) {
    while (i > 0) {
      const int parent = (i - 1) / 2;
      if (act[static_cast<std::size_t>(heap_[static_cast<std::size_t>(parent)])] >=
          act[static_cast<std::size_t>(heap_[static_cast<std::size_t>(i)])]) {
        break;
      }
      swap_entries(i, parent);
      i = parent;
    }
  }
  void sift_down(int i, const std::vector<double>& act) {
    const int n = static_cast<int>(heap_.size());
    for (;;) {
      int best = i;
      const int l = 2 * i + 1;
      const int r = 2 * i + 2;
      auto a = [&](int k) {
        return act[static_cast<std::size_t>(heap_[static_cast<std::size_t>(k)])];
      };
      if (l < n && a(l) > a(best)) best = l;
      if (r < n && a(r) > a(best)) best = r;
      if (best == i) break;
      swap_entries(i, best);
      i = best;
    }
  }

  std::vector<SatVar> heap_;
  std::vector<int> pos_;
};

/// Luby restart sequence (1,1,2,1,1,2,4,...).
std::uint64_t luby(std::uint64_t i) {
  std::uint64_t k = 1;
  while ((1ULL << k) - 1 < i + 1) ++k;
  while ((1ULL << k) - 1 != i + 1) {
    i -= (1ULL << (k - 1)) - 1;
    k = 1;
    while ((1ULL << k) - 1 < i + 1) ++k;
  }
  return 1ULL << (k - 1);
}

}  // namespace

struct SatSolver::Impl {
  // Clause database. Problem clauses and learnt clauses are owned here;
  // watchers hold raw pointers (stable: unique_ptr heap allocations).
  std::vector<std::unique_ptr<Clause>> problem;
  std::vector<std::unique_ptr<Clause>> learnts;
  std::vector<std::vector<Watch>> watches;  // indexed by literal code

  std::vector<LBool> assigns;
  std::vector<bool> polarity;       // phase saving (last value)
  std::vector<int> level;
  std::vector<Clause*> reason;
  std::vector<double> activity;
  VarHeap order;

  std::vector<Lit> trail;
  std::vector<int> trail_lim;
  std::size_t qhead = 0;

  bool ok = true;
  double var_inc = 1.0;
  double var_decay = 0.95;
  double cla_inc = 1.0;

  // Assumption literals of the current solve_assuming() call (one decision
  // level each, placed before any free decision), the failed subset of the
  // last assumption-refuted call, and whether the last kUnsat was only
  // relative to the assumptions (the formula itself stays usable).
  std::vector<Lit> assumptions;
  std::vector<Lit> conflict;
  bool assumption_failed = false;

  std::vector<bool> model;
  SatStats stats;

  // analyze() scratch
  std::vector<bool> seen;
  std::vector<Lit> analyze_stack;
  std::vector<Lit> learnt_scratch;  // reused across conflicts in search()

  // compute_lbd() scratch: level -> id of the last conflict that touched it.
  // Bumping the id each call makes "have I counted this level yet?" a plain
  // array read, with no per-clause allocation, sort, or clearing.
  std::vector<std::uint64_t> lbd_stamp;
  std::uint64_t lbd_stamp_id = 0;

  // Memory governor for the learnt DB (see support/resource.hpp). Captured
  // from the thread-local scope at the first solve; bytes charged here are
  // given back as reduce_db() deletes clauses and in full on destruction.
  ResourceGovernor* gov = nullptr;
  std::size_t gov_charged = 0;
  bool out_of_memory = false;  // last kUnknown was a budget trip

  ~Impl() {
    if (gov != nullptr) gov->uncharge(gov_charged);
  }

  /// Footprint estimate for a learnt clause of n literals: the Clause
  /// header, its literal storage, and a nod to allocator/watcher overhead.
  [[nodiscard]] static std::size_t clause_bytes(std::size_t n) {
    return sizeof(Clause) + n * sizeof(Lit) + 2 * sizeof(Watch) + 32;
  }

  [[nodiscard]] int decision_level() const {
    return static_cast<int>(trail_lim.size());
  }

  [[nodiscard]] LBool value(SatVar v) const {
    return assigns[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] LBool value(Lit l) const {
    const LBool v = assigns[static_cast<std::size_t>(l.var())];
    if (v == LBool::kUndef) return LBool::kUndef;
    return l.negated() ? negate(v) : v;
  }

  SatVar new_var() {
    const auto v = static_cast<SatVar>(assigns.size());
    assigns.push_back(LBool::kUndef);
    polarity.push_back(false);
    level.push_back(0);
    reason.push_back(nullptr);
    activity.push_back(0.0);
    seen.push_back(false);
    watches.emplace_back();
    watches.emplace_back();
    order.grow(static_cast<int>(assigns.size()));
    order.insert(v, activity);
    return v;
  }

  void var_bump(SatVar v) {
    activity[static_cast<std::size_t>(v)] += var_inc;
    if (activity[static_cast<std::size_t>(v)] > 1e100) {
      for (double& a : activity) a *= 1e-100;
      var_inc *= 1e-100;
    }
    order.increased(v, activity);
  }

  void var_decay_step() { var_inc /= var_decay; }

  void cla_bump(Clause& c) {
    c.activity += cla_inc;
    if (c.activity > 1e20) {
      for (auto& cl : learnts) cl->activity *= 1e-20;
      cla_inc *= 1e-20;
    }
  }

  void attach(Clause* c) {
    MONOMAP_ASSERT(c->size() >= 2);
    watches[static_cast<std::size_t>((*c)[0].code())].push_back(
        Watch{c, (*c)[1]});
    watches[static_cast<std::size_t>((*c)[1].code())].push_back(
        Watch{c, (*c)[0]});
  }

  void detach(Clause* c) {
    for (int i = 0; i < 2; ++i) {
      auto& list = watches[static_cast<std::size_t>((*c)[static_cast<std::size_t>(i)].code())];
      for (std::size_t j = 0; j < list.size(); ++j) {
        if (list[j].clause == c) {
          list[j] = list.back();
          list.pop_back();
          break;
        }
      }
    }
  }

  void enqueue(Lit p, Clause* from) {
    MONOMAP_ASSERT(value(p) == LBool::kUndef);
    const SatVar v = p.var();
    assigns[static_cast<std::size_t>(v)] = lbool_from(!p.negated());
    polarity[static_cast<std::size_t>(v)] = !p.negated();
    level[static_cast<std::size_t>(v)] = decision_level();
    reason[static_cast<std::size_t>(v)] = from;
    trail.push_back(p);
  }

  Clause* propagate() {
    Clause* conflict = nullptr;
    while (qhead < trail.size()) {
      const Lit p = trail[qhead++];  // p is true
      ++stats.propagations;
      auto& list = watches[static_cast<std::size_t>((~p).code())];
      std::size_t i = 0;
      std::size_t j = 0;
      while (i < list.size()) {
        const Watch w = list[i];
        if (value(w.blocker) == LBool::kTrue) {
          list[j++] = list[i++];
          continue;
        }
        Clause& c = *w.clause;
        // Ensure the false literal (~p) is at position 1.
        const Lit false_lit = ~p;
        if (c[0] == false_lit) {
          std::swap(c[0], c[1]);
        }
        ++i;
        const Lit first = c[0];
        if (first != w.blocker && value(first) == LBool::kTrue) {
          list[j++] = Watch{&c, first};
          continue;
        }
        // Look for a new literal to watch.
        bool found = false;
        for (std::size_t k = 2; k < c.size(); ++k) {
          if (value(c[k]) != LBool::kFalse) {
            std::swap(c[1], c[k]);
            watches[static_cast<std::size_t>(c[1].code())].push_back(
                Watch{&c, first});
            found = true;
            break;
          }
        }
        if (found) continue;
        // Clause is unit or conflicting.
        list[j++] = Watch{&c, first};
        if (value(first) == LBool::kFalse) {
          conflict = &c;
          qhead = trail.size();
          while (i < list.size()) list[j++] = list[i++];
          break;
        }
        enqueue(first, &c);
      }
      list.resize(j);
      if (conflict != nullptr) break;
    }
    return conflict;
  }

  void cancel_until(int target_level) {
    if (decision_level() <= target_level) return;
    const int bound = trail_lim[static_cast<std::size_t>(target_level)];
    for (int i = static_cast<int>(trail.size()) - 1; i >= bound; --i) {
      const SatVar v = trail[static_cast<std::size_t>(i)].var();
      assigns[static_cast<std::size_t>(v)] = LBool::kUndef;
      reason[static_cast<std::size_t>(v)] = nullptr;
      if (!order.contains(v)) order.insert(v, activity);
    }
    trail.resize(static_cast<std::size_t>(bound));
    trail_lim.resize(static_cast<std::size_t>(target_level));
    qhead = trail.size();
  }

  /// True if `l` is redundant in the current learnt clause (all antecedents
  /// seen or at level 0) — non-recursive self-subsumption check.
  bool lit_redundant(Lit l) {
    Clause* r = reason[static_cast<std::size_t>(l.var())];
    if (r == nullptr) return false;
    for (const Lit q : r->lits) {
      if (q.var() == l.var()) continue;
      if (level[static_cast<std::size_t>(q.var())] == 0) continue;
      if (!seen[static_cast<std::size_t>(q.var())]) return false;
    }
    return true;
  }

  /// 1-UIP conflict analysis; fills `learnt` (learnt[0] = asserting literal)
  /// and returns the backtrack level.
  int analyze(Clause* conflict, std::vector<Lit>& learnt) {
    learnt.clear();
    learnt.push_back(Lit());  // placeholder for the asserting literal
    int counter = 0;
    Lit p;
    bool p_valid = false;
    std::size_t index = trail.size();
    Clause* reason_clause = conflict;

    for (;;) {
      MONOMAP_ASSERT(reason_clause != nullptr);
      if (reason_clause->learnt) cla_bump(*reason_clause);
      for (const Lit q : reason_clause->lits) {
        if (p_valid && q == p) continue;
        const SatVar v = q.var();
        if (!seen[static_cast<std::size_t>(v)] &&
            level[static_cast<std::size_t>(v)] > 0) {
          seen[static_cast<std::size_t>(v)] = true;
          var_bump(v);
          if (level[static_cast<std::size_t>(v)] >= decision_level()) {
            ++counter;
          } else {
            learnt.push_back(q);
          }
        }
      }
      // Select next literal to expand from the trail.
      do {
        --index;
      } while (!seen[static_cast<std::size_t>(trail[index].var())]);
      p = trail[index];
      p_valid = true;
      seen[static_cast<std::size_t>(p.var())] = false;
      reason_clause = reason[static_cast<std::size_t>(p.var())];
      --counter;
      if (counter == 0) break;
    }
    learnt[0] = ~p;

    // Minimise: drop literals whose reasons are subsumed by the clause.
    // Keep the pre-minimisation set to reset `seen` afterwards — stale seen
    // flags would corrupt every later analysis.
    analyze_stack.assign(learnt.begin() + 1, learnt.end());
    std::size_t kept = 1;
    for (std::size_t i = 1; i < learnt.size(); ++i) {
      if (!lit_redundant(learnt[i])) {
        learnt[kept++] = learnt[i];
      } else {
        ++stats.minimized_literals;
      }
    }
    learnt.resize(kept);

    // Compute backtrack level = max level among learnt[1..].
    int bt = 0;
    std::size_t max_i = 1;
    for (std::size_t i = 1; i < learnt.size(); ++i) {
      const int lv = level[static_cast<std::size_t>(learnt[i].var())];
      if (lv > bt) {
        bt = lv;
        max_i = i;
      }
    }
    if (learnt.size() > 1) {
      std::swap(learnt[1], learnt[max_i]);
    }
    // Clear seen flags for every literal that was ever marked, including
    // the ones minimisation removed.
    seen[static_cast<std::size_t>(learnt[0].var())] = false;
    for (const Lit l : analyze_stack) {
      seen[static_cast<std::size_t>(l.var())] = false;
    }
    return learnt.size() == 1 ? 0 : bt;
  }

  /// `failed` is an assumption literal found false while placing the
  /// assumptions. Walk its implication ancestry down the trail and collect
  /// the assumption (decision) literals the refutation rests on — MiniSat's
  /// analyzeFinal, except `conflict` stores the failed assumptions
  /// themselves rather than their negations. Must run before backtracking.
  void analyze_final(Lit failed) {
    conflict.clear();
    conflict.push_back(failed);
    if (decision_level() == 0) return;
    seen[static_cast<std::size_t>(failed.var())] = true;
    for (int i = static_cast<int>(trail.size()) - 1;
         i >= trail_lim[0]; --i) {
      const SatVar x = trail[static_cast<std::size_t>(i)].var();
      if (!seen[static_cast<std::size_t>(x)]) continue;
      seen[static_cast<std::size_t>(x)] = false;
      Clause* r = reason[static_cast<std::size_t>(x)];
      if (r == nullptr) {
        // A decision above level 0 is always one of the assumptions.
        MONOMAP_ASSERT(level[static_cast<std::size_t>(x)] > 0);
        conflict.push_back(trail[static_cast<std::size_t>(i)]);
      } else {
        for (const Lit q : r->lits) {
          if (q.var() != x && level[static_cast<std::size_t>(q.var())] > 0) {
            seen[static_cast<std::size_t>(q.var())] = true;
          }
        }
      }
    }
    // If ~failed was implied at level 0 the loop never visits it; the
    // refutation is {failed} against the formula alone.
    seen[static_cast<std::size_t>(failed.var())] = false;
  }

  [[nodiscard]] int compute_lbd(const std::vector<Lit>& lits) {
    // Number of distinct decision levels.
    if (lbd_stamp.size() < assigns.size() + 1) {
      lbd_stamp.resize(assigns.size() + 1, 0);
    }
    ++lbd_stamp_id;
    int distinct = 0;
    for (const Lit l : lits) {
      const int lv = level[static_cast<std::size_t>(l.var())];
      if (lbd_stamp[static_cast<std::size_t>(lv)] != lbd_stamp_id) {
        lbd_stamp[static_cast<std::size_t>(lv)] = lbd_stamp_id;
        ++distinct;
      }
    }
    return distinct;
  }

  void reduce_db() {
    // Keep glue clauses (lbd <= 2) and reasons; delete the worst half of the
    // rest, ordered by (lbd desc, activity asc).
    std::vector<Clause*> candidates;
    for (auto& c : learnts) {
      if (c->lbd > 2 && !is_reason(c.get())) {
        candidates.push_back(c.get());
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Clause* a, const Clause* b) {
                if (a->lbd != b->lbd) return a->lbd > b->lbd;
                return a->activity < b->activity;
              });
    const std::size_t to_delete = candidates.size() / 2;
    std::vector<Clause*> victims(candidates.begin(),
                                 candidates.begin() + static_cast<std::ptrdiff_t>(to_delete));
    std::sort(victims.begin(), victims.end());
    for (Clause* c : victims) {
      detach(c);
    }
    auto is_victim = [&victims](const Clause* c) {
      return std::binary_search(victims.begin(), victims.end(),
                                const_cast<Clause*>(c));
    };
    auto it = std::remove_if(learnts.begin(), learnts.end(),
                             [&](const std::unique_ptr<Clause>& c) {
                               return is_victim(c.get());
                             });
    stats.deleted_clauses += static_cast<std::uint64_t>(learnts.end() - it);
    if (gov != nullptr) {
      // Give the victims' bytes back. Clamped to what THIS solver charged:
      // clauses learnt before the governor was bound were never charged,
      // and unclamped refunds would underflow the shared used() counter.
      std::size_t freed = 0;
      for (Clause* c : victims) freed += clause_bytes(c->lits.size());
      freed = std::min(freed, gov_charged);
      gov->uncharge(freed);
      gov_charged -= freed;
    }
    learnts.erase(it, learnts.end());
  }

  [[nodiscard]] bool is_reason(const Clause* c) const {
    if (c->lits.empty()) return false;
    const SatVar v = c->lits[0].var();
    return reason[static_cast<std::size_t>(v)] == c &&
           value(v) != LBool::kUndef;
  }

  Lit pick_branch() {
    while (!order.empty()) {
      // Peek-and-pop until an unassigned variable emerges.
      const SatVar v = order.pop_max(activity);
      if (value(v) == LBool::kUndef) {
        ++stats.decisions;
        return Lit(v, !polarity[static_cast<std::size_t>(v)]);
      }
    }
    return Lit();  // all assigned
  }

  SatStatus search(std::uint64_t restart_conflicts, const Deadline& deadline,
                   std::uint64_t conflict_budget) {
    std::uint64_t conflicts_here = 0;
    std::vector<Lit>& learnt = learnt_scratch;  // persists across restarts
    for (;;) {
      Clause* conflict = propagate();
      if (conflict != nullptr) {
        ++stats.conflicts;
        ++conflicts_here;
        if (decision_level() == 0) return SatStatus::kUnsat;
        const int bt = analyze(conflict, learnt);
        cancel_until(bt);
        if (learnt.size() == 1) {
          enqueue(learnt[0], nullptr);
        } else {
          if (gov != nullptr) {
            // Charge the new learnt clause against the memory budget. On
            // denial, shed (reduce_db is safe mid-search: reason clauses
            // are locked by is_reason) and retry once; if the budget still
            // cannot hold it, trip and abort into a clean memory outcome.
            const std::size_t bytes = clause_bytes(learnt.size());
            bool granted = gov->try_charge(bytes);
            if (!granted) {
              gov->note_shed();
              reduce_db();
              granted = gov->try_charge(bytes);
            }
            if (!granted) {
              gov->trip("sat learnt DB exceeded the memory budget");
              out_of_memory = true;
              return SatStatus::kUnknown;
            }
            gov_charged += bytes;
          }
          auto clause = std::make_unique<Clause>();
          clause->lits = learnt;
          clause->learnt = true;
          clause->lbd = compute_lbd(learnt);
          Clause* raw = clause.get();
          learnts.push_back(std::move(clause));
          ++stats.learned_clauses;
          attach(raw);
          cla_bump(*raw);
          enqueue(learnt[0], raw);
        }
        var_decay_step();
        cla_inc *= 1.001;

        if (conflict_budget != 0 && stats.conflicts >= conflict_budget) {
          return SatStatus::kUnknown;
        }
        if ((conflicts_here & 0xFF) == 0) {
          if (deadline.expired()) return SatStatus::kUnknown;
          // Watchdog: another subsystem tripped the shared governor —
          // convert this search into the same classified memory outcome.
          if (gov != nullptr && gov->tripped()) {
            out_of_memory = true;
            return SatStatus::kUnknown;
          }
        }
      } else {
        if (conflicts_here >= restart_conflicts) {
          ++stats.restarts;
          cancel_until(0);
          return SatStatus::kUnknown;  // caller restarts
        }
        if ((learnts.size() > 8192 + 1024 * stats.restarts ||
             (gov != nullptr && gov->soft_pressure() &&
              learnts.size() > 256)) &&
            decision_level() == 0) {
          reduce_db();
        }
        // Place pending assumptions first, one decision level each (decision
        // level i+1 holds assumptions[i]). Restarts and backjumps into the
        // assumption prefix re-enter this loop and re-place the tail.
        Lit next;
        while (decision_level() <
               static_cast<int>(assumptions.size())) {
          const Lit p =
              assumptions[static_cast<std::size_t>(decision_level())];
          if (value(p) == LBool::kTrue) {
            // Already implied: dedicate an empty level to keep the
            // level <-> assumption-index correspondence.
            trail_lim.push_back(static_cast<int>(trail.size()));
          } else if (value(p) == LBool::kFalse) {
            analyze_final(p);
            assumption_failed = true;
            return SatStatus::kUnsat;
          } else {
            next = p;
            break;
          }
        }
        if (next.code() == kLitUndefCode) {
          next = pick_branch();
          if (next.code() == kLitUndefCode) {
            return SatStatus::kSat;
          }
        }
        trail_lim.push_back(static_cast<int>(trail.size()));
        enqueue(next, nullptr);
      }
    }
  }
};

SatSolver::SatSolver() : impl_(std::make_unique<Impl>()) {}
SatSolver::~SatSolver() = default;

SatVar SatSolver::new_var() { return impl_->new_var(); }

int SatSolver::num_vars() const {
  return static_cast<int>(impl_->assigns.size());
}

int SatSolver::num_clauses() const {
  return static_cast<int>(impl_->problem.size());
}

bool SatSolver::add_clause(std::vector<Lit> lits) {
  Impl& s = *impl_;
  if (!s.ok) return false;
  MONOMAP_ASSERT(s.decision_level() == 0);
  // Normalise: sort, dedupe, drop false literals, detect tautologies and
  // satisfied clauses (w.r.t. the level-0 assignment).
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  out.reserve(lits.size());
  Lit prev;
  for (const Lit l : lits) {
    MONOMAP_ASSERT_MSG(l.var() >= 0 && l.var() < num_vars(),
                       "literal references unknown variable " << l.var());
    if (s.value(l) == LBool::kTrue) return true;  // already satisfied
    if (s.value(l) == LBool::kFalse) continue;    // always false: drop
    if (!out.empty() && l == prev) continue;      // duplicate
    if (!out.empty() && l == ~prev) return true;  // tautology
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    s.ok = false;
    return false;
  }
  if (out.size() == 1) {
    s.enqueue(out[0], nullptr);
    if (s.propagate() != nullptr) {
      s.ok = false;
      return false;
    }
    return true;
  }
  auto clause = std::make_unique<Clause>();
  clause->lits = std::move(out);
  Clause* raw = clause.get();
  s.problem.push_back(std::move(clause));
  s.attach(raw);
  return true;
}

SatStatus SatSolver::solve(const Deadline& deadline,
                           std::uint64_t conflict_budget) {
  return solve_assuming({}, deadline, conflict_budget);
}

SatStatus SatSolver::solve_assuming(const std::vector<Lit>& assumptions,
                                    const Deadline& deadline,
                                    std::uint64_t conflict_budget) {
  fault::maybe_inject("sat.solve");
  Impl& s = *impl_;
  s.conflict.clear();
  s.assumption_failed = false;
  s.out_of_memory = false;
  if (s.gov == nullptr) s.gov = GovernorScope::current();
  if (!s.ok) return SatStatus::kUnsat;
  s.assumptions = assumptions;
  s.cancel_until(0);
  if (s.propagate() != nullptr) {
    s.ok = false;
    return SatStatus::kUnsat;
  }
  const std::uint64_t budget_base =
      conflict_budget == 0 ? 0 : s.stats.conflicts + conflict_budget;
  for (std::uint64_t round = 0;; ++round) {
    const std::uint64_t restart_len = 100 * luby(round);
    const SatStatus status =
        s.search(restart_len, deadline,
                 budget_base == 0 ? 0 : budget_base);
    if (status == SatStatus::kSat) {
      s.model.assign(s.assigns.size(), false);
      for (std::size_t v = 0; v < s.assigns.size(); ++v) {
        s.model[v] = (s.assigns[v] == LBool::kTrue);
      }
      s.cancel_until(0);
      s.assumptions.clear();
      return SatStatus::kSat;
    }
    if (status == SatStatus::kUnsat) {
      // A refutation that rests on assumptions leaves the formula alive;
      // only an assumption-free (level-0) refutation poisons the solver.
      if (!s.assumption_failed) s.ok = false;
      s.cancel_until(0);
      s.assumptions.clear();
      return SatStatus::kUnsat;
    }
    s.cancel_until(0);
    if (s.out_of_memory || deadline.expired() ||
        (budget_base != 0 && s.stats.conflicts >= budget_base)) {
      s.assumptions.clear();
      return SatStatus::kUnknown;
    }
  }
}

const std::vector<Lit>& SatSolver::failed_assumptions() const {
  return impl_->conflict;
}

int SatSolver::num_learnts() const {
  return static_cast<int>(impl_->learnts.size());
}

bool SatSolver::last_unknown_was_memory() const {
  return impl_->out_of_memory;
}

void SatSolver::set_polarity(SatVar v, bool phase) {
  MONOMAP_ASSERT(v >= 0 && v < num_vars());
  impl_->polarity[static_cast<std::size_t>(v)] = phase;
}

bool SatSolver::model_value(SatVar v) const {
  MONOMAP_ASSERT(v >= 0 &&
                 static_cast<std::size_t>(v) < impl_->model.size());
  return impl_->model[static_cast<std::size_t>(v)];
}

const SatStats& SatSolver::stats() const { return impl_->stats; }

}  // namespace monomap
