#include "sat/dimacs.hpp"

#include <cstdlib>
#include <sstream>

#include "support/assert.hpp"

namespace monomap {

CnfFormula parse_dimacs(const std::string& text) {
  CnfFormula formula;
  std::istringstream in(text);
  std::string token;
  std::vector<int> current;
  int max_var = 0;
  while (in >> token) {
    if (token == "c") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (token == "p") {
      std::string fmt;
      int declared_vars = 0;
      std::size_t declared_clauses = 0;
      in >> fmt >> declared_vars >> declared_clauses;
      MONOMAP_ASSERT_MSG(fmt == "cnf", "unsupported DIMACS format " << fmt);
      formula.num_vars = declared_vars;
      continue;
    }
    char* end = nullptr;
    const long value = std::strtol(token.c_str(), &end, 10);
    MONOMAP_ASSERT_MSG(end != nullptr && *end == '\0',
                       "bad DIMACS token '" << token << "'");
    if (value == 0) {
      formula.clauses.push_back(current);
      current.clear();
    } else {
      current.push_back(static_cast<int>(value));
      const int v = value > 0 ? static_cast<int>(value)
                              : static_cast<int>(-value);
      if (v > max_var) max_var = v;
    }
  }
  MONOMAP_ASSERT_MSG(current.empty(), "DIMACS clause missing terminating 0");
  if (max_var > formula.num_vars) {
    formula.num_vars = max_var;
  }
  return formula;
}

std::string to_dimacs(const CnfFormula& formula) {
  std::ostringstream os;
  os << "p cnf " << formula.num_vars << ' ' << formula.clauses.size() << '\n';
  for (const auto& clause : formula.clauses) {
    for (const int lit : clause) {
      os << lit << ' ';
    }
    os << "0\n";
  }
  return os.str();
}

bool load_into_solver(const CnfFormula& formula, SatSolver& solver) {
  while (solver.num_vars() < formula.num_vars) {
    solver.new_var();
  }
  for (const auto& clause : formula.clauses) {
    std::vector<Lit> lits;
    lits.reserve(clause.size());
    for (const int l : clause) {
      MONOMAP_ASSERT(l != 0);
      const SatVar v = (l > 0 ? l : -l) - 1;
      lits.push_back(Lit(v, l < 0));
    }
    if (!solver.add_clause(std::move(lits))) {
      return false;
    }
  }
  return true;
}

}  // namespace monomap
