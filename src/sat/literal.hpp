// Boolean variables and literals for the CDCL solver.
//
// Variables are dense 0-based integers; a literal packs (variable, sign)
// into one integer (MiniSat convention: lit = 2*var + sign, sign 1 = negated)
// so literals index arrays directly.
#ifndef MONOMAP_SAT_LITERAL_HPP
#define MONOMAP_SAT_LITERAL_HPP

#include <cstdint>
#include <string>

#include "support/assert.hpp"

namespace monomap {

using SatVar = std::int32_t;

class Lit {
 public:
  Lit() = default;

  Lit(SatVar var, bool negated) : code_(2 * var + (negated ? 1 : 0)) {
    MONOMAP_ASSERT(var >= 0);
  }

  /// Positive literal of `var`.
  static Lit pos(SatVar var) { return Lit(var, false); }
  /// Negative literal of `var`.
  static Lit neg(SatVar var) { return Lit(var, true); }
  /// From the packed integer code.
  static Lit from_code(std::int32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  [[nodiscard]] SatVar var() const { return code_ >> 1; }
  [[nodiscard]] bool negated() const { return (code_ & 1) != 0; }
  [[nodiscard]] std::int32_t code() const { return code_; }
  [[nodiscard]] Lit operator~() const { return from_code(code_ ^ 1); }

  bool operator==(const Lit& o) const { return code_ == o.code_; }
  bool operator!=(const Lit& o) const { return code_ != o.code_; }
  bool operator<(const Lit& o) const { return code_ < o.code_; }

  [[nodiscard]] std::string to_string() const {
    return (negated() ? "-" : "") + std::to_string(var() + 1);
  }

 private:
  std::int32_t code_ = -2;  // invalid
};

inline constexpr std::int32_t kLitUndefCode = -2;

/// Three-valued assignment.
enum class LBool : std::uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

inline LBool lbool_from(bool b) { return b ? LBool::kTrue : LBool::kFalse; }

inline LBool negate(LBool v) {
  switch (v) {
    case LBool::kFalse: return LBool::kTrue;
    case LBool::kTrue: return LBool::kFalse;
    case LBool::kUndef: return LBool::kUndef;
  }
  return LBool::kUndef;
}

}  // namespace monomap

#endif  // MONOMAP_SAT_LITERAL_HPP
