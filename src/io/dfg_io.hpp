// Plain-text serialisation of DFGs and mappings.
//
// Lets users bring their own kernels to the mapper (and archive results)
// without writing C++. Format, line-oriented, '#' comments:
//
//   dfg <name>
//   nodes <count>
//   edge <src> <dst> <distance>
//   ...
//   end
//
//   mapping <name>
//   ii <value>
//   place <node> <pe> <time>
//   ...
//   end
#ifndef MONOMAP_IO_DFG_IO_HPP
#define MONOMAP_IO_DFG_IO_HPP

#include <string>

#include "ir/dfg.hpp"
#include "mapper/mapping.hpp"

namespace monomap {

/// Serialise a DFG (structure only; opcodes are not part of the mapping
/// problem and default to `add` on load).
std::string dfg_to_text(const Dfg& dfg);

/// Parse the `dfg` format above. Throws AssertionError on malformed input.
Dfg dfg_from_text(const std::string& text);

/// Serialise a mapping of `dfg`.
std::string mapping_to_text(const Dfg& dfg, const Mapping& mapping);

/// Parse a mapping for a DFG with `num_nodes` nodes.
Mapping mapping_from_text(const std::string& text, int num_nodes);

}  // namespace monomap

#endif  // MONOMAP_IO_DFG_IO_HPP
