#include "io/dfg_io.hpp"

#include <sstream>
#include <vector>

namespace monomap {

namespace {

/// Strip comments and return significant lines as token vectors.
std::vector<std::vector<std::string>> tokenize(const std::string& text) {
  std::vector<std::vector<std::string>> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (ls >> tok) tokens.push_back(tok);
    if (!tokens.empty()) lines.push_back(std::move(tokens));
  }
  return lines;
}

int to_int(const std::string& s) {
  std::size_t pos = 0;
  const int v = std::stoi(s, &pos);
  MONOMAP_ASSERT_MSG(pos == s.size(), "bad integer '" << s << "'");
  return v;
}

}  // namespace

std::string dfg_to_text(const Dfg& dfg) {
  std::ostringstream os;
  os << "dfg " << dfg.name() << '\n';
  os << "nodes " << dfg.num_nodes() << '\n';
  const Graph& g = dfg.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    os << "edge " << edge.src << ' ' << edge.dst << ' ' << edge.attr << '\n';
  }
  os << "end\n";
  return os.str();
}

Dfg dfg_from_text(const std::string& text) {
  const auto lines = tokenize(text);
  MONOMAP_ASSERT_MSG(!lines.empty() && lines[0][0] == "dfg",
                     "expected 'dfg <name>' header");
  MONOMAP_ASSERT_MSG(lines[0].size() == 2, "dfg header needs a name");
  const std::string name = lines[0][1];
  int num_nodes = -1;
  std::vector<Edge> edges;
  bool ended = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto& t = lines[i];
    MONOMAP_ASSERT_MSG(!ended, "content after 'end'");
    if (t[0] == "nodes") {
      MONOMAP_ASSERT_MSG(t.size() == 2, "nodes needs a count");
      num_nodes = to_int(t[1]);
      MONOMAP_ASSERT_MSG(num_nodes >= 0, "negative node count");
    } else if (t[0] == "edge") {
      MONOMAP_ASSERT_MSG(t.size() == 4, "edge needs <src> <dst> <distance>");
      MONOMAP_ASSERT_MSG(num_nodes >= 0, "'nodes' must precede 'edge'");
      const int src = to_int(t[1]);
      const int dst = to_int(t[2]);
      const int dist = to_int(t[3]);
      MONOMAP_ASSERT_MSG(src >= 0 && src < num_nodes && dst >= 0 &&
                             dst < num_nodes,
                         "edge endpoint out of range");
      MONOMAP_ASSERT_MSG(dist >= 0, "negative loop-carried distance");
      edges.push_back(Edge{src, dst, dist});
    } else if (t[0] == "end") {
      ended = true;
    } else {
      MONOMAP_ASSERT_MSG(false, "unknown directive '" << t[0] << "'");
    }
  }
  MONOMAP_ASSERT_MSG(ended, "missing 'end'");
  MONOMAP_ASSERT_MSG(num_nodes >= 0, "missing 'nodes'");
  return Dfg::from_edges(name, num_nodes, edges);
}

std::string mapping_to_text(const Dfg& dfg, const Mapping& mapping) {
  std::ostringstream os;
  os << "mapping " << dfg.name() << '\n';
  os << "ii " << mapping.ii() << '\n';
  for (NodeId v = 0; v < mapping.num_nodes(); ++v) {
    os << "place " << v << ' ' << mapping.pe(v) << ' ' << mapping.time(v)
       << '\n';
  }
  os << "end\n";
  return os.str();
}

Mapping mapping_from_text(const std::string& text, int num_nodes) {
  const auto lines = tokenize(text);
  MONOMAP_ASSERT_MSG(!lines.empty() && lines[0][0] == "mapping",
                     "expected 'mapping <name>' header");
  int ii = -1;
  std::vector<int> time(static_cast<std::size_t>(num_nodes), -1);
  std::vector<PeId> pe(static_cast<std::size_t>(num_nodes), -1);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto& t = lines[i];
    if (t[0] == "ii") {
      MONOMAP_ASSERT_MSG(t.size() == 2, "ii needs a value");
      ii = to_int(t[1]);
    } else if (t[0] == "place") {
      MONOMAP_ASSERT_MSG(t.size() == 4, "place needs <node> <pe> <time>");
      const int v = to_int(t[1]);
      MONOMAP_ASSERT_MSG(v >= 0 && v < num_nodes, "node out of range");
      pe[static_cast<std::size_t>(v)] = to_int(t[2]);
      time[static_cast<std::size_t>(v)] = to_int(t[3]);
    } else if (t[0] == "end") {
      break;
    } else {
      MONOMAP_ASSERT_MSG(false, "unknown directive '" << t[0] << "'");
    }
  }
  MONOMAP_ASSERT_MSG(ii >= 1, "missing or invalid ii");
  for (int v = 0; v < num_nodes; ++v) {
    MONOMAP_ASSERT_MSG(time[static_cast<std::size_t>(v)] >= 0 &&
                           pe[static_cast<std::size_t>(v)] >= 0,
                       "node " << v << " not placed");
  }
  return Mapping(ii, std::move(time), std::move(pe));
}

}  // namespace monomap
