// Explore the II search space of one benchmark: for each II from mII
// upward, report whether the time formulation is satisfiable and whether a
// monomorphism exists for the schedules it yields — making the decoupling
// visible (this uses the lower-level TimeSolver / find_monomorphism API
// rather than the one-call DecoupledMapper).
//
// Usage: ii_explorer [benchmark] [grid_side] (default: crc32 4)
#include <iostream>

#include "sched/asap_alap.hpp"
#include "sched/mii.hpp"
#include "space/monomorphism.hpp"
#include "support/table.hpp"
#include "timing/time_formulation.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace monomap;

  const std::string name = argc > 1 ? argv[1] : "crc32";
  const int side = argc > 2 ? std::atoi(argv[2]) : 4;
  const Benchmark& b = benchmark_by_name(name);
  const CgraArch arch = CgraArch::square(side);
  const MiiBreakdown mii = compute_mii(b.dfg, arch);

  std::cout << "II exploration for '" << b.name << "' on "
            << arch.description() << "\n"
            << "mII = max(ResII=" << mii.res_ii << ", RecII=" << mii.rec_ii
            << ") = " << mii.mii() << "\n\n";

  AsciiTable table({"II", "Time vars", "Time clauses", "Time phase",
                    "Schedules tried", "Space", "Backtracks"});
  bool mapped = false;
  for (int ii = mii.mii(); ii <= mii.mii() + 6 && !mapped; ++ii) {
    // Try a few schedules at this II, following the decoupled recipe.
    std::string time_status = "UNSAT";
    std::string space_status = "-";
    std::uint64_t backtracks = 0;
    int tried = 0;
    TimeFormulationStats stats{};
    for (int horizon_ext = 0; horizon_ext <= 4 && !mapped; ++horizon_ext) {
      TimeFormulation ext(b.dfg, arch, ii,
                          horizon_ext == 0
                              ? 0
                              : critical_path_length(b.dfg) + horizon_ext);
      if (!ext.build()) continue;
      stats = ext.stats();
      for (int round = 0; round < 8 && !mapped; ++round) {
        if (ext.solve(Deadline(10.0)) != SatStatus::kSat) break;
        time_status = "SAT";
        const TimeSolution sol = ext.extract();
        ++tried;
        std::vector<int> labels;
        for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
          labels.push_back(sol.label(v));
        }
        const SpaceResult space = find_monomorphism(b.dfg, arch, labels, ii);
        backtracks += space.backtracks;
        if (space.found) {
          space_status = "found";
          mapped = true;
        } else {
          space_status = "none";
          if (!ext.block_labels(sol)) break;
        }
      }
    }
    table.add_row({std::to_string(ii), std::to_string(stats.num_vars),
                   std::to_string(stats.num_clauses), time_status,
                   std::to_string(tried), space_status,
                   std::to_string(backtracks)});
  }
  table.print(std::cout);
  std::cout << (mapped ? "\nmapping found.\n" : "\nno mapping in range.\n");
  return mapped ? 0 : 1;
}
