// Architecture exploration beyond the paper: map one kernel onto mesh,
// torus and diagonal (king) interconnects of several sizes and compare the
// achieved II — the kind of study the library enables out of the box.
//
// Usage: custom_arch [benchmark] (default: crc32)
#include <iostream>

#include "arch/mrrg.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "support/table.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace monomap;

  const std::string name = argc > 1 ? argv[1] : "crc32";
  const Benchmark& b = benchmark_by_name(name);
  std::cout << "Exploring interconnects for '" << b.name << "' ("
            << b.dfg.num_nodes() << " nodes, RecII=" << b.paper_rec_ii
            << ")\n\n";

  AsciiTable table({"Topology", "Grid", "D_M", "MRRG |V|", "MRRG |E|", "mII",
                    "II", "Total[s]"});
  for (const Topology topo :
       {Topology::kMesh, Topology::kTorus, Topology::kDiagonal}) {
    for (const int side : {3, 4, 6}) {
      const CgraArch arch(side, side, topo);
      DecoupledMapperOptions opt;
      opt.timeout_s = 30.0;
      const MapResult r = DecoupledMapper(opt).map(b.dfg, arch);
      const int ii_for_mrrg = r.success ? r.ii : r.mii.mii();
      const Mrrg mrrg(arch, ii_for_mrrg);
      table.add_row({topology_name(topo),
                     std::to_string(side) + "x" + std::to_string(side),
                     std::to_string(arch.connectivity_degree()),
                     std::to_string(mrrg.num_vertices()),
                     std::to_string(mrrg.count_edges()),
                     std::to_string(r.mii.mii()),
                     r.success ? std::to_string(r.ii) : "-",
                     format_time_s(r.total_s)});
    }
  }
  table.print(std::cout);
  std::cout << "\nRicher interconnects raise D_M, which relaxes the\n"
               "connectivity constraints and can lower the achieved II\n"
               "when the mesh is the bottleneck.\n";
  return 0;
}
