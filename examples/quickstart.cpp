// Quickstart: map the paper's running example (Fig. 2a) onto a 2x2 CGRA.
//
// Reproduces, in order: Table I (ASAP/ALAP/MobS), Table II (KMS at II = 4),
// a space-time mapping at II = 4 (Fig. 2b), and the monomorphism embedding
// into the MRRG (Fig. 4).
#include <iostream>

#include "graph/dot.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "mapper/modulo_expansion.hpp"
#include "sched/kms.hpp"
#include "sched/mobility.hpp"
#include "workloads/running_example.hpp"

int main() {
  using namespace monomap;

  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);
  std::cout << "DFG '" << dfg.name() << "': " << dfg.num_nodes()
            << " nodes, " << dfg.num_edges() << " edges\n"
            << "Target: " << arch.description() << "\n\n";

  // --- Scheduling front end (paper Table I) ------------------------------
  const MobilitySchedule mobs(dfg);
  std::cout << "ASAP / ALAP / MobS (paper Table I):\n"
            << mobs.to_table() << '\n';

  // --- KMS at II = 4 (paper Table II) ------------------------------------
  const Kms kms(mobs, 4);
  std::cout << "KMS for II=4, " << kms.interleaved_iterations()
            << " interleaved iterations (paper Table II):\n"
            << kms.to_table() << '\n';

  // --- Decoupled mapping --------------------------------------------------
  DecoupledMapperOptions options;
  options.timeout_s = 60.0;
  const MapResult result = DecoupledMapper(options).map(dfg, arch);
  if (!result.success) {
    std::cerr << "mapping failed: " << result.failure_reason << '\n';
    return 1;
  }
  std::cout << "mapped at II=" << result.ii << " (mII=" << result.mii.mii()
            << "; ResII=" << result.mii.res_ii
            << ", RecII=" << result.mii.rec_ii << ")\n"
            << "time phase: " << result.time_phase_s << " s, space phase: "
            << result.space_phase_s << " s\n\n";

  // --- The monomorphism (Fig. 4): node -> (PE, slot) ----------------------
  std::cout << "monomorphism f : V_G -> V_M (Fig. 4):\n";
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    std::cout << "  node " << v << " -> (PE" << result.mapping.pe(v)
              << ", slot " << result.mapping.slot(v) << ")  [T="
              << result.mapping.time(v) << "]\n";
  }
  std::cout << '\n' << mapping_to_string(dfg, arch, result.mapping) << '\n';

  // --- Prologue / kernel / epilogue view (Fig. 2b) ------------------------
  const ModuloExpansion expansion(result.mapping,
                                  result.mapping.num_stages() + 2);
  std::cout << expansion.to_string(dfg) << '\n';

  std::cout << "DOT of the DFG (render with graphviz):\n"
            << to_dot(dfg.graph(), "running_example") << '\n';
  return 0;
}
