// Map the full 17-benchmark suite (paper Sec. V) on a chosen CGRA and print
// a Table III-style summary for the decoupled mapper.
//
// Usage: map_suite [grid_side] [timeout_s]
//        map_suite 5 10
#include <cstdlib>
#include <iostream>

#include "mapper/decoupled_mapper.hpp"
#include "support/table.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace monomap;

  const int side = argc > 1 ? std::atoi(argv[1]) : 4;
  const double timeout = argc > 2 ? std::atof(argv[2]) : 30.0;
  if (side < 1) {
    std::cerr << "bad grid side\n";
    return 1;
  }
  const CgraArch arch = CgraArch::square(side);
  std::cout << "Mapping the benchmark suite onto " << arch.description()
            << " (timeout " << timeout << " s per benchmark)\n\n";

  AsciiTable table({"Benchmark", "Nodes", "mII", "II", "Time[s]", "Space[s]",
                    "Total[s]", "Schedules", "Status"});
  int solved = 0;
  for (const Benchmark& b : benchmark_suite()) {
    DecoupledMapperOptions opt;
    opt.timeout_s = timeout;
    const MapResult r = DecoupledMapper(opt).map(b.dfg, arch);
    table.add_row({b.name, std::to_string(b.dfg.num_nodes()),
                   std::to_string(r.mii.mii()),
                   r.success ? std::to_string(r.ii) : "-",
                   format_time_s(r.time_phase_s),
                   format_time_s(r.space_phase_s), format_time_s(r.total_s),
                   std::to_string(r.schedules_tried),
                   r.success ? "ok" : (r.timed_out ? "TO" : "fail")});
    if (r.success) ++solved;
  }
  table.print(std::cout);
  std::cout << '\n' << solved << "/" << benchmark_suite().size()
            << " benchmarks mapped\n";
  return solved == static_cast<int>(benchmark_suite().size()) ? 0 : 1;
}
