// Map a kernel, generate its per-PE configuration, execute it on the
// functional CGRA simulator and check the results against the sequential
// interpreter — the full compile-and-run flow a CGRA user cares about.
//
// Usage: simulate_mapping [benchmark] [grid_side] (default: gsm 4)
#include <iostream>

#include "mapper/config_gen.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "mapper/reg_pressure.hpp"
#include "sim/simulator.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace monomap;

  const std::string name = argc > 1 ? argv[1] : "gsm";
  const int side = argc > 2 ? std::atoi(argv[2]) : 4;
  const Benchmark& b = benchmark_by_name(name);
  const CgraArch arch = CgraArch::square(side);

  std::cout << "Compiling '" << b.name << "' for " << arch.description()
            << "\n";
  DecoupledMapperOptions opt;
  opt.timeout_s = 60.0;
  const MapResult r = DecoupledMapper(opt).map(b.dfg, arch);
  if (!r.success) {
    std::cerr << "mapping failed: " << r.failure_reason << '\n';
    return 1;
  }
  std::cout << "II=" << r.ii << " (mII=" << r.mii.mii() << "), "
            << r.mapping.num_stages() << " pipeline stages\n\n";

  const RegPressureReport pressure =
      analyze_register_pressure(b.dfg, arch, r.mapping);
  std::cout << pressure.to_string() << "\n\n";

  const ConfigImage image(b.kernel, b.dfg, arch, r.mapping);
  std::cout << "PE utilization: " << image.utilization() * 100.0 << "%\n"
            << "configuration image:\n"
            << image.to_string() << '\n';

  SimOptions sopt;
  sopt.iterations = r.mapping.num_stages() + 6;
  const SimResult sim = simulate(b.kernel, b.dfg, arch, r.mapping, sopt);
  std::cout << "simulated " << sopt.iterations << " iterations in "
            << sim.cycles << " cycles ("
            << static_cast<double>(sopt.iterations) * b.dfg.num_nodes() /
                   sim.cycles
            << " ops/cycle)\n";

  const auto problems =
      verify_mapping_by_simulation(b.kernel, b.dfg, arch, r.mapping, sopt);
  if (problems.empty()) {
    std::cout << "verification: mapped execution matches the sequential "
                 "interpreter bit-for-bit\n";
    return 0;
  }
  std::cerr << "verification FAILED:\n";
  for (const auto& p : problems) {
    std::cerr << "  " << p << '\n';
  }
  return 1;
}
