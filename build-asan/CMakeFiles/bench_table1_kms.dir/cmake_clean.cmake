file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_kms.dir/bench/bench_table1_kms.cpp.o"
  "CMakeFiles/bench_table1_kms.dir/bench/bench_table1_kms.cpp.o.d"
  "bench_table1_kms"
  "bench_table1_kms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_kms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
