# Empty dependencies file for bench_table1_kms.
# This may be replaced when dependencies are built.
