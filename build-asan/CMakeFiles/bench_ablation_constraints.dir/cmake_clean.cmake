file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_constraints.dir/bench/bench_ablation_constraints.cpp.o"
  "CMakeFiles/bench_ablation_constraints.dir/bench/bench_ablation_constraints.cpp.o.d"
  "bench_ablation_constraints"
  "bench_ablation_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
