# Empty dependencies file for bench_ablation_constraints.
# This may be replaced when dependencies are built.
