# Empty dependencies file for monomap.
# This may be replaced when dependencies are built.
