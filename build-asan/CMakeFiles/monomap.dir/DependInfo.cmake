
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cgra.cpp" "CMakeFiles/monomap.dir/src/arch/cgra.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/arch/cgra.cpp.o.d"
  "/root/repo/src/arch/mrrg.cpp" "CMakeFiles/monomap.dir/src/arch/mrrg.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/arch/mrrg.cpp.o.d"
  "/root/repo/src/encode/cnf_builder.cpp" "CMakeFiles/monomap.dir/src/encode/cnf_builder.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/encode/cnf_builder.cpp.o.d"
  "/root/repo/src/graph/algorithms.cpp" "CMakeFiles/monomap.dir/src/graph/algorithms.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "CMakeFiles/monomap.dir/src/graph/dot.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/graph/dot.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "CMakeFiles/monomap.dir/src/graph/graph.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/graph/graph.cpp.o.d"
  "/root/repo/src/io/dfg_io.cpp" "CMakeFiles/monomap.dir/src/io/dfg_io.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/io/dfg_io.cpp.o.d"
  "/root/repo/src/ir/dfg.cpp" "CMakeFiles/monomap.dir/src/ir/dfg.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/ir/dfg.cpp.o.d"
  "/root/repo/src/ir/interpreter.cpp" "CMakeFiles/monomap.dir/src/ir/interpreter.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/ir/interpreter.cpp.o.d"
  "/root/repo/src/ir/kernel.cpp" "CMakeFiles/monomap.dir/src/ir/kernel.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/ir/kernel.cpp.o.d"
  "/root/repo/src/ir/opcode.cpp" "CMakeFiles/monomap.dir/src/ir/opcode.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/ir/opcode.cpp.o.d"
  "/root/repo/src/mapper/annealing_mapper.cpp" "CMakeFiles/monomap.dir/src/mapper/annealing_mapper.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/mapper/annealing_mapper.cpp.o.d"
  "/root/repo/src/mapper/config_gen.cpp" "CMakeFiles/monomap.dir/src/mapper/config_gen.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/mapper/config_gen.cpp.o.d"
  "/root/repo/src/mapper/coupled_mapper.cpp" "CMakeFiles/monomap.dir/src/mapper/coupled_mapper.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/mapper/coupled_mapper.cpp.o.d"
  "/root/repo/src/mapper/decoupled_mapper.cpp" "CMakeFiles/monomap.dir/src/mapper/decoupled_mapper.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/mapper/decoupled_mapper.cpp.o.d"
  "/root/repo/src/mapper/mapping.cpp" "CMakeFiles/monomap.dir/src/mapper/mapping.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/mapper/mapping.cpp.o.d"
  "/root/repo/src/mapper/modulo_expansion.cpp" "CMakeFiles/monomap.dir/src/mapper/modulo_expansion.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/mapper/modulo_expansion.cpp.o.d"
  "/root/repo/src/mapper/reg_pressure.cpp" "CMakeFiles/monomap.dir/src/mapper/reg_pressure.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/mapper/reg_pressure.cpp.o.d"
  "/root/repo/src/mapper/routing_transform.cpp" "CMakeFiles/monomap.dir/src/mapper/routing_transform.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/mapper/routing_transform.cpp.o.d"
  "/root/repo/src/sat/dimacs.cpp" "CMakeFiles/monomap.dir/src/sat/dimacs.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/sat/dimacs.cpp.o.d"
  "/root/repo/src/sat/solver.cpp" "CMakeFiles/monomap.dir/src/sat/solver.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/sat/solver.cpp.o.d"
  "/root/repo/src/sched/asap_alap.cpp" "CMakeFiles/monomap.dir/src/sched/asap_alap.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/sched/asap_alap.cpp.o.d"
  "/root/repo/src/sched/kms.cpp" "CMakeFiles/monomap.dir/src/sched/kms.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/sched/kms.cpp.o.d"
  "/root/repo/src/sched/mii.cpp" "CMakeFiles/monomap.dir/src/sched/mii.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/sched/mii.cpp.o.d"
  "/root/repo/src/sched/mobility.cpp" "CMakeFiles/monomap.dir/src/sched/mobility.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/sched/mobility.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/monomap.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/space/monomorphism.cpp" "CMakeFiles/monomap.dir/src/space/monomorphism.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/space/monomorphism.cpp.o.d"
  "/root/repo/src/support/log.cpp" "CMakeFiles/monomap.dir/src/support/log.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/support/log.cpp.o.d"
  "/root/repo/src/support/table.cpp" "CMakeFiles/monomap.dir/src/support/table.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/support/table.cpp.o.d"
  "/root/repo/src/timing/time_formulation.cpp" "CMakeFiles/monomap.dir/src/timing/time_formulation.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/timing/time_formulation.cpp.o.d"
  "/root/repo/src/timing/time_solver.cpp" "CMakeFiles/monomap.dir/src/timing/time_solver.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/timing/time_solver.cpp.o.d"
  "/root/repo/src/workloads/running_example.cpp" "CMakeFiles/monomap.dir/src/workloads/running_example.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/workloads/running_example.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "CMakeFiles/monomap.dir/src/workloads/suite.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/workloads/suite.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "CMakeFiles/monomap.dir/src/workloads/synthetic.cpp.o" "gcc" "CMakeFiles/monomap.dir/src/workloads/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
