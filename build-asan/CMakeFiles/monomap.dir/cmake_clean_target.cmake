file(REMOVE_RECURSE
  "libmonomap.a"
)
