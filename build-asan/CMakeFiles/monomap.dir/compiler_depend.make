# Empty compiler generated dependencies file for monomap.
# This may be replaced when dependencies are built.
