# Empty compiler generated dependencies file for ii_explorer.
# This may be replaced when dependencies are built.
