file(REMOVE_RECURSE
  "CMakeFiles/ii_explorer.dir/examples/ii_explorer.cpp.o"
  "CMakeFiles/ii_explorer.dir/examples/ii_explorer.cpp.o.d"
  "ii_explorer"
  "ii_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ii_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
