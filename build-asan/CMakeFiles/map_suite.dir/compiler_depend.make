# Empty compiler generated dependencies file for map_suite.
# This may be replaced when dependencies are built.
